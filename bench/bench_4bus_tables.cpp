// Reproduces the paper's Section IV-B motivating example on the 4-bus
// system of Fig. 3: Table II (pre-perturbation operating point), Table I
// (BDD residuals of two stealthy attacks under four single-line MTD
// perturbations) and Table III (post-perturbation dispatch and OPF cost).

#include <benchmark/benchmark.h>

#include "attack/fdi_attack.hpp"
#include "bench_util.hpp"
#include "estimation/state_estimator.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"

namespace {

using namespace mtdgrid;

void run_tables() {
  const grid::PowerSystem sys = grid::make_case4();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const opf::DispatchResult base = opf::solve_dc_opf(sys);

  bench::print_header(
      "Table II — pre-perturbation operating point (4-bus system)",
      "Paper: flows (126.56, 173.44, -43.44, -26.56) MW, dispatch "
      "(350, 150) MW, cost $1.15e4.");
  std::printf("  %-8s %10s\n", "line", "flow (MW)");
  for (std::size_t l = 0; l < 4; ++l)
    std::printf("  line %zu  %10.2f\n", l + 1, base.flows_mw[l]);
  std::printf("  dispatch: G1 = %.2f MW, G2 = %.2f MW\n",
              base.generation_mw[0], base.generation_mw[1]);
  std::printf("  OPF cost: $%.2f\n", base.cost);

  // Paper attacks: c = [0,1,1,1] and c = [0,0,0,1] (bus 1 is the slack, so
  // the reduced vectors drop the leading zero).
  const attack::FdiAttack attack1 =
      attack::make_stealthy_attack(h0, linalg::Vector{1.0, 1.0, 1.0});
  const attack::FdiAttack attack2 =
      attack::make_stealthy_attack(h0, linalg::Vector{0.0, 0.0, 1.0});

  bench::print_header(
      "Table I — noiseless BDD residuals under single-line MTD (eta = 0.2)",
      "Paper pattern: attack 1 detected only by Dx1/Dx2 (residuals "
      "2.82/2.87 at their attack scaling),\nattack 2 only by Dx3/Dx4. A "
      "zero residual means the attack stays stealthy after the MTD.");
  std::printf("  %-10s %12s %12s %14s\n", "MTD", "r'(attack1)", "r'(attack2)",
              "gamma(H,H')");
  for (std::size_t line = 0; line < 4; ++line) {
    linalg::Vector x = sys.reactances();
    x[line] *= 1.2;
    const linalg::Matrix hp = grid::measurement_matrix(sys, x);
    const estimation::StateEstimator est(hp, 1.0);
    std::printf("  Delta-x%zu  %12.4f %12.4f %14.4f\n", line + 1,
                est.attack_residual_norm(attack1.a),
                est.attack_residual_norm(attack2.a), mtd::spa(h0, hp));
  }

  bench::print_header(
      "Table III — post-perturbation dispatch and OPF cost",
      "Paper: every Delta-x raises the cost above the $1.15e4 baseline; "
      "Delta-x3 is cheapest.");
  std::printf("  %-10s %10s %10s %14s %12s\n", "MTD", "G1 (MW)", "G2 (MW)",
              "OPF cost ($)", "increase");
  for (std::size_t line = 0; line < 4; ++line) {
    linalg::Vector x = sys.reactances();
    x[line] *= 1.2;
    const opf::DispatchResult r = opf::solve_dc_opf(sys, x);
    std::printf("  Delta-x%zu  %10.2f %10.2f %14.2f %11.3f%%\n", line + 1,
                r.generation_mw[0], r.generation_mw[1], r.cost,
                100.0 * (r.cost - base.cost) / base.cost);
  }
  std::printf("\n");
}

void BM_Case4Opf(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case4();
  for (auto _ : state) {
    benchmark::DoNotOptimize(opf::solve_dc_opf(sys));
  }
}
BENCHMARK(BM_Case4Opf);

void BM_Case4ResidualEvaluation(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case4();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  x[0] *= 1.2;
  const estimation::StateEstimator est(grid::measurement_matrix(sys, x), 1.0);
  const attack::FdiAttack atk =
      attack::make_stealthy_attack(h0, linalg::Vector{1.0, 1.0, 1.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.attack_residual_norm(atk.a));
  }
}
BENCHMARK(BM_Case4ResidualEvaluation);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
