// Ablation studies for the design choices recorded in DESIGN.md:
//  (1) multi-start budget of the problem-(4) direct search — solution
//      quality and feasibility stability;
//  (2) analytic (noncentral chi-square) vs Monte-Carlo detection
//      probability — agreement and speed;
//  (3) false-positive-rate sensitivity of the effectiveness metric;
//  (4) pinned vs deficit-only SPA penalty in the selection objective.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/selection.hpp"
#include "opf/reactance_opf.hpp"
#include "stats/rng.hpp"

namespace {

using namespace mtdgrid;

struct Context {
  grid::PowerSystem sys = grid::make_case14();
  linalg::Matrix h0;
  double base_cost = 0.0;
  linalg::Vector x_mtd;
  linalg::Matrix h_mtd;
  linalg::Vector z_ref;
};

Context make_context() {
  Context c;
  stats::Rng rng(17);
  // Nominal-reactance baseline: box center of the D-FACTS range, so the
  // full gamma sweep range is available to the ablations.
  const opf::DispatchResult base = opf::solve_dc_opf(c.sys);
  c.h0 = grid::measurement_matrix(c.sys);
  c.base_cost = base.cost;

  mtd::MtdSelectionOptions sel;
  sel.gamma_threshold = 0.25;
  sel.extra_starts = 4;
  const mtd::MtdSelectionResult r =
      mtd::select_mtd_perturbation(c.sys, c.h0, c.base_cost, sel, rng);
  c.x_mtd = r.reactances;
  c.h_mtd = r.h_mtd;
  c.z_ref = grid::noiseless_measurements(c.sys, r.reactances,
                                         r.dispatch.theta_reduced);
  return c;
}

void ablate_multistart(const Context& c) {
  bench::print_header(
      "Ablation 1 — multi-start budget of the problem-(4) search",
      "More starts stabilize feasibility at demanding thresholds "
      "(corner starts matter near the achievable gamma ceiling).");
  std::printf("  %-8s %-10s %10s %10s %12s\n", "starts", "gamma_th",
              "feasible", "gamma", "cost incr.");
  for (int starts : {0, 2, 4, 8}) {
    for (double gth : {0.20, 0.35}) {
      stats::Rng rng(23);  // same seed: isolates the budget effect
      mtd::MtdSelectionOptions sel;
      sel.gamma_threshold = gth;
      sel.extra_starts = starts;
      sel.search.max_evaluations = 800;
      const auto r =
          mtd::select_mtd_perturbation(c.sys, c.h0, c.base_cost, sel, rng);
      std::printf("  %-8d %-10.2f %10s %10.3f %11.3f%%\n", starts, gth,
                  r.feasible ? "yes" : "no", r.spa,
                  100.0 * std::max(0.0, r.cost_increase));
    }
  }
  std::printf("\n");
}

void ablate_detection_method(const Context& c) {
  bench::print_header(
      "Ablation 2 — analytic vs Monte-Carlo detection probability",
      "The noncentral-chi-square expression matches the paper's "
      "1000-noise-draw Monte Carlo at a fraction of the cost.");
  std::printf("  %-12s %12s %12s %12s\n", "method", "eta(0.5)", "eta(0.9)",
              "seconds");
  for (auto method : {mtd::DetectionMethod::kAnalytic,
                      mtd::DetectionMethod::kMonteCarlo}) {
    stats::Rng rng(29);
    mtd::EffectivenessOptions eff;
    eff.num_attacks = 200;
    eff.sigma_mw = 0.1;
    eff.method = method;
    eff.noise_trials = 1000;
    eff.deltas = {0.5, 0.9};
    const auto start = std::chrono::steady_clock::now();
    const auto r =
        mtd::evaluate_effectiveness(c.h0, c.h_mtd, c.z_ref, eff, rng);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("  %-12s %12.3f %12.3f %12.3f\n",
                method == mtd::DetectionMethod::kAnalytic ? "analytic"
                                                          : "monte-carlo",
                r.eta[0], r.eta[1], secs);
  }
  std::printf("\n");
}

void ablate_fp_rate(const Context& c) {
  bench::print_header(
      "Ablation 3 — false-positive-rate sensitivity",
      "A looser alpha lowers the BDD threshold and raises detection; the "
      "paper fixes alpha = 5e-4.");
  std::printf("  %-10s %12s %12s\n", "alpha", "eta(0.9)", "mean P_D");
  for (double alpha : {1e-4, 5e-4, 1e-3, 1e-2}) {
    stats::Rng rng(31);
    mtd::EffectivenessOptions eff;
    eff.num_attacks = 300;
    eff.sigma_mw = 0.1;
    eff.fp_rate = alpha;
    eff.deltas = {0.9};
    const auto r =
        mtd::evaluate_effectiveness(c.h0, c.h_mtd, c.z_ref, eff, rng);
    std::printf("  %-10.0e %12.3f %12.3f\n", alpha, r.eta[0],
                r.mean_detection);
  }
  std::printf("\n");
}

void ablate_pinning(const Context& c) {
  bench::print_header(
      "Ablation 4 — pinned vs deficit-only SPA penalty",
      "With a deficit-only penalty the optimizer drifts across the "
      "flat-cost plateau to larger angles; pinning keeps the achieved "
      "gamma at the threshold (used for the Fig. 6/9/10 sweeps).");
  std::printf("  %-10s %-10s %10s %12s\n", "mode", "gamma_th", "gamma",
              "cost incr.");
  for (bool pin : {false, true}) {
    for (double gth : {0.10, 0.20}) {
      stats::Rng rng(37);
      mtd::MtdSelectionOptions sel;
      sel.gamma_threshold = gth;
      sel.pin_gamma = pin;
      sel.extra_starts = 3;
      sel.search.max_evaluations = 800;
      const auto r =
          mtd::select_mtd_perturbation(c.sys, c.h0, c.base_cost, sel, rng);
      std::printf("  %-10s %-10.2f %10.3f %11.3f%%\n",
                  pin ? "pinned" : "deficit", gth, r.spa,
                  100.0 * std::max(0.0, r.cost_increase));
    }
  }
  std::printf("\n");
}

void BM_AnalyticDetection(benchmark::State& state) {
  const Context c = make_context();
  stats::Rng rng(41);
  mtd::EffectivenessOptions eff;
  eff.num_attacks = 100;
  eff.sigma_mw = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mtd::evaluate_effectiveness(c.h0, c.h_mtd, c.z_ref, eff, rng));
  }
}
BENCHMARK(BM_AnalyticDetection)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const Context c = make_context();
  ablate_multistart(c);
  ablate_detection_method(c);
  ablate_fp_rate(c);
  ablate_pinning(c);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
