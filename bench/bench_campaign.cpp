// Campaign-engine throughput: one full knowledge-frontier evaluation —
// defender trajectory (hourly OPF + re-keying selection) plus every
// (policy x schedule) cell scored hour by hour. This is the cost a user
// pays per `mtd_campaign` invocation and per daemon `campaign` verb
// window, dominated by the effectiveness Monte-Carlo inside each cell.
//
// BM_CampaignFrontier is a guarded benchmark (bench/baseline.json + the
// CI perf filter): the default six-attacker panel against two re-keying
// schedules on case14, fast search knobs so the selection cost does not
// drown the scoring cost under measurement.

#include <benchmark/benchmark.h>

#include "attack/campaign.hpp"
#include "bench_util.hpp"
#include "grid/cases.hpp"
#include "grid/load_trace.hpp"

namespace {

using namespace mtdgrid;

attack::CampaignOptions campaign_options(bench::Scale scale) {
  attack::CampaignOptions options;
  options.seed = 7;
  options.horizon_hours = scale == bench::Scale::kFull ? 8 : 4;
  options.rekey_every = {1, 2};
  options.daily.gamma_grid = {0.05, 0.15};
  options.daily.base_search_evaluations = 120;
  options.daily.effectiveness.num_attacks =
      scale == bench::Scale::kFast ? 40 : 100;
  options.daily.selection.extra_starts = 1;
  options.daily.selection.search.max_evaluations = 150;
  return options;
}

void BM_CampaignFrontier(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  const attack::CampaignOptions options =
      campaign_options(bench::scale_from_env());
  std::size_t cells = 0;
  for (auto _ : state) {
    const attack::CampaignFrontier frontier =
        attack::run_campaign(sys, trace, options);
    benchmark::DoNotOptimize(frontier.cells.data());
    cells += frontier.cells.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetLabel("case14 x " + std::to_string(options.horizon_hours) +
                 "h x 2 schedules");
}
BENCHMARK(BM_CampaignFrontier)->Unit(benchmark::kMillisecond);

}  // namespace
