// Reproduces Fig. 10 and Fig. 11: the day-long MTD simulation on the IEEE
// 14-bus system driven by the NYISO-shaped hourly load trace. At each hour
// the threshold gamma_th is tuned so the MTD achieves eta'(0.9) >= 0.9
// against an attacker whose knowledge is one hour stale.
//
// Fig. 10: total load and MTD operational cost (%) per hour — the cost
// tracks the load/congestion level.
// Fig. 11: gamma(H_t, H_t'), gamma(H_t, H'_t'), gamma(H_t', H'_t') per
// hour — natural drift is ~0 and the attacker-view angle approximates the
// defender-view angle.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "mtd/daily.hpp"
#include "stats/rng.hpp"

namespace {

using namespace mtdgrid;

const char* hour_label(std::size_t h) {
  // Hour h covers [h, h+1); label it by its end time so that trace index
  // 17 (the peak) reads "6PM" as in the paper's Fig. 10.
  static const char* kLabels[] = {
      " 1AM", " 2AM", " 3AM", " 4AM", " 5AM", " 6AM", " 7AM", " 8AM",
      " 9AM", "10AM", "11AM", "12PM", " 1PM", " 2PM", " 3PM", " 4PM",
      " 5PM", " 6PM", " 7PM", " 8PM", " 9PM", "10PM", "11PM", "12AM"};
  return kLabels[h % 24];
}

void run_experiment() {
  const bench::Scale scale = bench::scale_from_env();
  const grid::PowerSystem sys = grid::make_case14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();

  mtd::DailySimulationOptions opt;
  opt.effectiveness.num_attacks =
      scale == bench::Scale::kFast ? 120 : bench::attacks_for(scale);
  opt.selection.extra_starts = bench::extra_starts_for(scale);
  opt.selection.search.max_evaluations = bench::search_evals_for(scale);
  stats::Rng rng(2024);
  const auto records = mtd::run_daily_simulation(sys, trace, opt, rng);

  bench::print_header(
      "Fig. 10 — MTD operational cost over a day (NYISO-shaped trace)",
      "Paper shape: cost ~ 0 overnight, rising to a few percent around the "
      "evening peak; cost tracks the load level.");
  std::printf("  %-6s %10s %12s %10s %10s\n", "hour", "load (MW)",
              "cost incr.", "gamma_th", "eta(0.9)");
  for (const auto& r : records) {
    std::printf("  %-6s %10.0f %11.3f%% %10.2f %10.2f%s\n",
                hour_label(r.hour), r.total_load_mw, r.cost_increase_pct,
                r.gamma_threshold, r.eta_at_target,
                r.feasible ? "" : "  (infeasible)");
  }

  bench::print_header(
      "Fig. 11 — subspace angles over the day",
      "Paper shape: gamma(H_t, H_t') ~ 0 (temporal load correlation) and "
      "gamma(H_t, H'_t') ~ gamma(H_t', H'_t').");
  std::printf("  %-6s %14s %16s %16s\n", "hour", "g(Ht,Ht')",
              "g(Ht,H'_t')", "g(Ht',H'_t')");
  for (const auto& r : records) {
    std::printf("  %-6s %14.4f %16.4f %16.4f\n", hour_label(r.hour),
                r.gamma_ht_htp, r.gamma_ht_hmtd, r.gamma_htp_hmtd);
  }
  std::printf("\n");
}

void BM_HourlyBaseOpf(benchmark::State& state) {
  grid::PowerSystem sys = grid::make_case14();
  for (auto _ : state) {
    benchmark::DoNotOptimize(opf::solve_dc_opf(sys));
  }
}
BENCHMARK(BM_HourlyBaseOpf);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
