// Reproduces Fig. 6(a)/(b): MTD effectiveness eta'(delta) as a function of
// the subspace angle gamma(H_t, H'_t') for the IEEE 14-bus and IEEE 30-bus
// systems, delta in {0.5, 0.8, 0.9, 0.95}, FP rate 5e-4, attacks scaled to
// ||a||_1/||z||_1 ~ 0.08.
//
// For the 14-bus system each point solves the paper's problem (4) with the
// SPA pinned at the target angle (fmincon + MultiStart analogue). For the
// 30-bus system the perturbation is found by bisecting along a segment
// from the no-MTD reactances to a high-angle corner of the D-FACTS box —
// a much cheaper generator of "a feasible perturbation with the requested
// gamma" that leaves the effectiveness statistics unchanged.

#include <benchmark/benchmark.h>

#include <optional>

#include "bench_util.hpp"
#include "core/thread_pool.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "io/case_registry.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/selection.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"
#include "opf/reactance_opf.hpp"
#include "stats/rng.hpp"

namespace {

using namespace mtdgrid;

mtd::EffectivenessOptions effectiveness_options(bench::Scale scale) {
  mtd::EffectivenessOptions opt;
  opt.num_attacks = bench::attacks_for(scale);
  opt.sigma_mw = 0.1;  // spreads the eta transition over the gamma range
                       // reachable by our D-FACTS model (~0-0.26 rad on
                       // the 14-bus system); see EXPERIMENTS.md
  opt.fp_rate = 5e-4;
  if (scale == bench::Scale::kFull) {
    opt.method = mtd::DetectionMethod::kMonteCarlo;
    opt.noise_trials = 1000;
  }
  return opt;
}

/// Bisection along x(t) = x0 + t (corner - x0) for gamma(H0, H(x(t))) ==
/// target, keeping the OPF feasible. Returns nullopt if the target exceeds
/// the reachable angle.
std::optional<linalg::Vector> perturbation_with_gamma(
    const grid::PowerSystem& sys, const linalg::Matrix& h0, double target,
    stats::Rng& rng) {
  const auto dfacts = sys.dfacts_branches();
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();

  // Pick the best of a few random corners as the far end of the segment.
  linalg::Vector best_corner;
  double best_gamma = -1.0;
  for (int trial = 0; trial < 24; ++trial) {
    linalg::Vector corner = sys.reactances();
    for (std::size_t l : dfacts)
      corner[l] = (rng.uniform() < 0.5) ? lo[l] : hi[l];
    if (!opf::solve_dc_opf(sys, corner).feasible) continue;
    const double gamma = mtd::spa(h0, grid::measurement_matrix(sys, corner));
    if (gamma > best_gamma) {
      best_gamma = gamma;
      best_corner = corner;
    }
  }
  if (best_gamma < target) return std::nullopt;

  const linalg::Vector x0 = sys.reactances();
  double t_lo = 0.0, t_hi = 1.0;
  linalg::Vector x = best_corner;
  for (int iter = 0; iter < 40; ++iter) {
    const double t = 0.5 * (t_lo + t_hi);
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = x0[i] + t * (best_corner[i] - x0[i]);
    const double gamma = mtd::spa(h0, grid::measurement_matrix(sys, x));
    if (gamma < target) {
      t_lo = t;
    } else {
      t_hi = t;
    }
    if (t_hi - t_lo < 1e-4) break;
  }
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = x0[i] + t_hi * (best_corner[i] - x0[i]);
  if (!opf::solve_dc_opf(sys, x).feasible) return std::nullopt;
  return x;
}

void run_figure(const grid::PowerSystem& sys_in,
                const std::vector<double>& gammas, bool use_problem4,
                bench::Scale scale, std::uint64_t seed) {
  grid::PowerSystem sys = sys_in;
  stats::Rng rng(seed);

  // The no-MTD operating point the attacker learned: the nominal case-file
  // reactances (box center of the D-FACTS range, giving the full gamma
  // sweep range of the paper's static-load experiment) with the dispatch
  // from problem (1).
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  if (!base.feasible) {
    std::printf("  base OPF infeasible for %s\n", sys.name().c_str());
    return;
  }
  const linalg::Matrix h0 = grid::measurement_matrix(sys);

  const std::vector<double> deltas = {0.5, 0.8, 0.9, 0.95};
  std::printf("  %-14s %10s %10s %10s %10s\n", "gamma (rad)", "eta(0.50)",
              "eta(0.80)", "eta(0.90)", "eta(0.95)");
  for (double gamma_target : gammas) {
    std::optional<linalg::Vector> x;
    if (use_problem4) {
      mtd::MtdSelectionOptions sel;
      sel.gamma_threshold = gamma_target;
      sel.pin_gamma = true;
      sel.extra_starts = bench::extra_starts_for(scale);
      sel.search.max_evaluations = bench::search_evals_for(scale);
      const mtd::MtdSelectionResult r =
          mtd::select_mtd_perturbation(sys, h0, base.cost, sel, rng);
      if (r.feasible) x = r.reactances;
    } else {
      x = perturbation_with_gamma(sys, h0, gamma_target, rng);
    }
    if (!x) {
      std::printf("  %-14.3f        (gamma unreachable)\n", gamma_target);
      continue;
    }
    const opf::DispatchResult d = opf::solve_dc_opf(sys, *x);
    const linalg::Matrix h_mtd = grid::measurement_matrix(sys, *x);
    const linalg::Vector z_ref =
        grid::noiseless_measurements(sys, *x, d.theta_reduced);
    mtd::EffectivenessOptions eff = effectiveness_options(scale);
    eff.deltas = deltas;
    const mtd::EffectivenessResult res =
        mtd::evaluate_effectiveness(h0, h_mtd, z_ref, eff, rng);
    std::printf("  %-14.3f %10.3f %10.3f %10.3f %10.3f\n",
                mtd::spa(h0, h_mtd), res.eta[0], res.eta[1], res.eta[2],
                res.eta[3]);
  }
  std::printf("\n");
}

void run_experiment() {
  const bench::Scale scale = bench::scale_from_env();

  bench::print_header(
      "Fig. 6(a) — eta'(delta) vs gamma(H_t, H'_t'), IEEE 14-bus",
      "Paper shape: eta' rises monotonically with gamma and saturates near "
      "the achievable\nceiling (the paper's axis reaches 0.45 rad; our "
      "D-FACTS model tops out at ~0.26 rad\nfrom the nominal reactances — "
      "see EXPERIMENTS.md). FP rate 5e-4.");
  run_figure(grid::make_case14(),
             {0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20, 0.225,
              0.25},
             /*use_problem4=*/true, scale, 101);

  bench::print_header(
      "Fig. 6(b) — eta'(delta) vs gamma(H_t, H'_t'), IEEE 30-bus",
      "Same trend on the larger system (scalability check).");
  run_figure(grid::make_case_ieee30(),
             {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40},
             /*use_problem4=*/false, scale, 202);
}

void BM_EffectivenessEvaluation(benchmark::State& state) {
  grid::PowerSystem sys = grid::make_case14();
  stats::Rng rng(7);
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.35;
  const linalg::Matrix h_mtd = grid::measurement_matrix(sys, x);
  const opf::DispatchResult d = opf::solve_dc_opf(sys, x);
  const linalg::Vector z_ref =
      grid::noiseless_measurements(sys, x, d.theta_reduced);
  mtd::EffectivenessOptions eff;
  eff.num_attacks = static_cast<int>(state.range(0));
  eff.sigma_mw = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mtd::evaluate_effectiveness(h0, h_mtd, z_ref, eff, rng));
  }
}
BENCHMARK(BM_EffectivenessEvaluation)->Arg(100)->Arg(500);

// Batched vs per-candidate effectiveness: the batched API draws the attack
// sample once for the whole candidate set, so the speedup approaches
// (sample + score) / score per candidate.
void BM_EffectivenessBatched(benchmark::State& state) {
  grid::PowerSystem sys = grid::make_case14();
  stats::Rng rng(7);
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  std::vector<linalg::Matrix> candidates;
  for (double factor : {0.8, 0.9, 1.1, 1.2, 1.3, 1.35, 1.4, 1.45}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
    candidates.push_back(grid::measurement_matrix(sys, x));
  }
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.35;
  const opf::DispatchResult d = opf::solve_dc_opf(sys, x);
  const linalg::Vector z_ref =
      grid::noiseless_measurements(sys, x, d.theta_reduced);
  mtd::EffectivenessOptions eff;
  eff.num_attacks = static_cast<int>(state.range(0));
  eff.sigma_mw = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mtd::evaluate_candidates(h0, candidates, z_ref, eff, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int>(candidates.size()));
}
BENCHMARK(BM_EffectivenessBatched)->Arg(100)->Arg(500);

// Thread-scaling sweep on the Case118 effectiveness evaluation (the
// gating cost of the large-case keyspace audits): same seed at every
// thread count, so this doubles as a determinism check — the mean
// detection probability must not move between rows. Wall-clock (real
// time) is the quantity of interest. The recorded baseline was measured
// on the 1-core reference VM (see CONTRIBUTING.md for the regeneration
// workflow); on an 8-core machine the 8-thread row should run >= 4x
// faster than the 1-thread row.
void BM_Case118EffectivenessParallel(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  grid::PowerSystem sys = io::load_case("case118");
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.35;
  const linalg::Matrix h_mtd = grid::measurement_matrix(sys, x);
  const opf::DispatchResult d = opf::solve_dc_opf(sys, x);
  const linalg::Vector z_ref =
      grid::noiseless_measurements(sys, x, d.theta_reduced);
  mtd::EffectivenessOptions eff;
  eff.num_attacks = 300;
  eff.sigma_mw = 0.1;

  core::ThreadPool::set_global_num_threads(threads);
  for (auto _ : state) {
    stats::Rng rng(7);  // fixed seed: every thread count computes the
                        // same sample, so rows are directly comparable
    const mtd::EffectivenessResult r =
        mtd::evaluate_effectiveness(h0, h_mtd, z_ref, eff, rng);
    benchmark::DoNotOptimize(r.mean_detection);
  }
  core::ThreadPool::set_global_num_threads(0);  // restore the default
}
BENCHMARK(BM_Case118EffectivenessParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SpaComputation(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.25;
  const linalg::Matrix h1 = grid::measurement_matrix(sys, x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mtd::spa(h0, h1));
  }
}
BENCHMARK(BM_SpaComputation);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
