// Microbenchmarks of the core kernels every experiment is built from:
// measurement-matrix assembly, DC power flow, the dispatch LP, the WLS
// estimator, SPA computation, and the full attack-detection path. Useful
// for sizing the Monte-Carlo budgets and search budgets in the harness.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "attack/fdi_attack.hpp"
#include "estimation/bdd.hpp"
#include "estimation/detection.hpp"
#include "estimation/state_estimator.hpp"
#include "grid/cases.hpp"
#include "grid/compose.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "linalg/subspace.hpp"
#include "linalg/svd.hpp"
#include "mtd/spa.hpp"
#include "mtd/zone_selection.hpp"
#include "opf/dc_opf.hpp"
#include "stats/rng.hpp"

namespace {

using namespace mtdgrid;

grid::PowerSystem system_for(int id) {
  switch (id) {
    case 0: return grid::make_case4();
    case 1: return grid::make_case_wscc9();
    case 2: return grid::make_case14();
    case 3: return grid::make_case_ieee30();
    case 4: return grid::make_case57();
    default: return grid::make_case118();
  }
}

const char* system_name(int id) {
  switch (id) {
    case 0: return "case4";
    case 1: return "wscc9";
    case 2: return "ieee14";
    case 3: return "ieee30";
    case 4: return "case57";
    default: return "case118";
  }
}

void BM_MeasurementMatrix(benchmark::State& state) {
  const grid::PowerSystem sys = system_for(static_cast<int>(state.range(0)));
  const linalg::Vector x = sys.reactances();
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid::measurement_matrix(sys, x));
  }
  state.SetLabel(system_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_MeasurementMatrix)->DenseRange(0, 5);

void BM_DcPowerFlow(benchmark::State& state) {
  const grid::PowerSystem sys = system_for(static_cast<int>(state.range(0)));
  linalg::Vector injections(sys.num_buses());
  for (std::size_t i = 0; i < sys.num_buses(); ++i)
    injections[i] = -sys.bus(i).load_mw;
  injections[0] += sys.total_load_mw();
  const linalg::Vector x = sys.reactances();
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid::solve_dc_power_flow(sys, x, injections));
  }
  state.SetLabel(system_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_DcPowerFlow)->DenseRange(0, 5);

void BM_DispatchLp(benchmark::State& state) {
  const grid::PowerSystem sys = system_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opf::solve_dc_opf(sys));
  }
  state.SetLabel(system_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_DispatchLp)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

void BM_EstimatorConstruction(benchmark::State& state) {
  const grid::PowerSystem sys = system_for(static_cast<int>(state.range(0)));
  const linalg::Matrix h = grid::measurement_matrix(sys);
  for (auto _ : state) {
    estimation::StateEstimator est(h, 1.0);
    benchmark::DoNotOptimize(est);
  }
  state.SetLabel(system_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_EstimatorConstruction)->DenseRange(0, 5);

void BM_WlsEstimate(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  const estimation::StateEstimator est(h, 1.0);
  stats::Rng rng(1);
  linalg::Vector z(h.rows());
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = rng.gaussian(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate(z));
  }
}
BENCHMARK(BM_WlsEstimate);

// Dense vs sparse storage policy on the full state-estimation path
// (estimator construction = Gram + factorization, then one estimate),
// the work the daily engine redoes at every re-key. range(0): 0 =
// case118, 1 = case300, 2 = the composed case118x3 tile (the same
// artifact shape CI's composed-case gate audits). The CI perf gate
// asserts the sparse case300 variant beats the dense one by >= 3x.
grid::PowerSystem se_system_for(int id) {
  switch (id) {
    case 0: return grid::make_case118();
    case 1: return grid::make_case300();
    default: {
      grid::ComposeOptions opt;
      opt.copies = 3;
      return grid::compose_cases(grid::make_case118(), opt).system;
    }
  }
}

const char* se_system_name(int id) {
  return id == 0 ? "case118" : id == 1 ? "case300" : "case118x3";
}

void BM_SparseVsDenseStateEstimationDense(benchmark::State& state) {
  const grid::PowerSystem sys =
      se_system_for(static_cast<int>(state.range(0)));
  const linalg::Matrix h = grid::measurement_matrix(sys);
  stats::Rng rng(5);
  linalg::Vector z(h.rows());
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = rng.gaussian(0.0, 10.0);
  for (auto _ : state) {
    const estimation::StateEstimator est(h, 1.0);
    benchmark::DoNotOptimize(est.estimate(z));
  }
  state.SetLabel(se_system_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SparseVsDenseStateEstimationDense)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);

void BM_SparseVsDenseStateEstimationSparse(benchmark::State& state) {
  const grid::PowerSystem sys =
      se_system_for(static_cast<int>(state.range(0)));
  const linalg::SparseMatrix h = grid::sparse_measurement_matrix(sys);
  stats::Rng rng(5);
  linalg::Vector z(h.rows());
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = rng.gaussian(0.0, 10.0);
  for (auto _ : state) {
    const estimation::StateEstimator est(h, 1.0);
    benchmark::DoNotOptimize(est.estimate(z));
  }
  state.SetLabel(se_system_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SparseVsDenseStateEstimationSparse)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);

void BM_ResidualNorm(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  const estimation::StateEstimator est(h, 1.0);
  stats::Rng rng(2);
  linalg::Vector z(h.rows());
  for (std::size_t i = 0; i < z.size(); ++i) z[i] = rng.gaussian(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.normalized_residual_norm(z));
  }
}
BENCHMARK(BM_ResidualNorm);

void BM_Spa(benchmark::State& state) {
  const grid::PowerSystem sys = system_for(static_cast<int>(state.range(0)));
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
  const linalg::Matrix h1 = grid::measurement_matrix(sys, x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mtd::spa(h0, h1));
  }
  state.SetLabel(system_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Spa)->DenseRange(0, 4);

void BM_AnalyticDetectionProbability(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
  const estimation::StateEstimator est(grid::measurement_matrix(sys, x),
                                       0.1);
  const estimation::BadDataDetector bdd(est, 5e-4);
  stats::Rng rng(3);
  const attack::FdiAttack atk = attack::random_stealthy_attack(
      h0, linalg::Vector(h0.rows(), 25.0), 0.08, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimation::analytic_detection_probability(est, bdd, atk.a));
  }
}
BENCHMARK(BM_AnalyticDetectionProbability);

// --- the SPA/selection hot path: SVD baseline vs QR fast path -----------
//
// The candidate sweep below is the inner loop of the MTD selection search
// (paper problem (4)): every candidate needs the dispatch and the gamma
// against the attacker matrix. The *Svd variants are the pre-optimization
// reference (full H rebuild + Bjorck-Golub SVD spa + one simplex solve per
// candidate); the *Fast variants are the shipped path (SpaEvaluator rank-k
// updates + DispatchEvaluator merit-order certificate). CI guards the Fast
// timings against bench/baseline.json and asserts Fast >= 5x Svd.

std::vector<linalg::Vector> selection_candidates(
    const grid::PowerSystem& sys, int count) {
  // Deterministic candidate sweep across the D-FACTS box.
  stats::Rng rng(1234);
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  std::vector<linalg::Vector> candidates;
  candidates.reserve(count);
  for (int c = 0; c < count; ++c) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches())
      if (rng.uniform() < 0.8) x[l] = rng.uniform(lo[l], hi[l]);
    candidates.push_back(std::move(x));
  }
  return candidates;
}

constexpr int kSelectionSweep = 16;

void BM_Case57SelectionLoopSvd(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case57();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const auto candidates = selection_candidates(sys, kSelectionSweep);
  for (auto _ : state) {
    double acc = 0.0;
    for (const linalg::Vector& x : candidates) {
      const opf::DispatchResult d = opf::solve_dc_opf(sys, x);
      acc += d.feasible ? d.cost : 0.0;
      acc += mtd::spa(h0, grid::measurement_matrix(sys, x));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kSelectionSweep);
}
BENCHMARK(BM_Case57SelectionLoopSvd)->Unit(benchmark::kMillisecond);

void BM_Case57SelectionLoopFast(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case57();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const auto candidates = selection_candidates(sys, kSelectionSweep);
  const mtd::SpaEvaluator spa_eval(sys, h0);
  const opf::DispatchEvaluator dispatch_eval(sys);
  for (auto _ : state) {
    double acc = 0.0;
    for (const linalg::Vector& x : candidates) {
      const opf::DispatchResult d = dispatch_eval.evaluate(x);
      acc += d.feasible ? d.cost : 0.0;
      acc += spa_eval.gamma(x);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kSelectionSweep);
}
BENCHMARK(BM_Case57SelectionLoopFast)->Unit(benchmark::kMillisecond);

void BM_Case118SelectionLoopFast(benchmark::State& state) {
  // The amortized selection sweep at IEEE 118-bus scale (490 x 117
  // measurement model, loaded through the io subsystem). Guarded in CI
  // against bench/baseline.json like the case57 loops.
  const grid::PowerSystem sys = grid::make_case118();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const auto candidates = selection_candidates(sys, kSelectionSweep);
  const mtd::SpaEvaluator spa_eval(sys, h0);
  const opf::DispatchEvaluator dispatch_eval(sys);
  for (auto _ : state) {
    double acc = 0.0;
    for (const linalg::Vector& x : candidates) {
      const opf::DispatchResult d = dispatch_eval.evaluate(x);
      acc += d.feasible ? d.cost : 0.0;
      acc += spa_eval.gamma(x);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kSelectionSweep);
}
BENCHMARK(BM_Case118SelectionLoopFast)->Unit(benchmark::kMillisecond);

void BM_ZoneSelectionCase118x9(benchmark::State& state) {
  // End-to-end zone-decomposed D-FACTS selection on the 1062-bus
  // composed mega-grid: 9 per-zone selections (118-bus-sized dense
  // solves) plus the full-model sparse SPA boundary recheck — the
  // workload that is intractable for the monolithic dense path. Same
  // tiny budget as the slow-tier test; one iteration is ~20 s, so the
  // benchmark pins Iterations(1) and CI guards the normalized time.
  grid::ComposeOptions copt;
  copt.copies = 9;
  const grid::ComposeResult composed =
      grid::compose_cases(grid::make_case118(), copt);
  const grid::ZonePartition partition = composed.zones();
  mtd::ZoneSelectionOptions opt;
  opt.selection.gamma_threshold = 0.01;
  opt.selection.extra_starts = 0;
  opt.selection.search.max_evaluations = 20;
  opt.max_rounds = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mtd::select_mtd_zones(composed.system, partition, opt, 118900));
  }
  state.SetLabel("case118x9/9-zones");
}
BENCHMARK(BM_ZoneSelectionCase118x9)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_SpaIncremental(benchmark::State& state) {
  const grid::PowerSystem sys = system_for(static_cast<int>(state.range(0)));
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const mtd::SpaEvaluator eval(sys, h0);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.gamma(x));
  }
  state.SetLabel(system_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SpaIncremental)->DenseRange(0, 5);

void BM_LargestPrincipalAngleQr(benchmark::State& state) {
  const grid::PowerSystem sys = system_for(static_cast<int>(state.range(0)));
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
  const linalg::Matrix h1 = grid::measurement_matrix(sys, x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::largest_principal_angle_qr(h0, h1));
  }
  state.SetLabel(system_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_LargestPrincipalAngleQr)->DenseRange(0, 5);

void BM_IncrementalHUpdate(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case57();
  const linalg::Vector x0 = sys.reactances();
  linalg::Vector x1 = x0;
  for (std::size_t l : sys.dfacts_branches()) x1[l] *= 1.3;
  const auto changed = grid::changed_branches(x0, x1);
  linalg::Matrix h = grid::measurement_matrix(sys, x0);
  bool forward = true;
  for (auto _ : state) {
    if (forward) {
      grid::update_measurement_matrix(sys, h, x0, x1, changed);
    } else {
      grid::update_measurement_matrix(sys, h, x1, x0, changed);
    }
    forward = !forward;
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_IncrementalHUpdate);

void BM_DispatchEvaluatorCase57(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case57();
  const opf::DispatchEvaluator evaluator(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(x));
  }
}
BENCHMARK(BM_DispatchEvaluatorCase57)->Unit(benchmark::kMicrosecond);

void BM_JacobiSvd(benchmark::State& state) {
  stats::Rng rng(4);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a(2 * n, n);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::SvdDecomposition(a));
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
