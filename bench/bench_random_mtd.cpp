// Reproduces Fig. 7 and Fig. 8: the random-perturbation MTD baseline of
// prior work ([11]-[13]) on the IEEE 14-bus system. Perturbations are
// drawn uniformly within +/-2% of the optimal reactances (the "keyspace").
//
// Fig. 7: eta'(delta) as a function of delta for five random draws —
// showing the high trial-to-trial variability.
// Fig. 8: the fraction of 500 random draws achieving eta'(delta) >= 0.9 —
// showing that fewer than ~10% of random perturbations are effective.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/random_mtd.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"
#include "opf/reactance_opf.hpp"
#include "stats/rng.hpp"

namespace {

using namespace mtdgrid;

// Sensor noise for the random-MTD experiments. Random +/-2% perturbations
// produce tiny subspace rotations (gamma ~ 0.002-0.007 rad); the paper's
// Fig. 7 variability is only visible when the BDD operates at high
// precision, hence the smaller sigma than the Fig. 6 runs (EXPERIMENTS.md
// discusses the calibration).
constexpr double kSigmaMw = 0.005;

struct Baseline {
  grid::PowerSystem sys;
  linalg::Matrix h0;
  linalg::Vector z0;
};

Baseline make_baseline() {
  grid::PowerSystem sys = grid::make_case14();
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  Baseline b{std::move(sys), {}, {}};
  b.h0 = grid::measurement_matrix(b.sys);
  b.z0 = grid::noiseless_measurements(b.sys, b.sys.reactances(),
                                      base.theta_reduced);
  return b;
}

void run_fig7(const Baseline& b, bench::Scale scale) {
  bench::print_header(
      "Fig. 7 — eta'(delta) for five random +/-2% MTD perturbations",
      "Paper shape: wildly different curves across trials — random "
      "keyspace draws cannot guarantee effectiveness.");
  stats::Rng rng(11);
  const std::vector<double> deltas = {0.05, 0.2, 0.4, 0.6, 0.8, 0.95};
  std::printf("  %-8s %-12s", "trial", "gamma (rad)");
  for (double d : deltas) std::printf(" eta(%.2f)", d);
  std::printf("\n");
  for (int trial = 0; trial < 5; ++trial) {
    const linalg::Vector x = mtd::random_reactance_perturbation(
        b.sys, b.sys.reactances(), 0.02, rng);
    const linalg::Matrix hp = grid::measurement_matrix(b.sys, x);
    mtd::EffectivenessOptions eff;
    eff.num_attacks = bench::attacks_for(scale);
    eff.sigma_mw = kSigmaMw;
    eff.deltas = deltas;
    const auto r = mtd::evaluate_effectiveness(b.h0, hp, b.z0, eff, rng);
    std::printf("  %-8d %-12.4f", trial + 1, mtd::spa(b.h0, hp));
    for (double eta : r.eta) std::printf(" %9.3f", eta);
    std::printf("\n");
  }
  std::printf("\n");
}

void run_fig8(const Baseline& b, bench::Scale scale) {
  const int keyspace =
      scale == bench::Scale::kFast ? 100 : 500;  // paper: 500 draws
  bench::print_header(
      "Fig. 8 — fraction of random perturbations with eta'(delta) >= 0.9",
      "Paper shape: less than ~10% of the keyspace satisfies "
      "eta'(0.9) >= 0.9; the curve decays as delta grows.");
  stats::Rng rng(13);
  const std::vector<double> deltas = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6,  0.7, 0.8, 0.9, 0.95};
  std::vector<int> hits(deltas.size(), 0);
  mtd::EffectivenessOptions eff;
  eff.num_attacks =
      scale == bench::Scale::kFast ? 100 : bench::attacks_for(scale);
  eff.sigma_mw = kSigmaMw;
  eff.deltas = deltas;
  for (int k = 0; k < keyspace; ++k) {
    const linalg::Vector x = mtd::random_reactance_perturbation(
        b.sys, b.sys.reactances(), 0.02, rng);
    const auto r = mtd::evaluate_effectiveness(
        b.h0, grid::measurement_matrix(b.sys, x), b.z0, eff, rng);
    for (std::size_t i = 0; i < deltas.size(); ++i)
      if (r.eta[i] >= 0.9) ++hits[i];
  }
  std::printf("  %-8s %22s\n", "delta", "fraction of keyspace");
  for (std::size_t i = 0; i < deltas.size(); ++i)
    std::printf("  %-8.2f %22.3f\n", deltas[i],
                static_cast<double>(hits[i]) / keyspace);
  std::printf("  (keyspace size: %d)\n\n", keyspace);
}

void BM_RandomPerturbationDraw(benchmark::State& state) {
  const grid::PowerSystem sys = grid::make_case14();
  stats::Rng rng(3);
  const linalg::Vector x0 = sys.reactances();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mtd::random_reactance_perturbation(sys, x0, 0.02, rng));
  }
}
BENCHMARK(BM_RandomPerturbationDraw);

void BM_KeyspaceMemberEvaluation(benchmark::State& state) {
  const Baseline b = make_baseline();
  stats::Rng rng(4);
  mtd::EffectivenessOptions eff;
  eff.num_attacks = 200;
  eff.sigma_mw = kSigmaMw;
  for (auto _ : state) {
    const linalg::Vector x = mtd::random_reactance_perturbation(
        b.sys, b.sys.reactances(), 0.02, rng);
    benchmark::DoNotOptimize(mtd::evaluate_effectiveness(
        b.h0, grid::measurement_matrix(b.sys, x), b.z0, eff, rng));
  }
}
BENCHMARK(BM_KeyspaceMemberEvaluation);

}  // namespace

int main(int argc, char** argv) {
  const bench::Scale scale = bench::scale_from_env();
  const Baseline b = make_baseline();
  run_fig7(b, scale);
  run_fig8(b, scale);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
