// Serving-layer throughput: how many requests the MTD daemon core
// absorbs per second, through the exact code path the socket transport
// drives (`MtdDaemon::handle_line` — parse, snapshot lookup, estimator
// evaluation, reply serialization). The daemon is built once per binary
// run (pass-1 day + hour-0 re-key) and the request mix is pinned, so the
// numbers isolate the per-request cost.
//
// BM_DaemonDetectThroughput is a guarded benchmark (bench/baseline.json
// + the CI perf filter): a `detect` with a submitted 54-entry measurement
// vector is the daemon's workhorse query — one WLS residual evaluation
// plus the protocol round trip.
//
// BM_ShardedDetectThroughput/S is the fleet-scaling gate: S client
// threads each drive their own shard of a 4-shard ShardedDaemon with
// routed detects (the lock-free read path), splitting a fixed total
// request count. Shards share no mutable state, so 4-shard wall time
// should approach 1/4 of 1-shard — CI asserts >= 2x on its 4-core
// runners (`--min-speedup ...@4`; skipped on smaller machines).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "serve/daemon.hpp"
#include "serve/json.hpp"
#include "serve/sharded.hpp"

namespace {

using namespace mtdgrid;

serve::MtdDaemon& shared_daemon() {
  static std::unique_ptr<serve::MtdDaemon> daemon = [] {
    serve::DaemonOptions options;
    options.seed = 7;
    options.history_hours = 4;
    options.daily.gamma_grid = {0.05, 0.15};
    options.daily.base_search_evaluations = 120;
    options.daily.effectiveness.num_attacks = 40;
    options.daily.selection.extra_starts = 1;
    options.daily.selection.search.max_evaluations = 150;
    return std::make_unique<serve::MtdDaemon>(
        grid::make_case14(), grid::DailyLoadTrace::nyiso_winter_weekday(),
        options);
  }();
  return *daemon;
}

/// A realistic detect request: the hour-0 probe sample (attack-free noisy
/// measurements) resubmitted as an explicit 54-entry `z`.
std::string detect_request_line() {
  static const std::string line = [] {
    serve::MtdDaemon& daemon = shared_daemon();
    const serve::Json probe =
        serve::Json::parse(daemon.handle_line(R"({"op":"probe","id":1})"));
    serve::Json req;
    req.set("op", serve::Json("detect"));
    serve::Json z;
    for (const serve::Json& v : probe.find("z")->as_array())
      z.push_back(serve::Json(v.as_number()));
    req.set("z", std::move(z));
    return req.dump();
  }();
  return line;
}

void BM_DaemonDetectThroughput(benchmark::State& state) {
  serve::MtdDaemon& daemon = shared_daemon();
  const std::string request = detect_request_line();
  for (auto _ : state) {
    benchmark::DoNotOptimize(daemon.handle_line(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonDetectThroughput);

serve::ShardedDaemon& shared_fleet() {
  static std::unique_ptr<serve::ShardedDaemon> fleet = [] {
    serve::ShardedOptions options;
    options.cases.assign(4, "case14");
    options.seed = 7;
    options.history_hours = 4;
    options.daily.gamma_grid = {0.05, 0.15};
    options.daily.base_search_evaluations = 120;
    options.daily.effectiveness.num_attacks = 40;
    options.daily.selection.extra_starts = 1;
    options.daily.selection.search.max_evaluations = 150;
    std::vector<std::pair<grid::PowerSystem, grid::DailyLoadTrace>> systems;
    for (int k = 0; k < 4; ++k)
      systems.emplace_back(grid::make_case14(),
                           grid::DailyLoadTrace::nyiso_winter_weekday());
    return std::make_unique<serve::ShardedDaemon>(std::move(systems),
                                                  options);
  }();
  return *fleet;
}

/// Shard k's detect line: its own hour-0 probe sample resubmitted as an
/// explicit `z` with a `"shard"` routing field (each shard has its own
/// key, so z vectors are shard-specific).
std::string sharded_detect_line(std::size_t shard) {
  serve::ShardedDaemon& fleet = shared_fleet();
  const serve::Json probe = serve::Json::parse(fleet.handle_line(
      R"({"op":"probe","id":1,"shard":)" + std::to_string(shard) + "}"));
  serve::Json req;
  req.set("op", serve::Json("detect"));
  req.set("shard", serve::Json(shard));
  serve::Json z;
  for (const serve::Json& v : probe.find("z")->as_array())
    z.push_back(serve::Json(v.as_number()));
  req.set("z", std::move(z));
  return req.dump();
}

/// Fleet scaling: state.range(0) client threads, each pinned to its own
/// shard, split kTotalRequests routed detects per iteration. Real time
/// (not CPU time) is the metric — the point is wall-clock speedup from
/// shards serving concurrently on the lock-free read path.
void BM_ShardedDetectThroughput(benchmark::State& state) {
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kTotalRequests = 1024;
  serve::ShardedDaemon& fleet = shared_fleet();
  std::vector<std::string> lines;
  for (std::size_t s = 0; s < clients; ++s)
    lines.push_back(sharded_detect_line(s));
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t s = 0; s < clients; ++s) {
      threads.emplace_back([&fleet, &lines, s, clients] {
        const std::size_t n = kTotalRequests / clients;
        for (std::size_t i = 0; i < n; ++i)
          benchmark::DoNotOptimize(fleet.handle_line(lines[s]));
      });
    }
    for (std::thread& t : threads) t.join();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kTotalRequests / clients * clients));
}
BENCHMARK(BM_ShardedDetectThroughput)->Arg(1)->Arg(4)->UseRealTime();

void BM_DaemonStatusThroughput(benchmark::State& state) {
  serve::MtdDaemon& daemon = shared_daemon();
  const std::string request = R"({"op":"status"})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(daemon.handle_line(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonStatusThroughput);

void BM_DaemonProbeThroughput(benchmark::State& state) {
  serve::MtdDaemon& daemon = shared_daemon();
  // Distinct ids exercise the per-request substream derivation.
  std::uint64_t id = 0;
  for (auto _ : state) {
    const std::string request =
        R"({"op":"probe","id":)" + std::to_string(id++) + "}";
    benchmark::DoNotOptimize(daemon.handle_line(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonProbeThroughput);

}  // namespace
