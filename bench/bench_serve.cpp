// Serving-layer throughput: how many requests the MTD daemon core
// absorbs per second, through the exact code path the socket transport
// drives (`MtdDaemon::handle_line` — parse, snapshot lookup, estimator
// evaluation, reply serialization). The daemon is built once per binary
// run (pass-1 day + hour-0 re-key) and the request mix is pinned, so the
// numbers isolate the per-request cost.
//
// BM_DaemonDetectThroughput is the guarded benchmark (bench/baseline.json
// + the CI perf filter): a `detect` with a submitted 54-entry measurement
// vector is the daemon's workhorse query — one WLS residual evaluation
// plus the protocol round trip.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_util.hpp"
#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "serve/daemon.hpp"
#include "serve/json.hpp"

namespace {

using namespace mtdgrid;

serve::MtdDaemon& shared_daemon() {
  static std::unique_ptr<serve::MtdDaemon> daemon = [] {
    serve::DaemonOptions options;
    options.seed = 7;
    options.history_hours = 4;
    options.daily.gamma_grid = {0.05, 0.15};
    options.daily.base_search_evaluations = 120;
    options.daily.effectiveness.num_attacks = 40;
    options.daily.selection.extra_starts = 1;
    options.daily.selection.search.max_evaluations = 150;
    return std::make_unique<serve::MtdDaemon>(
        grid::make_case14(), grid::DailyLoadTrace::nyiso_winter_weekday(),
        options);
  }();
  return *daemon;
}

/// A realistic detect request: the hour-0 probe sample (attack-free noisy
/// measurements) resubmitted as an explicit 54-entry `z`.
std::string detect_request_line() {
  static const std::string line = [] {
    serve::MtdDaemon& daemon = shared_daemon();
    const serve::Json probe =
        serve::Json::parse(daemon.handle_line(R"({"op":"probe","id":1})"));
    serve::Json req;
    req.set("op", serve::Json("detect"));
    serve::Json z;
    for (const serve::Json& v : probe.find("z")->as_array())
      z.push_back(serve::Json(v.as_number()));
    req.set("z", std::move(z));
    return req.dump();
  }();
  return line;
}

void BM_DaemonDetectThroughput(benchmark::State& state) {
  serve::MtdDaemon& daemon = shared_daemon();
  const std::string request = detect_request_line();
  for (auto _ : state) {
    benchmark::DoNotOptimize(daemon.handle_line(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonDetectThroughput);

void BM_DaemonStatusThroughput(benchmark::State& state) {
  serve::MtdDaemon& daemon = shared_daemon();
  const std::string request = R"({"op":"status"})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(daemon.handle_line(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonStatusThroughput);

void BM_DaemonProbeThroughput(benchmark::State& state) {
  serve::MtdDaemon& daemon = shared_daemon();
  // Distinct ids exercise the per-request substream derivation.
  std::uint64_t id = 0;
  for (auto _ : state) {
    const std::string request =
        R"({"op":"probe","id":)" + std::to_string(id++) + "}";
    benchmark::DoNotOptimize(daemon.handle_line(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DaemonProbeThroughput);

}  // namespace
