// Reproduces Fig. 9: the tradeoff between the MTD's effectiveness
// eta'(delta) and its operational cost (relative OPF cost increase,
// paper eq. (3)) on the IEEE 14-bus system at the 6 PM load of the daily
// trace, with the attacker's knowledge outdated by one hour.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/selection.hpp"
#include "opf/reactance_opf.hpp"
#include "stats/rng.hpp"

namespace {

using namespace mtdgrid;

void run_experiment() {
  const bench::Scale scale = bench::scale_from_env();
  grid::PowerSystem sys = grid::make_case14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  const linalg::Vector base_loads = sys.loads_mw();
  stats::Rng rng(31);

  // Attacker knowledge: the no-MTD system at 5 PM (one hour stale).
  trace.apply(sys, 16, base_loads);
  const opf::ReactanceOpfResult base_5pm = opf::solve_reactance_opf(sys, rng);
  const linalg::Matrix h_attacker =
      grid::measurement_matrix(sys, base_5pm.reactances);

  // Defender operates at the 6 PM load.
  trace.apply(sys, 17, base_loads);
  const opf::ReactanceOpfResult base_6pm = opf::solve_reactance_opf(sys, rng);

  bench::print_header(
      "Fig. 9 — effectiveness vs operational cost, 6 PM load",
      "Paper shape: cost ~ 0 for low eta'(delta), then a steep rise as "
      "eta' -> 1 (e.g. 0.96% -> 2.31% between eta'(0.9) of 0.8 and 0.9).");
  std::printf("  6 PM load: %.0f MW, no-MTD OPF cost: $%.2f\n\n",
              trace.total_mw(17), base_6pm.dispatch.cost);

  const std::vector<double> deltas = {0.5, 0.8, 0.9, 0.95};
  std::printf("  %-10s %-12s %10s %10s %10s %10s %12s\n", "gamma_th",
              "gamma", "eta(0.50)", "eta(0.80)", "eta(0.90)", "eta(0.95)",
              "cost incr.");
  for (double gamma_th :
       {0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.28, 0.30}) {
    mtd::MtdSelectionOptions sel;
    sel.gamma_threshold = gamma_th;
    sel.pin_gamma = true;  // see selection.hpp: keeps the achieved angle
                           // tied to the threshold across the sweep
    sel.extra_starts = bench::extra_starts_for(scale);
    sel.search.max_evaluations = bench::search_evals_for(scale);
    // The penalized direct search is noisy on the pinned-angle manifold;
    // keep the cheapest of a few independent solves, as MultiStart would.
    const int repeats = scale == bench::Scale::kFast ? 1 : 3;
    mtd::MtdSelectionResult r = mtd::select_mtd_perturbation(
        sys, h_attacker, base_6pm.dispatch.cost, sel, rng);
    for (int rep = 1; rep < repeats; ++rep) {
      const mtd::MtdSelectionResult candidate = mtd::select_mtd_perturbation(
          sys, h_attacker, base_6pm.dispatch.cost, sel, rng);
      if (candidate.feasible &&
          (!r.feasible || candidate.opf_cost < r.opf_cost))
        r = candidate;
    }
    if (!r.dispatch.feasible) {
      std::printf("  %-10.2f    (infeasible)\n", gamma_th);
      continue;
    }
    const linalg::Vector z_ref = grid::noiseless_measurements(
        sys, r.reactances, r.dispatch.theta_reduced);
    mtd::EffectivenessOptions eff;
    eff.num_attacks = bench::attacks_for(scale);
    eff.sigma_mw = 0.05;
    eff.deltas = deltas;
    const auto e =
        mtd::evaluate_effectiveness(h_attacker, r.h_mtd, z_ref, eff, rng);
    std::printf("  %-10.2f %-12.3f %10.3f %10.3f %10.3f %10.3f %11.3f%%\n",
                gamma_th, r.spa, e.eta[0], e.eta[1], e.eta[2], e.eta[3],
                100.0 * std::max(0.0, r.cost_increase));
  }
  std::printf("\n");
}

void BM_Problem4Selection(benchmark::State& state) {
  grid::PowerSystem sys = grid::make_case14();
  stats::Rng rng(5);
  const opf::ReactanceOpfResult base = opf::solve_reactance_opf(sys, rng);
  const linalg::Matrix h0 = grid::measurement_matrix(sys, base.reactances);
  mtd::MtdSelectionOptions sel;
  sel.gamma_threshold = 0.2;
  sel.extra_starts = 1;
  sel.search.max_evaluations = 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mtd::select_mtd_perturbation(
        sys, h0, base.dispatch.cost, sel, rng));
  }
}
BENCHMARK(BM_Problem4Selection)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
