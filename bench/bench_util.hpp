#pragma once

// Shared helpers for the experiment harness binaries. Each binary prints
// the rows/series of one paper table or figure, then runs a small set of
// google-benchmark kernels for the code paths that experiment exercises.
//
// Environment knobs:
//   MTDGRID_BENCH_FAST=1   shrink Monte-Carlo counts and search budgets
//                          (smoke-test mode; shapes remain, noise grows)
//   MTDGRID_BENCH_FULL=1   paper-scale Monte-Carlo (1000 attacks x 1000
//                          noise draws, Monte-Carlo detection method)

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mtdgrid::bench {

enum class Scale { kFast, kDefault, kFull };

inline Scale scale_from_env() {
  if (const char* fast = std::getenv("MTDGRID_BENCH_FAST");
      fast && std::string(fast) == "1")
    return Scale::kFast;
  if (const char* full = std::getenv("MTDGRID_BENCH_FULL");
      full && std::string(full) == "1")
    return Scale::kFull;
  return Scale::kDefault;
}

inline int attacks_for(Scale s) {
  switch (s) {
    case Scale::kFast: return 150;
    case Scale::kDefault: return 500;
    case Scale::kFull: return 1000;
  }
  return 500;
}

inline int search_evals_for(Scale s) {
  switch (s) {
    case Scale::kFast: return 500;
    case Scale::kDefault: return 1200;
    case Scale::kFull: return 2500;
  }
  return 1200;
}

inline int extra_starts_for(Scale s) {
  switch (s) {
    case Scale::kFast: return 2;
    case Scale::kDefault: return 4;
    case Scale::kFull: return 8;
  }
  return 4;
}

inline void print_header(const char* experiment, const char* description) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, description);
}

inline void print_rule() {
  std::printf("-------------------------------------------------------------"
              "---------------\n");
}

}  // namespace mtdgrid::bench
