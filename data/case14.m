function mpc = ieee14
% MATPOWER caseformat written by mtdgrid io::write_matpower.
% Round-trips the PowerSystem exactly (shortest-round-trip number format).
mpc.version = '2';

mpc.baseMVA = 100;

%% bus data: bus_i type Pd Qd Gs Bs area Vm Va baseKV zone Vmax Vmin
mpc.bus = [
	1	3	0	0	0	0	1	1	0	0	1	1.06	0.94;
	2	2	21.7	0	0	0	1	1	0	0	1	1.06	0.94;
	3	2	94.2	0	0	0	1	1	0	0	1	1.06	0.94;
	4	1	47.8	0	0	0	1	1	0	0	1	1.06	0.94;
	5	1	7.6	0	0	0	1	1	0	0	1	1.06	0.94;
	6	2	11.2	0	0	0	1	1	0	0	1	1.06	0.94;
	7	1	0	0	0	0	1	1	0	0	1	1.06	0.94;
	8	2	0	0	0	0	1	1	0	0	1	1.06	0.94;
	9	1	29.5	0	0	0	1	1	0	0	1	1.06	0.94;
	10	1	9	0	0	0	1	1	0	0	1	1.06	0.94;
	11	1	3.5	0	0	0	1	1	0	0	1	1.06	0.94;
	12	1	6.1	0	0	0	1	1	0	0	1	1.06	0.94;
	13	1	13.5	0	0	0	1	1	0	0	1	1.06	0.94;
	14	1	14.9	0	0	0	1	1	0	0	1	1.06	0.94;
];

%% generator data: bus Pg Qg Qmax Qmin Vg mBase status Pmax Pmin
mpc.gen = [
	1	0	0	0	0	1	100	1	300	0;
	2	0	0	0	0	1	100	1	50	0;
	3	0	0	0	0	1	100	1	30	0;
	6	0	0	0	0	1	100	1	50	0;
	8	0	0	0	0	1	100	1	20	0;
];

%% generator cost data: model startup shutdown n c1 c0
mpc.gencost = [
	2	0	0	2	20	0;
	2	0	0	2	30	0;
	2	0	0	2	40	0;
	2	0	0	2	50	0;
	2	0	0	2	35	0;
];

%% branch data: fbus tbus r x b rateA rateB rateC ratio angle status
mpc.branch = [
	1	2	0	0.05917	0	160	0	0	0	0	1;
	1	5	0	0.22304	0	60	0	0	0	0	1;
	2	3	0	0.19797	0	60	0	0	0	0	1;
	2	4	0	0.17632	0	60	0	0	0	0	1;
	2	5	0	0.17388	0	60	0	0	0	0	1;
	3	4	0	0.17103	0	60	0	0	0	0	1;
	4	5	0	0.04211	0	60	0	0	0	0	1;
	4	7	0	0.20912	0	60	0	0	0	0	1;
	4	9	0	0.55618	0	60	0	0	0	0	1;
	5	6	0	0.25202	0	60	0	0	0	0	1;
	6	11	0	0.1989	0	60	0	0	0	0	1;
	6	12	0	0.25581	0	60	0	0	0	0	1;
	6	13	0	0.13027	0	60	0	0	0	0	1;
	7	8	0	0.17615	0	60	0	0	0	0	1;
	7	9	0	0.11001	0	60	0	0	0	0	1;
	9	10	0	0.0845	0	60	0	0	0	0	1;
	9	14	0	0.27038	0	60	0	0	0	0	1;
	10	11	0	0.19207	0	60	0	0	0	0	1;
	12	13	0	0.19988	0	60	0	0	0	0	1;
	13	14	0	0.34802	0	60	0	0	0	0	1;
];

%% mtdgrid extension: D-FACTS devices as
%% [branch_row min_factor max_factor] (1-based mpc.branch rows)
mpc.dfacts = [
	1	0.5	1.5;
	5	0.5	1.5;
	9	0.5	1.5;
	11	0.5	1.5;
	17	0.5	1.5;
	19	0.5	1.5;
];
