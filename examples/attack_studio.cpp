// Attack studio: explore FDI attacks from the attacker's side.
//
// Demonstrates, on the paper's 4-bus example, how the structure of the
// attack vector c determines which MTD perturbations can catch it — the
// mechanism behind the paper's Table I. For every single-bus attack
// c = e_i and every single-line perturbation, the tool prints whether the
// attack survives (Proposition 1) and its analytic detection probability,
// then shows the orthogonality ideal of Theorem 1 on a synthetic example.
//
// Usage: attack_studio [eta]   (default reactance perturbation 20%)

#include <cstdio>
#include <cstdlib>

#include "attack/fdi_attack.hpp"
#include "estimation/bdd.hpp"
#include "estimation/detection.hpp"
#include "estimation/state_estimator.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "linalg/qr.hpp"
#include "mtd/spa.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace mtdgrid;
  double eta = 0.2;
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [eta]  (0 < eta <= 1)\n", argv[0]);
    return 2;
  }
  if (argc == 2) {
    char* end = nullptr;
    eta = std::strtod(argv[1], &end);
    if (end == argv[1] || *end != '\0' || !(eta > 0.0) || eta > 1.0) {
      std::fprintf(stderr, "usage: %s [eta]  (0 < eta <= 1)\n", argv[0]);
      return 2;
    }
  }

  const grid::PowerSystem sys = grid::make_case4();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const double sigma = 0.05;

  std::printf("4-bus system, single-line MTD perturbations at eta = %.0f%%\n",
              100.0 * eta);
  std::printf("Attack c = e_i injects a fake phase offset at one bus; the "
              "entries below are\n'S' when the attack remains stealthy "
              "(Proposition 1) and otherwise the analytic\ndetection "
              "probability P'_D(a).\n\n");

  std::printf("  %-12s", "attack \\ MTD");
  for (std::size_t line = 0; line < sys.num_branches(); ++line)
    std::printf("  Delta-x%zu", line + 1);
  std::printf("\n");

  for (std::size_t bus = 0; bus < sys.num_buses() - 1; ++bus) {
    linalg::Vector c(sys.num_buses() - 1);
    c[bus] = 0.05;  // 0.05 rad fake offset at bus (bus+2) in 1-based terms
    const attack::FdiAttack atk = attack::make_stealthy_attack(h0, c);
    std::printf("  c = e_%zu     ", bus + 2);
    for (std::size_t line = 0; line < sys.num_branches(); ++line) {
      linalg::Vector x = sys.reactances();
      x[line] *= (1.0 + eta);
      const linalg::Matrix hp = grid::measurement_matrix(sys, x);
      if (attack::remains_stealthy_under(hp, atk)) {
        std::printf("  %8s", "S");
      } else {
        const estimation::StateEstimator est(hp, sigma);
        const estimation::BadDataDetector bdd(est, 5e-4);
        std::printf("  %8.3f",
                    estimation::analytic_detection_probability(est, bdd,
                                                               atk.a));
      }
    }
    std::printf("\n");
  }

  std::printf("\nReading the table: a perturbation on line l only exposes "
              "attacks whose phase\noffsets differ across line l's "
              "endpoints — no single line covers every bus, so\nno "
              "single-line MTD catches all attacks (the paper's Section "
              "IV-B conclusion).\n\n");

  // Theorem 1 showcase: a synthetic orthogonal-complement MTD detects
  // everything with the maximum possible probability.
  std::printf("Theorem 1 showcase (synthetic): an MTD whose column space "
              "is the orthogonal\ncomplement of Col(H) admits no stealthy "
              "attacks:\n");
  const linalg::Matrix q = linalg::orthonormal_column_basis(h0);
  stats::Rng rng(5);
  linalg::Matrix h_perp(h0.rows(), h0.cols());
  for (std::size_t j = 0; j < h_perp.cols(); ++j) {
    linalg::Vector v(h0.rows());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.gaussian();
    v -= q * q.transpose_times(v);
    h_perp.set_col(j, v * 40.0);
  }
  std::printf("  gamma(H, H_perp) = %.4f rad (pi/2 = %.4f)\n",
              mtd::spa(h0, h_perp), 3.14159265 / 2);
  const estimation::StateEstimator est_perp(h_perp, sigma);
  const estimation::BadDataDetector bdd_perp(est_perp, 5e-4);
  int stealthy = 0;
  double min_pd = 1.0;
  for (int t = 0; t < 200; ++t) {
    const attack::FdiAttack atk = attack::random_stealthy_attack(
        h0, linalg::Vector(h0.rows(), 50.0), 0.08, rng);
    if (attack::remains_stealthy_under(h_perp, atk)) ++stealthy;
    min_pd = std::min(min_pd, estimation::analytic_detection_probability(
                                  est_perp, bdd_perp, atk.a));
  }
  std::printf("  stealthy survivors out of 200 random attacks: %d\n",
              stealthy);
  std::printf("  minimum detection probability: %.4f\n", min_pd);
  std::printf("\n(Such an H' is not realizable with D-FACTS devices — the "
              "paper's heuristic\nSPA criterion exists precisely to "
              "approach this ideal within device limits.)\n");
  return 0;
}
