// Case-file audit: the CI gate for the data/ directory.
//
// For every bundled MATPOWER file (or any case name / .m path given on the
// command line) this loads the case through io::load_case — which already
// enforces structural validity and a connected network — then checks that:
//  * the base-case DC-OPF is feasible,
//  * power balances at every bus (net branch flow == injection, <= 1e-6),
//  * the dispatch stays feasible across the uniform D-FACTS envelope
//    (all-device factors 0.5, 0.75, 1.25, 1.5 — the perturbations the MTD
//    pipeline applies).
// Exit code 0 means every audited file passed; 1 means a failure (printed
// with its file:line diagnostic when the loader produced one); 2 usage.
//
// --suggest-limits prints a per-branch RATE_A suggestion (1.25x the worst
// envelope flow at the base dispatch, rounded up) — the sizing rule used
// for the bundled case118/case300 limits.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "grid/power_flow.hpp"
#include "io/case_registry.hpp"
#include "opf/dc_opf.hpp"

namespace {

using namespace mtdgrid;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--suggest-limits] [case-or-path ...]\n"
               "  with no cases given, audits every .m file in the data "
               "directory\n",
               prog);
  return 2;
}

double nice_limit(double mw) {
  const double step = mw < 100.0 ? 10.0 : (mw < 1000.0 ? 50.0 : 100.0);
  return step * std::ceil(mw / step);
}

bool audit(const std::string& spec, bool suggest_limits) {
  grid::PowerSystem sys = io::load_case(spec);

  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  if (!base.feasible) {
    std::fprintf(stderr, "FAIL %s: base DC-OPF infeasible\n", spec.c_str());
    return false;
  }

  // Per-bus DC balance at the optimal dispatch.
  const linalg::Vector inj = grid::nodal_injections(sys, base.generation_mw);
  std::vector<double> net(sys.num_buses(), 0.0);
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    net[sys.branch(l).from] += base.flows_mw[l];
    net[sys.branch(l).to] -= base.flows_mw[l];
  }
  for (std::size_t i = 0; i < sys.num_buses(); ++i) {
    if (std::abs(net[i] - inj[i]) > 1e-6) {
      std::fprintf(stderr,
                   "FAIL %s: DC balance violated at bus %zu "
                   "(net flow %.9f MW vs injection %.9f MW)\n",
                   spec.c_str(), i + 1, net[i], inj[i]);
      return false;
    }
  }

  // Worst |flow| per branch across the uniform D-FACTS envelope, at the
  // base dispatch (the MTD re-keying loop perturbs exactly these devices).
  std::vector<double> worst(sys.num_branches(), 0.0);
  double max_utilization = 0.0;
  for (double factor : {0.5, 0.75, 1.0, 1.25, 1.5}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
    const grid::DcPowerFlowResult pf =
        grid::solve_dc_power_flow(sys, x, inj);
    for (std::size_t l = 0; l < sys.num_branches(); ++l)
      worst[l] = std::max(worst[l], std::abs(pf.flows_mw[l]));
    if (factor != 1.0) {
      const opf::DispatchResult r = opf::solve_dc_opf(sys, x);
      if (!r.feasible) {
        std::fprintf(stderr,
                     "FAIL %s: DC-OPF infeasible at D-FACTS factor %.2f\n",
                     spec.c_str(), factor);
        return false;
      }
    }
  }
  for (std::size_t l = 0; l < sys.num_branches(); ++l)
    max_utilization =
        std::max(max_utilization, worst[l] / sys.branch(l).flow_limit_mw);

  if (suggest_limits) {
    std::printf("%% suggested RATE_A for %s (1.25x worst envelope flow)\n",
                sys.name().c_str());
    for (std::size_t l = 0; l < sys.num_branches(); ++l)
      std::printf("%zu %g\n", l + 1,
                  nice_limit(std::max(1.25 * worst[l], 30.0)));
    return true;
  }

  std::printf(
      "ok  %-10s %4zu buses %4zu branches %3zu gens  load %9.1f MW  "
      "cost %11.1f $/h  peak util %.0f%%\n",
      sys.name().c_str(), sys.num_buses(), sys.num_branches(),
      sys.num_generators(), sys.total_load_mw(), base.cost,
      100.0 * max_utilization);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool suggest_limits = false;
  std::vector<std::string> specs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--suggest-limits") == 0) {
      suggest_limits = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      specs.emplace_back(argv[i]);
    }
  }
  if (specs.empty()) {
    const std::string dir = io::CaseRegistry::global().data_dir();
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
      if (entry.path().extension() == ".m")
        specs.push_back(entry.path().string());
    if (ec || specs.empty()) {
      std::fprintf(stderr, "no .m files found in '%s'\n", dir.c_str());
      return 1;
    }
    std::sort(specs.begin(), specs.end());
  }

  bool all_ok = true;
  for (const std::string& spec : specs) {
    try {
      all_ok = audit(spec, suggest_limits) && all_ok;
    } catch (const io::CaseIoError& e) {
      std::fprintf(stderr, "FAIL %s\n", e.what());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
