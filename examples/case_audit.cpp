// Case-file audit: the CI gate for the data/ directory.
//
// For every bundled MATPOWER file (or any case name / .m path given on the
// command line) this loads the case through io::load_case — which already
// enforces structural validity and a connected network — then checks that:
//  * the base-case DC-OPF is feasible,
//  * power balances at every bus (net branch flow == injection, <= 1e-6),
//  * the dispatch stays feasible across the uniform D-FACTS envelope
//    (all-device factors 0.5, 0.75, 1.25, 1.5 — the perturbations the MTD
//    pipeline applies).
// Exit code 0 means every audited file passed; 1 means a failure (printed
// with its file:line diagnostic when the loader produced one); 2 usage.
//
// --suggest-limits prints a per-branch RATE_A suggestion (1.25x the worst
// envelope flow at the base dispatch, rounded up) — the sizing rule used
// for the bundled case118/case300 limits.
//
// --zones K audits a composed mega-grid (grid::compose_cases /
// "<base>xN" registry names) zone by zone: the whole-grid dense OPF is
// O(N^3) and intractable past a few hundred buses, so each of the K
// copy-zones is audited standalone (base + envelope OPF feasibility)
// and the stitched per-zone dispatch is then balance-checked on the
// FULL network through the sparse power flow — the same
// decompose-then-recheck shape as mtd::select_mtd_zones. This is the CI
// gate for freshly composed artifacts.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "grid/compose.hpp"
#include "grid/power_flow.hpp"
#include "io/case_registry.hpp"
#include "opf/dc_opf.hpp"

namespace {

using namespace mtdgrid;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--suggest-limits] [--zones K] [case-or-path ...]\n"
               "  with no cases given, audits every .m file in the data "
               "directory\n"
               "  --zones K audits a K-copy composed case per zone (sparse "
               "full-model\n"
               "  balance check; incompatible with --suggest-limits)\n",
               prog);
  return 2;
}

double nice_limit(double mw) {
  const double step = mw < 100.0 ? 10.0 : (mw < 1000.0 ? 50.0 : 100.0);
  return step * std::ceil(mw / step);
}

bool audit(const std::string& spec, bool suggest_limits) {
  grid::PowerSystem sys = io::load_case(spec);

  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  if (!base.feasible) {
    std::fprintf(stderr, "FAIL %s: base DC-OPF infeasible\n", spec.c_str());
    return false;
  }

  // Per-bus DC balance at the optimal dispatch.
  const linalg::Vector inj = grid::nodal_injections(sys, base.generation_mw);
  std::vector<double> net(sys.num_buses(), 0.0);
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    net[sys.branch(l).from] += base.flows_mw[l];
    net[sys.branch(l).to] -= base.flows_mw[l];
  }
  for (std::size_t i = 0; i < sys.num_buses(); ++i) {
    if (std::abs(net[i] - inj[i]) > 1e-6) {
      std::fprintf(stderr,
                   "FAIL %s: DC balance violated at bus %zu "
                   "(net flow %.9f MW vs injection %.9f MW)\n",
                   spec.c_str(), i + 1, net[i], inj[i]);
      return false;
    }
  }

  // Worst |flow| per branch across the uniform D-FACTS envelope, at the
  // base dispatch (the MTD re-keying loop perturbs exactly these devices).
  std::vector<double> worst(sys.num_branches(), 0.0);
  double max_utilization = 0.0;
  for (double factor : {0.5, 0.75, 1.0, 1.25, 1.5}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
    const grid::DcPowerFlowResult pf =
        grid::solve_dc_power_flow(sys, x, inj);
    for (std::size_t l = 0; l < sys.num_branches(); ++l)
      worst[l] = std::max(worst[l], std::abs(pf.flows_mw[l]));
    if (factor != 1.0) {
      const opf::DispatchResult r = opf::solve_dc_opf(sys, x);
      if (!r.feasible) {
        std::fprintf(stderr,
                     "FAIL %s: DC-OPF infeasible at D-FACTS factor %.2f\n",
                     spec.c_str(), factor);
        return false;
      }
    }
  }
  for (std::size_t l = 0; l < sys.num_branches(); ++l)
    max_utilization =
        std::max(max_utilization, worst[l] / sys.branch(l).flow_limit_mw);

  if (suggest_limits) {
    std::printf("%% suggested RATE_A for %s (1.25x worst envelope flow)\n",
                sys.name().c_str());
    for (std::size_t l = 0; l < sys.num_branches(); ++l)
      std::printf("%zu %g\n", l + 1,
                  nice_limit(std::max(1.25 * worst[l], 30.0)));
    return true;
  }

  std::printf(
      "ok  %-10s %4zu buses %4zu branches %3zu gens  load %9.1f MW  "
      "cost %11.1f $/h  peak util %.0f%%\n",
      sys.name().c_str(), sys.num_buses(), sys.num_branches(),
      sys.num_generators(), sys.total_load_mw(), base.cost,
      100.0 * max_utilization);
  return true;
}

// Zone-decomposed audit for composed mega-grids: per-zone OPF + envelope
// feasibility (base-case-sized dense solves), then a full-network sparse
// power-flow balance check of the stitched dispatch across the D-FACTS
// envelope.
bool audit_zones(const std::string& spec, std::size_t num_zones) {
  grid::PowerSystem sys = io::load_case(spec);
  const grid::ZonePartition partition =
      grid::partition_into_copies(sys, num_zones);

  linalg::Vector generation(sys.num_generators());
  double total_cost = 0.0;
  for (std::size_t z = 0; z < num_zones; ++z) {
    const grid::ZoneSystem zone = grid::extract_zone(sys, partition, z);
    const opf::DispatchResult base = opf::solve_dc_opf(zone.system);
    if (!base.feasible) {
      std::fprintf(stderr, "FAIL %s: zone %zu base DC-OPF infeasible\n",
                   spec.c_str(), z);
      return false;
    }
    for (double factor : {0.5, 0.75, 1.25, 1.5}) {
      linalg::Vector x = zone.system.reactances();
      for (std::size_t l : zone.system.dfacts_branches()) x[l] *= factor;
      if (!opf::solve_dc_opf(zone.system, x).feasible) {
        std::fprintf(stderr,
                     "FAIL %s: zone %zu DC-OPF infeasible at D-FACTS "
                     "factor %.2f\n",
                     spec.c_str(), z, factor);
        return false;
      }
    }
    for (std::size_t g = 0; g < zone.gen_map.size(); ++g)
      generation[zone.gen_map[g]] = base.generation_mw[g];
    total_cost += base.cost;
  }

  // Full-model recheck: the stitched per-zone dispatch must balance on
  // the coupled network at every envelope factor (tie flows absorb the
  // inter-zone coupling; the sparse solve is the only tractable path at
  // this scale).
  const linalg::Vector inj = grid::nodal_injections(sys, generation);
  double max_utilization = 0.0;
  for (double factor : {0.5, 0.75, 1.0, 1.25, 1.5}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
    const grid::DcPowerFlowResult pf =
        grid::solve_dc_power_flow_sparse(sys, x, inj);
    std::vector<double> net(sys.num_buses(), 0.0);
    for (std::size_t l = 0; l < sys.num_branches(); ++l) {
      net[sys.branch(l).from] += pf.flows_mw[l];
      net[sys.branch(l).to] -= pf.flows_mw[l];
      max_utilization = std::max(
          max_utilization,
          std::abs(pf.flows_mw[l]) / sys.branch(l).flow_limit_mw);
    }
    for (std::size_t i = 0; i < sys.num_buses(); ++i) {
      if (std::abs(net[i] - inj[i]) > 1e-6) {
        std::fprintf(stderr,
                     "FAIL %s: full-model DC balance violated at bus %zu, "
                     "factor %.2f (net flow %.9f MW vs injection %.9f MW)\n",
                     spec.c_str(), i + 1, factor, net[i], inj[i]);
        return false;
      }
    }
  }

  std::printf(
      "ok  %-10s %4zu buses %4zu branches %3zu gens  load %9.1f MW  "
      "cost %11.1f $/h  peak util %.0f%%  (%zu zones)\n",
      sys.name().c_str(), sys.num_buses(), sys.num_branches(),
      sys.num_generators(), sys.total_load_mw(), total_cost,
      100.0 * max_utilization, num_zones);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool suggest_limits = false;
  unsigned long long num_zones = 1;
  std::vector<std::string> specs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--suggest-limits") == 0) {
      suggest_limits = true;
    } else if (std::strcmp(argv[i], "--zones") == 0) {
      ++i;
      if (i >= argc) return usage(argv[0]);
      char* end = nullptr;
      num_zones = std::strtoull(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || num_zones < 2 ||
          num_zones > 10000)
        return usage(argv[0]);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      specs.emplace_back(argv[i]);
    }
  }
  if (suggest_limits && num_zones > 1) return usage(argv[0]);
  if (specs.empty()) {
    const std::string dir = io::CaseRegistry::global().data_dir();
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
      if (entry.path().extension() == ".m")
        specs.push_back(entry.path().string());
    if (ec || specs.empty()) {
      std::fprintf(stderr, "no .m files found in '%s'\n", dir.c_str());
      return 1;
    }
    std::sort(specs.begin(), specs.end());
  }

  bool all_ok = true;
  for (const std::string& spec : specs) {
    try {
      all_ok = (num_zones > 1 ? audit_zones(spec, num_zones)
                              : audit(spec, suggest_limits)) &&
               all_ok;
    } catch (const io::CaseIoError& e) {
      std::fprintf(stderr, "FAIL %s\n", e.what());
      all_ok = false;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL %s: %s\n", spec.c_str(), e.what());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
