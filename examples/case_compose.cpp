// Synthetic mega-grid composer: tiles N copies of a registry case into
// one connected network (grid::compose_cases) and writes the MATPOWER
// text, either to --out or to stdout.
//
// The composition is a pure function of (base case, options): the same
// invocation always produces byte-identical output, which is what lets
// CI compose audit artifacts on the fly instead of checking multi-
// thousand-bus case files into data/. The bundled composed scenarios
// ("case118x9", "case300x17") are exactly the default options at the
// default seed — `case_compose case118 --copies 9` reproduces what
// `io::load_case("case118x9")` builds in process.
//
// Exit codes: 0 composed and written, 1 I/O or composition failure,
// 2 bad argv (usage on stderr).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "grid/compose.hpp"
#include "io/case_registry.hpp"
#include "io/matpower.hpp"

namespace {

using namespace mtdgrid;

// Strict bounded double parse (mirrors examples::parse_u64): exactly one
// finite decimal number in [lo, hi], no trailing characters.
bool parse_double(const char* arg, double lo, double hi, double& out) {
  if (arg == nullptr || *arg == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(arg, &end);
  if (errno != 0 || end == arg || *end != '\0' || v < lo || v > hi)
    return false;
  out = v;
  return true;
}

// Comma-separated 1-based bus numbers ("5,12,49") -> 0-based indices.
bool parse_boundary(const char* arg, std::vector<std::size_t>& out) {
  if (arg == nullptr || *arg == '\0') return false;
  std::string token;
  std::vector<std::size_t> buses;
  for (const char* p = arg;; ++p) {
    if (*p != ',' && *p != '\0') {
      token += *p;
      continue;
    }
    unsigned long long bus = 0;
    if (!examples::parse_u64(token.c_str(), 1, 1000000, bus)) return false;
    buses.push_back(static_cast<std::size_t>(bus - 1));
    token.clear();
    if (*p == '\0') break;
  }
  out = std::move(buses);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  grid::ComposeOptions options;
  std::string case_name;
  std::string out_path;

  examples::Cli cli("case_compose",
                    {"[--copies N] [--seed S] [--ties T]",
                     "[--tie-reactance X] [--tie-limit MW] [--ring 0|1]",
                     "[--load-jitter J] [--gen-jitter J] [--cost-jitter J]",
                     "[--boundary B1,B2,...] [--name NAME] [--out FILE]",
                     "<case>"});
  cli.note("  composes N jittered copies of <case> joined by tie lines;");
  cli.note("  MATPOWER text goes to --out (with a summary on stdout) or");
  cli.note("  to stdout. Boundary buses are 1-based base-case numbers.");
  cli.flag_u64("--copies", 1, 1000,
               [&](unsigned long long v) { options.copies = v; });
  cli.flag_u64("--seed", 0, ~0ULL,
               [&](unsigned long long v) { options.seed = v; });
  cli.flag_u64("--ties", 1, 64,
               [&](unsigned long long v) { options.ties_per_interface = v; });
  cli.flag_u64("--ring", 0, 1,
               [&](unsigned long long v) { options.ring = v != 0; });
  cli.flag_value("--tie-reactance", [&](const char* raw) {
    return parse_double(raw, 1e-9, 1e3, options.tie_reactance);
  });
  cli.flag_value("--tie-limit", [&](const char* raw) {
    return parse_double(raw, 0.0, 1e9, options.tie_limit_mw);
  });
  cli.flag_value("--load-jitter", [&](const char* raw) {
    return parse_double(raw, 0.0, 0.999, options.load_jitter);
  });
  cli.flag_value("--gen-jitter", [&](const char* raw) {
    return parse_double(raw, 0.0, 0.999, options.gen_jitter);
  });
  cli.flag_value("--cost-jitter", [&](const char* raw) {
    return parse_double(raw, 0.0, 0.999, options.cost_jitter);
  });
  cli.flag_value("--boundary", [&](const char* raw) {
    return parse_boundary(raw, options.boundary_buses);
  });
  cli.flag_str("--name", [&](const std::string& v) { options.name = v; });
  cli.flag_str("--out", [&](const std::string& v) { out_path = v; });
  cli.positional([&](const std::string& arg) {
    if (!case_name.empty() || !io::CaseRegistry::global().knows(arg))
      return false;
    case_name = arg;
    return true;
  });
  if (!cli.parse(argc, argv)) return 2;
  if (case_name.empty()) return cli.usage();

  try {
    const grid::PowerSystem base = io::load_case(case_name);
    const grid::ComposeResult composed = grid::compose_cases(base, options);
    const std::string text = io::write_matpower(composed.system);

    if (out_path.empty()) {
      std::fputs(text.c_str(), stdout);
      return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    out << text;
    if (!out.flush()) {
      std::fprintf(stderr, "case_compose: cannot write '%s'\n",
                   out_path.c_str());
      return 1;
    }
    std::printf(
        "%s: %zu x %s -> %zu buses %zu branches %zu gens "
        "(%zu ties, %zu boundary buses, seed %llu) -> %s\n",
        composed.system.name().c_str(), composed.copies, base.name().c_str(),
        composed.system.num_buses(), composed.system.num_branches(),
        composed.system.num_generators(), composed.tie_branches.size(),
        composed.boundary_buses.size(),
        static_cast<unsigned long long>(options.seed), out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "case_compose: %s\n", e.what());
    return 1;
  }
}
