#pragma once

// Shared command-line front end for the example binaries.
//
// Every example speaks the same argv dialect — `--flag VALUE` options in
// any position, bare positionals, `usage` on stderr, exit code 2 for any
// bad invocation (the contract the CI negative-argv checks assert) — but
// each binary used to hand-roll its own parse loop, usage printf, and
// integer validator. This header centralizes the dialect:
//
//  * `Cli` — a small declarative parser: register flags (with bounds),
//    the standard `--threads` option, and a positional handler, then
//    `parse()`. Any violation prints one uniformly formatted usage block
//    (synopsis, alternative invocations, the case-registry footer, notes)
//    and the caller returns 2.
//  * `parse_u64` — the strict base-10 bounded integer validator formerly
//    duplicated across binaries.
//
// The usage text is stderr-only, so the CI transcript diffs (stdout
// byte-identical across --threads values) are unaffected.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "example_util.hpp"
#include "io/case_registry.hpp"

namespace mtdgrid::examples {

/// Strict bounded base-10 parse: accepts exactly one unsigned integer in
/// [lo, hi] with no trailing characters; returns false (out untouched)
/// otherwise.
inline bool parse_u64(const char* arg, unsigned long long lo,
                      unsigned long long hi, unsigned long long& out) {
  if (arg == nullptr) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (errno != 0 || end == arg || *end != '\0' || v < lo || v > hi)
    return false;
  out = v;
  return true;
}

/// Declarative argv parser with the example binaries' shared conventions.
///
/// Flags may appear anywhere in argv and always take one value argument;
/// anything else starting with '-' is rejected; everything else goes to
/// the positional handler (rejected if none is registered or it returns
/// false). `parse()` prints the usage block on the first violation.
class Cli {
 public:
  /// `synopsis` lines describe one invocation: the first is printed as
  /// "usage: <prog> <line>", the rest as aligned continuations.
  Cli(const char* prog, std::vector<std::string> synopsis)
      : prog_(prog), synopsis_(std::move(synopsis)) {}

  /// Adds an alternative invocation, printed as "       <prog> <line>".
  void alternative(std::string line) {
    alternatives_.push_back(std::move(line));
  }

  /// Appends a free-form line under the cases footer (indent it yourself).
  void note(std::string line) { notes_.push_back(std::move(line)); }

  /// Registers `--name` taking an integer in [lo, hi]; `apply` receives
  /// the validated value.
  void flag_u64(std::string name, unsigned long long lo,
                unsigned long long hi,
                std::function<void(unsigned long long)> apply) {
    flags_.emplace_back(
        std::move(name),
        [lo, hi, apply = std::move(apply)](const char* raw) {
          unsigned long long value = 0;
          if (!parse_u64(raw, lo, hi, value)) return false;
          apply(value);
          return true;
        });
  }

  /// Registers `--name` with a raw-value handler (return false to reject
  /// the invocation).
  void flag_value(std::string name, std::function<bool(const char*)> apply) {
    flags_.emplace_back(std::move(name), std::move(apply));
  }

  /// Registers `--name` taking a non-empty string value (an empty value
  /// rejects the invocation like any other flag violation).
  void flag_str(std::string name,
                std::function<void(const std::string&)> apply) {
    flags_.emplace_back(std::move(name),
                        [apply = std::move(apply)](const char* raw) {
                          if (raw == nullptr || *raw == '\0') return false;
                          apply(raw);
                          return true;
                        });
  }

  /// The standard `--threads N` option: sizes the global worker pool
  /// (identical bounds and semantics in every binary; see
  /// example_util.hpp).
  void flag_threads() {
    flag_value("--threads",
               [](const char* raw) { return apply_threads_arg(raw); });
  }

  /// Handler for bare (non-flag) arguments, called in argv order.
  void positional(std::function<bool(const std::string&)> apply) {
    positional_ = std::move(apply);
  }

  /// Prints the uniform usage block to stderr and returns 2, the shared
  /// bad-argv exit code.
  int usage() const {
    std::string text = "usage: " + std::string(prog_);
    const std::string continuation(text.size(), ' ');
    for (std::size_t i = 0; i < synopsis_.size(); ++i)
      text += (i == 0 ? " " + synopsis_[i] : "\n" + continuation + " " +
                                                 synopsis_[i]);
    for (const std::string& alt : alternatives_)
      text += "\n       " + std::string(prog_) + " " + alt;
    text += "\ncases: " +
            io::CaseRegistry::global().joined_names("|") +
            " (or a path to a MATPOWER .m file)";
    for (const std::string& line : notes_) text += "\n" + line;
    std::fprintf(stderr, "%s\n", text.c_str());
    return 2;
  }

  /// Parses argv. Returns true on success; on any violation prints the
  /// usage block and returns false (the caller then exits 2).
  bool parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto flag = std::find_if(
          flags_.begin(), flags_.end(),
          [&](const auto& f) { return f.first == arg; });
      if (flag != flags_.end()) {
        if (++i >= argc || !flag->second(argv[i])) return fail();
        continue;
      }
      if (!arg.empty() && arg[0] == '-') return fail();
      if (!positional_ || !positional_(arg)) return fail();
    }
    return true;
  }

 private:
  bool fail() const {
    usage();
    return false;
  }

  const char* prog_;
  std::vector<std::string> synopsis_;
  std::vector<std::string> alternatives_;
  std::vector<std::string> notes_;
  std::vector<std::pair<std::string, std::function<bool(const char*)>>>
      flags_;
  std::function<bool(const std::string&)> positional_;
};

}  // namespace mtdgrid::examples
