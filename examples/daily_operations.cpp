// Daily operations: what a system operator's MTD schedule looks like.
//
// Replays a 24-hour load trace against the IEEE 14-bus system. Every hour
// the operator (a) tracks the load with the ordinary reactance-augmented
// OPF, and (b) applies an MTD perturbation tuned to keep eta'(0.9) >= 0.9
// against an attacker whose knowledge is one hour stale. The program
// prints the resulting schedule and totals the "insurance premium" the
// defense costs over the day (the paper's Section VI framing).
//
// Usage: daily_operations [trough_mw peak_mw]
//   With no arguments, the NYISO-shaped winter-weekday trace is used.

#include <cstdio>
#include <cstdlib>

#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "mtd/daily.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace mtdgrid;
  stats::Rng rng(7);

  const auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s [trough_mw peak_mw]  "
                 "(0 < trough_mw <= peak_mw)\n",
                 argv[0]);
    return 2;
  };
  if (argc != 1 && argc != 3) return usage();

  grid::DailyLoadTrace trace = grid::DailyLoadTrace::nyiso_winter_weekday();
  if (argc == 3) {
    char* end1 = nullptr;
    char* end2 = nullptr;
    const double trough = std::strtod(argv[1], &end1);
    const double peak = std::strtod(argv[2], &end2);
    if (end1 == argv[1] || *end1 != '\0' || end2 == argv[2] ||
        *end2 != '\0' || !(trough > 0.0) || peak < trough)
      return usage();
    trace = grid::DailyLoadTrace::synthetic(trough, peak, /*peak_hour=*/18,
                                            /*jitter=*/0.02, rng);
    std::printf("Using synthetic trace: trough %.0f MW, peak %.0f MW\n",
                trough, peak);
  }

  const grid::PowerSystem sys = grid::make_case14();
  mtd::DailySimulationOptions options;
  options.effectiveness.num_attacks = 300;
  options.selection.extra_starts = 4;
  options.selection.search.max_evaluations = 900;

  const auto schedule = mtd::run_daily_simulation(sys, trace, options, rng);

  std::printf("\n hour | load (MW) | gamma_th | eta'(0.9) | MTD cost\n");
  std::printf("------+-----------+----------+-----------+---------\n");
  double premium_dollars = 0.0;
  double base_dollars = 0.0;
  for (const mtd::HourlyRecord& hour : schedule) {
    std::printf("  %02zu  | %9.0f | %8.2f | %9.2f | %6.3f%%%s\n", hour.hour,
                hour.total_load_mw, hour.gamma_threshold, hour.eta_at_target,
                hour.cost_increase_pct,
                hour.feasible ? "" : "  (target missed)");
    premium_dollars += hour.mtd_opf_cost - hour.base_opf_cost;
    base_dollars += hour.base_opf_cost;
  }
  premium_dollars = std::max(0.0, premium_dollars);

  std::printf("\nDaily dispatch cost without MTD: $%.0f\n", base_dollars);
  std::printf("Daily MTD insurance premium:     $%.0f (%.3f%% of dispatch)\n",
              premium_dollars, 100.0 * premium_dollars / base_dollars);
  std::printf(
      "\nFor perspective, the paper cites prior work in which a single\n"
      "undetected FDI attack raised the OPF cost by up to 28%% and tripped\n"
      "transmission lines — the premium buys detection of such attacks\n"
      "within one MTD period.\n");
  return 0;
}
