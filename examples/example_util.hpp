#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdlib>

#include "core/thread_pool.hpp"

namespace mtdgrid::examples {

/// Validates a `--threads` value and applies it to the global worker pool.
/// Accepts a positive integer up to 4096; returns false (pool untouched)
/// on anything else. Shared by every example binary that exposes the flag
/// so the bound and the apply semantics cannot diverge.
inline bool apply_threads_arg(const char* arg) {
  if (arg == nullptr) return false;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(arg, &end, 10);
  if (errno != 0 || end == arg || *end != '\0' || parsed <= 0 ||
      parsed > 4096)
    return false;
  core::ThreadPool::set_global_num_threads(static_cast<std::size_t>(parsed));
  return true;
}

}  // namespace mtdgrid::examples
