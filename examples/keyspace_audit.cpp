// Keyspace audit: why random MTD perturbations are not enough.
//
// Prior work implements MTD by drawing random reactance perturbations from
// a "keyspace" (e.g. within +/-2% of nominal). This tool audits such a
// keyspace on any of the bundled benchmark systems: it draws N members,
// evaluates each one's effectiveness against attacks crafted from the
// current measurement matrix, and reports the distribution — then contrasts
// it with a single SPA-designed perturbation at the same device limits.
//
// Usage: keyspace_audit [--threads N] [case-name-or-.m-path] [keyspace_size]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "cli.hpp"
#include "grid/measurement.hpp"
#include "io/case_registry.hpp"
#include "grid/power_flow.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/random_mtd.hpp"
#include "mtd/selection.hpp"
#include "mtd/spa.hpp"
#include "opf/reactance_opf.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace {

std::optional<mtdgrid::grid::PowerSystem> system_by_name(
    const std::string& name) {
  const auto& registry = mtdgrid::io::CaseRegistry::global();
  if (!registry.knows(name)) return std::nullopt;
  try {
    return registry.load(name);
  } catch (const mtdgrid::io::CaseIoError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return std::nullopt;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mtdgrid;

  // "--threads N" may appear anywhere in argv; the positional arguments
  // keep their original contract (case first, then keyspace_size).
  std::string case_name = "ieee14";
  int keyspace_size = 200;
  std::size_t num_positionals = 0;
  examples::Cli cli(argv[0], {"[--threads N] [case] [keyspace_size]"});
  cli.note("  keyspace_size must be a positive integer (default 200)");
  cli.note("  --threads N sizes the worker pool of the parallel "
           "effectiveness sweep");
  cli.positional([&](const std::string& arg) {
    if (num_positionals == 1) {
      unsigned long long parsed = 0;
      if (!examples::parse_u64(arg.c_str(), 1, 1000000, parsed))
        return false;
      keyspace_size = static_cast<int>(parsed);
    } else if (num_positionals == 0) {
      case_name = arg;
    } else {
      return false;  // at most two positionals
    }
    ++num_positionals;
    return true;
  });
  cli.flag_threads();
  if (!cli.parse(argc, argv)) return 2;

  std::optional<grid::PowerSystem> maybe_sys = system_by_name(case_name);
  if (!maybe_sys) {
    std::fprintf(stderr, "unknown case '%s'\n", case_name.c_str());
    return cli.usage();
  }
  grid::PowerSystem sys = std::move(*maybe_sys);

  stats::Rng rng(99);
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  if (!base.feasible) {
    std::fprintf(stderr, "base OPF infeasible\n");
    return 1;
  }
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const linalg::Vector z0 = grid::noiseless_measurements(
      sys, sys.reactances(), base.theta_reduced);

  mtd::EffectivenessOptions eff;
  eff.num_attacks = 300;
  eff.sigma_mw = 0.005;  // high-precision BDD; see EXPERIMENTS.md
  eff.deltas = {0.5};

  std::printf("Auditing a +/-2%% random keyspace of %d members on %s...\n\n",
              keyspace_size, sys.name().c_str());
  // Batched evaluation: one shared attack sample scores every keyspace
  // member (paired comparison), and the cached-basis SPA evaluator avoids
  // re-factorizing H0 per member. Members are materialized in bounded
  // chunks; re-seeding the attack rng per chunk keeps the sample identical
  // across chunks (the analytic method draws rng only for the attacks).
  const mtd::SpaEvaluator spa_eval(sys, h0);
  constexpr int kChunk = 256;
  constexpr std::uint64_t kAttackSeed = 424242;
  std::vector<double> etas;
  std::vector<double> gammas;
  etas.reserve(keyspace_size);
  gammas.reserve(keyspace_size);
  for (int start = 0; start < keyspace_size; start += kChunk) {
    const int count = std::min(kChunk, keyspace_size - start);
    std::vector<linalg::Matrix> chunk;
    chunk.reserve(count);
    for (int k = 0; k < count; ++k) {
      const linalg::Vector x = mtd::random_reactance_perturbation(
          sys, sys.reactances(), 0.02, rng);
      gammas.push_back(spa_eval.gamma(x));
      chunk.push_back(grid::measurement_matrix(sys, x));
    }
    stats::Rng attack_rng(kAttackSeed);
    const auto results =
        mtd::evaluate_candidates(h0, chunk, z0, eff, attack_rng);
    for (const auto& r : results) etas.push_back(r.eta[0]);
  }

  const stats::Summary eta_summary = stats::summarize(etas.data(),
                                                      etas.size());
  const stats::Summary gamma_summary =
      stats::summarize(gammas.data(), gammas.size());
  const auto fraction_above = [&](double level) {
    return static_cast<double>(
               std::count_if(etas.begin(), etas.end(),
                             [&](double e) { return e >= level; })) /
           etas.size();
  };

  std::printf("Keyspace eta'(0.5):  mean %.3f  stddev %.3f  min %.3f  "
              "max %.3f\n",
              eta_summary.mean, eta_summary.stddev, eta_summary.min,
              eta_summary.max);
  std::printf("Keyspace gamma:      mean %.4f rad (max %.4f)\n",
              gamma_summary.mean, gamma_summary.max);
  std::printf("Members with eta'(0.5) >= 0.9:  %.1f%%\n",
              100.0 * fraction_above(0.9));
  std::printf("Members with eta'(0.5) >= 0.5:  %.1f%%\n\n",
              100.0 * fraction_above(0.5));

  // The designed alternative at full device range.
  mtd::MtdSelectionOptions sel;
  sel.gamma_threshold = 0.25;
  sel.extra_starts = 4;
  const mtd::MtdSelectionResult designed =
      mtd::select_mtd_perturbation(sys, h0, base.cost, sel, rng);
  const linalg::Vector z_mtd = grid::noiseless_measurements(
      sys, designed.reactances, designed.dispatch.theta_reduced);
  const auto designed_eff =
      mtd::evaluate_effectiveness(h0, designed.h_mtd, z_mtd, eff, rng);

  std::printf("SPA-designed perturbation (gamma_th = 0.25):\n");
  std::printf("  gamma = %.3f rad, eta'(0.5) = %.3f, cost increase = "
              "%.3f%%\n",
              designed.spa, designed_eff.eta[0],
              100.0 * std::max(0.0, designed.cost_increase));
  std::printf("\nVerdict: the random keyspace is a lottery (stddev %.3f); "
              "the designed\nperturbation guarantees its effectiveness "
              "level by construction.\n",
              eta_summary.stddev);
  return 0;
}
