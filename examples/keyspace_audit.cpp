// Keyspace audit: why random MTD perturbations are not enough.
//
// Prior work implements MTD by drawing random reactance perturbations from
// a "keyspace" (e.g. within +/-2% of nominal). This tool audits such a
// keyspace on any of the bundled benchmark systems: it draws N members,
// evaluates each one's effectiveness against attacks crafted from the
// current measurement matrix, and reports the distribution — then contrasts
// it with a single SPA-designed perturbation at the same device limits.
//
// Usage: keyspace_audit [case4|wscc9|ieee14|ieee30|case57] [keyspace_size]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/random_mtd.hpp"
#include "mtd/selection.hpp"
#include "mtd/spa.hpp"
#include "opf/reactance_opf.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace mtdgrid;

  const std::string case_name = argc > 1 ? argv[1] : "ieee14";
  const int keyspace_size = argc > 2 ? std::atoi(argv[2]) : 200;

  grid::PowerSystem sys = [&] {
    if (case_name == "case4") return grid::make_case4();
    if (case_name == "wscc9") return grid::make_case_wscc9();
    if (case_name == "ieee30") return grid::make_case_ieee30();
    if (case_name == "case57" || case_name == "ieee57")
      return grid::make_case57();
    return grid::make_case_ieee14();
  }();

  stats::Rng rng(99);
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  if (!base.feasible) {
    std::fprintf(stderr, "base OPF infeasible\n");
    return 1;
  }
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const linalg::Vector z0 = grid::noiseless_measurements(
      sys, sys.reactances(), base.theta_reduced);

  mtd::EffectivenessOptions eff;
  eff.num_attacks = 300;
  eff.sigma_mw = 0.005;  // high-precision BDD; see EXPERIMENTS.md
  eff.deltas = {0.5};

  std::printf("Auditing a +/-2%% random keyspace of %d members on %s...\n\n",
              keyspace_size, sys.name().c_str());
  std::vector<double> etas;
  std::vector<double> gammas;
  for (int k = 0; k < keyspace_size; ++k) {
    const linalg::Vector x = mtd::random_reactance_perturbation(
        sys, sys.reactances(), 0.02, rng);
    const linalg::Matrix hp = grid::measurement_matrix(sys, x);
    const auto r = mtd::evaluate_effectiveness(h0, hp, z0, eff, rng);
    etas.push_back(r.eta[0]);
    gammas.push_back(mtd::spa(h0, hp));
  }

  const stats::Summary eta_summary = stats::summarize(etas.data(),
                                                      etas.size());
  const stats::Summary gamma_summary =
      stats::summarize(gammas.data(), gammas.size());
  const auto fraction_above = [&](double level) {
    return static_cast<double>(
               std::count_if(etas.begin(), etas.end(),
                             [&](double e) { return e >= level; })) /
           etas.size();
  };

  std::printf("Keyspace eta'(0.5):  mean %.3f  stddev %.3f  min %.3f  "
              "max %.3f\n",
              eta_summary.mean, eta_summary.stddev, eta_summary.min,
              eta_summary.max);
  std::printf("Keyspace gamma:      mean %.4f rad (max %.4f)\n",
              gamma_summary.mean, gamma_summary.max);
  std::printf("Members with eta'(0.5) >= 0.9:  %.1f%%\n",
              100.0 * fraction_above(0.9));
  std::printf("Members with eta'(0.5) >= 0.5:  %.1f%%\n\n",
              100.0 * fraction_above(0.5));

  // The designed alternative at full device range.
  mtd::MtdSelectionOptions sel;
  sel.gamma_threshold = 0.25;
  sel.extra_starts = 4;
  const mtd::MtdSelectionResult designed =
      mtd::select_mtd_perturbation(sys, h0, base.cost, sel, rng);
  const linalg::Vector z_mtd = grid::noiseless_measurements(
      sys, designed.reactances, designed.dispatch.theta_reduced);
  const auto designed_eff =
      mtd::evaluate_effectiveness(h0, designed.h_mtd, z_mtd, eff, rng);

  std::printf("SPA-designed perturbation (gamma_th = 0.25):\n");
  std::printf("  gamma = %.3f rad, eta'(0.5) = %.3f, cost increase = "
              "%.3f%%\n",
              designed.spa, designed_eff.eta[0],
              100.0 * std::max(0.0, designed.cost_increase));
  std::printf("\nVerdict: the random keyspace is a lottery (stddev %.3f); "
              "the designed\nperturbation guarantees its effectiveness "
              "level by construction.\n",
              eta_summary.stddev);
  return 0;
}
