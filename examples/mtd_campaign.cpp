// Adaptive-adversary campaign runner: sweeps attacker policies (zero-
// knowledge, stale-key replay, probe-based estimation at one or more
// budgets, omniscient, multi-hour ramp) against defender re-keying
// schedules on one case and prints the knowledge frontier as a single
// JSON line (attack::to_json).
//
// The frontier is a pure function of (seed, configuration): stdout is
// byte-identical at any --threads value, which is what the CI campaign
// smoke diffs.
//
// Exit codes: 0 campaign completed, 1 runtime failure (unknown case,
// infeasible configuration), 2 bad argv (usage on stderr).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attack/campaign.hpp"
#include "cli.hpp"

namespace {

using namespace mtdgrid;

// Strict bounded double parse (mirrors examples::parse_u64).
bool parse_double(const char* arg, double lo, double hi, double& out) {
  if (arg == nullptr || *arg == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(arg, &end);
  if (errno != 0 || end == arg || *end != '\0' || v < lo || v > hi)
    return false;
  out = v;
  return true;
}

// Comma-separated bounded integers ("1,2,4").
bool parse_u64_list(const char* arg, unsigned long long lo,
                    unsigned long long hi,
                    std::vector<unsigned long long>& out) {
  if (arg == nullptr || *arg == '\0') return false;
  std::string token;
  std::vector<unsigned long long> values;
  for (const char* p = arg;; ++p) {
    if (*p != ',' && *p != '\0') {
      token += *p;
      continue;
    }
    unsigned long long v = 0;
    if (!examples::parse_u64(token.c_str(), lo, hi, v)) return false;
    values.push_back(v);
    token.clear();
    if (*p == '\0') break;
  }
  out = std::move(values);
  return true;
}

// Comma-separated policy names ("zero,probe,omniscient").
bool parse_policies(const char* arg, std::vector<attack::AttackerPolicy>& out) {
  if (arg == nullptr || *arg == '\0') return false;
  std::string token;
  std::vector<attack::AttackerPolicy> policies;
  for (const char* p = arg;; ++p) {
    if (*p != ',' && *p != '\0') {
      token += *p;
      continue;
    }
    attack::AttackerPolicy policy;
    if (!attack::parse_attacker_policy(token, policy)) return false;
    policies.push_back(policy);
    token.clear();
    if (*p == '\0') break;
  }
  out = std::move(policies);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  attack::CampaignOptions options;
  std::string case_name;
  std::vector<attack::AttackerPolicy> policies;
  std::vector<unsigned long long> probe_budgets = {4, 32};
  std::size_t ramp_hours = 3;

  examples::Cli cli(
      "mtd_campaign",
      {"[--seed S] [--hours H] [--rekey P1,P2,...]",
       "[--policies zero,stale,probe,omniscient,ramp]",
       "[--probes B1,B2,...] [--ramp-hours R] [--delta D]",
       "[--evals N] [--base-evals N] [--starts N] [--attacks N]",
       "[--threads N] <case>"});
  cli.note("  plays every attacker policy against every re-keying");
  cli.note("  schedule and prints the knowledge frontier as one JSON");
  cli.note("  line; stdout is byte-identical at any --threads value.");
  cli.flag_u64("--seed", 0, ~0ULL,
               [&](unsigned long long v) { options.seed = v; });
  cli.flag_u64("--hours", 2, 168,
               [&](unsigned long long v) { options.horizon_hours = v; });
  cli.flag_value("--rekey", [&](const char* raw) {
    std::vector<unsigned long long> values;
    if (!parse_u64_list(raw, 1, 24, values)) return false;
    options.rekey_every.assign(values.begin(), values.end());
    return true;
  });
  cli.flag_value("--policies",
                 [&](const char* raw) { return parse_policies(raw, policies); });
  cli.flag_value("--probes", [&](const char* raw) {
    return parse_u64_list(raw, 1, 10000, probe_budgets);
  });
  cli.flag_u64("--ramp-hours", 1, 24,
               [&](unsigned long long v) { ramp_hours = v; });
  cli.flag_value("--delta", [&](const char* raw) {
    return parse_double(raw, 0.0, 10.0, options.daily.target_delta);
  });
  // Search-budget knobs, named as in mtd_daemon: --evals bounds the
  // per-hour selection search, --base-evals the pass-1 baseline search,
  // --starts the selection multi-starts.
  cli.flag_u64("--evals", 1, 1000000, [&](unsigned long long v) {
    options.daily.selection.search.max_evaluations = static_cast<int>(v);
  });
  cli.flag_u64("--base-evals", 1, 1000000, [&](unsigned long long v) {
    options.daily.base_search_evaluations = static_cast<int>(v);
  });
  cli.flag_u64("--starts", 0, 1000, [&](unsigned long long v) {
    options.daily.selection.extra_starts = static_cast<int>(v);
  });
  cli.flag_u64("--attacks", 1, 1000000, [&](unsigned long long v) {
    options.daily.effectiveness.num_attacks = static_cast<int>(v);
  });
  cli.flag_threads();
  cli.positional([&](const std::string& arg) {
    if (!case_name.empty()) return false;
    case_name = arg;
    return true;
  });
  if (!cli.parse(argc, argv)) return 2;
  if (case_name.empty()) return cli.usage();

  // An explicit --policies list builds the panel from the other flags:
  // one cell per probe budget for "probe", one spec per other policy.
  for (const attack::AttackerPolicy policy : policies) {
    if (policy == attack::AttackerPolicy::kProbe) {
      for (const unsigned long long budget : probe_budgets)
        options.attackers.push_back(
            {policy, static_cast<int>(budget), ramp_hours});
    } else {
      options.attackers.push_back({policy, 0, ramp_hours});
    }
  }

  try {
    const attack::CampaignFrontier frontier =
        attack::run_campaign(case_name, options);
    std::printf("%s\n", attack::to_json(frontier).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mtd_campaign: %s\n", e.what());
    return 1;
  }
}
