// mtd_daemon: the long-running MTD serving daemon (ROADMAP "Serving").
//
// Server mode loads a case, runs the pass-1 daily baseline, keys hour 0,
// and serves the newline-delimited-JSON protocol documented in DESIGN.md
// "Serving architecture" on a loopback TCP socket. Re-keying advances a
// virtual clock: on demand via the `tick` verb, or on a wall-clock
// interval with --rekey-ms. Client mode connects to a running daemon,
// sends each --request line, and prints the replies — the same wire
// format `nc 127.0.0.1 PORT` speaks.
//
// Replies are bit-identical for any --threads value and any interleaving
// of queries with re-keying (same --seed), which the CI smoke step
// enforces by diffing full transcripts across --threads 1 and 8.
//
// With --shards N > 1 the daemon serves a ShardedDaemon fleet: N
// independent copies of the case, shard k seeded with
// stream_seed(seed, k), routed by the "shard"/"case" request fields
// (DESIGN.md "Fleet sharding"); --rekey-ms then broadcast-ticks every
// shard.
//
// Usage:
//   mtd_daemon [--threads N] [--seed S] [--port P] [--history H]
//              [--shards N] [--attacks N] [--starts N] [--evals N]
//              [--base-evals N] [--rekey-ms MS] [--trace-out FILE] [case]
//   mtd_daemon --client PORT [--request JSON]...
//
// Defaults: case14, seed 7, port 0 (kernel-assigned, printed on stdout),
// history 24 hours, 1 shard, manual re-keying (rekey-ms 0). --trace-out
// enables the process-wide span tracer and writes everything collected
// over the daemon's lifetime as Chrome trace_event JSON (Perfetto /
// chrome://tracing) at shutdown.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "io/case_registry.hpp"
#include "obs/trace.hpp"
#include "serve/daemon.hpp"
#include "serve/server.hpp"
#include "serve/sharded.hpp"

namespace {

std::atomic<bool> g_signal_stop{false};

void handle_signal(int) { g_signal_stop.store(true); }

int run_client(std::uint16_t port, const std::vector<std::string>& requests) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("mtd_daemon: socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    std::fprintf(stderr, "mtd_daemon: connect 127.0.0.1:%u: %s\n",
                 static_cast<unsigned>(port), std::strerror(errno));
    ::close(fd);
    return 1;
  }
  std::string buffer;
  char chunk[4096];
  for (const std::string& request : requests) {
    const std::string line = request + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n =
          ::send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        std::fprintf(stderr, "mtd_daemon: send failed\n");
        ::close(fd);
        return 1;
      }
      sent += static_cast<std::size_t>(n);
    }
    // One reply line per request, in order.
    for (;;) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        std::printf("%s\n", buffer.substr(0, nl).c_str());
        buffer.erase(0, nl + 1);
        break;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        std::fprintf(stderr, "mtd_daemon: connection closed before reply\n");
        ::close(fd);
        return 1;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mtdgrid;

  serve::DaemonOptions options;
  options.daily.effectiveness.num_attacks = 200;
  options.daily.selection.extra_starts = 2;
  options.daily.selection.search.max_evaluations = 600;
  unsigned long long port = 0;
  unsigned long long rekey_ms = 0;
  unsigned long long shards = 1;
  std::string trace_out;
  bool client_mode = false;
  unsigned long long client_port = 0;
  std::vector<std::string> client_requests;
  bool case_set = false;

  examples::Cli cli(
      argv[0],
      {"[--threads N] [--seed S] [--port P] [--history H]",
       "[--shards N] [--attacks N] [--starts N] [--evals N]",
       "[--base-evals N] [--rekey-ms MS] [--trace-out FILE] [case]"});
  cli.alternative("--client PORT [--request JSON]...");
  cli.flag_threads();
  cli.flag_u64("--seed", 0, ~0ULL,
               [&](unsigned long long v) { options.seed = v; });
  cli.flag_u64("--port", 0, 65535, [&](unsigned long long v) { port = v; });
  cli.flag_u64("--history", 1, 1000000, [&](unsigned long long v) {
    options.history_hours = static_cast<std::size_t>(v);
  });
  cli.flag_u64("--attacks", 1, 1000000, [&](unsigned long long v) {
    options.daily.effectiveness.num_attacks = static_cast<int>(v);
  });
  cli.flag_u64("--starts", 0, 1000, [&](unsigned long long v) {
    options.daily.selection.extra_starts = static_cast<int>(v);
  });
  cli.flag_u64("--evals", 1, 1000000, [&](unsigned long long v) {
    options.daily.selection.search.max_evaluations = static_cast<int>(v);
  });
  cli.flag_u64("--base-evals", 1, 1000000, [&](unsigned long long v) {
    options.daily.base_search_evaluations = static_cast<int>(v);
  });
  cli.flag_u64("--shards", 1, 64, [&](unsigned long long v) { shards = v; });
  cli.flag_u64("--rekey-ms", 0, 86400000,
               [&](unsigned long long v) { rekey_ms = v; });
  cli.flag_str("--trace-out",
               [&](const std::string& path) { trace_out = path; });
  cli.flag_u64("--client", 1, 65535, [&](unsigned long long v) {
    client_mode = true;
    client_port = v;
  });
  cli.flag_value("--request", [&](const char* raw) {
    // Blank lines get no reply from the daemon, so a blank --request
    // would hang the client waiting for one — reject it up front.
    if (std::string(raw).find_first_not_of(" \t\r\n") == std::string::npos)
      return false;
    client_requests.emplace_back(raw);
    return true;
  });
  cli.positional([&](const std::string& arg) {
    if (case_set || !io::CaseRegistry::global().knows(arg)) return false;
    options.case_name = arg;
    case_set = true;
    return true;
  });
  if (!cli.parse(argc, argv)) return 2;
  if (client_mode) {
    if (case_set || port != 0 || rekey_ms != 0 || shards != 1 ||
        !trace_out.empty())
      return cli.usage();
    return run_client(static_cast<std::uint16_t>(client_port),
                      client_requests);
  }
  if (!client_requests.empty()) return cli.usage();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // Enable span collection before construction so the pass-1 baseline
  // and hour-0 keying show up in the trace.
  if (!trace_out.empty()) obs::Tracer::global().set_enabled(true);

  std::printf("mtd-daemon: loading %llu x %s and keying hour 0...\n",
              shards, options.case_name.c_str());
  std::fflush(stdout);
  // One shard serves a plain MtdDaemon; more serve a ShardedDaemon fleet
  // of independent copies seeded with stream_seed(seed, shard).
  std::unique_ptr<serve::MtdDaemon> daemon_ptr;
  std::unique_ptr<serve::ShardedDaemon> fleet_ptr;
  try {
    if (shards == 1) {
      daemon_ptr = std::make_unique<serve::MtdDaemon>(options);
    } else {
      serve::ShardedOptions fleet_options;
      fleet_options.cases.assign(static_cast<std::size_t>(shards),
                                 options.case_name);
      fleet_options.seed = options.seed;
      fleet_options.history_hours = options.history_hours;
      fleet_options.daily = options.daily;
      fleet_ptr = std::make_unique<serve::ShardedDaemon>(fleet_options);
    }
  } catch (const io::CaseIoError& e) {
    std::fprintf(stderr, "mtd_daemon: %s\n", e.what());
    return 1;
  }
  serve::LineService& service =
      daemon_ptr ? static_cast<serve::LineService&>(*daemon_ptr)
                 : static_cast<serve::LineService&>(*fleet_ptr);
  const auto for_each_shard = [&](const auto& fn) {
    if (daemon_ptr) {
      fn(*daemon_ptr);
    } else {
      for (std::size_t k = 0; k < fleet_ptr->num_shards(); ++k)
        fn(fleet_ptr->shard(k));
    }
  };
  for_each_shard([](const serve::MtdDaemon& shard) {
    const auto snap = shard.current_snapshot();
    std::printf("mtd-daemon: %s keyed at hour %zu (gamma_th=%.2f, "
                "eta=%.2f, load=%.0f MW)\n",
                shard.case_name().c_str(), snap->hour,
                snap->record.gamma_threshold, snap->record.eta_at_target,
                snap->record.total_load_mw);
  });

  serve::SocketServer server(service, static_cast<std::uint16_t>(port));
  std::printf("mtd-daemon: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::printf("mtd-daemon: re-keying %s; try:  "
              "printf '{\"op\":\"status\"}\\n' | nc 127.0.0.1 %u\n",
              rekey_ms > 0 ? "on a wall-clock interval" : "via the tick verb",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  // Optional wall-clock re-keying scheduler: the virtual clock advances
  // one hour every rekey_ms milliseconds (an accelerated stand-in for
  // the paper's hourly MTD period).
  std::thread rekey_thread;
  if (rekey_ms > 0) {
    rekey_thread = std::thread([&] {
      auto next = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(rekey_ms);
      while (!service.shutdown_requested() && !g_signal_stop.load()) {
        if (std::chrono::steady_clock::now() < next) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        next += std::chrono::milliseconds(rekey_ms);
        const std::size_t hour =
            daemon_ptr ? daemon_ptr->tick() : fleet_ptr->tick_all().front();
        std::printf("mtd-daemon: re-keyed to hour %zu\n", hour);
        std::fflush(stdout);
      }
    });
  }

  // Serve until a client sends `shutdown` or a signal arrives. Polling
  // keeps the loop signal-safe (a handler cannot notify a condition
  // variable).
  while (!service.shutdown_requested() && !g_signal_stop.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  if (daemon_ptr)
    daemon_ptr->request_shutdown();
  else
    fleet_ptr->request_shutdown();
  server.stop();
  if (rekey_thread.joinable()) rekey_thread.join();

  serve::DaemonCounters counters;  // summed across shards
  obs::WorkSnapshot work{};        // engine work, summed across shards
  for_each_shard([&](const serve::MtdDaemon& shard) {
    const serve::DaemonCounters c = shard.counters();
    counters.requests += c.requests;
    counters.errors += c.errors;
    counters.ticks += c.ticks;
    const obs::WorkSnapshot w = shard.registry().work_snapshot();
    for (std::size_t i = 0; i < obs::kWorkCount; ++i) work[i] += w[i];
  });
  std::printf("mtd-daemon: shutting down after %llu requests "
              "(%llu errors, %llu re-keys)\n",
              static_cast<unsigned long long>(counters.requests),
              static_cast<unsigned long long>(counters.errors),
              static_cast<unsigned long long>(counters.ticks));
  const auto work_of = [&](mtdgrid::obs::Work w) {
    return static_cast<unsigned long long>(
        work[static_cast<std::size_t>(w)]);
  };
  std::printf("mtd-daemon: engine work: %llu LP solves, %llu simplex "
              "pivots, %llu MC trials, %llu engine hours\n",
              work_of(obs::Work::kSimplexSolves),
              work_of(obs::Work::kSimplexPhase1Iterations) +
                  work_of(obs::Work::kSimplexPhase2Iterations),
              work_of(obs::Work::kMcTrials),
              work_of(obs::Work::kEngineHours));

  if (!trace_out.empty()) {
    // Workers are quiesced (server stopped, scheduler joined), so the
    // drain sees every span recorded over the daemon's lifetime.
    const std::vector<obs::TraceEvent> events = obs::Tracer::global().drain();
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "mtd_daemon: cannot write %s\n",
                   trace_out.c_str());
      return 1;
    }
    obs::write_chrome_trace(out, events);
    std::printf("mtd-daemon: wrote %zu trace events to %s\n", events.size(),
                trace_out.c_str());
  }
  return 0;
}
