// mtd_loadgen: load generator for the sharded MTD serving fleet
// (ROADMAP "Fleet-scale serving", DESIGN.md "Fleet sharding").
//
// Builds an in-process ShardedDaemon (reduced re-keying budgets so
// startup is fast) and drives it from --connections worker threads, each
// issuing routed requests for --duration seconds:
//
//  - closed loop (default): every connection sends its next request the
//    moment the previous reply arrives — measures peak throughput.
//  - open loop (--rate R): requests are *scheduled* at R per second
//    across all connections and latency is measured from the scheduled
//    arrival time, so queueing delay is charged to the server
//    (avoiding coordinated omission).
//
// The request mix cycles deterministically through the --mix
// detect:dispatch:status weights, and shards are visited round-robin via
// the "shard" routing field. detect and status ride the lock-free read
// path; dispatch takes its shard's write lock.
//
// Prints one JSON object on stdout: request/error counts, RPS, and
// p50/p99/p999/mean/max service latency in microseconds. The CI loadgen
// smoke step asserts rps > 0 on 2 shards x 2 s; bench/bench_serve.cpp's
// BM_ShardedDetectThroughput feeds the same fleet shape into the perf
// gate.
//
// Usage:
//   mtd_loadgen [--shards N] [--connections C] [--duration S] [--rate R]
//               [--mix D:P:S] [--seed S] [--threads N] [case]
//
// Defaults: 2 shards of case14, 4 connections, 5 s, closed loop,
// mix 8:1:1, seed 7.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "io/case_registry.hpp"
#include "serve/json.hpp"
#include "serve/sharded.hpp"

namespace {

/// Parses "D:P:S" detect:dispatch:status weights (non-negative, sum > 0).
bool parse_mix(const char* arg, unsigned long long (&mix)[3]) {
  if (arg == nullptr) return false;
  const std::string s(arg);
  const std::size_t first = s.find(':');
  if (first == std::string::npos) return false;
  const std::size_t second = s.find(':', first + 1);
  if (second == std::string::npos) return false;
  using mtdgrid::examples::parse_u64;
  if (!parse_u64(s.substr(0, first).c_str(), 0, 1000, mix[0]) ||
      !parse_u64(s.substr(first + 1, second - first - 1).c_str(), 0, 1000,
                 mix[1]) ||
      !parse_u64(s.substr(second + 1).c_str(), 0, 1000, mix[2]))
    return false;
  return mix[0] + mix[1] + mix[2] > 0;
}

/// Nearest-rank percentile of an ascending-sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mtdgrid;
  using Clock = std::chrono::steady_clock;

  unsigned long long shards = 2;
  unsigned long long connections = 4;
  unsigned long long duration_s = 5;
  unsigned long long rate = 0;  // 0 = closed loop
  unsigned long long mix[3] = {8, 1, 1};
  std::string case_name = "case14";
  std::uint64_t seed = 7;
  bool case_set = false;

  examples::Cli cli(
      argv[0],
      {"[--shards N] [--connections C] [--duration S] [--rate R]",
       "[--mix D:P:S] [--seed S] [--threads N] [case]"});
  cli.flag_u64("--shards", 1, 64, [&](unsigned long long v) { shards = v; });
  cli.flag_u64("--connections", 1, 256,
               [&](unsigned long long v) { connections = v; });
  cli.flag_u64("--duration", 1, 3600,
               [&](unsigned long long v) { duration_s = v; });
  cli.flag_u64("--rate", 1, 10000000,
               [&](unsigned long long v) { rate = v; });
  cli.flag_value("--mix",
                 [&](const char* raw) { return parse_mix(raw, mix); });
  cli.flag_u64("--seed", 0, ~0ULL, [&](unsigned long long v) { seed = v; });
  cli.flag_threads();
  cli.positional([&](const std::string& arg) {
    if (case_set || !io::CaseRegistry::global().knows(arg)) return false;
    case_name = arg;
    case_set = true;
    return true;
  });
  if (!cli.parse(argc, argv)) return 2;

  // Reduced budgets (the serve-test profile): the harness measures
  // request serving, not selection quality, so startup stays fast.
  serve::ShardedOptions options;
  options.cases.assign(static_cast<std::size_t>(shards), case_name);
  options.seed = seed;
  options.history_hours = 4;
  options.daily.base_search_evaluations = 120;
  options.daily.effectiveness.num_attacks = 40;
  options.daily.selection.extra_starts = 1;
  options.daily.selection.search.max_evaluations = 150;

  std::fprintf(stderr, "mtd-loadgen: keying %llu x %s...\n", shards,
               case_name.c_str());
  std::unique_ptr<serve::ShardedDaemon> fleet;
  try {
    fleet = std::make_unique<serve::ShardedDaemon>(options);
  } catch (const io::CaseIoError& e) {
    std::fprintf(stderr, "mtd_loadgen: %s\n", e.what());
    return 1;
  }

  const std::size_t num_conns = static_cast<std::size_t>(connections);
  const unsigned long long mix_total = mix[0] + mix[1] + mix[2];
  std::vector<std::vector<double>> latencies(num_conns);
  std::vector<std::uint64_t> sent(num_conns, 0), failed(num_conns, 0);

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::seconds(duration_s);
  std::vector<std::thread> workers;
  workers.reserve(num_conns);
  for (std::size_t c = 0; c < num_conns; ++c) {
    workers.emplace_back([&, c] {
      std::vector<double>& lat = latencies[c];
      lat.reserve(std::size_t{1} << 16);
      std::string req;
      for (std::uint64_t n = 0;; ++n) {
        auto issued = Clock::now();
        if (rate > 0) {
          // Connection c owns global arrival slots c, c+C, c+2C, ... of
          // the fleet-wide schedule (one request every 1/rate seconds).
          const double slot_s =
              static_cast<double>(n * num_conns + c) /
              static_cast<double>(rate);
          const auto arrival =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(slot_s));
          if (arrival >= deadline) break;
          std::this_thread::sleep_until(arrival);
          issued = arrival;  // charge backlog to the server (open loop)
        } else if (issued >= deadline) {
          break;
        }
        const std::size_t shard = (c + n) % static_cast<std::size_t>(shards);
        const unsigned long long slot = n % mix_total;
        const char* op = slot < mix[0]            ? "detect"
                         : slot < mix[0] + mix[1] ? "dispatch"
                                                  : "status";
        req = "{\"op\":\"";
        req += op;
        req += "\",\"id\":";
        req += std::to_string(n);
        req += ",\"shard\":";
        req += std::to_string(shard);
        req += "}";
        const std::string reply = fleet->handle_line(req);
        const auto done = Clock::now();
        if (reply.rfind("{\"ok\":true", 0) != 0) ++failed[c];
        lat.push_back(
            std::chrono::duration<double, std::micro>(done - issued).count());
        ++sent[c];
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  std::uint64_t requests = 0, errors = 0;
  for (std::size_t c = 0; c < num_conns; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    requests += sent[c];
    errors += failed[c];
  }
  std::sort(all.begin(), all.end());
  double sum = 0.0;
  for (const double v : all) sum += v;

  serve::Json out;
  out.set("shards", serve::Json(static_cast<std::size_t>(shards)));
  out.set("connections", serve::Json(num_conns));
  out.set("mode", serve::Json(rate > 0 ? "open" : "closed"));
  if (rate > 0) out.set("rate", serve::Json(static_cast<std::size_t>(rate)));
  out.set("mix", serve::Json(std::to_string(mix[0]) + ":" +
                             std::to_string(mix[1]) + ":" +
                             std::to_string(mix[2])));
  out.set("duration_s", serve::Json(elapsed_s));
  out.set("requests", serve::Json(requests));
  out.set("errors", serve::Json(errors));
  out.set("rps",
          serve::Json(elapsed_s > 0.0
                          ? static_cast<double>(requests) / elapsed_s
                          : 0.0));
  serve::Json latency;
  latency.set("p50", serve::Json(percentile(all, 0.50)));
  latency.set("p99", serve::Json(percentile(all, 0.99)));
  latency.set("p999", serve::Json(percentile(all, 0.999)));
  latency.set("mean",
              serve::Json(all.empty()
                              ? 0.0
                              : sum / static_cast<double>(all.size())));
  latency.set("max", serve::Json(all.empty() ? 0.0 : all.back()));
  out.set("latency_us", std::move(latency));
  // Fleet-wide engine work behind the run (deterministic counters only,
  // summed over shards): what the requests cost, not just how fast they
  // came back.
  const obs::WorkSnapshot fleet_work = fleet->aggregate_work();
  serve::Json work;
  for (std::size_t i = 0; i < obs::kWorkCount; ++i) {
    const obs::WorkInfo& info = obs::work_info(static_cast<obs::Work>(i));
    if (info.deterministic) work.set(info.name, serve::Json(fleet_work[i]));
  }
  out.set("work", std::move(work));
  std::printf("%s\n", out.dump().c_str());
  return errors == 0 ? 0 : 1;
}
