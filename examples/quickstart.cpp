// Quickstart: the whole story of the paper in ~80 lines.
//
//  1. Load the IEEE 14-bus system and run the optimal power flow.
//  2. Let an attacker craft a stealthy FDI attack a = H c from the learned
//     measurement matrix — the bad-data detector cannot see it.
//  3. Apply an SPA-designed MTD reactance perturbation (problem (4)).
//  4. Show that the same attack now trips the detector, and what the
//     defense costs in dispatch dollars.
//
// Build: cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "attack/fdi_attack.hpp"
#include "estimation/bdd.hpp"
#include "estimation/detection.hpp"
#include "estimation/state_estimator.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/selection.hpp"
#include "mtd/spa.hpp"
#include "opf/reactance_opf.hpp"
#include "stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace mtdgrid;
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s  (takes no arguments)\n", argv[0]);
    return 2;
  }
  stats::Rng rng(42);

  // --- 1. The grid and its optimal operating point -----------------------
  grid::PowerSystem sys = grid::make_case14();
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  std::printf("IEEE 14-bus: %zu buses, %zu lines, load %.0f MW\n",
              sys.num_buses(), sys.num_branches(), sys.total_load_mw());
  std::printf("No-MTD OPF cost: $%.2f/h\n\n", base.cost);

  // --- 2. The attacker learns H and crafts a stealthy attack -------------
  const linalg::Matrix h = grid::measurement_matrix(sys);
  const linalg::Vector z_true = grid::noiseless_measurements(
      sys, sys.reactances(), base.theta_reduced);
  const attack::FdiAttack attack =
      attack::random_stealthy_attack(h, z_true, 0.08, rng);

  const double sigma = 0.1;  // sensor noise standard deviation, MW
  const estimation::StateEstimator estimator(h, sigma);
  const estimation::BadDataDetector bdd(estimator, 5e-4);
  const double pd_before =
      estimation::analytic_detection_probability(estimator, bdd, attack.a);
  std::printf("Attack ||a||_1/||z||_1 = %.3f; detection probability against "
              "the unperturbed grid: %.4f\n",
              attack.a.norm1() / z_true.norm1(), pd_before);
  std::printf("(=> the attack is invisible: P_D equals the %.1e false-"
              "positive rate)\n\n", bdd.fp_rate());

  // --- 3. The defender applies an SPA-designed MTD -----------------------
  mtd::MtdSelectionOptions options;
  options.gamma_threshold = 0.2;  // radians; see the Fig. 9 tradeoff
  const mtd::MtdSelectionResult defense =
      mtd::select_mtd_perturbation(sys, h, base.cost, options, rng);
  std::printf("MTD perturbation: gamma(H, H') = %.3f rad, OPF cost "
              "$%.2f/h (+%.3f%%)\n",
              defense.spa, defense.opf_cost,
              100.0 * std::max(0.0, defense.cost_increase));

  // --- 4. The same attack against the moved target -----------------------
  const estimation::StateEstimator estimator_mtd(defense.h_mtd, sigma);
  const estimation::BadDataDetector bdd_mtd(estimator_mtd, 5e-4);
  const double pd_after = estimation::analytic_detection_probability(
      estimator_mtd, bdd_mtd, attack.a);
  std::printf("Detection probability after the MTD: %.4f\n", pd_after);
  std::printf("Monte-Carlo check (1000 noise draws): %.4f\n",
              estimation::monte_carlo_detection_probability(
                  estimator_mtd, bdd_mtd,
                  grid::noiseless_measurements(
                      sys, defense.reactances,
                      defense.dispatch.theta_reduced),
                  attack.a, 1000, rng));
  std::printf("\nThe attacker's knowledge is invalidated: the stealthy "
              "attack is now caught\nwith high probability, at an "
              "operational premium of %.3f%% of the dispatch cost.\n",
              100.0 * std::max(0.0, defense.cost_increase));
  return 0;
}
