// Prints the benchmark scenario matrix: one row per case with its size,
// measurement-model dimensions, D-FACTS coverage, base-case OPF cost, and
// the SPA achieved by a uniform +30% perturbation of the D-FACTS branches.
// This is the table referenced from the README; re-run after adding a
// case to refresh it.
//
// Usage: scenario_matrix [--threads N] [case-or-path ...]
//   With no arguments, prints every file-backed or builtin case in the
//   registry (case4 through case300). Composed mega-grids ("case118x9",
//   or any "<case>xN") are skipped by default — the dense OPF + QR this
//   table runs is not sized for 1000+ buses — but may be requested by
//   name. Arguments may be registry names ("case118") or paths to
//   MATPOWER .m files; an unknown case exits 2 with a usage message.
//   --threads N sizes the worker pool used by the parallel hot paths
//   (default: MTDGRID_THREADS env var, then hardware concurrency); results
//   are bit-identical for every N.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli.hpp"
#include "grid/measurement.hpp"
#include "io/case_registry.hpp"
#include "linalg/subspace.hpp"
#include "opf/dc_opf.hpp"

int main(int argc, char** argv) {
  using namespace mtdgrid;

  std::vector<std::string> specs;
  examples::Cli cli(argv[0], {"[--threads N] [case-or-path ...]"});
  cli.note("  --threads N: worker-pool size (positive integer)");
  cli.flag_threads();
  cli.positional([&](const std::string& arg) {
    if (!io::CaseRegistry::global().knows(arg)) return false;
    specs.push_back(arg);
    return true;
  });
  if (!cli.parse(argc, argv)) return 2;
  if (specs.empty())
    for (const auto& e : io::CaseRegistry::global().entries()) {
      // Composed entries (no backing file, no builtin factory) expand to
      // mega-grids the dense pipeline below cannot chew through; keep the
      // no-argument table fast and let callers name them explicitly.
      if (e.file.empty() && e.factory == nullptr) continue;
      specs.push_back(e.name);
    }

  std::printf("%-8s %5s %5s %5s %5s %7s %9s %11s %10s\n", "case", "buses",
              "lines", "gens", "M", "dfacts", "load(MW)", "cost($/h)",
              "spa(+30%)");
  for (const std::string& spec : specs) {
    grid::PowerSystem sys = [&] {
      try {
        return io::load_case(spec);
      } catch (const io::CaseIoError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(cli.usage());
      }
    }();
    const opf::DispatchResult r = opf::solve_dc_opf(sys);
    const linalg::Matrix h0 = grid::measurement_matrix(sys);
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
    // Thin-QR principal angle (matches mtd::spa to ~1e-12 and keeps the
    // 1122 x 299 case300 row cheap).
    const double gamma = linalg::largest_principal_angle_qr(
        h0, grid::measurement_matrix(sys, x));
    std::printf("%-8s %5zu %5zu %5zu %5zu %7zu %9.1f %11.1f %10.4f\n",
                sys.name().c_str(), sys.num_buses(), sys.num_branches(),
                sys.num_generators(), grid::measurement_count(sys),
                sys.dfacts_branches().size(), sys.total_load_mw(),
                r.feasible ? r.cost : -1.0, gamma);
  }
  return 0;
}
