// Prints the benchmark scenario matrix: one row per bundled case with its
// size, measurement-model dimensions, D-FACTS coverage, base-case OPF cost,
// and the SPA achieved by a uniform +30% perturbation of the D-FACTS
// branches. This is the table referenced from the README; re-run after
// adding a case to refresh it.

#include <cstdio>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"

int main(int argc, char** argv) {
  using namespace mtdgrid;
  if (argc > 1) {
    std::fprintf(stderr, "usage: %s  (takes no arguments)\n", argv[0]);
    return 2;
  }

  std::printf("%-8s %5s %5s %5s %5s %7s %9s %11s %10s\n", "case", "buses",
              "lines", "gens", "M", "dfacts", "load(MW)", "cost($/h)",
              "spa(+30%)");
  for (const grid::PowerSystem& sys :
       {grid::make_case4(), grid::make_case_wscc9(), grid::make_case14(),
        grid::make_case_ieee30(), grid::make_case57()}) {
    const opf::DispatchResult r = opf::solve_dc_opf(sys);
    const linalg::Matrix h0 = grid::measurement_matrix(sys);
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
    const double gamma = mtd::spa(h0, grid::measurement_matrix(sys, x));
    std::printf("%-8s %5zu %5zu %5zu %5zu %7zu %9.1f %11.1f %10.4f\n",
                sys.name().c_str(), sys.num_buses(), sys.num_branches(),
                sys.num_generators(), grid::measurement_count(sys),
                sys.dfacts_branches().size(), sys.total_load_mw(),
                r.feasible ? r.cost : -1.0, gamma);
  }
  return 0;
}
