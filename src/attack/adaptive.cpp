#include "attack/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "grid/measurement.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::attack {

linalg::Vector probe_measurement(const linalg::Vector& z_ref, double sigma,
                                 std::uint64_t probe_root, std::size_t hour,
                                 std::uint64_t id) {
  stats::Rng stream =
      stats::make_stream(stats::stream_seed(probe_root, hour), id);
  linalg::Vector z = z_ref;
  for (std::size_t i = 0; i < z.size(); ++i) z[i] += stream.gaussian() * sigma;
  return z;
}

KeyEstimate estimate_key(const grid::PowerSystem& sys,
                         const std::vector<linalg::Vector>& probes,
                         const KeyEstimationOptions& options) {
  if (probes.empty())
    throw std::invalid_argument("estimate_key: need at least one probe");
  const std::size_t num_branches = sys.num_branches();
  const std::size_t num_buses = sys.num_buses();
  const std::size_t m = grid::measurement_count(sys);
  for (const linalg::Vector& z : probes)
    if (z.size() != m)
      throw std::invalid_argument(
          "estimate_key: probe has wrong measurement dimension");

  // 1. Mean flows. Row l is f_l, row L+l is -f_l, so averaging the pair
  // (and all probes) quarters the noise variance of the flow estimate.
  linalg::Vector flows_mw(num_branches);
  for (std::size_t l = 0; l < num_branches; ++l) {
    double acc = 0.0;
    for (const linalg::Vector& z : probes)
      acc += 0.5 * (z[l] - z[num_branches + l]);
    flows_mw[l] = acc / static_cast<double>(probes.size());
  }

  // 2. Bus angles from the slack outward. Known-reactance (non-D-FACTS)
  // branches pin exact angle differences; D-FACTS branches extend
  // reachability at their *nominal* reactance only where the known
  // subgraph is disconnected, and are then excluded from identification
  // (their angle difference would just reproduce the nominal assumption).
  // Fixed-point sweeps in branch-index order keep the walk deterministic.
  std::vector<double> theta(num_buses, 0.0);
  std::vector<bool> known(num_buses, false);
  std::vector<bool> used_for_propagation(num_branches, false);
  known[sys.slack_bus()] = true;
  const double base_mva = sys.base_mva();
  const auto propagate = [&](bool allow_dfacts) {
    bool changed = true;
    bool any = false;
    while (changed) {
      changed = false;
      for (std::size_t l = 0; l < num_branches; ++l) {
        const grid::Branch& br = sys.branch(l);
        if (br.has_dfacts && !allow_dfacts) continue;
        if (known[br.from] == known[br.to]) continue;
        const double dtheta = flows_mw[l] * br.reactance / base_mva;
        if (known[br.from]) {
          theta[br.to] = theta[br.from] - dtheta;
          known[br.to] = true;
        } else {
          theta[br.from] = theta[br.to] + dtheta;
          known[br.from] = true;
        }
        if (br.has_dfacts) used_for_propagation[l] = true;
        changed = true;
        any = true;
      }
    }
    return any;
  };
  propagate(false);
  // Alternate: one nominal-reactance hop only where needed, then resume
  // exact propagation from the newly reached component.
  while (std::find(known.begin(), known.end(), false) != known.end()) {
    if (!propagate(true)) break;  // disconnected even with every branch
    propagate(false);
  }

  // 3. Identify the D-FACTS reactances, clamped to the public device
  // limits the key must lie in.
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  KeyEstimate est;
  est.reactances = sys.reactances();
  est.probes_used = probes.size();
  for (const std::size_t l : sys.dfacts_branches()) {
    const grid::Branch& br = sys.branch(l);
    if (used_for_propagation[l]) continue;  // nominal by construction
    if (!known[br.from] || !known[br.to]) continue;
    if (std::abs(flows_mw[l]) < options.min_flow_mw) continue;
    const double x = base_mva * (theta[br.from] - theta[br.to]) / flows_mw[l];
    if (!(x > 0.0)) continue;  // noise flipped the sign: unidentifiable
    est.reactances[l] = std::clamp(x, lo[l], hi[l]);
    ++est.identified_branches;
  }
  est.h = grid::measurement_matrix(sys, est.reactances);
  return est;
}

KeyEstimate probe_and_estimate_key(const grid::PowerSystem& sys,
                                   const linalg::Vector& z_ref, double sigma,
                                   std::uint64_t probe_root, std::size_t hour,
                                   int probe_budget,
                                   const KeyEstimationOptions& options) {
  if (probe_budget < 1)
    throw std::invalid_argument(
        "probe_and_estimate_key: probe_budget must be >= 1");
  std::vector<linalg::Vector> probes;
  probes.reserve(static_cast<std::size_t>(probe_budget));
  for (int id = 0; id < probe_budget; ++id)
    probes.push_back(probe_measurement(z_ref, sigma, probe_root, hour,
                                       static_cast<std::uint64_t>(id)));
  obs::add(obs::Work::kAttackerProbes,
           static_cast<std::uint64_t>(probe_budget));
  return estimate_key(sys, probes, options);
}

}  // namespace mtdgrid::attack
