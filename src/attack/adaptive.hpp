#pragma once

#include <cstdint>
#include <vector>

#include "grid/power_system.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::attack {

/// Substream family tag of the probe oracle: probe randomness is rooted at
/// `stats::stream_seed(seed, kProbeOracleTag)`, both in the serving
/// daemon's `probe` verb and in the campaign engine's attacker-side
/// estimators. Sharing the tag is what makes the campaign's probe-based
/// attacker observe *exactly* the samples a real client probing the daemon
/// at the same `(seed, hour, id)` would receive (DESIGN.md "Adaptive
/// adversary & campaigns").
inline constexpr std::uint64_t kProbeOracleTag = 0x70726f6265ULL;  // "probe"

/// The probe-oracle wire formula, factored out of the daemon's
/// `reply_probe` so the attacker-side key estimators and the serving layer
/// share one definition: an attack-free noisy sample on the request's own
/// counter-based substream,
///
///   z = z_ref + sigma * N(0, I),  stream = (stream_seed(root, hour), id).
///
/// A pure function of `(z_ref, sigma, probe_root, hour, id)` — probing is
/// idempotent, replies never depend on request interleaving, and the
/// attacker cannot widen their sample by re-asking with the same id.
linalg::Vector probe_measurement(const linalg::Vector& z_ref, double sigma,
                                 std::uint64_t probe_root, std::size_t hour,
                                 std::uint64_t id);

/// Knobs of the probe-based key estimator.
struct KeyEstimationOptions {
  /// Flow magnitude (MW) below which a D-FACTS branch's reactance cannot
  /// be identified from probes (x = base_mva * dtheta / f degenerates) and
  /// the estimator falls back to the nominal reactance.
  double min_flow_mw = 1.0;
};

/// The attacker's reconstruction of the defender's current D-FACTS key
/// from probe-oracle samples.
struct KeyEstimate {
  linalg::Vector reactances;      ///< estimated full reactance vector x-hat
  linalg::Matrix h;               ///< H(x-hat): the estimated subspace basis
  std::size_t probes_used = 0;    ///< oracle samples consumed
  /// D-FACTS branches whose reactance was actually identified from the
  /// probes (the rest fell back to nominal: flow too small, or an endpoint
  /// unreachable through known-reactance branches).
  std::size_t identified_branches = 0;
};

/// Estimates the current reactance key from attack-free probe samples.
///
/// The attacker knows the public case data — topology, base MVA, nominal
/// reactances, D-FACTS device limits — but not the defender's current
/// D-FACTS setpoints. Probes alone cannot span Col(H'): every sample
/// clusters around the one operating point z_ref. The estimator instead
/// inverts the DC measurement model around that point:
///
///  1. average the probes (noise shrinks as sigma / sqrt(B); the forward
///     and reverse flow rows are averaged against each other too);
///  2. recover bus angles by walking branches of *known* (non-D-FACTS)
///     reactance from the slack bus: theta_to = theta_from -
///     f_l x_l / base_mva, then extend through D-FACTS branches at nominal
///     reactance for any bus the known subgraph cannot reach;
///  3. identify each remaining D-FACTS reactance as
///     x_l = base_mva (theta_i - theta_j) / f_l, clamped to the device
///     limits, falling back to nominal when |f_l| < min_flow_mw.
///
/// The returned H(x-hat) converges to the defender's Col(H') as the probe
/// budget grows and goes stale the moment the defender re-keys — the two
/// properties the campaign engine's knowledge frontier measures.
/// Deterministic: a pure function of `(sys, probes, options)`.
KeyEstimate estimate_key(const grid::PowerSystem& sys,
                         const std::vector<linalg::Vector>& probes,
                         const KeyEstimationOptions& options = {});

/// Draws `probe_budget` oracle samples via `probe_measurement` (ids
/// 0..budget-1) and runs `estimate_key` on them. Adds `probe_budget` to
/// `obs::Work::kAttackerProbes`. Requires `probe_budget >= 1` (a
/// zero-budget attacker is the zero-knowledge policy: nominal H, no
/// probes); throws std::invalid_argument otherwise.
KeyEstimate probe_and_estimate_key(const grid::PowerSystem& sys,
                                   const linalg::Vector& z_ref, double sigma,
                                   std::uint64_t probe_root, std::size_t hour,
                                   int probe_budget,
                                   const KeyEstimationOptions& options = {});

}  // namespace mtdgrid::attack
