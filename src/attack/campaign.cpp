#include "attack/campaign.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "grid/measurement.hpp"
#include "io/case_registry.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "opf/dc_opf.hpp"
#include "serve/json.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::attack {

namespace {

/// One adopted key: what the defender operates (and what an attacker who
/// captured it can replay).
struct KeyState {
  std::size_t adopted_hour = 0;  ///< trajectory hour the key went live
  linalg::Matrix h;              ///< the key's measurement matrix H'
  linalg::Vector reactances;     ///< the key's full reactance vector
};

/// One trajectory hour as the campaign scores it.
struct HourState {
  bool scored = false;  ///< keyed, dispatched, and past the first re-key
  std::shared_ptr<const KeyState> key;   ///< key in force this hour
  std::shared_ptr<const KeyState> prev;  ///< key retired at the last re-key
  linalg::Vector z_ref;  ///< noiseless measurements at the operating point
};

/// The defender trajectory of one re-keying schedule: the engine advances
/// hourly (consuming `Rng(seed)` exactly as `run_daily_simulation` would);
/// a freshly selected key is *adopted* only every `rekey_every` hours and
/// held in between, with the OPF re-tracking the hourly load at the held
/// reactances.
std::vector<HourState> defender_trajectory(const grid::PowerSystem& sys,
                                           const grid::DailyLoadTrace& trace,
                                           const CampaignOptions& options,
                                           std::size_t rekey_every) {
  mtd::DailyEngine engine(sys, trace, options.daily);
  stats::Rng rng(options.seed);
  std::vector<HourState> hours;
  hours.reserve(options.horizon_hours);
  std::shared_ptr<const KeyState> key, prev;
  for (std::size_t h = 0; h < options.horizon_hours; ++h) {
    mtd::DailyHourOutcome out = engine.advance_hour(rng);
    HourState hour;
    if (h % rekey_every == 0 && out.record.feasible) {
      if (key) prev = key;
      auto fresh = std::make_shared<KeyState>();
      fresh->adopted_hour = h;
      fresh->h = std::move(out.h_mtd);
      fresh->reactances = std::move(out.reactances);
      key = std::move(fresh);
      hour.z_ref = std::move(out.z_ref);
      hour.scored = true;
    } else if (key) {
      // Held key: the defender keeps the reactances and re-dispatches for
      // this hour's loads (the engine applied them during advance_hour).
      const opf::DispatchResult d =
          opf::solve_dc_opf(engine.system(), key->reactances);
      if (d.feasible) {
        hour.z_ref = grid::noiseless_measurements(
            engine.system(), key->reactances, d.theta_reduced);
        hour.scored = true;
      }
    }
    hour.key = key;
    hour.prev = prev;
    // Scoring starts at the first re-keying boundary so the stale policy
    // is defined on exactly the hours every other policy sees.
    hour.scored = hour.scored && key != nullptr && prev != nullptr;
    hours.push_back(std::move(hour));
  }
  return hours;
}

}  // namespace

const char* attacker_policy_name(AttackerPolicy policy) {
  switch (policy) {
    case AttackerPolicy::kZeroKnowledge: return "zero";
    case AttackerPolicy::kStaleKey: return "stale";
    case AttackerPolicy::kProbe: return "probe";
    case AttackerPolicy::kOmniscient: return "omniscient";
    case AttackerPolicy::kRamp: return "ramp";
  }
  return "?";
}

bool parse_attacker_policy(const std::string& name, AttackerPolicy& out) {
  if (name == "zero") out = AttackerPolicy::kZeroKnowledge;
  else if (name == "stale") out = AttackerPolicy::kStaleKey;
  else if (name == "probe") out = AttackerPolicy::kProbe;
  else if (name == "omniscient") out = AttackerPolicy::kOmniscient;
  else if (name == "ramp") out = AttackerPolicy::kRamp;
  else return false;
  return true;
}

std::vector<AttackerSpec> default_attackers() {
  std::vector<AttackerSpec> panel;
  panel.push_back({AttackerPolicy::kZeroKnowledge, 0, 0});
  panel.push_back({AttackerPolicy::kStaleKey, 0, 0});
  panel.push_back({AttackerPolicy::kProbe, 4, 0});
  panel.push_back({AttackerPolicy::kProbe, 32, 0});
  panel.push_back({AttackerPolicy::kOmniscient, 0, 0});
  panel.push_back({AttackerPolicy::kRamp, 0, 3});
  return panel;
}

std::string to_json(const CampaignFrontier& frontier) {
  using serve::Json;
  const auto number_array = [](const std::vector<double>& v) {
    Json arr{Json::Array{}};
    for (const double x : v) arr.push_back(Json(x));
    return arr;
  };
  Json doc;
  doc.set("case", Json(frontier.case_name));
  doc.set("seed", Json(frontier.seed));
  doc.set("delta", Json(frontier.target_delta));
  doc.set("horizon_hours", Json(frontier.horizon_hours));
  Json cells{Json::Array{}};
  for (const CampaignCell& cell : frontier.cells) {
    Json c;
    c.set("policy", Json(attacker_policy_name(cell.attacker.policy)));
    if (cell.attacker.policy == AttackerPolicy::kProbe)
      c.set("probe_budget", Json(cell.attacker.probe_budget));
    if (cell.attacker.policy == AttackerPolicy::kRamp)
      c.set("ramp_hours", Json(cell.attacker.ramp_hours));
    c.set("rekey_every", Json(cell.rekey_every));
    c.set("hours_scored", Json(cell.hours_scored));
    c.set("mean_detection", Json(cell.mean_detection));
    c.set("eta", Json(cell.eta));
    c.set("probes_used", Json(cell.probes_used));
    c.set("boundary_replays", Json(cell.boundary_replays));
    c.set("hourly_mean_detection",
          number_array(cell.hourly_mean_detection));
    c.set("hourly_eta", number_array(cell.hourly_eta));
    cells.push_back(std::move(c));
  }
  doc.set("cells", std::move(cells));
  return doc.dump();
}

CampaignFrontier run_campaign(const grid::PowerSystem& sys,
                              const grid::DailyLoadTrace& trace,
                              const CampaignOptions& options) {
  CampaignOptions opt = options;
  if (opt.attackers.empty()) opt.attackers = default_attackers();
  if (opt.horizon_hours < 2)
    throw std::invalid_argument("campaign: horizon_hours must be >= 2");
  if (opt.rekey_every.empty())
    throw std::invalid_argument("campaign: need a re-keying schedule");
  for (const std::size_t p : opt.rekey_every)
    if (p == 0)
      throw std::invalid_argument("campaign: rekey_every must be >= 1");
  for (const AttackerSpec& a : opt.attackers) {
    if (a.policy == AttackerPolicy::kProbe && a.probe_budget < 1)
      throw std::invalid_argument("campaign: probe_budget must be >= 1");
    if (a.policy == AttackerPolicy::kRamp && a.ramp_hours < 1)
      throw std::invalid_argument("campaign: ramp_hours must be >= 1");
  }

  CampaignFrontier frontier;
  frontier.case_name = sys.name();
  frontier.seed = opt.seed;
  frontier.target_delta = opt.daily.target_delta;
  frontier.horizon_hours = opt.horizon_hours;

  // The attacker's zero-knowledge matrix: H depends only on topology and
  // reactances, so the public nominal case data pins it exactly.
  const linalg::Matrix h_nominal = grid::measurement_matrix(sys);
  const double sigma = opt.daily.effectiveness.sigma_mw;
  const std::uint64_t probe_root =
      stats::stream_seed(opt.seed, kProbeOracleTag);
  const std::uint64_t campaign_root =
      stats::stream_seed(opt.seed, kCampaignStreamTag);

  std::uint64_t cell_index = 0;
  for (const std::size_t rekey : opt.rekey_every) {
    const std::vector<HourState> hours =
        defender_trajectory(sys, trace, opt, rekey);
    for (const AttackerSpec& spec : opt.attackers) {
      CampaignCell cell;
      cell.attacker = spec;
      cell.rekey_every = rekey;
      const std::uint64_t cell_root =
          stats::stream_seed(campaign_root, cell_index);
      double detection_sum = 0.0;
      double eta_sum = 0.0;
      for (std::size_t h = 0; h < hours.size(); ++h) {
        const HourState& hour = hours[h];
        if (!hour.scored) continue;
        mtd::EffectivenessOptions eff = opt.daily.effectiveness;
        eff.deltas = {opt.daily.target_delta};
        KeyEstimate estimate;             // keeps the probe H alive
        const linalg::Matrix* h_attacker = &h_nominal;
        bool crossed_boundary = false;
        switch (spec.policy) {
          case AttackerPolicy::kZeroKnowledge:
            break;
          case AttackerPolicy::kStaleKey:
            h_attacker = &hour.prev->h;
            crossed_boundary = true;  // the replayed key is retired
            break;
          case AttackerPolicy::kProbe:
            estimate = probe_and_estimate_key(sys, hour.z_ref, sigma,
                                              probe_root, h,
                                              spec.probe_budget,
                                              opt.estimation);
            h_attacker = &estimate.h;
            cell.probes_used +=
                static_cast<std::uint64_t>(spec.probe_budget);
            break;
          case AttackerPolicy::kOmniscient:
            h_attacker = &hour.key->h;
            break;
          case AttackerPolicy::kRamp: {
            // Knowledge locked at the ramp window's first hour; magnitude
            // ramps linearly across the window. Until the defender
            // re-keys mid-window the attack stays stealthy; afterwards
            // the locked key is a boundary-crossing replay.
            const std::size_t h0 = (h / spec.ramp_hours) * spec.ramp_hours;
            const std::shared_ptr<const KeyState>& locked = hours[h0].key;
            h_attacker = locked ? &locked->h : &h_nominal;
            crossed_boundary = locked != hour.key;
            eff.attack_relative_magnitude *=
                static_cast<double>(h - h0 + 1) /
                static_cast<double>(spec.ramp_hours);
            break;
          }
        }
        if (crossed_boundary) {
          obs::add(obs::Work::kStaleReplays);
          ++cell.boundary_replays;
        }
        stats::Rng cell_rng = stats::make_stream(cell_root, h);
        const mtd::EffectivenessResult er = mtd::evaluate_effectiveness(
            *h_attacker, hour.key->h, hour.z_ref, eff, cell_rng);
        cell.hourly_mean_detection.push_back(er.mean_detection);
        cell.hourly_eta.push_back(er.eta[0]);
        detection_sum += er.mean_detection;
        eta_sum += er.eta[0];
      }
      cell.hours_scored = cell.hourly_mean_detection.size();
      if (cell.hours_scored > 0) {
        cell.mean_detection =
            detection_sum / static_cast<double>(cell.hours_scored);
        cell.eta = eta_sum / static_cast<double>(cell.hours_scored);
      }
      obs::add(obs::Work::kCampaignCells);
      frontier.cells.push_back(std::move(cell));
      ++cell_index;
    }
  }
  return frontier;
}

CampaignFrontier run_campaign(const std::string& case_name,
                              const CampaignOptions& options) {
  grid::PowerSystem sys = io::load_case(case_name);
  // The serving daemon's default trace (serve::default_daemon_trace):
  // the NYISO winter-weekday shape scaled from its 14-bus fit to this
  // case's nominal total load, so a campaign and a daemon on the same
  // case face the same defender.
  const grid::DailyLoadTrace base =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  constexpr double kCase14NominalMw = 259.0;
  const double scale = sys.total_load_mw() / kCase14NominalMw;
  std::vector<double> totals(base.size());
  for (std::size_t h = 0; h < base.size(); ++h)
    totals[h] = base.total_mw(h) * scale;
  CampaignFrontier frontier = run_campaign(
      sys, grid::DailyLoadTrace(std::move(totals)), options);
  frontier.case_name = case_name;  // report the registry name
  return frontier;
}

}  // namespace mtdgrid::attack
