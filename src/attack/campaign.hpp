#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/adaptive.hpp"
#include "grid/load_trace.hpp"
#include "grid/power_system.hpp"
#include "mtd/daily.hpp"

namespace mtdgrid::attack {

/// How much the attacker knows about the defender's current D-FACTS key
/// when crafting a = H_attacker c (DESIGN.md "Adaptive adversary &
/// campaigns"). The policies form the knowledge axis of the campaign
/// frontier, from nothing to everything:
enum class AttackerPolicy {
  kZeroKnowledge,  ///< public case data only: nominal-reactance H
  kStaleKey,       ///< the key the defender retired at the last re-key
  kProbe,          ///< probe-oracle subspace estimate of the current key
  kOmniscient,     ///< the current key itself (the paper's attacker)
  kRamp,           ///< omniscient at ramp start, then a multi-hour
                   ///< magnitude ramp on that aging knowledge
};

/// The wire/report name of a policy ("zero", "stale", "probe",
/// "omniscient", "ramp").
const char* attacker_policy_name(AttackerPolicy policy);

/// Parses a policy name; returns false on an unknown name.
bool parse_attacker_policy(const std::string& name, AttackerPolicy& out);

/// One attacker configuration of a campaign.
struct AttackerSpec {
  AttackerPolicy policy = AttackerPolicy::kZeroKnowledge;
  /// Probe-oracle samples per evaluated hour (kProbe only, >= 1).
  int probe_budget = 8;
  /// Ramp window length in hours (kRamp only, >= 1): the attacker locks
  /// in the key in force at the window's first hour and ramps the attack
  /// magnitude linearly to the configured maximum across the window.
  std::size_t ramp_hours = 4;
};

/// The default attacker panel: zero-knowledge, stale-key, probe at two
/// budgets (4 and 32), omniscient, and a 3-hour ramp.
std::vector<AttackerSpec> default_attackers();

/// Campaign configuration: the scenario grid is
/// `rekey_every x attackers`, played against one defender trajectory per
/// re-keying schedule on the given case.
struct CampaignOptions {
  /// Root seed. Every number in the frontier is a pure function of
  /// (seed, options) — see the seeding contract in DESIGN.md.
  std::uint64_t seed = 7;
  /// Defender hours simulated per re-keying schedule (>= 2; hour 0 only
  /// establishes the first key and is never scored).
  std::size_t horizon_hours = 6;
  /// Defender re-keying schedules: a schedule P adopts a freshly selected
  /// key every P hours and holds it in between (the OPF keeps tracking
  /// the hourly load at the held reactances).
  std::vector<std::size_t> rekey_every = {1};
  /// The attacker panel (default: `default_attackers()` when empty).
  std::vector<AttackerSpec> attackers;
  /// Re-keying budgets and targets of the defender trajectory; the
  /// embedded effectiveness options also score every campaign cell
  /// (eta is reported at `daily.target_delta`).
  mtd::DailySimulationOptions daily;
  /// Attacker-side key-estimation knobs (kProbe).
  KeyEstimationOptions estimation;
};

/// One cell of the frontier: one attacker against one re-keying schedule,
/// aggregated over every scored hour of the trajectory.
struct CampaignCell {
  AttackerSpec attacker;                      ///< the attacker scored
  std::size_t rekey_every = 1;                ///< the defender schedule
  std::size_t hours_scored = 0;               ///< hours entering the means
  std::vector<double> hourly_mean_detection;  ///< per-hour mean P'_D
  std::vector<double> hourly_eta;             ///< per-hour eta'(delta)
  double mean_detection = 0.0;  ///< mean over hours of the hourly means
  double eta = 0.0;             ///< mean over hours of eta'(delta)
  std::uint64_t probes_used = 0;      ///< oracle samples this cell drew
  /// Evaluations whose attacker knowledge predated the key in force (the
  /// stale/ramp replays that crossed a re-keying boundary).
  std::uint64_t boundary_replays = 0;
};

/// The campaign result: the detection-probability-vs-attacker-knowledge
/// frontier, cells in schedule-major, attacker-minor order.
struct CampaignFrontier {
  std::string case_name;          ///< the case the campaign ran on
  std::uint64_t seed = 0;         ///< the root seed
  double target_delta = 0.9;      ///< the delta eta is reported at
  std::size_t horizon_hours = 0;  ///< defender hours per schedule
  std::vector<CampaignCell> cells;
};

/// Serializes a frontier as one compact JSON object (stable field order,
/// shortest-round-trip doubles) — the CLI report format, and what the
/// determinism tests byte-compare across thread counts.
std::string to_json(const CampaignFrontier& frontier);

/// Runs a campaign: for each re-keying schedule, one sequential defender
/// trajectory (a `mtd::DailyEngine` advanced hourly, adopting the freshly
/// selected key every P hours), and for each attacker of the panel one
/// frontier cell scored hour by hour against the key actually in force.
///
/// Scoring starts at the first re-keying boundary (every scored hour has
/// a current *and* a previous key, so the stale policy is well defined on
/// exactly the hours every other policy is scored on) and skips hours
/// where the defender has no feasible key or dispatch.
///
/// Seeding contract: the engine consumes `Rng(seed)` exactly as
/// `run_daily_simulation` would; the probe oracle is rooted at
/// `stream_seed(seed, kProbeOracleTag)` — the daemon's derivation, so
/// campaign probes match daemon probes sample for sample; cell `i` scores
/// hour `h` on the substream `(stream_seed(campaign_root, i), h)` with
/// `campaign_root = stream_seed(seed, kCampaignStreamTag)`. Every cell is
/// therefore a bit-identical pure function of (seed, options) at any
/// thread count — the only parallelism is inside
/// `mtd::evaluate_effectiveness`, which already guarantees it.
///
/// Work counters: `kAttackerProbes` per oracle sample, `kStaleReplays`
/// per boundary-crossing replay, `kCampaignCells` per completed cell (all
/// deterministic, so they appear in default `metrics` replies).
CampaignFrontier run_campaign(const grid::PowerSystem& sys,
                              const grid::DailyLoadTrace& trace,
                              const CampaignOptions& options);

/// Convenience: loads `case_name` through `io::load_case` (registry
/// names, composed `<case>xN` grids, or a `.m` path) and replays the
/// NYISO winter-weekday shape scaled to the case's nominal total load —
/// the serving daemon's default trace, so a campaign and a daemon on the
/// same case see the same defender.
CampaignFrontier run_campaign(const std::string& case_name,
                              const CampaignOptions& options);

/// Substream family tag of the campaign cell evaluations (see the seeding
/// contract on `run_campaign`).
inline constexpr std::uint64_t kCampaignStreamTag =
    0x63616d706169676eULL;  // "campaign"

}  // namespace mtdgrid::attack
