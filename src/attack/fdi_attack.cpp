#include "attack/fdi_attack.hpp"

#include <cassert>
#include <stdexcept>

#include "core/parallel.hpp"
#include "linalg/subspace.hpp"

namespace mtdgrid::attack {

FdiAttack make_stealthy_attack(const linalg::Matrix& h,
                               const linalg::Vector& c) {
  assert(c.size() == h.cols());
  return {c, h * c};
}

FdiAttack random_stealthy_attack(const linalg::Matrix& h,
                                 const linalg::Vector& z_ref,
                                 double relative_magnitude, stats::Rng& rng) {
  assert(z_ref.size() == h.rows());
  if (relative_magnitude <= 0.0)
    throw std::invalid_argument("attack magnitude must be positive");
  const double z_norm1 = z_ref.norm1();
  if (z_norm1 <= 0.0)
    throw std::invalid_argument("reference measurement must be non-zero");

  linalg::Vector c(h.cols());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = rng.gaussian();
  linalg::Vector a = h * c;
  const double a_norm1 = a.norm1();
  if (a_norm1 == 0.0) {
    // Degenerate draw (probability zero up to rounding); retry recursively.
    return random_stealthy_attack(h, z_ref, relative_magnitude, rng);
  }
  const double scale = relative_magnitude * z_norm1 / a_norm1;
  c *= scale;
  a *= scale;
  return {std::move(c), std::move(a)};
}

std::vector<FdiAttack> sample_attacks(const linalg::Matrix& h,
                                      const linalg::Vector& z_ref,
                                      double relative_magnitude, int count,
                                      stats::Rng& rng) {
  assert(count >= 0);
  return sample_attacks_seeded(h, z_ref, relative_magnitude, count,
                               rng.split());
}

std::vector<FdiAttack> sample_attacks_seeded(const linalg::Matrix& h,
                                             const linalg::Vector& z_ref,
                                             double relative_magnitude,
                                             int count, std::uint64_t root) {
  assert(count >= 0);
  // Each attack owns stream (root, i): the draw is independent of which
  // worker runs it and of how the other attacks are scheduled.
  return core::parallel_map<FdiAttack>(
      static_cast<std::size_t>(count), [&](std::size_t i) {
        stats::Rng stream = stats::make_stream(root, i);
        return random_stealthy_attack(h, z_ref, relative_magnitude, stream);
      });
}

bool remains_stealthy_under(const linalg::Matrix& h_new, const FdiAttack& atk,
                            double tol) {
  return linalg::column_space_contains(h_new, linalg::Matrix::column(atk.a),
                                       tol);
}

}  // namespace mtdgrid::attack
