#include "attack/fdi_attack.hpp"

#include <cassert>
#include <stdexcept>

#include "linalg/subspace.hpp"

namespace mtdgrid::attack {

FdiAttack make_stealthy_attack(const linalg::Matrix& h,
                               const linalg::Vector& c) {
  assert(c.size() == h.cols());
  return {c, h * c};
}

FdiAttack random_stealthy_attack(const linalg::Matrix& h,
                                 const linalg::Vector& z_ref,
                                 double relative_magnitude, stats::Rng& rng) {
  assert(z_ref.size() == h.rows());
  if (relative_magnitude <= 0.0)
    throw std::invalid_argument("attack magnitude must be positive");
  const double z_norm1 = z_ref.norm1();
  if (z_norm1 <= 0.0)
    throw std::invalid_argument("reference measurement must be non-zero");

  linalg::Vector c(h.cols());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = rng.gaussian();
  linalg::Vector a = h * c;
  const double a_norm1 = a.norm1();
  if (a_norm1 == 0.0) {
    // Degenerate draw (probability zero up to rounding); retry recursively.
    return random_stealthy_attack(h, z_ref, relative_magnitude, rng);
  }
  const double scale = relative_magnitude * z_norm1 / a_norm1;
  c *= scale;
  a *= scale;
  return {std::move(c), std::move(a)};
}

std::vector<FdiAttack> sample_attacks(const linalg::Matrix& h,
                                      const linalg::Vector& z_ref,
                                      double relative_magnitude, int count,
                                      stats::Rng& rng) {
  assert(count >= 0);
  std::vector<FdiAttack> attacks;
  attacks.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    attacks.push_back(
        random_stealthy_attack(h, z_ref, relative_magnitude, rng));
  return attacks;
}

bool remains_stealthy_under(const linalg::Matrix& h_new, const FdiAttack& atk,
                            double tol) {
  return linalg::column_space_contains(h_new, linalg::Matrix::column(atk.a),
                                       tol);
}

}  // namespace mtdgrid::attack
