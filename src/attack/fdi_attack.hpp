#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::attack {

/// A false-data-injection attack of the stealthy form a = H c (paper
/// Section III): `c` is the state offset the attacker injects and `a` the
/// resulting measurement corruption. Such attacks bypass the BDD of the
/// system whose measurement matrix is H.
struct FdiAttack {
  linalg::Vector c;  ///< attacker-chosen state perturbation (dim n)
  linalg::Vector a;  ///< measurement-space injection a = H c (dim M)
};

/// Builds the stealthy attack a = H c for an explicit `c`.
FdiAttack make_stealthy_attack(const linalg::Matrix& h,
                               const linalg::Vector& c);

/// Draws a random stealthy attack the way the paper's Monte-Carlo study
/// does: c ~ N(0, I), then scaled so that ||a||_1 / ||z_ref||_1 equals
/// `relative_magnitude` (0.08 in the paper), keeping injections small
/// relative to the true measurements.
FdiAttack random_stealthy_attack(const linalg::Matrix& h,
                                 const linalg::Vector& z_ref,
                                 double relative_magnitude, stats::Rng& rng);

/// Draws `count` independent random stealthy attacks. Attack i is produced
/// from its own counter-based stream `stats::make_stream(root, i)` with
/// `root = rng.split()`, and the draws are spread across the global thread
/// pool — the sample is a pure function of `(h, z_ref, relative_magnitude,
/// count, root)`, bit-identical for every thread count, and `rng` advances
/// by exactly one raw draw regardless of `count`.
std::vector<FdiAttack> sample_attacks(const linalg::Matrix& h,
                                      const linalg::Vector& z_ref,
                                      double relative_magnitude, int count,
                                      stats::Rng& rng);

/// The seed-explicit core of `sample_attacks`: attack i is drawn from
/// `stats::make_stream(root, i)`. Exposed so batched evaluators can share
/// one attack sample across candidates by passing the same `root`.
std::vector<FdiAttack> sample_attacks_seeded(const linalg::Matrix& h,
                                             const linalg::Vector& z_ref,
                                             double relative_magnitude,
                                             int count, std::uint64_t root);

/// Proposition 1 stealth test: the attack stays undetectable under the new
/// measurement matrix `h_new` iff a lies in Col(h_new), i.e.
/// rank(h_new) == rank([h_new | a]).
bool remains_stealthy_under(const linalg::Matrix& h_new, const FdiAttack& atk,
                            double tol = 1e-8);

}  // namespace mtdgrid::attack
