#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::attack {

/// A false-data-injection attack of the stealthy form a = H c (paper
/// Section III): `c` is the state offset the attacker injects and `a` the
/// resulting measurement corruption. Such attacks bypass the BDD of the
/// system whose measurement matrix is H.
struct FdiAttack {
  linalg::Vector c;  ///< attacker-chosen state perturbation (dim n)
  linalg::Vector a;  ///< measurement-space injection a = H c (dim M)
};

/// Builds the stealthy attack a = H c for an explicit `c`.
FdiAttack make_stealthy_attack(const linalg::Matrix& h,
                               const linalg::Vector& c);

/// Draws a random stealthy attack the way the paper's Monte-Carlo study
/// does: c ~ N(0, I), then scaled so that ||a||_1 / ||z_ref||_1 equals
/// `relative_magnitude` (0.08 in the paper), keeping injections small
/// relative to the true measurements.
FdiAttack random_stealthy_attack(const linalg::Matrix& h,
                                 const linalg::Vector& z_ref,
                                 double relative_magnitude, stats::Rng& rng);

/// Draws `count` independent random stealthy attacks.
std::vector<FdiAttack> sample_attacks(const linalg::Matrix& h,
                                      const linalg::Vector& z_ref,
                                      double relative_magnitude, int count,
                                      stats::Rng& rng);

/// Proposition 1 stealth test: the attack stays undetectable under the new
/// measurement matrix `h_new` iff a lies in Col(h_new), i.e.
/// rank(h_new) == rank([h_new | a]).
bool remains_stealthy_under(const linalg::Matrix& h_new, const FdiAttack& atk,
                            double tol = 1e-8);

}  // namespace mtdgrid::attack
