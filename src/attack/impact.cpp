#include "attack/impact.hpp"

#include <algorithm>
#include <cassert>

#include "grid/power_flow.hpp"

namespace mtdgrid::attack {

AttackImpact evaluate_attack_impact(const grid::PowerSystem& sys,
                                    const linalg::Vector& x,
                                    const linalg::Vector& c) {
  assert(c.size() == sys.num_buses() - 1);
  AttackImpact impact;

  const opf::DispatchResult truth = opf::solve_dc_opf(sys, x);
  if (!truth.feasible) return impact;
  impact.true_opf_cost = truth.cost;

  // The falsified injections implied by the shifted estimate: the attack
  // adds B_cols * c to every perceived nodal injection, which the operator
  // reads as a change in load (loads = generation - injections).
  const linalg::Matrix b_cols =
      sys.susceptance_matrix(x).without_col(sys.slack_bus());
  const linalg::Vector injection_shift = b_cols * c;

  grid::PowerSystem falsified = sys;
  linalg::Vector loads = sys.loads_mw();
  for (std::size_t i = 0; i < loads.size(); ++i)
    loads[i] = std::max(0.0, loads[i] - injection_shift[i]);
  falsified.set_loads_mw(loads);

  const opf::DispatchResult fooled = opf::solve_dc_opf(falsified, x);
  impact.redispatch_feasible = fooled.feasible;
  if (!fooled.feasible) return impact;

  // Apply the fooled dispatch to the real system. The real loads do not
  // balance the fooled generation exactly; the imbalance lands on the
  // slack bus, as frequency regulation would distribute it in practice.
  linalg::Vector injections =
      grid::nodal_injections(sys, fooled.generation_mw);
  injections[sys.slack_bus()] -= injections.sum();
  const grid::DcPowerFlowResult flow =
      grid::solve_dc_power_flow(sys, x, injections);

  impact.attacked_cost = opf::dispatch_cost(sys, fooled.generation_mw);
  impact.cost_increase =
      (impact.attacked_cost - impact.true_opf_cost) / impact.true_opf_cost;
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    const double loading =
        std::abs(flow.flows_mw[l]) / sys.branch(l).flow_limit_mw;
    if (loading > 1.0 + 1e-9) {
      ++impact.overloaded_lines;
      impact.worst_overload_pct =
          std::max(impact.worst_overload_pct, 100.0 * (loading - 1.0));
    }
  }
  return impact;
}

}  // namespace mtdgrid::attack
