#pragma once

#include "attack/fdi_attack.hpp"
#include "grid/power_system.hpp"
#include "opf/dc_opf.hpp"

namespace mtdgrid::attack {

/// Economic/physical impact of an *undetected* FDI attack, in the style of
/// the load-redistribution analyses the paper cites in its Discussion
/// (Section VII-D, refs [5], [20]): the MTD's operational cost is the
/// premium paid to avoid this damage.
///
/// Model: the stealthy attack a = Hc shifts the operator's state estimate
/// by c, so the operator perceives falsified nodal injections
/// p_false = B (theta + c) and re-dispatches against the implied loads.
/// The resulting dispatch is applied to the *true* system, where it
/// produces line overloads and a dispatch cost that differs from the true
/// optimum.
struct AttackImpact {
  bool redispatch_feasible = false;  ///< OPF solved under falsified loads
  double true_opf_cost = 0.0;        ///< least cost for the real loads
  double attacked_cost = 0.0;        ///< cost of the falsified dispatch
  double cost_increase = 0.0;        ///< (attacked - true) / true
  double worst_overload_pct = 0.0;   ///< max line loading above 100%
  std::size_t overloaded_lines = 0;  ///< lines pushed beyond their limit
};

/// Evaluates the impact of the state offset `c` (reduced coordinates,
/// length N-1) on a system operating at reactances `x`. The operator's
/// falsified loads are clamped at zero (negative perceived loads are
/// treated as zero demand).
AttackImpact evaluate_attack_impact(const grid::PowerSystem& sys,
                                    const linalg::Vector& x,
                                    const linalg::Vector& c);

}  // namespace mtdgrid::attack
