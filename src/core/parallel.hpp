#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/scope.hpp"

namespace mtdgrid::core {

/// Runs `fn(i)` for every i in [0, count). Indices are handed out through a
/// shared atomic cursor so uneven task costs balance across workers; `fn`
/// must therefore not depend on execution order, and must be safe to call
/// concurrently for distinct indices. Runs inline (plain loop, ascending
/// order) when the effective worker count is 1 or the caller is already
/// inside a parallel region — nested regions serialize rather than
/// oversubscribe. Safe to call from any number of user threads at once:
/// the pool queues regions and runs them one at a time
/// (`ThreadPool::run`), so independent callers — e.g. two daemon shards —
/// never interleave their tasks and each region's results stay
/// bit-identical to a solo run.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, ThreadPool* pool = nullptr) {
  // Structural counters (see obs::WorkInfo::deterministic): callers may
  // shape their regions by worker count, so these are Prometheus-only.
  obs::add(obs::Work::kPoolRegions);
  obs::add(obs::Work::kPoolTasks, count);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  const std::size_t workers = std::min(p.num_threads(), count);
  if (workers <= 1 || ThreadPool::in_parallel_region()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  p.run(workers, [&](std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(i);
    }
  });
}

/// `parallel_for` with per-worker state: each worker evaluates
/// `make_state()` once and passes the result to every task it claims —
/// for scratch that is expensive to rebuild per task or unsafe to share
/// across threads (`mtd::SpaEvaluator`, `opf::DispatchEvaluator`, simplex
/// workspaces). Determinism rule: `fn(state, i)`'s observable result must
/// be a function of `i` alone — states built by `make_state()` must be
/// interchangeable, because which worker's state serves index i depends on
/// scheduling.
template <typename MakeState, typename Fn>
void parallel_for_with_state(std::size_t count, MakeState&& make_state,
                             Fn&& fn, ThreadPool* pool = nullptr) {
  obs::add(obs::Work::kPoolRegions);
  obs::add(obs::Work::kPoolTasks, count);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  const std::size_t workers = std::min(p.num_threads(), count);
  if (workers <= 1 || ThreadPool::in_parallel_region()) {
    auto state = make_state();
    for (std::size_t i = 0; i < count; ++i) fn(state, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  p.run(workers, [&](std::size_t) {
    auto state = make_state();
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(state, i);
    }
  });
}

/// Caller-owned per-worker state for `parallel_for_with_shared_state`:
/// size it with `worker_state_slots(pool)`; entries start empty and are
/// filled lazily, one per worker, on first use.
template <typename State>
using WorkerStates = std::vector<std::unique_ptr<State>>;

/// Number of state slots to allocate for a (possibly defaulted) pool.
inline std::size_t worker_state_slots(ThreadPool* pool = nullptr) {
  return (pool != nullptr ? *pool : ThreadPool::global()).num_threads();
}

/// Like `parallel_for_with_state`, but the worker states live in a
/// caller-owned vector and are built lazily on first use — several
/// consecutive parallel regions can then share one set of expensive
/// states (e.g. the selection sweep's evaluator pairs serve both the
/// corner scoring and the multi-start region). `states` must have at
/// least `worker_state_slots(pool)` entries. The interchangeability rule
/// of `parallel_for_with_state` applies unchanged.
template <typename State, typename MakeState, typename Fn>
void parallel_for_with_shared_state(std::size_t count,
                                    WorkerStates<State>& states,
                                    MakeState&& make_state, Fn&& fn,
                                    ThreadPool* pool = nullptr) {
  obs::add(obs::Work::kPoolRegions);
  obs::add(obs::Work::kPoolTasks, count);
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  const std::size_t workers = std::min(p.num_threads(), count);
  const auto state_for = [&](std::size_t slot) -> State& {
    if (!states[slot]) states[slot] = std::make_unique<State>(make_state());
    return *states[slot];
  };
  if (workers <= 1 || ThreadPool::in_parallel_region()) {
    State& state = state_for(0);
    for (std::size_t i = 0; i < count; ++i) fn(state, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  p.run(workers, [&](std::size_t worker) {
    State& state = state_for(worker);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      fn(state, i);
    }
  });
}

/// Caller-owned cache of per-worker states that outlives individual
/// parallel calls — the "request-scoped worker-state reuse" layer behind
/// long-lived loops (the daily re-keying engine, the serving daemon):
/// several `parallel_for_with_shared_state` call *sites* in several calls
/// to the same API can share one set of expensive states (evaluator
/// pairs, factorizations) as long as the inputs those states were built
/// from have not changed. The owner calls `invalidate()` whenever they do
/// (new hour, new attacker matrix, new loads); `slots()` transparently
/// re-sizes when the global pool size changed between calls. States obey
/// the interchangeability rule of `parallel_for_with_state` unchanged, so
/// reuse is a pure speed knob — results are bit-identical with or without
/// a cache, at any thread count.
template <typename State>
class WorkerStateCache {
 public:
  /// Drops every cached state; the next `slots()` hands out empty slots
  /// that the parallel region refills lazily. Call on any change to the
  /// inputs the states depend on.
  void invalidate() {
    for (std::unique_ptr<State>& s : states_) s.reset();
  }

  /// The per-worker state slots, sized for the given (default: global)
  /// pool. A pool-size change invalidates implicitly — slot k must always
  /// belong to worker k of the *current* pool.
  WorkerStates<State>& slots(ThreadPool* pool = nullptr) {
    const std::size_t n = worker_state_slots(pool);
    if (states_.size() != n) {
      states_.clear();
      states_.resize(n);
    }
    return states_;
  }

 private:
  WorkerStates<State> states_;
};

/// Evaluates `fn(i) -> T` for every index in parallel and returns the
/// results ordered by task index. The index-ordered output (not the
/// execution order) is what downstream reductions fold over, which is the
/// cornerstone of the library's thread-count-invariance guarantee.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, Fn&& fn,
                            ThreadPool* pool = nullptr) {
  std::vector<T> out(count);
  parallel_for(
      count, [&](std::size_t i) { out[i] = fn(i); }, pool);
  return out;
}

/// Ordered parallel reduction: maps every index to a value of type T in
/// parallel, then folds sequentially in ascending index order,
/// `acc = fold(acc, value_i, i)`. Because the fold order is fixed, a
/// non-associative reduction (floating-point sums, first-strictly-better
/// argmin) produces bit-identical results for every thread count.
template <typename T, typename Acc, typename MapFn, typename FoldFn>
Acc parallel_reduce_ordered(std::size_t count, Acc init, MapFn&& map,
                            FoldFn&& fold, ThreadPool* pool = nullptr) {
  std::vector<T> values = parallel_map<T>(count, map, pool);
  Acc acc = std::move(init);
  for (std::size_t i = 0; i < count; ++i)
    acc = fold(std::move(acc), std::move(values[i]), i);
  return acc;
}

}  // namespace mtdgrid::core
