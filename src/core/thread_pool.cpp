#include "core/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

namespace mtdgrid::core {

namespace {

/// Guards the global-pool slot; `run` itself is lock-free on this mutex.
std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

bool& in_region_flag() {
  thread_local bool in_region = false;
  return in_region;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t background = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(background);
  for (std::size_t i = 0; i < background; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::in_parallel_region() { return in_region_flag(); }

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t workers = 0;
    obs::ThreadContext ctx;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      workers = job_workers_;
      ctx = job_context_;
    }
    // Record into the submitter's registry/capture for this region; the
    // inline path in `run` inherits the submitter's thread-locals
    // directly and needs no scope.
    obs::ScopedContext obs_scope(ctx);
    execute(job, workers);
  }
}

void ThreadPool::execute(const std::function<void(std::size_t)>* job,
                         std::size_t workers) {
  in_region_flag() = true;
  for (;;) {
    const std::size_t id = next_worker_.fetch_add(1, std::memory_order_relaxed);
    if (id >= workers) break;
    try {
      (*job)(id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  in_region_flag() = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++finished_;
    if (finished_ == participants_) done_cv_.notify_one();
  }
}

void ThreadPool::run(std::size_t workers,
                     const std::function<void(std::size_t)>& job) {
  workers = std::min(workers, num_threads());
  if (workers == 0) return;
  if (workers == 1 || workers_.empty() || in_parallel_region()) {
    // Inline (sequential) execution: pool of one, a single-worker job, or
    // a nested region. Worker ids are handed out in order, matching the
    // id sequence a one-thread pool would produce.
    const bool was_in_region = in_region_flag();
    in_region_flag() = true;
    try {
      for (std::size_t id = 0; id < workers; ++id) job(id);
    } catch (...) {
      in_region_flag() = was_in_region;
      throw;
    }
    in_region_flag() = was_in_region;
    return;
  }

  // Admit one parallel region at a time: concurrent `run` callers (e.g.
  // two daemon shards fanning out Monte-Carlo detects) queue here in
  // arrival order. The inline path above never reaches this lock, so a
  // nested region issued from inside a job cannot self-deadlock.
  std::lock_guard<std::mutex> region_lock(region_mutex_);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    job_workers_ = workers;
    job_context_ = obs::thread_context();
    // Every background thread participates in the completion barrier even
    // when workers < pool size (it wakes, finds no id, reports finished).
    // This full-pool handshake is what makes generation/cursor reuse safe:
    // `run` cannot return — and the next region cannot reset
    // `next_worker_` — while any thread might still touch this one's
    // state. The idle wakeup costs microseconds per region; regions here
    // wrap hundreds of attack/start tasks, so correctness wins.
    participants_ = workers_.size() + 1;
    finished_ = 0;
    first_error_ = nullptr;
    next_worker_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  wake_cv_.notify_all();
  execute(&job, workers);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return finished_ == participants_; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(default_num_threads());
  return *slot;
}

std::size_t ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("MTDGRID_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0)
      return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::set_global_num_threads(std::size_t n) {
  if (n == 0) n = default_num_threads();
  std::lock_guard<std::mutex> lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (slot && slot->num_threads() == n) return;
  slot = std::make_unique<ThreadPool>(n);
}

}  // namespace mtdgrid::core
