#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/scope.hpp"

namespace mtdgrid::core {

/// Fixed-size worker pool behind every `parallel_*` helper (parallel.hpp).
///
/// The pool owns `num_threads() - 1` background threads; the thread that
/// calls `run` always participates as worker 0's peer, so a pool of size 1
/// has no background threads and executes everything inline — the
/// sequential reference behavior the determinism tests compare against.
///
/// Threading/seeding contract (DESIGN.md "Threading model & deterministic
/// seeding"): the pool only decides WHERE tasks run, never WHAT they
/// compute. All library hot paths derive per-task RNG streams from
/// `(seed, task_index)` and reduce results in task-index order, so their
/// output is bit-identical for every pool size.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers total (clamped to >= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Executes `job(worker_id)` once for every worker_id in
  /// [0, min(workers, num_threads())). The calling thread participates;
  /// the call blocks until every worker returns. The first exception thrown
  /// by any worker is rethrown on the calling thread after the barrier.
  ///
  /// `run` may be called from any number of user threads: the pool admits
  /// one parallel region at a time and serializes the rest on an internal
  /// region lock (first come, first served) — required by the sharded
  /// serving fleet, where independent shards fan out concurrently
  /// (DESIGN.md "Fleet sharding"). A nested call (issued from inside a
  /// job) executes the inner job inline on the calling worker — the
  /// `parallel_*` helpers rely on this to serialize nested parallelism.
  void run(std::size_t workers, const std::function<void(std::size_t)>& job);

  /// True while the calling thread is executing a `run` job; used by the
  /// parallel helpers to detect (and serialize) nested parallel regions.
  static bool in_parallel_region();

  /// The process-wide pool used by the library hot paths, created on first
  /// use with `default_num_threads()` workers.
  static ThreadPool& global();

  /// Resolves the thread-count knob: the MTDGRID_THREADS environment
  /// variable when set to a positive integer, otherwise
  /// `std::thread::hardware_concurrency()` (minimum 1).
  static std::size_t default_num_threads();

  /// Replaces the global pool with one of `n` workers (the `--threads`
  /// CLI knob; `n == 0` restores `default_num_threads()`). Must not be
  /// called while a parallel region is running.
  static void set_global_num_threads(std::size_t n);

 private:
  void worker_loop();
  void execute(const std::function<void(std::size_t)>* job,
               std::size_t workers);

  std::vector<std::thread> workers_;

  std::mutex region_mutex_;  // admits one queued parallel region at a time
  std::mutex mutex_;
  std::condition_variable wake_cv_;   // signals a new generation (or stop)
  std::condition_variable done_cv_;   // signals all participants finished
  std::uint64_t generation_ = 0;      // bumped once per `run`
  const std::function<void(std::size_t)>* job_ = nullptr;
  // The submitting thread's observability context (obs/scope.hpp),
  // captured in `run` and installed on each background worker for the
  // region: tasks record work into the submitter's registry (e.g. a
  // daemon shard's), not the workers' defaults. Work counters are
  // integer sums, so attribution stays thread-count invariant.
  obs::ThreadContext job_context_;
  std::size_t job_workers_ = 0;       // worker ids handed out this run
  std::size_t participants_ = 0;      // threads that must report finished
  std::size_t finished_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;

  std::atomic<std::size_t> next_worker_{0};
};

}  // namespace mtdgrid::core
