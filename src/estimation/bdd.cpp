#include "estimation/bdd.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace mtdgrid::estimation {

BadDataDetector::BadDataDetector(const StateEstimator& estimator,
                                 double fp_rate)
    : fp_rate_(fp_rate), dof_(estimator.residual_dof()) {
  if (fp_rate <= 0.0 || fp_rate >= 1.0)
    throw std::invalid_argument("BDD: fp rate must lie in (0, 1)");
  const double q = stats::chi_square_quantile(1.0 - fp_rate,
                                              static_cast<double>(dof_));
  threshold_ = std::sqrt(q);
}

}  // namespace mtdgrid::estimation
