#pragma once

#include "estimation/state_estimator.hpp"

namespace mtdgrid::estimation {

/// Bad-data detector (paper Section III): compares the normalized residual
/// norm against a threshold tau calibrated so that attack-free Gaussian
/// noise triggers an alarm with probability exactly `fp_rate` (alpha).
///
/// Calibration uses the exact chi-square law of the normalized residual:
/// tau^2 = F_chi2^{-1}(1 - alpha; M - n).
class BadDataDetector {
 public:
  /// Builds the detector for the given estimator and false-positive rate
  /// alpha in (0, 1).
  BadDataDetector(const StateEstimator& estimator, double fp_rate);

  /// The detection threshold tau (on the normalized residual norm).
  double threshold() const { return threshold_; }

  /// The calibrated false-positive rate alpha.
  double fp_rate() const { return fp_rate_; }

  /// Residual degrees of freedom M - n used in the calibration.
  std::size_t dof() const { return dof_; }

  /// True when the normalized residual norm raises the alarm (r >= tau).
  bool alarm(double normalized_residual_norm) const {
    return normalized_residual_norm >= threshold_;
  }

  /// Convenience: runs the estimator on `z` and applies the test.
  bool alarm(const StateEstimator& estimator, const linalg::Vector& z) const {
    return alarm(estimator.normalized_residual_norm(z));
  }

 private:
  double fp_rate_;
  std::size_t dof_;
  double threshold_;
};

}  // namespace mtdgrid::estimation
