#include "estimation/detection.hpp"

#include <cassert>

#include "stats/distributions.hpp"

namespace mtdgrid::estimation {

double analytic_detection_probability(const StateEstimator& estimator,
                                      const BadDataDetector& bdd,
                                      const linalg::Vector& attack) {
  assert(attack.size() == estimator.num_measurements());
  const double ra = estimator.attack_residual_norm(attack);
  const double lambda = ra * ra;
  const double tau = bdd.threshold();
  return stats::noncentral_chi_square_sf(
      tau * tau, static_cast<double>(bdd.dof()), lambda);
}

double monte_carlo_detection_probability(const StateEstimator& estimator,
                                         const BadDataDetector& bdd,
                                         const linalg::Vector& z_base,
                                         const linalg::Vector& attack,
                                         int trials, stats::Rng& rng) {
  assert(attack.size() == estimator.num_measurements());
  assert(z_base.size() == estimator.num_measurements());
  assert(trials > 0);

  const std::size_t m = estimator.num_measurements();
  int alarms = 0;
  linalg::Vector z(m);
  for (int t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < m; ++i) {
      z[i] = z_base[i] + attack[i] +
             rng.gaussian(0.0, estimator.sigmas()[i]);
    }
    if (bdd.alarm(estimator.normalized_residual_norm(z))) ++alarms;
  }
  return static_cast<double>(alarms) / static_cast<double>(trials);
}

}  // namespace mtdgrid::estimation
