#include "estimation/detection.hpp"

#include <atomic>
#include <cassert>

#include "core/parallel.hpp"
#include "obs/scope.hpp"
#include "stats/distributions.hpp"

namespace mtdgrid::estimation {

double analytic_detection_probability(const StateEstimator& estimator,
                                      const BadDataDetector& bdd,
                                      const linalg::Vector& attack) {
  assert(attack.size() == estimator.num_measurements());
  const double ra = estimator.attack_residual_norm(attack);
  const double lambda = ra * ra;
  const double tau = bdd.threshold();
  return stats::noncentral_chi_square_sf(
      tau * tau, static_cast<double>(bdd.dof()), lambda);
}

double monte_carlo_detection_probability(const StateEstimator& estimator,
                                         const BadDataDetector& bdd,
                                         const linalg::Vector& z_base,
                                         const linalg::Vector& attack,
                                         int trials, stats::Rng& rng) {
  return monte_carlo_detection_probability_seeded(estimator, bdd, z_base,
                                                  attack, trials, rng.split());
}

double monte_carlo_detection_probability_seeded(
    const StateEstimator& estimator, const BadDataDetector& bdd,
    const linalg::Vector& z_base, const linalg::Vector& attack, int trials,
    std::uint64_t root) {
  assert(attack.size() == estimator.num_measurements());
  assert(z_base.size() == estimator.num_measurements());
  assert(trials > 0);
  obs::add(obs::Work::kMcTrials, static_cast<std::uint64_t>(trials));
  obs::Span span("estimation.mc_detect", "estimation");

  const std::size_t m = estimator.num_measurements();
  // Trials partition freely across workers: trial t's noise comes from its
  // own stream (root, t), and the alarm tally is an integer sum, which is
  // order-independent — the count is the same for any schedule.
  std::atomic<int> alarms{0};
  core::parallel_for_with_state(
      static_cast<std::size_t>(trials), [&] { return linalg::Vector(m); },
      [&](linalg::Vector& z, std::size_t t) {
        stats::Rng noise = stats::make_stream(root, t);
        for (std::size_t i = 0; i < m; ++i) {
          z[i] = z_base[i] + attack[i] +
                 noise.gaussian(0.0, estimator.sigmas()[i]);
        }
        if (bdd.alarm(estimator.normalized_residual_norm(z)))
          alarms.fetch_add(1, std::memory_order_relaxed);
      });
  return static_cast<double>(alarms.load()) / static_cast<double>(trials);
}

}  // namespace mtdgrid::estimation
