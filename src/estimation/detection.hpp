#pragma once

#include "estimation/bdd.hpp"
#include "estimation/state_estimator.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::estimation {

/// Exact detection probability of an FDI attack vector under the given
/// estimator/BDD pair. The normalized residual-norm square under attack
/// follows a noncentral chi-square law with M - n degrees of freedom and
/// noncentrality lambda = ||W^{1/2}(I - K) a||^2 (paper Appendix B), so
///
///   P_D(a) = P(chi2'_{M-n}(lambda) >= tau^2).
double analytic_detection_probability(const StateEstimator& estimator,
                                      const BadDataDetector& bdd,
                                      const linalg::Vector& attack);

/// Monte-Carlo detection probability: draws `trials` Gaussian measurement
/// noise realizations, forms z = z_base + a + n, and counts BDD alarms.
/// `z_base` is the attack-free noiseless measurement (any vector in the
/// column space of H works; the residual is invariant to it).
///
/// Trial t draws its noise from the counter-based stream
/// `stats::make_stream(root, t)` with `root = rng.split()`, and the trial
/// batch is spread across the global thread pool; the alarm fraction is an
/// integer count, so the result is bit-identical for every thread count
/// and `rng` advances by exactly one raw draw.
double monte_carlo_detection_probability(const StateEstimator& estimator,
                                         const BadDataDetector& bdd,
                                         const linalg::Vector& z_base,
                                         const linalg::Vector& attack,
                                         int trials, stats::Rng& rng);

/// Seed-explicit core of `monte_carlo_detection_probability` (trial t uses
/// stream `(root, t)`); exposed so batched evaluators can pair noise draws
/// across candidates by passing the same `root`.
double monte_carlo_detection_probability_seeded(
    const StateEstimator& estimator, const BadDataDetector& bdd,
    const linalg::Vector& z_base, const linalg::Vector& attack, int trials,
    std::uint64_t root);

}  // namespace mtdgrid::estimation
