#pragma once

#include "estimation/bdd.hpp"
#include "estimation/state_estimator.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::estimation {

/// Exact detection probability of an FDI attack vector under the given
/// estimator/BDD pair. The normalized residual-norm square under attack
/// follows a noncentral chi-square law with M - n degrees of freedom and
/// noncentrality lambda = ||W^{1/2}(I - K) a||^2 (paper Appendix B), so
///
///   P_D(a) = P(chi2'_{M-n}(lambda) >= tau^2).
double analytic_detection_probability(const StateEstimator& estimator,
                                      const BadDataDetector& bdd,
                                      const linalg::Vector& attack);

/// Monte-Carlo detection probability: draws `trials` Gaussian measurement
/// noise realizations, forms z = z_base + a + n, and counts BDD alarms.
/// `z_base` is the attack-free noiseless measurement (any vector in the
/// column space of H works; the residual is invariant to it).
double monte_carlo_detection_probability(const StateEstimator& estimator,
                                         const BadDataDetector& bdd,
                                         const linalg::Vector& z_base,
                                         const linalg::Vector& attack,
                                         int trials, stats::Rng& rng);

}  // namespace mtdgrid::estimation
