#include "estimation/state_estimator.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/least_squares.hpp"

namespace mtdgrid::estimation {

StateEstimator::StateEstimator(linalg::Matrix h, double sigma)
    : h_(std::move(h)), sigmas_(h_.rows(), sigma) {
  if (sigma <= 0.0)
    throw std::invalid_argument("state estimator: sigma must be positive");
  initialize();
}

StateEstimator::StateEstimator(linalg::Matrix h, linalg::Vector sigmas)
    : h_(std::move(h)), sigmas_(std::move(sigmas)) {
  if (sigmas_.size() != h_.rows())
    throw std::invalid_argument("state estimator: sigma vector length");
  for (double s : sigmas_)
    if (s <= 0.0)
      throw std::invalid_argument("state estimator: sigma must be positive");
  initialize();
}

void StateEstimator::initialize() {
  if (h_.rows() <= h_.cols())
    throw std::invalid_argument(
        "state estimator: needs more measurements than states");
  weights_ = linalg::Vector(h_.rows());
  for (std::size_t i = 0; i < h_.rows(); ++i)
    weights_[i] = 1.0 / (sigmas_[i] * sigmas_[i]);
  const linalg::Matrix k = linalg::weighted_hat_matrix(h_, weights_);
  residual_op_ = linalg::Matrix::identity(h_.rows()) - k;
}

linalg::Vector StateEstimator::estimate(const linalg::Vector& z) const {
  assert(z.size() == h_.rows());
  return linalg::solve_weighted_least_squares(h_, weights_, z);
}

linalg::Vector StateEstimator::residual(const linalg::Vector& z) const {
  assert(z.size() == h_.rows());
  return residual_op_ * z;
}

double StateEstimator::normalized_residual_norm(
    const linalg::Vector& z) const {
  const linalg::Vector r = residual(z);
  double acc = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const double scaled = r[i] / sigmas_[i];
    acc += scaled * scaled;
  }
  return std::sqrt(acc);
}

double StateEstimator::attack_residual_norm(
    const linalg::Vector& attack) const {
  return normalized_residual_norm(attack);
}

}  // namespace mtdgrid::estimation
