#include "estimation/state_estimator.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/least_squares.hpp"

namespace mtdgrid::estimation {

StateEstimator::StateEstimator(linalg::Matrix h, double sigma)
    : h_(std::move(h)), sigmas_(h_.rows(), sigma) {
  if (sigma <= 0.0)
    throw std::invalid_argument("state estimator: sigma must be positive");
  initialize();
}

StateEstimator::StateEstimator(linalg::Matrix h, linalg::Vector sigmas)
    : h_(std::move(h)), sigmas_(std::move(sigmas)) {
  if (sigmas_.size() != h_.rows())
    throw std::invalid_argument("state estimator: sigma vector length");
  validate_sigmas();
  initialize();
}

StateEstimator::StateEstimator(linalg::SparseMatrix h, double sigma,
                               const linalg::SolverOptions& options)
    : storage_(linalg::StoragePolicy::kSparse),
      sparse_h_(std::make_unique<linalg::SparseMatrix>(std::move(h))),
      sigmas_(sparse_h_->rows(), sigma) {
  if (sigma <= 0.0)
    throw std::invalid_argument("state estimator: sigma must be positive");
  initialize_sparse(options);
}

StateEstimator::StateEstimator(linalg::SparseMatrix h, linalg::Vector sigmas,
                               const linalg::SolverOptions& options)
    : storage_(linalg::StoragePolicy::kSparse),
      sparse_h_(std::make_unique<linalg::SparseMatrix>(std::move(h))),
      sigmas_(std::move(sigmas)) {
  if (sigmas_.size() != sparse_h_->rows())
    throw std::invalid_argument("state estimator: sigma vector length");
  validate_sigmas();
  initialize_sparse(options);
}

StateEstimator::StateEstimator(const StateEstimator& other)
    : storage_(other.storage_),
      h_(other.h_),
      solver_options_(other.solver_options_),
      num_measurements_(other.num_measurements_),
      state_dimension_(other.state_dimension_),
      sigmas_(other.sigmas_),
      weights_(other.weights_),
      residual_op_(other.residual_op_) {
  if (other.sparse_h_) {
    sparse_h_ = std::make_unique<linalg::SparseMatrix>(*other.sparse_h_);
    solver_.emplace(linalg::LinearOperator(*sparse_h_), weights_,
                    solver_options_);
  }
}

StateEstimator& StateEstimator::operator=(const StateEstimator& other) {
  if (this != &other) *this = StateEstimator(other);
  return *this;
}

void StateEstimator::validate_sigmas() const {
  for (double s : sigmas_)
    if (s <= 0.0)
      throw std::invalid_argument("state estimator: sigma must be positive");
}

void StateEstimator::initialize() {
  if (h_.rows() <= h_.cols())
    throw std::invalid_argument(
        "state estimator: needs more measurements than states");
  num_measurements_ = h_.rows();
  state_dimension_ = h_.cols();
  weights_ = linalg::Vector(h_.rows());
  for (std::size_t i = 0; i < h_.rows(); ++i)
    weights_[i] = 1.0 / (sigmas_[i] * sigmas_[i]);
  const linalg::Matrix k = linalg::weighted_hat_matrix(h_, weights_);
  residual_op_ = linalg::Matrix::identity(h_.rows()) - k;
}

void StateEstimator::initialize_sparse(const linalg::SolverOptions& options) {
  if (sparse_h_->rows() <= sparse_h_->cols())
    throw std::invalid_argument(
        "state estimator: needs more measurements than states");
  num_measurements_ = sparse_h_->rows();
  state_dimension_ = sparse_h_->cols();
  solver_options_ = options;
  weights_ = linalg::Vector(sparse_h_->rows());
  for (std::size_t i = 0; i < sparse_h_->rows(); ++i)
    weights_[i] = 1.0 / (sigmas_[i] * sigmas_[i]);
  solver_.emplace(linalg::LinearOperator(*sparse_h_), weights_,
                  solver_options_);
  if (solver_->failed())
    throw std::runtime_error(
        "state estimator: measurement matrix is rank deficient");
}

linalg::Vector StateEstimator::estimate(const linalg::Vector& z) const {
  assert(z.size() == num_measurements_);
  if (storage_ == linalg::StoragePolicy::kDense)
    return linalg::solve_weighted_least_squares(h_, weights_, z);
  return solver_->solve_least_squares(z);
}

linalg::Vector StateEstimator::residual(const linalg::Vector& z) const {
  assert(z.size() == num_measurements_);
  if (storage_ == linalg::StoragePolicy::kDense) return residual_op_ * z;
  // Sparse policy: never materialize the M x M residual operator.
  return z - (*sparse_h_) * estimate(z);
}

double StateEstimator::normalized_residual_norm(
    const linalg::Vector& z) const {
  const linalg::Vector r = residual(z);
  double acc = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const double scaled = r[i] / sigmas_[i];
    acc += scaled * scaled;
  }
  return std::sqrt(acc);
}

double StateEstimator::attack_residual_norm(
    const linalg::Vector& attack) const {
  return normalized_residual_norm(attack);
}

}  // namespace mtdgrid::estimation
