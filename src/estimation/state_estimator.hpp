#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::estimation {

/// Weighted-least-squares DC state estimator (paper Section III):
///
///   theta_hat = (H^T W H)^{-1} H^T W z,
///
/// with W = diag(1/sigma_i^2). The residual operator (I - K) with
/// K = H (H^T W H)^{-1} H^T W is precomputed at construction so that
/// Monte-Carlo detection studies can evaluate thousands of residuals
/// cheaply against the same measurement matrix.
class StateEstimator {
 public:
  /// Builds the estimator for measurement matrix `h` (M x n, full column
  /// rank) with homogeneous sensor noise standard deviation `sigma`.
  StateEstimator(linalg::Matrix h, double sigma);

  /// Builds the estimator with per-sensor noise standard deviations.
  StateEstimator(linalg::Matrix h, linalg::Vector sigmas);

  const linalg::Matrix& h() const { return h_; }
  std::size_t num_measurements() const { return h_.rows(); }
  std::size_t state_dimension() const { return h_.cols(); }

  /// Degrees of freedom of the residual: M - n.
  std::size_t residual_dof() const { return h_.rows() - h_.cols(); }

  /// Per-sensor noise standard deviations.
  const linalg::Vector& sigmas() const { return sigmas_; }

  /// WLS state estimate for measurement vector `z`.
  linalg::Vector estimate(const linalg::Vector& z) const;

  /// Raw residual vector r = z - H theta_hat = (I - K) z.
  linalg::Vector residual(const linalg::Vector& z) const;

  /// Noise-normalized residual norm || W^{1/2} (z - H theta_hat) ||.
  /// With homogeneous sigma this equals ||z - H theta_hat|| / sigma; its
  /// square is chi-square distributed with `residual_dof()` degrees of
  /// freedom under attack-free Gaussian noise.
  double normalized_residual_norm(const linalg::Vector& z) const;

  /// Norm of the *attack component* of the normalized residual,
  /// || W^{1/2} (I - K) a ||. This is the paper's ||r'_a|| (Appendix B)
  /// and the square root of the noncentral-chi-square noncentrality.
  double attack_residual_norm(const linalg::Vector& attack) const;

 private:
  void initialize();

  linalg::Matrix h_;
  linalg::Vector sigmas_;
  linalg::Vector weights_;          // 1 / sigma_i^2
  linalg::Matrix residual_op_;      // I - K
};

}  // namespace mtdgrid::estimation
