#pragma once

#include <memory>
#include <optional>

#include "linalg/backend.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::estimation {

/// Weighted-least-squares DC state estimator (paper Section III):
///
///   theta_hat = (H^T W H)^{-1} H^T W z,
///
/// with W = diag(1/sigma_i^2).
///
/// Storage policy (linalg/backend.hpp): the estimator accepts H either
/// dense or sparse and routes all solves through the policy backend.
///
///  * Dense (the default and the bit-exact reference): the residual
///    operator (I - K) with K = H (H^T W H)^{-1} H^T W is precomputed at
///    construction so Monte-Carlo detection studies can evaluate
///    thousands of residuals cheaply; estimates re-solve the historical
///    dense normal equations. Behavior is bit-identical to the
///    pre-backend estimator.
///  * Sparse: the Gram matrix is assembled in CSR and factored once
///    (minimum-degree sparse Cholesky, or preconditioned CG via
///    `SolverOptions`); the dense M x M residual operator is never
///    materialized — residuals are computed as z - H theta_hat. Results
///    match the dense path to ~1e-12 relative (validated to 1e-10 by the
///    backend-conformance suite).
class StateEstimator {
 public:
  /// Builds the estimator for measurement matrix `h` (M x n, full column
  /// rank) with homogeneous sensor noise standard deviation `sigma`.
  StateEstimator(linalg::Matrix h, double sigma);

  /// Builds the estimator with per-sensor noise standard deviations.
  StateEstimator(linalg::Matrix h, linalg::Vector sigmas);

  /// Sparse-policy estimator with homogeneous noise `sigma`; `options`
  /// picks the backend method (sparse Cholesky by default, CG as the
  /// mega-grid escape hatch).
  StateEstimator(linalg::SparseMatrix h, double sigma,
                 const linalg::SolverOptions& options = {});

  /// Sparse-policy estimator with per-sensor noise standard deviations.
  StateEstimator(linalg::SparseMatrix h, linalg::Vector sigmas,
                 const linalg::SolverOptions& options = {});

  // Copying re-runs the sparse factorization against the copy's own H
  // (the backend solver views the estimator-owned matrix); moves keep
  // the existing factor.
  StateEstimator(const StateEstimator& other);
  StateEstimator& operator=(const StateEstimator& other);
  StateEstimator(StateEstimator&&) = default;
  StateEstimator& operator=(StateEstimator&&) = default;

  /// The storage policy H was supplied under.
  linalg::StoragePolicy storage() const { return storage_; }

  /// The dense measurement matrix; requires the dense storage policy.
  const linalg::Matrix& h() const { return h_; }

  /// The sparse measurement matrix; requires the sparse storage policy.
  const linalg::SparseMatrix& sparse_h() const { return *sparse_h_; }

  std::size_t num_measurements() const { return num_measurements_; }
  std::size_t state_dimension() const { return state_dimension_; }

  /// Degrees of freedom of the residual: M - n.
  std::size_t residual_dof() const {
    return num_measurements_ - state_dimension_;
  }

  /// Per-sensor noise standard deviations.
  const linalg::Vector& sigmas() const { return sigmas_; }

  /// WLS state estimate for measurement vector `z`.
  linalg::Vector estimate(const linalg::Vector& z) const;

  /// Raw residual vector r = z - H theta_hat = (I - K) z.
  linalg::Vector residual(const linalg::Vector& z) const;

  /// Noise-normalized residual norm || W^{1/2} (z - H theta_hat) ||.
  /// With homogeneous sigma this equals ||z - H theta_hat|| / sigma; its
  /// square is chi-square distributed with `residual_dof()` degrees of
  /// freedom under attack-free Gaussian noise.
  double normalized_residual_norm(const linalg::Vector& z) const;

  /// Norm of the *attack component* of the normalized residual,
  /// || W^{1/2} (I - K) a ||. This is the paper's ||r'_a|| (Appendix B)
  /// and the square root of the noncentral-chi-square noncentrality.
  double attack_residual_norm(const linalg::Vector& attack) const;

 private:
  void initialize();
  void initialize_sparse(const linalg::SolverOptions& options);
  void validate_sigmas() const;

  linalg::StoragePolicy storage_ = linalg::StoragePolicy::kDense;
  linalg::Matrix h_;
  // unique_ptr: the backend solver views this matrix, so its address
  // must survive a move of the estimator.
  std::unique_ptr<linalg::SparseMatrix> sparse_h_;
  linalg::SolverOptions solver_options_;
  std::size_t num_measurements_ = 0;
  std::size_t state_dimension_ = 0;
  linalg::Vector sigmas_;
  linalg::Vector weights_;          // 1 / sigma_i^2
  linalg::Matrix residual_op_;      // I - K (dense policy only)
  // Sparse policy: the factored normal-equations backend.
  std::optional<linalg::NormalEquationsSolver> solver_;
};

}  // namespace mtdgrid::estimation
