#include "grid/cases.hpp"

#include <algorithm>
#include <iterator>

#include "io/case_registry.hpp"

namespace mtdgrid::grid {

namespace {

Branch make_branch(std::size_t from_1based, std::size_t to_1based, double x,
                   double limit_mw, bool dfacts = false,
                   double eta_max = 0.5) {
  Branch br;
  br.from = from_1based - 1;
  br.to = to_1based - 1;
  br.reactance = x;
  br.flow_limit_mw = limit_mw;
  br.has_dfacts = dfacts;
  br.dfacts_min_factor = dfacts ? 1.0 - eta_max : 1.0;
  br.dfacts_max_factor = dfacts ? 1.0 + eta_max : 1.0;
  return br;
}

Generator make_generator(std::size_t bus_1based, double max_mw, double cost) {
  Generator g;
  g.bus = bus_1based - 1;
  g.min_mw = 0.0;
  g.max_mw = max_mw;
  g.cost_per_mwh = cost;
  return g;
}

}  // namespace

PowerSystem make_case4() {
  std::vector<Bus> buses = {{50.0}, {170.0}, {200.0}, {80.0}};
  // Grainger & Stevenson reactances (MATPOWER case4gs). Flow limits are
  // chosen so the Table II operating point (flows 126.6 / 173.4 / -43.4 /
  // -26.6 MW) is feasible but close enough to the limits that each of the
  // four Table I/III single-line perturbations forces a re-dispatch.
  std::vector<Branch> branches = {
      make_branch(1, 2, 0.05040, 130.0, /*dfacts=*/true),
      make_branch(1, 3, 0.03720, 175.0, /*dfacts=*/true),
      make_branch(2, 4, 0.03720, 60.0, /*dfacts=*/true),
      make_branch(3, 4, 0.06360, 60.0, /*dfacts=*/true),
  };
  // Linear costs 20/30 $/MWh with Pmax1 = 350 reproduce Table II exactly:
  // dispatch (350, 150) MW at cost $1.15e4.
  std::vector<Generator> generators = {
      make_generator(1, 350.0, 20.0),
      make_generator(4, 318.0, 30.0),
  };
  return PowerSystem("case4", std::move(buses), std::move(branches),
                     std::move(generators));
}

PowerSystem make_case_ieee14() {
  std::vector<Bus> buses = {
      {0.0},  {21.7}, {94.2}, {47.8}, {7.6},  {11.2}, {0.0},
      {0.0},  {29.5}, {9.0},  {3.5},  {6.1},  {13.5}, {14.9},
  };

  // MATPOWER case14 branch reactances; flow limit 160 MW on branch 1 and
  // 60 MW on all other branches (paper Section VII-A). D-FACTS devices on
  // branches {1, 5, 9, 11, 17, 19} (1-based) with eta_max = 0.5.
  struct Row {
    std::size_t from, to;
    double x;
  };
  static constexpr Row kRows[] = {
      {1, 2, 0.05917},  {1, 5, 0.22304},  {2, 3, 0.19797},  {2, 4, 0.17632},
      {2, 5, 0.17388},  {3, 4, 0.17103},  {4, 5, 0.04211},  {4, 7, 0.20912},
      {4, 9, 0.55618},  {5, 6, 0.25202},  {6, 11, 0.19890}, {6, 12, 0.25581},
      {6, 13, 0.13027}, {7, 8, 0.17615},  {7, 9, 0.11001},  {9, 10, 0.08450},
      {9, 14, 0.27038}, {10, 11, 0.19207}, {12, 13, 0.19988},
      {13, 14, 0.34802},
  };
  const bool dfacts_flags[20] = {true,  false, false, false, true,  false,
                                 false, false, true,  false, true,  false,
                                 false, false, false, false, true,  false,
                                 true,  false};

  std::vector<Branch> branches;
  branches.reserve(20);
  for (std::size_t l = 0; l < 20; ++l) {
    const double limit = (l == 0) ? 160.0 : 60.0;
    branches.push_back(
        make_branch(kRows[l].from, kRows[l].to, kRows[l].x, limit,
                    dfacts_flags[l]));
  }

  // Table IV generator parameters.
  std::vector<Generator> generators = {
      make_generator(1, 300.0, 20.0), make_generator(2, 50.0, 30.0),
      make_generator(3, 30.0, 40.0),  make_generator(6, 50.0, 50.0),
      make_generator(8, 20.0, 35.0),
  };
  return PowerSystem("ieee14", std::move(buses), std::move(branches),
                     std::move(generators));
}

PowerSystem make_case_ieee30() {
  std::vector<Bus> buses(30);
  // Classic IEEE 30-bus loads (MW).
  const struct {
    std::size_t bus_1based;
    double load;
  } kLoads[] = {
      {2, 21.7}, {3, 2.4},  {4, 7.6},  {5, 94.2}, {7, 22.8}, {8, 30.0},
      {10, 5.8}, {12, 11.2}, {14, 6.2}, {15, 8.2}, {16, 3.5}, {17, 9.0},
      {18, 3.2}, {19, 9.5},  {20, 2.2}, {21, 17.5}, {23, 3.2}, {24, 8.7},
      {26, 3.5}, {29, 2.4},  {30, 10.6},
  };
  for (const auto& entry : kLoads) buses[entry.bus_1based - 1].load_mw =
      entry.load;

  struct Row {
    std::size_t from, to;
    double x;
    double limit;
  };
  static constexpr Row kRows[] = {
      {1, 2, 0.0575, 130},  {1, 3, 0.1652, 130},  {2, 4, 0.1737, 65},
      {3, 4, 0.0379, 130},  {2, 5, 0.1983, 130},  {2, 6, 0.1763, 65},
      {4, 6, 0.0414, 90},   {5, 7, 0.1160, 70},   {6, 7, 0.0820, 130},
      {6, 8, 0.0420, 32},   {6, 9, 0.2080, 65},   {6, 10, 0.5560, 32},
      {9, 11, 0.2080, 65},  {9, 10, 0.1100, 65},  {4, 12, 0.2560, 65},
      {12, 13, 0.1400, 65}, {12, 14, 0.2559, 32}, {12, 15, 0.1304, 32},
      {12, 16, 0.1987, 32}, {14, 15, 0.1997, 16}, {16, 17, 0.1923, 16},
      {15, 18, 0.2185, 16}, {18, 19, 0.1292, 16}, {19, 20, 0.0680, 32},
      {10, 20, 0.2090, 32}, {10, 17, 0.0845, 32}, {10, 21, 0.0749, 32},
      {10, 22, 0.1499, 32}, {21, 22, 0.0236, 32}, {15, 23, 0.2020, 16},
      {22, 24, 0.1790, 16}, {23, 24, 0.2700, 16}, {24, 25, 0.3292, 16},
      {25, 26, 0.3800, 16}, {25, 27, 0.2087, 16}, {28, 27, 0.3960, 65},
      {27, 29, 0.4153, 16}, {27, 30, 0.6027, 16}, {29, 30, 0.4533, 16},
      {8, 28, 0.2000, 32},  {6, 28, 0.0599, 32},
  };
  // D-FACTS on ten branches spread over the network (0-based indices).
  const std::size_t kDfacts[] = {0, 3, 6, 10, 14, 17, 24, 30, 35, 40};

  std::vector<Branch> branches;
  branches.reserve(41);
  for (std::size_t l = 0; l < 41; ++l) {
    bool dfacts = false;
    for (std::size_t idx : kDfacts) {
      if (idx == l) {
        dfacts = true;
        break;
      }
    }
    branches.push_back(make_branch(kRows[l].from, kRows[l].to, kRows[l].x,
                                   kRows[l].limit, dfacts));
  }

  // Classic generator placement with linearized costs ($/MWh).
  std::vector<Generator> generators = {
      make_generator(1, 200.0, 20.0), make_generator(2, 80.0, 17.5),
      make_generator(5, 50.0, 10.0),  make_generator(8, 35.0, 32.5),
      make_generator(11, 30.0, 30.0), make_generator(13, 40.0, 30.0),
  };
  return PowerSystem("ieee30", std::move(buses), std::move(branches),
                     std::move(generators));
}

PowerSystem make_case_wscc9() {
  std::vector<Bus> buses(9);
  buses[4].load_mw = 90.0;
  buses[6].load_mw = 100.0;
  buses[8].load_mw = 125.0;

  std::vector<Branch> branches = {
      make_branch(1, 4, 0.0576, 250, /*dfacts=*/true),
      make_branch(4, 5, 0.0920, 250),
      make_branch(5, 6, 0.1700, 150),
      make_branch(3, 6, 0.0586, 300, /*dfacts=*/true),
      make_branch(6, 7, 0.1008, 150),
      make_branch(7, 8, 0.0720, 250),
      make_branch(8, 2, 0.0625, 250),
      make_branch(8, 9, 0.1610, 250, /*dfacts=*/true),
      make_branch(9, 4, 0.0850, 250),
  };
  std::vector<Generator> generators = {
      make_generator(1, 250.0, 15.0),
      make_generator(2, 300.0, 12.0),
      make_generator(3, 270.0, 20.0),
  };
  return PowerSystem("wscc9", std::move(buses), std::move(branches),
                     std::move(generators));
}

PowerSystem make_case14() { return io::load_case("case14"); }

PowerSystem make_case57() { return io::load_case("case57"); }

PowerSystem make_case118() { return io::load_case("case118"); }

PowerSystem make_case300() { return io::load_case("case300"); }

PowerSystem make_case57_legacy() {
  std::vector<Bus> buses(57);
  // MATPOWER case57 loads (MW); total 1250.8.
  const struct {
    std::size_t bus_1based;
    double load;
  } kLoads[] = {
      {1, 55.0},  {2, 3.0},   {3, 41.0},  {5, 13.0},  {6, 75.0},
      {8, 150.0}, {9, 121.0}, {10, 5.0},  {12, 377.0}, {13, 18.0},
      {14, 10.5}, {15, 22.0}, {16, 43.0}, {17, 42.0}, {18, 27.2},
      {19, 3.3},  {20, 2.3},  {23, 6.3},  {25, 6.3},  {27, 9.3},
      {28, 4.6},  {29, 17.0}, {30, 3.6},  {31, 5.8},  {32, 1.6},
      {33, 3.8},  {35, 6.0},  {38, 14.0}, {41, 6.3},  {42, 7.1},
      {43, 2.0},  {44, 12.0}, {47, 29.7}, {49, 18.0}, {50, 21.0},
      {51, 18.0}, {52, 4.9},  {53, 20.0}, {54, 4.1},  {55, 6.8},
      {56, 7.6},  {57, 6.7},
  };
  for (const auto& entry : kLoads)
    buses[entry.bus_1based - 1].load_mw = entry.load;

  // MATPOWER case57 branch list (from, to, reactance), including the two
  // parallel circuits on 4-18 and 24-25. Flow limits group the branches
  // into the heavy 1..17 transmission backbone, the medium corridors, and
  // the light radial spurs; all were sized against the base-case DC-OPF
  // flows (max |F| ~= 318 MW on branch 8-9).
  struct Row {
    std::size_t from, to;
    double x;
    double limit;
  };
  static constexpr Row kRows[] = {
      {1, 2, 0.0280, 250},   {2, 3, 0.0850, 200},   {3, 4, 0.0366, 150},
      {4, 5, 0.1320, 100},   {4, 6, 0.1480, 100},   {6, 7, 0.1020, 150},
      {6, 8, 0.1730, 150},   {8, 9, 0.0505, 400},   {9, 10, 0.1679, 100},
      {9, 11, 0.0848, 100},  {9, 12, 0.2950, 150},  {9, 13, 0.1580, 100},
      {13, 14, 0.0434, 100}, {13, 15, 0.0869, 150}, {1, 15, 0.0910, 250},
      {1, 16, 0.2060, 150},  {1, 17, 0.1080, 200},  {3, 15, 0.0530, 150},
      {4, 18, 0.5550, 60},   {4, 18, 0.4300, 60},   {5, 6, 0.0641, 100},
      {7, 8, 0.0712, 200},   {10, 12, 0.1262, 100}, {11, 13, 0.0732, 100},
      {12, 13, 0.0580, 200}, {12, 16, 0.0813, 100}, {12, 17, 0.1790, 150},
      {14, 15, 0.0547, 130}, {18, 19, 0.6850, 40},  {19, 20, 0.4340, 40},
      {21, 20, 0.7767, 40},  {21, 22, 0.1170, 60},  {22, 23, 0.0152, 60},
      {23, 24, 0.2560, 60},  {24, 25, 1.1820, 40},  {24, 25, 1.2300, 40},
      {24, 26, 0.0473, 60},  {26, 27, 0.2540, 60},  {27, 28, 0.0954, 60},
      {28, 29, 0.0587, 60},  {7, 29, 0.0648, 100},  {25, 30, 0.2020, 40},
      {30, 31, 0.4970, 40},  {31, 32, 0.7550, 40},  {32, 33, 0.0360, 40},
      {34, 32, 0.9530, 40},  {34, 35, 0.0780, 40},  {35, 36, 0.0537, 40},
      {36, 37, 0.0366, 40},  {37, 38, 0.1009, 60},  {37, 39, 0.0379, 40},
      {36, 40, 0.0466, 40},  {22, 38, 0.0295, 60},  {11, 41, 0.7490, 40},
      {41, 42, 0.3520, 40},  {41, 43, 0.4120, 40},  {38, 44, 0.0585, 60},
      {15, 45, 0.1042, 100}, {14, 46, 0.0735, 100}, {46, 47, 0.0680, 100},
      {47, 48, 0.0233, 100}, {48, 49, 0.1290, 100}, {49, 50, 0.1280, 60},
      {50, 51, 0.2200, 60},  {10, 51, 0.0712, 100}, {13, 49, 0.1910, 100},
      {29, 52, 0.1870, 60},  {52, 53, 0.0984, 60},  {53, 54, 0.2320, 60},
      {54, 55, 0.2265, 60},  {11, 43, 0.1530, 60},  {44, 45, 0.1242, 100},
      {40, 56, 1.1950, 40},  {56, 41, 0.5490, 40},  {56, 42, 0.3540, 40},
      {39, 57, 1.3550, 40},  {57, 56, 0.2600, 40},  {38, 49, 0.1770, 60},
      {38, 48, 0.0482, 60},  {9, 55, 0.1205, 100},
  };
  // D-FACTS on ten branches spread over the backbone, the 22-38 corridor,
  // and the 46-49 ring (0-based indices into kRows).
  const std::size_t kDfacts[] = {0, 7, 14, 24, 32, 40, 48, 52, 60, 64};

  std::vector<Branch> branches;
  branches.reserve(std::size(kRows));
  for (std::size_t l = 0; l < std::size(kRows); ++l) {
    const bool dfacts = std::find(std::begin(kDfacts), std::end(kDfacts),
                                  l) != std::end(kDfacts);
    branches.push_back(make_branch(kRows[l].from, kRows[l].to, kRows[l].x,
                                   kRows[l].limit, dfacts));
  }

  // MATPOWER case57 capacities with linearized merit-order costs ($/MWh).
  std::vector<Generator> generators = {
      make_generator(1, 575.88, 20.0), make_generator(2, 100.0, 40.0),
      make_generator(3, 140.0, 30.0),  make_generator(6, 100.0, 45.0),
      make_generator(8, 550.0, 22.0),  make_generator(9, 100.0, 42.0),
      make_generator(12, 410.0, 28.0),
  };
  return PowerSystem("case57", std::move(buses), std::move(branches),
                     std::move(generators));
}

}  // namespace mtdgrid::grid
