#pragma once

#include "grid/power_system.hpp"

namespace mtdgrid::grid {

/// Benchmark case library. Each factory returns a fully validated
/// `PowerSystem` with the paper's simulation settings applied.

/// The 4-bus example of the paper's Section IV-B (Fig. 3), which is the
/// classic Grainger & Stevenson 4-bus network shipped with MATPOWER as
/// `case4gs`: loads {50, 170, 200, 80} MW, generators at buses 1 and 4
/// with linear costs chosen so that the pre-perturbation OPF reproduces
/// Table II (dispatch 350/150 MW, cost $1.15e4). All four lines carry
/// D-FACTS devices so the four single-line perturbations of Table I can
/// be applied.
PowerSystem make_case4();

/// IEEE 14-bus system with the paper's Section VII-A settings: generators
/// at buses 1, 2, 3, 6, 8 with (Pmax, c) from Table IV; D-FACTS on branches
/// {1, 5, 9, 11, 17, 19} (1-based, as in the paper) with eta_max = 0.5;
/// flow limit 160 MW on branch 1 and 60 MW elsewhere; MATPOWER `case14`
/// loads and reactances.
PowerSystem make_case_ieee14();

/// IEEE 30-bus system (MATPOWER `case30` topology and loads, linearized
/// generator costs). D-FACTS on ten branches spread across the network.
PowerSystem make_case_ieee30();

/// WSCC 9-bus system (MATPOWER `case9`), used as an additional scale point
/// for tests and examples. D-FACTS on three branches.
PowerSystem make_case_wscc9();

/// Canonical short name for the IEEE 14-bus scenario. Loads
/// `data/case14.m` through the MATPOWER loader (`io::load_case`); the
/// loaded system equals the hand-coded `make_case_ieee14()` tables to
/// machine precision (cross-checked in tests/io/case_registry_test.cpp).
PowerSystem make_case14();

/// IEEE 57-bus system (MATPOWER `case57` topology: 57 buses, 80 branches
/// including the 4-18 and 24-25 parallel circuits, loads totalling
/// 1250.8 MW). Generators at buses {1, 2, 3, 6, 8, 9, 12} with MATPOWER
/// capacities and linearized merit-order costs. D-FACTS devices on ten
/// branches spread across the network with eta_max = 0.5. Flow limits are
/// sized from the base-case DC-OPF so the nominal dispatch is feasible
/// with margin while large reactance perturbations can still force a
/// re-dispatch.
///
/// Loads `data/case57.m`; equals `make_case57_legacy()` to machine
/// precision (cross-checked in tests).
PowerSystem make_case57();

/// The frozen PR-1 hand-coded case57 tables, kept as the reference the
/// loader round-trip tests compare against (and as the source
/// `tools/export_legacy_cases` regenerates `data/case57.m` from).
PowerSystem make_case57_legacy();

/// IEEE 118-bus system loaded from `data/case118.m`: 118 buses, 186
/// branches (including the MATPOWER case118 parallel circuits), 19
/// dispatchable generators with linearized merit-order costs, 12 D-FACTS
/// branches. Flow limits are sized against the base-case DC-OPF so the
/// nominal dispatch is feasible with margin across the D-FACTS envelope.
PowerSystem make_case118();

/// 300-bus large-scale scenario loaded from `data/case300.m` (see that
/// file's header for provenance). The biggest bundled case; tests that
/// sweep it carry the ctest `slow` label.
PowerSystem make_case300();

}  // namespace mtdgrid::grid
