#include "grid/compose.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stats/rng.hpp"

namespace mtdgrid::grid {

namespace {

// Mirror of io::kUnlimitedFlowMw (grid cannot include io): a tie limit of
// 0 means "never binds", stored as the sentinel the MATPOWER writer maps
// back to RATE_A = 0.
constexpr double kUnlimitedTieMw = 1e6;

// Highest-degree boundary buses of the base case: `count` buses sorted by
// (degree descending, index ascending), returned ascending. High-degree
// buses are the transmission-level nodes a real interconnection tie would
// terminate at, and the deterministic tie-break keeps composition a pure
// function of the inputs.
std::vector<std::size_t> default_boundary_buses(const PowerSystem& base,
                                                std::size_t count) {
  std::vector<std::size_t> degree(base.num_buses(), 0);
  for (const Branch& br : base.branches()) {
    ++degree[br.from];
    ++degree[br.to];
  }
  std::vector<std::size_t> order(base.num_buses());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (degree[a] != degree[b]) return degree[a] > degree[b];
    return a < b;
  });
  order.resize(count);
  std::sort(order.begin(), order.end());
  return order;
}

// One uniform factor in [1 - jitter, 1 + jitter). Draws exactly one value
// regardless of the jitter amplitude, so the substream layout — and with
// it every downstream draw — does not depend on which jitters are on.
double jitter_factor(stats::Rng& rng, double jitter) {
  const double u = rng.uniform();
  return 1.0 + jitter * (2.0 * u - 1.0);
}

}  // namespace

ComposeResult compose_cases(const PowerSystem& base,
                            const ComposeOptions& options) {
  if (options.copies == 0)
    throw std::invalid_argument("compose: copies must be >= 1");
  for (double j :
       {options.load_jitter, options.gen_jitter, options.cost_jitter}) {
    if (j < 0.0 || j >= 1.0)
      throw std::invalid_argument("compose: jitter must be in [0, 1)");
  }
  if (options.ties_per_interface == 0)
    throw std::invalid_argument("compose: ties_per_interface must be >= 1");
  if (options.tie_reactance <= 0.0)
    throw std::invalid_argument("compose: tie reactance must be positive");
  if (options.tie_limit_mw < 0.0)
    throw std::invalid_argument("compose: tie limit must be >= 0");
  if (options.tie_dfacts_min <= 0.0 ||
      options.tie_dfacts_min > options.tie_dfacts_max)
    throw std::invalid_argument("compose: invalid tie D-FACTS range");

  std::vector<std::size_t> boundary = options.boundary_buses;
  if (boundary.empty()) {
    if (options.ties_per_interface > base.num_buses())
      throw std::invalid_argument(
          "compose: more ties per interface than base buses");
    boundary = default_boundary_buses(base, options.ties_per_interface);
  } else {
    for (std::size_t b : boundary)
      if (b >= base.num_buses())
        throw std::invalid_argument("compose: boundary bus out of range");
    std::sort(boundary.begin(), boundary.end());
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
  }

  const std::size_t nb = base.num_buses();
  const std::size_t nl = base.num_branches();
  const std::size_t ng = base.num_generators();
  const std::size_t copies = options.copies;

  std::vector<Bus> buses;
  std::vector<Branch> branches;
  std::vector<Generator> generators;
  buses.reserve(nb * copies);
  branches.reserve(nl * copies + 8);
  generators.reserve(ng * copies);

  for (std::size_t k = 0; k < copies; ++k) {
    // One substream per copy: bus-load factors in bus order, then
    // (capacity, cost) factor pairs in generator order. The draw order is
    // part of the composition contract — changing it changes every
    // composed case name's meaning.
    stats::Rng jitter = stats::make_stream(options.seed, k);
    const std::size_t bus_off = k * nb;
    for (std::size_t i = 0; i < nb; ++i) {
      Bus b = base.bus(i);
      b.load_mw *= jitter_factor(jitter, options.load_jitter);
      buses.push_back(b);
    }
    for (std::size_t l = 0; l < nl; ++l) {
      Branch br = base.branch(l);
      br.from += bus_off;
      br.to += bus_off;
      branches.push_back(br);
    }
    for (std::size_t g = 0; g < ng; ++g) {
      Generator gen = base.generator(g);
      gen.bus += bus_off;
      const double cap = jitter_factor(jitter, options.gen_jitter);
      const double cost = jitter_factor(jitter, options.cost_jitter);
      // Capacity jitter never pushes max below min (the base headroom is
      // what keeps the jittered copy OPF-feasible).
      gen.max_mw = std::max(gen.max_mw * cap, gen.min_mw);
      gen.cost_per_mwh *= cost;
      generators.push_back(gen);
    }
  }

  // Tie lines: a chain of copy interfaces (k, k+1), closed into a ring
  // when copies >= 3 and options.ring. Tie t of an interface joins
  // boundary bus t on the lower copy to boundary bus (t+1) mod B on the
  // higher one — the offset pairing avoids the pure parallel-circuit
  // structure that same-bus pairing would create.
  std::vector<std::size_t> tie_branches;
  std::vector<std::pair<std::size_t, std::size_t>> interfaces;
  for (std::size_t k = 0; k + 1 < copies; ++k) interfaces.push_back({k, k + 1});
  if (options.ring && copies >= 3) interfaces.push_back({copies - 1, 0});
  const double tie_limit =
      options.tie_limit_mw == 0.0 ? kUnlimitedTieMw : options.tie_limit_mw;
  for (const auto& [a, b] : interfaces) {
    for (std::size_t t = 0; t < options.ties_per_interface; ++t) {
      Branch tie;
      tie.from = a * nb + boundary[t % boundary.size()];
      tie.to = b * nb + boundary[(t + 1) % boundary.size()];
      tie.reactance = options.tie_reactance;
      tie.flow_limit_mw = tie_limit;
      if (options.tie_dfacts_min != 1.0 || options.tie_dfacts_max != 1.0) {
        tie.has_dfacts = true;
        tie.dfacts_min_factor = options.tie_dfacts_min;
        tie.dfacts_max_factor = options.tie_dfacts_max;
      }
      tie_branches.push_back(branches.size());
      branches.push_back(tie);
    }
  }

  const std::string name = options.name.empty()
                               ? base.name() + "x" + std::to_string(copies)
                               : options.name;
  ComposeResult result{PowerSystem(name, std::move(buses),
                                   std::move(branches), std::move(generators),
                                   base.base_mva()),
                       copies,
                       nb,
                       nl,
                       ng,
                       std::move(tie_branches),
                       std::move(boundary)};
  return result;
}

ZonePartition ComposeResult::zones() const {
  return partition_into_copies(system, copies);
}

ZonePartition partition_into_copies(const PowerSystem& sys,
                                    std::size_t copies) {
  if (copies == 0)
    throw std::invalid_argument("partition: copies must be >= 1");
  if (sys.num_buses() % copies != 0)
    throw std::invalid_argument(
        "partition: bus count is not divisible by the copy count");
  const std::size_t per_zone = sys.num_buses() / copies;

  ZonePartition p;
  p.num_zones = copies;
  p.bus_zone.resize(sys.num_buses());
  p.zone_buses.resize(copies);
  p.zone_branches.resize(copies);
  p.zone_generators.resize(copies);
  for (std::size_t b = 0; b < sys.num_buses(); ++b) {
    p.bus_zone[b] = b / per_zone;
    p.zone_buses[b / per_zone].push_back(b);
  }
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    const std::size_t zf = p.bus_zone[sys.branch(l).from];
    const std::size_t zt = p.bus_zone[sys.branch(l).to];
    if (zf == zt)
      p.zone_branches[zf].push_back(l);
    else
      p.tie_branches.push_back(l);
  }
  for (std::size_t g = 0; g < sys.num_generators(); ++g)
    p.zone_generators[p.bus_zone[sys.generator(g).bus]].push_back(g);

  // Every zone must be internally connected (union-find over the
  // intra-zone branches): a disconnected zone has no standalone power
  // flow, so the partition would be unusable for zone decomposition.
  std::vector<std::size_t> parent(sys.num_buses());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&](std::size_t v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  for (std::size_t z = 0; z < copies; ++z)
    for (std::size_t l : p.zone_branches[z])
      parent[find(sys.branch(l).from)] = find(sys.branch(l).to);
  for (std::size_t b = 0; b < sys.num_buses(); ++b) {
    if (find(b) != find(p.zone_buses[p.bus_zone[b]].front()))
      throw std::invalid_argument(
          "partition: zone " + std::to_string(p.bus_zone[b]) +
          " is internally disconnected");
  }
  return p;
}

ZoneSystem extract_zone(const PowerSystem& sys,
                        const ZonePartition& partition, std::size_t zone) {
  if (zone >= partition.num_zones)
    throw std::invalid_argument("extract_zone: zone out of range");

  std::vector<std::size_t> bus_map = partition.zone_buses[zone];
  std::vector<std::size_t> branch_map = partition.zone_branches[zone];
  std::vector<std::size_t> gen_map = partition.zone_generators[zone];

  std::vector<std::size_t> local(sys.num_buses(), sys.num_buses());
  for (std::size_t i = 0; i < bus_map.size(); ++i) local[bus_map[i]] = i;

  std::vector<Bus> buses;
  buses.reserve(bus_map.size());
  for (std::size_t b : bus_map) buses.push_back(sys.bus(b));
  std::vector<Branch> branches;
  branches.reserve(branch_map.size());
  for (std::size_t l : branch_map) {
    Branch br = sys.branch(l);
    br.from = local[br.from];
    br.to = local[br.to];
    branches.push_back(br);
  }
  std::vector<Generator> generators;
  generators.reserve(gen_map.size());
  for (std::size_t g : gen_map) {
    Generator gen = sys.generator(g);
    gen.bus = local[gen.bus];
    generators.push_back(gen);
  }

  return ZoneSystem{PowerSystem(sys.name() + ":z" + std::to_string(zone),
                                std::move(buses), std::move(branches),
                                std::move(generators), sys.base_mva()),
                    std::move(bus_map), std::move(branch_map),
                    std::move(gen_map)};
}

}  // namespace mtdgrid::grid
