#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "grid/power_system.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::grid {

/// Synthetic mega-grid composition (ROADMAP "Synthetic mega-grids"):
/// tiles N copies of a base case into one connected network with
/// parameterized tie lines, the DMNetwork `-nc`-copies idiom. The result
/// is a pure function of `(base, options)` — every stochastic choice
/// (per-copy load/generation jitter) draws from counter-based substreams
/// of `options.seed`, so composing the same inputs always yields the
/// same network, bit for bit, on any machine or thread count.
///
/// Renumbering contract (DESIGN.md "Mega-grid composition"):
///  * bus i of copy k      -> global bus   k * N_base + i
///  * branch l of copy k   -> global branch k * L_base + l
///  * generator g of copy k -> global gen   k * G_base + g
///  * tie lines are appended AFTER all copied branches, interface by
///    interface (copy order), so the last `tie_branches().size()`
///    branches are exactly the ties;
///  * bus 0 of copy 0 is the global slack (the PowerSystem convention).
/// D-FACTS flags and factors are inherited per copy; tie lines carry no
/// D-FACTS unless `ComposeOptions::tie_dfacts` asks for them.

/// Default jitter/tie substream root used by the registry's bundled
/// composed scenarios (case118x9, case300x17) and the `case_compose`
/// tool when `--seed` is not given. Composition is deterministic in
/// (base, copies, seed); this constant is what makes "case118x9" name a
/// unique network.
inline constexpr std::uint64_t kDefaultComposeSeed = 118300;

/// Parameters of the composition. The defaults produce a ring of copies
/// joined by 2 ties per interface at the base case's highest-degree
/// buses, with +/-5% per-copy load/capacity jitter and +/-2% cost jitter
/// (the cost jitter breaks the merit-order ties that N identical copies
/// would otherwise create).
struct ComposeOptions {
  std::size_t copies = 2;      ///< number of copies N (>= 1)
  std::uint64_t seed = kDefaultComposeSeed;  ///< jitter substream root
  /// Per-copy relative load jitter: bus loads of copy k scale by
  /// uniform factors in [1-j, 1+j) drawn from `stream_seed(seed, k)`.
  double load_jitter = 0.05;
  /// Per-copy relative generation-capacity jitter on `max_mw`.
  double gen_jitter = 0.05;
  /// Per-copy relative cost jitter on `cost_per_mwh`.
  double cost_jitter = 0.02;
  /// Tie lines per copy-to-copy interface (>= 1).
  std::size_t ties_per_interface = 2;
  /// Series reactance of every tie line, per-unit.
  double tie_reactance = 0.02;
  /// Tie thermal limit in MW; 0 means "never binds" (the io-layer
  /// RATE_A = 0 convention, written back as such by the writer).
  double tie_limit_mw = 0.0;
  /// Boundary buses (base-case indices) that anchor tie lines. Empty
  /// selects the `ties_per_interface` highest-degree buses of the base
  /// case (ties broken toward the lower index), listed ascending.
  std::vector<std::size_t> boundary_buses;
  /// Close the copy ring (interface copies-1 -> 0) when copies >= 3;
  /// with false the copies form an open chain.
  bool ring = true;
  /// Give every tie line a D-FACTS device with these factors (disabled
  /// when min == max == 1). Zone-decomposed selection leaves tie
  /// devices at nominal, so the default is off.
  double tie_dfacts_min = 1.0;
  double tie_dfacts_max = 1.0;
  /// Name of the composed system; empty means "<base>x<copies>".
  std::string name;
};

/// Zone structure of a partitioned network: which zone every bus belongs
/// to, the intra-zone branch/generator sets, and the cross-zone (tie)
/// branches. Produced by `compose_cases` (zones = copies) or inferred
/// from any composed system with `partition_into_copies`; consumed by
/// `extract_zone` and `mtd::select_mtd_zones`.
struct ZonePartition {
  std::size_t num_zones = 1;
  std::vector<std::size_t> bus_zone;  ///< zone of every bus (size N)
  /// Global bus indices per zone, ascending (local index = position).
  std::vector<std::vector<std::size_t>> zone_buses;
  /// Global indices of intra-zone branches per zone, ascending.
  std::vector<std::vector<std::size_t>> zone_branches;
  /// Global generator indices per zone, ascending.
  std::vector<std::vector<std::size_t>> zone_generators;
  /// Branches whose endpoints lie in different zones, ascending.
  std::vector<std::size_t> tie_branches;
};

/// Result of `compose_cases`: the network plus the composition metadata
/// the zone-decomposed algorithms key off.
struct ComposeResult {
  PowerSystem system;              ///< the composed network
  std::size_t copies = 1;          ///< N
  std::size_t buses_per_copy = 0;  ///< base-case bus count
  std::size_t branches_per_copy = 0;  ///< base-case branch count
  std::size_t gens_per_copy = 0;   ///< base-case generator count
  /// Global indices of the tie branches (the trailing branches).
  std::vector<std::size_t> tie_branches;
  /// Boundary buses actually used (base-case indices, ascending).
  std::vector<std::size_t> boundary_buses;

  /// The per-copy zone partition of the composed system.
  ZonePartition zones() const;
};

/// Composes `copies` jittered copies of `base` into one connected
/// network under the renumbering contract above. Throws
/// std::invalid_argument on degenerate options (zero copies, jitter
/// >= 1, non-positive tie reactance, boundary bus out of range, more
/// requested boundary buses than the base has).
ComposeResult compose_cases(const PowerSystem& base,
                            const ComposeOptions& options);

/// Reconstructs the per-copy partition of a composed system from bus
/// blocks: bus b belongs to zone b / (N / copies). This is the inverse
/// of the renumbering contract, so it works on any network produced by
/// `compose_cases` — including one that went through a
/// write_matpower/parse round trip, where the composition metadata is
/// not stored. Throws std::invalid_argument when the bus count is not
/// divisible by `copies` or a zone's internal network is disconnected.
ZonePartition partition_into_copies(const PowerSystem& sys,
                                    std::size_t copies);

/// A zone lifted out of a partitioned network as a standalone
/// PowerSystem (local bus 0 — the zone's smallest global bus — becomes
/// the zone slack), plus the local-to-global index maps needed to
/// stitch per-zone results back into full-network vectors.
struct ZoneSystem {
  PowerSystem system;                    ///< the standalone zone network
  std::vector<std::size_t> bus_map;      ///< local bus -> global bus
  std::vector<std::size_t> branch_map;   ///< local branch -> global branch
  std::vector<std::size_t> gen_map;      ///< local gen -> global gen
};

/// Extracts zone `zone` of `partition` from `sys`. The zone's buses,
/// branches, and generators keep their ascending global order, so for a
/// copy-composed system the extracted network equals the jittered base
/// copy field-for-field (the conformance tests pin this). Throws
/// std::invalid_argument when the zone's internal network is
/// disconnected (a partition that cuts through a copy).
ZoneSystem extract_zone(const PowerSystem& sys,
                        const ZonePartition& partition, std::size_t zone);

}  // namespace mtdgrid::grid
