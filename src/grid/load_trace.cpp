#include "grid/load_trace.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mtdgrid::grid {

DailyLoadTrace::DailyLoadTrace(std::vector<double> hourly_total_mw)
    : hourly_total_mw_(std::move(hourly_total_mw)) {
  if (hourly_total_mw_.size() != 24)
    throw std::invalid_argument("daily load trace must have 24 entries");
  for (double v : hourly_total_mw_)
    if (v <= 0.0)
      throw std::invalid_argument("load trace entries must be positive");
}

DailyLoadTrace DailyLoadTrace::nyiso_winter_weekday() {
  // Hour 0 = midnight-1AM, ..., hour 17 = 5-6PM (evening peak), hour 23 =
  // 11PM-midnight. Shape follows a NYISO winter weekday: double ramp with
  // the evening peak dominating, range ~142-220 MW after scaling to the
  // IEEE 14-bus case (cf. Fig. 10 of the paper).
  return DailyLoadTrace({
      158.0, 152.0, 147.0, 144.0, 142.0, 146.0,  // overnight trough
      160.0, 175.0, 183.0, 186.0, 187.0, 186.0,  // morning ramp + plateau
      184.0, 182.0, 181.0, 185.0, 196.0, 220.0,  // afternoon rise, 6PM peak
      216.0, 209.0, 199.0, 187.0, 174.0, 163.0,  // evening decline
  });
}

DailyLoadTrace DailyLoadTrace::synthetic(double trough_mw, double peak_mw,
                                         std::size_t peak_hour, double jitter,
                                         stats::Rng& rng) {
  if (trough_mw <= 0.0 || peak_mw < trough_mw)
    throw std::invalid_argument("synthetic trace: invalid range");
  if (peak_hour >= 24)
    throw std::invalid_argument("synthetic trace: peak hour out of range");
  std::vector<double> totals(24);
  constexpr std::size_t kTroughHour = 4;
  for (std::size_t h = 0; h < 24; ++h) {
    // Cosine bump centered on the peak hour, trough anchored at 4 AM.
    const double phase =
        std::numbers::pi *
        (static_cast<double>(h) - static_cast<double>(kTroughHour)) /
        (static_cast<double>(peak_hour) - static_cast<double>(kTroughHour));
    const double shape = 0.5 * (1.0 - std::cos(phase));
    double value = trough_mw + (peak_mw - trough_mw) * std::abs(shape);
    value *= 1.0 + jitter * rng.gaussian();
    totals[h] = std::max(value, 0.25 * trough_mw);
  }
  return DailyLoadTrace(std::move(totals));
}

double DailyLoadTrace::total_mw(std::size_t hour) const {
  assert(hour < hourly_total_mw_.size());
  return hourly_total_mw_[hour];
}

void DailyLoadTrace::apply(PowerSystem& sys, std::size_t hour,
                           const linalg::Vector& base_loads_mw) const {
  if (base_loads_mw.size() != sys.num_buses())
    throw std::invalid_argument("apply: base load vector length mismatch");
  double base_total = 0.0;
  for (double v : base_loads_mw) base_total += v;
  if (base_total <= 0.0)
    throw std::invalid_argument("apply: base loads must have positive total");
  const double factor = total_mw(hour) / base_total;
  linalg::Vector scaled = base_loads_mw;
  scaled *= factor;
  sys.set_loads_mw(scaled);
}

}  // namespace mtdgrid::grid
