#pragma once

#include <cstddef>
#include <vector>

#include "grid/power_system.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::grid {

/// A 24-hour total-load trace (MW per hour), used to drive the dynamic-load
/// simulations of the paper's Section VII-C.
class DailyLoadTrace {
 public:
  /// Builds a trace from explicit hourly totals (must have 24 entries).
  explicit DailyLoadTrace(std::vector<double> hourly_total_mw);

  /// The NYISO-shaped winter-weekday profile standing in for the paper's
  /// 25-JAN-2016 New York state trace, already scaled to the IEEE 14-bus
  /// system: overnight trough ~142 MW around 4-5 AM, morning ramp, daytime
  /// plateau ~183 MW, and an evening peak ~220 MW at 6 PM.
  static DailyLoadTrace nyiso_winter_weekday();

  /// A synthetic double-peak weekday profile: trough at 4 AM, peak at
  /// `peak_hour`, total in [trough_mw, peak_mw], with optional Gaussian
  /// jitter (relative standard deviation `jitter`, reproducible via `rng`).
  static DailyLoadTrace synthetic(double trough_mw, double peak_mw,
                                  std::size_t peak_hour, double jitter,
                                  stats::Rng& rng);

  /// Total system load for `hour` in [0, 24).
  double total_mw(std::size_t hour) const;

  std::size_t size() const { return hourly_total_mw_.size(); }

  /// Applies hour `hour` of the trace to `sys` by scaling every bus load
  /// proportionally so the system total matches the trace total. The
  /// relative load distribution across buses is preserved, exactly as when
  /// feeding an aggregate trace to a benchmark case.
  void apply(PowerSystem& sys, std::size_t hour,
             const linalg::Vector& base_loads_mw) const;

 private:
  std::vector<double> hourly_total_mw_;
};

}  // namespace mtdgrid::grid
