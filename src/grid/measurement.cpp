#include "grid/measurement.hpp"

#include <cassert>

namespace mtdgrid::grid {

std::size_t measurement_count(const PowerSystem& sys) {
  return 2 * sys.num_branches() + sys.num_buses();
}

linalg::Matrix measurement_matrix(const PowerSystem& sys,
                                  const linalg::Vector& x) {
  assert(x.size() == sys.num_branches());
  const std::size_t num_branches = sys.num_branches();
  const std::size_t num_buses = sys.num_buses();
  const std::size_t state_dim = num_buses - 1;

  const linalg::Matrix a_reduced = sys.reduced_branch_incidence();  // L x N-1
  const linalg::Vector d = sys.branch_susceptances(x);

  linalg::Matrix h(measurement_count(sys), state_dim);

  // Forward flow rows: D A_r^T  (row l scaled by d_l).
  for (std::size_t l = 0; l < num_branches; ++l) {
    for (std::size_t j = 0; j < state_dim; ++j) {
      const double value = d[l] * a_reduced(l, j);
      h(l, j) = value;                      // forward flow
      h(num_branches + l, j) = -value;      // reverse flow
    }
  }

  // Injection rows: the full B = A D A^T with the slack *column* removed;
  // injections are measured at every bus including the slack.
  const linalg::Matrix b_full = sys.susceptance_matrix(x);
  const linalg::Matrix b_cols = b_full.without_col(sys.slack_bus());
  for (std::size_t i = 0; i < num_buses; ++i) {
    for (std::size_t j = 0; j < state_dim; ++j) {
      h(2 * num_branches + i, j) = b_cols(i, j);
    }
  }
  return h;
}

linalg::Matrix measurement_matrix(const PowerSystem& sys) {
  return measurement_matrix(sys, sys.reactances());
}

linalg::Vector noiseless_measurements(const PowerSystem& sys,
                                      const linalg::Vector& x,
                                      const linalg::Vector& theta_reduced) {
  assert(theta_reduced.size() == sys.num_buses() - 1);
  return measurement_matrix(sys, x) * theta_reduced;
}

}  // namespace mtdgrid::grid
