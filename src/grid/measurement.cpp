#include "grid/measurement.hpp"

#include <cassert>
#include <cmath>

namespace mtdgrid::grid {

std::size_t measurement_count(const PowerSystem& sys) {
  return 2 * sys.num_branches() + sys.num_buses();
}

linalg::Matrix measurement_matrix(const PowerSystem& sys,
                                  const linalg::Vector& x) {
  assert(x.size() == sys.num_branches());
  const std::size_t num_branches = sys.num_branches();
  const std::size_t num_buses = sys.num_buses();
  const std::size_t state_dim = num_buses - 1;

  const linalg::Matrix a_reduced = sys.reduced_branch_incidence();  // L x N-1
  const linalg::Vector d = sys.branch_susceptances(x);

  linalg::Matrix h(measurement_count(sys), state_dim);

  // Forward flow rows: D A_r^T  (row l scaled by d_l).
  for (std::size_t l = 0; l < num_branches; ++l) {
    for (std::size_t j = 0; j < state_dim; ++j) {
      const double value = d[l] * a_reduced(l, j);
      h(l, j) = value;                      // forward flow
      h(num_branches + l, j) = -value;      // reverse flow
    }
  }

  // Injection rows: the full B = A D A^T with the slack *column* removed;
  // injections are measured at every bus including the slack.
  const linalg::Matrix b_full = sys.susceptance_matrix(x);
  const linalg::Matrix b_cols = b_full.without_col(sys.slack_bus());
  for (std::size_t i = 0; i < num_buses; ++i) {
    for (std::size_t j = 0; j < state_dim; ++j) {
      h(2 * num_branches + i, j) = b_cols(i, j);
    }
  }
  return h;
}

linalg::Matrix measurement_matrix(const PowerSystem& sys) {
  return measurement_matrix(sys, sys.reactances());
}

linalg::SparseMatrix sparse_measurement_matrix(const PowerSystem& sys,
                                               const linalg::Vector& x) {
  assert(x.size() == sys.num_branches());
  const std::size_t num_branches = sys.num_branches();
  const std::size_t num_buses = sys.num_buses();
  const std::size_t state_dim = num_buses - 1;
  const linalg::Vector d = sys.branch_susceptances(x);

  linalg::TripletBuilder builder(measurement_count(sys), state_dim);
  builder.reserve(8 * num_branches);
  for (std::size_t l = 0; l < num_branches; ++l) {
    const Branch& br = sys.branch(l);
    const std::size_t cf = reduced_state_column(sys, br.from);
    const std::size_t ct = reduced_state_column(sys, br.to);
    // Flow rows l (forward) and L + l (reverse): d_l * (e_from - e_to)^T
    // with the slack column dropped.
    if (cf < num_buses) {
      builder.add(l, cf, d[l]);
      builder.add(num_branches + l, cf, -d[l]);
    }
    if (ct < num_buses) {
      builder.add(l, ct, -d[l]);
      builder.add(num_branches + l, ct, d[l]);
    }
    // Injection rows: B = A D A^T accumulated per branch in branch order
    // (matching PowerSystem::susceptance_matrix bit for bit), slack
    // column dropped, slack row kept.
    const std::size_t row_f = 2 * num_branches + br.from;
    const std::size_t row_t = 2 * num_branches + br.to;
    if (cf < num_buses) {
      builder.add(row_f, cf, d[l]);
      builder.add(row_t, cf, -d[l]);
    }
    if (ct < num_buses) {
      builder.add(row_t, ct, d[l]);
      builder.add(row_f, ct, -d[l]);
    }
  }
  return builder.build();
}

linalg::SparseMatrix sparse_measurement_matrix(const PowerSystem& sys) {
  return sparse_measurement_matrix(sys, sys.reactances());
}

std::size_t reduced_state_column(const PowerSystem& sys, std::size_t bus) {
  const std::size_t slack = sys.slack_bus();
  if (bus == slack) return sys.num_buses();  // sentinel: no column
  return (bus < slack) ? bus : bus - 1;
}

std::vector<std::size_t> changed_branches(const linalg::Vector& x_old,
                                          const linalg::Vector& x_new,
                                          double rel_tol) {
  assert(x_old.size() == x_new.size());
  std::vector<std::size_t> changed;
  for (std::size_t l = 0; l < x_old.size(); ++l) {
    if (std::abs(x_new[l] - x_old[l]) > rel_tol * std::abs(x_old[l]))
      changed.push_back(l);
  }
  return changed;
}

void update_measurement_matrix(const PowerSystem& sys, linalg::Matrix& h,
                               const linalg::Vector& x_old,
                               const linalg::Vector& x_new,
                               const std::vector<std::size_t>& branches) {
  const std::size_t num_branches = sys.num_branches();
  const std::size_t num_buses = sys.num_buses();
  assert(h.rows() == measurement_count(sys));
  assert(h.cols() == num_buses - 1);
  assert(x_old.size() == num_branches && x_new.size() == num_branches);

  for (std::size_t l : branches) {
    const Branch& br = sys.branch(l);
    const double d_new = sys.base_mva() / x_new[l];
    const double delta = d_new - sys.base_mva() / x_old[l];
    const std::size_t cf = reduced_state_column(sys, br.from);
    const std::size_t ct = reduced_state_column(sys, br.to);

    // Flow rows l (forward) and L + l (reverse): d_l * (e_from - e_to)^T.
    if (cf < num_buses) {
      h(l, cf) = d_new;
      h(num_branches + l, cf) = -d_new;
    }
    if (ct < num_buses) {
      h(l, ct) = -d_new;
      h(num_branches + l, ct) = d_new;
    }

    // Injection rows: B += delta * (e_from - e_to)(e_from - e_to)^T, with
    // the slack column removed (slack *rows* are kept).
    const std::size_t row_f = 2 * num_branches + br.from;
    const std::size_t row_t = 2 * num_branches + br.to;
    if (cf < num_buses) {
      h(row_f, cf) += delta;
      h(row_t, cf) -= delta;
    }
    if (ct < num_buses) {
      h(row_t, ct) += delta;
      h(row_f, ct) -= delta;
    }
  }
}

linalg::Vector noiseless_measurements(const PowerSystem& sys,
                                      const linalg::Vector& x,
                                      const linalg::Vector& theta_reduced) {
  assert(theta_reduced.size() == sys.num_buses() - 1);
  return measurement_matrix(sys, x) * theta_reduced;
}

}  // namespace mtdgrid::grid
