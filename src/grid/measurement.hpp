#pragma once

#include "grid/power_system.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::grid {

/// The DC measurement model of the paper (Section III):
///
///   z = H theta + n,   z = [f; -f; p]
///
/// where f are the L forward branch flows, -f the reverse flows, and p the
/// N nodal injections, so M = 2L + N. We use the *reduced* state (slack
/// angle removed), which makes H an M x (N-1) full-column-rank matrix:
///
///   H = [ D A_r^T ; -D A_r^T ; A_r D A_r^T-rows-for-all-buses ]
///
/// with A_r the reduced incidence and D = diag(base_mva / x_l).
/// Flows and injections are in MW, angles in radians.

/// Number of measurements M = 2L + N for the given system.
std::size_t measurement_count(const PowerSystem& sys);

/// Builds the measurement matrix H for reactances `x` (length L).
linalg::Matrix measurement_matrix(const PowerSystem& sys,
                                  const linalg::Vector& x);

/// Builds H at the system's current nominal reactances.
linalg::Matrix measurement_matrix(const PowerSystem& sys);

/// Builds H for reactances `x` directly in CSR, without a dense
/// intermediate — the `StoragePolicy::kSparse` entry point of the
/// measurement model. H has ~2 entries per flow row and (degree+1) per
/// injection row, so nnz is O(L + N) against the dense M x (N-1) block.
/// Values are bit-identical to `measurement_matrix`: each injection entry
/// accumulates its per-branch susceptance contributions in branch order,
/// the same order the dense susceptance-matrix loop uses.
linalg::SparseMatrix sparse_measurement_matrix(const PowerSystem& sys,
                                               const linalg::Vector& x);

/// Sparse H at the system's current nominal reactances.
linalg::SparseMatrix sparse_measurement_matrix(const PowerSystem& sys);

/// Column of the reduced state (slack angle removed) that `bus` maps to,
/// or `sys.num_buses()` as an out-of-range sentinel for the slack bus
/// itself (which has no column). Shared by the incremental H update and
/// the rank-k SPA evaluator so the mapping lives in exactly one place.
std::size_t reduced_state_column(const PowerSystem& sys, std::size_t bus);

/// Indices of branches whose reactance differs between `x_old` and `x_new`
/// by more than `tol` relative to the old value. This is the D-FACTS
/// candidate "diff" that drives the incremental H update below.
std::vector<std::size_t> changed_branches(const linalg::Vector& x_old,
                                          const linalg::Vector& x_new,
                                          double rel_tol = 0.0);

/// Incrementally updates `h` (which must equal `measurement_matrix(sys,
/// x_old)`) to `measurement_matrix(sys, x_new)`, touching only the rows
/// affected by `branches` (the changed-branch set). A branch l = (i, j)
/// with susceptance change delta_l touches exactly: flow rows l and L+l
/// (rescaled) and at most 4 entries of the injection rows for buses i and
/// j — O(1) work per changed branch instead of an O(M N) rebuild.
void update_measurement_matrix(const PowerSystem& sys, linalg::Matrix& h,
                               const linalg::Vector& x_old,
                               const linalg::Vector& x_new,
                               const std::vector<std::size_t>& branches);

/// Noise-free measurement vector z = H theta for the reduced state
/// `theta_reduced` (length N-1).
linalg::Vector noiseless_measurements(const PowerSystem& sys,
                                      const linalg::Vector& x,
                                      const linalg::Vector& theta_reduced);

}  // namespace mtdgrid::grid
