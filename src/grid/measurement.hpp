#pragma once

#include "grid/power_system.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::grid {

/// The DC measurement model of the paper (Section III):
///
///   z = H theta + n,   z = [f; -f; p]
///
/// where f are the L forward branch flows, -f the reverse flows, and p the
/// N nodal injections, so M = 2L + N. We use the *reduced* state (slack
/// angle removed), which makes H an M x (N-1) full-column-rank matrix:
///
///   H = [ D A_r^T ; -D A_r^T ; A_r D A_r^T-rows-for-all-buses ]
///
/// with A_r the reduced incidence and D = diag(base_mva / x_l).
/// Flows and injections are in MW, angles in radians.

/// Number of measurements M = 2L + N for the given system.
std::size_t measurement_count(const PowerSystem& sys);

/// Builds the measurement matrix H for reactances `x` (length L).
linalg::Matrix measurement_matrix(const PowerSystem& sys,
                                  const linalg::Vector& x);

/// Builds H at the system's current nominal reactances.
linalg::Matrix measurement_matrix(const PowerSystem& sys);

/// Noise-free measurement vector z = H theta for the reduced state
/// `theta_reduced` (length N-1).
linalg::Vector noiseless_measurements(const PowerSystem& sys,
                                      const linalg::Vector& x,
                                      const linalg::Vector& theta_reduced);

}  // namespace mtdgrid::grid
