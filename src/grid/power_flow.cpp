#include "grid/power_flow.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"
#include "linalg/sparse_cholesky.hpp"
#include "linalg/sparse_matrix.hpp"

namespace mtdgrid::grid {

namespace {

// Shared argument/balance validation and reduced-injection packing of the
// dense and sparse solvers.
linalg::Vector reduced_injections(const PowerSystem& sys,
                                  const linalg::Vector& injections_mw,
                                  double balance_tol) {
  if (injections_mw.size() != sys.num_buses())
    throw std::invalid_argument("power flow: wrong injection vector length");
  const double imbalance = injections_mw.sum();
  if (std::abs(imbalance) >
      balance_tol * std::max(1.0, injections_mw.norm1()))
    throw std::invalid_argument("power flow: injections do not balance");
  linalg::Vector p_reduced(sys.num_buses() - 1);
  std::size_t k = 0;
  for (std::size_t i = 0; i < sys.num_buses(); ++i) {
    if (i == sys.slack_bus()) continue;
    p_reduced[k++] = injections_mw[i];
  }
  return p_reduced;
}

}  // namespace

DcPowerFlowResult solve_dc_power_flow(const PowerSystem& sys,
                                      const linalg::Vector& x,
                                      const linalg::Vector& injections_mw,
                                      double balance_tol) {
  // Reduced system: drop the slack bus equation and angle.
  const std::size_t n = sys.num_buses();
  const linalg::Vector p_reduced =
      reduced_injections(sys, injections_mw, balance_tol);
  std::size_t k = 0;

  const linalg::Matrix b_reduced = sys.reduced_susceptance_matrix(x);
  linalg::LuDecomposition lu(b_reduced);
  if (lu.singular())
    throw std::runtime_error("power flow: singular susceptance matrix");

  DcPowerFlowResult result;
  result.theta_reduced = lu.solve(p_reduced);
  result.theta_full = linalg::Vector(n);
  k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == sys.slack_bus()) continue;
    result.theta_full[i] = result.theta_reduced[k++];
  }
  result.flows_mw = branch_flows(sys, x, result.theta_reduced);
  return result;
}

DcPowerFlowResult solve_dc_power_flow_sparse(const PowerSystem& sys,
                                             const linalg::Vector& x,
                                             const linalg::Vector& injections_mw,
                                             double balance_tol) {
  const std::size_t n = sys.num_buses();
  const linalg::Vector p_reduced =
      reduced_injections(sys, injections_mw, balance_tol);

  // Reduced susceptance matrix in CSR: per-branch contributions in branch
  // order, the same accumulation order as the dense susceptance loop
  // (the TripletBuilder insertion-order contract). Reduced index = bus-1
  // because the slack is pinned at bus 0.
  const linalg::Vector d = sys.branch_susceptances(x);
  linalg::TripletBuilder builder(n - 1, n - 1);
  builder.reserve(4 * sys.num_branches());
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    const std::size_t i = sys.branch(l).from;
    const std::size_t j = sys.branch(l).to;
    if (i != 0) builder.add(i - 1, i - 1, d[l]);
    if (j != 0) builder.add(j - 1, j - 1, d[l]);
    if (i != 0 && j != 0) {
      builder.add(i - 1, j - 1, -d[l]);
      builder.add(j - 1, i - 1, -d[l]);
    }
  }
  const linalg::SparseCholesky chol(builder.build());
  if (chol.failed())
    throw std::runtime_error("power flow: singular susceptance matrix");

  DcPowerFlowResult result;
  result.theta_reduced = chol.solve(p_reduced);
  result.theta_full = linalg::Vector(n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == sys.slack_bus()) continue;
    result.theta_full[i] = result.theta_reduced[k++];
  }
  result.flows_mw = branch_flows(sys, x, result.theta_reduced);
  return result;
}

linalg::Vector branch_flows(const PowerSystem& sys, const linalg::Vector& x,
                            const linalg::Vector& theta_reduced) {
  assert(theta_reduced.size() == sys.num_buses() - 1);
  const linalg::Vector d = sys.branch_susceptances(x);

  // Recover the full angle vector (slack angle = 0).
  linalg::Vector theta(sys.num_buses());
  std::size_t k = 0;
  for (std::size_t i = 0; i < sys.num_buses(); ++i) {
    if (i == sys.slack_bus()) continue;
    theta[i] = theta_reduced[k++];
  }

  linalg::Vector flows(sys.num_branches());
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    const Branch& br = sys.branch(l);
    flows[l] = d[l] * (theta[br.from] - theta[br.to]);
  }
  return flows;
}

linalg::Vector nodal_injections(const PowerSystem& sys,
                                const linalg::Vector& generation_mw) {
  assert(generation_mw.size() == sys.num_generators());
  linalg::Vector injections(sys.num_buses());
  for (std::size_t i = 0; i < sys.num_buses(); ++i)
    injections[i] = -sys.bus(i).load_mw;
  for (std::size_t g = 0; g < sys.num_generators(); ++g)
    injections[sys.generator(g).bus] += generation_mw[g];
  return injections;
}

}  // namespace mtdgrid::grid
