#pragma once

#include "grid/power_system.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::grid {

/// Result of a DC power-flow solve.
struct DcPowerFlowResult {
  linalg::Vector theta_reduced;  ///< bus voltage angles, slack removed (rad)
  linalg::Vector theta_full;     ///< all bus angles with theta_slack = 0
  linalg::Vector flows_mw;       ///< branch flows, MW, sign = from->to
};

/// Solves the DC power flow B_r theta = p for the given nodal injections
/// (generation minus load, MW, length N). The injections must balance to
/// zero within `balance_tol`; the slack equation is redundant and dropped.
/// Throws std::invalid_argument on imbalance, std::runtime_error when the
/// susceptance matrix is singular (disconnected network).
DcPowerFlowResult solve_dc_power_flow(const PowerSystem& sys,
                                      const linalg::Vector& x,
                                      const linalg::Vector& injections_mw,
                                      double balance_tol = 1e-6);

/// Sparse-backbone DC power flow (StoragePolicy::kSparse counterpart of
/// `solve_dc_power_flow`): assembles the reduced susceptance matrix
/// directly in CSR (TripletBuilder, branch assembly order) and solves it
/// with the minimum-degree-ordered sparse Cholesky — B_r is symmetric
/// positive definite for a connected network. At mega-grid scale
/// (1k-10k buses, ROADMAP "Synthetic mega-grids") the dense LU path is
/// O(N^2) memory and O(N^3) time while the grid's B_r has ~2 entries per
/// branch, so this is the only tractable route; the composed-case audit
/// and the zone-decomposed selection boundary check run through it.
/// Same exceptions as the dense solver; angles agree with it to solver
/// tolerance (not bit-exactly — the factorizations differ), which the
/// conformance tests pin.
DcPowerFlowResult solve_dc_power_flow_sparse(const PowerSystem& sys,
                                             const linalg::Vector& x,
                                             const linalg::Vector& injections_mw,
                                             double balance_tol = 1e-6);

/// Branch flows for a given reduced state: f = D A_r^T theta (MW).
linalg::Vector branch_flows(const PowerSystem& sys, const linalg::Vector& x,
                            const linalg::Vector& theta_reduced);

/// Nodal injections implied by a dispatch: injections_i = gen_i - load_i.
/// `generation_mw` has one entry per generator (summed onto its bus).
linalg::Vector nodal_injections(const PowerSystem& sys,
                                const linalg::Vector& generation_mw);

}  // namespace mtdgrid::grid
