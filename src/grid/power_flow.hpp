#pragma once

#include "grid/power_system.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::grid {

/// Result of a DC power-flow solve.
struct DcPowerFlowResult {
  linalg::Vector theta_reduced;  ///< bus voltage angles, slack removed (rad)
  linalg::Vector theta_full;     ///< all bus angles with theta_slack = 0
  linalg::Vector flows_mw;       ///< branch flows, MW, sign = from->to
};

/// Solves the DC power flow B_r theta = p for the given nodal injections
/// (generation minus load, MW, length N). The injections must balance to
/// zero within `balance_tol`; the slack equation is redundant and dropped.
/// Throws std::invalid_argument on imbalance, std::runtime_error when the
/// susceptance matrix is singular (disconnected network).
DcPowerFlowResult solve_dc_power_flow(const PowerSystem& sys,
                                      const linalg::Vector& x,
                                      const linalg::Vector& injections_mw,
                                      double balance_tol = 1e-6);

/// Branch flows for a given reduced state: f = D A_r^T theta (MW).
linalg::Vector branch_flows(const PowerSystem& sys, const linalg::Vector& x,
                            const linalg::Vector& theta_reduced);

/// Nodal injections implied by a dispatch: injections_i = gen_i - load_i.
/// `generation_mw` has one entry per generator (summed onto its bus).
linalg::Vector nodal_injections(const PowerSystem& sys,
                                const linalg::Vector& generation_mw);

}  // namespace mtdgrid::grid
