#include "grid/power_system.hpp"

#include <cassert>
#include <queue>
#include <stdexcept>

namespace mtdgrid::grid {

PowerSystem::PowerSystem(std::string name, std::vector<Bus> buses,
                         std::vector<Branch> branches,
                         std::vector<Generator> generators, double base_mva)
    : name_(std::move(name)),
      buses_(std::move(buses)),
      branches_(std::move(branches)),
      generators_(std::move(generators)),
      base_mva_(base_mva) {
  validate();
}

linalg::Vector PowerSystem::reactances() const {
  linalg::Vector x(num_branches());
  for (std::size_t l = 0; l < num_branches(); ++l)
    x[l] = branches_[l].reactance;
  return x;
}

void PowerSystem::set_reactances(const linalg::Vector& x) {
  if (x.size() != num_branches())
    throw std::invalid_argument("set_reactances: wrong vector length");
  for (std::size_t l = 0; l < num_branches(); ++l) {
    if (x[l] <= 0.0)
      throw std::invalid_argument("set_reactances: non-positive reactance");
    branches_[l].reactance = x[l];
  }
}

linalg::Vector PowerSystem::loads_mw() const {
  linalg::Vector loads(num_buses());
  for (std::size_t i = 0; i < num_buses(); ++i) loads[i] = buses_[i].load_mw;
  return loads;
}

void PowerSystem::set_loads_mw(const linalg::Vector& loads) {
  if (loads.size() != num_buses())
    throw std::invalid_argument("set_loads_mw: wrong vector length");
  for (std::size_t i = 0; i < num_buses(); ++i) buses_[i].load_mw = loads[i];
}

void PowerSystem::scale_loads(double factor) {
  for (Bus& b : buses_) b.load_mw *= factor;
}

double PowerSystem::total_load_mw() const {
  double total = 0.0;
  for (const Bus& b : buses_) total += b.load_mw;
  return total;
}

std::vector<std::size_t> PowerSystem::dfacts_branches() const {
  std::vector<std::size_t> out;
  for (std::size_t l = 0; l < num_branches(); ++l)
    if (branches_[l].has_dfacts) out.push_back(l);
  return out;
}

linalg::Vector PowerSystem::reactance_lower_limits() const {
  linalg::Vector lo(num_branches());
  for (std::size_t l = 0; l < num_branches(); ++l) {
    const Branch& br = branches_[l];
    lo[l] = br.has_dfacts ? br.dfacts_min_factor * br.reactance
                          : br.reactance;
  }
  return lo;
}

linalg::Vector PowerSystem::reactance_upper_limits() const {
  linalg::Vector hi(num_branches());
  for (std::size_t l = 0; l < num_branches(); ++l) {
    const Branch& br = branches_[l];
    hi[l] = br.has_dfacts ? br.dfacts_max_factor * br.reactance
                          : br.reactance;
  }
  return hi;
}

bool PowerSystem::reactances_within_limits(const linalg::Vector& x,
                                           double tol) const {
  if (x.size() != num_branches()) return false;
  const linalg::Vector lo = reactance_lower_limits();
  const linalg::Vector hi = reactance_upper_limits();
  for (std::size_t l = 0; l < num_branches(); ++l) {
    if (x[l] < lo[l] - tol || x[l] > hi[l] + tol) return false;
  }
  return true;
}

linalg::Matrix PowerSystem::branch_incidence() const {
  linalg::Matrix at(num_branches(), num_buses());
  for (std::size_t l = 0; l < num_branches(); ++l) {
    at(l, branches_[l].from) = 1.0;
    at(l, branches_[l].to) = -1.0;
  }
  return at;
}

linalg::Matrix PowerSystem::reduced_branch_incidence() const {
  return branch_incidence().without_col(slack_bus());
}

linalg::Vector PowerSystem::branch_susceptances(
    const linalg::Vector& x) const {
  assert(x.size() == num_branches());
  linalg::Vector d(num_branches());
  for (std::size_t l = 0; l < num_branches(); ++l) {
    assert(x[l] > 0.0);
    d[l] = base_mva_ / x[l];
  }
  return d;
}

linalg::Matrix PowerSystem::susceptance_matrix(const linalg::Vector& x) const {
  const linalg::Vector d = branch_susceptances(x);
  linalg::Matrix b(num_buses(), num_buses());
  for (std::size_t l = 0; l < num_branches(); ++l) {
    const std::size_t i = branches_[l].from;
    const std::size_t j = branches_[l].to;
    b(i, i) += d[l];
    b(j, j) += d[l];
    b(i, j) -= d[l];
    b(j, i) -= d[l];
  }
  return b;
}

linalg::Matrix PowerSystem::reduced_susceptance_matrix(
    const linalg::Vector& x) const {
  const linalg::Matrix full = susceptance_matrix(x);
  return full.without_col(slack_bus())
      .transposed()
      .without_col(slack_bus())
      .transposed();
}

void PowerSystem::validate() const {
  if (buses_.empty()) throw std::invalid_argument("power system has no buses");
  if (branches_.empty())
    throw std::invalid_argument("power system has no branches");
  if (base_mva_ <= 0.0)
    throw std::invalid_argument("base MVA must be positive");

  for (const Branch& br : branches_) {
    if (br.from >= num_buses() || br.to >= num_buses())
      throw std::invalid_argument("branch endpoint out of range");
    if (br.from == br.to)
      throw std::invalid_argument("branch connects a bus to itself");
    if (br.reactance <= 0.0)
      throw std::invalid_argument("branch reactance must be positive");
    if (br.flow_limit_mw <= 0.0)
      throw std::invalid_argument("branch flow limit must be positive");
    if (br.has_dfacts &&
        (br.dfacts_min_factor <= 0.0 ||
         br.dfacts_min_factor > br.dfacts_max_factor))
      throw std::invalid_argument("invalid D-FACTS reactance range");
  }
  for (const Generator& g : generators_) {
    if (g.bus >= num_buses())
      throw std::invalid_argument("generator bus out of range");
    if (g.min_mw < 0.0 || g.min_mw > g.max_mw)
      throw std::invalid_argument("invalid generator limits");
  }

  // Connectivity check (BFS over branches): state estimation and power flow
  // both require a connected network.
  std::vector<bool> seen(num_buses(), false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (const Branch& br : branches_) {
      const std::size_t v =
          (br.from == u) ? br.to : (br.to == u ? br.from : u);
      if (v != u && !seen[v]) {
        seen[v] = true;
        frontier.push(v);
      }
    }
  }
  for (bool s : seen)
    if (!s) throw std::invalid_argument("power network is not connected");
}

}  // namespace mtdgrid::grid
