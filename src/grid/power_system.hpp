#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::grid {

/// A bus (node) of the transmission network.
struct Bus {
  double load_mw = 0.0;  ///< real-power demand at this bus, in MW
};

/// A transmission line between two buses, following the DC power-flow
/// model of the paper: the flow on line l is F_l = (theta_i - theta_j) / x_l
/// (in per-unit; converted to MW through the system MVA base).
struct Branch {
  std::size_t from = 0;        ///< sending bus index (0-based)
  std::size_t to = 0;          ///< receiving bus index (0-based)
  double reactance = 0.0;      ///< nominal series reactance, per-unit
  double flow_limit_mw = 0.0;  ///< thermal limit F^max, in MW
  bool has_dfacts = false;     ///< true when a D-FACTS device is installed
  double dfacts_min_factor = 1.0;  ///< x_min = factor * nominal reactance
  double dfacts_max_factor = 1.0;  ///< x_max = factor * nominal reactance
};

/// A dispatchable generator with the paper's linear cost C_i(G) = c_i * G.
struct Generator {
  std::size_t bus = 0;        ///< bus index the generator is attached to
  double min_mw = 0.0;        ///< dispatch lower limit G^min
  double max_mw = 0.0;        ///< dispatch upper limit G^max
  double cost_per_mwh = 0.0;  ///< marginal cost c_i, $/MWh
};

/// The static description of a power network: buses, branches, generators,
/// and which branches carry D-FACTS devices. This is the substrate every
/// other module (OPF, state estimation, attack construction, MTD) builds on.
///
/// Conventions:
///  * bus/branch/generator indices are 0-based;
///  * bus 0 is the angle-reference (slack) bus;
///  * reactances are per-unit on `base_mva()`; loads/flows/dispatch in MW.
class PowerSystem {
 public:
  PowerSystem(std::string name, std::vector<Bus> buses,
              std::vector<Branch> branches, std::vector<Generator> generators,
              double base_mva = 100.0);

  const std::string& name() const { return name_; }
  double base_mva() const { return base_mva_; }

  std::size_t num_buses() const { return buses_.size(); }
  std::size_t num_branches() const { return branches_.size(); }
  std::size_t num_generators() const { return generators_.size(); }

  /// Index of the angle-reference (slack) bus; fixed at 0.
  std::size_t slack_bus() const { return 0; }

  const std::vector<Bus>& buses() const { return buses_; }
  const std::vector<Branch>& branches() const { return branches_; }
  const std::vector<Generator>& generators() const { return generators_; }

  Bus& bus(std::size_t i) { return buses_.at(i); }
  const Bus& bus(std::size_t i) const { return buses_.at(i); }
  Branch& branch(std::size_t l) { return branches_.at(l); }
  const Branch& branch(std::size_t l) const { return branches_.at(l); }
  const Generator& generator(std::size_t g) const { return generators_.at(g); }

  /// Vector of nominal branch reactances x (length L).
  linalg::Vector reactances() const;

  /// Overwrites the nominal branch reactances (length must equal L).
  void set_reactances(const linalg::Vector& x);

  /// Vector of bus loads in MW (length N).
  linalg::Vector loads_mw() const;

  /// Overwrites the bus loads (length must equal N).
  void set_loads_mw(const linalg::Vector& loads);

  /// Scales every bus load by the same factor (used to replay load traces).
  void scale_loads(double factor);

  /// Sum of all bus loads, MW.
  double total_load_mw() const;

  /// Indices of branches equipped with D-FACTS devices.
  std::vector<std::size_t> dfacts_branches() const;

  /// Per-branch reactance lower limits x^min (nominal value for non-D-FACTS
  /// branches, `dfacts_min_factor * nominal` otherwise).
  linalg::Vector reactance_lower_limits() const;

  /// Per-branch reactance upper limits x^max.
  linalg::Vector reactance_upper_limits() const;

  /// True when `x` is inside [x^min, x^max] elementwise (with tolerance).
  bool reactances_within_limits(const linalg::Vector& x,
                                double tol = 1e-9) const;

  /// Branch-bus incidence matrix A^T as used in the paper: L x N, with
  /// +1 at the sending bus and -1 at the receiving bus of each branch.
  /// (The paper's A is N x L; we expose its transpose which is what the
  /// measurement model multiplies by.)
  linalg::Matrix branch_incidence() const;

  /// Reduced incidence: L x (N-1), slack-bus column removed.
  linalg::Matrix reduced_branch_incidence() const;

  /// Diagonal of D: base_mva / x_l, so that D A^T theta yields MW flows.
  linalg::Vector branch_susceptances(const linalg::Vector& x) const;

  /// Full nodal susceptance matrix B = A D A^T (N x N, singular).
  linalg::Matrix susceptance_matrix(const linalg::Vector& x) const;

  /// Reduced nodal susceptance matrix (N-1 x N-1, non-singular for a
  /// connected network), slack row/column removed.
  linalg::Matrix reduced_susceptance_matrix(const linalg::Vector& x) const;

  /// Validates structural sanity (indices in range, positive reactances,
  /// connected network). Throws std::invalid_argument on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<Bus> buses_;
  std::vector<Branch> branches_;
  std::vector<Generator> generators_;
  double base_mva_;
};

}  // namespace mtdgrid::grid
