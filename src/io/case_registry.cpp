#include "io/case_registry.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "grid/cases.hpp"
#include "grid/compose.hpp"
#include "io/matpower.hpp"

#ifndef MTDGRID_DATA_DIR
#define MTDGRID_DATA_DIR "data"
#endif

namespace mtdgrid::io {

namespace {

bool looks_like_path(const std::string& s) {
  return s.find('/') != std::string::npos ||
         (s.size() > 2 && s.compare(s.size() - 2, 2, ".m") == 0);
}

std::string read_file(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Carry the attempted path *and* the OS reason — "cannot open file"
    // alone made misspelled paths vs. permission problems look alike.
    std::string why = "cannot open file";
    if (errno != 0) why += std::string(" (") + std::strerror(errno) + ")";
    throw CaseIoError(path + ": " + why);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Composed-case grammar "<base>x<N>": base case name (or alias) followed
// by a literal 'x' and a copy count >= 2, e.g. "case118x9". Returns the
// (base, copies) split when the name has that shape; whether `base` names
// a registered case is the caller's check. The split is anchored at the
// LAST 'x' so base names containing 'x' would still parse; composed bases
// ("case14x2x2") are rejected by the caller's non-composed-base rule.
struct ComposedName {
  std::string base;
  std::size_t copies;
};

std::optional<ComposedName> parse_composed(const std::string& name) {
  const std::size_t x = name.rfind('x');
  if (x == std::string::npos || x == 0 || x + 1 >= name.size())
    return std::nullopt;
  std::size_t copies = 0;
  for (std::size_t i = x + 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    copies = copies * 10 + static_cast<std::size_t>(name[i] - '0');
    if (copies > 1000) return std::nullopt;  // reject absurd tilings
  }
  if (copies < 2) return std::nullopt;
  return ComposedName{name.substr(0, x), copies};
}

}  // namespace

const CaseRegistry& CaseRegistry::global() {
  static const CaseRegistry registry = [] {
    CaseRegistry r;
    r.entries_ = {
        {"case4", {"case4gs"}, "", &grid::make_case4,
         "paper Section IV-B worked example (Grainger & Stevenson)"},
        {"wscc9", {"case9"}, "", &grid::make_case_wscc9,
         "WSCC 9-bus system"},
        {"case14", {"ieee14"}, "case14.m", nullptr,
         "IEEE 14-bus, paper Section VII-A settings"},
        {"ieee30", {"case30"}, "", &grid::make_case_ieee30,
         "IEEE 30-bus system"},
        {"case57", {"ieee57"}, "case57.m", nullptr,
         "IEEE 57-bus (MATPOWER case57 topology)"},
        {"case118", {"ieee118"}, "case118.m", nullptr,
         "IEEE 118-bus system, linearized merit-order costs"},
        {"case300", {"ieee300"}, "case300.m", nullptr,
         "300-bus large-scale scenario (slow; see data/case300.m header)"},
        // Composed mega-grids (no file, no factory): synthesized on load
        // by grid::compose_cases from the base entry under the default
        // composition options — any "<base>xN" name works; these two are
        // the bundled scenarios the slow tests and benches pin.
        {"case118x9", {}, "", nullptr,
         "9 tiled IEEE 118-bus copies, 1062 buses (composed; slow)"},
        {"case300x17", {}, "", nullptr,
         "17 tiled 300-bus copies, 5100 buses (composed; slow)"},
    };
    return r;
  }();
  return registry;
}

std::vector<std::string> CaseRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const CaseEntry& e : entries_) out.push_back(e.name);
  return out;
}

std::string CaseRegistry::joined_names(const std::string& sep) const {
  std::string out;
  for (const CaseEntry& e : entries_)
    out += (out.empty() ? "" : sep) + e.name;
  return out;
}

std::string CaseRegistry::joined_names_with_aliases(
    const std::string& sep) const {
  std::string out;
  for (const CaseEntry& e : entries_) {
    out += (out.empty() ? "" : sep) + e.name;
    if (e.aliases.empty()) continue;
    out += " (";
    for (std::size_t i = 0; i < e.aliases.size(); ++i)
      out += (i == 0 ? "" : ", ") + e.aliases[i];
    out += ")";
  }
  return out;
}

std::string CaseRegistry::data_dir() const {
  if (const char* env = std::getenv("MTDGRID_DATA_DIR"))
    if (*env != '\0') return env;
  return MTDGRID_DATA_DIR;
}

bool CaseRegistry::knows(const std::string& name_or_path) const {
  if (looks_like_path(name_or_path)) return true;
  for (const CaseEntry& e : entries_) {
    if (e.name == name_or_path) return true;
    for (const std::string& alias : e.aliases)
      if (alias == name_or_path) return true;
  }
  // Composed grammar: "<base>xN" for any registered non-composed base.
  if (const auto composed = parse_composed(name_or_path)) {
    for (const CaseEntry& e : entries_) {
      if (!e.file.empty() || e.factory != nullptr) {
        if (e.name == composed->base) return true;
        for (const std::string& alias : e.aliases)
          if (alias == composed->base) return true;
      }
    }
  }
  return false;
}

grid::PowerSystem CaseRegistry::load_file(const std::string& path) const {
  const std::string text = read_file(path);
  ParseError error;
  std::optional<MatpowerCase> mpc = parse_matpower(text, &error);
  if (!mpc) throw CaseIoError(path + ": " + error.to_string());
  std::optional<grid::PowerSystem> sys = to_power_system(*mpc, &error);
  if (!sys) throw CaseIoError(path + ": " + error.to_string());
  return std::move(*sys);
}

grid::PowerSystem CaseRegistry::load(const std::string& name_or_path) const {
  if (looks_like_path(name_or_path)) return load_file(name_or_path);
  for (const CaseEntry& e : entries_) {
    bool match = e.name == name_or_path;
    for (const std::string& alias : e.aliases)
      match = match || alias == name_or_path;
    if (!match) continue;
    if (e.factory != nullptr) return e.factory();
    if (!e.file.empty()) return load_file(data_dir() + "/" + e.file);
    break;  // a composed entry: fall through to the grammar below
  }
  // Composed grammar "<base>xN": synthesize from the base case under the
  // default composition options. Deterministic — the name alone pins the
  // network (grid::kDefaultComposeSeed), so "case118x9" means the same
  // 1062-bus system in every test, bench, and daemon.
  if (const auto composed = parse_composed(name_or_path)) {
    for (const CaseEntry& e : entries_) {
      if (e.file.empty() && e.factory == nullptr) continue;
      bool match = e.name == composed->base;
      for (const std::string& alias : e.aliases)
        match = match || alias == composed->base;
      if (!match) continue;
      grid::ComposeOptions options;
      options.copies = composed->copies;
      // Canonical composed name even when the base file's internal name
      // differs (case14.m says "ieee14") or an alias was used.
      options.name = e.name + "x" + std::to_string(composed->copies);
      return grid::compose_cases(load(e.name), options).system;
    }
  }
  throw CaseIoError("unknown case '" + name_or_path + "' (known: " +
                    joined_names_with_aliases(", ") +
                    ", a composed '<case>xN' name, or a path to a .m file)");
}

grid::PowerSystem load_case(const std::string& name_or_path) {
  return CaseRegistry::global().load(name_or_path);
}

}  // namespace mtdgrid::io
