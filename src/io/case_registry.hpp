#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "grid/power_system.hpp"

namespace mtdgrid::io {

/// Thrown by the registry-level loaders. `what()` carries the file path
/// and (when known) the 1-based source line of the diagnostic, e.g.
/// "data/case118.m: line 42: mpc.branch: from bus 999 is not in mpc.bus".
class CaseIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One registered scenario. File-backed entries resolve against the data
/// directory; builtin entries call a hand-coded factory from
/// `grid/cases.hpp` (the small cases that predate the loader).
struct CaseEntry {
  std::string name;                  ///< canonical name ("case118")
  std::vector<std::string> aliases;  ///< accepted synonyms ("ieee118")
  std::string file;                  ///< "<name>.m" for file-backed entries
  grid::PowerSystem (*factory)() = nullptr;  ///< builtin factory, or null
  std::string description;           ///< one-liner for usage messages
};

/// Name-based access to every bundled scenario: the single entry point for
/// tests, benches, and examples (ROADMAP "scale" item). File-backed cases
/// are parsed from `data/` through the MATPOWER loader on every call — a
/// PowerSystem is mutable (loads, reactances), so callers get a fresh one.
class CaseRegistry {
 public:
  /// The process-wide registry with every bundled case registered.
  static const CaseRegistry& global();

  /// Registered entries, in display order (small to large).
  const std::vector<CaseEntry>& entries() const { return entries_; }

  /// Canonical names, for usage/help output.
  std::vector<std::string> names() const;

  /// Canonical names joined with `sep` ("case4|wscc9|..."), for usage
  /// strings and error messages.
  std::string joined_names(const std::string& sep) const;

  /// Canonical names with their aliases in parentheses, joined with `sep`:
  /// "case4 (case4gs), wscc9 (case9), ...". Used by the unknown-case
  /// diagnostic so a near-miss (e.g. "ieee-118") shows every accepted
  /// spelling.
  std::string joined_names_with_aliases(const std::string& sep) const;

  /// True when `name_or_path` resolves to an entry or names a `.m` file.
  bool knows(const std::string& name_or_path) const;

  /// Loads a case by canonical name, alias, or — when the argument looks
  /// like a path (contains '/' or ends in ".m") — directly from a MATPOWER
  /// file. Throws CaseIoError with a file:line diagnostic on failure.
  grid::PowerSystem load(const std::string& name_or_path) const;

  /// Loads a MATPOWER `.m` file, bypassing name lookup.
  grid::PowerSystem load_file(const std::string& path) const;

  /// The directory bundled case files resolve against: the
  /// MTDGRID_DATA_DIR environment variable when set, otherwise the
  /// compile-time default (the repo's `data/` directory).
  std::string data_dir() const;

 private:
  std::vector<CaseEntry> entries_;
};

/// Convenience wrapper around `CaseRegistry::global().load(...)`.
grid::PowerSystem load_case(const std::string& name_or_path);

}  // namespace mtdgrid::io
