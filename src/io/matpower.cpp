#include "io/matpower.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace mtdgrid::io {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool fail(ParseError* error, int line, std::string message) {
  if (error) {
    error->line = line;
    error->message = std::move(message);
  }
  return false;
}

/// Parses one whitespace/comma-delimited numeric token; the whole token
/// must be consumed (so "1.2.3" and "4x" are malformed, not truncated).
bool parse_double(std::string_view token, double* out) {
  const std::string owned(token);
  const char* begin = owned.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

/// Appends the rows contained in `segment` (data text with no '[' / ']')
/// to `matrix`. Rows are separated by ';' (or the end of the line — the
/// caseformat terminates every row with one or the other); tokens by
/// spaces or commas.
bool append_rows(MatpowerMatrix& matrix, std::string_view segment, int line,
                 ParseError* error) {
  std::size_t start = 0;
  std::vector<std::string_view> row_texts;
  while (start <= segment.size()) {
    const std::size_t semi = segment.find(';', start);
    if (semi == std::string_view::npos) {
      row_texts.push_back(segment.substr(start));
      break;
    }
    row_texts.push_back(segment.substr(start, semi - start));
    start = semi + 1;
  }
  for (std::size_t r = 0; r < row_texts.size(); ++r) {
    std::string_view row_text = trim(row_texts[r]);
    if (row_text.empty()) continue;
    std::vector<double> row;
    std::size_t pos = 0;
    while (pos < row_text.size()) {
      while (pos < row_text.size() &&
             (std::isspace(static_cast<unsigned char>(row_text[pos])) ||
              row_text[pos] == ','))
        ++pos;
      if (pos >= row_text.size()) break;
      std::size_t end = pos;
      while (end < row_text.size() &&
             !std::isspace(static_cast<unsigned char>(row_text[end])) &&
             row_text[end] != ',')
        ++end;
      const std::string_view token = row_text.substr(pos, end - pos);
      double value = 0.0;
      if (!parse_double(token, &value))
        return fail(error, line,
                    "mpc." + matrix.name + ": malformed numeric token '" +
                        std::string(token) + "'");
      row.push_back(value);
      pos = end;
    }
    if (row.empty()) continue;
    matrix.rows.push_back(std::move(row));
    matrix.row_lines.push_back(line);
  }
  return true;
}

/// Rectangularity check, run when a matrix closes. Empty matrices are
/// legal at parse level (`mpc.dfacts = [];`); the builder decides which
/// matrices must be non-empty.
bool check_rectangular(const MatpowerMatrix& matrix, ParseError* error) {
  if (matrix.rows.empty()) return true;
  const std::size_t width = matrix.rows.front().size();
  for (std::size_t r = 1; r < matrix.rows.size(); ++r) {
    if (matrix.rows[r].size() != width)
      return fail(error, matrix.row_lines[r],
                  "mpc." + matrix.name + ": row has " +
                      std::to_string(matrix.rows[r].size()) +
                      " columns, expected " + std::to_string(width));
  }
  return true;
}

bool near_integer(double v, long long* out) {
  // The range guard matters: casting a double outside long long's range
  // is undefined behavior (aborts under -fsanitize=undefined), and bus
  // ids come straight from untrusted files.
  if (!(std::abs(v) < 9.0e18)) return false;
  const double rounded = std::round(v);
  if (std::abs(v - rounded) > 1e-9) return false;
  *out = static_cast<long long>(rounded);
  return true;
}

/// Shortest decimal representation that parses back to exactly `v`.
std::string format_double(double v) {
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double back = 0.0;
    if (parse_double(buf, &back) && back == v) return buf;
  }
  return buf;
}

// MATPOWER column indices (0-based) used by the DC builder.
constexpr std::size_t kBusId = 0, kBusType = 1, kBusPd = 2;
constexpr std::size_t kBrFrom = 0, kBrTo = 1, kBrX = 3, kBrRateA = 5,
                      kBrTap = 8, kBrStatus = 10;
constexpr std::size_t kGenBus = 0, kGenStatus = 7, kGenPmax = 8,
                      kGenPmin = 9;
constexpr std::size_t kCostModel = 0, kCostN = 3, kCostCoeff = 4;

}  // namespace

const MatpowerMatrix* MatpowerCase::find(std::string_view field) const {
  for (const MatpowerMatrix& m : matrices)
    if (m.name == field) return &m;
  return nullptr;
}

std::string ParseError::to_string() const {
  if (line <= 0) return message;
  return "line " + std::to_string(line) + ": " + message;
}

std::optional<MatpowerCase> parse_matpower(std::string_view text,
                                           ParseError* error) {
  MatpowerCase mpc;
  MatpowerMatrix* open = nullptr;  // matrix currently being filled

  int line_no = 0;
  std::size_t cursor = 0;
  while (cursor <= text.size()) {
    const std::size_t newline = text.find('\n', cursor);
    std::string_view line = text.substr(
        cursor, newline == std::string_view::npos ? std::string_view::npos
                                                  : newline - cursor);
    cursor = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    ++line_no;

    // Strip % comments (the caseformat has no '%' inside data).
    const std::size_t comment = line.find('%');
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (open != nullptr) {
      const std::size_t close = line.find(']');
      const std::string_view data =
          close == std::string_view::npos ? line : line.substr(0, close);
      if (!append_rows(*open, data, line_no, error)) return std::nullopt;
      if (close != std::string_view::npos) {
        const std::string_view rest = trim(line.substr(close + 1));
        if (!rest.empty() && rest != ";") {
          fail(error, line_no,
               "mpc." + open->name + ": unexpected text after ']'");
          return std::nullopt;
        }
        if (!check_rectangular(*open, error)) return std::nullopt;
        open = nullptr;
      }
      continue;
    }

    if (line.substr(0, 8) == "function") {
      const std::size_t eq = line.find('=');
      if (eq != std::string_view::npos) mpc.name = trim(line.substr(eq + 1));
      continue;
    }
    if (line.substr(0, 4) != "mpc.") continue;  // arbitrary MATLAB code

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(error, line_no, "malformed statement (no '='): '" +
                               std::string(line) + "'");
      return std::nullopt;
    }
    const std::string field(trim(line.substr(4, eq - 4)));
    std::string_view rhs = trim(line.substr(eq + 1));

    if (!rhs.empty() && rhs.front() == '[') {
      if (mpc.find(field) != nullptr) {
        fail(error, line_no, "duplicate matrix mpc." + field);
        return std::nullopt;
      }
      mpc.matrices.push_back(MatpowerMatrix{field, line_no, {}, {}});
      open = &mpc.matrices.back();
      // Data (and possibly the closing bracket) on the same line.
      std::string_view remainder = trim(rhs.substr(1));
      if (!remainder.empty()) {
        const std::size_t close = remainder.find(']');
        const std::string_view data = close == std::string_view::npos
                                          ? remainder
                                          : remainder.substr(0, close);
        if (!append_rows(*open, data, line_no, error)) return std::nullopt;
        if (close != std::string_view::npos) {
          const std::string_view rest = trim(remainder.substr(close + 1));
          if (!rest.empty() && rest != ";") {
            fail(error, line_no,
                 "mpc." + open->name + ": unexpected text after ']'");
            return std::nullopt;
          }
          if (!check_rectangular(*open, error)) return std::nullopt;
          open = nullptr;
        }
      }
      continue;
    }

    if (field == "baseMVA") {
      if (mpc.has_base_mva) {
        fail(error, line_no, "duplicate mpc.baseMVA (first at line " +
                                 std::to_string(mpc.base_mva_line) + ")");
        return std::nullopt;
      }
      if (!rhs.empty() && rhs.back() == ';') rhs = trim(rhs.substr(0, rhs.size() - 1));
      double value = 0.0;
      if (!parse_double(rhs, &value)) {
        fail(error, line_no, "mpc.baseMVA: expected a number, got '" +
                                 std::string(rhs) + "'");
        return std::nullopt;
      }
      mpc.base_mva = value;
      mpc.has_base_mva = true;
      mpc.base_mva_line = line_no;
      continue;
    }
    // Other scalar/string fields (version, names, areas...) are ignored.
  }

  if (open != nullptr) {
    fail(error, open->open_line,
         "mpc." + open->name + ": matrix opened here is never closed with ']'");
    return std::nullopt;
  }
  return mpc;
}

std::optional<grid::PowerSystem> to_power_system(const MatpowerCase& mpc,
                                                 ParseError* error) {
  const auto missing = [&](const char* what) {
    fail(error, 0, std::string("missing ") + what);
    return std::nullopt;
  };
  if (!mpc.has_base_mva) return missing("mpc.baseMVA");
  if (mpc.base_mva <= 0.0) {
    fail(error, mpc.base_mva_line, "mpc.baseMVA must be positive");
    return std::nullopt;
  }
  const MatpowerMatrix* bus = mpc.find("bus");
  if (bus == nullptr) return missing("mpc.bus");
  const MatpowerMatrix* branch = mpc.find("branch");
  if (branch == nullptr) return missing("mpc.branch");
  const MatpowerMatrix* gen = mpc.find("gen");
  if (gen == nullptr) return missing("mpc.gen");
  const MatpowerMatrix* gencost = mpc.find("gencost");
  if (gencost == nullptr) return missing("mpc.gencost");
  if (bus->rows.empty()) {
    fail(error, bus->open_line, "mpc.bus is empty");
    return std::nullopt;
  }
  if (branch->rows.empty()) {
    fail(error, branch->open_line, "mpc.branch is empty");
    return std::nullopt;
  }

  // --- buses -------------------------------------------------------------
  std::vector<grid::Bus> buses;
  std::map<long long, std::size_t> bus_index;
  buses.reserve(bus->rows.size());
  for (std::size_t r = 0; r < bus->rows.size(); ++r) {
    const std::vector<double>& row = bus->rows[r];
    const int line = bus->row_lines[r];
    if (row.size() < 3) {
      fail(error, line, "mpc.bus: row needs at least 3 columns "
                        "(bus_i, type, Pd)");
      return std::nullopt;
    }
    long long id = 0;
    if (!near_integer(row[kBusId], &id) || id <= 0) {
      fail(error, line, "mpc.bus: bus id must be a positive integer");
      return std::nullopt;
    }
    if (!bus_index.emplace(id, r).second) {
      fail(error, line, "mpc.bus: duplicate bus id " + std::to_string(id));
      return std::nullopt;
    }
    const long long type = std::llround(row[kBusType]);
    if (type == 3 && r != 0) {
      fail(error, line,
           "mpc.bus: the reference (type 3) bus must be the first bus row "
           "(PowerSystem slack convention)");
      return std::nullopt;
    }
    if (r == 0 && type != 3) {
      fail(error, line, "mpc.bus: the first bus row must be the reference "
                        "(type 3) bus");
      return std::nullopt;
    }
    grid::Bus b;
    b.load_mw = row[kBusPd];
    buses.push_back(b);
  }

  // --- branches ----------------------------------------------------------
  const auto lookup_bus = [&](double raw, int line, const char* which,
                              std::size_t* out) {
    long long id = 0;
    if (!near_integer(raw, &id))
      return fail(error, line, std::string("mpc.branch: ") + which +
                                   " bus id must be an integer");
    const auto it = bus_index.find(id);
    if (it == bus_index.end())
      return fail(error, line, std::string("mpc.branch: ") + which +
                                   " bus " + std::to_string(id) +
                                   " is not in mpc.bus");
    *out = it->second;
    return true;
  };

  std::vector<grid::Branch> branches;
  // mpc.dfacts refers to 1-based mpc.branch rows; map file row -> built
  // branch index (out-of-service rows collapse to "absent").
  std::vector<std::ptrdiff_t> branch_of_row(branch->rows.size(), -1);
  branches.reserve(branch->rows.size());
  for (std::size_t r = 0; r < branch->rows.size(); ++r) {
    const std::vector<double>& row = branch->rows[r];
    const int line = branch->row_lines[r];
    if (row.size() < 4) {
      fail(error, line, "mpc.branch: row needs at least 4 columns "
                        "(fbus, tbus, r, x)");
      return std::nullopt;
    }
    const double status = row.size() > kBrStatus ? row[kBrStatus] : 1.0;
    if (status == 0.0) continue;
    grid::Branch br;
    if (!lookup_bus(row[kBrFrom], line, "from", &br.from)) return std::nullopt;
    if (!lookup_bus(row[kBrTo], line, "to", &br.to)) return std::nullopt;
    if (br.from == br.to) {
      fail(error, line, "mpc.branch: branch connects a bus to itself");
      return std::nullopt;
    }
    const double tap = row.size() > kBrTap ? row[kBrTap] : 0.0;
    br.reactance = row[kBrX] * (tap > 0.0 ? tap : 1.0);
    if (br.reactance <= 0.0) {
      fail(error, line,
           "mpc.branch: branch " + std::to_string(r + 1) +
               " has non-positive reactance (the DC model needs x > 0)");
      return std::nullopt;
    }
    const double rate_a = row.size() > kBrRateA ? row[kBrRateA] : 0.0;
    br.flow_limit_mw = rate_a > 0.0 ? rate_a : kUnlimitedFlowMw;
    branch_of_row[r] = static_cast<std::ptrdiff_t>(branches.size());
    branches.push_back(br);
  }

  // --- generators + costs ------------------------------------------------
  if (gencost->rows.size() != gen->rows.size()) {
    fail(error, gencost->open_line,
         "mpc.gencost has " + std::to_string(gencost->rows.size()) +
             " rows but mpc.gen has " + std::to_string(gen->rows.size()));
    return std::nullopt;
  }
  std::vector<grid::Generator> generators;
  generators.reserve(gen->rows.size());
  for (std::size_t r = 0; r < gen->rows.size(); ++r) {
    const std::vector<double>& row = gen->rows[r];
    const int line = gen->row_lines[r];
    if (row.size() < 9) {
      fail(error, line, "mpc.gen: row needs at least 9 columns "
                        "(through Pmax)");
      return std::nullopt;
    }
    const double status = row.size() > kGenStatus ? row[kGenStatus] : 1.0;
    const double pmax = row[kGenPmax];
    if (status <= 0.0 || pmax <= 0.0) continue;  // offline or condenser

    grid::Generator g;
    long long id = 0;
    if (!near_integer(row[kGenBus], &id) ||
        bus_index.find(id) == bus_index.end()) {
      fail(error, line, "mpc.gen: generator bus " +
                            std::to_string(static_cast<long long>(
                                row[kGenBus])) +
                            " is not in mpc.bus");
      return std::nullopt;
    }
    g.bus = bus_index.at(id);
    g.max_mw = pmax;
    // Negative Pmin (pumped storage) is clamped: the paper's dispatch model
    // has no negative generation.
    g.min_mw = std::max(0.0, row.size() > kGenPmin ? row[kGenPmin] : 0.0);
    if (g.min_mw > g.max_mw) {
      fail(error, line, "mpc.gen: Pmin exceeds Pmax");
      return std::nullopt;
    }

    const std::vector<double>& cost = gencost->rows[r];
    const int cost_line = gencost->row_lines[r];
    if (cost.size() < 4) {
      fail(error, cost_line, "mpc.gencost: row needs at least 4 columns");
      return std::nullopt;
    }
    const long long model = std::llround(cost[kCostModel]);
    if (model != 2) {
      fail(error, cost_line,
           "mpc.gencost: only polynomial cost rows (model 2) are supported; "
           "linearize piecewise-linear costs first");
      return std::nullopt;
    }
    long long n = 0;
    if (!near_integer(cost[kCostN], &n) || n < 1) {
      fail(error, cost_line, "mpc.gencost: invalid coefficient count");
      return std::nullopt;
    }
    if (cost.size() < kCostCoeff + static_cast<std::size_t>(n)) {
      fail(error, cost_line,
           "mpc.gencost: row declares " + std::to_string(n) +
               " coefficients but has only " +
               std::to_string(cost.size() - kCostCoeff));
      return std::nullopt;
    }
    if (n > 3) {
      fail(error, cost_line,
           "mpc.gencost: polynomial degree > 2 is not supported by the "
           "linear-cost dispatch model");
      return std::nullopt;
    }
    // Coefficients are highest-degree first. Degree-2 costs are linearized
    // at the dispatch midpoint: d/dP (c2 P^2 + c1 P) at (Pmin+Pmax)/2.
    double linear = 0.0;
    if (n == 2) {
      linear = cost[kCostCoeff];
    } else if (n == 3) {
      linear = cost[kCostCoeff + 1] +
               cost[kCostCoeff] * (g.min_mw + g.max_mw);
    }
    g.cost_per_mwh = linear;
    generators.push_back(g);
  }

  // --- D-FACTS extension -------------------------------------------------
  if (const MatpowerMatrix* dfacts = mpc.find("dfacts")) {
    for (std::size_t r = 0; r < dfacts->rows.size(); ++r) {
      const std::vector<double>& row = dfacts->rows[r];
      const int line = dfacts->row_lines[r];
      if (row.size() != 2 && row.size() != 3) {
        fail(error, line,
             "mpc.dfacts: row must be [branch eta_max] or "
             "[branch min_factor max_factor]");
        return std::nullopt;
      }
      long long idx = 0;
      if (!near_integer(row[0], &idx) || idx < 1 ||
          static_cast<std::size_t>(idx) > branch_of_row.size()) {
        fail(error, line, "mpc.dfacts: branch index out of range");
        return std::nullopt;
      }
      const std::ptrdiff_t built = branch_of_row[idx - 1];
      if (built < 0) {
        fail(error, line,
             "mpc.dfacts: branch " + std::to_string(idx) +
                 " is out of service");
        return std::nullopt;
      }
      grid::Branch& br = branches[static_cast<std::size_t>(built)];
      double lo = 0.0, hi = 0.0;
      if (row.size() == 2) {
        const double eta = row[1];
        if (!(eta > 0.0 && eta < 1.0)) {
          fail(error, line, "mpc.dfacts: eta_max must be in (0, 1)");
          return std::nullopt;
        }
        lo = 1.0 - eta;
        hi = 1.0 + eta;
      } else {
        lo = row[1];
        hi = row[2];
        if (!(lo > 0.0 && lo <= hi)) {
          fail(error, line,
               "mpc.dfacts: need 0 < min_factor <= max_factor");
          return std::nullopt;
        }
      }
      br.has_dfacts = true;
      br.dfacts_min_factor = lo;
      br.dfacts_max_factor = hi;
    }
  }

  try {
    return grid::PowerSystem(mpc.name.empty() ? "case" : mpc.name,
                             std::move(buses), std::move(branches),
                             std::move(generators), mpc.base_mva);
  } catch (const std::invalid_argument& e) {
    // Structural validation failures (e.g. a disconnected network) are not
    // tied to one row; point at the branch matrix.
    fail(error, branch->open_line, std::string("invalid case: ") + e.what());
    return std::nullopt;
  }
}

std::string write_matpower(const grid::PowerSystem& sys) {
  std::ostringstream out;
  const auto f = [](double v) { return format_double(v); };

  std::vector<bool> has_gen(sys.num_buses(), false);
  for (const grid::Generator& g : sys.generators()) has_gen[g.bus] = true;

  out << "function mpc = " << sys.name() << "\n";
  out << "% MATPOWER caseformat written by mtdgrid io::write_matpower.\n";
  out << "% Round-trips the PowerSystem exactly (shortest-round-trip "
         "number format).\n";
  out << "mpc.version = '2';\n\n";
  out << "mpc.baseMVA = " << f(sys.base_mva()) << ";\n\n";

  out << "%% bus data: bus_i type Pd Qd Gs Bs area Vm Va baseKV zone "
         "Vmax Vmin\n";
  out << "mpc.bus = [\n";
  for (std::size_t i = 0; i < sys.num_buses(); ++i) {
    const int type = i == sys.slack_bus() ? 3 : (has_gen[i] ? 2 : 1);
    out << "\t" << i + 1 << "\t" << type << "\t" << f(sys.bus(i).load_mw)
        << "\t0\t0\t0\t1\t1\t0\t0\t1\t1.06\t0.94;\n";
  }
  out << "];\n\n";

  out << "%% generator data: bus Pg Qg Qmax Qmin Vg mBase status Pmax "
         "Pmin\n";
  out << "mpc.gen = [\n";
  for (const grid::Generator& g : sys.generators()) {
    out << "\t" << g.bus + 1 << "\t0\t0\t0\t0\t1\t" << f(sys.base_mva())
        << "\t1\t" << f(g.max_mw) << "\t" << f(g.min_mw) << ";\n";
  }
  out << "];\n\n";

  out << "%% generator cost data: model startup shutdown n c1 c0\n";
  out << "mpc.gencost = [\n";
  for (const grid::Generator& g : sys.generators())
    out << "\t2\t0\t0\t2\t" << f(g.cost_per_mwh) << "\t0;\n";
  out << "];\n\n";

  out << "%% branch data: fbus tbus r x b rateA rateB rateC ratio angle "
         "status\n";
  out << "mpc.branch = [\n";
  for (const grid::Branch& br : sys.branches()) {
    // Only the exact sentinel maps back to RATE_A = 0; any other limit —
    // even one above the sentinel — is written literally so the
    // round-trip stays value-preserving.
    const double rate_a =
        br.flow_limit_mw == kUnlimitedFlowMw ? 0.0 : br.flow_limit_mw;
    out << "\t" << br.from + 1 << "\t" << br.to + 1 << "\t0\t"
        << f(br.reactance) << "\t0\t" << f(rate_a) << "\t0\t0\t0\t0\t1;\n";
  }
  out << "];\n\n";

  out << "%% mtdgrid extension: D-FACTS devices as\n";
  out << "%% [branch_row min_factor max_factor] (1-based mpc.branch "
         "rows)\n";
  out << "mpc.dfacts = [\n";
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    const grid::Branch& br = sys.branch(l);
    if (!br.has_dfacts) continue;
    out << "\t" << l + 1 << "\t" << f(br.dfacts_min_factor) << "\t"
        << f(br.dfacts_max_factor) << ";\n";
  }
  out << "];\n";
  return out.str();
}

}  // namespace mtdgrid::io
