#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "grid/power_system.hpp"

namespace mtdgrid::io {

/// MATPOWER `.m` caseformat I/O.
///
/// The parser understands the subset of the caseformat that the DC model
/// needs — `function mpc = <name>`, `mpc.baseMVA`, and the `mpc.bus`,
/// `mpc.branch`, `mpc.gen`, `mpc.gencost` matrices — plus one repo
/// extension, `mpc.dfacts`, that records which branches carry D-FACTS
/// devices (the stock format has no column for that). `%` comments,
/// `;`-separated rows, multi-line matrices, and unknown `mpc.*` scalar
/// fields are all accepted; every diagnostic carries the 1-based source
/// line it points at. See DESIGN.md "Case file formats" for the column
/// conventions and the per-unit rules.

/// One `mpc.<name> = [ ... ];` matrix, with per-row source lines so the
/// PowerSystem builder can report validation errors at the offending row.
struct MatpowerMatrix {
  std::string name;                      ///< field name after `mpc.`
  int open_line = 0;                     ///< line of `mpc.<name> = [`
  std::vector<std::vector<double>> rows;  ///< numeric rows, file order
  std::vector<int> row_lines;            ///< source line of each row
};

/// In-memory form of a parsed case file.
struct MatpowerCase {
  std::string name;        ///< from `function mpc = <name>` ("" if absent)
  double base_mva = 0.0;   ///< MVA base; valid only when `has_base_mva`
  bool has_base_mva = false;              ///< `mpc.baseMVA` was present
  int base_mva_line = 0;                  ///< source line of `mpc.baseMVA`
  std::vector<MatpowerMatrix> matrices;   ///< every `mpc.<name> = [...]`

  /// The matrix named `field`, or nullptr when the file does not have it.
  const MatpowerMatrix* find(std::string_view field) const;
};

/// A parse/validation diagnostic: 1-based source line plus message. Line 0
/// means the problem is not tied to a specific line (e.g. a missing field).
struct ParseError {
  int line = 0;          ///< 1-based source line (0: not line-specific)
  std::string message;   ///< human-readable description

  /// "line N: message" (or just the message when line == 0).
  std::string to_string() const;
};

/// Parses MATPOWER caseformat text. Returns the structured case, or
/// std::nullopt with `*error` filled in (never throws on malformed input).
std::optional<MatpowerCase> parse_matpower(std::string_view text,
                                           ParseError* error);

/// Converts a parsed case into a validated PowerSystem:
///  * bus ids are mapped to 0-based indices in file order; the REF-type
///    bus must be the first row (the PowerSystem slack convention);
///  * out-of-service branches/generators (status column 0) are dropped;
///  * parallel circuits are kept as distinct branches — the DC model sums
///    their susceptances, matching the hand-coded `make_case57()` rules;
///  * branch reactance is per-unit on `baseMVA`; an off-nominal tap a > 0
///    is folded into the DC reactance as x_eff = a * x;
///  * RATE_A == 0 ("unlimited" in MATPOWER) becomes `kUnlimitedFlowMw`;
///  * generator cost is the linear coefficient of a polynomial gencost
///    row (quadratic terms are linearized at the dispatch midpoint).
/// Returns std::nullopt with `*error` pointing at the offending row when
/// the case is malformed (unknown bus id, zero reactance, ragged gencost,
/// piecewise-linear costs, ...).
std::optional<grid::PowerSystem> to_power_system(const MatpowerCase& mpc,
                                                 ParseError* error);

/// Flow limit used for RATE_A == 0 branches; large enough to never bind.
inline constexpr double kUnlimitedFlowMw = 1e6;

/// Serializes a PowerSystem as MATPOWER caseformat text (including the
/// `mpc.dfacts` extension). Numbers are printed with shortest-round-trip
/// precision, so parse(write(sys)) reproduces `sys` to machine precision;
/// that property is what the round-trip tests pin down.
std::string write_matpower(const grid::PowerSystem& sys);

}  // namespace mtdgrid::io
