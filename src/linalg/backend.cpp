#include "linalg/backend.hpp"

#include <cassert>
#include <stdexcept>

#include "linalg/least_squares.hpp"

namespace mtdgrid::linalg {

std::size_t LinearOperator::rows() const {
  return storage_ == StoragePolicy::kDense ? dense_->rows() : sparse_->rows();
}

std::size_t LinearOperator::cols() const {
  return storage_ == StoragePolicy::kDense ? dense_->cols() : sparse_->cols();
}

Vector LinearOperator::apply(const Vector& x) const {
  return storage_ == StoragePolicy::kDense ? (*dense_) * x : (*sparse_) * x;
}

Vector LinearOperator::apply_transpose(const Vector& x) const {
  return storage_ == StoragePolicy::kDense ? dense_->transpose_times(x)
                                           : sparse_->transpose_times(x);
}

const Matrix& LinearOperator::dense() const {
  assert(storage_ == StoragePolicy::kDense);
  return *dense_;
}

const SparseMatrix& LinearOperator::sparse() const {
  assert(storage_ == StoragePolicy::kSparse);
  return *sparse_;
}

NormalEquationsSolver::NormalEquationsSolver(const LinearOperator& a,
                                            const Vector& weights,
                                            const SolverOptions& options)
    : a_(a), weights_(weights), options_(options) {
  assert(weights_.size() == a_.rows());
  if (a_.storage() == StoragePolicy::kDense) {
    // The reference path: identical accumulation order and factorization
    // to the historical dense code, so results stay bit-exact. CG is a
    // sparse-policy escape hatch, not a dense option.
    dense_chol_.emplace(weighted_gram(a_.dense(), weights_));
    failed_ = dense_chol_->failed();
    return;
  }
  sparse_gram_ = a_.sparse().weighted_gram(weights_);
  if (options_.method == SolverOptions::Method::kCholesky) {
    sparse_chol_.emplace(sparse_gram_);
    failed_ = sparse_chol_->failed();
    return;
  }
  if (options_.preconditioner ==
      SolverOptions::Preconditioner::kIncompleteCholesky) {
    auto ic = std::make_unique<IncompleteCholeskyPreconditioner>(sparse_gram_);
    if (!ic->failed()) preconditioner_ = std::move(ic);
  }
  if (!preconditioner_) {
    try {
      preconditioner_ = std::make_unique<JacobiPreconditioner>(sparse_gram_);
    } catch (const std::runtime_error&) {
      failed_ = true;  // Gram diagonal not positive: A is rank deficient
    }
  }
}

Vector NormalEquationsSolver::solve(const Vector& rhs) const {
  if (failed_)
    throw std::runtime_error(
        "normal equations solver: matrix not positive definite");
  if (a_.storage() == StoragePolicy::kDense) return dense_chol_->solve(rhs);
  if (sparse_chol_) return sparse_chol_->solve(rhs);
  CgOptions cg;
  cg.tolerance = options_.cg_tolerance;
  cg.max_iterations = options_.cg_max_iterations;
  const CgResult result =
      preconditioned_cg(sparse_gram_, rhs, *preconditioner_, cg);
  if (!result.converged)
    throw std::runtime_error(
        "normal equations solver: conjugate gradient did not converge "
        "(relative residual " +
        std::to_string(result.relative_residual) + " after " +
        std::to_string(result.iterations) + " iterations)");
  return result.x;
}

Vector NormalEquationsSolver::solve_least_squares(const Vector& b) const {
  assert(b.size() == a_.rows());
  Vector rhs(a_.cols());
  if (a_.storage() == StoragePolicy::kDense) {
    // Same moment-vector loop as the historical dense solver (bit-exact).
    const Matrix& a = a_.dense();
    for (std::size_t k = 0; k < a.rows(); ++k) {
      const double wb = weights_[k] * b[k];
      if (wb == 0.0) continue;
      for (std::size_t j = 0; j < a.cols(); ++j) rhs[j] += a(k, j) * wb;
    }
  } else {
    const SparseMatrix& a = a_.sparse();
    for (std::size_t k = 0; k < a.rows(); ++k) {
      const double wb = weights_[k] * b[k];
      if (wb == 0.0) continue;
      for (std::size_t p = a.row_ptr()[k]; p < a.row_ptr()[k + 1]; ++p)
        rhs[a.col_idx()[p]] += a.values()[p] * wb;
    }
  }
  return solve(rhs);
}

Vector solve_weighted_least_squares(const LinearOperator& a,
                                    const Vector& weights, const Vector& b,
                                    const SolverOptions& options) {
  assert(a.rows() == weights.size() && a.rows() == b.size());
  const NormalEquationsSolver solver(a, weights, options);
  if (solver.failed())
    throw std::runtime_error(
        "weighted least squares: normal equations not positive definite "
        "(rank-deficient matrix or non-positive weights)");
  return solver.solve_least_squares(b);
}

}  // namespace mtdgrid::linalg
