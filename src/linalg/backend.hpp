#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse_cholesky.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// How a matrix is stored — the policy knob of the linalg backend
/// (DESIGN.md "Storage policy & sparse backbone"). Callers pick a policy
/// by the matrix type they hand to `LinearOperator`; every solver below
/// then routes to the matching kernel without the caller naming one.
enum class StoragePolicy {
  kDense,   ///< row-major `Matrix` — the bit-exact reference path
  kSparse,  ///< CSR `SparseMatrix` — the scale path
};

/// Options of `NormalEquationsSolver` (and the policy-aware free-function
/// solvers): which factorization/iteration answers `solve`, and how CG is
/// preconditioned. The defaults reproduce the historical behavior: direct
/// Cholesky, dense bit-identical to the pre-backend code.
struct SolverOptions {
  enum class Method {
    kCholesky,           ///< direct: factor A^T W A once, then solve
    kConjugateGradient,  ///< iterative: the mega-grid escape hatch
                         ///< (sparse policy only)
  };
  enum class Preconditioner {
    kJacobi,              ///< diagonal scaling — cannot break down
    kIncompleteCholesky,  ///< IC(0) — stronger; falls back to Jacobi on
                          ///< breakdown
  };

  Method method = Method::kCholesky;
  Preconditioner preconditioner = Preconditioner::kIncompleteCholesky;
  double cg_tolerance = 1e-12;      ///< CG stop: ||r|| / ||b||
  std::size_t cg_max_iterations = 0;  ///< 0 = 4n
};

/// A non-owning view of a matrix under either storage policy: the "name
/// the operation, not the storage" boundary of the backend API. Implicit
/// construction from `Matrix` or `SparseMatrix` lets one signature serve
/// both worlds; the referenced matrix must outlive the view (and any
/// solver built on it).
class LinearOperator {
 public:
  /*implicit*/ LinearOperator(const Matrix& dense)
      : storage_(StoragePolicy::kDense), dense_(&dense) {}
  /*implicit*/ LinearOperator(const SparseMatrix& sparse)
      : storage_(StoragePolicy::kSparse), sparse_(&sparse) {}

  StoragePolicy storage() const { return storage_; }
  std::size_t rows() const;
  std::size_t cols() const;

  /// y = A x.
  Vector apply(const Vector& x) const;

  /// y = A^T x.
  Vector apply_transpose(const Vector& x) const;

  /// The dense operand; requires `storage() == kDense`.
  const Matrix& dense() const;

  /// The sparse operand; requires `storage() == kSparse`.
  const SparseMatrix& sparse() const;

 private:
  StoragePolicy storage_;
  const Matrix* dense_ = nullptr;
  const SparseMatrix* sparse_ = nullptr;
};

/// The backend solver for weighted normal equations (A^T W A) x = rhs —
/// the kernel of WLS state estimation. Factors once at construction
/// (Cholesky method) or sets up a preconditioner (CG method), then
/// serves any number of `solve`/`solve_least_squares` calls.
///
/// Storage policy routing:
///  * kDense — the Gram matrix is accumulated by the exact historical
///    `weighted_gram` loop and factored with the dense
///    `CholeskyDecomposition`; results are bit-identical to the
///    pre-backend `solve_weighted_least_squares`. CG is not offered on
///    the dense path (it would be slower and is not the reference).
///  * kSparse — the Gram matrix is assembled sparsely (O(sum of row
///    nnz^2)) and either factored by `SparseCholesky` under a
///    minimum-degree ordering, or solved iteratively by preconditioned
///    CG.
///
/// Lifetime: keeps the `LinearOperator` view, so the operand matrix must
/// outlive the solver. Failure (rank-deficient A, non-positive weights)
/// is reported through `failed()`; `solve*` on a failed solver throws.
class NormalEquationsSolver {
 public:
  NormalEquationsSolver(const LinearOperator& a, const Vector& weights,
                        const SolverOptions& options = {});

  /// True when the normal equations were found not positive definite
  /// (Cholesky) or no usable preconditioner exists (CG on a Gram matrix
  /// with a non-positive diagonal).
  bool failed() const { return failed_; }

  StoragePolicy storage() const { return a_.storage(); }
  const SolverOptions& options() const { return options_; }

  /// Solves (A^T W A) x = rhs. Requires `!failed()`; the CG method
  /// throws std::runtime_error if it fails to converge within the cap.
  Vector solve(const Vector& rhs) const;

  /// Weighted least squares: x = argmin || W^{1/2} (A x - b) ||.
  Vector solve_least_squares(const Vector& b) const;

 private:
  LinearOperator a_;
  Vector weights_;
  SolverOptions options_;
  bool failed_ = false;

  // kDense state.
  std::optional<CholeskyDecomposition> dense_chol_;
  // kSparse state.
  SparseMatrix sparse_gram_;
  std::optional<SparseCholesky> sparse_chol_;
  std::unique_ptr<Preconditioner> preconditioner_;
};

/// Policy-aware weighted least squares: `min_x || W^{1/2} (A x - b) ||`
/// for a dense or sparse A. The dense policy with default options is
/// bit-identical to the historical dense overload in least_squares.hpp
/// (which now simply forwards here). Throws std::runtime_error when the
/// normal equations are not positive definite.
Vector solve_weighted_least_squares(const LinearOperator& a,
                                    const Vector& weights, const Vector& b,
                                    const SolverOptions& options = {});

}  // namespace mtdgrid::linalg
