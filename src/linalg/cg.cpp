#include "linalg/cg.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/scope.hpp"

namespace mtdgrid::linalg {

JacobiPreconditioner::JacobiPreconditioner(const SparseMatrix& a)
    : inv_diag_(a.rows()) {
  assert(a.rows() == a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double d = a.coeff(i, i);
    if (!(d > 0.0))
      throw std::runtime_error(
          "Jacobi preconditioner: non-positive diagonal entry");
    inv_diag_[i] = 1.0 / d;
  }
}

Vector JacobiPreconditioner::apply(const Vector& r) const {
  assert(r.size() == inv_diag_.size());
  Vector z(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
  return z;
}

IncompleteCholeskyPreconditioner::IncompleteCholeskyPreconditioner(
    const SparseMatrix& a)
    : n_(a.rows()) {
  assert(a.rows() == a.cols());
  // Column k of the lower triangle of a symmetric A is row k restricted
  // to columns >= k (same values, ascending row indices).
  col_ptr_.assign(n_ + 1, 0);
  for (std::size_t k = 0; k < n_; ++k) {
    bool has_diag = false;
    for (std::size_t p = a.row_ptr()[k]; p < a.row_ptr()[k + 1]; ++p) {
      const std::size_t j = a.col_idx()[p];
      if (j < k) continue;
      if (j == k) has_diag = true;
      row_idx_.push_back(j);
      values_.push_back(a.values()[p]);
    }
    if (!has_diag) {
      failed_ = true;  // structurally singular: no diagonal entry
      return;
    }
    col_ptr_[k + 1] = row_idx_.size();
  }

  // IC(0): the full factorization restricted to the pattern of L.
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t kb = col_ptr_[k];
    const std::size_t ke = col_ptr_[k + 1];
    const double dkk = values_[kb];
    if (!(dkk > 0.0)) {
      failed_ = true;
      return;
    }
    const double lkk = std::sqrt(dkk);
    values_[kb] = lkk;
    for (std::size_t p = kb + 1; p < ke; ++p) values_[p] /= lkk;
    // Rank-1 update of the remaining columns, kept to existing entries.
    for (std::size_t p = kb + 1; p < ke; ++p) {
      const std::size_t j = row_idx_[p];
      const double ljk = values_[p];
      // Intersect column j's pattern with column k's (both ascending).
      std::size_t r = p;
      for (std::size_t q = col_ptr_[j]; q < col_ptr_[j + 1]; ++q) {
        const std::size_t i = row_idx_[q];
        while (r < ke && row_idx_[r] < i) ++r;
        if (r == ke) break;
        if (row_idx_[r] == i) values_[q] -= values_[r] * ljk;
      }
    }
  }
}

Vector IncompleteCholeskyPreconditioner::apply(const Vector& r) const {
  assert(!failed_);
  assert(r.size() == n_);
  Vector z = r;
  for (std::size_t j = 0; j < n_; ++j) {
    z[j] /= values_[col_ptr_[j]];
    const double zj = z[j];
    for (std::size_t p = col_ptr_[j] + 1; p < col_ptr_[j + 1]; ++p)
      z[row_idx_[p]] -= values_[p] * zj;
  }
  for (std::size_t j = n_; j-- > 0;) {
    double acc = z[j];
    for (std::size_t p = col_ptr_[j] + 1; p < col_ptr_[j + 1]; ++p)
      acc -= values_[p] * z[row_idx_[p]];
    z[j] = acc / values_[col_ptr_[j]];
  }
  return z;
}

CgResult preconditioned_cg(const SparseMatrix& a, const Vector& b,
                           const Preconditioner& m,
                           const CgOptions& options) {
  assert(a.rows() == a.cols());
  assert(b.size() == a.rows());
  const std::size_t n = a.rows();
  const std::size_t max_iterations =
      options.max_iterations > 0 ? options.max_iterations : 4 * n;

  obs::add(obs::Work::kCgSolves);
  obs::Span span("linalg.cg", "linalg");
  CgResult result;
  // Flush the iteration tally on every exit path (converged, breakdown,
  // budget exhausted) with one atomic add per solve.
  struct IterationFlush {
    const CgResult& result;
    ~IterationFlush() {
      obs::add(obs::Work::kCgIterations, result.iterations);
    }
  } flush{result};
  result.x = Vector(n);
  const double b_norm = b.norm();
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  Vector r = b;  // r = b - A*0
  Vector z = m.apply(r);
  Vector p = z;
  double rz = r.dot(z);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    const Vector ap = a * p;
    const double pap = p.dot(ap);
    if (!(pap > 0.0)) {  // breakdown: A not SPD along p
      obs::add(obs::Work::kCgBreakdowns);
      break;
    }
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) result.x[i] += alpha * p[i];
    for (std::size_t i = 0; i < n; ++i) r[i] -= alpha * ap[i];
    result.iterations = it + 1;
    result.relative_residual = r.norm() / b_norm;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
    z = m.apply(r);
    const double rz_next = r.dot(z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.relative_residual = (b - a * result.x).norm() / b_norm;
  result.converged = result.relative_residual <= options.tolerance;
  return result;
}

}  // namespace mtdgrid::linalg
