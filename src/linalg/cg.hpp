#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse_matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// Interface of a symmetric-positive-definite preconditioner M: `apply`
/// returns z = M^{-1} r. Used by `preconditioned_cg` and selected through
/// `SolverOptions::preconditioner` (linalg/backend.hpp).
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual Vector apply(const Vector& r) const = 0;
};

/// Jacobi (diagonal) preconditioner M = diag(A): free to set up, always
/// defined for an SPD matrix, and enough to fix the scale disparity of
/// normal-equation Gram matrices. The fallback when IC(0) breaks down.
class JacobiPreconditioner : public Preconditioner {
 public:
  /// `a` must be square with a positive diagonal.
  explicit JacobiPreconditioner(const SparseMatrix& a);

  Vector apply(const Vector& r) const override;

 private:
  Vector inv_diag_;
};

/// Incomplete Cholesky with zero fill-in, IC(0): L has exactly the lower-
/// triangular pattern of A, so setup and each apply cost O(nnz). Much
/// stronger than Jacobi on the diagonally dominant Gram matrices of the
/// DC measurement model; can break down (non-positive pivot) on general
/// SPD input, reported through `failed()` — callers then fall back to
/// Jacobi (see `NormalEquationsSolver`).
class IncompleteCholeskyPreconditioner : public Preconditioner {
 public:
  /// `a` must be square and symmetric with both triangles stored.
  explicit IncompleteCholeskyPreconditioner(const SparseMatrix& a);

  /// True when a pivot came out non-positive (breakdown).
  bool failed() const { return failed_; }

  /// z = (L L^T)^{-1} r. Requires `!failed()`.
  Vector apply(const Vector& r) const override;

 private:
  std::size_t n_ = 0;
  // L in CSC, diagonal entry first in each column.
  std::vector<std::size_t> col_ptr_;
  std::vector<std::size_t> row_idx_;
  std::vector<double> values_;
  bool failed_ = false;
};

/// Options for `preconditioned_cg`.
struct CgOptions {
  /// Convergence threshold on ||r_k|| / ||b|| (b == 0 converges at once).
  double tolerance = 1e-12;
  /// Iteration cap; 0 means 4n (normal-equation systems are well inside
  /// this once preconditioned).
  std::size_t max_iterations = 0;
};

/// Outcome of a CG solve.
struct CgResult {
  Vector x;                        ///< the (approximate) solution
  std::size_t iterations = 0;      ///< iterations performed
  bool converged = false;          ///< tolerance reached within the cap
  double relative_residual = 0.0;  ///< final ||b - A x|| / ||b||
};

/// Preconditioned conjugate gradients on the SPD system `A x = b`.
/// Entirely deterministic: fixed iteration order, ordered reductions, no
/// randomness — repeated calls produce bit-identical iterates.
CgResult preconditioned_cg(const SparseMatrix& a, const Vector& b,
                           const Preconditioner& m,
                           const CgOptions& options = {});

}  // namespace mtdgrid::linalg
