#include "linalg/cholesky.hpp"

#include <cassert>
#include <cmath>

namespace mtdgrid::linalg {

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a)
    : l_(a.rows(), a.cols()) {
  assert(a.rows() == a.cols() && "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  // Relative tolerance: a pivot this far below the matrix scale means the
  // matrix is numerically singular even if rounding left it barely positive.
  double max_diag = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    max_diag = std::max(max_diag, std::abs(a(j, j)));
  const double tol = 1e-12 * std::max(max_diag, 1e-300);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= tol) {
      failed_ = true;
      return;
    }
    l_(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / l_(j, j);
    }
  }
}

Vector CholeskyDecomposition::solve(const Vector& b) const {
  assert(!failed_ && "cannot solve with a failed factorization");
  assert(b.size() == l_.rows());
  const std::size_t n = l_.rows();

  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

}  // namespace mtdgrid::linalg
