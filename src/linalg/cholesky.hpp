#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// Cholesky factorization `A = L L^T` of a symmetric positive-definite
/// matrix, used for the weighted-least-squares normal equations
/// `(H^T W H) x = H^T W z` that drive the state estimator.
class CholeskyDecomposition {
 public:
  /// Factorizes the symmetric matrix `a`; only the lower triangle is read.
  explicit CholeskyDecomposition(const Matrix& a);

  /// True when the matrix was not positive definite within tolerance.
  bool failed() const { return failed_; }

  /// Solves `A x = b`. Requires `!failed()`.
  Vector solve(const Vector& b) const;

 private:
  Matrix l_;
  bool failed_ = false;
};

}  // namespace mtdgrid::linalg
