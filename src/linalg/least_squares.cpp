#include "linalg/least_squares.hpp"

#include <cassert>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace mtdgrid::linalg {

namespace {

/// Gram matrix A^T W A and moment vector A^T W b in one pass.
void form_normal_equations(const Matrix& a, const Vector& weights,
                           Matrix& gram) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  gram = Matrix(n, n);
  for (std::size_t k = 0; k < m; ++k) {
    const double w = weights[k];
    if (w == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double waki = w * a(k, i);
      if (waki == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        gram(i, j) += waki * a(k, j);
      }
    }
  }
}

}  // namespace

Vector solve_weighted_least_squares(const Matrix& a, const Vector& weights,
                                    const Vector& b) {
  assert(a.rows() == weights.size() && a.rows() == b.size());
  Matrix gram;
  form_normal_equations(a, weights, gram);

  Vector rhs(a.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double wb = weights[k] * b[k];
    if (wb == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) rhs[j] += a(k, j) * wb;
  }

  CholeskyDecomposition chol(gram);
  if (chol.failed())
    throw std::runtime_error(
        "weighted least squares: normal equations not positive definite "
        "(rank-deficient matrix or non-positive weights)");
  return chol.solve(rhs);
}

Vector solve_least_squares(const Matrix& a, const Vector& b) {
  QrDecomposition qr(a);
  return qr.solve_least_squares(b);
}

Matrix weighted_hat_matrix(const Matrix& a, const Vector& weights) {
  assert(a.rows() == weights.size());
  Matrix gram;
  form_normal_equations(a, weights, gram);
  CholeskyDecomposition chol(gram);
  if (chol.failed())
    throw std::runtime_error("weighted hat matrix: rank-deficient matrix");

  // K = A G^{-1} A^T W, built column by column: K e_j = A G^{-1} A^T W e_j.
  const std::size_t m = a.rows();
  Matrix k(m, m);
  for (std::size_t j = 0; j < m; ++j) {
    if (weights[j] == 0.0) continue;
    Vector atw(a.cols());
    for (std::size_t c = 0; c < a.cols(); ++c) atw[c] = a(j, c) * weights[j];
    const Vector x = chol.solve(atw);
    const Vector column = a * x;
    k.set_col(j, column);
  }
  return k;
}

}  // namespace mtdgrid::linalg
