#include "linalg/least_squares.hpp"

#include <cassert>
#include <stdexcept>

#include "linalg/backend.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace mtdgrid::linalg {

Matrix weighted_gram(const Matrix& a, const Vector& weights) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix gram(n, n);
  for (std::size_t k = 0; k < m; ++k) {
    const double w = weights[k];
    if (w == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double waki = w * a(k, i);
      if (waki == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        gram(i, j) += waki * a(k, j);
      }
    }
  }
  return gram;
}

Vector solve_weighted_least_squares(const Matrix& a, const Vector& weights,
                                    const Vector& b) {
  assert(a.rows() == weights.size() && a.rows() == b.size());
  return solve_weighted_least_squares(LinearOperator(a), weights, b);
}

Vector solve_least_squares(const Matrix& a, const Vector& b) {
  QrDecomposition qr(a);
  return qr.solve_least_squares(b);
}

Matrix weighted_hat_matrix(const Matrix& a, const Vector& weights) {
  assert(a.rows() == weights.size());
  const Matrix gram = weighted_gram(a, weights);
  CholeskyDecomposition chol(gram);
  if (chol.failed())
    throw std::runtime_error("weighted hat matrix: rank-deficient matrix");

  // K = A G^{-1} A^T W, built column by column: K e_j = A G^{-1} A^T W e_j.
  const std::size_t m = a.rows();
  Matrix k(m, m);
  for (std::size_t j = 0; j < m; ++j) {
    if (weights[j] == 0.0) continue;
    Vector atw(a.cols());
    for (std::size_t c = 0; c < a.cols(); ++c) atw[c] = a(j, c) * weights[j];
    const Vector x = chol.solve(atw);
    const Vector column = a * x;
    k.set_col(j, column);
  }
  return k;
}

}  // namespace mtdgrid::linalg
