#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// The weighted Gram matrix `A^T W A` of the normal equations, accumulated
/// in the library's reference order (row-major scan, zero contributions
/// skipped). This exact loop is the dense bit-exactness anchor: both the
/// dense `NormalEquationsSolver` backend (linalg/backend.hpp) and
/// `weighted_hat_matrix` build their Gram matrices through it.
Matrix weighted_gram(const Matrix& a, const Vector& weights);

/// Weighted least-squares solver for `min_x || W^{1/2} (A x - b) ||`.
///
/// `weights` holds the diagonal of W (one non-negative weight per row of A;
/// in state estimation these are reciprocal noise variances). Solves the
/// normal equations with a Cholesky factorization; requires A to have full
/// column rank. Throws std::runtime_error otherwise.
///
/// This is the dense storage policy of the backend API: it forwards to
/// `solve_weighted_least_squares(LinearOperator, ...)` in
/// linalg/backend.hpp, which also accepts a `SparseMatrix`.
Vector solve_weighted_least_squares(const Matrix& a, const Vector& weights,
                                    const Vector& b);

/// Ordinary least squares `min_x ||A x - b||` via Householder QR.
/// Requires A to have full column rank. Throws std::runtime_error otherwise.
Vector solve_least_squares(const Matrix& a, const Vector& b);

/// The weighted-projection "hat" matrix  K = A (A^T W A)^{-1} A^T W.
/// The state-estimation residual operator is (I - K); the paper's
/// Appendix A writes it as Gamma'. Requires full column rank.
Matrix weighted_hat_matrix(const Matrix& a, const Vector& weights);

}  // namespace mtdgrid::linalg
