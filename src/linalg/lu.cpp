#include "linalg/lu.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mtdgrid::linalg {

namespace {
constexpr double kPivotTolerance = 1e-12;
}

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a), p_(a.rows()) {
  assert(a.rows() == a.cols() && "LU requires a square matrix");
  const std::size_t n = a.rows();
  std::iota(p_.begin(), p_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest remaining |element| to (k, k).
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag < kPivotTolerance) {
      singular_ = true;
      continue;
    }
    if (pivot_row != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_(k, j), lu_(pivot_row, j));
      std::swap(p_[k], p_[pivot_row]);
      sign_ = -sign_;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) / lu_(k, k);
      lu_(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= factor * lu_(k, j);
      }
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  assert(!singular_ && "cannot solve with a singular factorization");
  assert(b.size() == lu_.rows());
  const std::size_t n = lu_.rows();

  // Forward substitution with permuted right-hand side: L y = P b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[p_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution: U x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  assert(b.rows() == lu_.rows());
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col(j)));
  return x;
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  LuDecomposition lu(a);
  if (lu.singular()) throw std::runtime_error("linalg::solve: singular matrix");
  return lu.solve(b);
}

Matrix inverse(const Matrix& a) {
  LuDecomposition lu(a);
  if (lu.singular())
    throw std::runtime_error("linalg::inverse: singular matrix");
  return lu.solve(Matrix::identity(a.rows()));
}

}  // namespace mtdgrid::linalg
