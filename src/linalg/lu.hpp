#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// LU factorization with partial pivoting of a square matrix: `P A = L U`.
///
/// Used to solve the DC power-flow equations `B θ = p` and small general
/// linear systems. Construction performs the factorization once; `solve`
/// can then be called repeatedly.
class LuDecomposition {
 public:
  /// Factorizes the square matrix `a`.
  explicit LuDecomposition(const Matrix& a);

  /// True when a pivot below `tolerance` was encountered (singular matrix).
  bool singular() const { return singular_; }

  /// Solves `A x = b`. Requires `!singular()`.
  Vector solve(const Vector& b) const;

  /// Solves `A X = B` column by column. Requires `!singular()`.
  Matrix solve(const Matrix& b) const;

  /// Determinant of the factorized matrix.
  double determinant() const;

 private:
  Matrix lu_;                   // packed L (unit diagonal) and U
  std::vector<std::size_t> p_;  // row permutation
  int sign_ = 1;                // permutation parity for the determinant
  bool singular_ = false;
};

/// Convenience wrapper: solves `A x = b` for square non-singular `A`.
/// Throws std::runtime_error when `A` is singular.
Vector solve(const Matrix& a, const Vector& b);

/// Convenience wrapper: inverse of a square non-singular matrix.
/// Throws std::runtime_error when `A` is singular.
Matrix inverse(const Matrix& a);

}  // namespace mtdgrid::linalg
