#include "linalg/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mtdgrid::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    assert(r.size() == cols_ && "all rows must have the same length");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::column(const Vector& v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

double& Matrix::operator()(std::size_t i, std::size_t j) {
  assert(i < rows_ && j < cols_);
  return data_[i * cols_ + j];
}

double Matrix::operator()(std::size_t i, std::size_t j) const {
  assert(i < rows_ && j < cols_);
  return data_[i * cols_ + j];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  assert(cols_ == v.size());
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Vector Matrix::transpose_times(const Vector& v) const {
  assert(rows_ == v.size());
  Vector out(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (std::size_t j = 0; j < cols_; ++j) out[j] += (*this)(i, j) * vi;
  }
  return out;
}

Matrix Matrix::transpose_times(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_);
  Matrix out(cols_, rhs.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const double aki = (*this)(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aki * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::row(std::size_t i) const {
  assert(i < rows_);
  Vector out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = (*this)(i, j);
  return out;
}

Vector Matrix::col(std::size_t j) const {
  assert(j < cols_);
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::set_row(std::size_t i, const Vector& v) {
  assert(i < rows_ && v.size() == cols_);
  for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) = v[j];
}

void Matrix::set_col(std::size_t j, const Vector& v) {
  assert(j < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nrows,
                     std::size_t ncols) const {
  assert(r0 + nrows <= rows_ && c0 + ncols <= cols_);
  Matrix out(nrows, ncols);
  for (std::size_t i = 0; i < nrows; ++i)
    for (std::size_t j = 0; j < ncols; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
  return out;
}

Matrix Matrix::hstack(const Matrix& right) const {
  assert(rows_ == right.rows_);
  Matrix out(rows_, cols_ + right.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(i, j) = (*this)(i, j);
    for (std::size_t j = 0; j < right.cols_; ++j)
      out(i, cols_ + j) = right(i, j);
  }
  return out;
}

Matrix Matrix::vstack(const Matrix& below) const {
  assert(cols_ == below.cols_);
  Matrix out(rows_ + below.rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(i, j) = (*this)(i, j);
  for (std::size_t i = 0; i < below.rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(rows_ + i, j) = below(i, j);
  return out;
}

Matrix Matrix::without_col(std::size_t jskip) const {
  assert(jskip < cols_);
  Matrix out(rows_, cols_ - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::size_t jo = 0;
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j == jskip) continue;
      out(i, jo++) = (*this)(i, j);
    }
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::abs(v));
  return acc;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix m, double s) { return m *= s; }
Matrix operator*(double s, Matrix m) { return m *= s; }

double max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      acc = std::max(acc, std::abs(a(i, j) - b(i, j)));
  return acc;
}

}  // namespace mtdgrid::linalg
