#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// Dense row-major real matrix with value semantics.
///
/// Sized for the problems in this library (measurement matrices of a few
/// dozen rows/columns), so all algorithms are straightforward dense ones.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a `rows` x `cols` matrix with every element set to `value`.
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Creates a matrix from nested braces, e.g. `Matrix{{1,2},{3,4}}`.
  /// All rows must have the same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// The `n` x `n` identity matrix.
  static Matrix identity(std::size_t n);

  /// A square matrix with `d` on the diagonal and zeros elsewhere.
  static Matrix diagonal(const Vector& d);

  /// A single-column matrix holding `v`.
  static Matrix column(const Vector& v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Element access (asserted in debug builds).
  double& operator()(std::size_t i, std::size_t j);
  double operator()(std::size_t i, std::size_t j) const;

  // --- arithmetic --------------------------------------------------------
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Matrix product `this * rhs`; inner dimensions must agree.
  Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product `this * v`.
  Vector operator*(const Vector& v) const;

  /// Transpose as a new matrix.
  Matrix transposed() const;

  /// `this^T * v` without materializing the transpose.
  Vector transpose_times(const Vector& v) const;

  /// `this^T * rhs` without materializing the transpose.
  Matrix transpose_times(const Matrix& rhs) const;

  /// Row `i` as a vector.
  Vector row(std::size_t i) const;

  /// Column `j` as a vector.
  Vector col(std::size_t j) const;

  /// Overwrites row `i` with `v` (sizes must match).
  void set_row(std::size_t i, const Vector& v);

  /// Overwrites column `j` with `v` (sizes must match).
  void set_col(std::size_t j, const Vector& v);

  /// Contiguous sub-block of size `nrows` x `ncols` starting at (r0, c0).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nrows,
               std::size_t ncols) const;

  /// Horizontal concatenation `[this | right]` (row counts must match).
  Matrix hstack(const Matrix& right) const;

  /// Vertical concatenation `[this; below]` (column counts must match).
  Matrix vstack(const Matrix& below) const;

  /// Copy of this matrix with column `j` removed.
  Matrix without_col(std::size_t j) const;

  /// Frobenius norm (square root of the sum of squared elements).
  double frobenius_norm() const;

  /// Largest absolute element.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double s);
Matrix operator*(double s, Matrix m);

/// Maximum absolute elementwise difference between equally sized matrices.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace mtdgrid::linalg
