#include "linalg/qr.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mtdgrid::linalg {

QrDecomposition::QrDecomposition(const Matrix& a) {
  assert(a.rows() >= a.cols() && "QR requires rows >= cols");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Householder reduction: w stores the reflectors, r becomes triangular.
  // Reflector applications sweep whole rows (the storage is row-major), so
  // the inner loops run over contiguous memory.
  Matrix w(m, n);  // column j holds the j-th (unit) Householder vector
  Matrix r = a;
  Vector v(m);
  std::vector<double> dots(n);
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;  // column already zero below the diagonal

    const double alpha = (r(k, k) >= 0.0) ? -norm : norm;
    v[k] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i] = r(i, k);
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) vnorm2 += v[i] * v[i];
    if (vnorm2 == 0.0) continue;

    // Apply the reflector to the remaining columns of R: first gather the
    // dot products v^T R row by row, then update row by row.
    for (std::size_t j = k; j < n; ++j) dots[j] = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      const double vi = v[i];
      if (vi == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) dots[j] += vi * r(i, j);
    }
    const double beta = 2.0 / vnorm2;
    for (std::size_t j = k; j < n; ++j) dots[j] *= beta;
    for (std::size_t i = k; i < m; ++i) {
      const double vi = v[i];
      if (vi == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) r(i, j) -= dots[j] * vi;
    }
    const double vnorm = std::sqrt(vnorm2);
    for (std::size_t i = k; i < m; ++i) w(i, k) = v[i] / vnorm;
  }

  // Accumulate the thin Q by applying the reflectors to I's first n columns,
  // with the same row-sweeping loop structure.
  q_ = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) q_(j, j) = 1.0;
  for (std::size_t kk = n; kk-- > 0;) {
    for (std::size_t j = 0; j < n; ++j) dots[j] = 0.0;
    for (std::size_t i = kk; i < m; ++i) {
      const double wi = w(i, kk);
      if (wi == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) dots[j] += wi * q_(i, j);
    }
    for (std::size_t j = 0; j < n; ++j) dots[j] *= 2.0;
    for (std::size_t i = kk; i < m; ++i) {
      const double wi = w(i, kk);
      if (wi == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) q_(i, j) -= dots[j] * wi;
    }
  }

  r_ = r.block(0, 0, n, n);
}

std::size_t QrDecomposition::rank(double tol) const {
  double max_diag = 0.0;
  for (std::size_t i = 0; i < r_.rows(); ++i)
    max_diag = std::max(max_diag, std::abs(r_(i, i)));
  if (max_diag == 0.0) return 0;
  std::size_t rk = 0;
  for (std::size_t i = 0; i < r_.rows(); ++i)
    if (std::abs(r_(i, i)) > tol * max_diag) ++rk;
  return rk;
}

Vector QrDecomposition::solve_least_squares(const Vector& b) const {
  assert(b.size() == q_.rows());
  const std::size_t n = r_.rows();
  if (rank() < n)
    throw std::runtime_error("QR least squares: rank-deficient matrix");
  const Vector qtb = q_.transpose_times(b);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = qtb[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= r_(ii, j) * x[j];
    x[ii] = acc / r_(ii, ii);
  }
  return x;
}

Matrix orthonormal_basis_qr(const Matrix& a, double tol) {
  if (a.cols() == 0) return Matrix(a.rows(), 0);
  // Wide matrices are necessarily rank deficient in their columns, and
  // QrDecomposition requires rows >= cols: route them (and any
  // rank-deficient tall input) through the rank-revealing basis.
  if (a.rows() < a.cols()) return orthonormal_column_basis(a, tol);
  const QrDecomposition qr(a);
  if (qr.rank(tol) == a.cols()) return qr.q_thin();
  return orthonormal_column_basis(a, tol);
}

Matrix orthonormal_column_basis(const Matrix& a, double tol) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Modified Gram-Schmidt with one re-orthogonalization pass; columns whose
  // residual norm collapses below tol * original-norm are dropped.
  std::vector<Vector> basis;
  double max_col_norm = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    max_col_norm = std::max(max_col_norm, a.col(j).norm());
  if (max_col_norm == 0.0) return Matrix(m, 0);

  for (std::size_t j = 0; j < n; ++j) {
    Vector v = a.col(j);
    for (int pass = 0; pass < 2; ++pass) {
      for (const Vector& q : basis) {
        const double proj = q.dot(v);
        v -= proj * q;
      }
    }
    const double vn = v.norm();
    if (vn > tol * max_col_norm) {
      basis.push_back(v / vn);
    }
  }

  Matrix out(m, basis.size());
  for (std::size_t j = 0; j < basis.size(); ++j) out.set_col(j, basis[j]);
  return out;
}

std::size_t rank(const Matrix& a, double tol) {
  if (a.rows() >= a.cols()) return orthonormal_column_basis(a, tol).cols();
  return orthonormal_column_basis(a.transposed(), tol).cols();
}

}  // namespace mtdgrid::linalg
