#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// Householder QR factorization `A = Q R` of an m x n matrix with m >= n.
///
/// The thin factor `Q` (m x n with orthonormal columns) provides the
/// orthonormal column-space bases needed for the principal-angle
/// computations at the heart of the MTD design criterion.
class QrDecomposition {
 public:
  /// Factorizes `a` (requires `a.rows() >= a.cols()`).
  explicit QrDecomposition(const Matrix& a);

  /// Thin orthonormal factor: m x n, `Q^T Q = I`.
  const Matrix& q_thin() const { return q_; }

  /// Upper-triangular factor: n x n.
  const Matrix& r() const { return r_; }

  /// Numerical rank: the number of diagonal entries of R whose magnitude
  /// exceeds `tol * max|R_ii|`.
  std::size_t rank(double tol = 1e-10) const;

  /// Least-squares solution of `A x = b` via `R x = Q^T b`.
  /// Requires full column rank.
  Vector solve_least_squares(const Vector& b) const;

 private:
  Matrix q_;
  Matrix r_;
};

/// Orthonormal basis for the column space of `a` (columns with numerically
/// non-zero R pivots are kept; `a` may be rank deficient). Implemented via
/// modified Gram-Schmidt with re-orthogonalization for stability.
Matrix orthonormal_column_basis(const Matrix& a, double tol = 1e-10);

/// Orthonormal column-space basis via Householder thin QR — the fast path
/// for the full-column-rank matrices of the measurement model (a single
/// Householder sweep instead of doubly re-orthogonalized Gram-Schmidt).
/// Wide or numerically rank-deficient inputs fall back to
/// `orthonormal_column_basis`, so the result is always a basis of Col(a)
/// with exactly rank(a) columns, for any shape.
Matrix orthonormal_basis_qr(const Matrix& a, double tol = 1e-10);

/// Numerical rank of an arbitrary matrix (via the basis construction above).
std::size_t rank(const Matrix& a, double tol = 1e-10);

}  // namespace mtdgrid::linalg
