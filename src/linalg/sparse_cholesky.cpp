#include "linalg/sparse_cholesky.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "obs/scope.hpp"

namespace mtdgrid::linalg {

std::vector<std::size_t> minimum_degree_ordering(const SparseMatrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  // Elimination graph: symmetric adjacency (union of pattern and its
  // transpose), diagonal excluded. std::set keeps neighbor scans sorted,
  // so the whole procedure is deterministic.
  std::vector<std::set<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
      const std::size_t j = a.col_idx()[p];
      if (i == j) continue;
      adj[i].insert(j);
      adj[j].insert(i);
    }
  }

  std::vector<std::size_t> perm;
  perm.reserve(n);
  std::vector<bool> eliminated(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    // Minimum degree, ties to the lowest original index.
    std::size_t best = n;
    std::size_t best_degree = n + 1;
    for (std::size_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      if (adj[v].size() < best_degree) {
        best = v;
        best_degree = adj[v].size();
      }
    }
    perm.push_back(best);
    eliminated[best] = true;
    // Eliminate: neighbors of `best` become a clique.
    const std::vector<std::size_t> nbrs(adj[best].begin(), adj[best].end());
    for (const std::size_t u : nbrs) {
      adj[u].erase(best);
      for (const std::size_t v : nbrs)
        if (v != u) adj[u].insert(v);
    }
    adj[best].clear();
  }
  return perm;
}

SparseCholesky::SparseCholesky(const SparseMatrix& a)
    : SparseCholesky(a, minimum_degree_ordering(a)) {}

SparseCholesky::SparseCholesky(const SparseMatrix& a,
                               std::vector<std::size_t> perm)
    : n_(a.rows()), perm_(std::move(perm)) {
  assert(a.rows() == a.cols());
  assert(perm_.size() == n_);
  inv_perm_.assign(n_, 0);
  for (std::size_t k = 0; k < n_; ++k) inv_perm_[perm_[k]] = k;
  factorize(a);
}

void SparseCholesky::factorize(const SparseMatrix& a) {
  obs::add(obs::Work::kCholeskyFactorizations);
  obs::Span span("linalg.sparse_cholesky", "linalg");
  const std::size_t n = n_;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Permuted matrix Ap(i, j) = A(perm_[i], perm_[j]); symmetric, so CSR
  // row k doubles as CSC column k.
  TripletBuilder builder(n, n);
  builder.reserve(a.nnz());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p)
      builder.add(inv_perm_[i], inv_perm_[a.col_idx()[p]], a.values()[p]);
  const SparseMatrix ap = builder.build();

  // Same relative positive-definiteness tolerance as the dense
  // CholeskyDecomposition (dense stays the bit-exact reference; the
  // failure contract must agree).
  double max_diag = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    max_diag = std::max(max_diag, std::abs(ap.coeff(k, k)));
  const double tol = 1e-12 * std::max(max_diag, 1e-300);

  // Elimination tree of the upper-triangular pattern (path compression
  // via `ancestor`).
  std::vector<std::size_t> parent(n, kNone);
  std::vector<std::size_t> ancestor(n, kNone);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t p = ap.row_ptr()[k]; p < ap.row_ptr()[k + 1]; ++p) {
      std::size_t i = ap.col_idx()[p];
      while (i != kNone && i < k) {
        const std::size_t next = ancestor[i];
        ancestor[i] = k;
        if (next == kNone) parent[i] = k;
        i = next;
      }
    }
  }

  // Up-looking numeric factorization. Columns of L grow by appended rows
  // (row indices ascend because k does); the diagonal is entry 0.
  std::vector<std::vector<std::size_t>> col_rows(n);
  std::vector<std::vector<double>> col_vals(n);
  std::vector<double> x(n, 0.0);
  std::vector<std::size_t> visited(n, kNone);
  std::vector<std::size_t> stack(n, 0);

  for (std::size_t k = 0; k < n; ++k) {
    // Pattern of row k of L: the etree reach of the above-diagonal
    // entries of column k, in topological order (cs_ereach).
    std::size_t top = n;
    visited[k] = k;
    for (std::size_t p = ap.row_ptr()[k]; p < ap.row_ptr()[k + 1]; ++p) {
      std::size_t i = ap.col_idx()[p];
      if (i > k) continue;
      x[i] = ap.values()[p];
      std::size_t len = 0;
      while (visited[i] != k) {
        stack[len++] = i;
        visited[i] = k;
        i = parent[i];
      }
      while (len > 0) stack[--top] = stack[--len];
    }

    double d = x[k];
    x[k] = 0.0;
    for (std::size_t si = top; si < n; ++si) {
      const std::size_t j = stack[si];
      const double lkj = x[j] / col_vals[j][0];
      x[j] = 0.0;
      for (std::size_t p = 1; p < col_rows[j].size(); ++p)
        x[col_rows[j][p]] -= col_vals[j][p] * lkj;
      d -= lkj * lkj;
      col_rows[j].push_back(k);
      col_vals[j].push_back(lkj);
    }
    if (d <= tol) {
      failed_ = true;
      return;
    }
    col_rows[k].push_back(k);
    col_vals[k].push_back(std::sqrt(d));
  }

  // Compress to CSC for the solves.
  l_col_ptr_.assign(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j)
    l_col_ptr_[j + 1] = l_col_ptr_[j] + col_rows[j].size();
  l_row_idx_.reserve(l_col_ptr_[n]);
  l_values_.reserve(l_col_ptr_[n]);
  for (std::size_t j = 0; j < n; ++j) {
    l_row_idx_.insert(l_row_idx_.end(), col_rows[j].begin(),
                      col_rows[j].end());
    l_values_.insert(l_values_.end(), col_vals[j].begin(), col_vals[j].end());
  }
  obs::add(obs::Work::kCholeskyFactorNnz, l_values_.size());
}

Vector SparseCholesky::solve(const Vector& b) const {
  assert(!failed_);
  assert(b.size() == n_);
  Vector z(n_);
  for (std::size_t k = 0; k < n_; ++k) z[k] = b[perm_[k]];
  // Forward solve L y = P b (column-oriented).
  for (std::size_t j = 0; j < n_; ++j) {
    z[j] /= l_values_[l_col_ptr_[j]];
    const double zj = z[j];
    for (std::size_t p = l_col_ptr_[j] + 1; p < l_col_ptr_[j + 1]; ++p)
      z[l_row_idx_[p]] -= l_values_[p] * zj;
  }
  // Back solve L^T x = y (each column of L is a row of L^T).
  for (std::size_t j = n_; j-- > 0;) {
    double acc = z[j];
    for (std::size_t p = l_col_ptr_[j] + 1; p < l_col_ptr_[j + 1]; ++p)
      acc -= l_values_[p] * z[l_row_idx_[p]];
    z[j] = acc / l_values_[l_col_ptr_[j]];
  }
  Vector x(n_);
  for (std::size_t k = 0; k < n_; ++k) x[perm_[k]] = z[k];
  return x;
}

}  // namespace mtdgrid::linalg
