#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse_matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// Fill-reducing AMD-style minimum-degree ordering for the symmetric
/// pattern of `a` (an n x n sparse matrix; values are ignored, the union
/// of the pattern and its transpose is used). Returns a permutation
/// `perm` with perm[k] = the original index eliminated at step k.
///
/// This is the classic minimum-degree heuristic on the elimination graph:
/// repeatedly eliminate a vertex of minimum degree and connect its
/// neighbors into a clique. Ties break on the lowest original index, so
/// the ordering — and everything factored through it — is deterministic.
/// (Full AMD adds supernode detection and approximate degrees; at the
/// 10^2..10^4 state dimensions of the bundled and ROADMAP grids the exact
/// greedy variant is fast enough and typically within a few percent of
/// AMD's fill.)
std::vector<std::size_t> minimum_degree_ordering(const SparseMatrix& a);

/// Sparse Cholesky factorization `P A P^T = L L^T` of a symmetric
/// positive-definite matrix, the direct backend behind
/// `NormalEquationsSolver` for `StoragePolicy::kSparse`.
///
/// The factorization is simplicial up-looking (CSparse-style): an
/// elimination tree drives the symbolic pattern of each row of L, and a
/// sparse triangular solve produces its values. The permutation defaults
/// to `minimum_degree_ordering`; pass an explicit one to override (e.g.
/// the identity, for tests pinning fill). Positive-definiteness uses the
/// same relative tolerance as the dense `CholeskyDecomposition`:
/// a pivot d <= 1e-12 * max_diagonal marks the factorization failed.
class SparseCholesky {
 public:
  /// Factorizes `a` (both triangles must be stored; only the lower
  /// triangle of the permuted matrix is read).
  explicit SparseCholesky(const SparseMatrix& a);

  /// Factorizes with a caller-supplied elimination order.
  SparseCholesky(const SparseMatrix& a, std::vector<std::size_t> perm);

  /// True when the matrix was not positive definite within tolerance.
  bool failed() const { return failed_; }

  /// Solves `A x = b`. Requires `!failed()`.
  Vector solve(const Vector& b) const;

  /// The elimination order used (perm[k] = original index at step k).
  const std::vector<std::size_t>& permutation() const { return perm_; }

  /// Stored entries of L including the unit diagonal's slot — the fill
  /// metric the ordering tests pin.
  std::size_t factor_nnz() const { return l_values_.size(); }

 private:
  void factorize(const SparseMatrix& a);

  std::size_t n_ = 0;
  std::vector<std::size_t> perm_;     // elimination order
  std::vector<std::size_t> inv_perm_;  // inv_perm_[perm_[k]] = k
  // L in CSC: column j spans [l_col_ptr_[j], l_col_ptr_[j+1]), row
  // indices ascending, the diagonal entry first.
  std::vector<std::size_t> l_col_ptr_;
  std::vector<std::size_t> l_row_idx_;
  std::vector<double> l_values_;
  bool failed_ = false;
};

}  // namespace mtdgrid::linalg
