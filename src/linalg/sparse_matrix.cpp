#include "linalg/sparse_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mtdgrid::linalg {

SparseMatrix SparseMatrix::from_dense(const Matrix& a, double drop_tol) {
  SparseMatrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double v = a(i, j);
      if (v == 0.0 || std::abs(v) <= drop_tol) continue;
      out.col_idx_.push_back(j);
      out.values_.push_back(v);
    }
    out.row_ptr_[i + 1] = out.values_.size();
  }
  return out;
}

Matrix SparseMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p)
      out(i, col_idx_[p]) = values_[p];
  return out;
}

double SparseMatrix::coeff(std::size_t i, std::size_t j) const {
  assert(i < rows_ && j < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector SparseMatrix::operator*(const Vector& v) const {
  assert(v.size() == cols_);
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p)
      acc += values_[p] * v[col_idx_[p]];
    out[i] = acc;
  }
  return out;
}

Vector SparseMatrix::transpose_times(const Vector& v) const {
  assert(v.size() == rows_);
  Vector out(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p)
      out[col_idx_[p]] += values_[p] * vi;
  }
  return out;
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix out(cols_, rows_);
  // Counting sort by column: two passes, no comparisons — O(nnz + cols).
  std::vector<std::size_t> count(cols_, 0);
  for (const std::size_t j : col_idx_) ++count[j];
  for (std::size_t j = 0; j < cols_; ++j)
    out.row_ptr_[j + 1] = out.row_ptr_[j] + count[j];
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());
  std::vector<std::size_t> next(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const std::size_t q = next[col_idx_[p]]++;
      out.col_idx_[q] = i;  // row indices of the transpose stay ascending
      out.values_[q] = values_[p];
    }
  }
  return out;
}

CscView SparseMatrix::csc() const {
  const SparseMatrix t = transposed();
  CscView view;
  view.rows = rows_;
  view.cols = cols_;
  view.col_ptr = t.row_ptr_;
  view.row_idx = t.col_idx_;
  view.values = t.values_;
  return view;
}

SparseMatrix SparseMatrix::weighted_gram(const Vector& w) const {
  assert(w.size() == rows_);
  TripletBuilder builder(cols_, cols_);
  std::size_t contributions = 0;
  for (std::size_t k = 0; k < rows_; ++k) {
    const std::size_t len = row_ptr_[k + 1] - row_ptr_[k];
    contributions += len * len;
  }
  builder.reserve(contributions);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double wk = w[k];
    if (wk == 0.0) continue;
    for (std::size_t p = row_ptr_[k]; p < row_ptr_[k + 1]; ++p) {
      const double left = wk * values_[p];
      if (left == 0.0) continue;
      builder.add(col_idx_[p], col_idx_[p], left * values_[p]);
      // One product feeds both (i,j) and (j,i), so the assembled Gram is
      // exactly symmetric ((w*vi)*vj and (w*vj)*vi can differ by an ulp).
      for (std::size_t q = p + 1; q < row_ptr_[k + 1]; ++q) {
        const double contribution = left * values_[q];
        builder.add(col_idx_[p], col_idx_[q], contribution);
        builder.add(col_idx_[q], col_idx_[p], contribution);
      }
    }
  }
  return builder.build();
}

double SparseMatrix::max_abs() const {
  double best = 0.0;
  for (const double v : values_) best = std::max(best, std::abs(v));
  return best;
}

double max_abs_diff(const SparseMatrix& a, const SparseMatrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    std::size_t pa = a.row_ptr()[i], pb = b.row_ptr()[i];
    const std::size_t ea = a.row_ptr()[i + 1], eb = b.row_ptr()[i + 1];
    while (pa < ea || pb < eb) {
      const std::size_t ja = pa < ea ? a.col_idx()[pa] : a.cols();
      const std::size_t jb = pb < eb ? b.col_idx()[pb] : b.cols();
      double diff = 0.0;
      if (ja < jb) {
        diff = a.values()[pa++];
      } else if (jb < ja) {
        diff = b.values()[pb++];
      } else {
        diff = a.values()[pa++] - b.values()[pb++];
      }
      best = std::max(best, std::abs(diff));
    }
  }
  return best;
}

void TripletBuilder::add(std::size_t i, std::size_t j, double value) {
  assert(i < rows_ && j < cols_);
  triplets_.push_back({i, j, value});
}

SparseMatrix TripletBuilder::build() const {
  std::vector<Triplet> sorted = triplets_;
  // Stable: duplicates keep insertion order, so their sum below matches
  // the order the caller emitted them in (bit-for-bit reproducible).
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Triplet& a, const Triplet& b) {
                     if (a.row != b.row) return a.row < b.row;
                     return a.col < b.col;
                   });
  SparseMatrix out(rows_, cols_);
  out.col_idx_.reserve(sorted.size());
  out.values_.reserve(sorted.size());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < rows_; ++i) {
    while (pos < sorted.size() && sorted[pos].row == i) {
      const std::size_t j = sorted[pos].col;
      double acc = 0.0;
      while (pos < sorted.size() && sorted[pos].row == i &&
             sorted[pos].col == j)
        acc += sorted[pos++].value;
      out.col_idx_.push_back(j);
      out.values_.push_back(acc);
    }
    out.row_ptr_[i + 1] = out.values_.size();
  }
  return out;
}

}  // namespace mtdgrid::linalg
