#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// Column-compressed (CSC) layout of a sparse matrix, the natural
/// orientation for the sparse Cholesky factorization (columns are
/// eliminated left to right). Produced by `SparseMatrix::csc()`; the
/// vectors are owned, so the view outlives its source matrix.
struct CscView {
  std::size_t rows = 0;               ///< row count
  std::size_t cols = 0;               ///< column count
  std::vector<std::size_t> col_ptr;   ///< size cols+1; column j spans
                                      ///< [col_ptr[j], col_ptr[j+1])
  std::vector<std::size_t> row_idx;   ///< row index per stored entry
  std::vector<double> values;         ///< value per stored entry
};

/// Compressed-sparse-row (CSR) real matrix with value semantics — the
/// storage behind the `StoragePolicy::kSparse` side of the linalg backend
/// (DESIGN.md "Storage policy & sparse backbone").
///
/// Rows are stored back to back: row i occupies entry range
/// [row_ptr()[i], row_ptr()[i+1]) of col_idx()/values(), with column
/// indices strictly ascending inside each row. Assembly goes through
/// `TripletBuilder` (duplicates summed in insertion order, so rebuild
/// sums match an equivalent dense accumulation bit for bit) or
/// `from_dense`. All operations are deterministic: iteration order is
/// fixed by the layout, never by hashing or threading.
class SparseMatrix {
 public:
  /// Creates an empty 0x0 matrix.
  SparseMatrix() = default;

  /// Creates a `rows` x `cols` matrix with no stored entries.
  SparseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Compresses a dense matrix, storing entries with |a(i,j)| > drop_tol
  /// (the default keeps every exact nonzero).
  static SparseMatrix from_dense(const Matrix& a, double drop_tol = 0.0);

  /// Expands to a dense matrix (tests, small-problem interop).
  Matrix to_dense() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Number of stored entries.
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Value at (i, j): binary search inside row i, zero when not stored.
  double coeff(std::size_t i, std::size_t j) const;

  /// Matrix-vector product `this * v`.
  Vector operator*(const Vector& v) const;

  /// `this^T * v` without materializing the transpose.
  Vector transpose_times(const Vector& v) const;

  /// Transpose as a new CSR matrix (equivalently: the CSC layout of this
  /// matrix re-labeled as CSR).
  SparseMatrix transposed() const;

  /// Column-compressed layout of this matrix, for factorization.
  CscView csc() const;

  /// The weighted Gram matrix `this^T diag(w) this` as a sparse n x n
  /// matrix (both triangles stored). `w` must have one entry per row.
  /// Deterministic: contributions accumulate in row-major scan order.
  SparseMatrix weighted_gram(const Vector& w) const;

  /// Largest absolute stored entry (0 for an empty matrix).
  double max_abs() const;

 private:
  friend class TripletBuilder;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Maximum absolute elementwise difference between equally sized sparse
/// matrices (walks the union of the two patterns).
double max_abs_diff(const SparseMatrix& a, const SparseMatrix& b);

/// Coordinate-format assembly buffer for `SparseMatrix`.
///
/// `add` appends (i, j, v) triplets in any order; `build` sorts them
/// stably by (row, column) and sums duplicates in insertion order, so the
/// value of an entry assembled from k triplets equals the left-to-right
/// sum of those k contributions — the same order a dense `+=` loop over
/// the triplets would produce. Explicit zeros are kept (a stored zero and
/// an absent entry differ only in pattern).
class TripletBuilder {
 public:
  TripletBuilder(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Appends one contribution to entry (i, j); duplicates are summed by
  /// `build`. Asserted in-range in debug builds.
  void add(std::size_t i, std::size_t j, double value);

  /// Pre-sizes the triplet buffer.
  void reserve(std::size_t count) { triplets_.reserve(count); }

  /// Assembles the CSR matrix. The builder may be reused afterwards (the
  /// triplet list is left untouched).
  SparseMatrix build() const;

 private:
  struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
  };

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Triplet> triplets_;
};

}  // namespace mtdgrid::linalg
