#include "linalg/subspace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace mtdgrid::linalg {

namespace {

/// Bjorck-Golub core: theta_i = acos(sigma_i(Qa^T Qb)), ascending. Rounding
/// can push cosines a hair beyond [0, 1], hence the clamp.
std::vector<double> angles_from_core(const Matrix& qa, const Matrix& qb) {
  const Matrix overlap = qa.transpose_times(qb);
  const SvdDecomposition svd(overlap);
  const std::size_t count = std::min(qa.cols(), qb.cols());
  std::vector<double> angles;
  angles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double c = std::clamp(svd.singular_values()[i], 0.0, 1.0);
    angles.push_back(std::acos(c));
  }
  std::sort(angles.begin(), angles.end());
  return angles;
}

}  // namespace

std::vector<double> principal_angles(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && "subspaces must live in the same space");
  const Matrix qa = orthonormal_column_basis(a);
  const Matrix qb = orthonormal_column_basis(b);
  if (qa.cols() == 0 || qb.cols() == 0) return {};
  return angles_from_core(qa, qb);
}

std::vector<double> principal_angles_qr(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && "subspaces must live in the same space");
  const Matrix qa = orthonormal_basis_qr(a);
  const Matrix qb = orthonormal_basis_qr(b);
  if (qa.cols() == 0 || qb.cols() == 0) return {};
  return angles_from_core(qa, qb);
}

double largest_principal_angle_qr(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && "subspaces must live in the same space");
  const Matrix qa = orthonormal_basis_qr(a);
  const Matrix qb = orthonormal_basis_qr(b);
  assert(qa.cols() > 0 && qb.cols() > 0 &&
         "both matrices must have non-trivial ranges");
  const Matrix overlap = qa.transpose_times(qb);
  const double c = std::clamp(smallest_singular_value(overlap), 0.0, 1.0);
  return std::acos(c);
}

double smallest_principal_angle(const Matrix& a, const Matrix& b) {
  const auto angles = principal_angles(a, b);
  assert(!angles.empty() && "both matrices must have non-trivial ranges");
  return angles.front();
}

double largest_principal_angle(const Matrix& a, const Matrix& b) {
  const auto angles = principal_angles(a, b);
  assert(!angles.empty() && "both matrices must have non-trivial ranges");
  return angles.back();
}

bool column_space_contains(const Matrix& a, const Matrix& b, double tol) {
  assert(a.rows() == b.rows());
  const Matrix qa = orthonormal_column_basis(a);
  // b is inside Col(A) iff the residual b - Qa Qa^T b vanishes.
  const Matrix projected = qa * (qa.transpose_times(b));
  double scale = std::max(1.0, b.max_abs());
  return max_abs_diff(projected, b) <= tol * scale;
}

}  // namespace mtdgrid::linalg
