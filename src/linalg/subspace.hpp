#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace mtdgrid::linalg {

/// Principal angles between the column spaces of two matrices, in radians,
/// sorted ascending (theta_1 = smallest). Computed the Bjorck-Golub way:
/// orthonormal bases Q1, Q2, then theta_i = acos(sigma_i(Q1^T Q2)).
///
/// The number of angles returned is min(rank(A), rank(B)).
std::vector<double> principal_angles(const Matrix& a, const Matrix& b);

/// The smallest principal angle (SPA) between Col(A) and Col(B), in
/// radians in [0, pi/2]. This is the gamma(H, H') metric of the paper:
/// 0 means the subspaces share a direction (perfectly aligned in the
/// rank-1 sense); pi/2 means they are fully orthogonal.
double smallest_principal_angle(const Matrix& a, const Matrix& b);

/// Largest principal angle, in radians in [0, pi/2].
double largest_principal_angle(const Matrix& a, const Matrix& b);

/// Principal angles computed the fast way: Householder thin-QR bases (with
/// a rank-revealing fallback) and the SVD of the small core Q1^T Q2. The
/// angles agree with `principal_angles` to ~1e-12 for the well-separated
/// angles of the measurement model (both routes are cosine-based; they
/// differ only through basis rounding).
std::vector<double> principal_angles_qr(const Matrix& a, const Matrix& b);

/// Largest principal angle via the QR route, but extracting ONLY the
/// smallest singular value of the core (tridiagonal Sturm bisection instead
/// of a full Jacobi SVD). This is the hot-path gamma(H, H') evaluation:
/// ~15x faster than `largest_principal_angle` at IEEE 57-bus scale while
/// matching it to ~1e-12 rad.
double largest_principal_angle_qr(const Matrix& a, const Matrix& b);

/// True when every column of `b` lies in Col(A) within tolerance, i.e.
/// rank([A | b]) == rank(A). This is the Proposition-1 stealth test.
bool column_space_contains(const Matrix& a, const Matrix& b,
                           double tol = 1e-8);

}  // namespace mtdgrid::linalg
