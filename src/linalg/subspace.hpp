#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace mtdgrid::linalg {

/// Principal angles between the column spaces of two matrices, in radians,
/// sorted ascending (theta_1 = smallest). Computed the Bjorck-Golub way:
/// orthonormal bases Q1, Q2, then theta_i = acos(sigma_i(Q1^T Q2)).
///
/// The number of angles returned is min(rank(A), rank(B)).
std::vector<double> principal_angles(const Matrix& a, const Matrix& b);

/// The smallest principal angle (SPA) between Col(A) and Col(B), in
/// radians in [0, pi/2]. This is the gamma(H, H') metric of the paper:
/// 0 means the subspaces share a direction (perfectly aligned in the
/// rank-1 sense); pi/2 means they are fully orthogonal.
double smallest_principal_angle(const Matrix& a, const Matrix& b);

/// Largest principal angle, in radians in [0, pi/2].
double largest_principal_angle(const Matrix& a, const Matrix& b);

/// True when every column of `b` lies in Col(A) within tolerance, i.e.
/// rank([A | b]) == rank(A). This is the Proposition-1 stealth test.
bool column_space_contains(const Matrix& a, const Matrix& b,
                           double tol = 1e-8);

}  // namespace mtdgrid::linalg
