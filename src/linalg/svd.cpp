#include "linalg/svd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace mtdgrid::linalg {

namespace {

/// One-sided Jacobi SVD for m >= n. Rotates column pairs of a working copy
/// of A until all pairs are numerically orthogonal; the column norms are
/// then the singular values and the accumulated rotations form V.
void jacobi_svd(const Matrix& a, Matrix& u, Vector& sigma, Matrix& v) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix work = a;
  v = Matrix::identity(n);

  constexpr int kMaxSweeps = 60;
  constexpr double kTol = 1e-14;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries of the (p, q) column pair.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += work(i, p) * work(i, p);
          aqq += work(i, q) * work(i, q);
          apq += work(i, p) * work(i, q);
        }
        if (std::abs(apq) <= kTol * std::sqrt(app * aqq) || apq == 0.0)
          continue;
        converged = false;

        // Jacobi rotation that zeroes the off-diagonal Gram entry.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0)
                             ? 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta))
                             : -1.0 / (-zeta + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t i = 0; i < m; ++i) {
          const double wp = work(i, p);
          const double wq = work(i, q);
          work(i, p) = c * wp - s * wq;
          work(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Column norms -> singular values; normalized columns -> U.
  sigma = Vector(n);
  u = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += work(i, j) * work(i, j);
    norm = std::sqrt(norm);
    sigma[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) u(i, j) = work(i, j) / norm;
    }
  }

  // Sort singular values (and the corresponding U, V columns) descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return sigma[i] > sigma[j]; });
  Vector sorted_sigma(n);
  Matrix sorted_u(m, n);
  Matrix sorted_v(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_sigma[j] = sigma[order[j]];
    sorted_u.set_col(j, u.col(order[j]));
    sorted_v.set_col(j, v.col(order[j]));
  }
  sigma = std::move(sorted_sigma);
  u = std::move(sorted_u);
  v = std::move(sorted_v);
}

/// Householder tridiagonalization of a symmetric matrix (in place): after
/// the reduction `diag` holds the diagonal and `sub` the subdiagonal of a
/// tridiagonal matrix similar to `g`. Only the lower triangle of `g` is
/// referenced.
void tridiagonalize_symmetric(Matrix& g, Vector& diag, Vector& sub) {
  const std::size_t n = g.rows();
  diag = Vector(n);
  sub = Vector(n > 0 ? n - 1 : 0);
  if (n == 0) return;

  Vector v(n), p(n);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector zeroing column k below the subdiagonal.
    double norm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm2 += g(i, k) * g(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;

    const double alpha = (g(k + 1, k) >= 0.0) ? -norm : norm;
    double vnorm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) {
      v[i] = g(i, k);
      if (i == k + 1) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;

    // p = beta * G v on the trailing block (lower triangle only).
    for (std::size_t i = k + 1; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = k + 1; j <= i; ++j) acc += g(i, j) * v[j];
      for (std::size_t j = i + 1; j < n; ++j) acc += g(j, i) * v[j];
      p[i] = beta * acc;
    }
    // w = p - (beta/2) (p^T v) v, then G -= v w^T + w v^T.
    double pv = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) pv += p[i] * v[i];
    const double kappa = 0.5 * beta * pv;
    for (std::size_t i = k + 1; i < n; ++i) p[i] -= kappa * v[i];
    for (std::size_t i = k + 1; i < n; ++i)
      for (std::size_t j = k + 1; j <= i; ++j)
        g(i, j) -= v[i] * p[j] + p[i] * v[j];

    g(k + 1, k) = alpha;
  }
  for (std::size_t i = 0; i < n; ++i) diag[i] = g(i, i);
  for (std::size_t i = 0; i + 1 < n; ++i) sub[i] = g(i + 1, i);
}

/// Number of eigenvalues of the tridiagonal (diag, sub) strictly below `x`
/// (Sturm sequence via the LDL^T pivot recurrence).
std::size_t sturm_count_below(const Vector& diag, const Vector& sub,
                              double x) {
  const std::size_t n = diag.size();
  std::size_t count = 0;
  double q = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double off2 = (i == 0) ? 0.0 : sub[i - 1] * sub[i - 1];
    double denom = q;
    if (denom == 0.0) denom = 1e-300;
    q = diag[i] - x - off2 / denom;
    if (q < 0.0) ++count;
  }
  return count;
}

/// Extreme eigenvalue of the tridiagonal (diag, sub) by bisection on the
/// Sturm count: the smallest eigenvalue when `want_smallest`, else the
/// largest. Converges to machine resolution of the Gershgorin interval.
double bisect_extreme_eigenvalue(const Vector& diag, const Vector& sub,
                                 bool want_smallest) {
  const std::size_t n = diag.size();
  assert(n > 0);
  double lo = diag[0], hi = diag[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double radius = ((i > 0) ? std::abs(sub[i - 1]) : 0.0) +
                          ((i + 1 < n) ? std::abs(sub[i]) : 0.0);
    lo = std::min(lo, diag[i] - radius);
    hi = std::max(hi, diag[i] + radius);
  }
  const double width_eps =
      1e-16 * std::max({std::abs(lo), std::abs(hi), 1e-300});
  // Widen so the Sturm counts at the endpoints are exact (0 and n).
  lo -= width_eps + 1e-300;
  hi += width_eps + 1e-300;

  for (int iter = 0; iter < 200 && hi - lo > width_eps; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // interval at machine resolution
    const std::size_t below = sturm_count_below(diag, sub, mid);
    if (want_smallest) {
      if (below == 0) {
        lo = mid;
      } else {
        hi = mid;
      }
    } else {
      if (below == n) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }
  return 0.5 * (lo + hi);
}

/// sigma extreme via the Gram matrix over the smaller dimension.
double extreme_singular_value(const Matrix& a, bool want_smallest) {
  if (a.rows() == 0 || a.cols() == 0) return 0.0;
  Matrix gram = (a.rows() >= a.cols()) ? a.transpose_times(a)
                                       : a * a.transposed();
  Vector diag, sub;
  tridiagonalize_symmetric(gram, diag, sub);
  const double lambda = bisect_extreme_eigenvalue(diag, sub, want_smallest);
  return std::sqrt(std::max(0.0, lambda));
}

}  // namespace

double smallest_singular_value(const Matrix& a) {
  return extreme_singular_value(a, /*want_smallest=*/true);
}

double largest_singular_value(const Matrix& a) {
  return extreme_singular_value(a, /*want_smallest=*/false);
}

SvdDecomposition::SvdDecomposition(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    u_ = Matrix(a.rows(), 0);
    v_ = Matrix(a.cols(), 0);
    sigma_ = Vector();
    return;
  }
  if (a.rows() >= a.cols()) {
    jacobi_svd(a, u_, sigma_, v_);
  } else {
    // A = U S V^T  <=>  A^T = V S U^T; decompose the transpose and swap.
    Matrix ut, vt;
    jacobi_svd(a.transposed(), vt, sigma_, ut);
    u_ = std::move(ut);
    v_ = std::move(vt);
  }
}

std::size_t SvdDecomposition::rank(double tol) const {
  if (sigma_.empty() || sigma_[0] == 0.0) return 0;
  std::size_t rk = 0;
  for (double s : sigma_)
    if (s > tol * sigma_[0]) ++rk;
  return rk;
}

}  // namespace mtdgrid::linalg
