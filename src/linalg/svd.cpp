#include "linalg/svd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace mtdgrid::linalg {

namespace {

/// One-sided Jacobi SVD for m >= n. Rotates column pairs of a working copy
/// of A until all pairs are numerically orthogonal; the column norms are
/// then the singular values and the accumulated rotations form V.
void jacobi_svd(const Matrix& a, Matrix& u, Vector& sigma, Matrix& v) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix work = a;
  v = Matrix::identity(n);

  constexpr int kMaxSweeps = 60;
  constexpr double kTol = 1e-14;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries of the (p, q) column pair.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += work(i, p) * work(i, p);
          aqq += work(i, q) * work(i, q);
          apq += work(i, p) * work(i, q);
        }
        if (std::abs(apq) <= kTol * std::sqrt(app * aqq) || apq == 0.0)
          continue;
        converged = false;

        // Jacobi rotation that zeroes the off-diagonal Gram entry.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0)
                             ? 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta))
                             : -1.0 / (-zeta + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t i = 0; i < m; ++i) {
          const double wp = work(i, p);
          const double wq = work(i, q);
          work(i, p) = c * wp - s * wq;
          work(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Column norms -> singular values; normalized columns -> U.
  sigma = Vector(n);
  u = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += work(i, j) * work(i, j);
    norm = std::sqrt(norm);
    sigma[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) u(i, j) = work(i, j) / norm;
    }
  }

  // Sort singular values (and the corresponding U, V columns) descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return sigma[i] > sigma[j]; });
  Vector sorted_sigma(n);
  Matrix sorted_u(m, n);
  Matrix sorted_v(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_sigma[j] = sigma[order[j]];
    sorted_u.set_col(j, u.col(order[j]));
    sorted_v.set_col(j, v.col(order[j]));
  }
  sigma = std::move(sorted_sigma);
  u = std::move(sorted_u);
  v = std::move(sorted_v);
}

}  // namespace

SvdDecomposition::SvdDecomposition(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    u_ = Matrix(a.rows(), 0);
    v_ = Matrix(a.cols(), 0);
    sigma_ = Vector();
    return;
  }
  if (a.rows() >= a.cols()) {
    jacobi_svd(a, u_, sigma_, v_);
  } else {
    // A = U S V^T  <=>  A^T = V S U^T; decompose the transpose and swap.
    Matrix ut, vt;
    jacobi_svd(a.transposed(), vt, sigma_, ut);
    u_ = std::move(ut);
    v_ = std::move(vt);
  }
}

std::size_t SvdDecomposition::rank(double tol) const {
  if (sigma_.empty() || sigma_[0] == 0.0) return 0;
  std::size_t rk = 0;
  for (double s : sigma_)
    if (s > tol * sigma_[0]) ++rk;
  return rk;
}

}  // namespace mtdgrid::linalg
