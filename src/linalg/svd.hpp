#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::linalg {

/// Thin singular value decomposition `A = U diag(sigma) V^T` computed with
/// the one-sided Jacobi method (numerically robust and simple; ideal for the
/// small matrices that arise from principal-angle computations).
///
/// For an m x n input with m >= n: `u()` is m x n with orthonormal columns,
/// `singular_values()` has n entries sorted in descending order, and `v()`
/// is n x n orthogonal. Inputs with m < n are handled by transposing.
class SvdDecomposition {
 public:
  /// Computes the decomposition of `a`.
  explicit SvdDecomposition(const Matrix& a);

  const Matrix& u() const { return u_; }
  const Matrix& v() const { return v_; }
  const Vector& singular_values() const { return sigma_; }

  /// Numerical rank: singular values above `tol * sigma_max`.
  std::size_t rank(double tol = 1e-10) const;

  /// Largest singular value (0 for an empty matrix).
  double sigma_max() const { return sigma_.empty() ? 0.0 : sigma_[0]; }

  /// Smallest singular value of the thin decomposition.
  double sigma_min() const {
    return sigma_.empty() ? 0.0 : sigma_[sigma_.size() - 1];
  }

 private:
  Matrix u_;
  Matrix v_;
  Vector sigma_;
};

/// Smallest singular value of the thin decomposition of `a` (the sigma_min
/// of an m x n matrix has min(m, n) singular values), computed WITHOUT the
/// full Jacobi SVD: the Gram matrix over the smaller dimension is reduced
/// to tridiagonal form by Householder similarity transforms and its extreme
/// eigenvalue is isolated by Sturm-sequence bisection. For the n x n
/// principal-angle cores this is ~20x cheaper than `SvdDecomposition` and
/// is the engine behind `largest_principal_angle_qr`.
///
/// Accuracy note: the value is the square root of an eigenvalue of A^T A,
/// so singular values below ~sqrt(machine-eps) * sigma_max are resolved
/// only to ~1e-8 absolute — irrelevant for principal-angle cosines/sines,
/// where that regime corresponds to angles within 1e-8 of pi/2 (or 0).
double smallest_singular_value(const Matrix& a);

/// Largest singular value of `a`, via the same Gram/tridiagonal/bisection
/// route (exact to relative machine precision; no squaring penalty at the
/// top of the spectrum).
double largest_singular_value(const Matrix& a);

}  // namespace mtdgrid::linalg
