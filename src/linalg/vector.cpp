#include "linalg/vector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace mtdgrid::linalg {

double& Vector::operator[](std::size_t i) {
  assert(i < data_.size());
  return data_[i];
}

double Vector::operator[](std::size_t i) const {
  assert(i < data_.size());
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Vector& Vector::operator/=(double s) {
  assert(s != 0.0);
  for (double& v : data_) v /= s;
  return *this;
}

double Vector::norm() const { return std::sqrt(dot(*this)); }

double Vector::norm1() const {
  double acc = 0.0;
  for (double v : data_) acc += std::abs(v);
  return acc;
}

double Vector::norm_inf() const {
  double acc = 0.0;
  for (double v : data_) acc = std::max(acc, std::abs(v));
  return acc;
}

double Vector::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Vector::dot(const Vector& rhs) const {
  assert(size() == rhs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * rhs.data_[i];
  return acc;
}

Vector Vector::hadamard(const Vector& rhs) const {
  assert(size() == rhs.size());
  Vector out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = data_[i] * rhs.data_[i];
  return out;
}

Vector Vector::segment(std::size_t begin, std::size_t count) const {
  assert(begin + count <= size());
  Vector out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = data_[begin + i];
  return out;
}

Vector Vector::concat(const Vector& tail) const {
  Vector out(size() + tail.size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = data_[i];
  for (std::size_t i = 0; i < tail.size(); ++i) out[size() + i] = tail[i];
  return out;
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector v, double s) { return v *= s; }
Vector operator*(double s, Vector v) { return v *= s; }
Vector operator/(Vector v, double s) { return v /= s; }

Vector operator-(Vector v) {
  for (double& x : v) x = -x;
  return v;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc = std::max(acc, std::abs(a[i] - b[i]));
  return acc;
}

}  // namespace mtdgrid::linalg
