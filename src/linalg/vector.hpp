#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace mtdgrid::linalg {

/// Dense real-valued vector used throughout the library.
///
/// The power-grid problems in this repository are small (tens of buses,
/// tens of branches), so a simple contiguous `double` container with value
/// semantics is the right tool; no expression templates or views are needed.
class Vector {
 public:
  /// Creates an empty (zero-length) vector.
  Vector() = default;

  /// Creates a vector of `n` elements, all initialized to `value`.
  explicit Vector(std::size_t n, double value = 0.0) : data_(n, value) {}

  /// Creates a vector from an explicit element list, e.g. `Vector{1.0, 2.0}`.
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Creates a vector that takes ownership of `values`.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  /// Number of elements.
  std::size_t size() const { return data_.size(); }

  /// True when the vector has no elements.
  bool empty() const { return data_.empty(); }

  /// Bounds-checked in debug builds via assert; element access.
  double& operator[](std::size_t i);
  double operator[](std::size_t i) const;

  /// Read-only view of the underlying storage.
  const std::vector<double>& data() const { return data_; }

  /// Mutable view of the underlying storage.
  std::vector<double>& data() { return data_; }

  // --- elementwise arithmetic (sizes must match) -------------------------
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  /// Euclidean (L2) norm.
  double norm() const;

  /// Sum of absolute values (L1 norm).
  double norm1() const;

  /// Largest absolute element (L-infinity norm).
  double norm_inf() const;

  /// Sum of all elements.
  double sum() const;

  /// Inner product with `rhs`; sizes must match.
  double dot(const Vector& rhs) const;

  /// Returns a copy with every element multiplied elementwise by `rhs`.
  Vector hadamard(const Vector& rhs) const;

  /// Returns the slice `[begin, begin+count)` as a new vector.
  Vector segment(std::size_t begin, std::size_t count) const;

  /// Appends all elements of `tail` to a copy of this vector.
  Vector concat(const Vector& tail) const;

  /// Iterators so the vector works with range-for and <algorithm>.
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector v, double s);
Vector operator*(double s, Vector v);
Vector operator/(Vector v, double s);
Vector operator-(Vector v);

/// Maximum absolute difference between two equally sized vectors.
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace mtdgrid::linalg
