#include "mtd/daily.hpp"

#include <algorithm>
#include <stdexcept>

#include "grid/measurement.hpp"
#include "mtd/spa.hpp"
#include "opf/reactance_opf.hpp"

namespace mtdgrid::mtd {

std::vector<HourlyRecord> run_daily_simulation(
    grid::PowerSystem sys, const grid::DailyLoadTrace& trace,
    const DailySimulationOptions& options, stats::Rng& rng) {
  if (options.gamma_grid.empty())
    throw std::invalid_argument("daily simulation: empty gamma grid");

  const linalg::Vector base_loads = sys.loads_mw();
  const std::size_t hours = trace.size();

  // Pass 1: the no-MTD system of every hour — problem (1) with D-FACTS,
  // giving x_t, H_t and C_OPF,t. These are both the defender's baseline
  // and the attacker's (one-hour-stale) knowledge source.
  //
  // The hourly OPF is warm-started from the previous hour's reactances and
  // polished with a *local* search only. This models how utilities track
  // the slowly varying load (OPF every few minutes) and is what makes
  // gamma(H_t, H_t') nearly zero in Fig. 11: a randomized multi-start
  // would hop across the flat-cost plateau in x and hand the attacker's
  // stale knowledge a spurious MTD effect.
  struct BaseHour {
    linalg::Vector reactances;
    linalg::Matrix h;
    double cost = 0.0;
    bool feasible = false;
  };
  const auto dfacts = sys.dfacts_branches();
  const linalg::Vector lo_full = sys.reactance_lower_limits();
  const linalg::Vector hi_full = sys.reactance_upper_limits();
  linalg::Vector lo(dfacts.size()), hi(dfacts.size()), x_warm(dfacts.size());
  for (std::size_t k = 0; k < dfacts.size(); ++k) {
    lo[k] = lo_full[dfacts[k]];
    hi[k] = hi_full[dfacts[k]];
    x_warm[k] = sys.branch(dfacts[k]).reactance;
  }

  std::vector<BaseHour> base(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    trace.apply(sys, h, base_loads);
    constexpr double kInfeasiblePenalty = 1e12;
    // One evaluator per hour (the merit-order certificate depends on the
    // hour's loads); the local search below then runs LP-free whenever the
    // relaxed dispatch stays inside the flow limits.
    const opf::DispatchEvaluator evaluator(sys);
    const auto cost_of = [&](const linalg::Vector& dfacts_x) {
      const linalg::Vector x = opf::expand_dfacts_reactances(sys, dfacts_x);
      const opf::DispatchResult d = evaluator.evaluate(x);
      return d.feasible ? d.cost : kInfeasiblePenalty;
    };
    opf::DirectSearchOptions local;
    local.max_evaluations = 400;
    local.initial_step = 0.05;  // small step: stay near the warm start
    const opf::DirectSearchResult r =
        opf::nelder_mead_box(cost_of, lo, hi, x_warm, local);
    if (r.value >= kInfeasiblePenalty) continue;
    x_warm = r.x;
    base[h].reactances = opf::expand_dfacts_reactances(sys, r.x);
    const opf::DispatchResult d = opf::solve_dc_opf(sys, base[h].reactances);
    base[h].feasible = d.feasible;
    base[h].h = grid::measurement_matrix(sys, base[h].reactances);
    base[h].cost = d.cost;
  }

  // Pass 2: per hour, tune gamma_th and solve problem (4) against the
  // previous hour's matrix (cyclic at midnight).
  std::vector<HourlyRecord> records(hours);
  std::size_t start_idx = 0;
  linalg::Vector mtd_warm;  // previous hour's MTD perturbation (D-FACTS)
  for (std::size_t h = 0; h < hours; ++h) {
    HourlyRecord& rec = records[h];
    rec.hour = h;
    rec.total_load_mw = trace.total_mw(h);

    const std::size_t prev = (h + hours - 1) % hours;
    if (!base[h].feasible || !base[prev].feasible) continue;
    rec.base_opf_cost = base[h].cost;

    trace.apply(sys, h, base_loads);
    const linalg::Matrix& h_attacker = base[prev].h;

    MtdSelectionOptions sel = options.selection;
    // Pin the achieved SPA at gamma_th: minimizing cost over the flat-cost
    // plateau leaves the angle under-determined, and a drifting angle would
    // decouple the tuned threshold from the achieved effectiveness (and
    // from the cost the paper's Fig. 10 attributes to it).
    sel.pin_gamma = true;
    // Warm-start from the previous hour's perturbation: the load moves a
    // few percent per hour, so the incumbent is usually near-feasible for
    // the new hour and saves the search most of its exploration budget.
    sel.warm_start = mtd_warm;
    bool done = false;
    for (std::size_t gi = start_idx; gi < options.gamma_grid.size(); ++gi) {
      sel.gamma_threshold = options.gamma_grid[gi];
      const MtdSelectionResult res =
          select_mtd_perturbation(sys, h_attacker, base[h].cost, sel, rng);
      if (!res.feasible) continue;
      mtd_warm = linalg::Vector(dfacts.size());
      for (std::size_t k = 0; k < dfacts.size(); ++k)
        mtd_warm[k] = res.reactances[dfacts[k]];

      const linalg::Vector z_ref = grid::noiseless_measurements(
          sys, res.reactances, res.dispatch.theta_reduced);
      EffectivenessOptions eff = options.effectiveness;
      eff.deltas = {options.target_delta};
      const EffectivenessResult er =
          evaluate_effectiveness(h_attacker, res.h_mtd, z_ref, eff, rng);

      rec.gamma_threshold = sel.gamma_threshold;
      rec.mtd_opf_cost = res.opf_cost;
      // C_MTD is non-negative by construction (problem (4)'s feasible set
      // is contained in problem (1)'s); a tiny negative value only means
      // the warm-started hourly baseline was not polished to the global
      // optimum, so report "no additional cost".
      rec.cost_increase_pct = std::max(0.0, 100.0 * res.cost_increase);
      rec.gamma_ht_htp = spa(h_attacker, base[h].h);
      rec.gamma_ht_hmtd = res.spa;
      rec.gamma_htp_hmtd = spa(base[h].h, res.h_mtd);
      rec.eta_at_target = er.eta[0];
      rec.feasible = true;

      if (er.eta[0] >= options.target_eta) {
        done = true;
        // Warm-start the next hour one grid step below this one.
        start_idx = (gi > 0) ? gi - 1 : 0;
        break;
      }
    }
    if (!done && !rec.feasible) {
      // Nothing feasible from the warm start onward: retry from scratch
      // next hour.
      start_idx = 0;
    }
  }
  return records;
}

}  // namespace mtdgrid::mtd
