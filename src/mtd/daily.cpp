#include "mtd/daily.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "grid/measurement.hpp"
#include "mtd/spa.hpp"
#include "obs/scope.hpp"
#include "opf/reactance_opf.hpp"

namespace mtdgrid::mtd {

DailyEngine::DailyEngine(grid::PowerSystem sys, grid::DailyLoadTrace trace,
                         DailySimulationOptions options)
    : sys_(std::move(sys)),
      trace_(std::move(trace)),
      options_(std::move(options)),
      base_loads_(sys_.loads_mw()),
      dfacts_(sys_.dfacts_branches()) {
  if (options_.gamma_grid.empty())
    throw std::invalid_argument("daily simulation: empty gamma grid");

  const std::size_t hours = trace_.size();

  // Pass 1: the no-MTD system of every hour — problem (1) with D-FACTS,
  // giving x_t, H_t and C_OPF,t. These are both the defender's baseline
  // and the attacker's (one-hour-stale) knowledge source.
  //
  // The hourly OPF is warm-started from the previous hour's reactances and
  // polished with a *local* search only. This models how utilities track
  // the slowly varying load (OPF every few minutes) and is what makes
  // gamma(H_t, H_t') nearly zero in Fig. 11: a randomized multi-start
  // would hop across the flat-cost plateau in x and hand the attacker's
  // stale knowledge a spurious MTD effect.
  const linalg::Vector lo_full = sys_.reactance_lower_limits();
  const linalg::Vector hi_full = sys_.reactance_upper_limits();
  linalg::Vector lo(dfacts_.size()), hi(dfacts_.size()), x_warm(dfacts_.size());
  for (std::size_t k = 0; k < dfacts_.size(); ++k) {
    lo[k] = lo_full[dfacts_[k]];
    hi[k] = hi_full[dfacts_[k]];
    x_warm[k] = sys_.branch(dfacts_[k]).reactance;
  }

  base_.resize(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    trace_.apply(sys_, h, base_loads_);
    constexpr double kInfeasiblePenalty = 1e12;
    // One evaluator per hour (the merit-order certificate depends on the
    // hour's loads); the local search below then runs LP-free whenever the
    // relaxed dispatch stays inside the flow limits.
    const opf::DispatchEvaluator evaluator(sys_);
    const auto cost_of = [&](const linalg::Vector& dfacts_x) {
      const linalg::Vector x = opf::expand_dfacts_reactances(sys_, dfacts_x);
      const opf::DispatchResult d = evaluator.evaluate(x);
      return d.feasible ? d.cost : kInfeasiblePenalty;
    };
    opf::DirectSearchOptions local;
    local.max_evaluations = options_.base_search_evaluations;
    local.initial_step = 0.05;  // small step: stay near the warm start
    const opf::DirectSearchResult r =
        opf::nelder_mead_box(cost_of, lo, hi, x_warm, local);
    if (r.value >= kInfeasiblePenalty) continue;
    x_warm = r.x;
    base_[h].reactances = opf::expand_dfacts_reactances(sys_, r.x);
    const opf::DispatchResult d = opf::solve_dc_opf(sys_, base_[h].reactances);
    base_[h].feasible = d.feasible;
    base_[h].h = grid::measurement_matrix(sys_, base_[h].reactances);
    base_[h].cost = d.cost;
  }
}

DailyHourOutcome DailyEngine::advance_hour(stats::Rng& rng) {
  obs::add(obs::Work::kEngineHours);
  obs::Span span("mtd.advance_hour", "mtd");
  const std::size_t hours = trace_.size();
  const std::size_t h = hour_ % hours;  // trace hour of this step

  DailyHourOutcome out;
  HourlyRecord& rec = out.record;
  rec.hour = hour_;
  rec.total_load_mw = trace_.total_mw(h);
  ++hour_;

  // The per-hour inputs (loads, attacker matrix) change here, so any
  // evaluator pairs cached from the previous hour are stale.
  worker_cache_.invalidate();

  const std::size_t prev = (h + hours - 1) % hours;
  if (!base_[h].feasible || !base_[prev].feasible) return out;
  rec.base_opf_cost = base_[h].cost;

  trace_.apply(sys_, h, base_loads_);
  const linalg::Matrix& h_attacker = base_[prev].h;

  MtdSelectionOptions sel = options_.selection;
  // Pin the achieved SPA at gamma_th: minimizing cost over the flat-cost
  // plateau leaves the angle under-determined, and a drifting angle would
  // decouple the tuned threshold from the achieved effectiveness (and
  // from the cost the paper's Fig. 10 attributes to it).
  sel.pin_gamma = true;
  // Warm-start from the previous hour's perturbation: the load moves a
  // few percent per hour, so the incumbent is usually near-feasible for
  // the new hour and saves the search most of its exploration budget.
  sel.warm_start = mtd_warm_;
  // Reuse the per-worker evaluator pairs across the gamma-grid retries of
  // this hour (they depend only on the hour's loads and attacker matrix).
  sel.worker_cache = &worker_cache_;
  bool done = false;
  for (std::size_t gi = start_idx_; gi < options_.gamma_grid.size(); ++gi) {
    sel.gamma_threshold = options_.gamma_grid[gi];
    MtdSelectionResult res =
        select_mtd_perturbation(sys_, h_attacker, base_[h].cost, sel, rng);
    if (!res.feasible) continue;
    mtd_warm_ = linalg::Vector(dfacts_.size());
    for (std::size_t k = 0; k < dfacts_.size(); ++k)
      mtd_warm_[k] = res.reactances[dfacts_[k]];

    const linalg::Vector z_ref = grid::noiseless_measurements(
        sys_, res.reactances, res.dispatch.theta_reduced);
    EffectivenessOptions eff = options_.effectiveness;
    eff.deltas = {options_.target_delta};
    const EffectivenessResult er =
        evaluate_effectiveness(h_attacker, res.h_mtd, z_ref, eff, rng);

    rec.gamma_threshold = sel.gamma_threshold;
    rec.mtd_opf_cost = res.opf_cost;
    // C_MTD is non-negative by construction (problem (4)'s feasible set
    // is contained in problem (1)'s); a tiny negative value only means
    // the warm-started hourly baseline was not polished to the global
    // optimum, so report "no additional cost".
    rec.cost_increase_pct = std::max(0.0, 100.0 * res.cost_increase);
    rec.gamma_ht_htp = spa(h_attacker, base_[h].h);
    rec.gamma_ht_hmtd = res.spa;
    rec.gamma_htp_hmtd = spa(base_[h].h, res.h_mtd);
    rec.eta_at_target = er.eta[0];
    rec.feasible = true;

    // Export the operational state of this (so far best) key.
    out.z_ref = z_ref;
    out.dispatch = std::move(res.dispatch);
    out.reactances = std::move(res.reactances);
    out.h_mtd = std::move(res.h_mtd);

    if (er.eta[0] >= options_.target_eta) {
      done = true;
      // Warm-start the next hour one grid step below this one.
      start_idx_ = (gi > 0) ? gi - 1 : 0;
      break;
    }
  }
  if (!done && !rec.feasible) {
    // Nothing feasible from the warm start onward: retry from scratch
    // next hour.
    start_idx_ = 0;
  }
  return out;
}

std::vector<HourlyRecord> run_daily_simulation(
    grid::PowerSystem sys, const grid::DailyLoadTrace& trace,
    const DailySimulationOptions& options, stats::Rng& rng) {
  DailyEngine engine(std::move(sys), trace, options);
  std::vector<HourlyRecord> records;
  records.reserve(trace.size());
  for (std::size_t h = 0; h < trace.size(); ++h)
    records.push_back(engine.advance_hour(rng).record);
  return records;
}

}  // namespace mtdgrid::mtd
