#pragma once

#include <vector>

#include "grid/load_trace.hpp"
#include "grid/power_system.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/selection.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::mtd {

/// Options for the day-long MTD simulation (paper Section VII-C).
struct DailySimulationOptions {
  /// Target effectiveness: tune gamma_th per hour until
  /// eta'(target_delta) >= target_eta (paper uses delta=0.9, eta=0.9).
  double target_delta = 0.9;  ///< delta at which eta' is evaluated
  double target_eta = 0.9;    ///< required eta'(target_delta)
  /// Candidate gamma_th grid searched in ascending order. Capped at 0.30
  /// rad: the achievable SPA ceiling varies by hour with the no-MTD
  /// operating point (cf. Fig. 11) and hovers around 0.25-0.32 for the
  /// IEEE 14-bus D-FACTS deployment.
  std::vector<double> gamma_grid = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  EffectivenessOptions effectiveness;  ///< per-hour evaluation settings
  MtdSelectionOptions selection;       ///< per-hour problem-(4) settings
};

/// One hour of the day-long simulation.
struct HourlyRecord {
  std::size_t hour = 0;           ///< hour index into the load trace
  double total_load_mw = 0.0;     ///< system load this hour (MW)
  double base_opf_cost = 0.0;     ///< C_OPF,t' (no MTD)
  double mtd_opf_cost = 0.0;      ///< C'_OPF,t' (with MTD)
  double cost_increase_pct = 0.0; ///< 100 * C_MTD (paper eq. (3))
  double gamma_threshold = 0.0;   ///< gamma_th used at this hour
  double gamma_ht_htp = 0.0;      ///< gamma(H_t, H_t')   (natural drift)
  double gamma_ht_hmtd = 0.0;     ///< gamma(H_t, H'_t')  (attacker view)
  double gamma_htp_hmtd = 0.0;    ///< gamma(H_t', H'_t') (cost driver)
  double eta_at_target = 0.0;     ///< achieved eta'(target_delta)
  bool feasible = false;          ///< selection met gamma_th and the OPF
};

/// Runs the paper's dynamic-load experiment: for each hour of `trace`,
/// solve the no-MTD OPF (problem (1)), craft the attacker's knowledge from
/// the *previous* hour's no-MTD matrix, tune gamma_th to reach the target
/// effectiveness, and solve problem (4). Produces the data behind
/// Fig. 9 (fixing one hour and sweeping gamma), Fig. 10 and Fig. 11.
std::vector<HourlyRecord> run_daily_simulation(
    grid::PowerSystem sys, const grid::DailyLoadTrace& trace,
    const DailySimulationOptions& options, stats::Rng& rng);

}  // namespace mtdgrid::mtd
