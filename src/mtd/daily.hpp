#pragma once

#include <cstddef>
#include <vector>

#include "core/parallel.hpp"
#include "grid/load_trace.hpp"
#include "grid/power_system.hpp"
#include "linalg/matrix.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/selection.hpp"
#include "opf/dc_opf.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::mtd {

/// Options for the day-long MTD simulation (paper Section VII-C).
struct DailySimulationOptions {
  /// Target effectiveness: tune gamma_th per hour until
  /// eta'(target_delta) >= target_eta (paper uses delta=0.9, eta=0.9).
  double target_delta = 0.9;  ///< delta at which eta' is evaluated
  double target_eta = 0.9;    ///< required eta'(target_delta)
  /// Candidate gamma_th grid searched in ascending order. Capped at 0.30
  /// rad: the achievable SPA ceiling varies by hour with the no-MTD
  /// operating point (cf. Fig. 11) and hovers around 0.25-0.32 for the
  /// IEEE 14-bus D-FACTS deployment.
  std::vector<double> gamma_grid = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  /// Nelder-Mead evaluation budget of each hour's *baseline* (no-MTD)
  /// OPF polish — the warm-started local search of problem (1). The
  /// historical budget is 400; the serving daemon lowers it to trade
  /// startup time against baseline quality.
  int base_search_evaluations = 400;
  EffectivenessOptions effectiveness;  ///< per-hour evaluation settings
  MtdSelectionOptions selection;       ///< per-hour problem-(4) settings
};

/// One hour of the day-long simulation.
struct HourlyRecord {
  std::size_t hour = 0;  ///< virtual-clock hour (trace hour = hour % 24)
  double total_load_mw = 0.0;     ///< system load this hour (MW)
  double base_opf_cost = 0.0;     ///< C_OPF,t' (no MTD)
  double mtd_opf_cost = 0.0;      ///< C'_OPF,t' (with MTD)
  double cost_increase_pct = 0.0; ///< 100 * C_MTD (paper eq. (3))
  double gamma_threshold = 0.0;   ///< gamma_th used at this hour
  double gamma_ht_htp = 0.0;      ///< gamma(H_t, H_t')   (natural drift)
  double gamma_ht_hmtd = 0.0;     ///< gamma(H_t, H'_t')  (attacker view)
  double gamma_htp_hmtd = 0.0;    ///< gamma(H_t', H'_t') (cost driver)
  double eta_at_target = 0.0;     ///< achieved eta'(target_delta)
  bool feasible = false;          ///< selection met gamma_th and the OPF
};

/// Everything one re-keying step produces: the Fig. 9-11 record plus the
/// operational state a serving layer needs — the chosen reactances, the
/// post-MTD measurement matrix (for building a detector), the dispatch,
/// and the noiseless reference measurement at the new operating point.
/// When `record.feasible` is false (no gamma grid entry admitted a
/// feasible selection, or a baseline OPF failed) the operational fields
/// are empty and the previous key should stay in force.
struct DailyHourOutcome {
  HourlyRecord record;        ///< the per-hour simulation record
  linalg::Vector reactances;  ///< chosen post-MTD reactances x' (length L)
  linalg::Matrix h_mtd;       ///< post-MTD measurement matrix H'
  opf::DispatchResult dispatch;  ///< OPF dispatch at the chosen key
  linalg::Vector z_ref;       ///< noiseless measurements at the new key
};

/// The per-hour re-keying step of the paper's Section VII-C experiment,
/// factored out of `run_daily_simulation` so a long-running process (the
/// serving daemon) can advance a virtual clock hour by hour indefinitely.
///
/// Construction runs "pass 1": the no-MTD OPF of every trace hour
/// (problem (1)), warm-started hour to hour so gamma(H_t, H_t') stays
/// small (Fig. 11) — this is both the defender's baseline and the
/// attacker's one-hour-stale knowledge source, and it consumes no
/// randomness. Each `advance_hour` call then performs one "pass 2" step
/// for the next hour: tune gamma_th over the grid against the *previous*
/// hour's no-MTD matrix (cyclic at midnight) and solve problem (4),
/// exactly as `run_daily_simulation` does — 24 calls reproduce its
/// records bit for bit. Past hour 23 the engine wraps onto the trace's
/// next day while the warm-start state (incumbent perturbation, gamma
/// grid position) keeps carrying forward.
///
/// The engine reuses per-worker `SpaEvaluator`/`DispatchEvaluator` pairs
/// across the gamma-grid retries of an hour through a
/// `core::WorkerStateCache` (invalidated at each hour boundary) — a pure
/// speed knob; results are bit-identical with or without the cache, at
/// any thread count.
///
/// \see serve::MtdDaemon for the serving layer built on this engine
/// (DESIGN.md "Serving architecture").
class DailyEngine {
 public:
  /// Builds the engine and runs the pass-1 baseline for every trace hour.
  /// Consumes no draws from any rng; throws std::invalid_argument on an
  /// empty gamma grid.
  DailyEngine(grid::PowerSystem sys, grid::DailyLoadTrace trace,
              DailySimulationOptions options);

  /// Runs the re-keying step for hour `next_hour()` and advances the
  /// virtual clock. `rng` advances exactly as the corresponding
  /// `run_daily_simulation` hour would (selection + effectiveness draws).
  DailyHourOutcome advance_hour(stats::Rng& rng);

  /// The hour index the next `advance_hour` call will produce (absolute,
  /// not wrapped: hour 24 is the second day's midnight).
  std::size_t next_hour() const { return hour_; }

  /// Hours per day of the underlying trace (24 for `DailyLoadTrace`).
  std::size_t hours_per_day() const { return trace_.size(); }

  /// The load trace the virtual clock replays, day after day.
  const grid::DailyLoadTrace& trace() const { return trace_; }

  /// The system operated on; loads reflect the most recently keyed hour.
  const grid::PowerSystem& system() const { return sys_; }

  /// The simulation options the engine was built with.
  const DailySimulationOptions& options() const { return options_; }

 private:
  struct BaseHour {
    linalg::Vector reactances;
    linalg::Matrix h;
    double cost = 0.0;
    bool feasible = false;
  };

  grid::PowerSystem sys_;
  grid::DailyLoadTrace trace_;
  DailySimulationOptions options_;
  linalg::Vector base_loads_;
  std::vector<std::size_t> dfacts_;
  std::vector<BaseHour> base_;
  core::WorkerStateCache<SelectionWorkerState> worker_cache_;
  linalg::Vector mtd_warm_;     // previous hour's D-FACTS perturbation
  std::size_t start_idx_ = 0;   // gamma grid warm-start position
  std::size_t hour_ = 0;        // absolute virtual-clock hour
};

/// Runs the paper's dynamic-load experiment: for each hour of `trace`,
/// solve the no-MTD OPF (problem (1)), craft the attacker's knowledge from
/// the *previous* hour's no-MTD matrix, tune gamma_th to reach the target
/// effectiveness, and solve problem (4). Produces the data behind
/// Fig. 9 (fixing one hour and sweeping gamma), Fig. 10 and Fig. 11.
/// Implemented as one `DailyEngine` pass over the trace.
std::vector<HourlyRecord> run_daily_simulation(
    grid::PowerSystem sys, const grid::DailyLoadTrace& trace,
    const DailySimulationOptions& options, stats::Rng& rng);

}  // namespace mtdgrid::mtd
