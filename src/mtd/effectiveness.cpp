#include "mtd/effectiveness.hpp"

#include <cassert>
#include <stdexcept>

#include "attack/fdi_attack.hpp"
#include "estimation/bdd.hpp"
#include "estimation/detection.hpp"
#include "estimation/state_estimator.hpp"

namespace mtdgrid::mtd {

namespace {

/// Scores one candidate matrix against an already drawn attack sample.
EffectivenessResult score_candidate(const std::vector<attack::FdiAttack>& attacks,
                                    const linalg::Matrix& h_actual,
                                    const linalg::Vector& z_ref,
                                    const EffectivenessOptions& options,
                                    stats::Rng& rng) {
  const estimation::StateEstimator estimator(h_actual, options.sigma_mw);
  const estimation::BadDataDetector bdd(estimator, options.fp_rate);

  EffectivenessResult result;
  result.detection_probabilities.reserve(attacks.size());
  double sum = 0.0;
  for (const attack::FdiAttack& atk : attacks) {
    double pd = 0.0;
    switch (options.method) {
      case DetectionMethod::kAnalytic:
        pd = estimation::analytic_detection_probability(estimator, bdd,
                                                        atk.a);
        break;
      case DetectionMethod::kMonteCarlo:
        pd = estimation::monte_carlo_detection_probability(
            estimator, bdd, z_ref, atk.a, options.noise_trials, rng);
        break;
    }
    result.detection_probabilities.push_back(pd);
    sum += pd;
  }
  result.mean_detection = sum / static_cast<double>(attacks.size());

  result.eta.reserve(options.deltas.size());
  for (double delta : options.deltas)
    result.eta.push_back(eta_at(result.detection_probabilities, delta));
  return result;
}

void validate_options(const EffectivenessOptions& options) {
  if (options.num_attacks <= 0)
    throw std::invalid_argument("effectiveness: need at least one attack");
}

}  // namespace

EffectivenessResult evaluate_effectiveness(const linalg::Matrix& h_attacker,
                                           const linalg::Matrix& h_actual,
                                           const linalg::Vector& z_ref,
                                           const EffectivenessOptions& options,
                                           stats::Rng& rng) {
  if (h_attacker.rows() != h_actual.rows())
    throw std::invalid_argument(
        "effectiveness: measurement dimensions must match");
  validate_options(options);

  const auto attacks = attack::sample_attacks(
      h_attacker, z_ref, options.attack_relative_magnitude,
      options.num_attacks, rng);
  return score_candidate(attacks, h_actual, z_ref, options, rng);
}

std::vector<EffectivenessResult> evaluate_candidates(
    const linalg::Matrix& h_attacker,
    const std::vector<linalg::Matrix>& h_candidates,
    const linalg::Vector& z_ref, const EffectivenessOptions& options,
    stats::Rng& rng) {
  for (const linalg::Matrix& h : h_candidates)
    if (h.rows() != h_attacker.rows())
      throw std::invalid_argument(
          "effectiveness: measurement dimensions must match");
  validate_options(options);

  const auto attacks = attack::sample_attacks(
      h_attacker, z_ref, options.attack_relative_magnitude,
      options.num_attacks, rng);

  std::vector<EffectivenessResult> results;
  results.reserve(h_candidates.size());
  for (const linalg::Matrix& h : h_candidates)
    results.push_back(score_candidate(attacks, h, z_ref, options, rng));
  return results;
}

double eta_at(const std::vector<double>& detection_probabilities,
              double delta) {
  if (detection_probabilities.empty()) return 0.0;
  std::size_t hits = 0;
  for (double pd : detection_probabilities)
    if (pd >= delta) ++hits;
  return static_cast<double>(hits) /
         static_cast<double>(detection_probabilities.size());
}

}  // namespace mtdgrid::mtd
