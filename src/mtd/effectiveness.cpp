#include "mtd/effectiveness.hpp"

#include <cassert>
#include <cstdint>
#include <stdexcept>

#include "attack/fdi_attack.hpp"
#include "core/parallel.hpp"
#include "estimation/bdd.hpp"
#include "estimation/detection.hpp"
#include "estimation/state_estimator.hpp"

namespace mtdgrid::mtd {

namespace {

/// Scores one candidate matrix against an already drawn attack sample.
/// Attack i's Monte-Carlo noise (when used) comes from the substream family
/// `stats::stream_seed(noise_root, i)` — a pure function of (noise_root, i)
/// — and per-attack probabilities are reduced in attack order, so the
/// result is bit-identical for every thread count.
EffectivenessResult score_candidate(const std::vector<attack::FdiAttack>& attacks,
                                    const linalg::Matrix& h_actual,
                                    const linalg::Vector& z_ref,
                                    const EffectivenessOptions& options,
                                    std::uint64_t noise_root) {
  const estimation::StateEstimator estimator(h_actual, options.sigma_mw);
  const estimation::BadDataDetector bdd(estimator, options.fp_rate);

  EffectivenessResult result;
  result.detection_probabilities = core::parallel_map<double>(
      attacks.size(), [&](std::size_t i) {
        switch (options.method) {
          case DetectionMethod::kMonteCarlo:
            return estimation::monte_carlo_detection_probability_seeded(
                estimator, bdd, z_ref, attacks[i].a, options.noise_trials,
                stats::stream_seed(noise_root, i));
          case DetectionMethod::kAnalytic:
            break;
        }
        return estimation::analytic_detection_probability(estimator, bdd,
                                                          attacks[i].a);
      });

  // Ordered fold: the mean is the same left-to-right sum the sequential
  // run produces, whatever the scheduling above did.
  double sum = 0.0;
  for (double pd : result.detection_probabilities) sum += pd;
  result.mean_detection = sum / static_cast<double>(attacks.size());

  result.eta.reserve(options.deltas.size());
  for (double delta : options.deltas)
    result.eta.push_back(eta_at(result.detection_probabilities, delta));
  return result;
}

void validate_options(const EffectivenessOptions& options) {
  if (options.num_attacks <= 0)
    throw std::invalid_argument("effectiveness: need at least one attack");
}

}  // namespace

EffectivenessResult evaluate_effectiveness(const linalg::Matrix& h_attacker,
                                           const linalg::Matrix& h_actual,
                                           const linalg::Vector& z_ref,
                                           const EffectivenessOptions& options,
                                           stats::Rng& rng) {
  if (h_attacker.rows() != h_actual.rows())
    throw std::invalid_argument(
        "effectiveness: measurement dimensions must match");
  validate_options(options);

  // Exactly two raw draws, whatever the method or thread count: one root
  // for the attack-sample streams, one for the noise streams.
  const std::uint64_t attack_root = rng.split();
  const std::uint64_t noise_root = rng.split();
  const auto attacks = attack::sample_attacks_seeded(
      h_attacker, z_ref, options.attack_relative_magnitude,
      options.num_attacks, attack_root);
  return score_candidate(attacks, h_actual, z_ref, options, noise_root);
}

std::vector<EffectivenessResult> evaluate_candidates(
    const linalg::Matrix& h_attacker,
    const std::vector<linalg::Matrix>& h_candidates,
    const linalg::Vector& z_ref, const EffectivenessOptions& options,
    stats::Rng& rng) {
  for (const linalg::Matrix& h : h_candidates)
    if (h.rows() != h_attacker.rows())
      throw std::invalid_argument(
          "effectiveness: measurement dimensions must match");
  validate_options(options);

  // Same two-draw contract as evaluate_effectiveness, and the same stream
  // roots for every candidate: candidate i's scores are bit-equal to an
  // evaluate_effectiveness call with a fresh rng seeded like `rng`, and all
  // candidates face identical attacks AND identical noise (paired
  // comparison, no cross-candidate sampling noise).
  const std::uint64_t attack_root = rng.split();
  const std::uint64_t noise_root = rng.split();
  const auto attacks = attack::sample_attacks_seeded(
      h_attacker, z_ref, options.attack_relative_magnitude,
      options.num_attacks, attack_root);

  std::vector<EffectivenessResult> results(h_candidates.size());
  const std::size_t workers = core::ThreadPool::global().num_threads();
  if (h_candidates.size() >= workers && workers > 1) {
    // Enough candidates to keep every worker on its own estimator build +
    // scoring loop; the nested parallel_for inside score_candidate then
    // runs inline.
    core::parallel_for(h_candidates.size(), [&](std::size_t i) {
      results[i] =
          score_candidate(attacks, h_candidates[i], z_ref, options,
                          noise_root);
    });
  } else {
    // Few candidates: score them one at a time and let the per-attack
    // parallelism inside score_candidate use the pool.
    for (std::size_t i = 0; i < h_candidates.size(); ++i)
      results[i] = score_candidate(attacks, h_candidates[i], z_ref, options,
                                   noise_root);
  }
  return results;
}

double eta_at(const std::vector<double>& detection_probabilities,
              double delta) {
  if (detection_probabilities.empty()) return 0.0;
  std::size_t hits = 0;
  for (double pd : detection_probabilities)
    if (pd >= delta) ++hits;
  return static_cast<double>(hits) /
         static_cast<double>(detection_probabilities.size());
}

}  // namespace mtdgrid::mtd
