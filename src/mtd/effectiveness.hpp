#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::mtd {

/// How per-attack detection probabilities are computed.
enum class DetectionMethod {
  kAnalytic,    ///< exact noncentral-chi-square probability (fast)
  kMonteCarlo,  ///< the paper's method: count alarms over noise draws
};

/// Options for the eta'(delta) effectiveness evaluation (paper Section V-A
/// and the Monte-Carlo methodology of Section VII-B).
struct EffectivenessOptions {
  int num_attacks = 1000;                  ///< attack vectors a = H_t c
  double attack_relative_magnitude = 0.08; ///< ||a||_1 / ||z||_1 target
  double fp_rate = 5e-4;                   ///< BDD false-positive rate alpha
  /// Sensor noise standard deviation in MW. The paper does not state its
  /// noise level; 0.05 MW (5e-4 per-unit on the 100 MVA base) reproduces
  /// the Fig. 6 effectiveness range. EXPERIMENTS.md records the value used
  /// for each experiment.
  double sigma_mw = 0.05;
  DetectionMethod method = DetectionMethod::kAnalytic;  ///< P_D estimator
  int noise_trials = 1000;                 ///< Monte-Carlo draws per attack
  std::vector<double> deltas = {0.5, 0.8, 0.9, 0.95};  ///< eta'(delta) grid
};

/// Result of an effectiveness evaluation.
struct EffectivenessResult {
  /// Detection probability P'_D(a) of every sampled attack.
  std::vector<double> detection_probabilities;
  /// eta'(delta) for each requested delta: the fraction of attacks with
  /// P'_D(a) >= delta (the Lebesgue-measure ratio of Section V-A estimated
  /// by sampling).
  std::vector<double> eta;
  /// Mean detection probability across the attack sample.
  double mean_detection = 0.0;
};

/// Estimates the MTD effectiveness eta'(delta): attacks are crafted from
/// the attacker's (outdated) matrix `h_attacker`, the defender operates the
/// system with matrix `h_actual`, and `z_ref` is the noiseless measurement
/// vector at the actual operating point (used both to scale the attack
/// magnitudes and as the Monte-Carlo base signal).
///
/// Parallel and deterministic: attacks (and Monte-Carlo noise trials) are
/// spread across the global `core::ThreadPool`, each task on its own
/// counter-based RNG stream, and all reductions are ordered — the result
/// is bit-identical for every thread count. `rng` advances by exactly two
/// raw draws (the attack-stream root and the noise-stream root) regardless
/// of the option values.
EffectivenessResult evaluate_effectiveness(const linalg::Matrix& h_attacker,
                                           const linalg::Matrix& h_actual,
                                           const linalg::Vector& z_ref,
                                           const EffectivenessOptions& options,
                                           stats::Rng& rng);

/// Batched effectiveness evaluation: one attacker matrix against a whole
/// set of candidate post-MTD matrices (keyspace audits, gamma sweeps,
/// selection shortlists). The attack sample — and with it the attacker-side
/// factorization inside `sample_attacks` — is drawn ONCE and shared by
/// every candidate, so the per-candidate work drops to the estimator build
/// plus the detection probabilities, and every candidate is scored against
/// the *same* attacks — and, in Monte-Carlo mode, the same noise streams —
/// (paired comparison, no cross-candidate sampling noise). With either
/// detection method, entry i is bit-equal to
/// `evaluate_effectiveness(h_attacker, h_candidates[i], z_ref, options,
/// rng)` called with a fresh rng seeded like `rng`. Results are
/// index-aligned with `h_candidates`. Candidates are scored across the
/// global thread pool when the batch is large enough, per-attack otherwise;
/// both schedules produce identical results.
std::vector<EffectivenessResult> evaluate_candidates(
    const linalg::Matrix& h_attacker,
    const std::vector<linalg::Matrix>& h_candidates,
    const linalg::Vector& z_ref, const EffectivenessOptions& options,
    stats::Rng& rng);

/// eta'(delta) for a single delta from an already computed probability set.
double eta_at(const std::vector<double>& detection_probabilities,
              double delta);

}  // namespace mtdgrid::mtd
