#include "mtd/random_mtd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mtdgrid::mtd {

linalg::Vector random_reactance_perturbation(const grid::PowerSystem& sys,
                                             const linalg::Vector& x_base,
                                             double max_fraction,
                                             stats::Rng& rng) {
  if (x_base.size() != sys.num_branches())
    throw std::invalid_argument("random MTD: wrong reactance vector length");
  if (max_fraction <= 0.0)
    throw std::invalid_argument("random MTD: fraction must be positive");

  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  linalg::Vector x = x_base;
  for (std::size_t l : sys.dfacts_branches()) {
    const double factor = 1.0 + rng.uniform(-max_fraction, max_fraction);
    x[l] = std::clamp(x_base[l] * factor, lo[l], hi[l]);
  }
  return x;
}

}  // namespace mtdgrid::mtd
