#pragma once

#include "grid/power_system.hpp"
#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::mtd {

/// The prior-work MTD baseline ([11]-[13] in the paper): perturb the
/// D-FACTS branch reactances by *random* amounts within +/- `max_fraction`
/// of their current value (the paper's comparison uses 2%). The set of all
/// such perturbations is the "keyspace" of the random MTD.
///
/// Returns a full length-L reactance vector; non-D-FACTS branches keep
/// their nominal reactance. Perturbations are clipped to the D-FACTS
/// device limits.
linalg::Vector random_reactance_perturbation(const grid::PowerSystem& sys,
                                             const linalg::Vector& x_base,
                                             double max_fraction,
                                             stats::Rng& rng);

}  // namespace mtdgrid::mtd
