#include "mtd/selection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/parallel.hpp"
#include "grid/measurement.hpp"
#include "mtd/spa.hpp"
#include "opf/reactance_opf.hpp"

namespace mtdgrid::mtd {

MtdSelectionResult select_mtd_perturbation(const grid::PowerSystem& sys,
                                           const linalg::Matrix& h_attacker,
                                           double base_opf_cost,
                                           const MtdSelectionOptions& options,
                                           stats::Rng& rng) {
  if (base_opf_cost <= 0.0)
    throw std::invalid_argument("MTD selection: base OPF cost must be > 0");
  if (options.gamma_threshold < 0.0)
    throw std::invalid_argument("MTD selection: negative gamma threshold");
  const auto dfacts = sys.dfacts_branches();
  if (dfacts.empty())
    throw std::invalid_argument("MTD selection: system has no D-FACTS");

  const linalg::Vector lo_full = sys.reactance_lower_limits();
  const linalg::Vector hi_full = sys.reactance_upper_limits();
  linalg::Vector lo(dfacts.size()), hi(dfacts.size()), x0(dfacts.size());
  for (std::size_t k = 0; k < dfacts.size(); ++k) {
    lo[k] = lo_full[dfacts[k]];
    hi[k] = hi_full[dfacts[k]];
    x0[k] = sys.branch(dfacts[k]).reactance;
  }

  const double penalty = options.penalty_scale * base_opf_cost;
  constexpr double kInfeasiblePenalty = 1e15;

  // Amortized hot-path evaluators: the attacker basis is factorized once
  // per worker and each candidate costs a rank-k update + one power flow
  // instead of two SVD-scale factorizations and a simplex solve. One
  // evaluator pair per pool worker (SelectionWorkerState), built lazily on
  // first use and SHARED by the corner-scoring and multi-start regions
  // below — the evaluators hold per-sweep factorizations, so sharing one
  // across threads is not part of their contract, but reusing a worker's
  // pair across regions is free. With `options.worker_cache` the same
  // pairs additionally survive across *calls* with unchanged inputs (the
  // daily gamma-grid retries); states are interchangeable either way.
  core::WorkerStates<SelectionWorkerState> local_states;
  core::WorkerStates<SelectionWorkerState>& worker_states =
      options.worker_cache != nullptr ? options.worker_cache->slots()
                                      : local_states;
  if (options.worker_cache == nullptr)
    local_states.resize(core::worker_state_slots());
  const auto make_state = [&] {
    SelectionWorkerState state;
    if (options.use_fast_path) {
      state.spa_eval = std::make_unique<SpaEvaluator>(sys, h_attacker);
      state.dispatch_eval = std::make_unique<opf::DispatchEvaluator>(sys);
    }
    return state;
  };

  // Penalized objective: dispatch cost + quadratic penalty on the unmet
  // part of the SPA constraint (exact for a large enough multiplier).
  // Evaluated through a worker's own state; identical states give
  // identical values, so the objective is a pure function of dfacts_x.
  const auto objective_with = [&](const SelectionWorkerState& state,
                                  const linalg::Vector& dfacts_x) {
    const linalg::Vector x = opf::expand_dfacts_reactances(sys, dfacts_x);
    const opf::DispatchResult d = state.dispatch_eval
                                      ? state.dispatch_eval->evaluate(x)
                                      : opf::solve_dc_opf(sys, x);
    if (!d.feasible) return kInfeasiblePenalty;
    const double gamma =
        state.spa_eval ? state.spa_eval->gamma(x)
                       : spa(h_attacker, grid::measurement_matrix(sys, x));
    const double deficit =
        options.pin_gamma ? std::abs(options.gamma_threshold - gamma)
                          : std::max(0.0, options.gamma_threshold - gamma);
    return d.cost + penalty * deficit * (1.0 + deficit);
  };

  // Multi-start portfolio: the nominal point, the incumbent warm start
  // when provided, random interior points, and
  // the best corners of the D-FACTS box. Corners produce the largest
  // column-space rotations, so they are essential starts when gamma_th is
  // near the achievable ceiling (interior starts alone often stall on the
  // penalty plateau). With up to 8 D-FACTS branches the full corner set is
  // small enough to probe exhaustively; otherwise sample it.
  std::vector<linalg::Vector> starts;
  starts.push_back(x0);
  if (options.warm_start.size() == dfacts.size() &&
      options.warm_start.size() > 0) {
    linalg::Vector warm = options.warm_start;
    for (std::size_t i = 0; i < warm.size(); ++i)
      warm[i] = std::clamp(warm[i], lo[i], hi[i]);
    starts.push_back(std::move(warm));
  }
  const int num_random = std::max(0, options.extra_starts / 2);
  const int num_corners = options.extra_starts - num_random;
  for (int s = 0; s < num_random; ++s) {
    linalg::Vector start(lo.size());
    for (std::size_t i = 0; i < lo.size(); ++i)
      start[i] = rng.uniform(lo[i], hi[i]);
    starts.push_back(std::move(start));
  }
  if (num_corners > 0) {
    struct ScoredCorner {
      double score;
      linalg::Vector x;
    };
    // Corner generation stays sequential (it draws from `rng` when the box
    // has more than 8 dimensions); the expensive scoring sweep fans out
    // across the pool with one evaluator pair per worker.
    std::vector<ScoredCorner> corners;
    const std::size_t dims = lo.size();
    const std::size_t total =
        dims <= 8 ? (std::size_t{1} << dims) : std::size_t{64};
    for (std::size_t c = 0; c < total; ++c) {
      linalg::Vector corner(dims);
      for (std::size_t i = 0; i < dims; ++i) {
        const bool high =
            dims <= 8 ? ((c >> i) & 1u) != 0 : rng.uniform() < 0.5;
        corner[i] = high ? hi[i] : lo[i];
      }
      corners.push_back({0.0, std::move(corner)});
    }
    core::parallel_for_with_shared_state(
        corners.size(), worker_states, make_state,
        [&](SelectionWorkerState& state, std::size_t c) {
          corners[c].score = objective_with(state, corners[c].x);
        });
    std::sort(corners.begin(), corners.end(),
              [](const ScoredCorner& a, const ScoredCorner& b) {
                return a.score < b.score;
              });
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(num_corners),
                              corners.size());
    for (std::size_t i = 0; i < take; ++i)
      starts.push_back(std::move(corners[i].x));
  }

  // One Nelder-Mead run per start, in parallel with per-worker evaluators;
  // the ordered strict-'<' fold below picks the same winner the sequential
  // start loop would.
  std::vector<opf::DirectSearchResult> results(starts.size());
  core::parallel_for_with_shared_state(
      starts.size(), worker_states, make_state,
      [&](SelectionWorkerState& state, std::size_t i) {
        results[i] = opf::nelder_mead_box(
            [&](const linalg::Vector& x) { return objective_with(state, x); },
            lo, hi, starts[i], options.search);
      });
  opf::DirectSearchResult best;
  bool first = true;
  for (opf::DirectSearchResult& r : results) {
    if (first || r.value < best.value) {
      best = std::move(r);
      first = false;
    }
  }

  MtdSelectionResult result;
  result.reactances = opf::expand_dfacts_reactances(sys, best.x);
  result.dispatch = opf::solve_dc_opf(sys, result.reactances);
  result.h_mtd = grid::measurement_matrix(sys, result.reactances);
  result.spa = spa(h_attacker, result.h_mtd);
  result.base_opf_cost = base_opf_cost;
  if (result.dispatch.feasible) {
    result.opf_cost = result.dispatch.cost;
    result.cost_increase =
        (result.opf_cost - base_opf_cost) / base_opf_cost;
  }
  result.feasible =
      result.dispatch.feasible &&
      result.spa >= options.gamma_threshold - options.constraint_tol;
  return result;
}

}  // namespace mtdgrid::mtd
