#pragma once

#include <memory>

#include "core/parallel.hpp"
#include "grid/power_system.hpp"
#include "linalg/matrix.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"
#include "opf/direct_search.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::mtd {

/// Per-worker evaluation state of the selection sweep: the SPA and
/// dispatch evaluators carry factorizations, so each pool worker builds
/// its own pair instead of sharing. Construction is deterministic — every
/// worker's pair computes identical objective values, so results do not
/// depend on which worker served which candidate (the
/// `core::parallel_for_with_state` contract). Exposed publicly so a
/// long-lived caller can keep a `core::WorkerStateCache` of these across
/// repeated `select_mtd_perturbation` calls with unchanged inputs (see
/// `MtdSelectionOptions::worker_cache`).
struct SelectionWorkerState {
  std::unique_ptr<SpaEvaluator> spa_eval;          ///< rank-k SPA fast path
  std::unique_ptr<opf::DispatchEvaluator> dispatch_eval;  ///< OPF fast path
};

/// Options for the SPA-constrained minimum-cost MTD selection (paper
/// problem (4)).
struct MtdSelectionOptions {
  double gamma_threshold = 0.2;  ///< gamma_th constraint (radians)
  int extra_starts = 4;          ///< random multi-starts (fmincon MultiStart)
  opf::DirectSearchOptions search;  ///< Nelder-Mead budget per start
  /// Constraint-violation penalty relative to the base OPF cost; large
  /// enough that a feasible point always beats an infeasible one.
  double penalty_scale = 1e4;
  /// Tolerance on the SPA constraint when declaring feasibility.
  double constraint_tol = 2e-3;
  /// When true, penalize |gamma - gamma_th| instead of only the deficit,
  /// pinning the achieved SPA near the threshold. Used by the Fig. 6
  /// sweeps, where each point must sit *at* a given gamma; the flat-cost
  /// plateau would otherwise let the optimizer drift to a larger angle.
  bool pin_gamma = false;
  /// Evaluate candidates through the amortized hot path: incremental
  /// rank-k SPA updates (`SpaEvaluator`) and the merit-order dispatch
  /// certificate (`DispatchEvaluator`) instead of a fresh SVD pair and
  /// simplex solve per candidate (>=5x at 57-bus scale). The objective
  /// agrees with the reference path to ~1e-12, so this is a speed knob,
  /// not a quality knob; set false to A/B against the reference path.
  bool use_fast_path = true;
  /// Optional incumbent D-FACTS reactances (one entry per D-FACTS branch,
  /// `dfacts_branches()` order) added to the start portfolio — e.g. the
  /// previous hour's perturbation in the daily loop. Empty = none.
  linalg::Vector warm_start;
  /// Optional caller-owned per-worker evaluator cache, reused across
  /// consecutive `select_mtd_perturbation` calls whose (system, loads,
  /// `h_attacker`, `use_fast_path`) are all unchanged — the daily loop's
  /// gamma-grid retries within one hour, the daemon's request-scoped
  /// re-keying. The caller must `invalidate()` the cache whenever any of
  /// those inputs changes. States are interchangeable (deterministic
  /// construction), so caching is a pure speed knob: results are
  /// bit-identical with or without it. nullptr (default) builds per-call
  /// states.
  core::WorkerStateCache<SelectionWorkerState>* worker_cache = nullptr;
};

/// Result of the MTD perturbation selection.
struct MtdSelectionResult {
  bool feasible = false;       ///< SPA constraint met and OPF feasible
  linalg::Vector reactances;   ///< chosen post-perturbation reactances x'
  opf::DispatchResult dispatch;  ///< OPF at the chosen reactances
  linalg::Matrix h_mtd;        ///< post-perturbation measurement matrix H'
  double spa = 0.0;            ///< achieved gamma(H_attacker, H')
  double opf_cost = 0.0;       ///< C'_OPF (cost with MTD)
  double base_opf_cost = 0.0;  ///< C_OPF (cost without MTD)
  double cost_increase = 0.0;  ///< C_MTD = (C' - C)/C, paper eq. (3)
};

/// Solves problem (4): minimize operational cost over the D-FACTS
/// reactances subject to gamma(H_attacker, H(x')) >= gamma_th and the
/// OPF constraints. `h_attacker` is the measurement matrix the attacker
/// learned (H_t); `base_opf_cost` must be the no-MTD OPF cost C_OPF,t'
/// used to normalize the paper's cost metric (3).
///
/// Implementation: for fixed reactances the cost is the dispatch LP; the
/// SPA constraint is enforced with an exact-penalty term and the D-FACTS
/// reactances are optimized by multi-start Nelder-Mead, mirroring the
/// paper's fmincon + MultiStart approach.
MtdSelectionResult select_mtd_perturbation(const grid::PowerSystem& sys,
                                           const linalg::Matrix& h_attacker,
                                           double base_opf_cost,
                                           const MtdSelectionOptions& options,
                                           stats::Rng& rng);

}  // namespace mtdgrid::mtd
