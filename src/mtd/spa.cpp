#include "mtd/spa.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "grid/measurement.hpp"
#include "linalg/qr.hpp"
#include "linalg/subspace.hpp"
#include "linalg/svd.hpp"
#include "obs/scope.hpp"

namespace mtdgrid::mtd {

double spa(const linalg::Matrix& h_old, const linalg::Matrix& h_new) {
  return linalg::largest_principal_angle(h_old, h_new);
}

double smallest_angle(const linalg::Matrix& h_old,
                      const linalg::Matrix& h_new) {
  return linalg::smallest_principal_angle(h_old, h_new);
}

bool column_spaces_orthogonal(const linalg::Matrix& h_old,
                              const linalg::Matrix& h_new, double tol) {
  return smallest_angle(h_old, h_new) >= std::numbers::pi / 2.0 - tol;
}

template <typename FlowEntry>
bool SpaEvaluator::recover_reference(const FlowEntry& flow_entry) {
  // Try to recognize h_attacker as H(sys, x_ref) for some reactances: each
  // forward-flow row is d_l * (e_from - e_to)^T, so any non-slack endpoint
  // entry reveals d_l.
  const std::size_t num_branches = sys_.num_branches();
  const std::size_t num_buses = sys_.num_buses();
  x_ref_ = linalg::Vector(num_branches);
  d_ref_ = linalg::Vector(num_branches);
  for (std::size_t l = 0; l < num_branches; ++l) {
    const grid::Branch& br = sys_.branch(l);
    const std::size_t cf = grid::reduced_state_column(sys_, br.from);
    const std::size_t ct = grid::reduced_state_column(sys_, br.to);
    double d = 0.0;
    if (cf < num_buses) {
      d = flow_entry(l, cf);
    } else if (ct < num_buses) {
      d = -flow_entry(l, ct);
    }
    if (!(d > 0.0)) return false;
    d_ref_[l] = d;
    x_ref_[l] = sys_.base_mva() / d;
  }
  return true;
}

void SpaEvaluator::build_basis(bool recovered) {
  if (recovered) {
    const linalg::QrDecomposition qr(h0_);
    if (qr.rank() == h0_.cols()) {
      q0_ = qr.q_thin();
      r0_ = qr.r();
      incremental_ = true;
      return;
    }
  }
  q0_ = linalg::orthonormal_basis_qr(h0_);
}

SpaEvaluator::SpaEvaluator(const grid::PowerSystem& sys,
                           const linalg::Matrix& h_attacker)
    : sys_(sys), h0_(h_attacker) {
  if (h0_.rows() != grid::measurement_count(sys_) ||
      h0_.cols() != sys_.num_buses() - 1)
    throw std::invalid_argument(
        "SpaEvaluator: h_attacker does not have the system's measurement "
        "dimensions");

  bool recovered = recover_reference(
      [&](std::size_t l, std::size_t c) { return h0_(l, c); });
  if (recovered) {
    const linalg::Matrix rebuilt = grid::measurement_matrix(sys_, x_ref_);
    const double scale = std::max(1.0, h0_.max_abs());
    recovered = linalg::max_abs_diff(rebuilt, h0_) <= 1e-8 * scale;
  }
  build_basis(recovered);
}

SpaEvaluator::SpaEvaluator(const grid::PowerSystem& sys,
                           const linalg::SparseMatrix& h_attacker)
    : sys_(sys) {
  if (h_attacker.rows() != grid::measurement_count(sys_) ||
      h_attacker.cols() != sys_.num_buses() - 1)
    throw std::invalid_argument(
        "SpaEvaluator: h_attacker does not have the system's measurement "
        "dimensions");

  // Recognition and verification on the sparse entries (O(nnz), no dense
  // intermediate): flow rows hold at most two stored values each.
  bool recovered = recover_reference([&](std::size_t l, std::size_t c) {
    return h_attacker.coeff(l, c);
  });
  if (recovered) {
    const linalg::SparseMatrix rebuilt =
        grid::sparse_measurement_matrix(sys_, x_ref_);
    const double scale = std::max(1.0, h_attacker.max_abs());
    recovered = linalg::max_abs_diff(rebuilt, h_attacker) <= 1e-8 * scale;
  }
  // Only the QR basis — dense by nature — materializes the full block.
  h0_ = h_attacker.to_dense();
  build_basis(recovered);
}

double SpaEvaluator::gamma(const linalg::Vector& x) const {
  if (x.size() != sys_.num_branches())
    throw std::invalid_argument("SpaEvaluator: reactance vector length");
  if (!incremental_) return gamma_full(grid::measurement_matrix(sys_, x));
  obs::add(obs::Work::kSpaFastPathEvals);

  // Relative tolerance: the x_ref recovered from h_attacker carries ~1e-16
  // reconstruction rounding, so candidates numerically equal to the
  // reference must diff to the empty set (gamma identically 0), and
  // sub-1e-12 reactance jitter contributes < 1e-11 rad anyway.
  const std::vector<std::size_t> changed =
      grid::changed_branches(x_ref_, x, 1e-12);
  if (changed.empty()) return 0.0;
  for (std::size_t l : changed)
    if (!(x[l] > 0.0))
      throw std::invalid_argument("SpaEvaluator: reactances must be > 0");

  const std::size_t n = h0_.cols();
  const std::size_t num_branches = sys_.num_branches();
  const std::size_t num_buses = sys_.num_buses();
  const std::size_t k = changed.size();

  // H(x) = H0 + U W^T: column j of U is the (sparse) structure vector of
  // changed branch l_j — +1 at flow row l, -1 at the reverse row L+l, and
  // the incidence pattern at the injection rows; column j of W is
  // delta_j * a_l (the branch's reduced-incidence row).
  // P = Q0^T U via the 4 nonzero rows of each structure vector.
  linalg::Matrix p(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t l = changed[j];
    const grid::Branch& br = sys_.branch(l);
    const std::size_t row_f = 2 * num_branches + br.from;
    const std::size_t row_t = 2 * num_branches + br.to;
    for (std::size_t c = 0; c < n; ++c)
      p(c, j) = q0_(l, c) - q0_(num_branches + l, c) + q0_(row_f, c) -
                q0_(row_t, c);
  }

  // U_perp = U - Q0 P, with one re-orthogonalization pass for stability.
  linalg::Matrix u_perp = q0_ * p;
  u_perp *= -1.0;
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t l = changed[j];
    const grid::Branch& br = sys_.branch(l);
    u_perp(l, j) += 1.0;
    u_perp(num_branches + l, j) -= 1.0;
    u_perp(2 * num_branches + br.from, j) += 1.0;
    u_perp(2 * num_branches + br.to, j) -= 1.0;
  }
  const linalg::Matrix p2 = q0_.transpose_times(u_perp);
  u_perp -= q0_ * p2;
  p += p2;

  // Orthonormal complement directions introduced by the update (at most k;
  // fewer when some structure vectors already lie in span[Q0, others]).
  const linalg::Matrix qu = linalg::orthonormal_column_basis(u_perp);
  const std::size_t kp = qu.cols();
  if (kp == 0) return 0.0;  // Col(H(x)) == Col(H0)
  const linalg::Matrix ru = qu.transpose_times(u_perp);

  // K = [R0 + P W^T; R_u W^T] — H(x) = [Q0 Q_u] K, so the principal angles
  // between Col(H0) and Col(H(x)) are read off the QR of K alone.
  linalg::Matrix kmat(n + kp, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) kmat(i, j) = r0_(i, j);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t l = changed[j];
    const grid::Branch& br = sys_.branch(l);
    const double delta = sys_.base_mva() / x[l] - d_ref_[l];
    const std::size_t cf = grid::reduced_state_column(sys_, br.from);
    const std::size_t ct = grid::reduced_state_column(sys_, br.to);
    // w_j = delta * a_l with a_l = +1 at from, -1 at to (slack dropped).
    if (cf < num_buses) {
      for (std::size_t i = 0; i < n; ++i) kmat(i, cf) += delta * p(i, j);
      for (std::size_t i = 0; i < kp; ++i)
        kmat(n + i, cf) += delta * ru(i, j);
    }
    if (ct < num_buses) {
      for (std::size_t i = 0; i < n; ++i) kmat(i, ct) -= delta * p(i, j);
      for (std::size_t i = 0; i < kp; ++i)
        kmat(n + i, ct) -= delta * ru(i, j);
    }
  }

  const linalg::QrDecomposition qk(kmat);
  const linalg::Matrix& q_small = qk.q_thin();  // (n + kp) x n

  // Q(x) = [Q0 Q_u] Q_small, so (I - Q0 Q0^T) Q(x) = Q_u B with B the
  // bottom block: the nonzero principal-angle sines are sigma(B).
  const linalg::Matrix bottom = q_small.block(n, 0, kp, n);
  const double s =
      std::clamp(linalg::largest_singular_value(bottom), 0.0, 1.0);
  if (s * s <= 0.5) return std::asin(s);
  // Angle above pi/4: the cosine route conditions better. C = Q0^T Q(x) is
  // the top block of Q_small.
  const linalg::Matrix top = q_small.block(0, 0, n, n);
  return std::acos(
      std::clamp(linalg::smallest_singular_value(top), 0.0, 1.0));
}

double SpaEvaluator::gamma_full(const linalg::Matrix& h_new) const {
  obs::add(obs::Work::kSpaFullEvals);
  if (h_new.rows() != h0_.rows())
    throw std::invalid_argument(
        "SpaEvaluator: candidate matrix row dimension");
  const linalg::Matrix qb = linalg::orthonormal_basis_qr(h_new);
  const linalg::Matrix core = q0_.transpose_times(qb);
  const double c = std::clamp(linalg::smallest_singular_value(core), 0.0, 1.0);
  return std::acos(c);
}

}  // namespace mtdgrid::mtd
