#include "mtd/spa.hpp"

#include <numbers>

#include "linalg/subspace.hpp"

namespace mtdgrid::mtd {

double spa(const linalg::Matrix& h_old, const linalg::Matrix& h_new) {
  return linalg::largest_principal_angle(h_old, h_new);
}

double smallest_angle(const linalg::Matrix& h_old,
                      const linalg::Matrix& h_new) {
  return linalg::smallest_principal_angle(h_old, h_new);
}

bool column_spaces_orthogonal(const linalg::Matrix& h_old,
                              const linalg::Matrix& h_new, double tol) {
  return smallest_angle(h_old, h_new) >= std::numbers::pi / 2.0 - tol;
}

}  // namespace mtdgrid::mtd
