#pragma once

#include "linalg/matrix.hpp"

namespace mtdgrid::mtd {

/// The paper's MTD design metric gamma(H, H') between the column spaces of
/// the pre- and post-perturbation measurement matrices, in radians in
/// [0, pi/2].
///
/// Definitional note (documented in DESIGN.md): the paper's Definition V.1
/// names the *smallest* principal angle, but the smallest angle is
/// identically zero for every realizable D-FACTS perturbation — any state
/// direction that is constant across the endpoints of all D-FACTS branches
/// satisfies H c = H' c, so Col(H) and Col(H') always intersect when only
/// a subset of lines is perturbed. The quantity that actually varies over
/// [0, ~0.45] rad (as in the paper's Figs. 6-11) and that validates the
/// residual bound ||r'_a|| <= sin(gamma) ||a|| (paper eq. (7)) is the
/// *largest* principal angle — exactly what MATLAB's `subspace()` returns,
/// which is what the paper's simulations used. This function therefore
/// returns the largest principal angle:
///
///  * gamma == 0    : column spaces identical (e.g. H' = (1+eta) H); every
///                    attack a = Hc stays stealthy.
///  * gamma == pi/2 : some attack direction is driven fully out of
///                    Col(H'); larger gamma forces more of every attack
///                    into the residual and so raises detection.
double spa(const linalg::Matrix& h_old, const linalg::Matrix& h_new);

/// The literal smallest principal angle of Definition V.1, exposed for
/// completeness and for the tests that demonstrate the subtlety above.
double smallest_angle(const linalg::Matrix& h_old,
                      const linalg::Matrix& h_new);

/// Theorem-1 ideal-MTD check: true when the two column spaces are fully
/// orthogonal (all principal angles equal pi/2 within `tol` radians).
bool column_spaces_orthogonal(const linalg::Matrix& h_old,
                              const linalg::Matrix& h_new,
                              double tol = 1e-8);

}  // namespace mtdgrid::mtd
