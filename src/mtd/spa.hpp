#pragma once

#include <vector>

#include "grid/power_system.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::mtd {

/// The paper's MTD design metric gamma(H, H') between the column spaces of
/// the pre- and post-perturbation measurement matrices, in radians in
/// [0, pi/2].
///
/// Definitional note (documented in DESIGN.md): the paper's Definition V.1
/// names the *smallest* principal angle, but the smallest angle is
/// identically zero for every realizable D-FACTS perturbation — any state
/// direction that is constant across the endpoints of all D-FACTS branches
/// satisfies H c = H' c, so Col(H) and Col(H') always intersect when only
/// a subset of lines is perturbed. The quantity that actually varies over
/// [0, ~0.45] rad (as in the paper's Figs. 6-11) and that validates the
/// residual bound ||r'_a|| <= sin(gamma) ||a|| (paper eq. (7)) is the
/// *largest* principal angle — exactly what MATLAB's `subspace()` returns,
/// which is what the paper's simulations used. This function therefore
/// returns the largest principal angle:
///
///  * gamma == 0    : column spaces identical (e.g. H' = (1+eta) H); every
///                    attack a = Hc stays stealthy.
///  * gamma == pi/2 : some attack direction is driven fully out of
///                    Col(H'); larger gamma forces more of every attack
///                    into the residual and so raises detection.
double spa(const linalg::Matrix& h_old, const linalg::Matrix& h_new);

/// The literal smallest principal angle of Definition V.1, exposed for
/// completeness and for the tests that demonstrate the subtlety above.
double smallest_angle(const linalg::Matrix& h_old,
                      const linalg::Matrix& h_new);

/// Theorem-1 ideal-MTD check: true when the two column spaces are fully
/// orthogonal (all principal angles equal pi/2 within `tol` radians).
bool column_spaces_orthogonal(const linalg::Matrix& h_old,
                              const linalg::Matrix& h_new,
                              double tol = 1e-8);

/// Amortized gamma(H_attacker, H(x)) evaluation for the selection hot loop.
///
/// The plain `spa()` call orthonormalizes BOTH matrices and runs a Jacobi
/// SVD of the full principal-angle core on every invocation — at IEEE
/// 57-bus scale that is ~8 ms per candidate, and the attacker matrix is
/// re-factorized thousands of times. This evaluator does the work once:
///
///  * the attacker basis Q0 and triangular factor R0 are computed at
///    construction (Householder thin QR);
///  * when `h_attacker` is recognized as a measurement matrix of `sys`
///    (H = S diag(d) A_r for recovered reactances x_ref — true for every
///    matrix produced by `grid::measurement_matrix`), a candidate x that
///    changes k branch reactances is handled as the rank-k update
///    H(x) = H0 + U W^T. The updated orthonormal factor lives in
///    span[Q0, Q_u] with Q_u spanning only k extra directions, so the
///    principal angles come from a QR of the small (n+k) x n matrix
///    [R0 + (Q0^T U) W^T; R_u W^T]: the nonzero angle sines are the
///    singular values of its bottom k x n block, and no O(M n^2) or
///    O(n^3)-SVD work is touched. ~20x faster per candidate at 57-bus
///    scale, with gammas matching `spa()` to ~1e-12 rad.
///  * otherwise (arbitrary attacker matrix) it falls back to rebuilding
///    H(x) and reusing the cached Q0 — still ~2x faster than `spa()`.
class SpaEvaluator {
 public:
  /// `h_attacker` must have the measurement dimensions of `sys`
  /// (2L + N rows, N - 1 columns); throws std::invalid_argument otherwise.
  SpaEvaluator(const grid::PowerSystem& sys, const linalg::Matrix& h_attacker);

  /// Sparse construction path (storage-policy backbone): `h_attacker` in
  /// CSR, e.g. from `grid::sparse_measurement_matrix`. Reference-reactance
  /// recognition and its verification run on the O(L + N) stored entries
  /// instead of the dense M x (N-1) block; only the attacker QR basis Q0
  /// — inherently dense — is then materialized. The rank-k gamma() update
  /// math is shared with the dense constructor unchanged.
  SpaEvaluator(const grid::PowerSystem& sys,
               const linalg::SparseMatrix& h_attacker);

  /// gamma(h_attacker, H(sys, x)) — the largest-principal-angle SPA metric,
  /// identical (to ~1e-12 rad) to `spa(h_attacker, measurement_matrix(sys,
  /// x))`. `x` is the full length-L reactance vector, all entries > 0.
  double gamma(const linalg::Vector& x) const;

  /// gamma against an explicit post-perturbation matrix (cached-Q0 path).
  double gamma_full(const linalg::Matrix& h_new) const;

  /// True when the rank-k incremental path is active (h_attacker was
  /// recognized as a measurement matrix of the system).
  bool incremental() const { return incremental_; }

  /// The reference reactances recovered from h_attacker (only meaningful
  /// when `incremental()`).
  const linalg::Vector& reference_reactances() const { return x_ref_; }

 private:
  /// Shared tail of both constructors: thin-QR factorization of h0_ (the
  /// incremental path when `recovered`, the cached-Q0 fallback otherwise).
  void build_basis(bool recovered);

  /// Recovers x_ref/d_ref from the forward-flow rows; `flow_entry(l, c)`
  /// reads H(l, c). Returns false when any branch yields no positive
  /// susceptance.
  template <typename FlowEntry>
  bool recover_reference(const FlowEntry& flow_entry);

  grid::PowerSystem sys_;       // value copy: the evaluator owns its model
  linalg::Matrix h0_;           // attacker matrix
  linalg::Matrix q0_;           // orthonormal basis of Col(h0)
  linalg::Matrix r0_;           // triangular factor (incremental mode only)
  linalg::Vector x_ref_;        // recovered reference reactances
  linalg::Vector d_ref_;        // susceptances at x_ref
  bool incremental_ = false;
};

}  // namespace mtdgrid::mtd
