#include "mtd/zone_selection.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/parallel.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/spa.hpp"
#include "obs/scope.hpp"
#include "opf/dc_opf.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::mtd {

namespace {

// One standalone selection on zone z, round `round`. The substream index
// `round * num_zones + z` is the determinism contract of the header: the
// same (seed, zone, round) triple always sees the same random starts, no
// matter which worker runs it or how often other zones were re-solved.
void solve_zone(const grid::ZoneSystem& zs, std::size_t zone,
                std::size_t round, std::size_t num_zones,
                const ZoneSelectionOptions& options, std::uint64_t seed,
                ZoneSelectionZoneResult& out) {
  const grid::PowerSystem& zsys = zs.system;
  const opf::DispatchResult base = opf::solve_dc_opf(zsys);
  if (!base.feasible)
    throw std::invalid_argument("zone selection: zone " +
                                std::to_string(zone) +
                                " has no feasible no-MTD dispatch");
  out.zone = zone;
  out.base_opf_cost = base.cost;
  out.rounds = round + 1;

  if (zsys.dfacts_branches().empty()) {
    // Nothing to select: the zone keeps its nominal reactances, which
    // leave the column space unchanged (gamma = 0).
    out.result = MtdSelectionResult{};
    out.result.reactances = zsys.reactances();
    out.result.dispatch = base;
    out.result.spa = 0.0;
    out.result.opf_cost = base.cost;
    out.result.base_opf_cost = base.cost;
    out.result.feasible = options.selection.gamma_threshold <= 0.0;
    return;
  }

  MtdSelectionOptions sel = options.selection;
  sel.worker_cache = nullptr;  // per-zone systems differ; never share states
  sel.extra_starts +=
      static_cast<int>(round) * options.enlarge_extra_starts;
  stats::Rng rng = stats::make_stream(seed, round * num_zones + zone);
  out.result = select_mtd_perturbation(
      zsys, grid::measurement_matrix(zsys), base.cost, sel, rng);
  obs::add(obs::Work::kZonesSelected);
}

// Stitches the per-zone reactances into the full-length vector: local
// branch l of zone z writes global branch `branch_map[l]`. Tie branches
// belong to no zone and keep their nominal entries.
linalg::Vector stitch(const grid::PowerSystem& sys,
                      const std::vector<grid::ZoneSystem>& zones,
                      const std::vector<ZoneSelectionZoneResult>& zres) {
  linalg::Vector x = sys.reactances();
  for (std::size_t z = 0; z < zones.size(); ++z) {
    const std::vector<std::size_t>& bmap = zones[z].branch_map;
    for (std::size_t l = 0; l < bmap.size(); ++l)
      x[bmap[l]] = zres[z].result.reactances[l];
  }
  return x;
}

}  // namespace

ZoneSelectionResult select_mtd_zones(const grid::PowerSystem& sys,
                                     const grid::ZonePartition& partition,
                                     const ZoneSelectionOptions& options,
                                     std::uint64_t seed,
                                     core::ThreadPool* pool) {
  if (partition.num_zones == 0 ||
      partition.bus_zone.size() != sys.num_buses())
    throw std::invalid_argument(
        "zone selection: partition does not describe the system");
  if (options.max_rounds == 0)
    throw std::invalid_argument("zone selection: max_rounds must be >= 1");
  const std::size_t num_zones = partition.num_zones;
  const double full_th = options.full_gamma_threshold > 0.0
                             ? options.full_gamma_threshold
                             : options.selection.gamma_threshold;

  std::vector<grid::ZoneSystem> zones;
  zones.reserve(num_zones);
  for (std::size_t z = 0; z < num_zones; ++z)
    zones.push_back(grid::extract_zone(sys, partition, z));

  // The full-model boundary check: the attacker's matrix is the nominal
  // full-network H, built sparse (O(L + N) entries) so mega-grid
  // construction stays tractable; the stitched candidates then ride the
  // rank-k incremental gamma path.
  const SpaEvaluator full_eval(sys, grid::sparse_measurement_matrix(sys));

  ZoneSelectionResult result;
  result.zones.resize(num_zones);

  // Round 0: every zone, in parallel, index-ordered slots.
  core::parallel_for(
      num_zones,
      [&](std::size_t z) {
        solve_zone(zones[z], z, 0, num_zones, options, seed,
                   result.zones[z]);
      },
      pool);

  const auto full_check = [&](const linalg::Vector& x) {
    obs::add(obs::Work::kBoundaryRechecks);
    ++result.boundary_rechecks;
    return full_eval.gamma(x);
  };
  const auto zones_feasible = [&] {
    return std::all_of(result.zones.begin(), result.zones.end(),
                       [](const ZoneSelectionZoneResult& zr) {
                         return zr.result.feasible;
                       });
  };

  result.reactances = stitch(sys, zones, result.zones);
  result.full_spa = full_check(result.reactances);
  const double tol = options.selection.constraint_tol;
  bool ok = zones_feasible() && result.full_spa >= full_th - tol;

  // Fallback rounds: re-solve the offending zones — infeasible ones and
  // those sitting closest to the threshold, where tie coupling can erode
  // the margin — with an enlarged start portfolio, then re-check the
  // stitched perturbation on the full model.
  for (std::size_t round = 1; !ok && round < options.max_rounds; ++round) {
    std::vector<std::size_t> offenders;
    for (std::size_t z = 0; z < num_zones; ++z) {
      const ZoneSelectionZoneResult& zr = result.zones[z];
      if (!zr.result.feasible || zr.result.spa < full_th + tol)
        offenders.push_back(z);
    }
    if (offenders.empty()) {
      // Every zone clears the margin yet the coupled model falls short:
      // enlarge the zone with the smallest achieved angle (first
      // minimum, so the pick is deterministic).
      std::size_t worst = 0;
      for (std::size_t z = 1; z < num_zones; ++z)
        if (result.zones[z].result.spa < result.zones[worst].result.spa)
          worst = z;
      offenders.push_back(worst);
    }
    core::parallel_for(
        offenders.size(),
        [&](std::size_t i) {
          const std::size_t z = offenders[i];
          solve_zone(zones[z], z, round, num_zones, options, seed,
                     result.zones[z]);
        },
        pool);
    result.reactances = stitch(sys, zones, result.zones);
    result.full_spa = full_check(result.reactances);
    ok = zones_feasible() && result.full_spa >= full_th - tol;
  }
  result.feasible = ok;

  for (const ZoneSelectionZoneResult& zr : result.zones) {
    result.opf_cost += zr.result.opf_cost;
    result.base_opf_cost += zr.base_opf_cost;
  }
  result.cost_increase =
      (result.opf_cost - result.base_opf_cost) / result.base_opf_cost;

  if (options.check_detection) {
    // Operating point: the stitched per-zone dispatches (each zone
    // balances its own load, so the full network balances) through the
    // sparse power flow at the stitched reactances.
    linalg::Vector generation(sys.num_generators());
    for (std::size_t z = 0; z < num_zones; ++z) {
      const std::vector<std::size_t>& gmap = zones[z].gen_map;
      for (std::size_t g = 0; g < gmap.size(); ++g)
        generation[gmap[g]] = result.zones[z].result.dispatch.generation_mw[g];
    }
    const grid::DcPowerFlowResult pf = grid::solve_dc_power_flow_sparse(
        sys, result.reactances, grid::nodal_injections(sys, generation));
    const linalg::Vector z_ref = grid::noiseless_measurements(
        sys, result.reactances, pf.theta_reduced);
    // Stream index num_zones * max_rounds is disjoint from every zone
    // substream (those stay below it), keeping the detection draw
    // independent of how many fallback rounds actually ran.
    stats::Rng rng = stats::make_stream(seed, num_zones * options.max_rounds);
    result.detection = evaluate_effectiveness(
        grid::measurement_matrix(sys),
        grid::measurement_matrix(sys, result.reactances), z_ref,
        options.detection, rng);
    result.has_detection = true;
  }
  return result;
}

}  // namespace mtdgrid::mtd
