#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/thread_pool.hpp"
#include "grid/compose.hpp"
#include "grid/power_system.hpp"
#include "linalg/vector.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/selection.hpp"

namespace mtdgrid::mtd {

/// Zone-decomposed D-FACTS selection for composed mega-grids (ROADMAP
/// "Synthetic mega-grids"). Whole-grid `select_mtd_perturbation` is
/// intractable past a few hundred buses — every candidate costs a dense
/// SPA update and an OPF certificate on the full network — so the
/// selection is decomposed along the `grid::ZonePartition`: each zone is
/// lifted out with `grid::extract_zone`, solved as a standalone selection
/// problem, and the per-zone perturbations are stitched back into one
/// full-length reactance vector. The stitched perturbation is then
/// re-checked on the FULL model (the zones are coupled through the tie
/// lines, which per-zone solves cannot see) and offending zones are
/// re-solved with enlarged candidate sets when the coupled SPA falls
/// short.

/// Options for `select_mtd_zones`.
struct ZoneSelectionOptions {
  /// Per-zone selection options (threshold, multi-start budget, fast
  /// path). `worker_cache` is ignored — each per-zone solve builds its
  /// own evaluator states, since every zone is a different system.
  MtdSelectionOptions selection;
  /// SPA threshold the stitched perturbation must meet on the full
  /// model; 0 (the default) reuses `selection.gamma_threshold`. The
  /// comparison allows `selection.constraint_tol` slack, mirroring the
  /// per-zone feasibility test.
  double full_gamma_threshold = 0.0;
  /// Total selection rounds: 1 disables the fallback, each further round
  /// re-solves the offending zones with `enlarge_extra_starts` more
  /// multi-starts before the full model is re-checked.
  std::size_t max_rounds = 2;
  /// Extra multi-starts added to an offending zone's candidate set per
  /// fallback round (round r runs with `selection.extra_starts +
  /// r * enlarge_extra_starts`).
  int enlarge_extra_starts = 4;
  /// Also evaluate the stitched perturbation's attack-detection
  /// effectiveness on the full model (fills
  /// `ZoneSelectionResult::detection`): attacks are crafted from the
  /// attacker's nominal full-network matrix, the defender operates at
  /// the stitched reactances, and the operating point comes from the
  /// stitched per-zone dispatches through the sparse power flow. Off by
  /// default — the dense measurement matrices make this the most
  /// expensive step at mega-grid scale.
  bool check_detection = false;
  /// Effectiveness evaluation options used when `check_detection`.
  EffectivenessOptions detection;
};

/// One zone's slice of the decomposed selection.
struct ZoneSelectionZoneResult {
  std::size_t zone = 0;        ///< zone index in the partition
  MtdSelectionResult result;   ///< standalone selection on the zone system
  double base_opf_cost = 0.0;  ///< zone no-MTD OPF cost C_OPF
  /// Selection rounds this zone ran (1 + the fallback re-solves it was
  /// picked for).
  std::size_t rounds = 1;
};

/// Result of `select_mtd_zones`.
struct ZoneSelectionResult {
  /// True when every zone's selection is feasible AND the stitched
  /// perturbation meets the full-model SPA threshold.
  bool feasible = false;
  /// Stitched full-length reactance vector x' (tie branches stay at
  /// nominal — zone solves never touch them).
  linalg::Vector reactances;
  /// gamma(H_nominal, H(x')) on the FULL network, from the final
  /// boundary re-check.
  double full_spa = 0.0;
  /// Boundary-coupled full-model SPA checks run (== the
  /// `obs::Work::kBoundaryRechecks` delta of this call).
  std::size_t boundary_rechecks = 0;
  /// Per-zone selection outcomes, indexed by zone.
  std::vector<ZoneSelectionZoneResult> zones;
  double opf_cost = 0.0;       ///< sum of per-zone post-MTD OPF costs
  double base_opf_cost = 0.0;  ///< sum of per-zone no-MTD OPF costs
  double cost_increase = 0.0;  ///< (opf_cost - base) / base, paper eq. (3)
  /// Full-model effectiveness of the stitched perturbation (only when
  /// `ZoneSelectionOptions::check_detection`).
  bool has_detection = false;
  EffectivenessResult detection;  ///< valid iff `has_detection`
};

/// Runs the zone-decomposed selection over `partition` (typically
/// `grid::ComposeResult::zones()` or `grid::partition_into_copies`).
///
/// Determinism contract: zone z in round r draws from the counter-based
/// substream `stats::make_stream(seed, r * num_zones + z)`, per-zone
/// results land in index-ordered slots, and all full-model checks are
/// sequential — the result is bit-identical for every thread count, and
/// round 0 of zone z is bit-identical to a standalone
/// `select_mtd_perturbation` on `grid::extract_zone(sys, partition, z)`
/// seeded with `stats::make_stream(seed, z)` (the conformance tests pin
/// both). Zones are solved across `pool` (default: the global pool), one
/// zone per task; each per-zone solve's inner parallel regions serialize
/// under the nested-region rule.
///
/// Records `obs::Work::kZonesSelected` per per-zone solve and
/// `obs::Work::kBoundaryRechecks` per full-model SPA check (both
/// deterministic counters).
///
/// Throws std::invalid_argument when the partition does not describe
/// `sys` (size mismatch) or a zone's no-MTD OPF is infeasible (a
/// mis-composed case; run `case_audit` first).
ZoneSelectionResult select_mtd_zones(const grid::PowerSystem& sys,
                                     const grid::ZonePartition& partition,
                                     const ZoneSelectionOptions& options,
                                     std::uint64_t seed,
                                     core::ThreadPool* pool = nullptr);

}  // namespace mtdgrid::mtd
