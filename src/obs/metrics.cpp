#include "obs/metrics.hpp"

namespace mtdgrid::obs {

namespace {

constexpr WorkInfo kWorkInfo[kWorkCount] = {
    {"simplex_solves", "Linear programs solved by opf::solve_linear_program",
     true},
    {"simplex_phase1_iterations", "Simplex phase-1 (feasibility) pivots",
     true},
    {"simplex_phase2_iterations", "Simplex phase-2 (optimality) pivots", true},
    {"simplex_bland_pivots", "Simplex pivots taken under the Bland fallback",
     true},
    {"cg_solves", "Conjugate-gradient solves started", true},
    {"cg_iterations", "Conjugate-gradient iterations summed over solves",
     true},
    {"cg_breakdowns", "Conjugate-gradient breakdowns (p'Ap <= 0)", true},
    {"cholesky_factorizations", "Sparse Cholesky factorization attempts",
     true},
    {"cholesky_factor_nnz",
     "Nonzeros of L summed over successful sparse Cholesky factorizations",
     true},
    {"spa_fastpath_evals", "SPA gamma evaluations on the rank-k fast path",
     true},
    {"spa_full_evals", "SPA gamma evaluations on the full-matrix fallback",
     true},
    {"mc_trials", "Monte-Carlo detection trials run", true},
    {"engine_hours", "DailyEngine hours advanced", true},
    {"zones_selected",
     "Per-zone MTD selections completed by mtd::select_mtd_zones", true},
    {"boundary_rechecks",
     "Full-model boundary effectiveness rechecks in zone-decomposed "
     "selection",
     true},
    {"attacker_probes",
     "Probe-oracle samples drawn by attack::probe_and_estimate_key", true},
    {"stale_replays",
     "Stale-knowledge attacks replayed across a re-keying boundary", true},
    {"campaign_cells", "Campaign frontier cells completed", true},
    {"pool_regions", "Parallel regions entered (structural, not "
                     "thread-count invariant)",
     false},
    {"pool_tasks", "Tasks submitted to parallel regions (structural, not "
                   "thread-count invariant)",
     false},
};

}  // namespace

const WorkInfo& work_info(Work w) {
  return kWorkInfo[static_cast<std::size_t>(w)];
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Counter& c : counters_) {
    if (c.name() == name) return c;
  }
  return counters_.emplace_back(name, help);
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Gauge& g : gauges_) {
    if (g.name() == name) return g;
  }
  return gauges_.emplace_back(name, help);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Histogram& h : histograms_) {
    if (h.name() == name) return h;
  }
  return histograms_.emplace_back(name, help, std::move(bounds));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.work = work_snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  out.counters.reserve(counters_.size());
  for (const Counter& c : counters_) {
    out.counters.push_back({c.name(), c.help(), c.value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const Gauge& g : gauges_) {
    out.gauges.push_back({g.name(), g.help(), g.value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const Histogram& h : histograms_) {
    out.histograms.push_back({h.name(), h.help(), h.bounds(),
                              h.bucket_counts(), h.count(), h.sum()});
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace mtdgrid::obs
