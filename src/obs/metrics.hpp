#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace mtdgrid::obs {

/// The engine's fixed deterministic work-counter set. Each enumerator is
/// one relaxed-atomic counter in every `MetricsRegistry` (O(1) add, no
/// registration). Under the repo's seeding contract (DESIGN.md
/// "Threading model & deterministic seeding") the counters marked
/// deterministic in `work_info` are pure functions of (seed, inputs) —
/// the thread count only moves WHERE work runs, never HOW MUCH — so they
/// appear in default `metrics` replies and are pinned with exact `==`
/// across thread counts in tests.
enum class Work : std::size_t {
  kSimplexSolves = 0,        ///< `opf::solve_linear_program` calls
  kSimplexPhase1Iterations,  ///< phase-1 (feasibility) pivots
  kSimplexPhase2Iterations,  ///< phase-2 (optimality) pivots
  kSimplexBlandPivots,       ///< pivots taken after the Bland fallback
  kCgSolves,                 ///< `linalg::preconditioned_cg` calls
  kCgIterations,             ///< CG iterations summed over solves
  kCgBreakdowns,             ///< CG breakdowns (p'Ap <= 0)
  kCholeskyFactorizations,   ///< sparse Cholesky factorization attempts
  kCholeskyFactorNnz,        ///< nonzeros of L summed over factorizations
  kSpaFastPathEvals,         ///< SPA gamma via the rank-k incremental path
  kSpaFullEvals,             ///< SPA gamma via the full-matrix fallback
  kMcTrials,                 ///< Monte-Carlo detection trials
  kEngineHours,              ///< `mtd::DailyEngine::advance_hour` steps
  kZonesSelected,            ///< per-zone MTD selections completed
  kBoundaryRechecks,         ///< zone-selection full-model boundary rechecks
  kAttackerProbes,           ///< probe-oracle samples drawn by key estimators
  kStaleReplays,             ///< stale-knowledge attacks replayed across a
                             ///< re-keying boundary
  kCampaignCells,            ///< campaign frontier cells completed
  kPoolRegions,              ///< `core::parallel_*` regions entered
  kPoolTasks,                ///< tasks submitted to those regions
  kCount,                    ///< number of counters (not a counter)
};

/// Number of fixed work counters.
inline constexpr std::size_t kWorkCount =
    static_cast<std::size_t>(Work::kCount);

/// Static description of one `Work` counter.
struct WorkInfo {
  const char* name;   ///< snake_case wire/exposition name
  const char* help;   ///< one-line Prometheus HELP text
  /// True when the counter is thread-count invariant under the seeding
  /// contract and may appear in byte-diffed default replies. The pool
  /// region/task counters are structural (parallelization-level choices
  /// depend on the worker count) and are exported only through the
  /// Prometheus exposition.
  bool deterministic;
};

/// The static description of `w` (valid for every value but `kCount`).
const WorkInfo& work_info(Work w);

/// Point-in-time copy of a registry's fixed work counters, indexed by
/// `static_cast<std::size_t>(Work)`.
using WorkSnapshot = std::array<std::uint64_t, kWorkCount>;

/// A dynamically registered named counter (monotone, relaxed adds).
class Counter {
 public:
  /// Builds the counter (registries construct these; use
  /// `MetricsRegistry::counter` to obtain one).
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  /// Adds `n` (relaxed; safe from any thread).
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Current value (relaxed load).
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// The registered name.
  const std::string& name() const { return name_; }
  /// The registered help text.
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::atomic<std::uint64_t> value_{0};
};

/// A dynamically registered named gauge (last-write-wins double).
class Gauge {
 public:
  /// Builds the gauge (use `MetricsRegistry::gauge` to obtain one).
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  /// Sets the gauge (relaxed store; safe from any thread).
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Adds `d` to the gauge (relaxed fetch_add).
  void add(double d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Current value (relaxed load).
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// The registered name.
  const std::string& name() const { return name_; }
  /// The registered help text.
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::atomic<double> value_{0.0};
};

/// A dynamically registered fixed-bound histogram with Prometheus
/// semantics: `bounds()[i]` is bucket i's inclusive upper bound, one
/// overflow bucket past the last bound, plus a running count and sum.
/// Observation is lock-free (relaxed adds); snapshots are point-in-time
/// relaxed loads, like every read in this module.
class Histogram {
 public:
  /// Builds the histogram over ascending `bounds` (use
  /// `MetricsRegistry::histogram` to obtain one).
  Histogram(std::string name, std::string help, std::vector<double> bounds)
      : name_(std::move(name)),
        help_(std::move(help)),
        bounds_(std::move(bounds)),
        buckets_(bounds_.size() + 1) {}

  /// Records one sample: the first bucket with `value <= bound` (the
  /// overflow bucket when none), plus count and sum.
  void observe(double value) noexcept {
    std::size_t b = bounds_.size();
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        b = i;
        break;
      }
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// The registered name.
  const std::string& name() const { return name_; }
  /// The registered help text.
  const std::string& help() const { return help_; }
  /// The inclusive upper bounds (ascending; excludes the overflow bucket).
  const std::vector<double>& bounds() const { return bounds_; }
  /// Point-in-time copy of the per-bucket counts (bounds + overflow).
  std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
  }
  /// Total observations (relaxed load).
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of observed values (relaxed load).
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one dynamic counter.
struct CounterSample {
  std::string name;     ///< registered name
  std::string help;     ///< registered help text
  std::uint64_t value;  ///< value at snapshot time
};

/// Point-in-time copy of one gauge.
struct GaugeSample {
  std::string name;  ///< registered name
  std::string help;  ///< registered help text
  double value;      ///< value at snapshot time
};

/// Point-in-time copy of one histogram.
struct HistogramSample {
  std::string name;                   ///< registered name
  std::string help;                   ///< registered help text
  std::vector<double> bounds;         ///< inclusive upper bounds
  std::vector<std::uint64_t> buckets; ///< per-bucket counts (+ overflow)
  std::uint64_t count;                ///< total observations
  double sum;                         ///< sum of observed values
};

/// Everything a registry holds, copied at one point in time — the
/// snapshot-on-read pattern of `serve::HourKeySnapshot`: readers never
/// hold a lock while the hot paths keep recording.
struct MetricsSnapshot {
  WorkSnapshot work;                        ///< fixed work counters
  std::vector<CounterSample> counters;      ///< dynamic counters
  std::vector<GaugeSample> gauges;          ///< dynamic gauges
  std::vector<HistogramSample> histograms;  ///< dynamic histograms
};

/// Lock-free metrics registry: a fixed relaxed-atomic array for the
/// `Work` counters (the hot-path interface — one atomic add, no lookup)
/// plus dynamically registered named counters/gauges/histograms behind a
/// registration mutex with pointer-stable storage (a series reference
/// stays valid for the registry's lifetime; recording on it never takes
/// the mutex). Each `serve::MtdDaemon` shard owns one registry; library
/// code records into the thread's active registry (obs/scope.hpp), which
/// defaults to `global()`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `n` to the fixed counter `w` (relaxed; safe from any thread).
  void add(Work w, std::uint64_t n = 1) noexcept {
    work_[static_cast<std::size_t>(w)].fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  /// Current value of the fixed counter `w` (relaxed load).
  std::uint64_t value(Work w) const noexcept {
    return work_[static_cast<std::size_t>(w)].load(std::memory_order_relaxed);
  }

  /// Point-in-time copy of the fixed work counters.
  WorkSnapshot work_snapshot() const noexcept {
    WorkSnapshot out{};
    for (std::size_t i = 0; i < kWorkCount; ++i)
      out[i] = work_[i].load(std::memory_order_relaxed);
    return out;
  }

  /// Zeroes the fixed work counters (tests and benchmarks only; racing
  /// recorders may still land adds issued before the reset).
  void reset_work() noexcept {
    for (std::size_t i = 0; i < kWorkCount; ++i)
      work_[i].store(0, std::memory_order_relaxed);
  }

  /// Returns the named counter, registering it on first use (`help` is
  /// taken from the first registration). The reference is stable for the
  /// registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help);

  /// Returns the named gauge, registering it on first use.
  Gauge& gauge(const std::string& name, const std::string& help);

  /// Returns the named histogram, registering it on first use with the
  /// given ascending bounds (`bounds` is ignored when already registered).
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds);

  /// Point-in-time copy of everything (fixed + dynamic series, in
  /// registration order).
  MetricsSnapshot snapshot() const;

  /// The process-wide default registry — the active registry of every
  /// thread that has no scoped override (obs/scope.hpp).
  static MetricsRegistry& global();

 private:
  std::array<std::atomic<std::uint64_t>, kWorkCount> work_{};

  mutable std::mutex mutex_;  // guards registration only, never recording
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace mtdgrid::obs
