#include "obs/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace mtdgrid::obs {

namespace {

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string format_prometheus_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

void PrometheusBuilder::header(const std::string& name,
                               const std::string& help, const char* type) {
  text_ += "# HELP " + name + " " + help + "\n";
  text_ += "# TYPE " + name + " ";
  text_ += type;
  text_ += "\n";
}

void PrometheusBuilder::sample(const std::string& name,
                               const std::vector<Label>& labels,
                               const std::string& value) {
  text_ += name;
  if (!labels.empty()) {
    text_ += "{";
    bool first = true;
    for (const Label& l : labels) {
      if (!first) text_ += ",";
      first = false;
      text_ += l.name + "=\"" + escape_label_value(l.value) + "\"";
    }
    text_ += "}";
  }
  text_ += " " + value + "\n";
}

void PrometheusBuilder::counter(const std::string& name,
                                const std::string& help, std::uint64_t value,
                                const std::vector<Label>& labels) {
  header(name, help, "counter");
  sample(name, labels, std::to_string(value));
}

void PrometheusBuilder::counter_family(
    const std::string& name, const std::string& help,
    const std::vector<std::pair<std::vector<Label>, std::uint64_t>>&
        samples) {
  header(name, help, "counter");
  for (const auto& [labels, value] : samples)
    sample(name, labels, std::to_string(value));
}

void PrometheusBuilder::gauge(const std::string& name, const std::string& help,
                              double value, const std::vector<Label>& labels) {
  header(name, help, "gauge");
  sample(name, labels, format_prometheus_double(value));
}

void PrometheusBuilder::histogram(const std::string& name,
                                  const std::string& help,
                                  const std::vector<double>& bounds,
                                  const std::vector<std::uint64_t>& buckets,
                                  std::uint64_t count, double sum) {
  header(name, help, "histogram");
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += i < buckets.size() ? buckets[i] : 0;
    sample(name + "_bucket", {{"le", format_prometheus_double(bounds[i])}},
           std::to_string(cumulative));
  }
  sample(name + "_bucket", {{"le", "+Inf"}}, std::to_string(count));
  sample(name + "_sum", {}, format_prometheus_double(sum));
  sample(name + "_count", {}, std::to_string(count));
}

void render_work_counters(PrometheusBuilder& builder,
                          const WorkSnapshot& work) {
  for (std::size_t i = 0; i < kWorkCount; ++i) {
    const WorkInfo& info = work_info(static_cast<Work>(i));
    builder.counter(std::string("mtdgrid_work_") + info.name + "_total",
                    info.help, work[i]);
  }
}

}  // namespace mtdgrid::obs
