#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace mtdgrid::obs {

/// Incremental builder for the Prometheus text exposition format
/// (version 0.0.4): each series gets `# HELP` / `# TYPE` comment lines
/// followed by its samples; histograms expand to cumulative `le`
/// buckets plus `+Inf`, `_sum`, and `_count`, per the format spec.
class PrometheusBuilder {
 public:
  /// One optional `name="value"` label pair on a sample.
  struct Label {
    std::string name;   ///< label name
    std::string value;  ///< label value (escaped on output)
  };

  /// Emits a counter sample (with HELP/TYPE headers on first use of
  /// `name`).
  void counter(const std::string& name, const std::string& help,
               std::uint64_t value, const std::vector<Label>& labels = {});

  /// Emits one counter family: a single HELP/TYPE header followed by
  /// several labeled samples (the exposition format allows one header
  /// per family only).
  void counter_family(
      const std::string& name, const std::string& help,
      const std::vector<std::pair<std::vector<Label>, std::uint64_t>>&
          samples);

  /// Emits a gauge sample.
  void gauge(const std::string& name, const std::string& help, double value,
             const std::vector<Label>& labels = {});

  /// Emits a full histogram: cumulative `le` buckets over `bounds` (one
  /// count per bucket in `buckets`, which has `bounds.size() + 1`
  /// entries counting the overflow), then `+Inf`, `_sum`, `_count`.
  void histogram(const std::string& name, const std::string& help,
                 const std::vector<double>& bounds,
                 const std::vector<std::uint64_t>& buckets,
                 std::uint64_t count, double sum);

  /// The exposition text built so far.
  const std::string& text() const { return text_; }

 private:
  void header(const std::string& name, const std::string& help,
              const char* type);
  void sample(const std::string& name, const std::vector<Label>& labels,
              const std::string& value);

  std::string text_;
};

/// Formats `v` for exposition output: integral values print without a
/// decimal point, everything else with round-trip precision.
std::string format_prometheus_double(double v);

/// Renders every fixed `Work` counter of `work` (deterministic and
/// structural alike) into `builder` as `mtdgrid_work_<name>_total`.
void render_work_counters(PrometheusBuilder& builder, const WorkSnapshot& work);

}  // namespace mtdgrid::obs
