#include "obs/scope.hpp"

namespace mtdgrid::obs {

ThreadContext& thread_context() noexcept {
  thread_local ThreadContext ctx;
  return ctx;
}

}  // namespace mtdgrid::obs
