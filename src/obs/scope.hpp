#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mtdgrid::obs {

/// Where the calling thread's observability output goes: work counters
/// into `registry` (the global registry when null) and completed spans
/// into `capture` (dropped when null, unless the global `Tracer` is
/// enabled). `serve::MtdDaemon` scopes requests to its shard registry;
/// `core::ThreadPool` forwards the submitting thread's context to its
/// workers for the duration of a region.
struct ThreadContext {
  MetricsRegistry* registry = nullptr;  ///< counter sink (null = global)
  SpanCapture* capture = nullptr;       ///< span sink (null = none)
};

/// The calling thread's context (mutable; prefer the RAII scopes below).
ThreadContext& thread_context() noexcept;

/// The registry `obs::add` records into on this thread: the scoped
/// registry if one is installed, else `MetricsRegistry::global()`.
inline MetricsRegistry& active_registry() noexcept {
  ThreadContext& ctx = thread_context();
  return ctx.registry != nullptr ? *ctx.registry : MetricsRegistry::global();
}

/// Adds `n` to fixed work counter `w` in the calling thread's active
/// registry — the one-liner hot paths use. Compiles to nothing under
/// MTDGRID_OBS_NOOP (the overhead-gate build).
inline void add(Work w, std::uint64_t n = 1) noexcept {
#ifndef MTDGRID_OBS_NOOP
  active_registry().add(w, n);
#else
  (void)w;
  (void)n;
#endif
}

/// RAII: installs a full `ThreadContext` (registry + capture) on the
/// calling thread, restoring the previous context on destruction.
class ScopedContext {
 public:
  /// Installs `ctx` for the scope's lifetime.
  explicit ScopedContext(ThreadContext ctx) noexcept
#ifndef MTDGRID_OBS_NOOP
      : saved_(thread_context()) {
    thread_context() = ctx;
  }
#else
  {
    (void)ctx;
  }
#endif
  ~ScopedContext() {
#ifndef MTDGRID_OBS_NOOP
    thread_context() = saved_;
#endif
  }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
#ifndef MTDGRID_OBS_NOOP
  ThreadContext saved_;
#endif
};

/// RAII: redirects this thread's work counters to `registry` (keeping
/// the current span capture), restoring on destruction.
class ScopedRegistry {
 public:
  /// Routes `obs::add` on this thread to `registry` for the scope.
  explicit ScopedRegistry(MetricsRegistry* registry) noexcept
#ifndef MTDGRID_OBS_NOOP
      : saved_(thread_context().registry) {
    thread_context().registry = registry;
  }
#else
  {
    (void)registry;
  }
#endif
  ~ScopedRegistry() {
#ifndef MTDGRID_OBS_NOOP
    thread_context().registry = saved_;
#endif
  }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
#ifndef MTDGRID_OBS_NOOP
  MetricsRegistry* saved_ = nullptr;
#endif
};

/// RAII: routes spans closed on this thread to `capture` (keeping the
/// current registry), restoring on destruction.
class ScopedCapture {
 public:
  /// Routes `obs::Span` completions on this thread to `capture`.
  explicit ScopedCapture(SpanCapture* capture) noexcept
#ifndef MTDGRID_OBS_NOOP
      : saved_(thread_context().capture) {
    thread_context().capture = capture;
  }
#else
  {
    (void)capture;
  }
#endif
  ~ScopedCapture() {
#ifndef MTDGRID_OBS_NOOP
    thread_context().capture = saved_;
#endif
  }
  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;

 private:
#ifndef MTDGRID_OBS_NOOP
  SpanCapture* saved_ = nullptr;
#endif
};

/// RAII wall-clock span. Construction costs one thread-local read plus
/// one relaxed load when no sink is active (and nothing at all under
/// MTDGRID_OBS_NOOP); the clock is only read when a `SpanCapture` is
/// scoped in or the global `Tracer` is enabled. `name`/`category` must
/// be string literals (see `TraceEvent`). Spans carry wall-clock
/// durations and therefore never appear in default replies — they flow
/// only to opt-in sinks (`"trace":true` requests, `--trace-out`).
class Span {
 public:
  /// Opens a span; it closes (and records) at scope exit.
  explicit Span(const char* name, const char* category = "engine") noexcept {
#ifndef MTDGRID_OBS_NOOP
    capture_ = thread_context().capture;
    to_tracer_ = Tracer::enabled();
    if (capture_ != nullptr || to_tracer_) {
      name_ = name;
      category_ = category;
      start_us_ = Tracer::now_us();
    }
#else
    (void)name;
    (void)category;
#endif
  }

  ~Span() {
#ifndef MTDGRID_OBS_NOOP
    if (capture_ == nullptr && !to_tracer_) return;
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.tid = Tracer::current_tid();
    event.ts_us = start_us_;
    event.dur_us = Tracer::now_us() - start_us_;
    if (capture_ != nullptr) capture_->record(event);
    if (to_tracer_) Tracer::global().record(event);
#endif
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#ifndef MTDGRID_OBS_NOOP
  SpanCapture* capture_ = nullptr;
  bool to_tracer_ = false;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  double start_us_ = 0.0;
#endif
};

}  // namespace mtdgrid::obs
