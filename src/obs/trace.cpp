#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace mtdgrid::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  // Pin the epoch no later than first tracer use so timestamps are
  // non-negative.
  (void)trace_epoch();
  return tracer;
}

Tracer::Buffer& Tracer::thread_buffer() {
  thread_local Buffer* cached = nullptr;
  thread_local Tracer* cached_owner = nullptr;
  if (cached == nullptr || cached_owner != this) {
    auto owned = std::make_unique<Buffer>();
    Buffer* raw = owned.get();
    {
      std::lock_guard<std::mutex> lock(buffers_mutex_);
      buffers_.push_back(std::move(owned));
    }
    cached = raw;
    cached_owner = this;
  }
  return *cached;
}

void Tracer::record(const TraceEvent& event) {
  Buffer& buf = thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(event);
}

std::vector<TraceEvent> Tracer::drain() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
    buf->events.clear();
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::uint32_t Tracer::current_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

double Tracer::now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category
        << "\",\"ph\":\"X\",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
        << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  out << "]}\n";
}

}  // namespace mtdgrid::obs
