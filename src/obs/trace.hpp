#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace mtdgrid::obs {

/// One completed span, in Chrome `trace_event` "complete" (`ph:"X"`)
/// terms. `name` and `category` must point at string literals (or other
/// storage outliving the tracer) — spans never copy strings on the hot
/// path.
struct TraceEvent {
  const char* name;      ///< span name, e.g. "opf.simplex"
  const char* category;  ///< span category, e.g. "serve"
  std::uint32_t tid;     ///< small per-thread id (obs::Tracer::current_tid)
  double ts_us;          ///< start, microseconds since process trace epoch
  double dur_us;         ///< duration in microseconds
};

/// Per-request span sink: when a request arrives with `"trace":true`,
/// the daemon installs a SpanCapture in the thread context
/// (obs/scope.hpp) and every `obs::Span` closed while it is active
/// records here. Mutex-protected because a traced request may fan out
/// across pool workers; it is constructed only for traced requests, so
/// the untraced hot path never pays for it.
class SpanCapture {
 public:
  /// Appends one completed span (thread-safe).
  void record(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(event);
  }

  /// Copies out the recorded spans, in recording order per thread
  /// (interleaving across threads is arrival order).
  std::vector<TraceEvent> events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Process-wide span collector behind `--trace-out`: disabled (one
/// relaxed load per span) unless explicitly enabled, buffering per
/// thread so recording never contends across threads. Buffers are owned
/// by the tracer (not thread_local) so spans recorded by pool workers
/// survive until `drain()` regardless of thread lifetime.
class Tracer {
 public:
  /// The process-wide tracer used by `obs::Span` when enabled.
  static Tracer& global();

  /// Turns collection on/off (off by default; `mtd_daemon --trace-out`
  /// turns it on at startup).
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// True when spans should record into the global tracer (one relaxed
  /// load; the `Span` constructor checks this once).
  static bool enabled() noexcept {
    return global().enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one completed span to the calling thread's buffer.
  void record(const TraceEvent& event);

  /// Moves out everything recorded so far, sorted by start timestamp;
  /// buffers are left empty. Call after workers are quiesced (e.g. at
  /// daemon shutdown) for a complete picture.
  std::vector<TraceEvent> drain();

  /// Small dense id for the calling thread (0, 1, 2, ... in first-use
  /// order) — used as the Chrome trace `tid`.
  static std::uint32_t current_tid();

  /// Microseconds since the process trace epoch (steady clock).
  static double now_us();

 private:
  struct Buffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
  };

  Buffer& thread_buffer();

  std::atomic<bool> enabled_{false};
  std::mutex buffers_mutex_;  // guards the buffer list, not the buffers
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// Writes `events` as Chrome `trace_event` JSON (the
/// `{"traceEvents":[...]}` object form) — loadable in Perfetto or
/// chrome://tracing. All events use phase `"X"` (complete) and pid 1.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events);

}  // namespace mtdgrid::obs
