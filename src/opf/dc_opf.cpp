#include "opf/dc_opf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "grid/power_flow.hpp"
#include "opf/simplex.hpp"

namespace mtdgrid::opf {

DispatchResult solve_dc_opf(const grid::PowerSystem& sys,
                            const linalg::Vector& x) {
  assert(x.size() == sys.num_branches());
  const std::size_t num_gen = sys.num_generators();
  const std::size_t num_buses = sys.num_buses();
  const std::size_t num_branches = sys.num_branches();
  const std::size_t state_dim = num_buses - 1;
  const std::size_t num_vars = num_gen + state_dim;

  LinearProgram lp;
  lp.objective = linalg::Vector(num_vars);
  for (std::size_t g = 0; g < num_gen; ++g)
    lp.objective[g] = sys.generator(g).cost_per_mwh;

  // Nodal balance (one equality per bus): sum_g@i G - [B theta]_i = load_i,
  // where B theta uses the full susceptance matrix with the slack angle
  // fixed at zero (so only non-slack columns appear).
  const linalg::Matrix b_full = sys.susceptance_matrix(x);
  const linalg::Matrix b_cols = b_full.without_col(sys.slack_bus());
  lp.eq_matrix = linalg::Matrix(num_buses, num_vars);
  lp.eq_rhs = linalg::Vector(num_buses);
  for (std::size_t i = 0; i < num_buses; ++i) {
    for (std::size_t j = 0; j < state_dim; ++j)
      lp.eq_matrix(i, num_gen + j) = -b_cols(i, j);
    lp.eq_rhs[i] = sys.bus(i).load_mw;
  }
  for (std::size_t g = 0; g < num_gen; ++g)
    lp.eq_matrix(sys.generator(g).bus, g) += 1.0;

  // Flow limits: -fmax <= D A_r^T theta <= fmax (two rows per branch).
  const linalg::Matrix a_reduced = sys.reduced_branch_incidence();
  const linalg::Vector d = sys.branch_susceptances(x);
  lp.ub_matrix = linalg::Matrix(2 * num_branches, num_vars);
  lp.ub_rhs = linalg::Vector(2 * num_branches);
  for (std::size_t l = 0; l < num_branches; ++l) {
    for (std::size_t j = 0; j < state_dim; ++j) {
      const double coeff = d[l] * a_reduced(l, j);
      lp.ub_matrix(l, num_gen + j) = coeff;
      lp.ub_matrix(num_branches + l, num_gen + j) = -coeff;
    }
    lp.ub_rhs[l] = sys.branch(l).flow_limit_mw;
    lp.ub_rhs[num_branches + l] = sys.branch(l).flow_limit_mw;
  }

  // Variable bounds: generator limits; angles free.
  lp.lower_bounds = linalg::Vector(num_vars, -kLpInfinity);
  lp.upper_bounds = linalg::Vector(num_vars, kLpInfinity);
  for (std::size_t g = 0; g < num_gen; ++g) {
    lp.lower_bounds[g] = sys.generator(g).min_mw;
    lp.upper_bounds[g] = sys.generator(g).max_mw;
  }

  const LpSolution sol = solve_linear_program(lp);
  DispatchResult result;
  if (sol.status != LpStatus::kOptimal) return result;

  result.feasible = true;
  result.cost = sol.objective;
  result.generation_mw = linalg::Vector(num_gen);
  for (std::size_t g = 0; g < num_gen; ++g)
    result.generation_mw[g] = sol.x[g];
  result.theta_reduced = linalg::Vector(state_dim);
  for (std::size_t j = 0; j < state_dim; ++j)
    result.theta_reduced[j] = sol.x[num_gen + j];
  result.flows_mw = grid::branch_flows(sys, x, result.theta_reduced);
  return result;
}

DispatchResult solve_dc_opf(const grid::PowerSystem& sys) {
  return solve_dc_opf(sys, sys.reactances());
}

double dispatch_cost(const grid::PowerSystem& sys,
                     const linalg::Vector& generation_mw) {
  assert(generation_mw.size() == sys.num_generators());
  double cost = 0.0;
  for (std::size_t g = 0; g < sys.num_generators(); ++g)
    cost += sys.generator(g).cost_per_mwh * generation_mw[g];
  return cost;
}

DispatchEvaluator::DispatchEvaluator(const grid::PowerSystem& sys)
    : sys_(sys) {
  // Merit-order fill: every generator at its minimum, then the residual
  // load assigned in ascending cost order. This is the exact optimum of
  // the dispatch LP with the flow limits relaxed (the balance constraints
  // summed over buses reduce to sum G = total load, and the angles are
  // free), so it is a valid optimum certificate whenever it is
  // flow-feasible.
  const std::size_t num_gen = sys_.num_generators();
  relaxed_generation_ = linalg::Vector(num_gen);
  double residual = sys_.total_load_mw();
  for (std::size_t g = 0; g < num_gen; ++g) {
    relaxed_generation_[g] = sys_.generator(g).min_mw;
    residual -= sys_.generator(g).min_mw;
  }
  if (residual < -1e-9) return;  // sum of minimums exceeds the load

  std::vector<std::size_t> order(num_gen);
  for (std::size_t g = 0; g < num_gen; ++g) order[g] = g;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sys_.generator(a).cost_per_mwh < sys_.generator(b).cost_per_mwh;
  });
  for (std::size_t g : order) {
    const double headroom =
        sys_.generator(g).max_mw - sys_.generator(g).min_mw;
    const double add = std::min(residual, headroom);
    if (add > 0.0) {
      relaxed_generation_[g] += add;
      residual -= add;
    }
  }
  if (residual > 1e-9) return;  // insufficient capacity: LP infeasible too

  relaxed_cost_ = dispatch_cost(sys_, relaxed_generation_);
  injections_mw_ = grid::nodal_injections(sys_, relaxed_generation_);
  relaxed_ok_ = true;
}

DispatchResult DispatchEvaluator::evaluate(const linalg::Vector& x) const {
  assert(x.size() == sys_.num_branches());
  if (relaxed_ok_) {
    grid::DcPowerFlowResult pf;
    bool solved = true;
    try {
      pf = grid::solve_dc_power_flow(sys_, x, injections_mw_);
    } catch (const std::exception&) {
      solved = false;  // singular B (disconnected candidate): let the LP
                       // report infeasibility
    }
    if (solved) {
      bool within_limits = true;
      for (std::size_t l = 0; l < sys_.num_branches(); ++l) {
        const double limit = sys_.branch(l).flow_limit_mw;
        if (std::abs(pf.flows_mw[l]) > limit + 1e-6) {
          within_limits = false;
          break;
        }
      }
      if (within_limits) {
        ++fast_hits_;
        DispatchResult result;
        result.feasible = true;
        result.generation_mw = relaxed_generation_;
        result.theta_reduced = std::move(pf.theta_reduced);
        result.flows_mw = std::move(pf.flows_mw);
        result.cost = relaxed_cost_;
        return result;
      }
    }
  }
  ++lp_fallbacks_;
  return solve_dc_opf(sys_, x);
}

}  // namespace mtdgrid::opf
