#pragma once

#include "grid/power_system.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::opf {

/// Solution of the DC optimal power flow (paper problem (1) for fixed
/// branch reactances): the least-cost generation dispatch that balances
/// the load and respects flow and generator limits.
struct DispatchResult {
  bool feasible = false;
  linalg::Vector generation_mw;  ///< per-generator dispatch G_i (MW)
  linalg::Vector theta_reduced;  ///< bus angles, slack removed (rad)
  linalg::Vector flows_mw;       ///< branch flows (MW)
  double cost = 0.0;             ///< total generation cost, $/h
};

/// Solves the DC-OPF for the given branch reactances `x` (length L).
/// Returns `feasible == false` when no dispatch satisfies the constraints.
DispatchResult solve_dc_opf(const grid::PowerSystem& sys,
                            const linalg::Vector& x);

/// Solves the DC-OPF at the system's current nominal reactances.
DispatchResult solve_dc_opf(const grid::PowerSystem& sys);

/// Total generation cost of a dispatch under the system's linear cost
/// model, sum_i c_i * G_i.
double dispatch_cost(const grid::PowerSystem& sys,
                     const linalg::Vector& generation_mw);

}  // namespace mtdgrid::opf
