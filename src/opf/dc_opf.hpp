#pragma once

#include <atomic>
#include <cstddef>

#include "grid/power_system.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::opf {

/// Solution of the DC optimal power flow (paper problem (1) for fixed
/// branch reactances): the least-cost generation dispatch that balances
/// the load and respects flow and generator limits.
struct DispatchResult {
  bool feasible = false;         ///< a valid dispatch was found
  linalg::Vector generation_mw;  ///< per-generator dispatch G_i (MW)
  linalg::Vector theta_reduced;  ///< bus angles, slack removed (rad)
  linalg::Vector flows_mw;       ///< branch flows (MW)
  double cost = 0.0;             ///< total generation cost, $/h
};

/// Solves the DC-OPF for the given branch reactances `x` (length L).
/// Returns `feasible == false` when no dispatch satisfies the constraints.
DispatchResult solve_dc_opf(const grid::PowerSystem& sys,
                            const linalg::Vector& x);

/// Solves the DC-OPF at the system's current nominal reactances.
DispatchResult solve_dc_opf(const grid::PowerSystem& sys);

/// Total generation cost of a dispatch under the system's linear cost
/// model, sum_i c_i * G_i.
double dispatch_cost(const grid::PowerSystem& sys,
                     const linalg::Vector& generation_mw);

/// Amortized DC-OPF evaluation for sweeping many reactance candidates over
/// a fixed system and load (the MTD selection loop calls the dispatch LP
/// once per candidate, ~8 ms at 57-bus scale with the dense simplex).
///
/// The flow-relaxed dispatch — the merit-order generator fill — is the
/// exact optimum of the LP with the flow limits dropped, and it does not
/// depend on the reactances at all. It is computed ONCE at construction;
/// `evaluate(x)` then runs a single power flow to check it against the
/// flow limits at x. When it fits (the common case away from congestion)
/// it is provably optimal for the full LP and the simplex solve is
/// skipped; otherwise the evaluator falls back to `solve_dc_opf`.
class DispatchEvaluator {
 public:
  /// Builds the evaluator for `sys`, solving the flow-relaxed dispatch
  /// once; `sys` must outlive the evaluator.
  explicit DispatchEvaluator(const grid::PowerSystem& sys);
  /// The evaluator only references the system; a temporary would dangle.
  explicit DispatchEvaluator(grid::PowerSystem&&) = delete;

  /// Optimal dispatch at reactances `x`; bit-equal cost to `solve_dc_opf`
  /// up to LP solver tolerances. Safe to call concurrently from several
  /// threads: all candidate-independent state is set at construction and
  /// the instrumentation counters are atomic. (The selection sweep still
  /// builds one evaluator per worker to keep cache lines unshared.)
  DispatchResult evaluate(const linalg::Vector& x) const;

  /// Instrumentation: how often the relaxed dispatch was accepted.
  std::size_t fast_path_hits() const { return fast_hits_; }
  /// Instrumentation: how often the full simplex fallback ran.
  std::size_t lp_fallbacks() const { return lp_fallbacks_; }

 private:
  const grid::PowerSystem& sys_;  // must outlive the evaluator
  bool relaxed_ok_ = false;
  linalg::Vector relaxed_generation_;
  linalg::Vector injections_mw_;
  double relaxed_cost_ = 0.0;
  mutable std::atomic<std::size_t> fast_hits_{0};
  mutable std::atomic<std::size_t> lp_fallbacks_{0};
};

}  // namespace mtdgrid::opf
