#include "opf/direct_search.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "core/parallel.hpp"

namespace mtdgrid::opf {

namespace {

linalg::Vector clamp_to_box(linalg::Vector x, const linalg::Vector& lo,
                            const linalg::Vector& hi) {
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::clamp(x[i], lo[i], hi[i]);
  return x;
}

}  // namespace

DirectSearchResult nelder_mead_box(
    const std::function<double(const linalg::Vector&)>& objective,
    const linalg::Vector& lo, const linalg::Vector& hi,
    const linalg::Vector& x0, const DirectSearchOptions& options) {
  assert(lo.size() == hi.size() && lo.size() == x0.size());
  const std::size_t n = x0.size();

  struct Point {
    linalg::Vector x;
    double f;
  };

  int evaluations = 0;
  const auto eval = [&](const linalg::Vector& x) {
    ++evaluations;
    return objective(x);
  };

  // Initial simplex: x0 plus one vertex per coordinate, stepping a fraction
  // of the box width (stepping inward when at the upper bound).
  std::vector<Point> simplex;
  simplex.reserve(n + 1);
  linalg::Vector start = clamp_to_box(x0, lo, hi);
  simplex.push_back({start, eval(start)});
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Vector v = start;
    const double width = hi[i] - lo[i];
    double step = options.initial_step * (width > 0.0 ? width : 1.0);
    if (v[i] + step > hi[i]) step = -step;
    v[i] = std::clamp(v[i] + step, lo[i], hi[i]);
    simplex.push_back({v, eval(v)});
  }

  const auto by_value = [](const Point& a, const Point& b) {
    return a.f < b.f;
  };
  std::sort(simplex.begin(), simplex.end(), by_value);

  while (evaluations < options.max_evaluations) {
    // Convergence: the simplex has collapsed in both x and f.
    double max_spread = 0.0;
    for (std::size_t i = 1; i <= n; ++i)
      max_spread = std::max(
          max_spread, linalg::max_abs_diff(simplex[0].x, simplex[i].x));
    const double f_spread = std::abs(simplex[n].f - simplex[0].f);
    if (max_spread < options.tolerance &&
        f_spread < options.tolerance * (1.0 + std::abs(simplex[0].f)))
      break;

    // Centroid of all but the worst vertex.
    linalg::Vector centroid(n);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += simplex[k].x[i];
      centroid[i] = acc / static_cast<double>(n);
    }

    const Point& worst = simplex[n];
    const auto blend = [&](double coeff) {
      linalg::Vector x(n);
      for (std::size_t i = 0; i < n; ++i)
        x[i] = centroid[i] + coeff * (centroid[i] - worst.x[i]);
      return clamp_to_box(std::move(x), lo, hi);
    };

    // Standard Nelder-Mead moves: reflect, expand, contract, shrink.
    const linalg::Vector xr = blend(1.0);
    const double fr = eval(xr);
    if (fr < simplex[0].f) {
      const linalg::Vector xe = blend(2.0);
      const double fe = eval(xe);
      simplex[n] = (fe < fr) ? Point{xe, fe} : Point{xr, fr};
    } else if (fr < simplex[n - 1].f) {
      simplex[n] = {xr, fr};
    } else {
      const bool outside = fr < worst.f;
      const linalg::Vector xc = blend(outside ? 0.5 : -0.5);
      const double fc = eval(xc);
      if (fc < std::min(fr, worst.f)) {
        simplex[n] = {xc, fc};
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 1; i <= n; ++i) {
          linalg::Vector x(n);
          for (std::size_t k = 0; k < n; ++k)
            x[k] = simplex[0].x[k] + 0.5 * (simplex[i].x[k] - simplex[0].x[k]);
          simplex[i].x = clamp_to_box(std::move(x), lo, hi);
          simplex[i].f = eval(simplex[i].x);
          if (evaluations >= options.max_evaluations) break;
        }
      }
    }
    std::sort(simplex.begin(), simplex.end(), by_value);
  }

  return {simplex[0].x, simplex[0].f, evaluations};
}

DirectSearchResult multi_start_minimize(
    const std::function<double(const linalg::Vector&)>& objective,
    const linalg::Vector& lo, const linalg::Vector& hi,
    const linalg::Vector& x0, int extra_starts, stats::Rng& rng,
    const DirectSearchOptions& options) {
  return multi_start_minimize(objective, lo, hi,
                              std::vector<linalg::Vector>{x0}, extra_starts,
                              rng, options);
}

DirectSearchResult multi_start_minimize(
    const std::function<double(const linalg::Vector&)>& objective,
    const linalg::Vector& lo, const linalg::Vector& hi,
    const std::vector<linalg::Vector>& starts, int extra_starts,
    stats::Rng& rng, const DirectSearchOptions& options) {
  // Draw the whole start portfolio up front, sequentially from `rng`: the
  // points (and the generator's final state) are then independent of how
  // the searches below are scheduled.
  std::vector<linalg::Vector> portfolio = starts;
  const int random_starts =
      starts.empty() ? std::max(1, extra_starts) : extra_starts;
  for (int s = 0; s < random_starts; ++s) {
    linalg::Vector start(lo.size());
    for (std::size_t i = 0; i < lo.size(); ++i)
      start[i] = rng.uniform(lo[i], hi[i]);
    portfolio.push_back(std::move(start));
  }

  // One independent Nelder-Mead per start, in parallel; the best-of fold
  // runs in start order with a strict '<', matching the sequential scan.
  const std::vector<DirectSearchResult> results =
      core::parallel_map<DirectSearchResult>(
          portfolio.size(), [&](std::size_t i) {
            return nelder_mead_box(objective, lo, hi, portfolio[i], options);
          });

  DirectSearchResult best;
  bool first = true;
  int total_evals = 0;
  for (const DirectSearchResult& r : results) {
    total_evals += r.evaluations;
    if (first || r.value < best.value) {
      best = r;
      first = false;
    }
  }
  best.evaluations = total_evals;
  return best;
}

}  // namespace mtdgrid::opf
