#pragma once

#include <functional>
#include <vector>

#include "linalg/vector.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::opf {

/// Options for the bound-constrained direct-search minimizers.
struct DirectSearchOptions {
  int max_evaluations = 4000;   ///< budget of objective evaluations
  double initial_step = 0.25;   ///< simplex edge, relative to the box width
  double tolerance = 1e-8;      ///< simplex-size convergence threshold
};

/// Result of a direct-search minimization.
struct DirectSearchResult {
  linalg::Vector x;       ///< best point found (inside the box)
  double value = 0.0;     ///< objective at `x`
  int evaluations = 0;    ///< number of objective evaluations used
};

/// Nelder-Mead simplex search restricted to the box [lo, hi] (iterates are
/// projected onto the box). `x0` is the start point; it is clamped into the
/// box. Suitable for the low-dimensional (|L_D| <= ~10) reactance searches
/// this library performs; the objective may be non-smooth (it embeds an LP).
DirectSearchResult nelder_mead_box(
    const std::function<double(const linalg::Vector&)>& objective,
    const linalg::Vector& lo, const linalg::Vector& hi,
    const linalg::Vector& x0, const DirectSearchOptions& options = {});

/// Multi-start wrapper mirroring the paper's fmincon+MultiStart usage:
/// runs Nelder-Mead from `x0` plus `extra_starts` uniform random points in
/// the box (drawn from `rng`) and returns the best result.
///
/// The starts run concurrently on the global `core::ThreadPool`, so
/// `objective` must be safe to call from several threads at once (pure
/// functions and const evaluators qualify; see DESIGN.md "Threading model"
/// for the per-worker-state pattern when it is not). Determinism: the
/// start portfolio is drawn sequentially from `rng` up front and the
/// best-of reduction scans results in start order, so the outcome — and
/// the state `rng` is left in — is bit-identical for every thread count.
DirectSearchResult multi_start_minimize(
    const std::function<double(const linalg::Vector&)>& objective,
    const linalg::Vector& lo, const linalg::Vector& hi,
    const linalg::Vector& x0, int extra_starts, stats::Rng& rng,
    const DirectSearchOptions& options = {});

/// Multi-start with an explicit start portfolio (e.g. the incumbent
/// solution of the previous solve plus the nominal point) in addition to
/// `extra_starts` random interior points. Every start is clamped into the
/// box; an empty portfolio behaves like a single random start.
DirectSearchResult multi_start_minimize(
    const std::function<double(const linalg::Vector&)>& objective,
    const linalg::Vector& lo, const linalg::Vector& hi,
    const std::vector<linalg::Vector>& starts, int extra_starts,
    stats::Rng& rng, const DirectSearchOptions& options = {});

}  // namespace mtdgrid::opf
