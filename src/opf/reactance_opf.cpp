#include "opf/reactance_opf.hpp"

#include <cassert>
#include <limits>
#include <vector>

namespace mtdgrid::opf {

linalg::Vector expand_dfacts_reactances(const grid::PowerSystem& sys,
                                        const linalg::Vector& dfacts_x) {
  const auto dfacts = sys.dfacts_branches();
  assert(dfacts_x.size() == dfacts.size());
  linalg::Vector x = sys.reactances();
  for (std::size_t k = 0; k < dfacts.size(); ++k) x[dfacts[k]] = dfacts_x[k];
  return x;
}

ReactanceOpfResult solve_reactance_opf(const grid::PowerSystem& sys,
                                       stats::Rng& rng,
                                       const ReactanceOpfOptions& options) {
  const auto dfacts = sys.dfacts_branches();
  ReactanceOpfResult result;

  if (dfacts.empty()) {
    // No D-FACTS: problem (1) degenerates to the plain dispatch LP.
    result.reactances = sys.reactances();
    result.dispatch = solve_dc_opf(sys, result.reactances);
    result.feasible = result.dispatch.feasible;
    return result;
  }

  const linalg::Vector lo_full = sys.reactance_lower_limits();
  const linalg::Vector hi_full = sys.reactance_upper_limits();
  linalg::Vector lo(dfacts.size()), hi(dfacts.size()), x0(dfacts.size());
  for (std::size_t k = 0; k < dfacts.size(); ++k) {
    lo[k] = lo_full[dfacts[k]];
    hi[k] = hi_full[dfacts[k]];
    x0[k] = sys.branch(dfacts[k]).reactance;
  }

  constexpr double kInfeasiblePenalty = 1e12;
  const DispatchEvaluator evaluator(sys);
  const auto objective = [&](const linalg::Vector& dfacts_x) {
    const linalg::Vector x = expand_dfacts_reactances(sys, dfacts_x);
    const DispatchResult d =
        options.use_fast_path ? evaluator.evaluate(x) : solve_dc_opf(sys, x);
    return d.feasible ? d.cost : kInfeasiblePenalty;
  };

  std::vector<linalg::Vector> starts{x0};
  if (options.warm_start.size() == dfacts.size() &&
      options.warm_start.size() > 0)
    starts.push_back(options.warm_start);

  const DirectSearchResult best = multi_start_minimize(
      objective, lo, hi, starts, options.extra_starts, rng, options.search);

  result.reactances = expand_dfacts_reactances(sys, best.x);
  result.dispatch = solve_dc_opf(sys, result.reactances);
  result.feasible =
      result.dispatch.feasible && best.value < kInfeasiblePenalty;
  return result;
}

}  // namespace mtdgrid::opf
