#pragma once

#include "grid/power_system.hpp"
#include "opf/dc_opf.hpp"
#include "opf/direct_search.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::opf {

/// Options for the reactance-augmented OPF (paper problem (1) with the
/// D-FACTS reactances as decision variables alongside the dispatch).
struct ReactanceOpfOptions {
  int extra_starts = 4;          ///< random multi-starts beyond the nominal x
  DirectSearchOptions search;    ///< inner Nelder-Mead budget
  /// Optional incumbent D-FACTS reactances (one entry per D-FACTS branch,
  /// `dfacts_branches()` order) used as an extra warm start — e.g. the
  /// previous period's solution when tracking a load trace. Empty = none.
  linalg::Vector warm_start;
  /// Evaluate candidate dispatches through the amortized
  /// `DispatchEvaluator` fast path (merit-order certificate + power-flow
  /// check) instead of one simplex solve per objective evaluation.
  bool use_fast_path = true;
};

/// Result of the reactance-augmented OPF.
struct ReactanceOpfResult {
  bool feasible = false;      ///< a feasible (x, dispatch) pair was found
  linalg::Vector reactances;  ///< full branch reactance vector (length L)
  DispatchResult dispatch;    ///< dispatch at the optimized reactances
};

/// Solves min_{g, x} cost subject to the DC-OPF constraints and the
/// D-FACTS reactance limits. For fixed x the problem is an LP (solved by
/// `solve_dc_opf`); the few D-FACTS reactances are optimized by multi-start
/// Nelder-Mead, mirroring the paper's fmincon-with-MultiStart setup.
ReactanceOpfResult solve_reactance_opf(const grid::PowerSystem& sys,
                                       stats::Rng& rng,
                                       const ReactanceOpfOptions& options = {});

/// Expands a vector of D-FACTS-branch reactances (one entry per D-FACTS
/// branch, in `dfacts_branches()` order) into a full length-L reactance
/// vector, keeping non-D-FACTS branches at their nominal values.
linalg::Vector expand_dfacts_reactances(const grid::PowerSystem& sys,
                                        const linalg::Vector& dfacts_x);

}  // namespace mtdgrid::opf
