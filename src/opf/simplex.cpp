#include "opf/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/scope.hpp"

namespace mtdgrid::opf {

namespace {

constexpr double kPivotTol = 1e-9;
constexpr double kFeasibilityTol = 1e-7;
constexpr std::size_t kMaxIterations = 50000;
// Dual-feasibility tolerance for the unbounded verdict. A recession
// direction only proves unboundedness when its reduced cost is decisively
// negative; after hundreds of Gauss-Jordan pivots, reduced costs that are
// exactly zero in exact arithmetic (e.g. the mirror half of a split free
// variable) drift to ~-1e-9 and used to trigger bogus kUnbounded — which
// solve_dc_opf then surfaced as a bogus "infeasible" dispatch.
constexpr double kNoiseCostTol = 1e-6;
// Ratio-test pivot eligibility relative to the entering column's largest
// entry; see the comment at the ratio test.
constexpr double kRelPivotTol = 1e-7;

/// How an original variable maps onto the non-negative standard-form ones.
struct VariableMap {
  enum class Kind {
    kShifted,   // x = lb + y          (lb finite)
    kNegated,   // x = ub - y          (lb = -inf, ub finite)
    kSplit,     // x = y_pos - y_neg   (both bounds infinite)
  } kind = Kind::kShifted;
  std::size_t primary = 0;    // index of y (or y_pos)
  std::size_t secondary = 0;  // index of y_neg for kSplit
  double offset = 0.0;        // lb or ub used in the transform
};

/// Dense simplex tableau: `rows` constraint rows plus one cost row, with
/// the right-hand side stored as the last column. Basis[i] is the variable
/// whose column is the i-th unit vector.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_((rows + 1) * (cols + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * (cols_ + 1) + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * (cols_ + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, cols_); }
  double rhs(std::size_t r) const { return at(r, cols_); }
  double& cost(std::size_t c) { return at(rows_, c); }
  double cost(std::size_t c) const { return at(rows_, c); }
  double& cost_rhs() { return at(rows_, cols_); }
  double cost_rhs() const { return at(rows_, cols_); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Gauss-Jordan pivot on (pivot_row, pivot_col), including the cost row.
  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    const double pivot_value = at(pivot_row, pivot_col);
    assert(std::abs(pivot_value) > kPivotTol);
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c <= cols_; ++c) at(pivot_row, c) *= inv;
    at(pivot_row, pivot_col) = 1.0;  // kill rounding noise
    for (std::size_t r = 0; r <= rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c)
        at(r, c) -= factor * at(pivot_row, c);
      at(r, pivot_col) = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Runs Bland-rule simplex iterations on an already-canonical tableau.
/// `allowed[c]` marks columns eligible to enter the basis. `phase_one`
/// marks the artificial-objective run: the sum of artificials is bounded
/// below by zero, so a recession ray can never be a true unbounded
/// certificate there — any such column is roundoff noise (the reduced-cost
/// drift grows with the constraint coefficients, ~1e4 on the 300-bus case)
/// and is dropped instead of aborting the solve.
LpStatus iterate(Tableau& tab, std::vector<std::size_t>& basis,
                 const std::vector<bool>& allowed, bool phase_one = false) {
  // Dantzig pricing (most negative reduced cost) converges in ~m pivots on
  // the OPF LPs, but can cycle on degenerate vertices; Bland's rule cannot
  // cycle but needs an order of magnitude more pivots (the 300-bus OPF
  // exhausts the iteration budget under pure Bland). Strategy: price with
  // Dantzig until the objective stalls for kStallLimit consecutive
  // degenerate pivots, then switch to Bland permanently — this keeps the
  // finite-termination guarantee while staying fast in practice.
  constexpr int kStallLimit = 200;
  bool bland = false;
  int stalled = 0;
  double last_objective = tab.cost_rhs();
  // Pivot tallies, accumulated locally and flushed as two atomic adds on
  // every exit path (optimal/unbounded/iteration limit).
  std::uint64_t pivots = 0;
  std::uint64_t bland_pivots = 0;
  struct PivotFlush {
    bool phase_one;
    const std::uint64_t& pivots;
    const std::uint64_t& bland_pivots;
    ~PivotFlush() {
      obs::add(phase_one ? obs::Work::kSimplexPhase1Iterations
                         : obs::Work::kSimplexPhase2Iterations,
               pivots);
      obs::add(obs::Work::kSimplexBlandPivots, bland_pivots);
    }
  } flush{phase_one, pivots, bland_pivots};
  for (std::size_t iter = 0; iter < kMaxIterations; ++iter) {
    std::size_t entering = tab.cols();
    if (bland) {
      // Bland's rule: smallest-index column with a negative reduced cost.
      for (std::size_t c = 0; c < tab.cols(); ++c) {
        if (allowed[c] && tab.cost(c) < -kPivotTol) {
          entering = c;
          break;
        }
      }
    } else {
      double best = -kPivotTol;
      for (std::size_t c = 0; c < tab.cols(); ++c) {
        if (allowed[c] && tab.cost(c) < best) {
          best = tab.cost(c);
          entering = c;
        }
      }
    }
    if (entering == tab.cols()) return LpStatus::kOptimal;

    // Ratio test, two passes. Pass 1 finds the true minimum ratio over
    // every eligible row. Pass 2 re-picks the leaving row among the
    // near-tied minimum-ratio rows: the one with the LARGEST pivot
    // element (Harris-style) — a pivot near the eligibility floor means a
    // ~1/kPivotTol error amplification in the Gauss-Jordan update, and a
    // handful of those corrupts the tableau until it silently stops
    // representing the original constraints (observed as megawatt-scale
    // balance violations on the 300-bus OPF). In Bland mode the tie-break
    // is the smallest basis index instead, preserving anti-cycling.
    // The rhs is clamped at zero in the ratios: a roundoff-negative rhs
    // over a small positive entry would otherwise produce a large
    // NEGATIVE ratio, making the entering variable "advance" backwards —
    // a genuine feasibility violation that then snowballs (this, plus the
    // small-pivot amplification above, was how the 118/300-bus OPFs
    // returned megawatt-infeasible "optimal" points).
    // Eligibility is RELATIVE to the column's magnitude: a column whose
    // only positive entries are roundoff-scale (vs. its largest entry) is
    // numerically a recession ray, and pivoting on such an entry advances
    // the entering variable by rhs/noise — observed as a single pivot with
    // ratio ~6e10 that knocked the 118-bus OPF megawatts off its own
    // equality constraints while the tableau still looked consistent.
    double column_max = 0.0;
    for (std::size_t r = 0; r < tab.rows(); ++r)
      column_max = std::max(column_max, std::abs(tab.at(r, entering)));
    const double eligible = std::max(kPivotTol, kRelPivotTol * column_max);
    std::size_t leaving = tab.rows();
    double best_ratio = 0.0;
    for (std::size_t r = 0; r < tab.rows(); ++r) {
      const double a = tab.at(r, entering);
      if (a <= eligible) continue;
      const double ratio = std::max(tab.rhs(r), 0.0) / a;
      if (leaving == tab.rows() || ratio < best_ratio) {
        leaving = r;
        best_ratio = ratio;
      }
    }
    if (leaving != tab.rows()) {
      const double ratio_tol = kPivotTol * (1.0 + best_ratio);
      for (std::size_t r = 0; r < tab.rows(); ++r) {
        const double a = tab.at(r, entering);
        if (r == leaving || a <= eligible) continue;
        if (std::max(tab.rhs(r), 0.0) / a > best_ratio + ratio_tol) continue;
        if (bland ? basis[r] < basis[leaving]
                  : a > tab.at(leaving, entering)) {
          leaving = r;
        }
      }
    }
    if (leaving == tab.rows()) {
      // No ratio-test row: a ray. Only a decisively negative reduced cost
      // makes it an unbounded certificate; a roundoff-level one cannot
      // improve the objective — drop the column and keep iterating.
      if (phase_one || tab.cost(entering) >= -kNoiseCostTol) {
        tab.cost(entering) = 0.0;
        continue;
      }
      return LpStatus::kUnbounded;
    }

    tab.pivot(leaving, entering);
    basis[leaving] = entering;
    ++pivots;
    if (bland) ++bland_pivots;

    if (!bland) {
      const double objective = tab.cost_rhs();
      const double tol = 1e-12 * (1.0 + std::abs(last_objective));
      stalled = std::abs(objective - last_objective) <= tol ? stalled + 1 : 0;
      last_objective = objective;
      if (stalled >= kStallLimit) bland = true;  // break potential cycles
    }
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

void LinearProgram::validate() const {
  const std::size_t n = num_variables();
  if (lower_bounds.size() != n || upper_bounds.size() != n)
    throw std::invalid_argument("LP: bound vector length mismatch");
  if (eq_matrix.rows() != eq_rhs.size() ||
      (eq_matrix.rows() > 0 && eq_matrix.cols() != n))
    throw std::invalid_argument("LP: equality block dimension mismatch");
  if (ub_matrix.rows() != ub_rhs.size() ||
      (ub_matrix.rows() > 0 && ub_matrix.cols() != n))
    throw std::invalid_argument("LP: inequality block dimension mismatch");
  for (std::size_t j = 0; j < n; ++j)
    if (lower_bounds[j] > upper_bounds[j])
      throw std::invalid_argument("LP: crossed variable bounds");
}

LpSolution solve_linear_program(const LinearProgram& lp) {
  obs::add(obs::Work::kSimplexSolves);
  obs::Span span("opf.simplex", "opf");
  lp.validate();
  const std::size_t n = lp.num_variables();
  const std::size_t m_eq = lp.eq_matrix.rows();
  const std::size_t m_ub = lp.ub_matrix.rows();

  // ---- 1. Map original variables onto non-negative standard-form ones.
  std::vector<VariableMap> maps(n);
  std::size_t num_std = 0;
  std::size_t num_range_rows = 0;  // extra rows for doubly bounded variables
  for (std::size_t j = 0; j < n; ++j) {
    const double lb = lp.lower_bounds[j];
    const double ub = lp.upper_bounds[j];
    VariableMap& vm = maps[j];
    if (std::isfinite(lb)) {
      vm.kind = VariableMap::Kind::kShifted;
      vm.offset = lb;
      vm.primary = num_std++;
      if (std::isfinite(ub)) ++num_range_rows;
    } else if (std::isfinite(ub)) {
      vm.kind = VariableMap::Kind::kNegated;
      vm.offset = ub;
      vm.primary = num_std++;
    } else {
      vm.kind = VariableMap::Kind::kSplit;
      vm.primary = num_std++;
      vm.secondary = num_std++;
    }
  }

  const std::size_t num_slack = m_ub + num_range_rows;
  const std::size_t m_total = m_eq + m_ub + num_range_rows;
  const std::size_t num_cols = num_std + num_slack + m_total;  // + artificials
  const std::size_t artificial_base = num_std + num_slack;

  Tableau tab(m_total, num_cols);
  std::vector<double> row_rhs(m_total, 0.0);

  // Writes coefficient `coeff` for original variable j into tableau row r.
  const auto add_entry = [&](std::size_t r, std::size_t j, double coeff) {
    const VariableMap& vm = maps[j];
    switch (vm.kind) {
      case VariableMap::Kind::kShifted:
        tab.at(r, vm.primary) += coeff;
        row_rhs[r] -= coeff * vm.offset;
        break;
      case VariableMap::Kind::kNegated:
        tab.at(r, vm.primary) -= coeff;
        row_rhs[r] -= coeff * vm.offset;
        break;
      case VariableMap::Kind::kSplit:
        tab.at(r, vm.primary) += coeff;
        tab.at(r, vm.secondary) -= coeff;
        break;
    }
  };

  // ---- 2. Fill constraint rows.
  for (std::size_t r = 0; r < m_eq; ++r) {
    row_rhs[r] = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double coeff = lp.eq_matrix(r, j);
      if (coeff != 0.0) add_entry(r, j, coeff);
    }
    row_rhs[r] += lp.eq_rhs[r];
  }
  for (std::size_t r = 0; r < m_ub; ++r) {
    const std::size_t row = m_eq + r;
    for (std::size_t j = 0; j < n; ++j) {
      const double coeff = lp.ub_matrix(r, j);
      if (coeff != 0.0) add_entry(row, j, coeff);
    }
    row_rhs[row] += lp.ub_rhs[r];
    tab.at(row, num_std + r) = 1.0;  // slack
  }
  {
    std::size_t range_row = m_eq + m_ub;
    std::size_t range_slack = num_std + m_ub;
    for (std::size_t j = 0; j < n; ++j) {
      const VariableMap& vm = maps[j];
      if (vm.kind == VariableMap::Kind::kShifted &&
          std::isfinite(lp.upper_bounds[j])) {
        // y_j + s = ub - lb.
        tab.at(range_row, vm.primary) = 1.0;
        tab.at(range_row, range_slack) = 1.0;
        row_rhs[range_row] = lp.upper_bounds[j] - lp.lower_bounds[j];
        ++range_row;
        ++range_slack;
      }
    }
  }

  // ---- 3. Row equilibration: divide every constraint row (and its rhs)
  // by its largest structural coefficient, leaving the slack coefficient
  // at 1 (that just rescales the nonnegative slack variable, an
  // equivalent LP, and keeps the slack columns unit vectors for the crash
  // basis below). The OPF rows mix susceptance entries (~1e4 on stiff
  // branches) with unit generator entries; without scaling, a few
  // thousand dense Gauss-Jordan pivots on such a tableau lose enough
  // precision to return "optimal" points that violate the balance
  // equations by megawatts (first seen at 300-bus scale).
  for (std::size_t r = 0; r < m_total; ++r) {
    double scale = 0.0;
    for (std::size_t c = 0; c < num_std; ++c)
      scale = std::max(scale, std::abs(tab.at(r, c)));
    if (scale > 0.0 && scale != 1.0) {
      const double inv = 1.0 / scale;
      for (std::size_t c = 0; c < num_std; ++c) tab.at(r, c) *= inv;
      row_rhs[r] *= inv;
    }
  }

  // ---- 3b. Normalize to b >= 0 and install the starting basis: a crash
  // basis of slacks wherever an inequality row kept its +1 slack after
  // sign normalization, artificials only for the remaining rows (the
  // equalities, typically). Starting from all-artificial instead makes
  // phase 1 do ~m needless pivots — prohibitive at 300-bus scale.
  std::vector<std::size_t> basis(m_total);
  for (std::size_t r = 0; r < m_total; ++r) {
    if (row_rhs[r] < 0.0) {
      for (std::size_t c = 0; c < num_cols; ++c) tab.at(r, c) = -tab.at(r, c);
      row_rhs[r] = -row_rhs[r];
    }
    tab.rhs(r) = row_rhs[r];
    const std::size_t slack_col =
        r >= m_eq ? num_std + (r - m_eq) : num_cols;
    if (slack_col < num_cols && tab.at(r, slack_col) == 1.0) {
      basis[r] = slack_col;
    } else {
      tab.at(r, artificial_base + r) = 1.0;
      basis[r] = artificial_base + r;
    }
  }

  // ---- 4. Phase 1: minimize the sum of artificials.
  // Reduced cost row: for each basic artificial (cost 1), subtract its
  // row; slack-basic rows contribute nothing. Artificial columns are
  // never allowed to (re-)enter the basis.
  for (std::size_t c = 0; c <= num_cols; ++c) tab.cost(c) = 0.0;
  for (std::size_t r = 0; r < m_total; ++r) {
    if (basis[r] < artificial_base) continue;
    for (std::size_t c = 0; c < artificial_base; ++c)
      tab.cost(c) -= tab.at(r, c);
    tab.cost_rhs() -= tab.rhs(r);
  }

  std::vector<bool> allowed(num_cols, true);
  for (std::size_t c = artificial_base; c < num_cols; ++c) allowed[c] = false;
  // The initial phase-1 objective (sum of all |rhs|) sets the problem's
  // magnitude; the infeasibility verdict must be relative to it, or pure
  // roundoff fails well-scaled large cases (first seen at 300 buses,
  // where the residual after ~1e3 pivots is ~1e-6 absolute).
  const double phase1_scale = std::max(1.0, -tab.cost_rhs());
  LpStatus status = iterate(tab, basis, allowed, /*phase_one=*/true);
  if (status != LpStatus::kOptimal) {
    return {status == LpStatus::kUnbounded ? LpStatus::kInfeasible : status,
            {}, 0.0};
  }
  if (-tab.cost_rhs() > kFeasibilityTol * phase1_scale) {
    return {LpStatus::kInfeasible, {}, 0.0};
  }

  // Drive any residual basic artificials out (or detect redundant rows —
  // they carry ~zero rhs and can simply stay pinned at zero).
  for (std::size_t r = 0; r < m_total; ++r) {
    if (basis[r] < artificial_base) continue;
    std::size_t pivot_col = num_cols;
    for (std::size_t c = 0; c < artificial_base; ++c) {
      if (std::abs(tab.at(r, c)) > 1e-7) {
        pivot_col = c;
        break;
      }
    }
    if (pivot_col != num_cols) {
      tab.pivot(r, pivot_col);
      basis[r] = pivot_col;
    }
  }

  // ---- 5. Phase 2: original objective, artificial columns frozen.
  for (std::size_t c = artificial_base; c < num_cols; ++c) allowed[c] = false;

  std::vector<double> std_costs(num_std, 0.0);
  double cost_offset = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double cj = lp.objective[j];
    const VariableMap& vm = maps[j];
    switch (vm.kind) {
      case VariableMap::Kind::kShifted:
        std_costs[vm.primary] += cj;
        cost_offset += cj * vm.offset;
        break;
      case VariableMap::Kind::kNegated:
        std_costs[vm.primary] -= cj;
        cost_offset += cj * vm.offset;
        break;
      case VariableMap::Kind::kSplit:
        std_costs[vm.primary] += cj;
        std_costs[vm.secondary] -= cj;
        break;
    }
  }
  for (std::size_t c = 0; c <= num_cols; ++c) tab.cost(c) = 0.0;
  for (std::size_t c = 0; c < num_std; ++c) tab.cost(c) = std_costs[c];
  for (std::size_t r = 0; r < m_total; ++r) {
    const std::size_t b = basis[r];
    const double cb = (b < num_std) ? std_costs[b] : 0.0;
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c <= num_cols; ++c)
      tab.cost(c) -= cb * tab.at(r, c);
  }

  status = iterate(tab, basis, allowed);
  if (status != LpStatus::kOptimal) return {status, {}, 0.0};

  // ---- 6. Recover the original variables.
  std::vector<double> std_values(num_std, 0.0);
  for (std::size_t r = 0; r < m_total; ++r) {
    if (basis[r] < num_std) std_values[basis[r]] = tab.rhs(r);
  }
  LpSolution solution;
  solution.status = LpStatus::kOptimal;
  solution.x = linalg::Vector(n);
  for (std::size_t j = 0; j < n; ++j) {
    const VariableMap& vm = maps[j];
    switch (vm.kind) {
      case VariableMap::Kind::kShifted:
        solution.x[j] = vm.offset + std_values[vm.primary];
        break;
      case VariableMap::Kind::kNegated:
        solution.x[j] = vm.offset - std_values[vm.primary];
        break;
      case VariableMap::Kind::kSplit:
        solution.x[j] = std_values[vm.primary] - std_values[vm.secondary];
        break;
    }
  }
  solution.objective = lp.objective.dot(solution.x);
  (void)cost_offset;  // folded into the dot product above
  return solution;
}

}  // namespace mtdgrid::opf
