#include "opf/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace mtdgrid::opf {

namespace {

constexpr double kPivotTol = 1e-9;
constexpr double kFeasibilityTol = 1e-7;
constexpr std::size_t kMaxIterations = 50000;
// Dual-feasibility tolerance for the unbounded verdict. A recession
// direction only proves unboundedness when its reduced cost is decisively
// negative; after hundreds of Gauss-Jordan pivots, reduced costs that are
// exactly zero in exact arithmetic (e.g. the mirror half of a split free
// variable) drift to ~-1e-9 and used to trigger bogus kUnbounded — which
// solve_dc_opf then surfaced as a bogus "infeasible" dispatch.
constexpr double kNoiseCostTol = 1e-6;

/// How an original variable maps onto the non-negative standard-form ones.
struct VariableMap {
  enum class Kind {
    kShifted,   // x = lb + y          (lb finite)
    kNegated,   // x = ub - y          (lb = -inf, ub finite)
    kSplit,     // x = y_pos - y_neg   (both bounds infinite)
  } kind = Kind::kShifted;
  std::size_t primary = 0;    // index of y (or y_pos)
  std::size_t secondary = 0;  // index of y_neg for kSplit
  double offset = 0.0;        // lb or ub used in the transform
};

/// Dense simplex tableau: `rows` constraint rows plus one cost row, with
/// the right-hand side stored as the last column. Basis[i] is the variable
/// whose column is the i-th unit vector.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_((rows + 1) * (cols + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * (cols_ + 1) + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * (cols_ + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, cols_); }
  double rhs(std::size_t r) const { return at(r, cols_); }
  double& cost(std::size_t c) { return at(rows_, c); }
  double cost(std::size_t c) const { return at(rows_, c); }
  double& cost_rhs() { return at(rows_, cols_); }
  double cost_rhs() const { return at(rows_, cols_); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Gauss-Jordan pivot on (pivot_row, pivot_col), including the cost row.
  void pivot(std::size_t pivot_row, std::size_t pivot_col) {
    const double pivot_value = at(pivot_row, pivot_col);
    assert(std::abs(pivot_value) > kPivotTol);
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c <= cols_; ++c) at(pivot_row, c) *= inv;
    at(pivot_row, pivot_col) = 1.0;  // kill rounding noise
    for (std::size_t r = 0; r <= rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = at(r, pivot_col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c)
        at(r, c) -= factor * at(pivot_row, c);
      at(r, pivot_col) = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Runs Bland-rule simplex iterations on an already-canonical tableau.
/// `allowed[c]` marks columns eligible to enter the basis.
LpStatus iterate(Tableau& tab, std::vector<std::size_t>& basis,
                 const std::vector<bool>& allowed) {
  for (std::size_t iter = 0; iter < kMaxIterations; ++iter) {
    // Bland's rule: smallest-index column with a negative reduced cost.
    std::size_t entering = tab.cols();
    for (std::size_t c = 0; c < tab.cols(); ++c) {
      if (allowed[c] && tab.cost(c) < -kPivotTol) {
        entering = c;
        break;
      }
    }
    if (entering == tab.cols()) return LpStatus::kOptimal;

    // Ratio test; Bland tie-break on the leaving basis variable index.
    std::size_t leaving = tab.rows();
    double best_ratio = 0.0;
    for (std::size_t r = 0; r < tab.rows(); ++r) {
      const double a = tab.at(r, entering);
      if (a <= kPivotTol) continue;
      const double ratio = tab.rhs(r) / a;
      if (leaving == tab.rows() || ratio < best_ratio - kPivotTol ||
          (std::abs(ratio - best_ratio) <= kPivotTol &&
           basis[r] < basis[leaving])) {
        leaving = r;
        best_ratio = ratio;
      }
    }
    if (leaving == tab.rows()) {
      // No ratio-test row: a ray. Only a decisively negative reduced cost
      // makes it an unbounded certificate; a roundoff-level one cannot
      // improve the objective — drop the column and keep iterating.
      if (tab.cost(entering) >= -kNoiseCostTol) {
        tab.cost(entering) = 0.0;
        continue;
      }
      return LpStatus::kUnbounded;
    }

    tab.pivot(leaving, entering);
    basis[leaving] = entering;
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

void LinearProgram::validate() const {
  const std::size_t n = num_variables();
  if (lower_bounds.size() != n || upper_bounds.size() != n)
    throw std::invalid_argument("LP: bound vector length mismatch");
  if (eq_matrix.rows() != eq_rhs.size() ||
      (eq_matrix.rows() > 0 && eq_matrix.cols() != n))
    throw std::invalid_argument("LP: equality block dimension mismatch");
  if (ub_matrix.rows() != ub_rhs.size() ||
      (ub_matrix.rows() > 0 && ub_matrix.cols() != n))
    throw std::invalid_argument("LP: inequality block dimension mismatch");
  for (std::size_t j = 0; j < n; ++j)
    if (lower_bounds[j] > upper_bounds[j])
      throw std::invalid_argument("LP: crossed variable bounds");
}

LpSolution solve_linear_program(const LinearProgram& lp) {
  lp.validate();
  const std::size_t n = lp.num_variables();
  const std::size_t m_eq = lp.eq_matrix.rows();
  const std::size_t m_ub = lp.ub_matrix.rows();

  // ---- 1. Map original variables onto non-negative standard-form ones.
  std::vector<VariableMap> maps(n);
  std::size_t num_std = 0;
  std::size_t num_range_rows = 0;  // extra rows for doubly bounded variables
  for (std::size_t j = 0; j < n; ++j) {
    const double lb = lp.lower_bounds[j];
    const double ub = lp.upper_bounds[j];
    VariableMap& vm = maps[j];
    if (std::isfinite(lb)) {
      vm.kind = VariableMap::Kind::kShifted;
      vm.offset = lb;
      vm.primary = num_std++;
      if (std::isfinite(ub)) ++num_range_rows;
    } else if (std::isfinite(ub)) {
      vm.kind = VariableMap::Kind::kNegated;
      vm.offset = ub;
      vm.primary = num_std++;
    } else {
      vm.kind = VariableMap::Kind::kSplit;
      vm.primary = num_std++;
      vm.secondary = num_std++;
    }
  }

  const std::size_t num_slack = m_ub + num_range_rows;
  const std::size_t m_total = m_eq + m_ub + num_range_rows;
  const std::size_t num_cols = num_std + num_slack + m_total;  // + artificials
  const std::size_t artificial_base = num_std + num_slack;

  Tableau tab(m_total, num_cols);
  std::vector<double> row_rhs(m_total, 0.0);

  // Writes coefficient `coeff` for original variable j into tableau row r.
  const auto add_entry = [&](std::size_t r, std::size_t j, double coeff) {
    const VariableMap& vm = maps[j];
    switch (vm.kind) {
      case VariableMap::Kind::kShifted:
        tab.at(r, vm.primary) += coeff;
        row_rhs[r] -= coeff * vm.offset;
        break;
      case VariableMap::Kind::kNegated:
        tab.at(r, vm.primary) -= coeff;
        row_rhs[r] -= coeff * vm.offset;
        break;
      case VariableMap::Kind::kSplit:
        tab.at(r, vm.primary) += coeff;
        tab.at(r, vm.secondary) -= coeff;
        break;
    }
  };

  // ---- 2. Fill constraint rows.
  for (std::size_t r = 0; r < m_eq; ++r) {
    row_rhs[r] = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double coeff = lp.eq_matrix(r, j);
      if (coeff != 0.0) add_entry(r, j, coeff);
    }
    row_rhs[r] += lp.eq_rhs[r];
  }
  for (std::size_t r = 0; r < m_ub; ++r) {
    const std::size_t row = m_eq + r;
    for (std::size_t j = 0; j < n; ++j) {
      const double coeff = lp.ub_matrix(r, j);
      if (coeff != 0.0) add_entry(row, j, coeff);
    }
    row_rhs[row] += lp.ub_rhs[r];
    tab.at(row, num_std + r) = 1.0;  // slack
  }
  {
    std::size_t range_row = m_eq + m_ub;
    std::size_t range_slack = num_std + m_ub;
    for (std::size_t j = 0; j < n; ++j) {
      const VariableMap& vm = maps[j];
      if (vm.kind == VariableMap::Kind::kShifted &&
          std::isfinite(lp.upper_bounds[j])) {
        // y_j + s = ub - lb.
        tab.at(range_row, vm.primary) = 1.0;
        tab.at(range_row, range_slack) = 1.0;
        row_rhs[range_row] = lp.upper_bounds[j] - lp.lower_bounds[j];
        ++range_row;
        ++range_slack;
      }
    }
  }

  // ---- 3. Normalize to b >= 0 and install artificial basis.
  std::vector<std::size_t> basis(m_total);
  for (std::size_t r = 0; r < m_total; ++r) {
    if (row_rhs[r] < 0.0) {
      for (std::size_t c = 0; c < num_cols; ++c) tab.at(r, c) = -tab.at(r, c);
      row_rhs[r] = -row_rhs[r];
    }
    tab.rhs(r) = row_rhs[r];
    tab.at(r, artificial_base + r) = 1.0;
    basis[r] = artificial_base + r;
  }

  // ---- 4. Phase 1: minimize the sum of artificials.
  // Reduced cost row: for each artificial cost 1, subtract its (basic) row.
  for (std::size_t c = 0; c <= num_cols; ++c) tab.cost(c) = 0.0;
  for (std::size_t c = 0; c < num_cols; ++c) {
    if (c >= artificial_base) continue;
    double acc = 0.0;
    for (std::size_t r = 0; r < m_total; ++r) acc += tab.at(r, c);
    tab.cost(c) = -acc;
  }
  {
    double acc = 0.0;
    for (std::size_t r = 0; r < m_total; ++r) acc += tab.rhs(r);
    tab.cost_rhs() = -acc;
  }

  std::vector<bool> allowed(num_cols, true);
  LpStatus status = iterate(tab, basis, allowed);
  if (status != LpStatus::kOptimal) {
    return {status == LpStatus::kUnbounded ? LpStatus::kInfeasible : status,
            {}, 0.0};
  }
  if (-tab.cost_rhs() > kFeasibilityTol) {
    return {LpStatus::kInfeasible, {}, 0.0};
  }

  // Drive any residual basic artificials out (or detect redundant rows —
  // they carry ~zero rhs and can simply stay pinned at zero).
  for (std::size_t r = 0; r < m_total; ++r) {
    if (basis[r] < artificial_base) continue;
    std::size_t pivot_col = num_cols;
    for (std::size_t c = 0; c < artificial_base; ++c) {
      if (std::abs(tab.at(r, c)) > 1e-7) {
        pivot_col = c;
        break;
      }
    }
    if (pivot_col != num_cols) {
      tab.pivot(r, pivot_col);
      basis[r] = pivot_col;
    }
  }

  // ---- 5. Phase 2: original objective, artificial columns frozen.
  for (std::size_t c = artificial_base; c < num_cols; ++c) allowed[c] = false;

  std::vector<double> std_costs(num_std, 0.0);
  double cost_offset = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double cj = lp.objective[j];
    const VariableMap& vm = maps[j];
    switch (vm.kind) {
      case VariableMap::Kind::kShifted:
        std_costs[vm.primary] += cj;
        cost_offset += cj * vm.offset;
        break;
      case VariableMap::Kind::kNegated:
        std_costs[vm.primary] -= cj;
        cost_offset += cj * vm.offset;
        break;
      case VariableMap::Kind::kSplit:
        std_costs[vm.primary] += cj;
        std_costs[vm.secondary] -= cj;
        break;
    }
  }
  for (std::size_t c = 0; c <= num_cols; ++c) tab.cost(c) = 0.0;
  for (std::size_t c = 0; c < num_std; ++c) tab.cost(c) = std_costs[c];
  for (std::size_t r = 0; r < m_total; ++r) {
    const std::size_t b = basis[r];
    const double cb = (b < num_std) ? std_costs[b] : 0.0;
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c <= num_cols; ++c)
      tab.cost(c) -= cb * tab.at(r, c);
  }

  status = iterate(tab, basis, allowed);
  if (status != LpStatus::kOptimal) return {status, {}, 0.0};

  // ---- 6. Recover the original variables.
  std::vector<double> std_values(num_std, 0.0);
  for (std::size_t r = 0; r < m_total; ++r) {
    if (basis[r] < num_std) std_values[basis[r]] = tab.rhs(r);
  }
  LpSolution solution;
  solution.status = LpStatus::kOptimal;
  solution.x = linalg::Vector(n);
  for (std::size_t j = 0; j < n; ++j) {
    const VariableMap& vm = maps[j];
    switch (vm.kind) {
      case VariableMap::Kind::kShifted:
        solution.x[j] = vm.offset + std_values[vm.primary];
        break;
      case VariableMap::Kind::kNegated:
        solution.x[j] = vm.offset - std_values[vm.primary];
        break;
      case VariableMap::Kind::kSplit:
        solution.x[j] = std_values[vm.primary] - std_values[vm.secondary];
        break;
    }
  }
  solution.objective = lp.objective.dot(solution.x);
  (void)cost_offset;  // folded into the dot product above
  return solution;
}

}  // namespace mtdgrid::opf
