#pragma once

#include <limits>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mtdgrid::opf {

/// Value used for "no bound" entries in LinearProgram bound vectors.
inline constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

/// A linear program in the general form
///
///   minimize    c^T x
///   subject to  A_eq x  = b_eq
///               A_ub x <= b_ub
///               lb <= x <= ub          (entries may be +/- infinity)
///
/// This is the workhorse behind the DC optimal power flow: for fixed
/// branch reactances, problem (1) of the paper is exactly such an LP in
/// the dispatch and the voltage phase angles.
struct LinearProgram {
  linalg::Vector objective;  ///< cost vector c
  linalg::Matrix eq_matrix;  ///< may have zero rows
  linalg::Vector eq_rhs;     ///< right-hand side of A_eq x == b_eq
  linalg::Matrix ub_matrix;  ///< may have zero rows
  linalg::Vector ub_rhs;     ///< right-hand side of A_ub x <= b_ub
  linalg::Vector lower_bounds;  ///< per-variable lb (may be -infinity)
  linalg::Vector upper_bounds;  ///< per-variable ub (may be +infinity)

  /// Number of decision variables.
  std::size_t num_variables() const { return objective.size(); }

  /// Throws std::invalid_argument when dimensions are inconsistent.
  void validate() const;
};

/// Termination state of a `solve_linear_program` call.
enum class LpStatus {
  kOptimal,         ///< optimal basic feasible solution found
  kInfeasible,      ///< constraints admit no feasible point
  kUnbounded,       ///< objective decreases without bound
  kIterationLimit,  ///< pivot budget exhausted before convergence
};

/// Result of a `solve_linear_program` call.
struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;  ///< termination state
  linalg::Vector x;        ///< optimal point (valid when kOptimal)
  double objective = 0.0;  ///< optimal objective value (valid when kOptimal)
};

/// Solves the linear program with a dense two-phase primal simplex using
/// Bland's anti-cycling rule. Intended for the small/medium LPs that arise
/// from the benchmark grids (tens to a few hundred rows).
LpSolution solve_linear_program(const LinearProgram& lp);

}  // namespace mtdgrid::opf
