#include "serve/daemon.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "attack/adaptive.hpp"
#include "attack/campaign.hpp"
#include "estimation/detection.hpp"
#include "grid/measurement.hpp"
#include "io/case_registry.hpp"
#include "mtd/effectiveness.hpp"
#include "obs/prometheus.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"

namespace mtdgrid::serve {

namespace {

// Substream family tags (DESIGN.md "Serving architecture"): the daemon's
// request randomness is rooted at stream_seed(seed, tag), so request
// streams never collide with the engine's sequential draws and a reply is
// a pure function of (seed, verb, hour, id) — independent of request
// interleaving and thread count. The probe and campaign tags are shared
// with the attack layer (attack::kProbeOracleTag /
// attack::kCampaignStreamTag), so an in-process campaign's probe-based
// attacker observes exactly the samples a client probing this daemon at
// the same (seed, hour, id) would receive.
constexpr std::uint64_t kDetectStreamTag = 0x646574656374ULL; // "detect"

Json vector_json(const linalg::Vector& v) {
  Json arr{Json::Array{}};
  for (std::size_t i = 0; i < v.size(); ++i) arr.push_back(Json(v[i]));
  return arr;
}

// Per-name span aggregate for the "trace_us" reply section.
struct TraceAgg {
  const char* name;
  const char* category;
  std::size_t count;
  double total_us;
};

}  // namespace

grid::DailyLoadTrace default_daemon_trace(const grid::PowerSystem& sys) {
  const grid::DailyLoadTrace base =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  // The NYISO winter-weekday totals were fitted to the IEEE 14-bus
  // system's 259 MW nominal total; any other case replays the same
  // relative profile scaled to its own nominal load.
  constexpr double kCase14NominalMw = 259.0;
  const double scale = sys.total_load_mw() / kCase14NominalMw;
  std::vector<double> totals(base.size());
  for (std::size_t h = 0; h < base.size(); ++h)
    totals[h] = base.total_mw(h) * scale;
  return grid::DailyLoadTrace(std::move(totals));
}

MtdDaemon::MtdDaemon(grid::PowerSystem sys, grid::DailyLoadTrace trace,
                     DaemonOptions options)
    : options_(std::move(options)),
      case_name_(sys.name()),
      // Guaranteed copy elision constructs the engine in place while the
      // lambda's registry scope is active, so the pass-1 baseline's work
      // (one OPF solve per trace hour) is attributed to this shard.
      engine_([&]() -> mtd::DailyEngine {
        obs::ScopedRegistry obs_scope(&registry_);
        return mtd::DailyEngine(std::move(sys), std::move(trace),
                                options_.daily);
      }()),
      rng_(options_.seed),
      probe_root_(stats::stream_seed(options_.seed, attack::kProbeOracleTag)),
      detect_root_(stats::stream_seed(options_.seed, kDetectStreamTag)),
      campaign_root_(
          stats::stream_seed(options_.seed, attack::kCampaignStreamTag)) {
  if (options_.history_hours == 0) options_.history_hours = 1;
  history_.store(std::make_shared<SnapshotWindow>());
  tick();  // key hour 0: the daemon serves immediately after construction
}

MtdDaemon::MtdDaemon(std::pair<grid::PowerSystem, grid::DailyLoadTrace> loaded,
                     DaemonOptions options)
    : MtdDaemon(std::move(loaded.first), std::move(loaded.second),
                std::move(options)) {}

MtdDaemon::MtdDaemon(const DaemonOptions& options)
    : MtdDaemon(
          [&options] {
            grid::PowerSystem sys = io::load_case(options.case_name);
            grid::DailyLoadTrace trace = default_daemon_trace(sys);
            return std::pair(std::move(sys), std::move(trace));
          }(),
          options) {
  case_name_ = options_.case_name;  // report the registry name, not the
                                    // case file's internal system name
}

std::size_t MtdDaemon::tick() {
  std::lock_guard<std::mutex> exec_lock(exec_mutex_);
  return tick_locked();
}

std::size_t MtdDaemon::tick(ExecLock& lock) {
  // The caller pre-acquired this daemon's write lock (fleet broadcast
  // tick: all shard locks first, then one parallel region). The lock may
  // be owned by a different thread than the one running the engine work;
  // mutual exclusion is what matters, and unlocking stays with the owner.
  if (lock.mutex() != &exec_mutex_ || !lock.owns_lock())
    throw std::logic_error("tick(ExecLock&): lock must hold this daemon's "
                           "exec_lock()");
  return tick_locked();
}

std::size_t MtdDaemon::tick_locked() {
  // Direct `tick()` callers (construction, the fleet's broadcast tick,
  // the re-keying scheduler) arrive without a request scope; requests
  // re-scoping to the same registry is a harmless no-op.
  obs::ScopedRegistry obs_scope(&registry_);
  obs::Span span("serve.tick", "serve");
  mtd::DailyHourOutcome outcome = engine_.advance_hour(rng_);

  auto snap = std::make_shared<HourKeySnapshot>();
  snap->hour = outcome.record.hour;
  snap->trace_hour = snap->hour % engine_.hours_per_day();
  snap->record = outcome.record;
  snap->keyed = outcome.record.feasible;
  if (snap->keyed) {
    const auto dfacts = engine_.system().dfacts_branches();
    snap->setpoints = linalg::Vector(dfacts.size());
    for (std::size_t k = 0; k < dfacts.size(); ++k)
      snap->setpoints[k] = outcome.reactances[dfacts[k]];
    snap->reactances = std::move(outcome.reactances);
    snap->dispatch = std::move(outcome.dispatch);
    snap->z_ref = std::move(outcome.z_ref);
    snap->estimator = std::make_shared<const estimation::StateEstimator>(
        std::move(outcome.h_mtd), options_.daily.effectiveness.sigma_mw);
    snap->bdd = std::make_shared<const estimation::BadDataDetector>(
        *snap->estimator, options_.daily.effectiveness.fp_rate);
  }

  // Publish: readers atomically load the whole retention window, so a
  // request never observes a half-applied key change or a half-trimmed
  // window. `exec_mutex_` makes this the only writer.
  auto next = std::make_shared<SnapshotWindow>(*history_.load());
  next->push_back(std::move(snap));
  while (next->size() > options_.history_hours)
    next->erase(next->begin());
  const std::size_t hour = next->back()->hour;
  history_.store(std::move(next));
  counters_.ticks.fetch_add(1, std::memory_order_relaxed);
  return hour;
}

std::size_t MtdDaemon::current_hour() const {
  return window()->back()->hour;
}

std::shared_ptr<const HourKeySnapshot> MtdDaemon::current_snapshot() const {
  return window()->back();
}

std::shared_ptr<const HourKeySnapshot> MtdDaemon::snapshot_at(
    std::size_t hour) const {
  for (const auto& snap : *window())
    if (snap->hour == hour) return snap;
  return nullptr;
}

DaemonCounters MtdDaemon::counters() const {
  DaemonCounters c;
  c.requests = counters_.requests.load(std::memory_order_relaxed);
  c.errors = counters_.errors.load(std::memory_order_relaxed);
  c.ticks = counters_.ticks.load(std::memory_order_relaxed);
  c.dispatch = counters_.dispatch.load(std::memory_order_relaxed);
  c.detect = counters_.detect.load(std::memory_order_relaxed);
  c.probe = counters_.probe.load(std::memory_order_relaxed);
  c.status = counters_.status.load(std::memory_order_relaxed);
  c.metrics = counters_.metrics.load(std::memory_order_relaxed);
  c.campaign = counters_.campaign.load(std::memory_order_relaxed);
  return c;
}

bool MtdDaemon::needs_exec_lock(const Request& req) {
  switch (req.verb) {
    case Verb::kTick:
    case Verb::kDispatch:
      return true;  // mutate / read engine state
    case Verb::kDetect:
      // Monte-Carlo scoring fans out on the shared thread pool; routing
      // it through the write lock bounds pool contention per shard. The
      // plain BDD and analytic methods are snapshot-pure and lock-free.
      return req.method == DetectMethod::kMonteCarlo;
    case Verb::kCampaign:
      // Fans out on the shared thread pool (one evaluate_effectiveness
      // per scored hour and policy), like Monte-Carlo detect.
      return true;
    default:
      return false;
  }
}

std::string MtdDaemon::handle_line(const std::string& line) {
  std::string trimmed = line;
  while (!trimmed.empty() &&
         (trimmed.back() == '\r' || trimmed.back() == '\n'))
    trimmed.pop_back();
  if (trimmed.find_first_not_of(" \t") == std::string::npos) return "";

  ParseOutcome outcome = parse_request(trimmed);
  if (const ProtocolError* err = std::get_if<ProtocolError>(&outcome)) {
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    return error_line(*err);
  }
  return serve_request(std::get<Request>(outcome));
}

std::string MtdDaemon::serve_request(const Request& req) {
  const auto t0 = std::chrono::steady_clock::now();
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  const auto run = [&]() -> std::string {
    if (needs_exec_lock(req)) {
      std::lock_guard<std::mutex> exec_lock(exec_mutex_);
      return handle_request(req);
    }
    // Lock-free read path: answers entirely off the atomically loaded
    // snapshot window, even while a tick holds the write lock.
    return handle_request(req);
  };
  std::string reply;
  if (req.trace) {
    // Opt-in span capture: the mutex-guarded sink is constructed only
    // here, so untraced requests never pay for it. The spans carry wall
    // clock, so the section is opt-in exactly like "latency".
    obs::SpanCapture capture;
    {
      obs::ScopedContext obs_scope({&registry_, &capture});
      obs::Span span(verb_name(req.verb), "serve");
      reply = run();
    }
    // Splice the aggregated spans into the reply object (error replies
    // are objects too, so popping the closing brace is always valid).
    if (!reply.empty() && reply.back() == '}') {
      Json spans{Json::Array{}};
      // Aggregate by span name in first-seen order: stable, compact, and
      // independent of cross-thread interleaving in everything but the
      // wall-clock fields.
      std::vector<TraceAgg> agg;
      for (const obs::TraceEvent& e : capture.events()) {
        TraceAgg* slot = nullptr;
        for (TraceAgg& a : agg)
          if (a.name == e.name) slot = &a;
        if (slot == nullptr) {
          agg.push_back({e.name, e.category, 0, 0.0});
          slot = &agg.back();
        }
        ++slot->count;
        slot->total_us += e.dur_us;
      }
      for (const TraceAgg& a : agg) {
        Json entry;
        entry.set("name", Json(std::string(a.name)));
        entry.set("cat", Json(std::string(a.category)));
        entry.set("count", Json(a.count));
        entry.set("total_us", Json(a.total_us));
        spans.push_back(std::move(entry));
      }
      reply.pop_back();
      reply += ",\"trace_us\":" + spans.dump() + "}";
    }
  } else {
    obs::ScopedRegistry obs_scope(&registry_);
    reply = run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  record_latency(
      std::chrono::duration<double, std::micro>(t1 - t0).count());
  return reply;
}

std::string MtdDaemon::error_line(const ProtocolError& error) {
  counters_.errors.fetch_add(1, std::memory_order_relaxed);
  return error_reply(error);
}

std::string MtdDaemon::not_keyed_reply(std::size_t hour) {
  return error_line(
      {"not-keyed", "hour " + std::to_string(hour) +
                        " has no active key (selection infeasible)"});
}

std::string MtdDaemon::handle_request(const Request& req) {
  switch (req.verb) {
    case Verb::kDispatch: return reply_dispatch(req);
    case Verb::kDetect: return reply_detect(req);
    case Verb::kProbe: return reply_probe(req);
    case Verb::kStatus: return reply_status(req);
    case Verb::kMetrics: return reply_metrics(req);
    case Verb::kTick: return reply_tick(req);
    case Verb::kCampaign: return reply_campaign(req);
    case Verb::kShutdown: return reply_shutdown(req);
  }
  return error_line({"internal", "unhandled verb"});
}

std::shared_ptr<const HourKeySnapshot> MtdDaemon::resolve_snapshot(
    const SnapshotWindow& window, const Request& req, std::string& error) {
  if (!req.has_hour) return window.back();
  for (const auto& snap : window)
    if (snap->hour == req.hour) return snap;
  error = error_line(
      {"bad-hour",
       "hour " + std::to_string(req.hour) + " is not retained (retained: " +
           std::to_string(window.front()->hour) + ".." +
           std::to_string(window.back()->hour) + ")"});
  return nullptr;
}

std::string MtdDaemon::reply_dispatch(const Request& req) {
  const auto win = window();
  std::string error;
  const auto snap = resolve_snapshot(*win, req, error);
  if (!snap) return error;
  if (!snap->keyed) return not_keyed_reply(snap->hour);
  counters_.dispatch.fetch_add(1, std::memory_order_relaxed);
  Json reply;
  reply.set("ok", Json(true));
  reply.set("op", Json("dispatch"));
  if (req.has_id) reply.set("id", Json(req.id));
  reply.set("hour", Json(snap->hour));
  reply.set("trace_hour", Json(snap->trace_hour));
  reply.set("gamma_th", Json(snap->record.gamma_threshold));
  reply.set("spa", Json(snap->record.gamma_ht_hmtd));
  reply.set("cost", Json(snap->record.mtd_opf_cost));
  reply.set("base_cost", Json(snap->record.base_opf_cost));
  reply.set("cost_increase_pct", Json(snap->record.cost_increase_pct));
  Json branches{Json::Array{}};
  for (const std::size_t b : engine_.system().dfacts_branches())
    branches.push_back(Json(b));
  reply.set("branches", std::move(branches));
  reply.set("setpoints", vector_json(snap->setpoints));
  return reply.dump();
}

std::string MtdDaemon::reply_detect(const Request& req) {
  const auto win = window();
  std::string error;
  const auto snap = resolve_snapshot(*win, req, error);
  if (!snap) return error;
  if (!snap->keyed) return not_keyed_reply(snap->hour);
  const linalg::Vector& z = req.has_z ? req.z : snap->z_ref;
  if (z.size() != snap->estimator->num_measurements())
    return error_line(
        {"bad-request",
         "\"z\" must have " +
             std::to_string(snap->estimator->num_measurements()) +
             " entries (order: L forward flows, L reverse flows, N "
             "injections; MW)"});
  counters_.detect.fetch_add(1, std::memory_order_relaxed);
  const double residual = snap->estimator->normalized_residual_norm(z);
  Json reply;
  reply.set("ok", Json(true));
  reply.set("op", Json("detect"));
  if (req.has_id) reply.set("id", Json(req.id));
  reply.set("hour", Json(snap->hour));
  reply.set("alarm", Json(snap->bdd->alarm(residual)));
  reply.set("residual", Json(residual));
  reply.set("tau", Json(snap->bdd->threshold()));
  reply.set("dof", Json(snap->bdd->dof()));
  if (req.method != DetectMethod::kBdd) {
    // Score the *implied deviation* a = z - z_ref: how reliably would the
    // detector catch this exact injection across noise realizations.
    linalg::Vector a = z;
    a -= snap->z_ref;
    double p_detect = 0.0;
    if (req.method == DetectMethod::kAnalytic) {
      p_detect = estimation::analytic_detection_probability(
          *snap->estimator, *snap->bdd, a);
      reply.set("method", Json("analytic"));
    } else {
      // Per-request substream: a pure function of (seed, hour, id), so
      // the reply does not depend on request interleaving, other
      // requests, or the thread count.
      const std::uint64_t root = stats::stream_seed(
          stats::stream_seed(detect_root_, snap->hour), req.id);
      p_detect = estimation::monte_carlo_detection_probability_seeded(
          *snap->estimator, *snap->bdd, snap->z_ref, a, req.trials, root);
      reply.set("method", Json("mc"));
      reply.set("trials", Json(req.trials));
    }
    reply.set("p_detect", Json(p_detect));
  }
  return reply.dump();
}

std::string MtdDaemon::reply_probe(const Request& req) {
  const auto win = window();
  std::string error;
  const auto snap = resolve_snapshot(*win, req, error);
  if (!snap) return error;
  if (!snap->keyed) return not_keyed_reply(snap->hour);
  counters_.probe.fetch_add(1, std::memory_order_relaxed);
  // Attack-free sample on the request's own substream (pure function of
  // (seed, hour, id)): z = z_ref + sigma * N(0, I). One definition shared
  // with the attacker-side estimators (attack::probe_measurement).
  const linalg::Vector z = attack::probe_measurement(
      snap->z_ref, options_.daily.effectiveness.sigma_mw, probe_root_,
      snap->hour, req.id);
  const double residual = snap->estimator->normalized_residual_norm(z);
  Json reply;
  reply.set("ok", Json(true));
  reply.set("op", Json("probe"));
  if (req.has_id) reply.set("id", Json(req.id));
  reply.set("hour", Json(snap->hour));
  reply.set("alarm", Json(snap->bdd->alarm(residual)));
  reply.set("residual", Json(residual));
  reply.set("z", vector_json(z));
  return reply.dump();
}

std::string MtdDaemon::reply_status(const Request& req) {
  const auto win = window();
  std::string error;
  const auto snap = resolve_snapshot(*win, req, error);
  if (!snap) return error;
  counters_.status.fetch_add(1, std::memory_order_relaxed);
  const std::size_t retained_lo = win->front()->hour;
  const std::size_t retained_hi = win->back()->hour;
  const std::uint64_t ticks =
      counters_.ticks.load(std::memory_order_relaxed);
  const std::uint64_t requests =
      counters_.requests.load(std::memory_order_relaxed);
  Json reply;
  reply.set("ok", Json(true));
  reply.set("op", Json("status"));
  if (req.has_id) reply.set("id", Json(req.id));
  reply.set("proto", Json(static_cast<std::size_t>(kProtocolVersion)));
  reply.set("case", Json(case_name_));
  reply.set("hour", Json(snap->hour));
  reply.set("trace_hour", Json(snap->trace_hour));
  reply.set("hours_per_day", Json(engine_.hours_per_day()));
  reply.set("keyed", Json(snap->keyed));
  reply.set("gamma_th", Json(snap->record.gamma_threshold));
  reply.set("eta", Json(snap->record.eta_at_target));
  reply.set("spa", Json(snap->record.gamma_ht_hmtd));
  reply.set("cost_increase_pct", Json(snap->record.cost_increase_pct));
  reply.set("load_mw", Json(snap->record.total_load_mw));
  Json retained{Json::Array{}};
  retained.push_back(Json(retained_lo));
  retained.push_back(Json(retained_hi));
  reply.set("retained", std::move(retained));
  reply.set("ticks", Json(ticks));
  reply.set("requests", Json(requests));
  return reply.dump();
}

std::string MtdDaemon::reply_metrics(const Request& req) {
  counters_.metrics.fetch_add(1, std::memory_order_relaxed);
  const DaemonCounters c = counters();
  std::uint64_t buckets[6];
  const std::uint64_t lat_count =
      latency_count_.load(std::memory_order_relaxed);
  const double lat_sum = latency_sum_us_.load(std::memory_order_relaxed);
  const double lat_max = latency_max_us_.load(std::memory_order_relaxed);
  for (int i = 0; i < 6; ++i)
    buckets[i] = latency_buckets_[i].load(std::memory_order_relaxed);
  const obs::WorkSnapshot work = registry_.work_snapshot();

  if (req.prometheus_format) {
    // Prometheus text exposition, carried as a JSON string field so the
    // transport stays line-based. It includes the wall-clock latency
    // histogram and the structural pool counters, so (like "latency")
    // this form never appears in byte-diffed transcripts.
    obs::PrometheusBuilder b;
    b.counter("mtdgrid_requests_total",
              "Request lines handled (including errors)", c.requests);
    b.counter("mtdgrid_errors_total", "Error replies sent", c.errors);
    b.counter("mtdgrid_ticks_total", "Re-keying steps (manual + scheduled)",
              c.ticks);
    b.counter_family("mtdgrid_verb_requests_total",
                     "Requests served successfully, by verb",
                     {{{{"verb", "dispatch"}}, c.dispatch},
                      {{{"verb", "detect"}}, c.detect},
                      {{{"verb", "probe"}}, c.probe},
                      {{{"verb", "status"}}, c.status},
                      {{{"verb", "metrics"}}, c.metrics},
                      {{{"verb", "campaign"}}, c.campaign}});
    obs::render_work_counters(b, work);
    b.gauge("mtdgrid_current_hour", "Current virtual-clock hour",
            static_cast<double>(window()->back()->hour));
    b.histogram("mtdgrid_request_latency_seconds",
                "Service time of handled request lines",
                {1e-4, 1e-3, 1e-2, 1e-1, 1.0},
                std::vector<std::uint64_t>(buckets, buckets + 6), lat_count,
                lat_sum / 1e6);
    Json reply;
    reply.set("ok", Json(true));
    reply.set("op", Json("metrics"));
    if (req.has_id) reply.set("id", Json(req.id));
    reply.set("format", Json("prometheus"));
    reply.set("prometheus", Json(b.text()));
    return reply.dump();
  }

  Json reply;
  reply.set("ok", Json(true));
  reply.set("op", Json("metrics"));
  if (req.has_id) reply.set("id", Json(req.id));
  reply.set("requests", Json(c.requests));
  reply.set("errors", Json(c.errors));
  reply.set("ticks", Json(c.ticks));
  reply.set("dispatch", Json(c.dispatch));
  reply.set("detect", Json(c.detect));
  reply.set("probe", Json(c.probe));
  reply.set("status", Json(c.status));
  reply.set("metrics", Json(c.metrics));
  reply.set("campaign", Json(c.campaign));
  // Engine work counters, deterministic ones only (obs::work_info): for
  // a fixed transcript these are pure functions of (seed, inputs), so
  // default metrics replies stay byte-identical across thread counts —
  // CI diffs them at --threads 1 vs 8. The structural pool counters are
  // exported via the Prometheus form instead.
  Json engine;
  for (std::size_t i = 0; i < obs::kWorkCount; ++i) {
    const obs::WorkInfo& info = obs::work_info(static_cast<obs::Work>(i));
    if (info.deterministic) engine.set(info.name, Json(work[i]));
  }
  reply.set("engine", std::move(engine));
  if (req.include_latency) {
    // The one non-deterministic reply section, opt-in so that default
    // metrics replies stay byte-comparable across runs and thread counts.
    Json latency;
    latency.set("count", Json(lat_count));
    latency.set("mean_us",
                Json(lat_count > 0 ? lat_sum / static_cast<double>(lat_count)
                                   : 0.0));
    latency.set("max_us", Json(lat_max));
    Json hist;
    static const char* const kNames[6] = {"le_100us", "le_1ms",   "le_10ms",
                                          "le_100ms", "le_1s",    "gt_1s"};
    for (int i = 0; i < 6; ++i) hist.set(kNames[i], Json(buckets[i]));
    latency.set("buckets", std::move(hist));
    reply.set("latency_us", std::move(latency));
  }
  return reply.dump();
}

std::string MtdDaemon::reply_tick(const Request& req) {
  tick_locked();  // exec lock already held by handle_line
  const auto snap = current_snapshot();
  Json reply;
  reply.set("ok", Json(true));
  reply.set("op", Json("tick"));
  if (req.has_id) reply.set("id", Json(req.id));
  reply.set("hour", Json(snap->hour));
  reply.set("trace_hour", Json(snap->trace_hour));
  reply.set("keyed", Json(snap->keyed));
  reply.set("gamma_th", Json(snap->record.gamma_threshold));
  reply.set("eta", Json(snap->record.eta_at_target));
  reply.set("load_mw", Json(snap->record.total_load_mw));
  return reply.dump();
}

std::string MtdDaemon::reply_campaign(const Request& req) {
  const auto win = window();
  // Scorable boundaries: consecutive keyed snapshot pairs (prev, cur) —
  // the key retired at cur's re-keying step and the key it adopted.
  std::vector<std::size_t> pairs;  // indices of `cur` within the window
  for (std::size_t i = 1; i < win->size(); ++i)
    if ((*win)[i - 1]->keyed && (*win)[i]->keyed) pairs.push_back(i);
  if (req.has_hours && pairs.size() > req.hours)
    pairs.erase(pairs.begin(), pairs.end() - static_cast<std::ptrdiff_t>(
                                                 req.hours));
  if (pairs.empty())
    return error_line(
        {"not-keyed",
         "campaign needs two consecutive keyed retained hours (tick "
         "first)"});
  counters_.campaign.fetch_add(1, std::memory_order_relaxed);

  static const attack::AttackerPolicy kAll[4] = {
      attack::AttackerPolicy::kZeroKnowledge,
      attack::AttackerPolicy::kStaleKey, attack::AttackerPolicy::kProbe,
      attack::AttackerPolicy::kOmniscient};
  std::vector<attack::AttackerPolicy> policies;
  if (req.has_policy) {
    attack::AttackerPolicy p = attack::AttackerPolicy::kZeroKnowledge;
    attack::parse_attacker_policy(req.policy, p);  // validated at parse
    policies.push_back(p);
  } else {
    policies.assign(kAll, kAll + 4);
  }

  // The zero-knowledge matrix: nominal reactances (the engine never
  // mutates them; ticks only move the loads, which H is independent of).
  const linalg::Matrix h_nominal =
      grid::measurement_matrix(engine_.system());
  const double sigma = options_.daily.effectiveness.sigma_mw;
  mtd::EffectivenessOptions eff = options_.daily.effectiveness;
  eff.deltas = {options_.daily.target_delta};

  Json reply;
  reply.set("ok", Json(true));
  reply.set("op", Json("campaign"));
  if (req.has_id) reply.set("id", Json(req.id));
  reply.set("first_hour", Json((*win)[pairs.front()]->hour));
  reply.set("last_hour", Json((*win)[pairs.back()]->hour));
  reply.set("hours_scored", Json(pairs.size()));
  Json hours_json{Json::Array{}};
  for (const std::size_t i : pairs)
    hours_json.push_back(Json((*win)[i]->hour));
  reply.set("hours", std::move(hours_json));

  const std::uint64_t request_root =
      stats::stream_seed(campaign_root_, req.id);
  Json out_policies{Json::Array{}};
  for (const attack::AttackerPolicy policy : policies) {
    Json cell;
    cell.set("policy", Json(attack::attacker_policy_name(policy)));
    if (policy == attack::AttackerPolicy::kProbe)
      cell.set("probe_budget", Json(req.probes));
    double detection_sum = 0.0;
    double eta_sum = 0.0;
    std::uint64_t probes_used = 0;
    std::uint64_t boundary_replays = 0;
    Json hourly_detection{Json::Array{}};
    Json hourly_eta{Json::Array{}};
    // Substream keyed by (policy, hour), not by evaluation order: a
    // single-policy reply matches that policy's section of the
    // all-policies reply for the same id and window.
    const std::uint64_t policy_root = stats::stream_seed(
        request_root, static_cast<std::uint64_t>(policy));
    for (const std::size_t i : pairs) {
      const HourKeySnapshot& prev = *(*win)[i - 1];
      const HourKeySnapshot& cur = *(*win)[i];
      attack::KeyEstimate estimate;  // keeps the probe H alive
      const linalg::Matrix* h_attacker = &h_nominal;
      switch (policy) {
        case attack::AttackerPolicy::kZeroKnowledge:
          break;
        case attack::AttackerPolicy::kStaleKey:
          h_attacker = &prev.estimator->h();
          ++boundary_replays;
          obs::add(obs::Work::kStaleReplays);
          break;
        case attack::AttackerPolicy::kProbe:
          estimate = attack::probe_and_estimate_key(
              engine_.system(), cur.z_ref, sigma, probe_root_, cur.hour,
              req.probes);
          h_attacker = &estimate.h;
          probes_used += static_cast<std::uint64_t>(req.probes);
          break;
        case attack::AttackerPolicy::kOmniscient:
          h_attacker = &cur.estimator->h();
          break;
        case attack::AttackerPolicy::kRamp:
          break;  // unreachable: not a wire policy (parse rejects it)
      }
      stats::Rng rng = stats::make_stream(policy_root, cur.hour);
      const mtd::EffectivenessResult er = mtd::evaluate_effectiveness(
          *h_attacker, cur.estimator->h(), cur.z_ref, eff, rng);
      detection_sum += er.mean_detection;
      eta_sum += er.eta[0];
      hourly_detection.push_back(Json(er.mean_detection));
      hourly_eta.push_back(Json(er.eta[0]));
    }
    const double n = static_cast<double>(pairs.size());
    cell.set("mean_detection", Json(detection_sum / n));
    cell.set("eta", Json(eta_sum / n));
    cell.set("probes_used", Json(probes_used));
    cell.set("boundary_replays", Json(boundary_replays));
    cell.set("hourly_mean_detection", std::move(hourly_detection));
    cell.set("hourly_eta", std::move(hourly_eta));
    obs::add(obs::Work::kCampaignCells);
    out_policies.push_back(std::move(cell));
  }
  reply.set("policies", std::move(out_policies));
  return reply.dump();
}

std::string MtdDaemon::reply_shutdown(const Request& req) {
  request_shutdown();
  Json reply;
  reply.set("ok", Json(true));
  reply.set("op", Json("shutdown"));
  if (req.has_id) reply.set("id", Json(req.id));
  return reply.dump();
}

void MtdDaemon::record_latency(double micros) {
  latency_count_.fetch_add(1, std::memory_order_relaxed);
  latency_sum_us_.fetch_add(micros, std::memory_order_relaxed);
  double prev = latency_max_us_.load(std::memory_order_relaxed);
  while (micros > prev &&
         !latency_max_us_.compare_exchange_weak(prev, micros,
                                                std::memory_order_relaxed)) {
  }
  latency_buckets_[latency_bucket_index(micros)].fetch_add(
      1, std::memory_order_relaxed);
}

}  // namespace mtdgrid::serve
