#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "estimation/bdd.hpp"
#include "estimation/state_estimator.hpp"
#include "grid/load_trace.hpp"
#include "grid/power_system.hpp"
#include "mtd/daily.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::serve {

/// Latency histogram bucket upper bounds (microseconds, inclusive per
/// the `micros <=` scan in `MtdDaemon::record_latency`): 100 µs, 1 ms,
/// 10 ms, 100 ms, 1 s, plus an implicit overflow bucket.
inline constexpr double kLatencyBucketsUs[5] = {100.0, 1e3, 1e4, 1e5, 1e6};

/// The bucket index `record_latency` files `micros` under: the first i
/// with `micros <= kLatencyBucketsUs[i]`, else 5 (the overflow bucket).
/// A sample exactly on a bound lands in that bound's bucket.
inline int latency_bucket_index(double micros) {
  for (int i = 0; i < 5; ++i)
    if (micros <= kLatencyBucketsUs[i]) return i;
  return 5;
}

/// Options of the serving daemon. The embedded `daily` options carry the
/// re-keying budgets and targets (sensor noise `sigma_mw` and BDD
/// false-positive rate `fp_rate` come from `daily.effectiveness`, so the
/// daemon's detector matches the effectiveness methodology exactly).
struct DaemonOptions {
  /// Case name or `.m` path resolved through `io::load_case` by the
  /// name-loading constructor (ignored by the system-loading one).
  std::string case_name = "case14";
  /// Root seed: the re-keying engine consumes `Rng(seed)` exactly as
  /// `run_daily_simulation` would, and the probe/detect request
  /// substreams are derived from it (DESIGN.md "Serving architecture").
  std::uint64_t seed = 7;
  /// How many hourly key snapshots stay queryable (>= 1). Requests may
  /// pin any retained hour; older snapshots are dropped as the clock
  /// advances.
  std::size_t history_hours = 24;
  /// Re-keying targets and budgets (paper Section VII-C defaults).
  mtd::DailySimulationOptions daily;
};

/// Immutable snapshot of one keyed hour: everything a request needs,
/// bundled so a reader never observes a half-applied key change — the
/// re-keying tick builds the next snapshot completely, then atomically
/// publishes a new retention window containing it, and in-flight readers
/// keep their reference alive for as long as they need it.
struct HourKeySnapshot {
  std::size_t hour = 0;        ///< absolute virtual-clock hour
  std::size_t trace_hour = 0;  ///< hour % hours_per_day
  mtd::HourlyRecord record;    ///< the hour's simulation record
  bool keyed = false;          ///< false: selection failed, no key active
  linalg::Vector setpoints;    ///< D-FACTS reactances (dfacts order)
  linalg::Vector reactances;   ///< full post-MTD reactance vector
  opf::DispatchResult dispatch;  ///< OPF dispatch at the key
  linalg::Vector z_ref;        ///< noiseless reference measurements (MW)
  /// WLS estimator at the hour's key (null when `keyed` is false).
  std::shared_ptr<const estimation::StateEstimator> estimator;
  /// Chi-square bad-data detector paired with `estimator`.
  std::shared_ptr<const estimation::BadDataDetector> bdd;
};

/// Deterministic request/tick counters reported by the `metrics` verb:
/// for a fixed request transcript they are a pure function of that
/// transcript, so default `metrics` replies are byte-comparable across
/// thread counts (the latency histogram is the one opt-in exception).
struct DaemonCounters {
  std::uint64_t requests = 0;   ///< lines handled (including errors)
  std::uint64_t errors = 0;     ///< error replies sent
  std::uint64_t ticks = 0;      ///< re-keying steps (manual + scheduled)
  std::uint64_t dispatch = 0;   ///< dispatch requests served
  std::uint64_t detect = 0;     ///< detect requests served
  std::uint64_t probe = 0;      ///< probe requests served
  std::uint64_t status = 0;     ///< status requests served
  std::uint64_t metrics = 0;    ///< metrics requests served
  std::uint64_t campaign = 0;   ///< campaign requests served
};

/// The long-running MTD serving core (ROADMAP "Serving"): owns a loaded
/// case and a `mtd::DailyEngine`, advances a virtual clock through the
/// load trace one re-keying step per `tick()`, and answers the
/// newline-delimited-JSON requests documented in DESIGN.md "Serving
/// architecture" — `dispatch`, `detect`, `probe`, `status`, `metrics`,
/// `tick`, `campaign`, `shutdown`. `examples/mtd_daemon` serves
/// `handle_line` over a
/// loopback socket (`serve::SocketServer`); tests and benchmarks call it
/// in-process — one code path either way. A `ShardedDaemon` routes to N
/// of these, one per shard.
///
/// Concurrency contract (DESIGN.md "Fleet sharding"): `handle_line` and
/// `tick` may be called from any thread. Read verbs — `status`,
/// `metrics`, plain/analytic `detect`, `probe`, `shutdown` — take no
/// lock at all: they atomically load the published retention window of
/// immutable `HourKeySnapshot`s and answer from it, so reads scale with
/// cores and keep answering while a tick holds the write lock. Write
/// verbs — `tick`, `dispatch` — plus the Monte-Carlo `detect` method and
/// `campaign` (which fan out on the shared `core::ThreadPool`) serialize
/// on the per-daemon `exec_lock()`. Counters are relaxed atomics; for a fixed
/// sequential transcript they remain a pure function of that transcript.
/// All randomness is derived from counter-based substreams of
/// `DaemonOptions::seed` — replies are bit-identical for any thread
/// count and any interleaving of queries with re-keying.
///
/// \see mtd::DailyEngine for the re-keying core this daemon drives, and
/// mtd::run_daily_simulation for the batch form of the same loop.
class MtdDaemon : public LineService {
 public:
  /// The daemon's write lock, exposed so the fleet's broadcast tick can
  /// pre-acquire every shard's lock (in shard order) before fanning out,
  /// and so tests can pin the lock while probing the lock-free read path.
  using ExecLock = std::unique_lock<std::mutex>;

  /// Builds the daemon around an explicit system and trace, runs the
  /// pass-1 baseline, and keys hour 0 (one initial tick), so the daemon
  /// serves immediately.
  MtdDaemon(grid::PowerSystem sys, grid::DailyLoadTrace trace,
            DaemonOptions options);

  /// Convenience: loads `options.case_name` through `io::load_case` and
  /// replays the NYISO winter-weekday shape scaled to the case's nominal
  /// total load (`default_daemon_trace`).
  explicit MtdDaemon(const DaemonOptions& options);

  /// Handles one request line (without trailing newline) and returns the
  /// reply line (without trailing newline). Blank lines return an empty
  /// string (no reply). Never throws: protocol failures come back as
  /// pinned `{"ok":false,...}` replies and the connection stays usable.
  std::string handle_line(const std::string& line) override;

  /// Serves one already-parsed request — counted, locked (or not) and
  /// latency-tracked exactly like a `handle_line` call carrying the same
  /// request. The fleet's routing layer parses each line once and
  /// delegates here.
  std::string serve_request(const Request& req);

  /// Advances the virtual clock one hour (the re-keying step), publishes
  /// the new hour's snapshot, and returns the new current hour. Thread-
  /// safe; serializes with request execution.
  std::size_t tick();

  /// `tick` under a caller-held `exec_lock()` — the fleet's broadcast
  /// tick acquires every shard's lock first, then advances all shards in
  /// one parallel region (the lock stays owned by the acquiring thread
  /// throughout; the engine work may run on a pool worker).
  std::size_t tick(ExecLock& lock);

  /// Acquires and returns this daemon's write lock. While held, `tick`,
  /// `dispatch` and Monte-Carlo `detect` block; lock-free read verbs
  /// keep answering from the published snapshots.
  ExecLock exec_lock() const { return ExecLock(exec_mutex_); }

  /// The current (most recently keyed) virtual-clock hour.
  std::size_t current_hour() const;

  /// Snapshot of the current hour's key state (never null after
  /// construction).
  std::shared_ptr<const HourKeySnapshot> current_snapshot() const;

  /// Snapshot of a pinned hour, or null when that hour is not retained.
  std::shared_ptr<const HourKeySnapshot> snapshot_at(std::size_t hour) const;

  /// Point-in-time copy of the counters (relaxed atomic loads).
  DaemonCounters counters() const;

  /// Marks the daemon as shutting down (the `shutdown` verb does this
  /// after building its reply). The transport layer polls
  /// `shutdown_requested` and stops serving.
  void request_shutdown() { shutdown_.store(true); }

  /// True once a shutdown was requested.
  bool shutdown_requested() const override { return shutdown_.load(); }

  /// The daemon's options (immutable after construction).
  const DaemonOptions& options() const { return options_; }

  /// The name of the served case (registry name, path, or system name).
  const std::string& case_name() const { return case_name_; }

  /// This daemon's work-counter registry: every request (and the engine
  /// construction) runs under an `obs::ScopedRegistry` pointing here, so
  /// the engine's work counters are attributed per shard. The `metrics`
  /// verb reports the deterministic counters from this registry; the
  /// fleet sums shard registries (`ShardedDaemon::aggregate_work`).
  const obs::MetricsRegistry& registry() const { return registry_; }

  /// Records one handled-line service time into the latency accumulator
  /// (relaxed atomics; bucket choice per `latency_bucket_index`). Public
  /// so tests can inject exact samples and pin bucket counts.
  void record_latency(double micros);

 private:
  /// The published retention window: oldest..newest retained snapshots.
  /// Immutable once published — a tick builds a fresh vector and swaps
  /// the pointer atomically, so lock-free readers see a consistent
  /// window (single writer: the `exec_lock()` holder).
  using SnapshotWindow = std::vector<std::shared_ptr<const HourKeySnapshot>>;

  // Delegation helper for the name-loading constructor: the case is
  // loaded once and feeds both the system and its default trace.
  MtdDaemon(std::pair<grid::PowerSystem, grid::DailyLoadTrace> loaded,
            DaemonOptions options);

  std::string handle_request(const Request& req);
  /// True when serving `req` mutates engine state or fans out on the
  /// shared thread pool — those verbs take `exec_mutex_`; all others run
  /// lock-free off the published snapshot window.
  static bool needs_exec_lock(const Request& req);
  /// Serializes an error reply and counts it — every error path funnels
  /// through here so `DaemonCounters::errors` cannot drift from what the
  /// wire actually carried.
  std::string error_line(const ProtocolError& error);
  std::string not_keyed_reply(std::size_t hour);
  std::string reply_dispatch(const Request& req);
  std::string reply_detect(const Request& req);
  std::string reply_probe(const Request& req);
  std::string reply_status(const Request& req);
  std::string reply_metrics(const Request& req);
  std::string reply_tick(const Request& req);
  std::string reply_campaign(const Request& req);
  std::string reply_shutdown(const Request& req);
  std::size_t tick_locked();
  /// The current retention window (never null, never empty after
  /// construction).
  std::shared_ptr<const SnapshotWindow> window() const {
    return history_.load();
  }
  /// Resolves the snapshot a request addresses within `window`, or
  /// returns an error reply string via `error` (counted like every error
  /// reply).
  std::shared_ptr<const HourKeySnapshot> resolve_snapshot(
      const SnapshotWindow& window, const Request& req, std::string& error);

  DaemonOptions options_;
  std::string case_name_;
  /// Declared before `engine_`: the constructor scopes the engine's
  /// pass-1 construction work to this registry, so it must be alive
  /// first.
  obs::MetricsRegistry registry_;
  mtd::DailyEngine engine_;
  stats::Rng rng_;                 // the engine's sequential rng
  std::uint64_t probe_root_ = 0;   // substream family of `probe`
  std::uint64_t detect_root_ = 0;  // substream family of mc `detect`
  std::uint64_t campaign_root_ = 0;  // substream family of `campaign`

  /// Serializes the write verbs (`tick`, `dispatch`, Monte-Carlo
  /// `detect`); never touched by the lock-free read path.
  mutable std::mutex exec_mutex_;
  /// Atomically published retention window; written only under
  /// `exec_mutex_`, loaded without any lock by readers.
  std::atomic<std::shared_ptr<const SnapshotWindow>> history_;

  /// Relaxed-atomic mirror of `DaemonCounters` (lock-free increments).
  struct AtomicCounters {
    std::atomic<std::uint64_t> requests{0};  ///< lines handled
    std::atomic<std::uint64_t> errors{0};    ///< error replies sent
    std::atomic<std::uint64_t> ticks{0};     ///< re-keying steps
    std::atomic<std::uint64_t> dispatch{0};  ///< dispatch served
    std::atomic<std::uint64_t> detect{0};    ///< detect served
    std::atomic<std::uint64_t> probe{0};     ///< probe served
    std::atomic<std::uint64_t> status{0};    ///< status served
    std::atomic<std::uint64_t> metrics{0};   ///< metrics served
    std::atomic<std::uint64_t> campaign{0};  ///< campaign served
  };
  AtomicCounters counters_;

  // Latency accumulator (service time of handled lines, microseconds);
  // relaxed atomics so the lock-free read path records without a lock.
  std::atomic<std::uint64_t> latency_count_{0};
  std::atomic<double> latency_sum_us_{0.0};
  std::atomic<double> latency_max_us_{0.0};
  std::atomic<std::uint64_t> latency_buckets_[6] = {};

  std::atomic<bool> shutdown_{false};
};

/// The default serving trace: the NYISO winter-weekday shape rescaled so
/// its hourly totals relate to `sys`'s nominal total load the way the
/// original trace relates to the IEEE 14-bus system it was fitted to —
/// `case14` reproduces `DailyLoadTrace::nyiso_winter_weekday` exactly,
/// larger cases replay the same relative profile.
grid::DailyLoadTrace default_daemon_trace(const grid::PowerSystem& sys);

}  // namespace mtdgrid::serve
