#include "serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mtdgrid::serve {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw JsonError(std::string("expected ") + want + ", got " +
                  names[static_cast<int>(got)]);
}

/// Recursive-descent parser over a byte range. Offsets in errors are
/// 0-based positions into the original text.
class Parser {
 public:
  Parser(const char* begin, const char* end) : cur_(begin), begin_(begin),
                                               end_(end) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value(0);
    skip_ws();
    if (cur_ != end_) fail("trailing characters after value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    const std::size_t offset = static_cast<std::size_t>(cur_ - begin_);
    throw JsonError(what + " at offset " + std::to_string(offset), offset);
  }

  void skip_ws() {
    while (cur_ != end_ && (*cur_ == ' ' || *cur_ == '\t' || *cur_ == '\n' ||
                            *cur_ == '\r'))
      ++cur_;
  }

  char peek() const { return cur_ != end_ ? *cur_ : '\0'; }

  void expect(char c) {
    if (cur_ == end_ || *cur_ != c)
      fail(std::string("expected '") + c + "'");
    ++cur_;
  }

  bool consume_literal(const char* lit) {
    const char* p = cur_;
    while (*lit != '\0') {
      if (p == end_ || *p != *lit) return false;
      ++p;
      ++lit;
    }
    cur_ = p;
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (cur_ == end_) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++cur_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++cur_;
        continue;
      }
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array values;
    skip_ws();
    if (peek() == ']') {
      ++cur_;
      return Json(std::move(values));
    }
    for (;;) {
      skip_ws();
      values.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++cur_;
        continue;
      }
      expect(']');
      return Json(std::move(values));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (cur_ == end_) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(*cur_);
      if (c == '"') {
        ++cur_;
        return out;
      }
      if (c < 0x20) fail("control character in string");
      if (c == '\\') {
        ++cur_;
        if (cur_ == end_) fail("unterminated escape");
        switch (*cur_) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = parse_hex4();
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: require the paired low surrogate.
              if (end_ - cur_ < 7 || cur_[1] != '\\' || cur_[2] != 'u')
                fail("unpaired surrogate");
              cur_ += 2;
              const unsigned lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              fail("unpaired surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default:
            fail("invalid escape");
        }
        ++cur_;
        continue;
      }
      out += static_cast<char>(c);
      ++cur_;
    }
  }

  unsigned parse_hex4() {
    // Called with cur_ on the 'u'; leaves cur_ on the last hex digit.
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      ++cur_;
      if (cur_ == end_) fail("unterminated escape");
      const char c = *cur_;
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid \\u escape");
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const char* start = cur_;
    if (peek() == '-') ++cur_;
    if (cur_ == end_ || *cur_ < '0' || *cur_ > '9') {
      cur_ = start;
      fail("invalid value");
    }
    // RFC 8259 integer part: "0" or a nonzero digit followed by digits —
    // no leading zeros (a request that relies on them would break
    // against any conforming peer).
    if (*cur_ == '0') {
      ++cur_;
      if (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9')
        fail("leading zeros are not allowed");
    } else {
      while (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9') ++cur_;
    }
    if (peek() == '.') {
      ++cur_;
      if (cur_ == end_ || *cur_ < '0' || *cur_ > '9')
        fail("digit expected after decimal point");
      while (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9') ++cur_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++cur_;
      if (peek() == '+' || peek() == '-') ++cur_;
      if (cur_ == end_ || *cur_ < '0' || *cur_ > '9')
        fail("digit expected in exponent");
      while (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9') ++cur_;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(start, cur_, value);
    if (ec != std::errc() || ptr != cur_) {
      cur_ = start;
      fail("number out of range");
    }
    return Json(value);
  }

  const char* cur_;
  const char* begin_;
  const char* end_;
};

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; the protocol never emits them
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // 32 bytes always suffice for shortest-round-trip doubles
  out.append(buf, ptr);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : object_)
    if (m.first == key) return &m.second;
  return nullptr;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const Member& m : object_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, m.first);
        out += ':';
        m.second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.parse_document();
}

}  // namespace mtdgrid::serve
