#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mtdgrid::serve {

/// Thrown by `Json::parse` on malformed input and by the typed accessors
/// on a type mismatch. For parse failures `offset()` is the 0-based byte
/// position of the first offending character, and `what()` embeds it as
/// "... at offset N" — the daemon copies that text verbatim into its
/// pinned `"error":"parse"` replies.
class JsonError : public std::runtime_error {
 public:
  /// Builds the error with its message and (for parse errors) offset.
  explicit JsonError(const std::string& message, std::size_t offset = 0)
      : std::runtime_error(message), offset_(offset) {}

  /// 0-based byte offset of the parse failure (0 for accessor misuse).
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// A JSON value: the minimal tree type behind the daemon's
/// newline-delimited wire protocol (DESIGN.md "Serving architecture").
///
/// Scope is deliberately small — what one protocol line needs and nothing
/// more: objects keep insertion order (replies serialize with a stable
/// field order, which is what makes transcripts byte-comparable), numbers
/// are IEEE doubles serialized in shortest-round-trip form, and `parse`
/// rejects trailing garbage, so a request line is exactly one value.
class Json {
 public:
  /// Discriminates the stored value kind.
  enum class Type {
    kNull,    ///< JSON null
    kBool,    ///< true / false
    kNumber,  ///< IEEE double
    kString,  ///< UTF-8 string
    kArray,   ///< ordered values
    kObject,  ///< insertion-ordered members
  };

  /// Array storage: values in order.
  using Array = std::vector<Json>;
  /// One object member (key, value).
  using Member = std::pair<std::string, Json>;
  /// Object storage: members in insertion order (no key dedup on parse;
  /// `find` returns the first match, mirroring common NDJSON practice).
  using Object = std::vector<Member>;

  /// Null value.
  Json() = default;
  /// Boolean value.
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  /// Number value (any finite double; non-finite serializes as null).
  Json(double v) : type_(Type::kNumber), number_(v) {}
  /// Number value from an integer (exact up to 2^53).
  Json(int v) : type_(Type::kNumber), number_(v) {}
  /// Number value from an unsigned count (exact up to 2^53). Both width
  /// overloads exist — they are always distinct types — so
  /// `std::size_t` and `std::uint64_t` arguments resolve unambiguously
  /// on every ABI, whichever of the two each maps to.
  Json(unsigned long v)
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  /// Number value from a 64-bit count (exact up to 2^53).
  Json(unsigned long long v)
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  /// String value.
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  /// String value from a literal.
  Json(const char* s) : type_(Type::kString), string_(s) {}
  /// Array value.
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  /// Object value.
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// The stored kind.
  Type type() const { return type_; }
  /// True for a null value.
  bool is_null() const { return type_ == Type::kNull; }
  /// True for a boolean value.
  bool is_bool() const { return type_ == Type::kBool; }
  /// True for a number value.
  bool is_number() const { return type_ == Type::kNumber; }
  /// True for a string value.
  bool is_string() const { return type_ == Type::kString; }
  /// True for an array value.
  bool is_array() const { return type_ == Type::kArray; }
  /// True for an object value.
  bool is_object() const { return type_ == Type::kObject; }

  /// The boolean payload; throws JsonError if not a bool.
  bool as_bool() const;
  /// The number payload; throws JsonError if not a number.
  double as_number() const;
  /// The string payload; throws JsonError if not a string.
  const std::string& as_string() const;
  /// The array payload; throws JsonError if not an array.
  const Array& as_array() const;
  /// The object payload; throws JsonError if not an object.
  const Object& as_object() const;

  /// First member named `key` of an object, or nullptr when absent (or
  /// when this value is not an object) — the lookup protocol code uses
  /// for optional request fields.
  const Json* find(const std::string& key) const;

  /// Appends `value` to an array (the value must be an array or null; a
  /// null silently becomes an empty array first).
  void push_back(Json value);

  /// Appends member (`key`, `value`) to an object (object or null, as
  /// with `push_back`). Keys are not deduplicated; reply builders append
  /// each key once, in the documented field order.
  void set(std::string key, Json value);

  /// Serializes compactly (no whitespace). Doubles use shortest
  /// round-trip formatting (`std::to_chars`), so dump/parse is lossless
  /// and — critical for the daemon's transcript tests — byte-stable.
  std::string dump() const;

  /// Parses exactly one JSON value from `text` (leading/trailing ASCII
  /// whitespace allowed, nothing else). Throws JsonError with a 0-based
  /// offset on malformed input, unsupported escapes, numbers outside
  /// double range, or nesting deeper than 64 levels.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace mtdgrid::serve
