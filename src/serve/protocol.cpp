#include "serve/protocol.hpp"

#include <cmath>

namespace mtdgrid::serve {

namespace {

/// True when `v` is a JSON number holding an exact non-negative integer
/// representable in 53 bits; writes it to `out`.
bool as_nonneg_integer(const Json& v, std::uint64_t& out) {
  if (!v.is_number()) return false;
  const double d = v.as_number();
  if (!(d >= 0.0) || d > 9007199254740992.0 || std::floor(d) != d)
    return false;
  out = static_cast<std::uint64_t>(d);
  return true;
}

ProtocolError bad_request(std::string message) {
  return ProtocolError{"bad-request", std::move(message)};
}

}  // namespace

const char* verb_name(Verb verb) {
  switch (verb) {
    case Verb::kDispatch: return "dispatch";
    case Verb::kDetect: return "detect";
    case Verb::kProbe: return "probe";
    case Verb::kStatus: return "status";
    case Verb::kMetrics: return "metrics";
    case Verb::kTick: return "tick";
    case Verb::kCampaign: return "campaign";
    case Verb::kShutdown: return "shutdown";
  }
  return "?";
}

std::string error_reply(const ProtocolError& error) {
  Json reply;
  reply.set("ok", Json(false));
  reply.set("error", Json(error.code));
  reply.set("message", Json(error.message));
  return reply.dump();
}

ParseOutcome parse_request(const std::string& line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const JsonError& e) {
    return ProtocolError{"parse", std::string("invalid JSON: ") + e.what()};
  }
  if (!doc.is_object())
    return bad_request("request must be a JSON object");
  return parse_request(doc);
}

ParseOutcome parse_request(const Json& doc) {
  if (!doc.is_object())
    return bad_request("request must be a JSON object");

  const Json* op = doc.find("op");
  if (op == nullptr) return bad_request("missing \"op\"");
  if (!op->is_string()) return bad_request("\"op\" must be a string");

  Request req;
  const std::string& name = op->as_string();
  if (name == "dispatch")
    req.verb = Verb::kDispatch;
  else if (name == "detect")
    req.verb = Verb::kDetect;
  else if (name == "probe")
    req.verb = Verb::kProbe;
  else if (name == "status")
    req.verb = Verb::kStatus;
  else if (name == "metrics")
    req.verb = Verb::kMetrics;
  else if (name == "tick")
    req.verb = Verb::kTick;
  else if (name == "campaign")
    req.verb = Verb::kCampaign;
  else if (name == "shutdown")
    req.verb = Verb::kShutdown;
  else
    return ProtocolError{"unknown-op", "unknown op \"" + name + "\""};

  if (const Json* id = doc.find("id"); id != nullptr) {
    if (!as_nonneg_integer(*id, req.id))
      return bad_request("\"id\" must be a non-negative integer");
    req.has_id = true;
  }
  if (const Json* hour = doc.find("hour"); hour != nullptr) {
    std::uint64_t h = 0;
    if (!as_nonneg_integer(*hour, h))
      return bad_request("\"hour\" must be a non-negative integer");
    req.has_hour = true;
    req.hour = static_cast<std::size_t>(h);
  }
  if (const Json* z = doc.find("z"); z != nullptr && !z->is_null()) {
    if (!z->is_array())
      return bad_request("\"z\" must be an array of numbers");
    const Json::Array& values = z->as_array();
    req.z = linalg::Vector(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (!values[i].is_number())
        return bad_request("\"z\" must be an array of numbers");
      req.z[i] = values[i].as_number();
    }
    req.has_z = true;
  }
  if (const Json* method = doc.find("method"); method != nullptr) {
    if (!method->is_string())
      return bad_request(
          "\"method\" must be \"bdd\", \"analytic\" or \"mc\"");
    const std::string& m = method->as_string();
    if (m == "bdd")
      req.method = DetectMethod::kBdd;
    else if (m == "analytic")
      req.method = DetectMethod::kAnalytic;
    else if (m == "mc")
      req.method = DetectMethod::kMonteCarlo;
    else
      return bad_request(
          "\"method\" must be \"bdd\", \"analytic\" or \"mc\"");
  }
  if (const Json* trials = doc.find("trials"); trials != nullptr) {
    std::uint64_t t = 0;
    if (!as_nonneg_integer(*trials, t) || t < 1 || t > 1000000)
      return bad_request("\"trials\" must be an integer in [1, 1000000]");
    req.trials = static_cast<int>(t);
  }
  if (const Json* policy = doc.find("policy"); policy != nullptr) {
    if (!policy->is_string() ||
        (policy->as_string() != "zero" && policy->as_string() != "stale" &&
         policy->as_string() != "probe" &&
         policy->as_string() != "omniscient"))
      return bad_request(
          "\"policy\" must be \"zero\", \"stale\", \"probe\" or "
          "\"omniscient\"");
    req.has_policy = true;
    req.policy = policy->as_string();
  }
  if (const Json* probes = doc.find("probes"); probes != nullptr) {
    std::uint64_t p = 0;
    if (!as_nonneg_integer(*probes, p) || p < 1 || p > 10000)
      return bad_request("\"probes\" must be an integer in [1, 10000]");
    req.probes = static_cast<int>(p);
  }
  if (const Json* hours = doc.find("hours"); hours != nullptr) {
    std::uint64_t h = 0;
    if (!as_nonneg_integer(*hours, h) || h < 1)
      return bad_request("\"hours\" must be a positive integer");
    req.has_hours = true;
    req.hours = static_cast<std::size_t>(h);
  }
  if (const Json* latency = doc.find("latency"); latency != nullptr) {
    if (!latency->is_bool())
      return bad_request("\"latency\" must be a boolean");
    req.include_latency = latency->as_bool();
  }
  if (const Json* trace = doc.find("trace"); trace != nullptr) {
    if (!trace->is_bool())
      return bad_request("\"trace\" must be a boolean");
    req.trace = trace->as_bool();
  }
  if (const Json* format = doc.find("format"); format != nullptr) {
    if (!format->is_string() || (format->as_string() != "json" &&
                                 format->as_string() != "prometheus"))
      return bad_request("\"format\" must be \"json\" or \"prometheus\"");
    req.prometheus_format = format->as_string() == "prometheus";
  }
  if (const Json* shard = doc.find("shard"); shard != nullptr) {
    std::uint64_t s = 0;
    if (!as_nonneg_integer(*shard, s))
      return bad_request("\"shard\" must be a non-negative integer");
    req.has_shard = true;
    req.shard = static_cast<std::size_t>(s);
  }
  if (const Json* case_name = doc.find("case"); case_name != nullptr) {
    if (!case_name->is_string())
      return bad_request("\"case\" must be a string");
    req.has_case = true;
    req.case_name = case_name->as_string();
  }
  if (req.has_shard && req.has_case)
    return bad_request("give \"shard\" or \"case\", not both");
  return req;
}

}  // namespace mtdgrid::serve
