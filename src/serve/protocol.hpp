#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "linalg/vector.hpp"
#include "serve/json.hpp"

namespace mtdgrid::serve {

/// The wire-protocol version reported by `status` replies (`"proto"`
/// field). Clients pin this to detect incompatible daemons. History:
/// 1 = the original verb set; 2 = `status` advertises the version
/// itself (this constant). Bump only for changes an existing client
/// could misparse — added reply fields are backward compatible and do
/// not bump it.
inline constexpr int kProtocolVersion = 2;

/// The request verbs of the daemon's wire protocol (grammar and one
/// worked request/reply example per verb in DESIGN.md "Serving
/// architecture").
enum class Verb {
  kDispatch,  ///< current setpoints + OPF cost of an hour
  kDetect,    ///< BDD/chi-square verdict for a measurement vector
  kProbe,     ///< attack-free noisy sample drawn from a request substream
  kStatus,    ///< hour, key parameters, retention window
  kMetrics,   ///< request counters (+ latency histogram on demand)
  kTick,      ///< advance the virtual clock one hour (re-key)
  kCampaign,  ///< adaptive-adversary sweep over the retained key window
  kShutdown,  ///< stop serving after this reply
};

/// How `detect` scores the submitted measurement vector beyond the plain
/// BDD verdict.
enum class DetectMethod {
  kBdd,         ///< residual + alarm only (default)
  kAnalytic,    ///< + exact noncentral-chi-square detection probability
  kMonteCarlo,  ///< + Monte-Carlo probability on a per-request substream
};

/// A parsed and field-validated request line. Field semantics (all
/// optional unless noted): `id` is echoed in the reply and selects the
/// request's RNG substream; `hour` pins the virtual-clock hour served
/// (default: current); `z` is the measurement vector for `detect`
/// (default: the hour's noiseless reference); `trials` sizes the
/// Monte-Carlo method; `policy` restricts `campaign` to one attacker
/// policy ("zero", "stale", "probe", "omniscient"; default: all four);
/// `probes` is `campaign`'s probe-oracle budget per scored hour;
/// `hours` caps how many retained re-keying boundaries `campaign`
/// scores (default: every retained pair); `include_latency` asks
/// `metrics` for the (non-deterministic) latency histogram; `trace`
/// opts the request into
/// wall-clock span capture (reply gains a `trace_us` section — opt-in
/// for the same reason as `latency`); `prometheus_format` asks
/// `metrics` for the Prometheus text exposition instead of the JSON
/// sections; `shard`/`case_name` route the
/// request inside a `ShardedDaemon` fleet (a single `MtdDaemon` accepts
/// and ignores them — it is the degenerate one-shard fleet).
struct Request {
  Verb verb = Verb::kStatus;      ///< the request verb
  bool has_id = false;            ///< true when the line carried "id"
  std::uint64_t id = 0;           ///< request id (substream selector)
  bool has_hour = false;          ///< true when the line carried "hour"
  std::size_t hour = 0;           ///< pinned virtual-clock hour
  bool has_z = false;             ///< true when the line carried "z"
  linalg::Vector z;               ///< submitted measurement vector (MW)
  DetectMethod method = DetectMethod::kBdd;  ///< detect scoring method
  int trials = 400;               ///< Monte-Carlo noise draws
  bool has_policy = false;        ///< true when the line carried "policy"
  std::string policy;             ///< campaign attacker policy name
  int probes = 8;                 ///< campaign probe-oracle budget
  bool has_hours = false;         ///< true when the line carried "hours"
  std::size_t hours = 0;          ///< campaign boundary-pair cap
  bool include_latency = false;   ///< metrics: include latency histogram
  bool trace = false;             ///< capture wall-clock spans (opt-in)
  bool prometheus_format = false; ///< metrics: Prometheus text exposition
  bool has_shard = false;         ///< true when the line carried "shard"
  std::size_t shard = 0;          ///< fleet shard index (routing)
  bool has_case = false;          ///< true when the line carried "case"
  std::string case_name;          ///< fleet case name (routing)
};

/// A protocol-level failure: the pinned machine-readable `code` (one of
/// "parse", "bad-request", "unknown-op", "bad-hour", "bad-shard",
/// "not-keyed", "internal") plus a human-readable message. Serialized by
/// `error_reply`; the exact strings are part of the wire contract and
/// pinned by tests/serve/protocol conventions.
struct ProtocolError {
  std::string code;     ///< pinned error code
  std::string message;  ///< human-readable detail
};

/// Result of `parse_request`: a validated Request or the error to send.
using ParseOutcome = std::variant<Request, ProtocolError>;

/// Parses one request line: JSON object with a string `"op"` naming the
/// verb, plus the verb's optional fields. Unknown object keys are
/// ignored (forward compatibility); malformed JSON, a non-object line,
/// a missing/unknown op, and ill-typed fields return the corresponding
/// ProtocolError instead of throwing.
ParseOutcome parse_request(const std::string& line);

/// Parses an already-decoded request object (the fleet's routing layer
/// decodes each line — or each batch element — exactly once and
/// validates fields through this overload). Same contract as the string
/// overload minus the JSON decoding step.
ParseOutcome parse_request(const Json& doc);

/// The wire name of a verb ("dispatch", "detect", ...).
const char* verb_name(Verb verb);

/// Serializes an error reply line: `{"ok":false,"error":CODE,
/// "message":MESSAGE}` (no trailing newline — the transport adds it).
std::string error_reply(const ProtocolError& error);

}  // namespace mtdgrid::serve
