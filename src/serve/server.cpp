#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace mtdgrid::serve {

namespace {

/// Longest accepted request line (bytes). A case300 `detect` vector is
/// ~30 KB, so 4 MB leaves two orders of magnitude of headroom; anything
/// longer is treated as a protocol violation and the connection closes.
constexpr std::size_t kMaxLineBytes = 4u << 20;

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(LineService& service, std::uint16_t port)
    : service_(service) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const std::string what =
        "bind 127.0.0.1:" + std::to_string(port) + ": " +
        std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(what);
  }
  // listen() must directly follow bind(): the port becomes observable
  // only below (getsockname / the constructor returning), so by the time
  // any client can learn it the socket already queues connections — the
  // ephemeral-port tests connect the instant construction finishes. A
  // full-depth backlog absorbs loadgen-style connection bursts.
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    const std::string what = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(what);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::reap_finished_locked() {
  // Join and drop connections whose serving thread has finished (`done`
  // is set under mutex_ right before the thread function returns, so the
  // join here waits at most for that return). Without this, a long-lived
  // daemon would accumulate one std::thread per past client.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    const int accept_errno = errno;
    bool backoff = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (fd < 0) {
        if (stopping_) return;
        if (accept_errno == EINTR || accept_errno == ECONNABORTED) continue;
        if (accept_errno == EMFILE || accept_errno == ENFILE ||
            accept_errno == ENOBUFS || accept_errno == ENOMEM ||
            accept_errno == EPROTO || accept_errno == ENETDOWN) {
          // Transient resource exhaustion (fd limits, kernel memory) or
          // a peer-aborted handshake: a long-lived daemon must keep its
          // listener alive rather than silently stop accepting forever.
          backoff = true;  // sleep outside the lock, then retry
        } else {
          return;  // listener gone — stop accepting
        }
      } else {
        if (stopping_) {
          ::close(fd);
          return;
        }
        reap_finished_locked();
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection* raw = conn.get();
        connections_.push_back(std::move(conn));
        raw->thread = std::thread([this, raw] { serve_connection(raw); });
      }
    }
    // Brief backoff so a blocking accept cannot spin hot on a persistent
    // EMFILE; stop() still proceeds concurrently (lock released above).
    if (backoff) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void SocketServer::serve_connection(Connection* conn) {
  const int fd = conn->fd;
  std::string buffer;
  char chunk[4096];
  bool peer_gone = false;
  while (!peer_gone) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // client closed, error, or stop() shut us down
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      const std::string reply = service_.handle_line(line);
      if (!reply.empty() && !send_all(fd, reply + "\n")) {
        // A peer that can no longer receive replies must not keep
        // driving state-mutating verbs: drop the whole connection.
        peer_gone = true;
        break;
      }
      if (service_.shutdown_requested()) {
        // Wake wait(); teardown happens there (or in the destructor) —
        // this thread cannot join itself.
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_seen_ = true;
        cv_.notify_all();
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) break;  // unbounded line: drop peer
  }
  // The serving thread owns its fd: close it here, under the lock so
  // stop() never calls shutdown() on an fd number the kernel may already
  // have recycled. `done` makes the connection reapable.
  std::lock_guard<std::mutex> lock(mutex_);
  ::close(conn->fd);
  conn->fd = -1;
  conn->done.store(true);
}

void SocketServer::wait() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return shutdown_seen_ || stopping_; });
  }
  stop();
}

void SocketServer::stop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    // Another thread is (or finished) tearing down: block until it is
    // fully done so every stop()/wait() caller gets the documented
    // "server is fully stopped" postcondition.
    cv_.wait(lock, [this] { return stopped_; });
    return;
  }
  stopping_ = true;
  cv_.notify_all();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);  // unblock accept
  for (const auto& conn : connections_)
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);  // unblock recv

  lock.unlock();
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new connections can appear now; joining releases the serving
  // threads, each of which closes its own fd on the way out.
  lock.lock();
  std::vector<std::unique_ptr<Connection>> to_join;
  to_join.swap(connections_);
  lock.unlock();
  for (const auto& conn : to_join)
    if (conn->thread.joinable()) conn->thread.join();

  lock.lock();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  stopped_ = true;
  cv_.notify_all();
}

}  // namespace mtdgrid::serve
