#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace mtdgrid::serve {

/// Loopback TCP transport for the newline-delimited-JSON protocol:
/// listens on 127.0.0.1, accepts any number of concurrent connections,
/// and for every received line sends back `service.handle_line(line)`
/// plus a newline. Serves any `LineService` — a single `MtdDaemon` or a
/// `ShardedDaemon` fleet — whose own locking decides what runs
/// concurrently; per connection, replies come back in request order.
///
/// Lifecycle: the constructor binds, listens, and starts accepting
/// (throwing std::runtime_error on bind failure); the listener enters
/// the LISTEN state *before* the constructor returns or `port()` can be
/// observed, so a client may connect the instant construction finishes —
/// there is no bind-then-listen window in which a discovered port
/// refuses connections. `wait()` blocks until a client sends the
/// `shutdown` verb or another thread calls `stop()`; the destructor
/// stops and joins everything. Malformed lines produce pinned error
/// replies and leave the connection open — only client close, `stop()`,
/// or shutdown ends it.
class SocketServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, see `port()`), enters
  /// LISTEN, and starts the accept loop.
  SocketServer(LineService& service, std::uint16_t port);

  /// Stops and joins all threads.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The actual listening port (resolves port 0 to the assigned one).
  std::uint16_t port() const { return port_; }

  /// Blocks until the daemon was asked to shut down (by the `shutdown`
  /// verb or `stop()`), then tears the transport down. Returns once the
  /// server is fully stopped.
  void wait();

  /// Initiates teardown from any thread: unblocks `wait()`, closes the
  /// listener and every connection, and joins the worker threads.
  /// Idempotent.
  void stop();

 private:
  /// One live client connection: the fd (owned and closed by the serving
  /// thread, -1 once closed) and the thread serving it. `done` flips when
  /// the thread is about to return, letting the accept loop reap finished
  /// connections so a long-lived daemon does not accumulate fds/threads.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  void reap_finished_locked();

  LineService& service_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_seen_ = false;   // a connection handled the shutdown verb
  bool stopping_ = false;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::thread accept_thread_;
};

}  // namespace mtdgrid::serve
