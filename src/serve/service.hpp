#pragma once

#include <string>

namespace mtdgrid::serve {

/// The transport-facing contract a daemon exposes: one reply line per
/// request line. `serve::SocketServer` serves any LineService over a
/// loopback socket, so a single `MtdDaemon` and a multi-case
/// `ShardedDaemon` share one transport path (DESIGN.md "Fleet
/// sharding").
class LineService {
 public:
  virtual ~LineService() = default;

  /// Handles one request line (without trailing newline) and returns the
  /// reply line (without trailing newline; empty string = no reply).
  /// Must be callable from any number of transport threads concurrently
  /// and must never throw: protocol failures come back as pinned
  /// `{"ok":false,...}` replies.
  virtual std::string handle_line(const std::string& line) = 0;

  /// True once a `shutdown` verb was served; the transport layer polls
  /// this and stops accepting new work.
  virtual bool shutdown_requested() const = 0;
};

}  // namespace mtdgrid::serve
