#include "serve/sharded.hpp"

#include <stdexcept>

#include "core/parallel.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::serve {

namespace {

/// Per-shard daemon options: shard k serves the root seed's substream
/// `stream_seed(seed, k)` — the contract that makes a shard's
/// transcript independent of its neighbours (DESIGN.md "Fleet
/// sharding").
DaemonOptions shard_options(const ShardedOptions& options,
                            std::size_t shard) {
  DaemonOptions o;
  o.case_name = options.cases.at(shard);
  o.seed = stats::stream_seed(options.seed, shard);
  o.history_hours = options.history_hours;
  o.daily = options.daily;
  return o;
}

void require_shards(const ShardedOptions& options) {
  if (options.cases.empty())
    throw std::invalid_argument(
        "ShardedDaemon: options.cases must name at least one shard");
}

}  // namespace

ShardedDaemon::ShardedDaemon(const ShardedOptions& options) {
  require_shards(options);
  shards_.reserve(options.cases.size());
  for (std::size_t k = 0; k < options.cases.size(); ++k)
    shards_.push_back(std::make_unique<MtdDaemon>(shard_options(options, k)));
}

ShardedDaemon::ShardedDaemon(
    std::vector<std::pair<grid::PowerSystem, grid::DailyLoadTrace>> systems,
    const ShardedOptions& options) {
  require_shards(options);
  if (systems.size() != options.cases.size())
    throw std::invalid_argument(
        "ShardedDaemon: one options.cases entry per system required");
  shards_.reserve(systems.size());
  for (std::size_t k = 0; k < systems.size(); ++k)
    shards_.push_back(std::make_unique<MtdDaemon>(
        std::move(systems[k].first), std::move(systems[k].second),
        shard_options(options, k)));
}

std::string ShardedDaemon::handle_line(const std::string& line) {
  std::string trimmed = line;
  while (!trimmed.empty() &&
         (trimmed.back() == '\r' || trimmed.back() == '\n'))
    trimmed.pop_back();
  if (trimmed.find_first_not_of(" \t") == std::string::npos) return "";

  Json doc;
  try {
    doc = Json::parse(trimmed);
  } catch (const JsonError& e) {
    return error_reply(
        {"parse", std::string("invalid JSON: ") + e.what()});
  }
  if (doc.is_object()) return route_and_serve(doc);
  if (!doc.is_array())
    return error_reply(
        {"bad-request", "request must be a JSON object or array"});

  // Batch: route and serve each element in input order; the reply is
  // the array of individual replies, byte-identical to sending the
  // elements one per line.
  const Json::Array& batch = doc.as_array();
  if (batch.empty())
    return error_reply({"bad-request", "batch must not be empty"});
  std::string reply = "[";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i > 0) reply += ',';
    reply += route_and_serve(batch[i]);
  }
  reply += ']';
  return reply;
}

std::string ShardedDaemon::route_and_serve(const Json& doc) {
  ParseOutcome outcome = parse_request(doc);
  if (const ProtocolError* err = std::get_if<ProtocolError>(&outcome))
    return error_reply(*err);
  const Request& req = std::get<Request>(outcome);

  std::size_t target = 0;
  if (req.has_shard) {
    if (req.shard >= shards_.size())
      return error_reply(
          {"bad-shard", "shard " + std::to_string(req.shard) +
                            " is not served (shards: 0.." +
                            std::to_string(shards_.size() - 1) + ")"});
    target = req.shard;
  } else if (req.has_case) {
    std::size_t found = shards_.size();
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      if (shards_[k]->case_name() == req.case_name) {
        found = k;
        break;
      }
    }
    if (found == shards_.size())
      return error_reply({"bad-shard", "case \"" + req.case_name +
                                           "\" is not served"});
    target = found;
  } else if (req.verb == Verb::kTick) {
    // Unrouted tick: broadcast to every shard in one parallel region.
    const std::vector<std::size_t> hours = tick_all();
    Json reply;
    reply.set("ok", Json(true));
    reply.set("op", Json("tick"));
    if (req.has_id) reply.set("id", Json(req.id));
    Json hours_json{Json::Array{}};
    Json keyed_json{Json::Array{}};
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      hours_json.push_back(Json(hours[k]));
      keyed_json.push_back(Json(shards_[k]->current_snapshot()->keyed));
    }
    reply.set("hours", std::move(hours_json));
    reply.set("keyed", std::move(keyed_json));
    return reply.dump();
  }

  std::string reply = shards_[target]->serve_request(req);
  // A shutdown served by any shard shuts the whole fleet down: the
  // transport layer watches the fleet flag, not the shards'.
  if (req.verb == Verb::kShutdown) request_shutdown();
  return reply;
}

std::vector<std::size_t> ShardedDaemon::tick_all() {
  // Acquire every shard's write lock in shard order BEFORE entering the
  // parallel region. Lock order is shard locks -> pool region, the same
  // order every other pool user observes (a Monte-Carlo detect holds
  // one shard lock, then waits for the pool), so no cycle can form.
  std::vector<MtdDaemon::ExecLock> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.push_back(shard->exec_lock());
  std::vector<std::size_t> hours(shards_.size());
  core::parallel_for(shards_.size(), [&](std::size_t k) {
    hours[k] = shards_[k]->tick(locks[k]);
  });
  return hours;
}

obs::WorkSnapshot ShardedDaemon::aggregate_work() const {
  obs::WorkSnapshot total{};
  for (const auto& shard : shards_) {
    const obs::WorkSnapshot w = shard->registry().work_snapshot();
    for (std::size_t i = 0; i < obs::kWorkCount; ++i) total[i] += w[i];
  }
  return total;
}

void ShardedDaemon::request_shutdown() {
  shutdown_.store(true);
  for (const auto& shard : shards_) shard->request_shutdown();
}

}  // namespace mtdgrid::serve
