#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "grid/load_trace.hpp"
#include "grid/power_system.hpp"
#include "mtd/daily.hpp"
#include "serve/daemon.hpp"
#include "serve/service.hpp"

namespace mtdgrid::serve {

/// Options of the serving fleet: one shard per entry of `cases` (repeat
/// a name to serve several independent copies of the same case). Each
/// shard gets the root seed substream `stream_seed(seed, shard)`, so a
/// shard's transcript is bit-identical whether it runs alone (a single
/// `MtdDaemon` built with that seed) or inside the fleet.
struct ShardedOptions {
  /// Case name or `.m` path per shard, resolved through `io::load_case`
  /// by the name-loading constructor (ignored by the system-loading
  /// one, which takes explicit systems but still names one entry per
  /// shard for `case` routing).
  std::vector<std::string> cases = {"case14"};
  /// Fleet root seed; shard k serves from `stream_seed(seed, k)`.
  std::uint64_t seed = 7;
  /// Retained key snapshots per shard (>= 1), as `DaemonOptions`.
  std::size_t history_hours = 24;
  /// Re-keying targets and budgets, shared by every shard.
  mtd::DailySimulationOptions daily;
};

/// A multi-tenant serving fleet (ROADMAP "Fleet-scale serving"): N
/// independent `MtdDaemon` shards behind one `LineService` front door.
/// The routing grammar (DESIGN.md "Fleet sharding"):
///
///  - `"shard": k` routes a request to shard k; `"case": name` routes to
///    the first shard serving that case; giving both is an error; giving
///    neither routes to shard 0 — except `tick`, which broadcasts.
///  - An unrouted `tick` advances ALL shards in one parallel region
///    (each shard's write lock is pre-acquired in shard order, then the
///    fan-out runs on the shared `core::ThreadPool`) and replies
///    `{"ok":true,"op":"tick","hours":[...],"keyed":[...]}`.
///  - A JSON *array* line is a batch: each element is routed and served
///    in input order and the reply is the array of the individual
///    replies — byte-identical to sending the elements one per line.
///  - Unknown shards/cases get the pinned `"bad-shard"` error code.
///
/// Concurrency: `handle_line` may be called from any number of
/// transport threads. Shards never share mutable state — read verbs run
/// lock-free inside the routed shard, write verbs serialize on that
/// shard's own lock only — so one shard's load never perturbs another
/// shard's replies (the shard-isolation tests pin this bit-exactly).
/// Routing-layer failures (unparseable lines, unknown shards) are
/// answered by the fleet itself and attributed to no shard's counters.
class ShardedDaemon : public LineService {
 public:
  /// Loads `options.cases` through `io::load_case` (each with its
  /// default daemon trace) and keys hour 0 of every shard.
  explicit ShardedDaemon(const ShardedOptions& options);

  /// Builds the fleet around explicit per-shard systems and traces
  /// (tests use this to skip case-file loading). `options.cases` must
  /// name one entry per system; names feed `case` routing and replies.
  ShardedDaemon(
      std::vector<std::pair<grid::PowerSystem, grid::DailyLoadTrace>> systems,
      const ShardedOptions& options);

  /// Handles one request line — object or batch array — and returns the
  /// reply line. Never throws; see the class comment for the grammar.
  std::string handle_line(const std::string& line) override;

  /// Advances every shard one hour in one parallel region and returns
  /// the new current hour per shard (shard order). Equivalent to — and
  /// bit-identical with — ticking each shard individually.
  std::vector<std::size_t> tick_all();

  /// Number of shards (fixed at construction, >= 1).
  std::size_t num_shards() const { return shards_.size(); }

  /// Direct access to shard `k` (valid for k < num_shards()).
  MtdDaemon& shard(std::size_t k) { return *shards_[k]; }

  /// Const access to shard `k` (valid for k < num_shards()).
  const MtdDaemon& shard(std::size_t k) const { return *shards_[k]; }

  /// Fleet-wide engine work: the per-counter sum of every shard's
  /// registry (relaxed point-in-time loads, like every metrics read).
  /// Deterministic counters sum to a pure function of the per-shard
  /// transcripts, so the aggregate keeps their thread-count invariance.
  obs::WorkSnapshot aggregate_work() const;

  /// Marks the fleet — and every shard — as shutting down.
  void request_shutdown();

  /// True once a `shutdown` verb was served (any shard) or
  /// `request_shutdown` was called.
  bool shutdown_requested() const override { return shutdown_.load(); }

 private:
  /// Routes one decoded request object to its shard and serves it;
  /// routing failures come back as fleet-level error replies.
  std::string route_and_serve(const Json& doc);

  std::vector<std::unique_ptr<MtdDaemon>> shards_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace mtdgrid::serve
