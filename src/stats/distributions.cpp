#include "stats/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

namespace mtdgrid::stats {

double log_gamma(double x) {
  assert(x > 0.0);
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static constexpr double kCoefficients[] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps the approximation in its accurate range.
    return std::log(std::numbers::pi / std::sin(std::numbers::pi * x)) -
           log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double acc = kCoefficients[0];
  for (int i = 1; i < 9; ++i) acc += kCoefficients[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * std::numbers::pi) + (z + 0.5) * std::log(t) - t +
         std::log(acc);
}

namespace {

/// Lower incomplete gamma by power series; accurate for x < a + 1.
double gamma_p_series(double a, double x) {
  if (x <= 0.0) return 0.0;
  double term = 1.0 / a;
  double sum = term;
  for (int n = 1; n < 1000; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Upper incomplete gamma by Lentz continued fraction; for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double chi_square_cdf(double x, double k) {
  assert(k > 0.0);
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(0.5 * k, 0.5 * x);
}

double chi_square_quantile(double p, double k) {
  assert(p > 0.0 && p < 1.0 && k > 0.0);
  // Bisection on the CDF: monotone, bracketed, and robust.
  double lo = 0.0;
  double hi = std::max(k + 10.0 * std::sqrt(2.0 * k), 10.0);
  while (chi_square_cdf(hi, k) < p) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (chi_square_cdf(mid, k) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

double noncentral_chi_square_cdf(double x, double k, double lambda) {
  assert(k > 0.0 && lambda >= 0.0);
  if (x <= 0.0) return 0.0;
  if (lambda == 0.0) return chi_square_cdf(x, k);

  // Poisson mixture: sum_j pois(j; lambda/2) * F_chi2(x; k + 2j).
  // Start at the modal Poisson index and expand outward until the
  // accumulated probability mass makes further terms negligible.
  const double half_lambda = 0.5 * lambda;
  const auto poisson_log_pmf = [&](int j) {
    return -half_lambda + j * std::log(half_lambda) - log_gamma(j + 1.0);
  };

  const int mode = static_cast<int>(half_lambda);
  double total = 0.0;
  double weight_sum = 0.0;

  // Walk down from the mode.
  for (int j = mode; j >= 0; --j) {
    const double w = std::exp(poisson_log_pmf(j));
    total += w * chi_square_cdf(x, k + 2.0 * j);
    weight_sum += w;
    if (w < 1e-18 && j < mode) break;
  }
  // Walk up from the mode.
  for (int j = mode + 1; j < mode + 10000; ++j) {
    const double w = std::exp(poisson_log_pmf(j));
    total += w * chi_square_cdf(x, k + 2.0 * j);
    weight_sum += w;
    if (w < 1e-18 && weight_sum > 0.999) break;
  }
  return std::clamp(total, 0.0, 1.0);
}

double noncentral_chi_square_sf(double x, double k, double lambda) {
  return 1.0 - noncentral_chi_square_cdf(x, k, lambda);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

Summary summarize(const double* values, std::size_t n) {
  Summary s;
  s.count = n;
  if (n == 0) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += values[i];
    s.min = std::min(s.min, values[i]);
    s.max = std::max(s.max, values[i]);
  }
  s.mean = sum / static_cast<double>(n);
  if (n > 1) {
    double ss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = values[i] - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  }
  return s;
}

}  // namespace mtdgrid::stats
