#pragma once

#include <cstddef>

namespace mtdgrid::stats {

/// Natural log of the Gamma function (Lanczos approximation), x > 0.
double log_gamma(double x);

/// Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
/// Series expansion for x < a + 1, continued fraction otherwise.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// CDF of the (central) chi-square distribution with `k` degrees of freedom.
double chi_square_cdf(double x, double k);

/// Quantile (inverse CDF) of the central chi-square distribution; p in
/// (0, 1). Used to calibrate the BDD threshold for a target false-positive
/// rate: tau^2 = chi_square_quantile(1 - alpha, dof).
double chi_square_quantile(double p, double k);

/// CDF of the noncentral chi-square distribution with `k` degrees of
/// freedom and noncentrality `lambda` (the paper's Appendix B residual
/// model: ||r'_n + r'_a||^2 with lambda = ||r'_a||^2 in noise-normalized
/// units). Evaluated as a Poisson-weighted mixture of central CDFs.
double noncentral_chi_square_cdf(double x, double k, double lambda);

/// Survival function 1 - CDF of the noncentral chi-square distribution;
/// this is the analytic attack-detection probability P(r' >= tau).
double noncentral_chi_square_sf(double x, double k, double lambda);

/// Standard normal CDF.
double normal_cdf(double x);

/// Descriptive statistics of a sample.
struct Summary {
  double mean = 0.0;    ///< sample mean
  double stddev = 0.0;  ///< sample standard deviation (n - 1 denominator)
  double min = 0.0;     ///< smallest observation
  double max = 0.0;     ///< largest observation
  std::size_t count = 0;  ///< number of observations
};

/// Computes the summary of `values[0..n)`; n may be zero.
Summary summarize(const double* values, std::size_t n);

}  // namespace mtdgrid::stats
