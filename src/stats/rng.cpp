#include "stats/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace mtdgrid::stats {

namespace {

/// splitmix64: expands a single seed into well-distributed state words.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % n;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return draw % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

std::uint64_t stream_seed(std::uint64_t root, std::uint64_t index) {
  // Place the pair on the splitmix64 golden-gamma orbit (index + 1 keeps
  // stream 0 off the root itself), then run two finalizer rounds so that
  // adjacent indices land in unrelated states.
  std::uint64_t s = root + (index + 1) * 0x9e3779b97f4a7c15ULL;
  const std::uint64_t first = splitmix64(s);
  return first ^ splitmix64(s);
}

Rng make_stream(std::uint64_t root, std::uint64_t index) {
  return Rng(stream_seed(root, index));
}

}  // namespace mtdgrid::stats
