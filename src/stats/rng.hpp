#pragma once

#include <cstdint>

namespace mtdgrid::stats {

/// Deterministic, seedable pseudo-random generator (xoshiro256++).
///
/// Every stochastic component of the library (noise draws, random attack
/// vectors, random MTD perturbations, multi-start optimization) takes an
/// explicit `Rng&` so that simulations are reproducible run to run.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal draw (Box-Muller, cached second value).
  double gaussian();

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mtdgrid::stats
