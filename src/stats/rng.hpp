#pragma once

#include <cstdint>

namespace mtdgrid::stats {

/// Deterministic, seedable pseudo-random generator (xoshiro256++).
///
/// Every stochastic component of the library (noise draws, random attack
/// vectors, random MTD perturbations, multi-start optimization) takes an
/// explicit `Rng&` so that simulations are reproducible run to run.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal draw (Box-Muller, cached second value).
  double gaussian();

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Draws one raw value to serve as the root of a counter-based substream
  /// family (see `stream_seed`). Consuming exactly one draw — independent
  /// of how many substreams are later derived — is what lets a parallel
  /// code path advance the caller's generator by the same amount as the
  /// sequential path.
  std::uint64_t split() { return next_u64(); }

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Counter-based stream derivation: mixes `(root, index)` through two
/// rounds of the splitmix64 finalizer into the seed of a statistically
/// independent substream. The mapping is a pure function of the pair —
/// stream `index` of family `root` is the same no matter which thread
/// derives it, in what order, or how many siblings exist — which is the
/// foundation of the library's deterministic parallelism (DESIGN.md
/// "Threading model & deterministic seeding").
std::uint64_t stream_seed(std::uint64_t root, std::uint64_t index);

/// Convenience: the ready-to-use generator for task `index` of the
/// substream family rooted at `root`; equivalent to
/// `Rng(stream_seed(root, index))`.
Rng make_stream(std::uint64_t root, std::uint64_t index);

}  // namespace mtdgrid::stats
