// Property tests for the attacker-side probe machinery (ISSUE 10): the
// probe oracle matches the daemon's probe verb sample for sample, the key
// estimator converges to the defender's keyed subspace as the probe
// budget grows, and the estimate goes stale the moment the defender
// re-keys.

#include "attack/adaptive.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"
#include "serve/daemon.hpp"
#include "serve/json.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::attack {
namespace {

/// A keyed operating point: the defender at reactances `x` (every D-FACTS
/// branch scaled by `factor`, clamped to the device limits) serving the
/// case's nominal loads.
struct KeyedPoint {
  linalg::Vector x;
  linalg::Matrix h;
  linalg::Vector z_ref;
};

KeyedPoint keyed_point(const grid::PowerSystem& sys, double factor) {
  KeyedPoint p;
  p.x = sys.reactances();
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  for (const std::size_t l : sys.dfacts_branches())
    p.x[l] = std::clamp(p.x[l] * factor, lo[l], hi[l]);
  p.h = grid::measurement_matrix(sys, p.x);
  const opf::DispatchResult d = opf::solve_dc_opf(sys, p.x);
  EXPECT_TRUE(d.feasible);
  p.z_ref = grid::noiseless_measurements(sys, p.x, d.theta_reduced);
  return p;
}

TEST(AdaptiveAttackTest, ProbeMeasurementMatchesDaemonProbeVerb) {
  // The campaign's probe-based attacker must observe *exactly* the
  // samples a client probing the serving daemon would receive: same tag,
  // same substream, same formula.
  serve::DaemonOptions options;
  options.seed = 11;
  options.daily.gamma_grid = {0.05, 0.15};
  options.daily.base_search_evaluations = 120;
  options.daily.effectiveness.num_attacks = 40;
  options.daily.selection.extra_starts = 1;
  options.daily.selection.search.max_evaluations = 150;
  serve::MtdDaemon daemon(grid::make_case14(),
                          grid::DailyLoadTrace::nyiso_winter_weekday(),
                          options);
  const auto snap = daemon.current_snapshot();
  ASSERT_TRUE(snap->keyed);

  const std::uint64_t probe_root =
      stats::stream_seed(options.seed, kProbeOracleTag);
  const linalg::Vector local = probe_measurement(
      snap->z_ref, options.daily.effectiveness.sigma_mw, probe_root,
      snap->hour, 42);

  const serve::Json reply = serve::Json::parse(
      daemon.handle_line(R"({"op":"probe","id":42})"));
  ASSERT_TRUE(reply.find("ok")->as_bool());
  const serve::Json::Array& wire = reply.find("z")->as_array();
  ASSERT_EQ(wire.size(), local.size());
  for (std::size_t i = 0; i < local.size(); ++i)
    EXPECT_EQ(wire[i].as_number(), local[i]);  // bit-identical
}

TEST(AdaptiveAttackTest, NoiselessProbeRecoversTheKeyExactly) {
  // With sigma = 0 one probe pins the flows exactly, so every D-FACTS
  // branch carrying measurable flow is identified to round-off.
  const grid::PowerSystem sys = grid::make_case14();
  const KeyedPoint key = keyed_point(sys, 1.25);
  const KeyEstimate est =
      probe_and_estimate_key(sys, key.z_ref, 0.0, 123, 0, 1);
  EXPECT_EQ(est.probes_used, 1u);
  EXPECT_GT(est.identified_branches, 0u);
  for (const std::size_t l : sys.dfacts_branches())
    EXPECT_NEAR(est.reactances[l], key.x[l], 1e-6 * key.x[l]) << l;
  EXPECT_LT(mtd::spa(est.h, key.h), 1e-6);
}

TEST(AdaptiveAttackTest, EstimateConvergesToKeyedSubspaceWithBudget) {
  // Under realistic probe noise the estimated subspace closes in on the
  // keyed one as the budget grows (noise on the mean flows shrinks as
  // 1/sqrt(B)), on both benchmark cases of the paper.
  for (const grid::PowerSystem& sys :
       {grid::make_case14(), grid::make_case57()}) {
    const KeyedPoint key = keyed_point(sys, 1.3);
    const double gamma_nominal =
        mtd::spa(grid::measurement_matrix(sys), key.h);
    const double sigma = 2.0;  // harsh noise so the budget visibly matters
    double prev_gamma = 1e9;
    for (const int budget : {1, 16, 256}) {
      const KeyEstimate est =
          probe_and_estimate_key(sys, key.z_ref, sigma, 7, 0, budget);
      const double gamma = mtd::spa(est.h, key.h);
      EXPECT_LT(gamma, prev_gamma + 1e-12)
          << sys.name() << " budget " << budget;
      prev_gamma = gamma;
    }
    // The big-budget estimate beats zero knowledge by a wide margin
    // (observed ~0.45x on case14, ~0.1x on case57 at these knobs).
    EXPECT_LT(prev_gamma, 0.5 * gamma_nominal) << sys.name();
  }
}

TEST(AdaptiveAttackTest, EstimateGoesStaleAcrossRekeyingBoundary) {
  // An estimate of key A aligns with A, not with the key B the defender
  // re-keys to: probing buys current knowledge only until the boundary.
  const grid::PowerSystem sys = grid::make_case14();
  const KeyedPoint key_a = keyed_point(sys, 1.3);
  const KeyedPoint key_b = keyed_point(sys, 0.75);
  const KeyEstimate est =
      probe_and_estimate_key(sys, key_a.z_ref, 0.05, 99, 0, 8);
  const double gamma_to_a = mtd::spa(est.h, key_a.h);
  const double gamma_to_b = mtd::spa(est.h, key_b.h);
  EXPECT_LT(gamma_to_a, 5e-3);
  EXPECT_GT(gamma_to_b, 10.0 * std::max(gamma_to_a, 1e-9));
}

TEST(AdaptiveAttackTest, ValidatesArguments) {
  const grid::PowerSystem sys = grid::make_case14();
  const KeyedPoint key = keyed_point(sys, 1.2);
  EXPECT_THROW(probe_and_estimate_key(sys, key.z_ref, 0.05, 1, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(estimate_key(sys, {}), std::invalid_argument);
  EXPECT_THROW(estimate_key(sys, {linalg::Vector(3)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::attack
