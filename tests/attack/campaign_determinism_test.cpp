// Campaign determinism (ISSUE 10 acceptance): the knowledge frontier —
// including its serialized JSON and the deterministic work counters — is
// a BIT-IDENTICAL pure function of (seed, configuration) at thread
// counts 1, 2, and 8. Exact == on doubles and bytes on purpose:
// "close enough" would hide reduction-ordering bugs.

#include "attack/campaign.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"

namespace mtdgrid::attack {
namespace {

const std::array<std::size_t, 3> kThreadCounts = {1, 2, 8};

CampaignOptions fast_options() {
  CampaignOptions options;
  options.seed = 11;
  options.horizon_hours = 4;
  options.rekey_every = {1, 2};
  options.daily.gamma_grid = {0.05, 0.15};
  options.daily.base_search_evaluations = 120;
  options.daily.effectiveness.num_attacks = 40;
  options.daily.selection.extra_starts = 1;
  options.daily.selection.search.max_evaluations = 150;
  return options;
}

/// One campaign run under its own metrics registry: the serialized
/// frontier plus the deterministic work counters it accumulated.
struct CampaignRun {
  std::string frontier_json;
  std::vector<std::uint64_t> work;  // deterministic counters only
};

CampaignRun run_once() {
  obs::MetricsRegistry registry;
  obs::ScopedRegistry scope(&registry);
  const CampaignFrontier frontier =
      run_campaign(grid::make_case14(),
                   grid::DailyLoadTrace::nyiso_winter_weekday(),
                   fast_options());
  CampaignRun run;
  run.frontier_json = to_json(frontier);
  const obs::WorkSnapshot work = registry.work_snapshot();
  for (std::size_t i = 0; i < obs::kWorkCount; ++i)
    if (obs::work_info(static_cast<obs::Work>(i)).deterministic)
      run.work.push_back(work[i]);
  return run;
}

TEST(CampaignDeterminismTest, FrontierAndCountersBitIdenticalAcrossThreads) {
  std::vector<CampaignRun> runs;
  for (const std::size_t threads : kThreadCounts) {
    core::ThreadPool::set_global_num_threads(threads);
    runs.push_back(run_once());
  }
  core::ThreadPool::set_global_num_threads(0);  // restore the default

  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].frontier_json, runs[0].frontier_json)
        << "threads " << kThreadCounts[i];
    EXPECT_EQ(runs[i].work, runs[0].work) << "threads " << kThreadCounts[i];
  }

  // Sanity on the frontier itself: both schedules times the default
  // six-attacker panel, probes and replays actually counted.
  const CampaignFrontier frontier =
      run_campaign(grid::make_case14(),
                   grid::DailyLoadTrace::nyiso_winter_weekday(),
                   fast_options());
  ASSERT_EQ(frontier.cells.size(), 12u);
  std::uint64_t probes = 0, replays = 0;
  for (const CampaignCell& cell : frontier.cells) {
    EXPECT_GT(cell.hours_scored, 0u);
    probes += cell.probes_used;
    replays += cell.boundary_replays;
  }
  EXPECT_GT(probes, 0u);
  EXPECT_GT(replays, 0u);
}

TEST(CampaignDeterminismTest, RepeatedRunsShareBytes) {
  // Two runs in the same process (same thread count) are byte-identical:
  // no hidden global state leaks into the frontier.
  const CampaignRun a = run_once();
  const CampaignRun b = run_once();
  EXPECT_EQ(a.frontier_json, b.frontier_json);
  EXPECT_EQ(a.work, b.work);
}

}  // namespace
}  // namespace mtdgrid::attack
