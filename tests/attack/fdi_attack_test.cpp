#include "attack/fdi_attack.hpp"

#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::attack {
namespace {

linalg::Matrix ieee14_h() {
  return grid::measurement_matrix(grid::make_case_ieee14());
}

TEST(FdiAttackTest, ConstructsAEqualsHc) {
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(1);
  const linalg::Vector c = test::random_vector(h.cols(), rng);
  const FdiAttack atk = make_stealthy_attack(h, c);
  EXPECT_NEAR(linalg::max_abs_diff(atk.a, h * c), 0.0, 0.0);
  EXPECT_NEAR(linalg::max_abs_diff(atk.c, c), 0.0, 0.0);
}

TEST(FdiAttackTest, RandomAttackMagnitudeScaling) {
  // ||a||_1 / ||z||_1 must equal the requested relative magnitude.
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(2);
  linalg::Vector z_ref(h.rows());
  for (std::size_t i = 0; i < z_ref.size(); ++i)
    z_ref[i] = 10.0 + rng.uniform() * 40.0;
  const FdiAttack atk = random_stealthy_attack(h, z_ref, 0.08, rng);
  EXPECT_NEAR(atk.a.norm1() / z_ref.norm1(), 0.08, 1e-10);
}

TEST(FdiAttackTest, RandomAttackConsistency) {
  // a must still equal H c after the scaling.
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(3);
  const linalg::Vector z_ref(h.rows(), 25.0);
  const FdiAttack atk = random_stealthy_attack(h, z_ref, 0.05, rng);
  EXPECT_NEAR(linalg::max_abs_diff(atk.a, h * atk.c), 0.0, 1e-10);
}

TEST(FdiAttackTest, SampleAttacksCountAndDistinct) {
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(4);
  const linalg::Vector z_ref(h.rows(), 25.0);
  const auto attacks = sample_attacks(h, z_ref, 0.08, 50, rng);
  ASSERT_EQ(attacks.size(), 50u);
  // Any two draws should differ.
  EXPECT_GT(linalg::max_abs_diff(attacks[0].a, attacks[1].a), 1e-9);
}

TEST(FdiAttackTest, SamplingIsReproducible) {
  const linalg::Matrix h = ieee14_h();
  const linalg::Vector z_ref(h.rows(), 25.0);
  stats::Rng rng_a(7), rng_b(7);
  const auto a = sample_attacks(h, z_ref, 0.08, 5, rng_a);
  const auto b = sample_attacks(h, z_ref, 0.08, 5, rng_b);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(linalg::max_abs_diff(a[i].a, b[i].a), 0.0, 0.0);
}

TEST(FdiAttackTest, StealthyUnderOwnMatrix) {
  // Proposition 1 with H' = H: every a = Hc stays in the column space.
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(5);
  const FdiAttack atk =
      make_stealthy_attack(h, test::random_vector(h.cols(), rng));
  EXPECT_TRUE(remains_stealthy_under(h, atk));
}

TEST(FdiAttackTest, StealthyUnderScaledMatrix) {
  // H' = (1+eta) H spans the same space: the paper's gamma == 0 case.
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(6);
  const FdiAttack atk =
      make_stealthy_attack(h, test::random_vector(h.cols(), rng));
  EXPECT_TRUE(remains_stealthy_under(h * 1.3, atk));
}

TEST(FdiAttackTest, DetectableUnderGenuinePerturbation) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.4;
  const linalg::Matrix h_new = grid::measurement_matrix(sys, x);

  stats::Rng rng(7);
  const FdiAttack atk =
      make_stealthy_attack(h, test::random_vector(h.cols(), rng));
  EXPECT_FALSE(remains_stealthy_under(h_new, atk));
}

TEST(FdiAttackTest, SharedSubspaceAttackSurvivesPerturbation) {
  // A state offset that is constant across every D-FACTS branch's
  // endpoints produces identical measurements under both matrices — the
  // fundamental reason eta'(delta) cannot reach 1 (see mtd::spa notes).
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 0.6;
  const linalg::Matrix h_new = grid::measurement_matrix(sys, x);

  // c constant on all buses (in reduced coordinates, the slack stays 0, so
  // pick c supported away from every D-FACTS branch endpoint instead).
  // D-FACTS branches {1-2, 2-5, 4-9, 6-11, 9-14, 12-13} (1-based). A c
  // that is equal at both endpoints of each: set all entries to the same
  // value except the slack -> violates 1-2 (slack fixed). Use instead the
  // uniform-on-{2..14} vector minus its violation: buses {2..14} all at 1
  // fails only on branch 1-2. Zero out that effect by... simply verify with
  // bus set where it *is* constant: c = 1 on {13, 14} only would hit 12-13
  // and 9-14. The safe support here: bus 10 and 11 equal, others zero
  // violates 6-11 unless bus 6 matches. Constant block {6, 10, 11, 12, 13}
  // covers 6-11 and 12-13 consistently and avoids 1-2, 2-5, 4-9, 9-14.
  linalg::Vector c(h.cols());
  for (std::size_t bus_1based : {6, 10, 11, 12, 13}) {
    c[bus_1based - 2] = 1.0;  // reduced index = bus - 2 (slack removed)
  }
  // Must not touch endpoints of D-FACTS branches asymmetrically: check via
  // the stealth predicate itself.
  const FdiAttack atk = make_stealthy_attack(h, c);
  EXPECT_TRUE(remains_stealthy_under(h_new, atk));
}

TEST(FdiAttackTest, ZeroDeviationAttackIsDegenerateAndAlwaysStealthy) {
  // Edge case: c = 0 gives a = H*0 = 0 — the "attack" changes nothing,
  // so it trivially survives every re-keying. The residual machinery
  // must not divide by ||a|| or flag it.
  const linalg::Matrix h = ieee14_h();
  const FdiAttack atk = make_stealthy_attack(h, linalg::Vector(h.cols()));
  EXPECT_EQ(atk.a.norm1(), 0.0);

  const grid::PowerSystem sys = grid::make_case_ieee14();
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.4;
  EXPECT_TRUE(remains_stealthy_under(grid::measurement_matrix(sys, x), atk));
  EXPECT_TRUE(remains_stealthy_under(h, atk));
}

TEST(FdiAttackTest, RejectsBadArguments) {
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(8);
  EXPECT_THROW(random_stealthy_attack(h, linalg::Vector(h.rows(), 10.0),
                                      -0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(
      random_stealthy_attack(h, linalg::Vector(h.rows(), 0.0), 0.08, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::attack
