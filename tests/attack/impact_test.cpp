#include "attack/impact.hpp"

#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::attack {
namespace {

TEST(AttackImpactTest, ZeroAttackHasNoImpact) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const AttackImpact impact = evaluate_attack_impact(
      sys, sys.reactances(), linalg::Vector(sys.num_buses() - 1));
  ASSERT_TRUE(impact.redispatch_feasible);
  EXPECT_NEAR(impact.cost_increase, 0.0, 1e-9);
  EXPECT_EQ(impact.overloaded_lines, 0u);
}

TEST(AttackImpactTest, LoadRedistributionRaisesCostOrOverloads) {
  // An attack that makes the congested bus-3 load look smaller lets the
  // operator under-serve it; the fooled dispatch is wrong for the real
  // system. Either the cost deviates or lines overload (usually both).
  const grid::PowerSystem sys = grid::make_case_ieee14();
  linalg::Vector c(sys.num_buses() - 1);
  c[1] = 0.02;  // bus 3 (reduced index 1): fake phase offset, ~tens of MW
  const AttackImpact impact =
      evaluate_attack_impact(sys, sys.reactances(), c);
  ASSERT_TRUE(impact.redispatch_feasible);
  EXPECT_TRUE(impact.overloaded_lines > 0 ||
              std::abs(impact.cost_increase) > 1e-6);
}

TEST(AttackImpactTest, ImpactGrowsWithAttackMagnitude) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(3);
  linalg::Vector direction = test::random_vector(sys.num_buses() - 1, rng);
  direction /= direction.norm();
  double prev_damage = -1.0;
  for (double scale : {0.002, 0.01, 0.03}) {
    const AttackImpact impact = evaluate_attack_impact(
        sys, sys.reactances(), direction * scale);
    if (!impact.redispatch_feasible) continue;
    const double damage =
        std::abs(impact.cost_increase) + impact.worst_overload_pct;
    EXPECT_GE(damage, prev_damage - 1e-6);
    prev_damage = damage;
  }
  EXPECT_GT(prev_damage, 0.0);
}

TEST(AttackImpactTest, DiscussionComparisonMtdPremiumVsAttackDamage) {
  // Section VII-D's argument: the MTD premium (a few percent, cf. Fig. 10)
  // is small against what a single sustained undetected attack can do.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(4);
  double worst_damage_pct = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    linalg::Vector c = test::random_vector(sys.num_buses() - 1, rng, 0.01);
    const AttackImpact impact =
        evaluate_attack_impact(sys, sys.reactances(), c);
    if (!impact.redispatch_feasible) continue;
    worst_damage_pct = std::max(
        worst_damage_pct,
        100.0 * std::abs(impact.cost_increase) + impact.worst_overload_pct);
  }
  // The worst random attack does far more damage than the ~2-3% premium.
  EXPECT_GT(worst_damage_pct, 5.0);
}

TEST(AttackImpactTest, InfeasibleTargetStateIsReportedNotCrashed) {
  // Edge case: an absurd state offset implies falsified loads the fleet
  // cannot serve. The evaluator must report redispatch_feasible = false
  // with zeroed damage fields instead of throwing or returning garbage.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  linalg::Vector c(sys.num_buses() - 1);
  for (std::size_t i = 0; i < c.size(); ++i)
    c[i] = (i % 2 == 0) ? 50.0 : -50.0;  // wildly implausible phase shifts
  const AttackImpact impact =
      evaluate_attack_impact(sys, sys.reactances(), c);
  EXPECT_FALSE(impact.redispatch_feasible);
  EXPECT_GE(impact.true_opf_cost, 0.0);
  EXPECT_EQ(impact.attacked_cost, 0.0);
  EXPECT_EQ(impact.cost_increase, 0.0);
  EXPECT_EQ(impact.worst_overload_pct, 0.0);
  EXPECT_EQ(impact.overloaded_lines, 0u);
}

TEST(AttackImpactTest, WorksAcrossCases) {
  stats::Rng rng(5);
  for (const grid::PowerSystem& sys :
       {grid::make_case4(), grid::make_case_wscc9(),
        grid::make_case_ieee30()}) {
    const linalg::Vector c =
        test::random_vector(sys.num_buses() - 1, rng, 0.005);
    const AttackImpact impact =
        evaluate_attack_impact(sys, sys.reactances(), c);
    EXPECT_GE(impact.true_opf_cost, 0.0) << sys.name();
  }
}

}  // namespace
}  // namespace mtdgrid::attack
