// Stale-key replay regression (ISSUE 10): an attack crafted on hour h's
// key and replayed after the defender re-keys at h+1 is detected with
// high probability whenever the key actually moved, while the omniscient
// attacker (the paper's worst case, knowing the key in force) reproduces
// the keyspace-audit evasion baseline: detection at the false-positive
// rate and eta = 0.

#include <gtest/gtest.h>

#include <vector>

#include "grid/cases.hpp"
#include "grid/load_trace.hpp"
#include "grid/measurement.hpp"
#include "mtd/daily.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/spa.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::attack {
namespace {

mtd::DailySimulationOptions fast_daily() {
  mtd::DailySimulationOptions options;
  options.gamma_grid = {0.05, 0.15};
  options.base_search_evaluations = 120;
  options.effectiveness.num_attacks = 200;
  options.selection.extra_starts = 1;
  options.selection.search.max_evaluations = 150;
  return options;
}

struct KeyedHour {
  linalg::Matrix h;
  linalg::Vector z_ref;
};

/// Advances a fast case14 engine for `hours` hours and returns the keyed
/// outcomes in order (infeasible hours skipped).
std::vector<KeyedHour> keyed_hours(std::size_t hours, std::uint64_t seed) {
  mtd::DailyEngine engine(grid::make_case14(),
                          grid::DailyLoadTrace::nyiso_winter_weekday(),
                          fast_daily());
  stats::Rng rng(seed);
  std::vector<KeyedHour> out;
  for (std::size_t h = 0; h < hours; ++h) {
    mtd::DailyHourOutcome o = engine.advance_hour(rng);
    if (!o.record.feasible) continue;
    out.push_back({std::move(o.h_mtd), std::move(o.z_ref)});
  }
  return out;
}

TEST(StaleReplayTest, ReplayAcrossRekeyBoundaryIsDetectedWhenKeyMoves) {
  const std::vector<KeyedHour> hours = keyed_hours(6, 11);
  ASSERT_GE(hours.size(), 3u);

  mtd::EffectivenessOptions eff;
  eff.num_attacks = 200;
  eff.deltas = {0.9};

  // The warm-started hourly selection occasionally re-adopts (nearly) the
  // same perturbation, so the stale key is only *guaranteed* useless to
  // the defender's detector on boundaries where the key actually moved.
  std::size_t moved = 0;
  for (std::size_t i = 1; i < hours.size(); ++i) {
    const double gamma = mtd::spa(hours[i - 1].h, hours[i].h);
    stats::Rng rng(33);
    const mtd::EffectivenessResult er = mtd::evaluate_effectiveness(
        hours[i - 1].h, hours[i].h, hours[i].z_ref, eff, rng);
    if (gamma > 0.05) {
      ++moved;
      // Replaying yesterday's key against a moved key trips the detector
      // with high probability.
      EXPECT_GT(er.mean_detection, 0.5) << "boundary " << i;
    }
    // Never worse than the false-positive floor.
    EXPECT_GE(er.mean_detection, 0.0);
  }
  EXPECT_GE(moved, 1u);  // the trajectory re-keyed for real at least once
}

TEST(StaleReplayTest, OmniscientAttackerReproducesEvasionBaseline) {
  // h_attacker == h_actual: every sampled attack stays in the keyed
  // column space, so detection collapses to the tuned false-positive
  // rate and the improvement factor eta is exactly zero — the
  // keyspace_audit evasion baseline.
  const std::vector<KeyedHour> hours = keyed_hours(3, 11);
  ASSERT_FALSE(hours.empty());
  mtd::EffectivenessOptions eff;
  eff.num_attacks = 200;
  eff.deltas = {0.9};
  for (const KeyedHour& hour : hours) {
    stats::Rng rng(44);
    const mtd::EffectivenessResult er =
        mtd::evaluate_effectiveness(hour.h, hour.h, hour.z_ref, eff, rng);
    EXPECT_LT(er.mean_detection, 0.01);  // ~ fp_rate = 5e-4
    EXPECT_EQ(er.eta[0], 0.0);
  }
}

TEST(StaleReplayTest, ZeroKnowledgeAttackerIsDetectedWithHighProbability) {
  // The opposite end of the knowledge axis: an attacker with only the
  // public nominal model attacks a keyed system and is detected with
  // high probability on every keyed hour. (The p >= 0.95 acceptance
  // number is a case118 campaign figure; these fast case14 knobs pick
  // small-gamma keys, observed detections 0.79-0.94.)
  const grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h_nominal = grid::measurement_matrix(sys);
  const std::vector<KeyedHour> hours = keyed_hours(3, 11);
  ASSERT_FALSE(hours.empty());
  mtd::EffectivenessOptions eff;
  eff.num_attacks = 200;
  eff.deltas = {0.9};
  for (const KeyedHour& hour : hours) {
    stats::Rng rng(55);
    const mtd::EffectivenessResult er = mtd::evaluate_effectiveness(
        h_nominal, hour.h, hour.z_ref, eff, rng);
    EXPECT_GT(er.mean_detection, 0.7);
  }
}

}  // namespace
}  // namespace mtdgrid::attack
