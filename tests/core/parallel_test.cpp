#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::core {
namespace {

TEST(ThreadPoolTest, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<std::size_t> ids;
  pool.run(4, [&](std::size_t id) { ids.push_back(id); });
  // Worker ids are clamped to the pool size: a one-thread pool runs one id.
  EXPECT_EQ(ids, (std::vector<std::size_t>{0}));
}

TEST(ThreadPoolTest, RunsEveryWorkerIdExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::mutex m;
  std::multiset<std::size_t> ids;
  pool.run(4, [&](std::size_t id) {
    std::lock_guard<std::mutex> lock(m);
    ids.insert(id);
  });
  EXPECT_EQ(ids, (std::multiset<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadPoolTest, WorkerCountClampedToPoolSize) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.run(100, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> calls{0};
    pool.run(3, [&](std::size_t) { calls.fetch_add(1); });
    ASSERT_EQ(calls.load(), 3) << "round " << round;
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(4,
               [&](std::size_t id) {
                 if (id == 2) throw std::runtime_error("worker failure");
               }),
      std::runtime_error);
  // The pool survives a throwing region.
  std::atomic<int> calls{0};
  pool.run(4, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadPoolTest, NestedRegionsRunInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  std::atomic<bool> nested_flag_seen{false};
  pool.run(4, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // A nested region must serialize on the calling worker instead of
    // deadlocking or oversubscribing.
    pool.run(4, [&](std::size_t) {
      inner_calls.fetch_add(1);
      if (ThreadPool::in_parallel_region()) nested_flag_seen.store(true);
    });
  });
  EXPECT_EQ(inner_calls.load(), 16);
  EXPECT_TRUE(nested_flag_seen.load());
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPoolTest, DefaultThreadsHonorsEnvOverride) {
  // Save/restore so other tests see the ambient configuration.
  const char* old = std::getenv("MTDGRID_THREADS");
  const std::string saved = old != nullptr ? old : "";
  setenv("MTDGRID_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_num_threads(), 3u);
  setenv("MTDGRID_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_num_threads(), 1u);
  if (old != nullptr)
    setenv("MTDGRID_THREADS", saved.c_str(), 1);
  else
    unsetenv("MTDGRID_THREADS");
}

TEST(ThreadPoolTest, SetGlobalNumThreadsRebuildsPool) {
  ThreadPool::set_global_num_threads(2);
  EXPECT_EQ(ThreadPool::global().num_threads(), 2u);
  ThreadPool::set_global_num_threads(5);
  EXPECT_EQ(ThreadPool::global().num_threads(), 5u);
  ThreadPool::set_global_num_threads(0);  // restore the default
  EXPECT_EQ(ThreadPool::global().num_threads(),
            ThreadPool::default_num_threads());
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(
      n, [&](std::size_t i) { visits[i].fetch_add(1); }, &pool);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForTest, ZeroAndOneCounts) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; }, &pool);
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t) { ++calls; }, &pool);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelMapTest, ResultsAreIndexOrdered) {
  ThreadPool pool(8);
  const std::vector<double> out = parallel_map<double>(
      256, [](std::size_t i) { return static_cast<double>(i) * 0.5; }, &pool);
  ASSERT_EQ(out.size(), 256u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
}

TEST(ParallelForWithStateTest, OneStatePerWorkerCoversAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> states_built{0};
  std::vector<std::atomic<int>> visits(200);
  parallel_for_with_state(
      visits.size(),
      [&] {
        states_built.fetch_add(1);
        return 0;
      },
      [&](int&, std::size_t i) { visits[i].fetch_add(1); }, &pool);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
  EXPECT_GE(states_built.load(), 1);
  EXPECT_LE(states_built.load(), 4);
}

TEST(ParallelForWithSharedStateTest, StatesReusedAcrossRegions) {
  ThreadPool pool(4);
  std::atomic<int> states_built{0};
  WorkerStates<int> states(worker_state_slots(&pool));
  std::vector<std::atomic<int>> visits(120);
  for (int region = 0; region < 3; ++region) {
    parallel_for_with_shared_state(
        visits.size(), states,
        [&] {
          states_built.fetch_add(1);
          return 0;
        },
        [&](int&, std::size_t i) { visits[i].fetch_add(1); }, &pool);
  }
  for (auto& v : visits) EXPECT_EQ(v.load(), 3);
  // Lazy, one per worker, shared by all three regions — never rebuilt.
  EXPECT_GE(states_built.load(), 1);
  EXPECT_LE(states_built.load(), 4);
}

TEST(ParallelReduceOrderedTest, FloatingPointFoldIsThreadCountInvariant) {
  // A sum of values spanning ~16 orders of magnitude is maximally
  // order-sensitive in floating point; the ordered reduction must still be
  // bit-identical across pool sizes.
  const std::size_t n = 500;
  const auto map = [](std::size_t i) {
    stats::Rng stream = stats::make_stream(7, i);
    return stream.uniform() * std::pow(10.0, (i % 32) - 16.0);
  };
  const auto fold = [](double acc, double v, std::size_t) { return acc + v; };

  ThreadPool pool1(1), pool2(2), pool8(8);
  const double s1 =
      parallel_reduce_ordered<double>(n, 0.0, map, fold, &pool1);
  const double s2 =
      parallel_reduce_ordered<double>(n, 0.0, map, fold, &pool2);
  const double s8 =
      parallel_reduce_ordered<double>(n, 0.0, map, fold, &pool8);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s8);
}

TEST(StreamSeedTest, PureFunctionOfRootAndIndex) {
  EXPECT_EQ(stats::stream_seed(42, 7), stats::stream_seed(42, 7));
  EXPECT_NE(stats::stream_seed(42, 7), stats::stream_seed(42, 8));
  EXPECT_NE(stats::stream_seed(42, 7), stats::stream_seed(43, 7));
}

TEST(StreamSeedTest, AdjacentStreamsAreDecorrelated) {
  // Crude independence check: across many (root, index) pairs, adjacent
  // streams' first uniforms must not track each other.
  double corr = 0.0;
  const int n = 2000;
  for (int k = 0; k < n; ++k) {
    stats::Rng a = stats::make_stream(1234, k);
    stats::Rng b = stats::make_stream(1234, k + 1);
    corr += (a.uniform() - 0.5) * (b.uniform() - 0.5);
  }
  corr /= n * (1.0 / 12.0);  // normalize by uniform variance
  EXPECT_LT(std::abs(corr), 0.1);
}

}  // namespace
}  // namespace mtdgrid::core
