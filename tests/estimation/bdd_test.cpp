#include "estimation/bdd.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::estimation {
namespace {

StateEstimator make_estimator(double sigma = 1.0) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  return StateEstimator(grid::measurement_matrix(sys), sigma);
}

TEST(BddTest, ThresholdDecreasesWithAlpha) {
  const StateEstimator est = make_estimator();
  const BadDataDetector strict(est, 1e-4);
  const BadDataDetector loose(est, 0.1);
  EXPECT_GT(strict.threshold(), loose.threshold());
}

TEST(BddTest, RejectsInvalidFpRate) {
  const StateEstimator est = make_estimator();
  EXPECT_THROW(BadDataDetector(est, 0.0), std::invalid_argument);
  EXPECT_THROW(BadDataDetector(est, 1.0), std::invalid_argument);
  EXPECT_THROW(BadDataDetector(est, -0.5), std::invalid_argument);
}

TEST(BddTest, AlarmLogic) {
  const StateEstimator est = make_estimator();
  const BadDataDetector bdd(est, 0.05);
  EXPECT_FALSE(bdd.alarm(bdd.threshold() * 0.99));
  EXPECT_TRUE(bdd.alarm(bdd.threshold()));
  EXPECT_TRUE(bdd.alarm(bdd.threshold() * 1.01));
}

TEST(BddTest, DofMatchesEstimator) {
  const StateEstimator est = make_estimator();
  const BadDataDetector bdd(est, 0.05);
  EXPECT_EQ(bdd.dof(), est.residual_dof());
}

// Property: the empirical false-positive rate under attack-free Gaussian
// noise matches the calibrated alpha across a grid of alphas. This is the
// chi-square calibration claim of the paper's Section III.
class BddCalibrationProperty : public ::testing::TestWithParam<double> {};

TEST_P(BddCalibrationProperty, EmpiricalFpRateMatchesAlpha) {
  const double alpha = GetParam();
  const double sigma = 0.8;
  const StateEstimator est = make_estimator(sigma);
  const BadDataDetector bdd(est, alpha);

  stats::Rng rng(77);
  const int trials = 20000;
  int alarms = 0;
  linalg::Vector z(est.num_measurements());
  for (int t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < z.size(); ++i)
      z[i] = rng.gaussian(0.0, sigma);
    if (bdd.alarm(est.normalized_residual_norm(z))) ++alarms;
  }
  const double empirical = static_cast<double>(alarms) / trials;
  // Binomial tolerance: 4 standard deviations.
  const double tol =
      4.0 * std::sqrt(alpha * (1.0 - alpha) / trials) + 2e-4;
  EXPECT_NEAR(empirical, alpha, tol);
}

INSTANTIATE_TEST_SUITE_P(Alphas, BddCalibrationProperty,
                         ::testing::Values(0.002, 0.01, 0.05, 0.2));

TEST(BddTest, FpRateInvariantToMtdPerturbation) {
  // "MTD does not alter the FP rate of the BDD" (paper Section VII-B):
  // the threshold recalibrates with H' and the dof is unchanged.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
  const StateEstimator before(grid::measurement_matrix(sys), 1.0);
  const StateEstimator after(grid::measurement_matrix(sys, x), 1.0);
  const BadDataDetector bdd_before(before, 5e-4);
  const BadDataDetector bdd_after(after, 5e-4);
  EXPECT_EQ(bdd_before.dof(), bdd_after.dof());
  EXPECT_DOUBLE_EQ(bdd_before.threshold(), bdd_after.threshold());
}

}  // namespace
}  // namespace mtdgrid::estimation
