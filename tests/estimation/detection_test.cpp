#include "estimation/detection.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::estimation {
namespace {

struct Scenario {
  linalg::Matrix h_old;
  linalg::Matrix h_new;
};

Scenario make_scenario(double perturbation = 1.4) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  Scenario s;
  s.h_old = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= perturbation;
  s.h_new = grid::measurement_matrix(sys, x);
  return s;
}

TEST(DetectionTest, StealthyAttackDetectedAtFpRateOnly) {
  // Attack in the *new* column space: P_D == alpha by Proposition 1.
  const Scenario s = make_scenario();
  StateEstimator est(s.h_new, 1.0);
  BadDataDetector bdd(est, 0.01);
  stats::Rng rng(1);
  const linalg::Vector a = s.h_new * test::random_vector(s.h_new.cols(), rng);
  EXPECT_NEAR(analytic_detection_probability(est, bdd, a), 0.01, 1e-6);
}

TEST(DetectionTest, ZeroAttackGivesFpRate) {
  const Scenario s = make_scenario();
  StateEstimator est(s.h_new, 1.0);
  BadDataDetector bdd(est, 5e-4);
  EXPECT_NEAR(analytic_detection_probability(
                  est, bdd, linalg::Vector(s.h_new.rows())),
              5e-4, 1e-8);
}

TEST(DetectionTest, DetectionIncreasesWithAttackMagnitude) {
  // P_D is monotone in ||r'_a|| (paper Appendix B).
  const Scenario s = make_scenario();
  StateEstimator est(s.h_new, 0.5);
  BadDataDetector bdd(est, 5e-4);
  stats::Rng rng(2);
  const linalg::Vector base =
      s.h_old * test::random_vector(s.h_old.cols(), rng);
  double prev = 0.0;
  for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double pd =
        analytic_detection_probability(est, bdd, base * scale);
    EXPECT_GE(pd, prev - 1e-12);
    prev = pd;
  }
}

TEST(DetectionTest, OldSpaceAttacksAreDetectableAfterPerturbation) {
  // A random pre-perturbation attack has a component outside Col(H') and
  // is detected with probability well above alpha for large magnitudes.
  const Scenario s = make_scenario();
  StateEstimator est(s.h_new, 0.1);
  BadDataDetector bdd(est, 5e-4);
  stats::Rng rng(3);
  const linalg::Vector a =
      s.h_old * test::random_vector(s.h_old.cols(), rng, 1.0);
  EXPECT_GT(analytic_detection_probability(est, bdd, a), 0.99);
}

// Property: analytic and Monte-Carlo detection probabilities agree across
// attack magnitudes — the validation of the noncentral-chi-square model.
class DetectionAgreementProperty : public ::testing::TestWithParam<double> {};

TEST_P(DetectionAgreementProperty, AnalyticMatchesMonteCarlo) {
  const double scale = GetParam();
  const Scenario s = make_scenario();
  const double sigma = 1.0;
  StateEstimator est(s.h_new, sigma);
  BadDataDetector bdd(est, 0.01);

  stats::Rng rng(42);
  linalg::Vector c = test::random_vector(s.h_old.cols(), rng, 0.0);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = rng.gaussian();
  linalg::Vector a = s.h_old * c;
  a *= scale / a.norm();  // exact attack 2-norm = scale

  const double analytic = analytic_detection_probability(est, bdd, a);
  const int trials = 4000;
  const double mc = monte_carlo_detection_probability(
      est, bdd, linalg::Vector(a.size()), a, trials, rng);
  const double tol =
      4.0 * std::sqrt(std::max(analytic * (1 - analytic), 0.01) / trials) +
      0.01;
  EXPECT_NEAR(mc, analytic, tol) << "attack 2-norm " << scale;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, DetectionAgreementProperty,
                         ::testing::Values(0.5, 2.0, 5.0, 8.0, 12.0));

TEST(DetectionTest, MonteCarloBaseSignalIrrelevant) {
  // The residual is invariant to any z_base in Col(H'), so detection must
  // not depend on the operating point used for the Monte-Carlo base.
  const Scenario s = make_scenario();
  StateEstimator est(s.h_new, 1.0);
  BadDataDetector bdd(est, 0.01);
  stats::Rng rng1(9), rng2(9);
  const linalg::Vector a =
      s.h_old * test::random_vector(s.h_old.cols(), rng1, 0.5);
  stats::Rng noise1(100), noise2(100);
  const double pd_origin = monte_carlo_detection_probability(
      est, bdd, linalg::Vector(a.size()), a, 2000, noise1);
  const linalg::Vector z_base =
      s.h_new * test::random_vector(s.h_new.cols(), rng2, 3.0);
  const double pd_shifted = monte_carlo_detection_probability(
      est, bdd, z_base, a, 2000, noise2);
  EXPECT_NEAR(pd_origin, pd_shifted, 1e-12);
}

}  // namespace
}  // namespace mtdgrid::estimation
