#include "estimation/state_estimator.hpp"

#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::estimation {
namespace {

linalg::Matrix ieee14_h() {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  return grid::measurement_matrix(sys);
}

TEST(StateEstimatorTest, RecoversStateFromNoiselessMeasurements) {
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(1);
  const linalg::Vector theta = test::random_vector(h.cols(), rng, 0.05);
  StateEstimator est(h, 1.0);
  const linalg::Vector estimate = est.estimate(h * theta);
  EXPECT_NEAR(linalg::max_abs_diff(estimate, theta), 0.0, 1e-9);
}

TEST(StateEstimatorTest, ResidualZeroForColumnSpaceVectors) {
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(2);
  StateEstimator est(h, 0.5);
  const linalg::Vector z = h * test::random_vector(h.cols(), rng);
  EXPECT_NEAR(est.normalized_residual_norm(z), 0.0, 1e-8);
}

TEST(StateEstimatorTest, StealthyAttackLeavesResidualUnchanged) {
  // z and z + Hc give identical residuals: the BDD-bypass condition.
  const linalg::Matrix h = ieee14_h();
  stats::Rng rng(3);
  StateEstimator est(h, 1.0);
  const linalg::Vector z = test::random_vector(h.rows(), rng);
  const linalg::Vector attack = h * test::random_vector(h.cols(), rng);
  EXPECT_NEAR(est.normalized_residual_norm(z),
              est.normalized_residual_norm(z + attack), 1e-8);
}

TEST(StateEstimatorTest, ResidualDofIsMMinusN) {
  const linalg::Matrix h = ieee14_h();
  StateEstimator est(h, 1.0);
  EXPECT_EQ(est.residual_dof(), 54u - 13u);
}

TEST(StateEstimatorTest, NormalizedResidualFollowsChiSquare) {
  // Mean of the squared normalized residual under pure noise ~ dof.
  const linalg::Matrix h = ieee14_h();
  const double sigma = 0.7;
  StateEstimator est(h, sigma);
  stats::Rng rng(4);
  const int trials = 3000;
  double mean_sq = 0.0;
  linalg::Vector z(h.rows());
  for (int t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < z.size(); ++i)
      z[i] = rng.gaussian(0.0, sigma);
    const double r = est.normalized_residual_norm(z);
    mean_sq += r * r;
  }
  mean_sq /= trials;
  const double dof = static_cast<double>(est.residual_dof());
  EXPECT_NEAR(mean_sq, dof, 0.05 * dof);
}

TEST(StateEstimatorTest, PerSensorSigmasWeightResiduals) {
  const linalg::Matrix h = ieee14_h();
  linalg::Vector sigmas(h.rows(), 1.0);
  sigmas[0] = 10.0;  // first sensor very noisy -> heavily discounted
  StateEstimator est(h, sigmas);
  linalg::Vector z(h.rows());
  z[0] = 5.0;  // gross error on the noisy sensor
  const double r_noisy = est.normalized_residual_norm(z);
  StateEstimator est_uniform(h, 1.0);
  const double r_uniform = est_uniform.normalized_residual_norm(z);
  EXPECT_LT(r_noisy, r_uniform);
}

TEST(StateEstimatorTest, AttackResidualNormBounds) {
  // 0 <= ||r'_a|| <= ||a|| / sigma (paper Appendix B, eq. (6)).
  const linalg::Matrix h = ieee14_h();
  const grid::PowerSystem sys = grid::make_case_ieee14();
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.4;
  const linalg::Matrix h_new = grid::measurement_matrix(sys, x);

  const double sigma = 0.5;
  StateEstimator est(h_new, sigma);
  stats::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const linalg::Vector a = h * test::random_vector(h.cols(), rng);
    const double ra = est.attack_residual_norm(a);
    EXPECT_GE(ra, 0.0);
    EXPECT_LE(ra, a.norm() / sigma + 1e-9);
  }
}

// --- sparse storage policy ----------------------------------------------

TEST(StateEstimatorSparseTest, ReportsStoragePolicy) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const StateEstimator dense(grid::measurement_matrix(sys), 1.0);
  const StateEstimator sparse(grid::sparse_measurement_matrix(sys), 1.0);
  EXPECT_EQ(dense.storage(), linalg::StoragePolicy::kDense);
  EXPECT_EQ(sparse.storage(), linalg::StoragePolicy::kSparse);
  EXPECT_EQ(sparse.num_measurements(), dense.num_measurements());
  EXPECT_EQ(sparse.state_dimension(), dense.state_dimension());
  EXPECT_EQ(sparse.residual_dof(), dense.residual_dof());
  EXPECT_EQ(linalg::max_abs_diff(sparse.sparse_h().to_dense(), dense.h()),
            0.0);
}

TEST(StateEstimatorSparseTest, AgreesWithDenseOnCase14) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  const double sigma = 0.6;
  const StateEstimator dense(h, sigma);
  const StateEstimator sparse(grid::sparse_measurement_matrix(sys), sigma);

  stats::Rng rng(20);
  for (int trial = 0; trial < 5; ++trial) {
    const linalg::Vector theta = test::random_vector(h.cols(), rng, 0.1);
    linalg::Vector z = h * theta;
    for (std::size_t i = 0; i < z.size(); ++i) z[i] += rng.gaussian(0, sigma);
    EXPECT_LT(linalg::max_abs_diff(sparse.estimate(z), dense.estimate(z)),
              1e-10);
    EXPECT_LT(linalg::max_abs_diff(sparse.residual(z), dense.residual(z)),
              1e-10);
    EXPECT_NEAR(sparse.normalized_residual_norm(z),
                dense.normalized_residual_norm(z), 1e-9);
  }
}

TEST(StateEstimatorSparseTest, ConjugateGradientOptionAgreesToo) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::SolverOptions options;
  options.method = linalg::SolverOptions::Method::kConjugateGradient;
  const StateEstimator dense(h, 1.0);
  const StateEstimator cg(grid::sparse_measurement_matrix(sys), 1.0,
                          options);
  stats::Rng rng(21);
  const linalg::Vector z = test::random_vector(h.rows(), rng);
  EXPECT_LT(linalg::max_abs_diff(cg.estimate(z), dense.estimate(z)), 1e-8);
}

TEST(StateEstimatorSparseTest, PerSensorSigmasSupported) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  stats::Rng rng(22);
  linalg::Vector sigmas(h.rows());
  for (std::size_t i = 0; i < sigmas.size(); ++i)
    sigmas[i] = rng.uniform(0.2, 2.0);
  const StateEstimator dense(h, sigmas);
  const StateEstimator sparse(grid::sparse_measurement_matrix(sys), sigmas);
  const linalg::Vector z = test::random_vector(h.rows(), rng);
  EXPECT_LT(linalg::max_abs_diff(sparse.estimate(z), dense.estimate(z)),
            1e-10);
}

TEST(StateEstimatorSparseTest, CopyAndMoveKeepTheFactorization) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  stats::Rng rng(23);
  const linalg::Vector z = test::random_vector(h.rows(), rng);

  StateEstimator original(grid::sparse_measurement_matrix(sys), 1.0);
  const linalg::Vector expected = original.estimate(z);

  // Copy: re-factorizes against the copy's own matrix.
  const StateEstimator copy(original);
  EXPECT_EQ(linalg::max_abs_diff(copy.estimate(z), expected), 0.0);

  // Copy-assign over a dense estimator.
  StateEstimator assigned(h, 1.0);
  assigned = original;
  EXPECT_EQ(assigned.storage(), linalg::StoragePolicy::kSparse);
  EXPECT_EQ(linalg::max_abs_diff(assigned.estimate(z), expected), 0.0);

  // Move: the factor survives (the solver views heap-held storage).
  const StateEstimator moved(std::move(original));
  EXPECT_EQ(linalg::max_abs_diff(moved.estimate(z), expected), 0.0);
}

TEST(StateEstimatorSparseTest, RejectsInvalidConstruction) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::SparseMatrix hs = grid::sparse_measurement_matrix(sys);
  EXPECT_THROW(StateEstimator(hs, 0.0), std::invalid_argument);
  EXPECT_THROW(StateEstimator(hs, linalg::Vector(3, 1.0)),
               std::invalid_argument);

  // Rank-deficient sparse H (duplicate columns) must be rejected at
  // construction, like the dense policy's Cholesky failure.
  linalg::TripletBuilder builder(5, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    builder.add(i, 0, static_cast<double>(i + 1));
    builder.add(i, 1, 2.0 * static_cast<double>(i + 1));
  }
  EXPECT_THROW(StateEstimator(builder.build(), 1.0), std::runtime_error);
}

TEST(StateEstimatorTest, RejectsInvalidConstruction) {
  const linalg::Matrix h = ieee14_h();
  EXPECT_THROW(StateEstimator(h, 0.0), std::invalid_argument);
  EXPECT_THROW(StateEstimator(h, -1.0), std::invalid_argument);
  EXPECT_THROW(StateEstimator(h, linalg::Vector(3, 1.0)),
               std::invalid_argument);
  // Underdetermined: fewer measurements than states.
  EXPECT_THROW(StateEstimator(linalg::Matrix(3, 5), 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::estimation
