#include "grid/cases.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "opf/dc_opf.hpp"

namespace mtdgrid::grid {
namespace {

// Coverage for the canonical case14 / case57 scenario entry points:
// structure, measurement-model dimensions, per-bus DC power-flow balance,
// and a feasible base-case OPF dispatch on each.

TEST(Case14Test, MatchesIeee14Factory) {
  const PowerSystem sys = make_case14();
  const PowerSystem ieee = make_case_ieee14();
  EXPECT_EQ(sys.num_buses(), ieee.num_buses());
  EXPECT_EQ(sys.num_branches(), ieee.num_branches());
  EXPECT_EQ(sys.num_generators(), ieee.num_generators());
  EXPECT_EQ(sys.dfacts_branches(), ieee.dfacts_branches());
  for (std::size_t l = 0; l < sys.num_branches(); ++l)
    EXPECT_DOUBLE_EQ(sys.branch(l).reactance, ieee.branch(l).reactance);
}

TEST(Case14Test, Structure) {
  const PowerSystem sys = make_case14();
  EXPECT_EQ(sys.num_buses(), 14u);
  EXPECT_EQ(sys.num_branches(), 20u);
  EXPECT_EQ(sys.num_generators(), 5u);
  EXPECT_EQ(sys.dfacts_branches().size(), 6u);
  EXPECT_NEAR(sys.total_load_mw(), 259.0, 0.01);
}

TEST(Case14Test, MeasurementMatrixDimensions) {
  // M = 2L + N = 2*20 + 14 = 54 measurements against n = N - 1 = 13 states.
  const PowerSystem sys = make_case14();
  EXPECT_EQ(measurement_count(sys), 54u);
  const linalg::Matrix h = measurement_matrix(sys);
  EXPECT_EQ(h.rows(), 54u);
  EXPECT_EQ(h.cols(), 13u);
}

TEST(Case57Test, StructureMatchesMatpowerCase57) {
  const PowerSystem sys = make_case57();
  EXPECT_EQ(sys.num_buses(), 57u);
  EXPECT_EQ(sys.num_branches(), 80u);
  EXPECT_EQ(sys.num_generators(), 7u);
  EXPECT_NEAR(sys.total_load_mw(), 1250.8, 0.01);
  EXPECT_EQ(sys.dfacts_branches().size(), 10u);

  // MATPOWER case57 generator buses {1,2,3,6,8,9,12} (1-based).
  const std::size_t gen_buses[] = {0, 1, 2, 5, 7, 8, 11};
  for (std::size_t g = 0; g < 7; ++g)
    EXPECT_EQ(sys.generator(g).bus, gen_buses[g]);
}

TEST(Case57Test, KeepsMatpowerParallelCircuits) {
  // case57 has double circuits on 4-18 and 24-25; the DC model sums their
  // susceptances, so both must survive into the branch list.
  const PowerSystem sys = make_case57();
  int count_4_18 = 0;
  int count_24_25 = 0;
  for (const Branch& br : sys.branches()) {
    if (br.from == 3 && br.to == 17) ++count_4_18;
    if (br.from == 23 && br.to == 24) ++count_24_25;
  }
  EXPECT_EQ(count_4_18, 2);
  EXPECT_EQ(count_24_25, 2);
}

TEST(Case57Test, MeasurementMatrixDimensions) {
  // M = 2L + N = 2*80 + 57 = 217 measurements against n = N - 1 = 56 states.
  const PowerSystem sys = make_case57();
  EXPECT_EQ(measurement_count(sys), 217u);
  const linalg::Matrix h = measurement_matrix(sys);
  EXPECT_EQ(h.rows(), 217u);
  EXPECT_EQ(h.cols(), 56u);
}

TEST(Case57Test, DcPowerFlowBalancesAtEveryBus) {
  const PowerSystem sys = make_case57();
  const opf::DispatchResult r = opf::solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);

  // Net flow out of each bus must equal its injection (generation - load).
  const linalg::Vector inj = nodal_injections(sys, r.generation_mw);
  std::vector<double> net(sys.num_buses(), 0.0);
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    net[sys.branch(l).from] += r.flows_mw[l];
    net[sys.branch(l).to] -= r.flows_mw[l];
  }
  for (std::size_t i = 0; i < sys.num_buses(); ++i)
    EXPECT_NEAR(net[i], inj[i], 1e-6) << "bus " << i + 1;
}

TEST(Case57Test, SolveDcPowerFlowAgreesWithOpfFlows) {
  const PowerSystem sys = make_case57();
  const opf::DispatchResult r = opf::solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  const DcPowerFlowResult pf = solve_dc_power_flow(
      sys, sys.reactances(), nodal_injections(sys, r.generation_mw));
  for (std::size_t l = 0; l < sys.num_branches(); ++l)
    EXPECT_NEAR(pf.flows_mw[l], r.flows_mw[l], 1e-6);
}

TEST(Case57Test, BaseOpfDispatchIsFeasibleAndEconomic) {
  const PowerSystem sys = make_case57();
  const opf::DispatchResult r = opf::solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.generation_mw.sum(), sys.total_load_mw(), 1e-6);
  // Unconstrained merit order: buses 1 and 8 at capacity, bus 12 marginal.
  EXPECT_NEAR(r.generation_mw[0], 575.88, 0.01);
  EXPECT_NEAR(r.generation_mw[4], 550.0, 0.01);
  EXPECT_NEAR(r.cost, 27115.4, 1.0);
  // Every flow within its thermal limit.
  for (std::size_t l = 0; l < sys.num_branches(); ++l)
    EXPECT_LE(std::abs(r.flows_mw[l]), sys.branch(l).flow_limit_mw + 1e-9)
        << "branch " << l;
}

TEST(Case57Test, OpfStaysFeasibleUnderDfactsPerturbations) {
  // The MTD pipeline re-runs the OPF after each reactance perturbation;
  // the full +/-50% D-FACTS envelope must keep the case solvable.
  const PowerSystem sys = make_case57();
  for (double factor : {0.5, 0.75, 1.25, 1.5}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
    const opf::DispatchResult r = opf::solve_dc_opf(sys, x);
    EXPECT_TRUE(r.feasible) << "factor " << factor;
  }
}

TEST(Case57Test, GenerationHeadroomForLoadScaling) {
  const PowerSystem sys = make_case57();
  double capacity = 0.0;
  for (std::size_t g = 0; g < sys.num_generators(); ++g)
    capacity += sys.generator(g).max_mw;
  EXPECT_GT(capacity, 1.2 * sys.total_load_mw());
}

}  // namespace
}  // namespace mtdgrid::grid
