#include "grid/cases.hpp"

#include <gtest/gtest.h>

#include "opf/dc_opf.hpp"

namespace mtdgrid::grid {
namespace {

TEST(CasesTest, Case4MatchesPaperFigure3) {
  const PowerSystem sys = make_case4();
  EXPECT_EQ(sys.num_buses(), 4u);
  EXPECT_EQ(sys.num_branches(), 4u);
  EXPECT_EQ(sys.num_generators(), 2u);
  EXPECT_DOUBLE_EQ(sys.total_load_mw(), 500.0);
  // Every line carries a D-FACTS device for the Table I experiments.
  EXPECT_EQ(sys.dfacts_branches().size(), 4u);
}

TEST(CasesTest, Case4PrePerturbationOpfReproducesTable2) {
  // Paper Table II: dispatch (350, 150) MW, cost $1.15e4, flows
  // (126.56, 173.44, -43.44, -26.56) MW.
  const PowerSystem sys = make_case4();
  const opf::DispatchResult r = opf::solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 1.15e4, 1.0);
  EXPECT_NEAR(r.generation_mw[0], 350.0, 0.01);
  EXPECT_NEAR(r.generation_mw[1], 150.0, 0.01);
  EXPECT_NEAR(r.flows_mw[0], 126.56, 0.01);
  EXPECT_NEAR(r.flows_mw[1], 173.44, 0.01);
  EXPECT_NEAR(r.flows_mw[2], -43.44, 0.01);
  EXPECT_NEAR(r.flows_mw[3], -26.56, 0.01);
}

TEST(CasesTest, Ieee14MatchesTable4Generators) {
  const PowerSystem sys = make_case_ieee14();
  EXPECT_EQ(sys.num_buses(), 14u);
  EXPECT_EQ(sys.num_branches(), 20u);
  ASSERT_EQ(sys.num_generators(), 5u);

  // Table IV: buses {1,2,3,6,8}, Pmax {300,50,30,50,20}, c {20,30,40,50,35}.
  const std::size_t buses[] = {0, 1, 2, 5, 7};
  const double pmax[] = {300, 50, 30, 50, 20};
  const double cost[] = {20, 30, 40, 50, 35};
  for (std::size_t g = 0; g < 5; ++g) {
    EXPECT_EQ(sys.generator(g).bus, buses[g]);
    EXPECT_DOUBLE_EQ(sys.generator(g).max_mw, pmax[g]);
    EXPECT_DOUBLE_EQ(sys.generator(g).cost_per_mwh, cost[g]);
  }
}

TEST(CasesTest, Ieee14DfactsAndFlowLimitsPerPaper) {
  const PowerSystem sys = make_case_ieee14();
  // D-FACTS on branches {1,5,9,11,17,19} (1-based) with eta_max = 0.5.
  const std::vector<std::size_t> expected = {0, 4, 8, 10, 16, 18};
  EXPECT_EQ(sys.dfacts_branches(), expected);
  for (std::size_t l : expected) {
    EXPECT_DOUBLE_EQ(sys.branch(l).dfacts_min_factor, 0.5);
    EXPECT_DOUBLE_EQ(sys.branch(l).dfacts_max_factor, 1.5);
  }
  EXPECT_DOUBLE_EQ(sys.branch(0).flow_limit_mw, 160.0);
  for (std::size_t l = 1; l < sys.num_branches(); ++l)
    EXPECT_DOUBLE_EQ(sys.branch(l).flow_limit_mw, 60.0);
}

TEST(CasesTest, Ieee14LoadsMatchMatpowerCase14) {
  const PowerSystem sys = make_case_ieee14();
  EXPECT_NEAR(sys.total_load_mw(), 259.0, 0.01);
  EXPECT_DOUBLE_EQ(sys.bus(0).load_mw, 0.0);
  EXPECT_DOUBLE_EQ(sys.bus(2).load_mw, 94.2);
  EXPECT_DOUBLE_EQ(sys.bus(13).load_mw, 14.9);
}

TEST(CasesTest, Ieee30Structure) {
  const PowerSystem sys = make_case_ieee30();
  EXPECT_EQ(sys.num_buses(), 30u);
  EXPECT_EQ(sys.num_branches(), 41u);
  EXPECT_EQ(sys.num_generators(), 6u);
  EXPECT_NEAR(sys.total_load_mw(), 283.4, 0.01);
  EXPECT_EQ(sys.dfacts_branches().size(), 10u);
}

TEST(CasesTest, Wscc9Structure) {
  const PowerSystem sys = make_case_wscc9();
  EXPECT_EQ(sys.num_buses(), 9u);
  EXPECT_EQ(sys.num_branches(), 9u);
  EXPECT_EQ(sys.num_generators(), 3u);
  EXPECT_DOUBLE_EQ(sys.total_load_mw(), 315.0);
  EXPECT_EQ(sys.dfacts_branches().size(), 3u);
}

TEST(CasesTest, AllCasesSolveBaseOpf) {
  for (const PowerSystem& sys :
       {make_case4(), make_case_ieee14(), make_case_ieee30(),
        make_case_wscc9(), make_case57()}) {
    const opf::DispatchResult r = opf::solve_dc_opf(sys);
    EXPECT_TRUE(r.feasible) << sys.name();
    EXPECT_NEAR(r.generation_mw.sum(), sys.total_load_mw(), 1e-6)
        << sys.name();
  }
}

TEST(CasesTest, AllCasesHaveGenerationHeadroom) {
  // Capacity margin so the dynamic-load experiments can scale loads up.
  for (const PowerSystem& sys :
       {make_case4(), make_case_ieee14(), make_case_ieee30(),
        make_case_wscc9(), make_case57()}) {
    double capacity = 0.0;
    for (std::size_t g = 0; g < sys.num_generators(); ++g)
      capacity += sys.generator(g).max_mw;
    EXPECT_GT(capacity, sys.total_load_mw()) << sys.name();
  }
}

}  // namespace
}  // namespace mtdgrid::grid
