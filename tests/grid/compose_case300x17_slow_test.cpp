// case300x17 mega-grid scale test (slow tier): the 5100-bus composed
// scenario must load through the registry, obey the renumbering
// contract, round-trip through the MATPOWER writer bit-exactly, and
// admit the sparse power flow. Dense whole-grid algebra (LU power flow,
// the dense-LP OPF, full SPA) is intentionally absent here — at this
// scale only the sparse backbone and the zone-decomposed paths are
// tractable, which is exactly the point of the composition layer; the
// full acceptance run is `case_audit --zones 17 case300x17` (CI perf
// job audits a composed artifact the same way).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "grid/compose.hpp"
#include "grid/power_flow.hpp"
#include "io/case_registry.hpp"
#include "io/matpower.hpp"

namespace mtdgrid {
namespace {

TEST(ComposeCase300x17SlowTest, LoadsWithComposedStructure) {
  const grid::PowerSystem sys = io::load_case("case300x17");
  EXPECT_EQ(sys.name(), "case300x17");
  EXPECT_EQ(sys.num_buses(), 17u * 300u);
  EXPECT_EQ(sys.num_generators(), 17u * 69u);
  // 17 copies of 411 branches + 2 ties per interface on the closed ring
  // of 17 interfaces.
  EXPECT_EQ(sys.num_branches(), 17u * 411u + 34u);

  const grid::ZonePartition p = grid::partition_into_copies(sys, 17);
  EXPECT_EQ(p.num_zones, 17u);
  EXPECT_EQ(p.tie_branches.size(), 34u);
  for (std::size_t z = 0; z < p.num_zones; ++z) {
    EXPECT_EQ(p.zone_buses[z].size(), 300u);
    EXPECT_EQ(p.zone_branches[z].size(), 411u);
    EXPECT_EQ(p.zone_generators[z].size(), 69u);
  }
}

TEST(ComposeCase300x17SlowTest, MatpowerRoundTripIsBitExact) {
  const grid::PowerSystem sys = io::load_case("case300x17");
  io::ParseError error;
  const std::optional<io::MatpowerCase> mpc =
      io::parse_matpower(io::write_matpower(sys), &error);
  ASSERT_TRUE(mpc.has_value()) << error.to_string();
  const std::optional<grid::PowerSystem> parsed =
      io::to_power_system(*mpc, &error);
  ASSERT_TRUE(parsed.has_value()) << error.to_string();

  EXPECT_EQ(parsed->name(), sys.name());
  ASSERT_EQ(parsed->num_buses(), sys.num_buses());
  ASSERT_EQ(parsed->num_branches(), sys.num_branches());
  ASSERT_EQ(parsed->num_generators(), sys.num_generators());
  for (std::size_t i = 0; i < sys.num_buses(); ++i)
    ASSERT_EQ(parsed->bus(i).load_mw, sys.bus(i).load_mw) << "bus " << i;
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    const grid::Branch& a = parsed->branch(l);
    const grid::Branch& b = sys.branch(l);
    ASSERT_EQ(a.from, b.from) << "branch " << l;
    ASSERT_EQ(a.to, b.to) << "branch " << l;
    ASSERT_EQ(a.reactance, b.reactance) << "branch " << l;
    ASSERT_EQ(a.flow_limit_mw, b.flow_limit_mw) << "branch " << l;
    ASSERT_EQ(a.has_dfacts, b.has_dfacts) << "branch " << l;
    ASSERT_EQ(a.dfacts_min_factor, b.dfacts_min_factor) << "branch " << l;
    ASSERT_EQ(a.dfacts_max_factor, b.dfacts_max_factor) << "branch " << l;
  }
  for (std::size_t g = 0; g < sys.num_generators(); ++g) {
    ASSERT_EQ(parsed->generator(g).bus, sys.generator(g).bus) << "gen " << g;
    ASSERT_EQ(parsed->generator(g).max_mw, sys.generator(g).max_mw)
        << "gen " << g;
    ASSERT_EQ(parsed->generator(g).cost_per_mwh,
              sys.generator(g).cost_per_mwh)
        << "gen " << g;
  }
}

TEST(ComposeCase300x17SlowTest, SparsePowerFlowBalances) {
  const grid::PowerSystem sys = io::load_case("case300x17");
  // A synthetic balanced injection: every bus pays its load, the slack
  // absorbs the total. This exercises the CSR assembly + minimum-degree
  // Cholesky at 5099 unknowns without any dense O(N^2) storage.
  linalg::Vector inj(sys.num_buses());
  double total = 0.0;
  for (std::size_t i = 1; i < sys.num_buses(); ++i) {
    inj[i] = -sys.bus(i).load_mw;
    total += sys.bus(i).load_mw;
  }
  inj[0] = total - sys.bus(0).load_mw;
  inj[0] += sys.bus(0).load_mw;  // slack supplies everything

  const grid::DcPowerFlowResult pf =
      grid::solve_dc_power_flow_sparse(sys, sys.reactances(), inj);
  ASSERT_EQ(pf.flows_mw.size(), sys.num_branches());
  std::vector<double> net(sys.num_buses(), 0.0);
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    net[sys.branch(l).from] += pf.flows_mw[l];
    net[sys.branch(l).to] -= pf.flows_mw[l];
  }
  for (std::size_t i = 0; i < sys.num_buses(); ++i)
    ASSERT_NEAR(net[i], inj[i], 1e-5) << "bus " << i;
}

}  // namespace
}  // namespace mtdgrid
