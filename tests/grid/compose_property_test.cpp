// Property harness for the mega-grid composition layer (ISSUE 9): the
// renumbering contract, determinism, MATPOWER round-trip bit-exactness,
// the identity composition, per-bus DC balance of composed dispatches,
// and the partition/extract inverse. Comparisons use exact == on doubles
// on purpose — compose is specified as a pure function of
// (base, copies, seed), and "close enough" would hide draw-order bugs.

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "grid/compose.hpp"
#include "grid/power_flow.hpp"
#include "io/case_registry.hpp"
#include "io/matpower.hpp"
#include "opf/dc_opf.hpp"

namespace mtdgrid {
namespace {

// Field-for-field bit equality of two systems (name compared only when
// `check_name`).
void expect_systems_equal(const grid::PowerSystem& a,
                          const grid::PowerSystem& b, bool check_name) {
  if (check_name) EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.base_mva(), b.base_mva());
  ASSERT_EQ(a.num_buses(), b.num_buses());
  ASSERT_EQ(a.num_branches(), b.num_branches());
  ASSERT_EQ(a.num_generators(), b.num_generators());
  for (std::size_t i = 0; i < a.num_buses(); ++i)
    EXPECT_EQ(a.bus(i).load_mw, b.bus(i).load_mw) << "bus " << i;
  for (std::size_t l = 0; l < a.num_branches(); ++l) {
    const grid::Branch& ba = a.branch(l);
    const grid::Branch& bb = b.branch(l);
    EXPECT_EQ(ba.from, bb.from) << "branch " << l;
    EXPECT_EQ(ba.to, bb.to) << "branch " << l;
    EXPECT_EQ(ba.reactance, bb.reactance) << "branch " << l;
    EXPECT_EQ(ba.flow_limit_mw, bb.flow_limit_mw) << "branch " << l;
    EXPECT_EQ(ba.has_dfacts, bb.has_dfacts) << "branch " << l;
    EXPECT_EQ(ba.dfacts_min_factor, bb.dfacts_min_factor) << "branch " << l;
    EXPECT_EQ(ba.dfacts_max_factor, bb.dfacts_max_factor) << "branch " << l;
  }
  for (std::size_t g = 0; g < a.num_generators(); ++g) {
    const grid::Generator& ga = a.generator(g);
    const grid::Generator& gb = b.generator(g);
    EXPECT_EQ(ga.bus, gb.bus) << "gen " << g;
    EXPECT_EQ(ga.min_mw, gb.min_mw) << "gen " << g;
    EXPECT_EQ(ga.max_mw, gb.max_mw) << "gen " << g;
    EXPECT_EQ(ga.cost_per_mwh, gb.cost_per_mwh) << "gen " << g;
  }
}

grid::PowerSystem base_case14() { return io::load_case("case14"); }

TEST(ComposePropertyTest, RenumberingContract) {
  const grid::PowerSystem base = base_case14();
  grid::ComposeOptions opt;
  opt.copies = 3;
  const grid::ComposeResult r = grid::compose_cases(base, opt);

  const std::size_t nb = base.num_buses();
  const std::size_t nl = base.num_branches();
  const std::size_t ng = base.num_generators();
  EXPECT_EQ(r.buses_per_copy, nb);
  EXPECT_EQ(r.branches_per_copy, nl);
  EXPECT_EQ(r.gens_per_copy, ng);
  EXPECT_EQ(r.system.num_buses(), 3 * nb);
  EXPECT_EQ(r.system.num_generators(), 3 * ng);
  // Ring of 3 copies, 2 ties per interface, 3 interfaces.
  EXPECT_EQ(r.tie_branches.size(), 6u);
  EXPECT_EQ(r.system.num_branches(), 3 * nl + 6);
  EXPECT_EQ(r.system.name(), "ieee14x3");

  // Copied branches: branch l of copy k is global k*nl + l with endpoints
  // shifted by k*nb; every non-topology field is inherited bit-for-bit.
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t l = 0; l < nl; ++l) {
      const grid::Branch& src = base.branch(l);
      const grid::Branch& dst = r.system.branch(k * nl + l);
      EXPECT_EQ(dst.from, src.from + k * nb);
      EXPECT_EQ(dst.to, src.to + k * nb);
      EXPECT_EQ(dst.reactance, src.reactance);
      EXPECT_EQ(dst.flow_limit_mw, src.flow_limit_mw);
      EXPECT_EQ(dst.has_dfacts, src.has_dfacts);
    }
    for (std::size_t g = 0; g < ng; ++g)
      EXPECT_EQ(r.system.generator(k * ng + g).bus,
                base.generator(g).bus + k * nb);
  }
  // Ties are the trailing branches, joining consecutive copies at the
  // declared boundary buses (offset pairing).
  ASSERT_EQ(r.boundary_buses.size(), 2u);
  for (std::size_t t = 0; t < r.tie_branches.size(); ++t) {
    EXPECT_EQ(r.tie_branches[t], 3 * nl + t);
    const grid::Branch& tie = r.system.branch(r.tie_branches[t]);
    EXPECT_FALSE(tie.has_dfacts);
    EXPECT_EQ(tie.reactance, opt.tie_reactance);
  }
  const grid::Branch& tie0 = r.system.branch(r.tie_branches[0]);
  EXPECT_EQ(tie0.from, 0 * nb + r.boundary_buses[0]);
  EXPECT_EQ(tie0.to, 1 * nb + r.boundary_buses[1]);
  const grid::Branch& tie1 = r.system.branch(r.tie_branches[1]);
  EXPECT_EQ(tie1.from, 0 * nb + r.boundary_buses[1]);
  EXPECT_EQ(tie1.to, 1 * nb + r.boundary_buses[0]);
}

TEST(ComposePropertyTest, CompositionIsDeterministic) {
  const grid::PowerSystem base = base_case14();
  grid::ComposeOptions opt;
  opt.copies = 4;
  opt.seed = 991;
  const grid::ComposeResult a = grid::compose_cases(base, opt);
  const grid::ComposeResult b = grid::compose_cases(base, opt);
  expect_systems_equal(a.system, b.system, true);
  EXPECT_EQ(a.tie_branches, b.tie_branches);
  EXPECT_EQ(a.boundary_buses, b.boundary_buses);
}

TEST(ComposePropertyTest, SingleCopyZeroJitterIsIdentity) {
  const grid::PowerSystem base = base_case14();
  grid::ComposeOptions opt;
  opt.copies = 1;
  opt.load_jitter = 0.0;
  opt.gen_jitter = 0.0;
  opt.cost_jitter = 0.0;
  opt.name = base.name();
  const grid::ComposeResult r = grid::compose_cases(base, opt);
  EXPECT_TRUE(r.tie_branches.empty());  // one copy has no interfaces
  expect_systems_equal(r.system, base, true);
}

TEST(ComposePropertyTest, JitterDrawsArePerCopySubstreams) {
  // Copy k's fields depend only on (seed, k): composing 2 and 4 copies
  // must agree on the shared prefix, and jitter amplitude 0 must hit the
  // base exactly (the jitter factor is exactly 1.0, not 1.0 + 0*u).
  const grid::PowerSystem base = base_case14();
  grid::ComposeOptions opt2;
  opt2.copies = 2;
  grid::ComposeOptions opt4;
  opt4.copies = 4;
  const grid::ComposeResult r2 = grid::compose_cases(base, opt2);
  const grid::ComposeResult r4 = grid::compose_cases(base, opt4);
  for (std::size_t i = 0; i < 2 * base.num_buses(); ++i)
    EXPECT_EQ(r2.system.bus(i).load_mw, r4.system.bus(i).load_mw);
  for (std::size_t g = 0; g < 2 * base.num_generators(); ++g)
    EXPECT_EQ(r2.system.generator(g).cost_per_mwh,
              r4.system.generator(g).cost_per_mwh);

  grid::ComposeOptions zero = opt2;
  zero.load_jitter = 0.0;
  const grid::ComposeResult rz = grid::compose_cases(base, zero);
  for (std::size_t k = 0; k < 2; ++k)
    for (std::size_t i = 0; i < base.num_buses(); ++i)
      EXPECT_EQ(rz.system.bus(k * base.num_buses() + i).load_mw,
                base.bus(i).load_mw);
}

TEST(ComposePropertyTest, ComposedDispatchBalancesPerBus) {
  const grid::PowerSystem base = base_case14();
  grid::ComposeOptions opt;
  opt.copies = 3;
  const grid::ComposeResult r = grid::compose_cases(base, opt);

  const opf::DispatchResult d = opf::solve_dc_opf(r.system);
  ASSERT_TRUE(d.feasible);
  const linalg::Vector inj =
      grid::nodal_injections(r.system, d.generation_mw);
  std::vector<double> net(r.system.num_buses(), 0.0);
  for (std::size_t l = 0; l < r.system.num_branches(); ++l) {
    net[r.system.branch(l).from] += d.flows_mw[l];
    net[r.system.branch(l).to] -= d.flows_mw[l];
  }
  for (std::size_t i = 0; i < r.system.num_buses(); ++i)
    EXPECT_NEAR(net[i], inj[i], 1e-6) << "bus " << i;

  // The sparse power flow reproduces the same operating point on the
  // composed network (solver-tolerance agreement with the dense path).
  const grid::DcPowerFlowResult pf = grid::solve_dc_power_flow_sparse(
      r.system, r.system.reactances(), inj);
  for (std::size_t l = 0; l < r.system.num_branches(); ++l)
    EXPECT_NEAR(pf.flows_mw[l], d.flows_mw[l], 1e-6) << "branch " << l;
}

TEST(ComposePropertyTest, MatpowerRoundTripIsBitExact) {
  const grid::PowerSystem base = base_case14();
  grid::ComposeOptions opt;
  opt.copies = 3;
  opt.name = "case14x3";
  const grid::ComposeResult r = grid::compose_cases(base, opt);

  io::ParseError error;
  const std::optional<io::MatpowerCase> mpc =
      io::parse_matpower(io::write_matpower(r.system), &error);
  ASSERT_TRUE(mpc.has_value()) << error.to_string();
  const std::optional<grid::PowerSystem> parsed =
      io::to_power_system(*mpc, &error);
  ASSERT_TRUE(parsed.has_value()) << error.to_string();
  expect_systems_equal(*parsed, r.system, true);
}

TEST(ComposePropertyTest, PartitionInvertsComposition) {
  const grid::PowerSystem base = base_case14();
  grid::ComposeOptions opt;
  opt.copies = 3;
  const grid::ComposeResult r = grid::compose_cases(base, opt);

  const grid::ZonePartition p = r.zones();
  ASSERT_EQ(p.num_zones, 3u);
  EXPECT_EQ(p.tie_branches, r.tie_branches);
  for (std::size_t b = 0; b < r.system.num_buses(); ++b)
    EXPECT_EQ(p.bus_zone[b], b / base.num_buses());

  for (std::size_t z = 0; z < 3; ++z) {
    const grid::ZoneSystem zone = grid::extract_zone(r.system, p, z);
    ASSERT_EQ(zone.system.num_buses(), base.num_buses());
    ASSERT_EQ(zone.system.num_branches(), base.num_branches());
    ASSERT_EQ(zone.system.num_generators(), base.num_generators());
    // The extracted zone IS the jittered copy: same topology as the
    // base, loads/capacities from copy z's substream, bit-for-bit.
    for (std::size_t l = 0; l < base.num_branches(); ++l) {
      EXPECT_EQ(zone.system.branch(l).from, base.branch(l).from);
      EXPECT_EQ(zone.system.branch(l).to, base.branch(l).to);
      EXPECT_EQ(zone.system.branch(l).reactance, base.branch(l).reactance);
      EXPECT_EQ(zone.branch_map[l], z * base.num_branches() + l);
    }
    for (std::size_t i = 0; i < base.num_buses(); ++i) {
      EXPECT_EQ(zone.system.bus(i).load_mw,
                r.system.bus(z * base.num_buses() + i).load_mw);
      EXPECT_EQ(zone.bus_map[i], z * base.num_buses() + i);
    }
  }
}

TEST(ComposePropertyTest, RegistryComposedGrammar) {
  const io::CaseRegistry& reg = io::CaseRegistry::global();
  EXPECT_TRUE(reg.knows("case14x2"));
  EXPECT_TRUE(reg.knows("ieee14x2"));  // aliases compose too
  EXPECT_TRUE(reg.knows("case118x9"));
  EXPECT_FALSE(reg.knows("case14x1"));    // identity tiling is not a name
  EXPECT_FALSE(reg.knows("case14x2x2"));  // composed bases do not nest
  EXPECT_FALSE(reg.knows("nosuchx3"));
  EXPECT_THROW(reg.load("nosuchx3"), io::CaseIoError);

  // The registry name means exactly the default composition at the
  // default seed, under the canonical name.
  const grid::PowerSystem via_registry = io::load_case("case14x2");
  grid::ComposeOptions opt;
  opt.copies = 2;
  opt.name = "case14x2";
  const grid::ComposeResult direct =
      grid::compose_cases(io::load_case("case14"), opt);
  expect_systems_equal(via_registry, direct.system, true);
}

TEST(ComposePropertyTest, OptionValidation) {
  const grid::PowerSystem base = base_case14();
  grid::ComposeOptions opt;
  opt.copies = 0;
  EXPECT_THROW(grid::compose_cases(base, opt), std::invalid_argument);
  opt = {};
  opt.load_jitter = 1.0;
  EXPECT_THROW(grid::compose_cases(base, opt), std::invalid_argument);
  opt = {};
  opt.ties_per_interface = 0;
  EXPECT_THROW(grid::compose_cases(base, opt), std::invalid_argument);
  opt = {};
  opt.tie_reactance = 0.0;
  EXPECT_THROW(grid::compose_cases(base, opt), std::invalid_argument);
  opt = {};
  opt.tie_limit_mw = -1.0;
  EXPECT_THROW(grid::compose_cases(base, opt), std::invalid_argument);
  opt = {};
  opt.boundary_buses = {base.num_buses()};
  EXPECT_THROW(grid::compose_cases(base, opt), std::invalid_argument);
  opt = {};
  opt.tie_dfacts_min = 1.5;  // min > max
  EXPECT_THROW(grid::compose_cases(base, opt), std::invalid_argument);

  const grid::ComposeResult two = grid::compose_cases(base, {});
  EXPECT_THROW(grid::partition_into_copies(two.system, 3),
               std::invalid_argument);
  const grid::ZonePartition p = grid::partition_into_copies(two.system, 2);
  EXPECT_THROW(grid::extract_zone(two.system, p, 2), std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid
