#include "grid/load_trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grid/cases.hpp"

namespace mtdgrid::grid {
namespace {

TEST(LoadTraceTest, RequiresExactly24Entries) {
  EXPECT_THROW(DailyLoadTrace(std::vector<double>(23, 100.0)),
               std::invalid_argument);
  EXPECT_THROW(DailyLoadTrace(std::vector<double>(25, 100.0)),
               std::invalid_argument);
  EXPECT_NO_THROW(DailyLoadTrace(std::vector<double>(24, 100.0)));
}

TEST(LoadTraceTest, RejectsNonPositiveEntries) {
  std::vector<double> totals(24, 100.0);
  totals[5] = 0.0;
  EXPECT_THROW(DailyLoadTrace{totals}, std::invalid_argument);
}

TEST(LoadTraceTest, NyisoProfileShape) {
  const DailyLoadTrace trace = DailyLoadTrace::nyiso_winter_weekday();
  ASSERT_EQ(trace.size(), 24u);
  // Overnight trough at 4 AM, evening peak at 6 PM (hour 17).
  double min_v = 1e9, max_v = 0;
  std::size_t argmin = 0, argmax = 0;
  for (std::size_t h = 0; h < 24; ++h) {
    if (trace.total_mw(h) < min_v) { min_v = trace.total_mw(h); argmin = h; }
    if (trace.total_mw(h) > max_v) { max_v = trace.total_mw(h); argmax = h; }
  }
  EXPECT_EQ(argmin, 4u);
  EXPECT_EQ(argmax, 17u);
  // Range scaled to the IEEE 14-bus system (paper Fig. 10: ~140-220 MW).
  EXPECT_GT(min_v, 135.0);
  EXPECT_LT(max_v, 225.0);
}

TEST(LoadTraceTest, ApplyPreservesLoadDistribution) {
  PowerSystem sys = make_case_ieee14();
  const linalg::Vector base = sys.loads_mw();
  const DailyLoadTrace trace = DailyLoadTrace::nyiso_winter_weekday();
  trace.apply(sys, 17, base);
  EXPECT_NEAR(sys.total_load_mw(), trace.total_mw(17), 1e-9);
  // Relative distribution preserved: bus3 load / total unchanged.
  EXPECT_NEAR(sys.bus(2).load_mw / sys.total_load_mw(), 94.2 / 259.0, 1e-9);
}

TEST(LoadTraceTest, ApplyRejectsWrongBaseLength) {
  PowerSystem sys = make_case_ieee14();
  const DailyLoadTrace trace = DailyLoadTrace::nyiso_winter_weekday();
  EXPECT_THROW(trace.apply(sys, 0, linalg::Vector(5, 1.0)),
               std::invalid_argument);
}

TEST(LoadTraceTest, SyntheticTraceRespectsRangeAndPeak) {
  stats::Rng rng(1);
  const DailyLoadTrace trace =
      DailyLoadTrace::synthetic(100.0, 200.0, 18, 0.0, rng);
  ASSERT_EQ(trace.size(), 24u);
  EXPECT_NEAR(trace.total_mw(4), 100.0, 1e-9);   // trough anchor
  EXPECT_NEAR(trace.total_mw(18), 200.0, 1e-9);  // peak anchor
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_GE(trace.total_mw(h), 99.0);
    EXPECT_LE(trace.total_mw(h), 201.0);
  }
}

TEST(LoadTraceTest, SyntheticTraceJitterIsReproducible) {
  stats::Rng rng_a(42), rng_b(42);
  const DailyLoadTrace a = DailyLoadTrace::synthetic(100, 200, 18, 0.05, rng_a);
  const DailyLoadTrace b = DailyLoadTrace::synthetic(100, 200, 18, 0.05, rng_b);
  for (std::size_t h = 0; h < 24; ++h)
    EXPECT_DOUBLE_EQ(a.total_mw(h), b.total_mw(h));
}

TEST(LoadTraceTest, SyntheticTraceValidatesArguments) {
  stats::Rng rng(1);
  EXPECT_THROW(DailyLoadTrace::synthetic(-5, 100, 18, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(DailyLoadTrace::synthetic(200, 100, 18, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(DailyLoadTrace::synthetic(100, 200, 24, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::grid
