#include "grid/measurement.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "grid/cases.hpp"
#include "grid/power_flow.hpp"
#include "linalg/qr.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::grid {
namespace {

TEST(MeasurementTest, DimensionsMatchPaperModel) {
  const PowerSystem sys = make_case_ieee14();
  const linalg::Matrix h = measurement_matrix(sys);
  // M = 2L + N = 2*20 + 14 = 54 measurements; state dim N-1 = 13.
  EXPECT_EQ(measurement_count(sys), 54u);
  EXPECT_EQ(h.rows(), 54u);
  EXPECT_EQ(h.cols(), 13u);
}

TEST(MeasurementTest, HasFullColumnRank) {
  for (const PowerSystem& sys :
       {make_case4(), make_case_ieee14(), make_case_ieee30(),
        make_case_wscc9()}) {
    const linalg::Matrix h = measurement_matrix(sys);
    EXPECT_EQ(linalg::rank(h), sys.num_buses() - 1) << sys.name();
  }
}

TEST(MeasurementTest, ReverseFlowRowsAreNegatedForwardRows) {
  const PowerSystem sys = make_case_ieee14();
  const linalg::Matrix h = measurement_matrix(sys);
  const std::size_t num_branches = sys.num_branches();
  for (std::size_t l = 0; l < num_branches; ++l)
    for (std::size_t j = 0; j < h.cols(); ++j)
      EXPECT_DOUBLE_EQ(h(l, j), -h(num_branches + l, j));
}

TEST(MeasurementTest, InjectionRowsAreIncidenceTimesFlows) {
  // p = A f: injection measurements must equal the signed sum of incident
  // branch-flow measurements for any state.
  const PowerSystem sys = make_case_wscc9();
  stats::Rng rng(5);
  const linalg::Vector theta = test::random_vector(sys.num_buses() - 1, rng,
                                                   0.05);
  const linalg::Vector z =
      noiseless_measurements(sys, sys.reactances(), theta);
  const std::size_t num_branches = sys.num_branches();
  for (std::size_t i = 0; i < sys.num_buses(); ++i) {
    double expected = 0.0;
    for (std::size_t l = 0; l < num_branches; ++l) {
      if (sys.branch(l).from == i) expected += z[l];
      if (sys.branch(l).to == i) expected -= z[l];
    }
    EXPECT_NEAR(z[2 * num_branches + i], expected, 1e-9) << "bus " << i;
  }
}

TEST(MeasurementTest, FlowRowsMatchPowerFlowSolution) {
  const PowerSystem sys = make_case4();
  stats::Rng rng(6);
  const linalg::Vector theta = test::random_vector(3, rng, 0.02);
  const linalg::Vector z =
      noiseless_measurements(sys, sys.reactances(), theta);
  const linalg::Vector flows = branch_flows(sys, sys.reactances(), theta);
  for (std::size_t l = 0; l < 4; ++l) EXPECT_NEAR(z[l], flows[l], 1e-9);
}

TEST(MeasurementTest, ReactancePerturbationChangesOnlyTouchedRows) {
  const PowerSystem sys = make_case_ieee14();
  linalg::Vector x = sys.reactances();
  const linalg::Matrix h0 = measurement_matrix(sys, x);
  x[0] *= 1.2;  // branch 0 connects buses 0 and 1
  const linalg::Matrix h1 = measurement_matrix(sys, x);
  const std::size_t num_branches = sys.num_branches();

  for (std::size_t r = 0; r < h0.rows(); ++r) {
    const bool flow_row_of_branch0 = (r == 0 || r == num_branches);
    const bool injection_row_of_endpoint =
        (r == 2 * num_branches + 0) || (r == 2 * num_branches + 1);
    const double diff = linalg::max_abs_diff(h0.row(r), h1.row(r));
    if (flow_row_of_branch0 || injection_row_of_endpoint) {
      EXPECT_GT(diff, 1e-6) << "row " << r << " should change";
    } else {
      EXPECT_NEAR(diff, 0.0, 1e-12) << "row " << r << " should not change";
    }
  }
}

TEST(MeasurementTest, ScalingAllReactancesScalesH) {
  // H' for x' = x / (1+eta) equals (1+eta) H: the gamma == 0 degenerate
  // MTD of the paper's Fig. 4(a).
  const PowerSystem sys = make_case_wscc9();
  const linalg::Vector x = sys.reactances();
  const double eta = 0.25;
  linalg::Vector x_scaled = x;
  x_scaled /= (1.0 + eta);
  const linalg::Matrix h = measurement_matrix(sys, x);
  const linalg::Matrix h_scaled = measurement_matrix(sys, x_scaled);
  EXPECT_NEAR(linalg::max_abs_diff(h_scaled, h * (1.0 + eta)), 0.0, 1e-9);
}

// --- sparse construction path -------------------------------------------

TEST(MeasurementSparseTest, SparseMatrixEqualsDenseBitForBit) {
  // The storage-policy contract: sparse H emits its contributions in the
  // same branch order the dense susceptance accumulation uses, so every
  // stored value is bit-identical to the dense entry — exact ==, not NEAR.
  for (const PowerSystem& sys :
       {make_case4(), make_case_wscc9(), make_case_ieee14(),
        make_case57()}) {
    const linalg::Matrix h = measurement_matrix(sys);
    const linalg::SparseMatrix hs = sparse_measurement_matrix(sys);
    ASSERT_EQ(hs.rows(), h.rows()) << sys.name();
    ASSERT_EQ(hs.cols(), h.cols()) << sys.name();
    EXPECT_EQ(linalg::max_abs_diff(hs.to_dense(), h), 0.0) << sys.name();
  }
}

TEST(MeasurementSparseTest, SparseMatrixEqualsDenseForPerturbedReactances) {
  const PowerSystem sys = make_case_ieee14();
  stats::Rng rng(700);
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] = rng.uniform(lo[l], hi[l]);
  const linalg::Matrix h = measurement_matrix(sys, x);
  const linalg::SparseMatrix hs = sparse_measurement_matrix(sys, x);
  EXPECT_EQ(linalg::max_abs_diff(hs.to_dense(), h), 0.0);
}

TEST(MeasurementSparseTest, SparsityIsBoundedByEightEntriesPerBranch) {
  // 2 endpoint entries per flow row (2L rows) plus 4 injection
  // contributions per branch: nnz <= 8L, minus slack-column drops.
  const PowerSystem sys = make_case57();
  const linalg::SparseMatrix hs = sparse_measurement_matrix(sys);
  EXPECT_LE(hs.nnz(), 8 * sys.num_branches());
  // Far below the dense M x (N-1) block at 57-bus scale and beyond.
  EXPECT_LT(hs.nnz(), hs.rows() * hs.cols() / 4);
}

// --- incremental row updates vs full rebuild ----------------------------

class IncrementalUpdateProperty : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalUpdateProperty, RowUpdateEqualsRebuildOnCase14) {
  const PowerSystem sys = make_case14();
  stats::Rng rng(600 + GetParam());
  const linalg::Vector x0 = sys.reactances();
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();

  linalg::Vector x1 = x0;
  for (std::size_t l : sys.dfacts_branches())
    if (rng.uniform() < 0.6) x1[l] = rng.uniform(lo[l], hi[l]);

  linalg::Matrix h = measurement_matrix(sys, x0);
  const auto changed = changed_branches(x0, x1);
  update_measurement_matrix(sys, h, x0, x1, changed);
  const linalg::Matrix rebuilt = measurement_matrix(sys, x1);
  EXPECT_LT(linalg::max_abs_diff(h, rebuilt),
            1e-12 * std::max(1.0, rebuilt.max_abs()));
}

TEST_P(IncrementalUpdateProperty, RowUpdateEqualsRebuildOnCase57) {
  const PowerSystem sys = make_case57();
  stats::Rng rng(650 + GetParam());
  const linalg::Vector x0 = sys.reactances();
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();

  linalg::Vector x1 = x0;
  for (std::size_t l : sys.dfacts_branches())
    x1[l] = rng.uniform(lo[l], hi[l]);

  linalg::Matrix h = measurement_matrix(sys, x0);
  const auto changed = changed_branches(x0, x1);
  update_measurement_matrix(sys, h, x0, x1, changed);
  const linalg::Matrix rebuilt = measurement_matrix(sys, x1);
  EXPECT_LT(linalg::max_abs_diff(h, rebuilt),
            1e-12 * std::max(1.0, rebuilt.max_abs()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalUpdateProperty,
                         ::testing::Range(0, 8));

TEST(MeasurementIncrementalTest, ChangedBranchesFindsExactlyTheDiff) {
  const PowerSystem sys = make_case14();
  linalg::Vector x0 = sys.reactances();
  linalg::Vector x1 = x0;
  x1[2] *= 1.1;
  x1[7] *= 0.9;
  const auto changed = changed_branches(x0, x1);
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_EQ(changed[0], 2u);
  EXPECT_EQ(changed[1], 7u);
  EXPECT_TRUE(changed_branches(x0, x0).empty());
}

TEST(MeasurementIncrementalTest, ChainOfUpdatesStaysExact) {
  // Apply several successive perturbations to the same cached matrix; the
  // update must not accumulate error relative to a fresh rebuild.
  const PowerSystem sys = make_case57();
  stats::Rng rng(77);
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  linalg::Vector x = sys.reactances();
  linalg::Matrix h = measurement_matrix(sys, x);
  for (int step = 0; step < 20; ++step) {
    linalg::Vector x_next = x;
    for (std::size_t l : sys.dfacts_branches())
      if (rng.uniform() < 0.5) x_next[l] = rng.uniform(lo[l], hi[l]);
    update_measurement_matrix(sys, h, x, x_next,
                              changed_branches(x, x_next));
    x = x_next;
  }
  const linalg::Matrix rebuilt = measurement_matrix(sys, x);
  EXPECT_LT(linalg::max_abs_diff(h, rebuilt),
            1e-10 * std::max(1.0, rebuilt.max_abs()));
}

}  // namespace
}  // namespace mtdgrid::grid
