#include "grid/power_flow.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grid/cases.hpp"

namespace mtdgrid::grid {
namespace {

PowerSystem make_two_bus() {
  std::vector<Bus> buses = {{0.0}, {50.0}};
  std::vector<Branch> branches(1);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1, .flow_limit_mw = 100.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 10.0}};
  return PowerSystem("twobus", buses, branches, gens);
}

TEST(PowerFlowTest, TwoBusAnalyticSolution) {
  const PowerSystem sys = make_two_bus();
  // Injection +50 at bus 0, -50 at bus 1: flow = 50 MW over the line,
  // theta_1 = -50 * x / base = -0.05 rad.
  const linalg::Vector injections{50.0, -50.0};
  const auto result =
      solve_dc_power_flow(sys, sys.reactances(), injections);
  EXPECT_NEAR(result.flows_mw[0], 50.0, 1e-9);
  EXPECT_NEAR(result.theta_full[1], -0.05, 1e-12);
  EXPECT_DOUBLE_EQ(result.theta_full[0], 0.0);
}

TEST(PowerFlowTest, RejectsUnbalancedInjections) {
  const PowerSystem sys = make_two_bus();
  EXPECT_THROW(
      solve_dc_power_flow(sys, sys.reactances(), linalg::Vector{50.0, -40.0}),
      std::invalid_argument);
}

TEST(PowerFlowTest, RejectsWrongLengthInjections) {
  const PowerSystem sys = make_two_bus();
  EXPECT_THROW(
      solve_dc_power_flow(sys, sys.reactances(), linalg::Vector{1.0}),
      std::invalid_argument);
}

TEST(PowerFlowTest, FlowConservationAtEveryBus) {
  const PowerSystem sys = make_case_ieee14();
  linalg::Vector injections(sys.num_buses());
  // Put all generation at the slack, loads as given.
  for (std::size_t i = 0; i < sys.num_buses(); ++i)
    injections[i] = -sys.bus(i).load_mw;
  injections[0] += sys.total_load_mw();

  const auto result =
      solve_dc_power_flow(sys, sys.reactances(), injections);
  for (std::size_t i = 0; i < sys.num_buses(); ++i) {
    double outflow = 0.0;
    for (std::size_t l = 0; l < sys.num_branches(); ++l) {
      if (sys.branch(l).from == i) outflow += result.flows_mw[l];
      if (sys.branch(l).to == i) outflow -= result.flows_mw[l];
    }
    EXPECT_NEAR(outflow, injections[i], 1e-8) << "bus " << i;
  }
}

TEST(PowerFlowTest, FlowScalesInverselyWithReactance) {
  // In a two-path ring, lowering one path's reactance draws flow onto it.
  const PowerSystem sys = make_case4();
  linalg::Vector injections(4);
  injections[0] = 100.0;
  injections[3] = -100.0;

  linalg::Vector x = sys.reactances();
  const auto before = solve_dc_power_flow(sys, x, injections);
  x[0] *= 0.5;  // halve reactance of line 1 (bus1-bus2 path)
  const auto after = solve_dc_power_flow(sys, x, injections);
  EXPECT_GT(after.flows_mw[0], before.flows_mw[0]);
}

TEST(PowerFlowTest, NodalInjectionsFromDispatch) {
  const PowerSystem sys = make_case_ieee14();
  linalg::Vector gen(sys.num_generators());
  gen[0] = sys.total_load_mw();
  const linalg::Vector injections = nodal_injections(sys, gen);
  EXPECT_NEAR(injections.sum(), 0.0, 1e-9);
  EXPECT_NEAR(injections[0], sys.total_load_mw() - sys.bus(0).load_mw, 1e-9);
  EXPECT_NEAR(injections[2], -sys.bus(2).load_mw, 1e-9);
}

TEST(PowerFlowTest, ThetaReducedConsistentWithFull) {
  const PowerSystem sys = make_case_wscc9();
  linalg::Vector injections(sys.num_buses());
  injections[0] = 90.0;
  injections[4] = -90.0;
  const auto result =
      solve_dc_power_flow(sys, sys.reactances(), injections);
  std::size_t k = 0;
  for (std::size_t i = 0; i < sys.num_buses(); ++i) {
    if (i == sys.slack_bus()) {
      EXPECT_DOUBLE_EQ(result.theta_full[i], 0.0);
    } else {
      EXPECT_DOUBLE_EQ(result.theta_full[i], result.theta_reduced[k++]);
    }
  }
}

TEST(PowerFlowTest, SuperpositionHolds) {
  // DC power flow is linear: flows(p1 + p2) = flows(p1) + flows(p2).
  const PowerSystem sys = make_case_ieee14();
  linalg::Vector p1(sys.num_buses()), p2(sys.num_buses());
  p1[0] = 30.0;
  p1[5] = -30.0;
  p2[1] = 20.0;
  p2[9] = -20.0;
  const auto r1 = solve_dc_power_flow(sys, sys.reactances(), p1);
  const auto r2 = solve_dc_power_flow(sys, sys.reactances(), p2);
  const auto r12 = solve_dc_power_flow(sys, sys.reactances(), p1 + p2);
  EXPECT_NEAR(
      linalg::max_abs_diff(r12.flows_mw, r1.flows_mw + r2.flows_mw), 0.0,
      1e-8);
}

}  // namespace
}  // namespace mtdgrid::grid
