#include "grid/power_system.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grid/cases.hpp"

namespace mtdgrid::grid {
namespace {

PowerSystem make_triangle() {
  // Three buses in a ring, one generator, loads on two buses.
  std::vector<Bus> buses = {{0.0}, {60.0}, {40.0}};
  std::vector<Branch> branches(3);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1, .flow_limit_mw = 100.0};
  branches[1] = {.from = 1, .to = 2, .reactance = 0.2, .flow_limit_mw = 100.0};
  branches[2] = {.from = 0, .to = 2, .reactance = 0.1, .flow_limit_mw = 100.0,
                 .has_dfacts = true, .dfacts_min_factor = 0.5,
                 .dfacts_max_factor = 1.5};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 200.0, .cost_per_mwh = 10.0}};
  return PowerSystem("triangle", buses, branches, gens);
}

TEST(PowerSystemTest, BasicAccessors) {
  const PowerSystem sys = make_triangle();
  EXPECT_EQ(sys.num_buses(), 3u);
  EXPECT_EQ(sys.num_branches(), 3u);
  EXPECT_EQ(sys.num_generators(), 1u);
  EXPECT_EQ(sys.slack_bus(), 0u);
  EXPECT_DOUBLE_EQ(sys.total_load_mw(), 100.0);
}

TEST(PowerSystemTest, ReactanceRoundTrip) {
  PowerSystem sys = make_triangle();
  linalg::Vector x = sys.reactances();
  x[1] = 0.25;
  sys.set_reactances(x);
  EXPECT_DOUBLE_EQ(sys.branch(1).reactance, 0.25);
}

TEST(PowerSystemTest, SetReactancesRejectsBadInput) {
  PowerSystem sys = make_triangle();
  EXPECT_THROW(sys.set_reactances(linalg::Vector(2, 0.1)),
               std::invalid_argument);
  EXPECT_THROW(sys.set_reactances(linalg::Vector(3, -0.1)),
               std::invalid_argument);
}

TEST(PowerSystemTest, LoadScaling) {
  PowerSystem sys = make_triangle();
  sys.scale_loads(1.5);
  EXPECT_DOUBLE_EQ(sys.total_load_mw(), 150.0);
  EXPECT_DOUBLE_EQ(sys.bus(1).load_mw, 90.0);
}

TEST(PowerSystemTest, DfactsBranchListAndLimits) {
  const PowerSystem sys = make_triangle();
  const auto dfacts = sys.dfacts_branches();
  ASSERT_EQ(dfacts.size(), 1u);
  EXPECT_EQ(dfacts[0], 2u);
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  EXPECT_DOUBLE_EQ(lo[2], 0.05);
  EXPECT_DOUBLE_EQ(hi[2], 0.15);
  // Non-D-FACTS branch is pinned at nominal.
  EXPECT_DOUBLE_EQ(lo[0], 0.1);
  EXPECT_DOUBLE_EQ(hi[0], 0.1);
}

TEST(PowerSystemTest, ReactancesWithinLimits) {
  const PowerSystem sys = make_triangle();
  linalg::Vector x = sys.reactances();
  EXPECT_TRUE(sys.reactances_within_limits(x));
  x[2] = 0.149;
  EXPECT_TRUE(sys.reactances_within_limits(x));
  x[2] = 0.2;
  EXPECT_FALSE(sys.reactances_within_limits(x));
  x[2] = 0.1;
  x[0] = 0.11;  // non-D-FACTS branch must stay at nominal
  EXPECT_FALSE(sys.reactances_within_limits(x));
}

TEST(PowerSystemTest, IncidenceMatrixStructure) {
  const PowerSystem sys = make_triangle();
  const linalg::Matrix at = sys.branch_incidence();
  ASSERT_EQ(at.rows(), 3u);
  ASSERT_EQ(at.cols(), 3u);
  // Every branch row sums to zero (+1 at from, -1 at to).
  for (std::size_t l = 0; l < 3; ++l) {
    double row_sum = 0.0;
    for (std::size_t i = 0; i < 3; ++i) row_sum += at(l, i);
    EXPECT_DOUBLE_EQ(row_sum, 0.0);
  }
  EXPECT_DOUBLE_EQ(at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(at(0, 1), -1.0);
}

TEST(PowerSystemTest, ReducedIncidenceDropsSlackColumn) {
  const PowerSystem sys = make_triangle();
  const linalg::Matrix ar = sys.reduced_branch_incidence();
  EXPECT_EQ(ar.cols(), 2u);
}

TEST(PowerSystemTest, SusceptanceMatrixRowsSumToZero) {
  const PowerSystem sys = make_triangle();
  const linalg::Matrix b = sys.susceptance_matrix(sys.reactances());
  for (std::size_t i = 0; i < 3; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) row_sum += b(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-9);
  }
}

TEST(PowerSystemTest, SusceptanceMatrixIsSymmetric) {
  const PowerSystem sys = make_triangle();
  const linalg::Matrix b = sys.susceptance_matrix(sys.reactances());
  EXPECT_NEAR(max_abs_diff(b, b.transposed()), 0.0, 1e-12);
}

TEST(PowerSystemTest, ValidationRejectsSelfLoop) {
  std::vector<Bus> buses = {{0.0}, {10.0}};
  std::vector<Branch> branches(2);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1, .flow_limit_mw = 10.0};
  branches[1] = {.from = 1, .to = 1, .reactance = 0.1, .flow_limit_mw = 10.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 20.0, .cost_per_mwh = 1.0}};
  EXPECT_THROW(PowerSystem("bad", buses, branches, gens),
               std::invalid_argument);
}

TEST(PowerSystemTest, ValidationRejectsDisconnectedNetwork) {
  std::vector<Bus> buses = {{0.0}, {10.0}, {5.0}, {5.0}};
  std::vector<Branch> branches(2);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1, .flow_limit_mw = 10.0};
  branches[1] = {.from = 2, .to = 3, .reactance = 0.1, .flow_limit_mw = 10.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 20.0, .cost_per_mwh = 1.0}};
  EXPECT_THROW(PowerSystem("split", buses, branches, gens),
               std::invalid_argument);
}

TEST(PowerSystemTest, ValidationRejectsNegativeReactance) {
  std::vector<Bus> buses = {{0.0}, {10.0}};
  std::vector<Branch> branches(1);
  branches[0] = {.from = 0, .to = 1, .reactance = -0.1, .flow_limit_mw = 10.0};
  std::vector<Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 20.0, .cost_per_mwh = 1.0}};
  EXPECT_THROW(PowerSystem("neg", buses, branches, gens),
               std::invalid_argument);
}

TEST(PowerSystemTest, ValidationRejectsOutOfRangeGenerator) {
  std::vector<Bus> buses = {{0.0}, {10.0}};
  std::vector<Branch> branches(1);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1, .flow_limit_mw = 10.0};
  std::vector<Generator> gens = {
      {.bus = 5, .min_mw = 0.0, .max_mw = 20.0, .cost_per_mwh = 1.0}};
  EXPECT_THROW(PowerSystem("gen", buses, branches, gens),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::grid
