// Cross-module integration: the full defender pipeline (base OPF ->
// attacker knowledge -> MTD selection -> effectiveness evaluation) on
// multiple benchmark systems, plus the key comparison against the
// random-perturbation baseline of prior work.

#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/random_mtd.hpp"
#include "mtd/selection.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"

namespace mtdgrid {
namespace {

struct PipelineResult {
  mtd::MtdSelectionResult selection;
  mtd::EffectivenessResult effectiveness;
};

PipelineResult run_pipeline(const grid::PowerSystem& sys, double gamma_th,
                            std::uint64_t seed) {
  stats::Rng rng(seed);
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  EXPECT_TRUE(base.feasible);
  const linalg::Matrix h_attacker = grid::measurement_matrix(sys);

  mtd::MtdSelectionOptions sel;
  sel.gamma_threshold = gamma_th;
  sel.extra_starts = 3;
  sel.search.max_evaluations = 800;
  PipelineResult out;
  out.selection =
      mtd::select_mtd_perturbation(sys, h_attacker, base.cost, sel, rng);
  EXPECT_TRUE(out.selection.dispatch.feasible);

  const linalg::Vector z_ref = grid::noiseless_measurements(
      sys, out.selection.reactances, out.selection.dispatch.theta_reduced);
  mtd::EffectivenessOptions eff;
  eff.num_attacks = 200;
  eff.sigma_mw = 0.05;
  out.effectiveness = mtd::evaluate_effectiveness(
      h_attacker, out.selection.h_mtd, z_ref, eff, rng);
  return out;
}

TEST(EndToEndTest, Ieee14PipelineIsEffective) {
  const PipelineResult r = run_pipeline(grid::make_case_ieee14(), 0.25, 1);
  EXPECT_TRUE(r.selection.feasible);
  EXPECT_GT(r.effectiveness.eta[0], 0.6);  // eta'(0.5)
}

TEST(EndToEndTest, Ieee30PipelineIsEffective) {
  const PipelineResult r = run_pipeline(grid::make_case_ieee30(), 0.2, 2);
  EXPECT_TRUE(r.selection.feasible);
  EXPECT_GT(r.effectiveness.eta[0], 0.5);
}

TEST(EndToEndTest, Wscc9PipelineIsEffective) {
  const PipelineResult r = run_pipeline(grid::make_case_wscc9(), 0.2, 3);
  EXPECT_TRUE(r.selection.feasible);
  EXPECT_GT(r.effectiveness.eta[0], 0.5);
}

TEST(EndToEndTest, Case57PipelineIsEffective) {
  // IEEE 57-bus: the largest scenario. A trimmed search budget keeps the
  // 217 x 56 measurement-model pipeline inside test-suite time while still
  // demanding a defense that detects most attacks at delta = 0.5.
  const grid::PowerSystem sys = grid::make_case57();
  stats::Rng rng(9);
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  ASSERT_TRUE(base.feasible);
  const linalg::Matrix h_attacker = grid::measurement_matrix(sys);

  mtd::MtdSelectionOptions sel;
  sel.gamma_threshold = 0.12;
  sel.extra_starts = 1;
  sel.search.max_evaluations = 150;
  const mtd::MtdSelectionResult selection =
      mtd::select_mtd_perturbation(sys, h_attacker, base.cost, sel, rng);
  ASSERT_TRUE(selection.dispatch.feasible);

  const linalg::Vector z_ref = grid::noiseless_measurements(
      sys, selection.reactances, selection.dispatch.theta_reduced);
  mtd::EffectivenessOptions eff;
  eff.num_attacks = 100;
  eff.sigma_mw = 0.05;
  const mtd::EffectivenessResult effectiveness = mtd::evaluate_effectiveness(
      h_attacker, selection.h_mtd, z_ref, eff, rng);
  EXPECT_GT(effectiveness.eta[0], 0.5);
}

TEST(EndToEndTest, DesignedMtdBeatsRandomBaseline) {
  // The paper's headline comparison (Fig. 7/8 vs Fig. 6): an SPA-designed
  // perturbation achieves far higher eta'(delta) than random +/-2%
  // perturbations of prior work.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(4);
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  const linalg::Matrix h0 = grid::measurement_matrix(sys);

  mtd::EffectivenessOptions eff;
  eff.num_attacks = 200;
  eff.sigma_mw = 0.05;

  // Random baseline: average eta'(0.5) over 10 keyspace draws.
  double random_total = 0.0;
  const linalg::Vector z0 =
      grid::noiseless_measurements(sys, sys.reactances(), base.theta_reduced);
  for (int t = 0; t < 10; ++t) {
    const linalg::Vector x =
        mtd::random_reactance_perturbation(sys, sys.reactances(), 0.02, rng);
    const auto r = mtd::evaluate_effectiveness(
        h0, grid::measurement_matrix(sys, x), z0, eff, rng);
    random_total += r.eta[0];
  }
  const double random_mean = random_total / 10.0;

  const PipelineResult designed = run_pipeline(sys, 0.3, 5);
  EXPECT_GT(designed.effectiveness.eta[0], random_mean + 0.3);
}

TEST(EndToEndTest, MtdCostBoundedOnUncongestedSystem) {
  // WSCC-9 with generous limits: the MTD should be nearly free even at a
  // demanding threshold (the "insurance premium" is load dependent).
  const grid::PowerSystem sys = grid::make_case_wscc9();
  const PipelineResult r = run_pipeline(sys, 0.2, 6);
  ASSERT_TRUE(r.selection.feasible);
  EXPECT_LT(r.selection.cost_increase, 0.05);
}

TEST(EndToEndTest, AttackerLearningNewMatrixRestoresStealth) {
  // If the attacker re-learns H' (the paper's secrecy-decay caveat), the
  // MTD is defeated: attacks crafted from H' are undetectable again.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const PipelineResult r = run_pipeline(sys, 0.25, 7);
  stats::Rng rng(8);
  const linalg::Vector z_ref = grid::noiseless_measurements(
      sys, r.selection.reactances, r.selection.dispatch.theta_reduced);
  mtd::EffectivenessOptions eff;
  eff.num_attacks = 100;
  eff.sigma_mw = 0.05;
  const auto relearned = mtd::evaluate_effectiveness(
      r.selection.h_mtd, r.selection.h_mtd, z_ref, eff, rng);
  for (double eta : relearned.eta) EXPECT_DOUBLE_EQ(eta, 0.0);
}

}  // namespace
}  // namespace mtdgrid
