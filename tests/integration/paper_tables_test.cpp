// End-to-end reproduction of the paper's Section IV-B motivating example:
// Tables I, II and III on the 4-bus system of Fig. 3.

#include <gtest/gtest.h>

#include "attack/fdi_attack.hpp"
#include "estimation/state_estimator.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"

namespace mtdgrid {
namespace {

class PaperTablesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<grid::PowerSystem>(grid::make_case4());
    h0_ = grid::measurement_matrix(*sys_);
    base_ = opf::solve_dc_opf(*sys_);
    ASSERT_TRUE(base_.feasible);
  }

  // Reduced-state attack vectors of the paper (bus 1 is the slack, so the
  // paper's c = [0, 1, 1, 1] becomes [1, 1, 1] and c = [0, 0, 0, 1]
  // becomes [0, 0, 1]).
  attack::FdiAttack attack1() const {
    return attack::make_stealthy_attack(h0_, linalg::Vector{1.0, 1.0, 1.0});
  }
  attack::FdiAttack attack2() const {
    return attack::make_stealthy_attack(h0_, linalg::Vector{0.0, 0.0, 1.0});
  }

  linalg::Vector perturbed_reactances(std::size_t line, double eta) const {
    linalg::Vector x = sys_->reactances();
    x[line] *= (1.0 + eta);
    return x;
  }

  std::unique_ptr<grid::PowerSystem> sys_;
  linalg::Matrix h0_;
  opf::DispatchResult base_;
};

TEST_F(PaperTablesTest, Table2PrePerturbationOperatingPoint) {
  EXPECT_NEAR(base_.cost, 1.15e4, 1.0);
  EXPECT_NEAR(base_.generation_mw[0], 350.0, 0.01);
  EXPECT_NEAR(base_.generation_mw[1], 150.0, 0.01);
  const double expected_flows[] = {126.56, 173.44, -43.44, -26.56};
  for (std::size_t l = 0; l < 4; ++l)
    EXPECT_NEAR(base_.flows_mw[l], expected_flows[l], 0.01) << "line " << l;
}

TEST_F(PaperTablesTest, Table1ResidualPattern) {
  // Paper Table I (eta = 0.2, noiseless): attack 1 yields a non-zero BDD
  // residual only under Delta-x1 and Delta-x2; attack 2 only under
  // Delta-x3 and Delta-x4. The pattern demonstrates that single-line
  // random perturbations cannot detect all prior stealthy attacks.
  const bool attack1_detected[] = {true, true, false, false};
  const bool attack2_detected[] = {false, false, true, true};

  for (std::size_t line = 0; line < 4; ++line) {
    const linalg::Vector x = perturbed_reactances(line, 0.2);
    const estimation::StateEstimator est(
        grid::measurement_matrix(*sys_, x), 1.0);
    const double r1 = est.attack_residual_norm(attack1().a);
    const double r2 = est.attack_residual_norm(attack2().a);
    if (attack1_detected[line]) {
      EXPECT_GT(r1, 1.0) << "Delta-x" << line + 1;
    } else {
      EXPECT_NEAR(r1, 0.0, 1e-8) << "Delta-x" << line + 1;
    }
    if (attack2_detected[line]) {
      EXPECT_GT(r2, 1.0) << "Delta-x" << line + 1;
    } else {
      EXPECT_NEAR(r2, 0.0, 1e-8) << "Delta-x" << line + 1;
    }
  }
}

TEST_F(PaperTablesTest, Table1ResidualRatiosMatchPaper) {
  // The paper reports residuals (2.82, 2.87) for attack 1 under
  // (Delta-x1, Delta-x2) and (2.87, 2.82)-style values for attack 2. Our
  // attack normalization differs by a constant, so check the *ratio*.
  const estimation::StateEstimator est1(
      grid::measurement_matrix(*sys_, perturbed_reactances(0, 0.2)), 1.0);
  const estimation::StateEstimator est2(
      grid::measurement_matrix(*sys_, perturbed_reactances(1, 0.2)), 1.0);
  const double r11 = est1.attack_residual_norm(attack1().a);
  const double r12 = est2.attack_residual_norm(attack1().a);
  EXPECT_NEAR(r12 / r11, 2.87 / 2.82, 0.02);
}

TEST_F(PaperTablesTest, Table3PostPerturbationCosts) {
  // Every single-line 20% perturbation leaves the OPF feasible and costs
  // at least as much as the pre-perturbation optimum (Table III).
  for (std::size_t line = 0; line < 4; ++line) {
    const opf::DispatchResult r =
        opf::solve_dc_opf(*sys_, perturbed_reactances(line, 0.2));
    ASSERT_TRUE(r.feasible) << "Delta-x" << line + 1;
    EXPECT_GE(r.cost, base_.cost - 1e-6) << "Delta-x" << line + 1;
    EXPECT_NEAR(r.generation_mw.sum(), sys_->total_load_mw(), 1e-6);
  }
}

TEST_F(PaperTablesTest, SingleLinePerturbationsShareDirectionsWithAttacker) {
  // Section IV-C's conclusion: each Delta-x leaves a whole subspace of
  // stealthy attacks, visible as a zero smallest principal angle.
  for (std::size_t line = 0; line < 4; ++line) {
    const linalg::Matrix h =
        grid::measurement_matrix(*sys_, perturbed_reactances(line, 0.2));
    EXPECT_NEAR(mtd::smallest_angle(h0_, h), 0.0, 1e-7)
        << "Delta-x" << line + 1;
  }
}

}  // namespace
}  // namespace mtdgrid
