#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/selection.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"

namespace mtdgrid {
namespace {

// IEEE 118-bus scenario, loaded from data/case118.m through the io
// subsystem: structure, measurement model, OPF feasibility across the
// D-FACTS envelope, and the full selection -> dispatch -> effectiveness
// pipeline (PR acceptance criterion).

TEST(Case118Test, StructureMatchesIeee118) {
  const grid::PowerSystem sys = grid::make_case118();
  EXPECT_EQ(sys.name(), "case118");
  EXPECT_EQ(sys.num_buses(), 118u);
  EXPECT_EQ(sys.num_branches(), 186u);
  EXPECT_EQ(sys.num_generators(), 19u);
  EXPECT_EQ(sys.dfacts_branches().size(), 12u);
  EXPECT_NEAR(sys.total_load_mw(), 4242.0, 1e-9);

  double capacity = 0.0;
  for (std::size_t g = 0; g < sys.num_generators(); ++g)
    capacity += sys.generator(g).max_mw;
  EXPECT_GT(capacity, 1.2 * sys.total_load_mw());
}

TEST(Case118Test, KeepsParallelCircuits) {
  // case118's double circuits (42-49, 49-54, 49-66, 56-59, 77-80, 89-90,
  // 89-92) must survive into the branch list as distinct branches.
  const grid::PowerSystem sys = grid::make_case118();
  const auto count = [&](std::size_t f, std::size_t t) {
    int n = 0;
    for (const grid::Branch& br : sys.branches())
      if (br.from == f - 1 && br.to == t - 1) ++n;
    return n;
  };
  EXPECT_EQ(count(42, 49), 2);
  EXPECT_EQ(count(49, 54), 2);
  EXPECT_EQ(count(49, 66), 2);
  EXPECT_EQ(count(56, 59), 2);
  EXPECT_EQ(count(77, 80), 2);
  EXPECT_EQ(count(89, 90), 2);
  EXPECT_EQ(count(89, 92), 2);
}

TEST(Case118Test, MeasurementModelDimensions) {
  // M = 2L + N = 2*186 + 118 = 490 measurements, n = N - 1 = 117 states.
  const grid::PowerSystem sys = grid::make_case118();
  EXPECT_EQ(grid::measurement_count(sys), 490u);
  const linalg::Matrix h = grid::measurement_matrix(sys);
  EXPECT_EQ(h.rows(), 490u);
  EXPECT_EQ(h.cols(), 117u);
}

TEST(Case118Test, BaseOpfFeasibleAndBalanced) {
  const grid::PowerSystem sys = grid::make_case118();
  const opf::DispatchResult r = opf::solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.generation_mw.sum(), sys.total_load_mw(), 1e-6);

  const linalg::Vector inj = grid::nodal_injections(sys, r.generation_mw);
  std::vector<double> net(sys.num_buses(), 0.0);
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    net[sys.branch(l).from] += r.flows_mw[l];
    net[sys.branch(l).to] -= r.flows_mw[l];
  }
  for (std::size_t i = 0; i < sys.num_buses(); ++i)
    EXPECT_NEAR(net[i], inj[i], 1e-6) << "bus " << i + 1;
  for (std::size_t l = 0; l < sys.num_branches(); ++l)
    EXPECT_LE(std::abs(r.flows_mw[l]), sys.branch(l).flow_limit_mw + 1e-9)
        << "branch " << l + 1;
}

TEST(Case118Test, OpfStaysFeasibleAcrossDfactsEnvelope) {
  const grid::PowerSystem sys = grid::make_case118();
  for (double factor : {0.5, 0.75, 1.25, 1.5}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
    const opf::DispatchResult r = opf::solve_dc_opf(sys, x);
    EXPECT_TRUE(r.feasible) << "factor " << factor;
  }
}

TEST(Case118Test, FastSpaMatchesReference) {
  const grid::PowerSystem sys = grid::make_case118();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const mtd::SpaEvaluator eval(sys, h0);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
  const double reference = mtd::spa(h0, grid::measurement_matrix(sys, x));
  EXPECT_NEAR(eval.gamma(x), reference, 1e-9);
  EXPECT_GT(reference, 0.0);
}

TEST(Case118Test, SelectionDispatchEffectivenessPipeline) {
  // The acceptance pipeline: attacker learns H0, the defender selects an
  // SPA-constrained perturbation (fast path), re-dispatches, and the
  // chosen MTD detects most of the sampled attacks.
  const grid::PowerSystem sys = grid::make_case118();
  stats::Rng rng(118);
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  ASSERT_TRUE(base.feasible);
  const linalg::Matrix h_attacker = grid::measurement_matrix(sys);

  mtd::MtdSelectionOptions sel;
  sel.gamma_threshold = 0.1;
  sel.extra_starts = 1;
  sel.search.max_evaluations = 120;
  const mtd::MtdSelectionResult selection =
      mtd::select_mtd_perturbation(sys, h_attacker, base.cost, sel, rng);
  ASSERT_TRUE(selection.dispatch.feasible);
  EXPECT_GT(selection.spa, 0.0);
  EXPECT_GE(selection.opf_cost, base.cost - 1e-6);

  const linalg::Vector z_ref = grid::noiseless_measurements(
      sys, selection.reactances, selection.dispatch.theta_reduced);
  mtd::EffectivenessOptions eff;
  eff.num_attacks = 60;
  eff.sigma_mw = 0.05;
  const mtd::EffectivenessResult effectiveness = mtd::evaluate_effectiveness(
      h_attacker, selection.h_mtd, z_ref, eff, rng);
  EXPECT_GT(effectiveness.eta[0], 0.5);  // eta'(0.5)
}

}  // namespace
}  // namespace mtdgrid
