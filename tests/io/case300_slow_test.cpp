#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "estimation/bdd.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "linalg/subspace.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"
#include "stats/rng.hpp"

namespace mtdgrid {
namespace {

// The 300-bus large-scale scenario (see data/case300.m for provenance).
// These tests carry the ctest `slow` label — CMakeLists attaches it to
// every *_slow_test binary — and are excluded from the Debug and ASan CI
// legs, where the 1122 x 299 measurement model would dominate the suite.

TEST(Case300SlowTest, StructureAndScale) {
  const grid::PowerSystem sys = grid::make_case300();
  EXPECT_EQ(sys.name(), "case300");
  EXPECT_EQ(sys.num_buses(), 300u);
  EXPECT_EQ(sys.num_branches(), 411u);
  EXPECT_EQ(sys.num_generators(), 69u);
  EXPECT_EQ(sys.dfacts_branches().size(), 15u);
  EXPECT_NEAR(sys.total_load_mw(), 23525.85, 1e-6);
}

TEST(Case300SlowTest, MeasurementModelDimensions) {
  // M = 2L + N = 2*411 + 300 = 1122, n = 299.
  const grid::PowerSystem sys = grid::make_case300();
  EXPECT_EQ(grid::measurement_count(sys), 1122u);
  const linalg::Matrix h = grid::measurement_matrix(sys);
  EXPECT_EQ(h.rows(), 1122u);
  EXPECT_EQ(h.cols(), 299u);
}

TEST(Case300SlowTest, BaseOpfFeasibleAndBalanced) {
  const grid::PowerSystem sys = grid::make_case300();
  const opf::DispatchResult r = opf::solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.generation_mw.sum(), sys.total_load_mw(), 1e-5);

  const linalg::Vector inj = grid::nodal_injections(sys, r.generation_mw);
  std::vector<double> net(sys.num_buses(), 0.0);
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    net[sys.branch(l).from] += r.flows_mw[l];
    net[sys.branch(l).to] -= r.flows_mw[l];
  }
  for (std::size_t i = 0; i < sys.num_buses(); ++i)
    EXPECT_NEAR(net[i], inj[i], 1e-5) << "bus " << i + 1;
  for (std::size_t l = 0; l < sys.num_branches(); ++l)
    EXPECT_LE(std::abs(r.flows_mw[l]), sys.branch(l).flow_limit_mw + 1e-6)
        << "branch " << l + 1;
}

TEST(Case300SlowTest, OpfStaysFeasibleAcrossDfactsEnvelope) {
  const grid::PowerSystem sys = grid::make_case300();
  for (double factor : {0.5, 1.5}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
    const opf::DispatchResult r = opf::solve_dc_opf(sys, x);
    EXPECT_TRUE(r.feasible) << "factor " << factor;
  }
}

TEST(Case300SlowTest, FastSpaPositiveUnderPerturbation) {
  // The incremental SPA evaluator must handle the 1122 x 299 model; a
  // +30% perturbation of the 15 D-FACTS branches yields a decisively
  // positive principal angle, and the rank-k fast path agrees with the
  // thin-QR reference.
  const grid::PowerSystem sys = grid::make_case300();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const mtd::SpaEvaluator eval(sys, h0);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
  const double gamma = eval.gamma(x);
  EXPECT_GT(gamma, 1e-3);
  EXPECT_NEAR(gamma,
              linalg::largest_principal_angle_qr(
                  h0, grid::measurement_matrix(sys, x)),
              1e-9);
}

TEST(Case300SlowTest, SparseStateEstimationMatchesDenseTo1em10) {
  // PR acceptance criterion: at 300-bus scale the sparse policy must
  // reproduce the dense WLS state estimates, residual norms, and BDD
  // verdicts to <= 1e-10.
  const grid::PowerSystem sys = grid::make_case300();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  const linalg::SparseMatrix hs = grid::sparse_measurement_matrix(sys);
  EXPECT_EQ(linalg::max_abs_diff(hs.to_dense(), h), 0.0);

  const double sigma = 0.01;
  const estimation::StateEstimator dense(h, sigma);
  const estimation::StateEstimator sparse(hs, sigma);
  const estimation::BadDataDetector dense_bdd(dense, 0.05);
  const estimation::BadDataDetector sparse_bdd(sparse, 0.05);
  EXPECT_DOUBLE_EQ(sparse_bdd.threshold(), dense_bdd.threshold());

  stats::Rng rng(3001);
  for (int trial = 0; trial < 3; ++trial) {
    linalg::Vector theta(h.cols());
    for (std::size_t i = 0; i < theta.size(); ++i)
      theta[i] = 0.1 * rng.gaussian();
    linalg::Vector z = h * theta;
    for (std::size_t i = 0; i < z.size(); ++i)
      z[i] += rng.gaussian(0.0, sigma);

    const linalg::Vector x_dense = dense.estimate(z);
    const double scale = std::max(1.0, x_dense.norm_inf());
    EXPECT_LT(linalg::max_abs_diff(sparse.estimate(z), x_dense),
              1e-10 * scale);
    const double rd = dense.normalized_residual_norm(z);
    const double rs = sparse.normalized_residual_norm(z);
    EXPECT_NEAR(rs, rd, 1e-10 * std::max(1.0, rd));
    EXPECT_EQ(sparse_bdd.alarm(rs), dense_bdd.alarm(rd));
  }
}

}  // namespace
}  // namespace mtdgrid
