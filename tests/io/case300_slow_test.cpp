#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "linalg/subspace.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"

namespace mtdgrid {
namespace {

// The 300-bus large-scale scenario (see data/case300.m for provenance).
// These tests carry the ctest `slow` label — CMakeLists attaches it to
// every *_slow_test binary — and are excluded from the Debug and ASan CI
// legs, where the 1122 x 299 measurement model would dominate the suite.

TEST(Case300SlowTest, StructureAndScale) {
  const grid::PowerSystem sys = grid::make_case300();
  EXPECT_EQ(sys.name(), "case300");
  EXPECT_EQ(sys.num_buses(), 300u);
  EXPECT_EQ(sys.num_branches(), 411u);
  EXPECT_EQ(sys.num_generators(), 69u);
  EXPECT_EQ(sys.dfacts_branches().size(), 15u);
  EXPECT_NEAR(sys.total_load_mw(), 23525.85, 1e-6);
}

TEST(Case300SlowTest, MeasurementModelDimensions) {
  // M = 2L + N = 2*411 + 300 = 1122, n = 299.
  const grid::PowerSystem sys = grid::make_case300();
  EXPECT_EQ(grid::measurement_count(sys), 1122u);
  const linalg::Matrix h = grid::measurement_matrix(sys);
  EXPECT_EQ(h.rows(), 1122u);
  EXPECT_EQ(h.cols(), 299u);
}

TEST(Case300SlowTest, BaseOpfFeasibleAndBalanced) {
  const grid::PowerSystem sys = grid::make_case300();
  const opf::DispatchResult r = opf::solve_dc_opf(sys);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.generation_mw.sum(), sys.total_load_mw(), 1e-5);

  const linalg::Vector inj = grid::nodal_injections(sys, r.generation_mw);
  std::vector<double> net(sys.num_buses(), 0.0);
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    net[sys.branch(l).from] += r.flows_mw[l];
    net[sys.branch(l).to] -= r.flows_mw[l];
  }
  for (std::size_t i = 0; i < sys.num_buses(); ++i)
    EXPECT_NEAR(net[i], inj[i], 1e-5) << "bus " << i + 1;
  for (std::size_t l = 0; l < sys.num_branches(); ++l)
    EXPECT_LE(std::abs(r.flows_mw[l]), sys.branch(l).flow_limit_mw + 1e-6)
        << "branch " << l + 1;
}

TEST(Case300SlowTest, OpfStaysFeasibleAcrossDfactsEnvelope) {
  const grid::PowerSystem sys = grid::make_case300();
  for (double factor : {0.5, 1.5}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
    const opf::DispatchResult r = opf::solve_dc_opf(sys, x);
    EXPECT_TRUE(r.feasible) << "factor " << factor;
  }
}

TEST(Case300SlowTest, FastSpaPositiveUnderPerturbation) {
  // The incremental SPA evaluator must handle the 1122 x 299 model; a
  // +30% perturbation of the 15 D-FACTS branches yields a decisively
  // positive principal angle, and the rank-k fast path agrees with the
  // thin-QR reference.
  const grid::PowerSystem sys = grid::make_case300();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const mtd::SpaEvaluator eval(sys, h0);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.3;
  const double gamma = eval.gamma(x);
  EXPECT_GT(gamma, 1e-3);
  EXPECT_NEAR(gamma,
              linalg::largest_principal_angle_qr(
                  h0, grid::measurement_matrix(sys, x)),
              1e-9);
}

}  // namespace
}  // namespace mtdgrid
