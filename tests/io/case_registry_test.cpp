#include "io/case_registry.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "grid/cases.hpp"
#include "io/matpower.hpp"

namespace mtdgrid::io {
namespace {

TEST(CaseRegistryTest, KnowsEveryBundledCase) {
  const CaseRegistry& reg = CaseRegistry::global();
  for (const char* name :
       {"case4", "wscc9", "case14", "ieee30", "case57", "case118",
        "case300", "case118x9", "case300x17"})
    EXPECT_TRUE(reg.knows(name)) << name;
  for (const char* alias : {"ieee14", "ieee57", "ieee118", "case30"})
    EXPECT_TRUE(reg.knows(alias)) << alias;
  EXPECT_FALSE(reg.knows("case9999"));
  EXPECT_EQ(reg.names().size(), 9u);
}

TEST(CaseRegistryTest, LoadsByNameAndAlias) {
  EXPECT_EQ(load_case("case118").num_buses(), 118u);
  EXPECT_EQ(load_case("ieee118").num_buses(), 118u);
  EXPECT_EQ(load_case("case4").num_buses(), 4u);     // builtin factory
  EXPECT_EQ(load_case("ieee30").num_buses(), 30u);   // builtin factory
}

TEST(CaseRegistryTest, UnknownNameThrowsWithKnownList) {
  try {
    load_case("case9999");
    FAIL() << "expected CaseIoError";
  } catch (const CaseIoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown case 'case9999'"), std::string::npos);
    // The diagnostic must list every registered canonical name AND its
    // aliases, so a near-miss shows the accepted spellings.
    for (const CaseEntry& entry : CaseRegistry::global().entries()) {
      EXPECT_NE(what.find(entry.name), std::string::npos)
          << "missing canonical name " << entry.name << " in: " << what;
      for (const std::string& alias : entry.aliases)
        EXPECT_NE(what.find(alias), std::string::npos)
            << "missing alias " << alias << " in: " << what;
    }
    EXPECT_NE(what.find("or a path to a .m file"), std::string::npos);
  }
}

TEST(CaseRegistryTest, UnknownNameMessagePinned) {
  // Pins the exact shape of the message (ISSUE 4 satellite): canonical
  // names with aliases in parentheses, comma-separated.
  try {
    load_case("bogus");
    FAIL() << "expected CaseIoError";
  } catch (const CaseIoError& e) {
    EXPECT_EQ(std::string(e.what()),
              "unknown case 'bogus' (known: case4 (case4gs), wscc9 (case9), "
              "case14 (ieee14), ieee30 (case30), case57 (ieee57), "
              "case118 (ieee118), case300 (ieee300), case118x9, case300x17, "
              "a composed '<case>xN' name, or a path to a .m file)");
  }
}

TEST(CaseRegistryTest, MissingFileThrowsWithPath) {
  try {
    load_case("/nonexistent/dir/case.m");
    FAIL() << "expected CaseIoError";
  } catch (const CaseIoError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/case.m"),
              std::string::npos);
  }
}

TEST(CaseRegistryTest, MissingFileMessagePinnedWithStrerror) {
  // Pins the full unreadable-path diagnostic: the attempted filesystem
  // path plus the OS reason, so a misspelled path and a permission
  // problem read differently.
  try {
    load_case("/nonexistent/dir/case.m");
    FAIL() << "expected CaseIoError";
  } catch (const CaseIoError& e) {
    EXPECT_EQ(std::string(e.what()),
              std::string("/nonexistent/dir/case.m: cannot open file (") +
                  std::strerror(ENOENT) + ")");
  }
}

TEST(CaseRegistryTest, ParseErrorsCarryFileAndLine) {
  const std::string path =
      ::testing::TempDir() + "/broken_registry_case.m";
  {
    std::ofstream out(path);
    out << "function mpc = broken\n"
        << "mpc.baseMVA = 100;\n"
        << "mpc.bus = [\n"
        << "  1 3 oops;\n"
        << "];\n";
  }
  try {
    load_case(path);
    FAIL() << "expected CaseIoError";
  } catch (const CaseIoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos);
    EXPECT_NE(what.find("line 4"), std::string::npos);
    EXPECT_NE(what.find("oops"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(CaseRegistryTest, LoadsFromExplicitPath) {
  const std::string path = CaseRegistry::global().data_dir() + "/case57.m";
  const grid::PowerSystem sys = load_case(path);
  EXPECT_EQ(sys.num_buses(), 57u);
  EXPECT_EQ(sys.num_branches(), 80u);
}

// ---- the cross-check the loader refactor hinges on ---------------------
// make_case14()/make_case57() now delegate to the loader; the loaded
// systems must equal the frozen hand-coded tables to machine precision.

void expect_matches_legacy(const grid::PowerSystem& loaded,
                           const grid::PowerSystem& legacy) {
  EXPECT_EQ(loaded.name(), legacy.name());
  EXPECT_EQ(loaded.base_mva(), legacy.base_mva());
  ASSERT_EQ(loaded.num_buses(), legacy.num_buses());
  ASSERT_EQ(loaded.num_branches(), legacy.num_branches());
  ASSERT_EQ(loaded.num_generators(), legacy.num_generators());
  for (std::size_t i = 0; i < loaded.num_buses(); ++i)
    EXPECT_EQ(loaded.bus(i).load_mw, legacy.bus(i).load_mw)
        << "bus " << i + 1;
  for (std::size_t l = 0; l < loaded.num_branches(); ++l) {
    EXPECT_EQ(loaded.branch(l).from, legacy.branch(l).from) << l;
    EXPECT_EQ(loaded.branch(l).to, legacy.branch(l).to) << l;
    EXPECT_EQ(loaded.branch(l).reactance, legacy.branch(l).reactance) << l;
    EXPECT_EQ(loaded.branch(l).flow_limit_mw, legacy.branch(l).flow_limit_mw)
        << l;
    EXPECT_EQ(loaded.branch(l).has_dfacts, legacy.branch(l).has_dfacts)
        << l;
    EXPECT_EQ(loaded.branch(l).dfacts_min_factor,
              legacy.branch(l).dfacts_min_factor)
        << l;
    EXPECT_EQ(loaded.branch(l).dfacts_max_factor,
              legacy.branch(l).dfacts_max_factor)
        << l;
  }
  for (std::size_t g = 0; g < loaded.num_generators(); ++g) {
    EXPECT_EQ(loaded.generator(g).bus, legacy.generator(g).bus) << g;
    EXPECT_EQ(loaded.generator(g).min_mw, legacy.generator(g).min_mw) << g;
    EXPECT_EQ(loaded.generator(g).max_mw, legacy.generator(g).max_mw) << g;
    EXPECT_EQ(loaded.generator(g).cost_per_mwh,
              legacy.generator(g).cost_per_mwh)
        << g;
  }
}

TEST(CaseRegistryTest, LoadedCase14EqualsLegacyTables) {
  expect_matches_legacy(load_case("case14"), grid::make_case_ieee14());
}

TEST(CaseRegistryTest, LoadedCase57EqualsLegacyTables) {
  expect_matches_legacy(load_case("case57"), grid::make_case57_legacy());
}

TEST(CaseRegistryTest, ThinWrappersDelegateToLoader) {
  expect_matches_legacy(grid::make_case14(), grid::make_case_ieee14());
  expect_matches_legacy(grid::make_case57(), grid::make_case57_legacy());
}

TEST(CaseRegistryTest, EnvironmentOverridesDataDir) {
  setenv("MTDGRID_DATA_DIR", "/tmp/mtdgrid-no-such-dir", 1);
  EXPECT_EQ(CaseRegistry::global().data_dir(), "/tmp/mtdgrid-no-such-dir");
  EXPECT_THROW(load_case("case118"), CaseIoError);
  unsetenv("MTDGRID_DATA_DIR");
  EXPECT_NE(CaseRegistry::global().data_dir(),
            "/tmp/mtdgrid-no-such-dir");
  EXPECT_EQ(load_case("case118").num_buses(), 118u);
}

}  // namespace
}  // namespace mtdgrid::io
