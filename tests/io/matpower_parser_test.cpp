#include "io/matpower.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mtdgrid::io {
namespace {

// A minimal but complete 3-bus case exercising comments, inline `];`,
// blank lines, and the mpc.dfacts extension.
constexpr char kTinyCase[] = R"(function mpc = tiny3
% a comment line
mpc.version = '2';
mpc.baseMVA = 100;   % trailing comment
mpc.bus = [
  1 3 0   0 0 0 1 1 0 0 1 1.06 0.94;
  2 1 60  0 0 0 1 1 0 0 1 1.06 0.94;
  3 1 40  0 0 0 1 1 0 0 1 1.06 0.94;
];
mpc.gen = [
  1 0 0 0 0 1 100 1 150 0;
];
mpc.gencost = [
  2 0 0 2 25 0;
];
mpc.branch = [
  1 2 0 0.1  0 80 0 0 0 0 1;
  2 3 0 0.2  0 60 0 0 0 0 1;
  1 3 0 0.25 0 60 0 0 0 0 1;
];
mpc.dfacts = [ 1 0.5; ];
)";

ParseError parse_failure(const std::string& text) {
  ParseError error;
  EXPECT_FALSE(parse_matpower(text, &error).has_value()) << text;
  return error;
}

ParseError build_failure(const std::string& text) {
  ParseError parse_error;
  const auto mpc = parse_matpower(text, &parse_error);
  EXPECT_TRUE(mpc.has_value()) << parse_error.to_string();
  ParseError error;
  EXPECT_FALSE(to_power_system(*mpc, &error).has_value());
  return error;
}

/// Replaces the first occurrence of `from` in the tiny case.
std::string tiny_with(const std::string& from, const std::string& to) {
  std::string text = kTinyCase;
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  return text.replace(pos, from.size(), to);
}

TEST(MatpowerParserTest, ParsesTinyCase) {
  ParseError error;
  const auto mpc = parse_matpower(kTinyCase, &error);
  ASSERT_TRUE(mpc.has_value()) << error.to_string();
  EXPECT_EQ(mpc->name, "tiny3");
  EXPECT_TRUE(mpc->has_base_mva);
  EXPECT_DOUBLE_EQ(mpc->base_mva, 100.0);
  ASSERT_NE(mpc->find("bus"), nullptr);
  ASSERT_NE(mpc->find("branch"), nullptr);
  ASSERT_NE(mpc->find("dfacts"), nullptr);
  EXPECT_EQ(mpc->find("bus")->rows.size(), 3u);
  EXPECT_EQ(mpc->find("bus")->rows[0].size(), 13u);
  EXPECT_EQ(mpc->find("branch")->rows.size(), 3u);
  EXPECT_EQ(mpc->find("dfacts")->rows.size(), 1u);
  // Row source lines are tracked (1-based): bus rows start at line 6.
  EXPECT_EQ(mpc->find("bus")->row_lines[0], 6);
  EXPECT_EQ(mpc->find("bus")->row_lines[2], 8);
}

TEST(MatpowerParserTest, BuildsTinyPowerSystem) {
  ParseError error;
  const auto mpc = parse_matpower(kTinyCase, &error);
  ASSERT_TRUE(mpc.has_value());
  const auto sys = to_power_system(*mpc, &error);
  ASSERT_TRUE(sys.has_value()) << error.to_string();
  EXPECT_EQ(sys->name(), "tiny3");
  EXPECT_EQ(sys->num_buses(), 3u);
  EXPECT_EQ(sys->num_branches(), 3u);
  EXPECT_EQ(sys->num_generators(), 1u);
  EXPECT_DOUBLE_EQ(sys->total_load_mw(), 100.0);
  EXPECT_DOUBLE_EQ(sys->branch(0).reactance, 0.1);
  EXPECT_DOUBLE_EQ(sys->branch(0).flow_limit_mw, 80.0);
  EXPECT_TRUE(sys->branch(0).has_dfacts);
  EXPECT_DOUBLE_EQ(sys->branch(0).dfacts_min_factor, 0.5);
  EXPECT_DOUBLE_EQ(sys->branch(0).dfacts_max_factor, 1.5);
  EXPECT_FALSE(sys->branch(1).has_dfacts);
  EXPECT_DOUBLE_EQ(sys->generator(0).cost_per_mwh, 25.0);
}

// ---- parse-level error paths (each must carry a line number) -----------

TEST(MatpowerParserTest, MalformedNumericTokenReportsLine) {
  const ParseError e =
      parse_failure(tiny_with("2 3 0 0.2", "2 3 0 0.2x"));
  EXPECT_EQ(e.line, 18);  // the branch row's source line
  EXPECT_NE(e.message.find("malformed numeric token"), std::string::npos);
  EXPECT_NE(e.message.find("0.2x"), std::string::npos);
  EXPECT_NE(e.to_string().find("line 18"), std::string::npos);
}

TEST(MatpowerParserTest, RaggedMatrixReportsOffendingRowLine) {
  // Drop a column from the second bus row: rectangularity check fires.
  const ParseError e = parse_failure(
      tiny_with("2 1 60  0 0 0 1 1 0 0 1 1.06 0.94;",
                "2 1 60  0 0 0 1 1 0 0 1 1.06;"));
  EXPECT_EQ(e.line, 7);
  EXPECT_NE(e.message.find("12 columns, expected 13"), std::string::npos);
}

TEST(MatpowerParserTest, UnterminatedMatrixReportsOpeningLine) {
  const ParseError e = parse_failure(tiny_with("mpc.dfacts = [ 1 0.5; ];",
                                               "mpc.dfacts = [ 1 0.5;"));
  EXPECT_EQ(e.line, 21);
  EXPECT_NE(e.message.find("never closed"), std::string::npos);
}

TEST(MatpowerParserTest, DuplicateMatrixRejected) {
  const ParseError e = parse_failure(std::string(kTinyCase) +
                                     "mpc.bus = [ 1 3 0; ];\n");
  EXPECT_NE(e.message.find("duplicate matrix"), std::string::npos);
}

TEST(MatpowerParserTest, TrailingTextAfterInlineCloseRejected) {
  const ParseError e = parse_failure(tiny_with(
      "mpc.dfacts = [ 1 0.5; ];", "mpc.dfacts = [ 1 0.5 ] [ 2 0.5 ];"));
  EXPECT_EQ(e.line, 21);
  EXPECT_NE(e.message.find("unexpected text after ']'"), std::string::npos);
}

TEST(MatpowerParserTest, DuplicateBaseMvaRejected) {
  const ParseError e = parse_failure(std::string(kTinyCase) +
                                     "mpc.baseMVA = 1;\n");
  EXPECT_NE(e.message.find("duplicate mpc.baseMVA"), std::string::npos);
  EXPECT_NE(e.message.find("line 4"), std::string::npos);
}

TEST(MatpowerParserTest, HugeBusIdRejectedNotUndefinedBehavior) {
  const ParseError e = build_failure(tiny_with("3 1 40", "1e30 1 40"));
  EXPECT_EQ(e.line, 8);
  EXPECT_NE(e.message.find("bus id"), std::string::npos);
}

TEST(MatpowerParserTest, MalformedBaseMvaRejected) {
  const ParseError e = parse_failure(tiny_with("mpc.baseMVA = 100;",
                                               "mpc.baseMVA = ;"));
  EXPECT_EQ(e.line, 4);
  EXPECT_NE(e.message.find("baseMVA"), std::string::npos);
}

// ---- builder-level error paths -----------------------------------------

TEST(MatpowerParserTest, MissingBaseMvaIsDiagnosed) {
  const ParseError e = build_failure(tiny_with("mpc.baseMVA = 100;", ""));
  EXPECT_NE(e.message.find("missing mpc.baseMVA"), std::string::npos);
}

TEST(MatpowerParserTest, MissingGencostIsDiagnosed) {
  const ParseError e =
      build_failure(tiny_with("mpc.gencost = [\n  2 0 0 2 25 0;\n];", ""));
  EXPECT_NE(e.message.find("missing mpc.gencost"), std::string::npos);
}

TEST(MatpowerParserTest, UnknownBranchBusReportsRowLine) {
  const ParseError e = build_failure(tiny_with("1 3 0 0.25", "1 9 0 0.25"));
  EXPECT_EQ(e.line, 19);
  EXPECT_NE(e.message.find("bus 9 is not in mpc.bus"), std::string::npos);
}

TEST(MatpowerParserTest, ZeroReactanceBranchReportsRowLine) {
  const ParseError e = build_failure(tiny_with("2 3 0 0.2", "2 3 0 0.0"));
  EXPECT_EQ(e.line, 18);
  EXPECT_NE(e.message.find("non-positive reactance"), std::string::npos);
}

TEST(MatpowerParserTest, ReferenceBusMustComeFirst) {
  std::string text = tiny_with("1 3 0   0", "1 1 0   0");
  text = text.replace(text.find("2 1 60"), 6, "2 3 60");
  const ParseError e = build_failure(text);
  EXPECT_NE(e.message.find("reference"), std::string::npos);
}

TEST(MatpowerParserTest, DuplicateBusIdRejected) {
  const ParseError e = build_failure(
      tiny_with("3 1 40", "2 1 40"));
  EXPECT_EQ(e.line, 8);
  EXPECT_NE(e.message.find("duplicate bus id"), std::string::npos);
}

TEST(MatpowerParserTest, GencostRowCountMismatchDiagnosed) {
  const ParseError e = build_failure(
      tiny_with("2 0 0 2 25 0;", "2 0 0 2 25 0;\n  2 0 0 2 30 0;"));
  EXPECT_NE(e.message.find("mpc.gencost has 2 rows"), std::string::npos);
}

TEST(MatpowerParserTest, PiecewiseLinearGencostRejected) {
  const ParseError e =
      build_failure(tiny_with("2 0 0 2 25 0;", "1 0 0 2 0 0 10 250;"));
  EXPECT_NE(e.message.find("polynomial"), std::string::npos);
}

TEST(MatpowerParserTest, DisconnectedNetworkDiagnosed) {
  // Remove branches 2-3 and 1-3: bus 3 becomes unreachable.
  std::string text = tiny_with("2 3 0 0.2  0 60 0 0 0 0 1;", "");
  text = text.replace(text.find("1 3 0 0.25 0 60 0 0 0 0 1;"),
                      std::string("1 3 0 0.25 0 60 0 0 0 0 1;").size(), "");
  const ParseError e = build_failure(text);
  EXPECT_NE(e.message.find("not connected"), std::string::npos);
}

TEST(MatpowerParserTest, DfactsBranchIndexValidated) {
  const ParseError e = build_failure(tiny_with("[ 1 0.5; ]", "[ 7 0.5; ]"));
  EXPECT_NE(e.message.find("branch index out of range"), std::string::npos);
}

TEST(MatpowerParserTest, DfactsEtaRangeValidated) {
  const ParseError e = build_failure(tiny_with("[ 1 0.5; ]", "[ 1 1.5; ]"));
  EXPECT_NE(e.message.find("eta_max"), std::string::npos);
}

// ---- MATPOWER semantics honored by the builder -------------------------

TEST(MatpowerParserTest, OutOfServiceBranchesAndGensAreDropped) {
  // Branch 1-3 out of service; an extra offline generator (status 0) and a
  // synchronous condenser (Pmax 0) are both skipped along with their cost
  // rows.
  std::string text = tiny_with("1 3 0 0.25 0 60 0 0 0 0 1;",
                               "1 3 0 0.25 0 60 0 0 0 0 0;");
  text = text.replace(text.find("1 0 0 0 0 1 100 1 150 0;"),
                      std::string("1 0 0 0 0 1 100 1 150 0;").size(),
                      "1 0 0 0 0 1 100 1 150 0;\n"
                      "  2 0 0 0 0 1 100 0 90 0;\n"
                      "  3 0 0 0 0 1 100 1 0 0;");
  text = text.replace(text.find("2 0 0 2 25 0;"),
                      std::string("2 0 0 2 25 0;").size(),
                      "2 0 0 2 25 0;\n  2 0 0 2 99 0;\n  2 0 0 2 98 0;");
  ParseError error;
  const auto mpc = parse_matpower(text, &error);
  ASSERT_TRUE(mpc.has_value()) << error.to_string();
  const auto sys = to_power_system(*mpc, &error);
  ASSERT_TRUE(sys.has_value()) << error.to_string();
  EXPECT_EQ(sys->num_branches(), 2u);
  EXPECT_EQ(sys->num_generators(), 1u);
  EXPECT_DOUBLE_EQ(sys->generator(0).cost_per_mwh, 25.0);
}

TEST(MatpowerParserTest, ZeroRateAMeansUnlimited) {
  const std::string text = tiny_with("0.2  0 60", "0.2  0 0");
  ParseError error;
  const auto sys = to_power_system(*parse_matpower(text, &error), &error);
  ASSERT_TRUE(sys.has_value()) << error.to_string();
  EXPECT_DOUBLE_EQ(sys->branch(1).flow_limit_mw, kUnlimitedFlowMw);
}

TEST(MatpowerParserTest, TransformerTapFoldsIntoReactance) {
  const std::string text = tiny_with("2 3 0 0.2  0 60 0 0 0 0 1;",
                                     "2 3 0 0.2  0 60 0 0 0.95 0 1;");
  ParseError error;
  const auto sys = to_power_system(*parse_matpower(text, &error), &error);
  ASSERT_TRUE(sys.has_value()) << error.to_string();
  EXPECT_DOUBLE_EQ(sys->branch(1).reactance, 0.2 * 0.95);
}

TEST(MatpowerParserTest, QuadraticGencostLinearizedAtMidpoint) {
  // c2 = 0.01, c1 = 20, Pmin = 0, Pmax = 150: marginal cost at the
  // midpoint is c1 + c2 * (Pmin + Pmax) = 21.5.
  const std::string text =
      tiny_with("2 0 0 2 25 0;", "2 0 0 3 0.01 20 0;");
  ParseError error;
  const auto sys = to_power_system(*parse_matpower(text, &error), &error);
  ASSERT_TRUE(sys.has_value()) << error.to_string();
  EXPECT_DOUBLE_EQ(sys->generator(0).cost_per_mwh, 20.0 + 0.01 * 150.0);
}

TEST(MatpowerParserTest, NegativePminClampedToZero) {
  const std::string text = tiny_with("100 1 150 0;", "100 1 150 -20;");
  ParseError error;
  const auto sys = to_power_system(*parse_matpower(text, &error), &error);
  ASSERT_TRUE(sys.has_value()) << error.to_string();
  EXPECT_DOUBLE_EQ(sys->generator(0).min_mw, 0.0);
}

}  // namespace
}  // namespace mtdgrid::io
