#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "io/matpower.hpp"

namespace mtdgrid::io {
namespace {

/// Field-by-field equality to machine precision (EXPECT_EQ on doubles is
/// deliberate: the writer's shortest-round-trip formatting must reproduce
/// the exact bits).
void expect_identical(const grid::PowerSystem& a, const grid::PowerSystem& b,
                      bool compare_name = true) {
  if (compare_name) EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.base_mva(), b.base_mva());
  ASSERT_EQ(a.num_buses(), b.num_buses());
  ASSERT_EQ(a.num_branches(), b.num_branches());
  ASSERT_EQ(a.num_generators(), b.num_generators());
  for (std::size_t i = 0; i < a.num_buses(); ++i)
    EXPECT_EQ(a.bus(i).load_mw, b.bus(i).load_mw) << "bus " << i + 1;
  for (std::size_t l = 0; l < a.num_branches(); ++l) {
    const grid::Branch& ba = a.branch(l);
    const grid::Branch& bb = b.branch(l);
    EXPECT_EQ(ba.from, bb.from) << "branch " << l + 1;
    EXPECT_EQ(ba.to, bb.to) << "branch " << l + 1;
    EXPECT_EQ(ba.reactance, bb.reactance) << "branch " << l + 1;
    EXPECT_EQ(ba.flow_limit_mw, bb.flow_limit_mw) << "branch " << l + 1;
    EXPECT_EQ(ba.has_dfacts, bb.has_dfacts) << "branch " << l + 1;
    EXPECT_EQ(ba.dfacts_min_factor, bb.dfacts_min_factor) << "branch "
                                                          << l + 1;
    EXPECT_EQ(ba.dfacts_max_factor, bb.dfacts_max_factor) << "branch "
                                                          << l + 1;
  }
  for (std::size_t g = 0; g < a.num_generators(); ++g) {
    EXPECT_EQ(a.generator(g).bus, b.generator(g).bus) << "gen " << g + 1;
    EXPECT_EQ(a.generator(g).min_mw, b.generator(g).min_mw) << "gen " << g;
    EXPECT_EQ(a.generator(g).max_mw, b.generator(g).max_mw) << "gen " << g;
    EXPECT_EQ(a.generator(g).cost_per_mwh, b.generator(g).cost_per_mwh)
        << "gen " << g + 1;
  }
}

grid::PowerSystem roundtrip(const grid::PowerSystem& sys) {
  const std::string text = write_matpower(sys);
  ParseError error;
  const auto mpc = parse_matpower(text, &error);
  EXPECT_TRUE(mpc.has_value()) << error.to_string();
  const auto back = to_power_system(*mpc, &error);
  EXPECT_TRUE(back.has_value()) << error.to_string();
  return *back;
}

TEST(MatpowerRoundtripTest, Case4) {
  const grid::PowerSystem sys = grid::make_case4();
  expect_identical(sys, roundtrip(sys));
}

TEST(MatpowerRoundtripTest, Wscc9) {
  const grid::PowerSystem sys = grid::make_case_wscc9();
  expect_identical(sys, roundtrip(sys));
}

TEST(MatpowerRoundtripTest, Ieee14Legacy) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  expect_identical(sys, roundtrip(sys));
}

TEST(MatpowerRoundtripTest, Ieee30) {
  const grid::PowerSystem sys = grid::make_case_ieee30();
  expect_identical(sys, roundtrip(sys));
}

TEST(MatpowerRoundtripTest, Case57Legacy) {
  const grid::PowerSystem sys = grid::make_case57_legacy();
  expect_identical(sys, roundtrip(sys));
}

TEST(MatpowerRoundtripTest, AwkwardDoublesSurviveExactly) {
  // Values with no short decimal representation must still round-trip
  // bit-for-bit through the shortest-round-trip formatter.
  std::vector<grid::Bus> buses = {{0.0}, {1.0 / 3.0}, {2e-17}};
  std::vector<grid::Branch> branches;
  grid::Branch br;
  br.from = 0;
  br.to = 1;
  br.reactance = 0.1 + 0.2;  // 0.30000000000000004
  br.flow_limit_mw = 1234.5678901234567;
  branches.push_back(br);
  br.from = 1;
  br.to = 2;
  br.reactance = 1.0 / 7.0;
  br.has_dfacts = true;
  br.dfacts_min_factor = 1.0 - 1.0 / 3.0;
  br.dfacts_max_factor = 1.0 + 1.0 / 3.0;
  branches.push_back(br);
  std::vector<grid::Generator> generators;
  grid::Generator g;
  g.bus = 0;
  g.max_mw = 99.999999999999986;
  g.cost_per_mwh = 3.141592653589793;
  generators.push_back(g);
  const grid::PowerSystem sys("awkward", std::move(buses),
                              std::move(branches), std::move(generators),
                              97.3);
  expect_identical(sys, roundtrip(sys));
}

TEST(MatpowerRoundtripTest, UnlimitedFlowLimitSurvives) {
  std::vector<grid::Bus> buses = {{0.0}, {10.0}};
  std::vector<grid::Branch> branches(1);
  branches[0].from = 0;
  branches[0].to = 1;
  branches[0].reactance = 0.2;
  branches[0].flow_limit_mw = kUnlimitedFlowMw;
  std::vector<grid::Generator> generators(1);
  generators[0].bus = 0;
  generators[0].max_mw = 20.0;
  generators[0].cost_per_mwh = 10.0;
  const grid::PowerSystem sys("unlimited", std::move(buses),
                              std::move(branches), std::move(generators));
  const grid::PowerSystem back = roundtrip(sys);
  EXPECT_EQ(back.branch(0).flow_limit_mw, kUnlimitedFlowMw);
}

}  // namespace
}  // namespace mtdgrid::io
