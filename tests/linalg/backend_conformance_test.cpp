#include "linalg/backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "linalg/least_squares.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

// Backend-conformance suite: the same solve / factorize / least-squares
// contracts exercised against BOTH storage policies, plus the cross-policy
// agreement bounds of the PR acceptance criteria (dense vs sparse WLS to
// <= 1e-10 on the bundled IEEE cases).

Vector unit_weights(std::size_t m) { return Vector(m, 1.0); }

Vector random_weights(std::size_t m, stats::Rng& rng) {
  Vector w(m);
  for (std::size_t i = 0; i < m; ++i) w[i] = rng.uniform(0.25, 4.0);
  return w;
}

// --- LinearOperator -----------------------------------------------------

TEST(LinearOperatorTest, ReportsStorageAndDimensions) {
  stats::Rng rng(61);
  const Matrix d = test::random_matrix(6, 4, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d);
  const LinearOperator dense_op(d);
  const LinearOperator sparse_op(s);
  EXPECT_EQ(dense_op.storage(), StoragePolicy::kDense);
  EXPECT_EQ(sparse_op.storage(), StoragePolicy::kSparse);
  for (const LinearOperator& op : {dense_op, sparse_op}) {
    EXPECT_EQ(op.rows(), 6u);
    EXPECT_EQ(op.cols(), 4u);
  }
  EXPECT_EQ(&dense_op.dense(), &d);
  EXPECT_EQ(&sparse_op.sparse(), &s);
}

TEST(LinearOperatorTest, ApplyAgreesAcrossPolicies) {
  stats::Rng rng(62);
  const Matrix d = test::random_matrix(9, 5, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d);
  const Vector x = test::random_vector(5, rng);
  const Vector y = test::random_vector(9, rng);
  EXPECT_LT(max_abs_diff(LinearOperator(d).apply(x),
                         LinearOperator(s).apply(x)), 1e-13);
  EXPECT_LT(max_abs_diff(LinearOperator(d).apply_transpose(y),
                         LinearOperator(s).apply_transpose(y)), 1e-13);
}

// --- shared conformance over both policies ------------------------------

struct PolicyCase {
  const char* name;
  SolverOptions options;
};

class BackendConformance : public ::testing::TestWithParam<int> {
 protected:
  static std::vector<PolicyCase> solver_variants() {
    SolverOptions chol;  // defaults: direct Cholesky
    SolverOptions cg_ic;
    cg_ic.method = SolverOptions::Method::kConjugateGradient;
    SolverOptions cg_jacobi = cg_ic;
    cg_jacobi.preconditioner = SolverOptions::Preconditioner::kJacobi;
    return {{"cholesky", chol}, {"cg-ic0", cg_ic}, {"cg-jacobi", cg_jacobi}};
  }
};

TEST_P(BackendConformance, SolveLeastSquaresAgreesAcrossPolicies) {
  stats::Rng rng(400 + GetParam());
  const std::size_t m = 24, n = 9;
  const Matrix d = test::random_matrix(m, n, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d);
  const Vector w = random_weights(m, rng);
  const Vector b = test::random_vector(m, rng);

  const NormalEquationsSolver dense_solver(LinearOperator(d), w);
  ASSERT_FALSE(dense_solver.failed());
  const Vector x_dense = dense_solver.solve_least_squares(b);

  for (const PolicyCase& pc : solver_variants()) {
    const NormalEquationsSolver sparse_solver(LinearOperator(s), w,
                                              pc.options);
    ASSERT_FALSE(sparse_solver.failed()) << pc.name;
    EXPECT_LT(max_abs_diff(sparse_solver.solve_least_squares(b), x_dense),
              1e-9)
        << pc.name;
  }
}

TEST_P(BackendConformance, SolveNormalEquationsAgreesAcrossPolicies) {
  stats::Rng rng(440 + GetParam());
  const std::size_t m = 20, n = 8;
  const Matrix d = test::random_matrix(m, n, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d);
  const Vector w = random_weights(m, rng);
  const Vector rhs = test::random_vector(n, rng);

  const NormalEquationsSolver dense_solver(LinearOperator(d), w);
  ASSERT_FALSE(dense_solver.failed());
  const Vector x_dense = dense_solver.solve(rhs);
  // The dense solve really inverts A^T W A.
  const Matrix gram = weighted_gram(d, w);
  EXPECT_LT(max_abs_diff(gram * x_dense, rhs),
            1e-9 * std::max(1.0, rhs.norm()));

  for (const PolicyCase& pc : solver_variants()) {
    const NormalEquationsSolver sparse_solver(LinearOperator(s), w,
                                              pc.options);
    ASSERT_FALSE(sparse_solver.failed()) << pc.name;
    EXPECT_LT(max_abs_diff(sparse_solver.solve(rhs), x_dense), 1e-8)
        << pc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendConformance, ::testing::Range(0, 10));

// --- dense policy is the bit-exact reference ----------------------------

TEST(BackendDenseExactnessTest, MatchesLegacyDenseSolverBitForBit) {
  // The dense backend must reproduce the historical dense WLS exactly
  // (same Gram accumulation, same Cholesky, same rhs loop) — the PR's
  // dense bit-identity acceptance criterion at the API level.
  const grid::PowerSystem sys = grid::make_case57();
  const Matrix h = grid::measurement_matrix(sys);
  stats::Rng rng(71);
  const Vector w = random_weights(h.rows(), rng);
  const Vector b = test::random_vector(h.rows(), rng);

  const Vector legacy = solve_weighted_least_squares(h, w, b);
  const Vector backend =
      solve_weighted_least_squares(LinearOperator(h), w, b);
  const NormalEquationsSolver solver(LinearOperator(h), w);
  ASSERT_FALSE(solver.failed());
  const Vector member = solver.solve_least_squares(b);

  ASSERT_EQ(legacy.size(), backend.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i], backend[i]) << "entry " << i;
    EXPECT_EQ(legacy[i], member[i]) << "entry " << i;
  }
}

// --- IEEE-case agreement (acceptance criterion) -------------------------

void expect_case_agreement(const grid::PowerSystem& sys, int seed) {
  const Matrix h = grid::measurement_matrix(sys);
  const SparseMatrix hs = grid::sparse_measurement_matrix(sys);
  stats::Rng rng(seed);
  const Vector w = random_weights(h.rows(), rng);

  const NormalEquationsSolver dense_solver(LinearOperator(h), w);
  SolverOptions cg;
  cg.method = SolverOptions::Method::kConjugateGradient;
  const NormalEquationsSolver sparse_chol(LinearOperator(hs), w);
  const NormalEquationsSolver sparse_cg(LinearOperator(hs), w, cg);
  ASSERT_FALSE(dense_solver.failed());
  ASSERT_FALSE(sparse_chol.failed());
  ASSERT_FALSE(sparse_cg.failed());

  for (int trial = 0; trial < 3; ++trial) {
    // Realistic magnitudes: states ~0.1 rad, noise-scale perturbations.
    const Vector theta = test::random_vector(h.cols(), rng, 0.1);
    const Vector b = h * theta + test::random_vector(h.rows(), rng, 0.01);
    const Vector x_dense = dense_solver.solve_least_squares(b);
    const double scale = std::max(1.0, x_dense.norm_inf());
    EXPECT_LT(max_abs_diff(sparse_chol.solve_least_squares(b), x_dense),
              1e-10 * scale)
        << sys.name() << " cholesky trial " << trial;
    // CG is iterative: its agreement is bounded by the residual tolerance
    // through the Gram conditioning, not by direct-solve rounding.
    EXPECT_LT(max_abs_diff(sparse_cg.solve_least_squares(b), x_dense),
              1e-8 * scale)
        << sys.name() << " cg trial " << trial;
  }
}

TEST(BackendCaseAgreementTest, Case14DenseVsSparseWithin1em10) {
  expect_case_agreement(grid::make_case14(), 81);
}

TEST(BackendCaseAgreementTest, Case57DenseVsSparseWithin1em10) {
  expect_case_agreement(grid::make_case57(), 82);
}

TEST(BackendCaseAgreementTest, Case118DenseVsSparseWithin1em10) {
  expect_case_agreement(grid::make_case118(), 83);
}

// --- failure paths, both policies ---------------------------------------

TEST(BackendFailureTest, RankDeficientMatrixFailsUnderBothPolicies) {
  // Duplicate column -> A^T W A singular.
  Matrix a(5, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);
  }
  const SparseMatrix s = SparseMatrix::from_dense(a);
  const Vector w = unit_weights(5);
  const Vector b(5, 1.0);

  const NormalEquationsSolver dense_solver(LinearOperator(a), w);
  EXPECT_TRUE(dense_solver.failed());
  EXPECT_THROW(dense_solver.solve_least_squares(b), std::runtime_error);

  // The direct (Cholesky) method detects the singular Gram matrix under
  // the sparse policy too. (CG does not: on a consistent singular system
  // it quietly converges to one of the least-squares solutions.)
  const NormalEquationsSolver sparse_solver(LinearOperator(s), w);
  EXPECT_TRUE(sparse_solver.failed());
  EXPECT_THROW(sparse_solver.solve_least_squares(b), std::runtime_error);
}

TEST(BackendFailureTest, ZeroWeightsCanSinkTheProblem) {
  // All-zero weights make A^T W A identically zero under either policy.
  stats::Rng rng(91);
  const Matrix a = test::random_matrix(6, 3, rng);
  const SparseMatrix s = SparseMatrix::from_dense(a);
  const Vector w(6, 0.0);
  EXPECT_TRUE(NormalEquationsSolver(LinearOperator(a), w).failed());
  EXPECT_TRUE(NormalEquationsSolver(LinearOperator(s), w).failed());
}

TEST(BackendFailureTest, FreeFunctionThrowsHistoricalMessage) {
  Matrix a(3, 2);  // zero matrix: rank deficient
  const Vector w = unit_weights(3);
  const Vector b(3, 1.0);
  for (bool sparse : {false, true}) {
    try {
      if (sparse) {
        const SparseMatrix s = SparseMatrix::from_dense(a);
        solve_weighted_least_squares(LinearOperator(s), w, b);
      } else {
        solve_weighted_least_squares(LinearOperator(a), w, b);
      }
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(),
                   "weighted least squares: normal equations not positive "
                   "definite (rank-deficient matrix or non-positive weights)");
    }
  }
}

TEST(BackendFailureTest, CgDivergenceReportsResidual) {
  // A one-iteration cap on a non-trivial system cannot converge; the
  // sparse CG solve must throw rather than return a bad estimate. Jacobi
  // here: IC(0) on the fully dense Gram pattern IS an exact factorization
  // and would legitimately converge in one step.
  stats::Rng rng(92);
  const Matrix a = test::random_matrix(12, 6, rng);
  const SparseMatrix s = SparseMatrix::from_dense(a);
  const Vector w = random_weights(12, rng);
  SolverOptions cg;
  cg.method = SolverOptions::Method::kConjugateGradient;
  cg.preconditioner = SolverOptions::Preconditioner::kJacobi;
  cg.cg_max_iterations = 1;
  const NormalEquationsSolver solver(LinearOperator(s), w, cg);
  ASSERT_FALSE(solver.failed());
  EXPECT_THROW(solver.solve_least_squares(Vector(12, 1.0)),
               std::runtime_error);
}

}  // namespace
}  // namespace mtdgrid::linalg
