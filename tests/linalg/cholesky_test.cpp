#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include "linalg/lu.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

TEST(CholeskyTest, SolvesKnownSpdSystem) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  CholeskyDecomposition chol(a);
  ASSERT_FALSE(chol.failed());
  Vector x = chol.solve(Vector{8.0, 7.0});
  // Verify against direct substitution.
  EXPECT_NEAR(4.0 * x[0] + 2.0 * x[1], 8.0, 1e-12);
  EXPECT_NEAR(2.0 * x[0] + 3.0 * x[1], 7.0, 1e-12);
}

TEST(CholeskyTest, FailsOnIndefiniteMatrix) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  CholeskyDecomposition chol(a);
  EXPECT_TRUE(chol.failed());
}

TEST(CholeskyTest, FailsOnSingularMatrix) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  CholeskyDecomposition chol(a);
  EXPECT_TRUE(chol.failed());
}

TEST(CholeskyTest, IdentitySolveReturnsRhs) {
  CholeskyDecomposition chol(Matrix::identity(4));
  ASSERT_FALSE(chol.failed());
  Vector b{1.0, -2.0, 3.0, -4.0};
  EXPECT_NEAR(max_abs_diff(chol.solve(b), b), 0.0, 1e-14);
}

// Property: Cholesky and LU agree on random SPD systems.
class CholeskyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyProperty, AgreesWithLu) {
  stats::Rng rng(GetParam());
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 6;
  const Matrix a = test::random_spd_matrix(n, rng);
  const Vector b = test::random_vector(n, rng);
  CholeskyDecomposition chol(a);
  ASSERT_FALSE(chol.failed());
  EXPECT_NEAR(max_abs_diff(chol.solve(b), solve(a, b)), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace mtdgrid::linalg
