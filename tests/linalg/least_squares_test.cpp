#include "linalg/least_squares.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

TEST(LeastSquaresTest, UniformWeightsMatchOls) {
  stats::Rng rng(1);
  const Matrix a = test::random_matrix(9, 4, rng);
  const Vector b = test::random_vector(9, rng);
  const Vector x_wls =
      solve_weighted_least_squares(a, Vector(9, 1.0), b);
  const Vector x_ols = solve_least_squares(a, b);
  EXPECT_NEAR(max_abs_diff(x_wls, x_ols), 0.0, 1e-8);
}

TEST(LeastSquaresTest, RecoverExactSolution) {
  stats::Rng rng(2);
  const Matrix a = test::random_matrix(10, 3, rng);
  const Vector x_true = test::random_vector(3, rng);
  const Vector x = solve_weighted_least_squares(a, Vector(10, 2.0), a * x_true);
  EXPECT_NEAR(max_abs_diff(x, x_true), 0.0, 1e-9);
}

TEST(LeastSquaresTest, WeightedResidualOrthogonality) {
  // WLS optimality: A^T W r = 0.
  stats::Rng rng(3);
  const Matrix a = test::random_matrix(8, 3, rng);
  const Vector b = test::random_vector(8, rng);
  Vector w(8);
  for (std::size_t i = 0; i < 8; ++i) w[i] = 0.5 + rng.uniform();
  const Vector x = solve_weighted_least_squares(a, w, b);
  const Vector r = b - a * x;
  const Vector atwr = a.transpose_times(w.hadamard(r));
  EXPECT_NEAR(atwr.norm_inf(), 0.0, 1e-9);
}

TEST(LeastSquaresTest, HeavyWeightPullsFitTowardThatRow) {
  // Two inconsistent equations for one unknown: x = 0 and x = 1.
  Matrix a{{1.0}, {1.0}};
  Vector b{0.0, 1.0};
  const Vector balanced = solve_weighted_least_squares(a, Vector{1.0, 1.0}, b);
  EXPECT_NEAR(balanced[0], 0.5, 1e-12);
  const Vector skewed =
      solve_weighted_least_squares(a, Vector{1.0, 99.0}, b);
  EXPECT_NEAR(skewed[0], 0.99, 1e-12);
}

TEST(LeastSquaresTest, ThrowsOnRankDeficiency) {
  Matrix a(5, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 3.0;
  }
  EXPECT_THROW(
      solve_weighted_least_squares(a, Vector(5, 1.0), Vector(5, 1.0)),
      std::runtime_error);
}

TEST(HatMatrixTest, IsIdempotentProjection) {
  stats::Rng rng(4);
  const Matrix a = test::random_matrix(7, 3, rng);
  Vector w(7);
  for (std::size_t i = 0; i < 7; ++i) w[i] = 1.0 + rng.uniform();
  const Matrix k = weighted_hat_matrix(a, w);
  EXPECT_NEAR(max_abs_diff(k * k, k), 0.0, 1e-8);
}

TEST(HatMatrixTest, FixesColumnSpace) {
  stats::Rng rng(5);
  const Matrix a = test::random_matrix(8, 3, rng);
  const Matrix k = weighted_hat_matrix(a, Vector(8, 1.0));
  EXPECT_NEAR(max_abs_diff(k * a, a), 0.0, 1e-8);
}

TEST(HatMatrixTest, ResidualOperatorAnnihilatesColumnSpace) {
  // (I - K) H c == 0: exactly why a = Hc bypasses the BDD (paper App. A).
  stats::Rng rng(6);
  const Matrix h = test::random_matrix(9, 4, rng);
  const Matrix k = weighted_hat_matrix(h, Vector(9, 4.0));
  const Vector c = test::random_vector(4, rng);
  const Vector residual = h * c - k * (h * c);
  EXPECT_NEAR(residual.norm_inf(), 0.0, 1e-8);
}

// Property: WLS solution minimizes the weighted residual against random
// competitor points.
class WlsOptimalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(WlsOptimalityProperty, BeatsRandomCompetitors) {
  stats::Rng rng(GetParam() + 40);
  const Matrix a = test::random_matrix(10, 3, rng);
  const Vector b = test::random_vector(10, rng);
  Vector w(10);
  for (std::size_t i = 0; i < 10; ++i) w[i] = 0.1 + rng.uniform();
  const Vector x = solve_weighted_least_squares(a, w, b);
  const auto weighted_ss = [&](const Vector& point) {
    const Vector r = b - a * point;
    return r.hadamard(r).dot(w);
  };
  const double best = weighted_ss(x);
  for (int trial = 0; trial < 20; ++trial) {
    const Vector competitor = x + test::random_vector(3, rng, 0.3);
    EXPECT_LE(best, weighted_ss(competitor) + 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WlsOptimalityProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace mtdgrid::linalg
