#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

TEST(LuTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Vector x = solve(a, Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, SolveRequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  Vector x = solve(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuTest, DetectsSingularMatrix) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(solve(a, Vector{1.0, 1.0}), std::runtime_error);
}

TEST(LuTest, DeterminantKnownValues) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), 6.0, 1e-12);
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};  // permutation: determinant -1
  EXPECT_NEAR(LuDecomposition(b).determinant(), -1.0, 1e-12);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  stats::Rng rng(3);
  const Matrix a = test::random_spd_matrix(5, rng);
  const Matrix inv = inverse(a);
  EXPECT_NEAR(max_abs_diff(a * inv, Matrix::identity(5)), 0.0, 1e-9);
  EXPECT_NEAR(max_abs_diff(inv * a, Matrix::identity(5)), 0.0, 1e-9);
}

TEST(LuTest, MatrixRhsSolve) {
  Matrix a{{2.0, 0.0}, {0.0, 4.0}};
  Matrix b{{2.0, 4.0}, {8.0, 12.0}};
  Matrix x = LuDecomposition(a).solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

// Property: for random well-conditioned systems, A * solve(A, b) == b.
class LuRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuRoundTripProperty, SolveRoundTrip) {
  stats::Rng rng(GetParam());
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 8;
  const Matrix a = test::random_spd_matrix(n, rng);
  const Vector b = test::random_vector(n, rng);
  const Vector x = solve(a, b);
  EXPECT_NEAR(max_abs_diff(a * x, b), 0.0, 1e-8);
}

TEST_P(LuRoundTripProperty, DeterminantOfProduct) {
  stats::Rng rng(GetParam() + 50);
  const Matrix a = test::random_spd_matrix(4, rng);
  const Matrix b = test::random_spd_matrix(4, rng);
  const double da = LuDecomposition(a).determinant();
  const double db = LuDecomposition(b).determinant();
  const double dab = LuDecomposition(a * b).determinant();
  EXPECT_NEAR(dab, da * db, 1e-6 * std::abs(da * db) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRoundTripProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace mtdgrid::linalg
