#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

TEST(MatrixTest, NestedInitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  ASSERT_EQ(m.rows(), 3u);
  ASSERT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 5.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 2), 0.0);

  Matrix d = Matrix::diagonal(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, ColumnFactory) {
  Matrix c = Matrix::column(Vector{1.0, 2.0, 3.0});
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(2, 0), 3.0);
}

TEST(MatrixTest, MatrixProductKnownValues) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Vector v{1.0, 0.0, -1.0};
  Vector r = a * v;
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], -2.0);
  EXPECT_DOUBLE_EQ(r[1], -2.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  stats::Rng rng(1);
  const Matrix a = test::random_matrix(4, 6, rng);
  EXPECT_NEAR(max_abs_diff(a.transposed().transposed(), a), 0.0, 0.0);
}

TEST(MatrixTest, TransposeTimesMatchesExplicitTranspose) {
  stats::Rng rng(2);
  const Matrix a = test::random_matrix(5, 3, rng);
  const Matrix b = test::random_matrix(5, 4, rng);
  const Vector v = test::random_vector(5, rng);
  EXPECT_NEAR(max_abs_diff(a.transpose_times(b), a.transposed() * b), 0.0,
              1e-12);
  EXPECT_NEAR(max_abs_diff(a.transpose_times(v), a.transposed() * v), 0.0,
              1e-12);
}

TEST(MatrixTest, RowAndColumnAccess) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.row(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(a.col(1)[0], 2.0);
  a.set_row(0, Vector{9.0, 8.0});
  a.set_col(0, Vector{7.0, 6.0});
  EXPECT_DOUBLE_EQ(a(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
}

TEST(MatrixTest, BlockExtraction) {
  Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix b = a.block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 9.0);
}

TEST(MatrixTest, HstackVstack) {
  Matrix a{{1.0}, {2.0}};
  Matrix b{{3.0}, {4.0}};
  Matrix h = a.hstack(b);
  ASSERT_EQ(h.cols(), 2u);
  EXPECT_DOUBLE_EQ(h(1, 1), 4.0);
  Matrix v = a.vstack(b);
  ASSERT_EQ(v.rows(), 4u);
  EXPECT_DOUBLE_EQ(v(3, 0), 4.0);
}

TEST(MatrixTest, WithoutCol) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b = a.without_col(1);
  ASSERT_EQ(b.cols(), 2u);
  EXPECT_DOUBLE_EQ(b(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(b(1, 0), 4.0);
}

TEST(MatrixTest, FrobeniusNormAndMaxAbs) {
  Matrix a{{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(MatrixTest, AdditionSubtractionScaling) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 6.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(0, 1), 4.0);
  EXPECT_DOUBLE_EQ((3.0 * a)(0, 0), 3.0);
}

// Property suite: algebraic identities on random matrices.
class MatrixAlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatrixAlgebraProperty, Associativity) {
  stats::Rng rng(GetParam());
  const Matrix a = test::random_matrix(3, 4, rng);
  const Matrix b = test::random_matrix(4, 5, rng);
  const Matrix c = test::random_matrix(5, 2, rng);
  EXPECT_NEAR(max_abs_diff((a * b) * c, a * (b * c)), 0.0, 1e-10);
}

TEST_P(MatrixAlgebraProperty, TransposeOfProduct) {
  stats::Rng rng(GetParam() + 100);
  const Matrix a = test::random_matrix(4, 3, rng);
  const Matrix b = test::random_matrix(3, 5, rng);
  EXPECT_NEAR(
      max_abs_diff((a * b).transposed(), b.transposed() * a.transposed()),
      0.0, 1e-10);
}

TEST_P(MatrixAlgebraProperty, DistributesOverAddition) {
  stats::Rng rng(GetParam() + 200);
  const Matrix a = test::random_matrix(3, 3, rng);
  const Matrix b = test::random_matrix(3, 3, rng);
  const Vector v = test::random_vector(3, rng);
  EXPECT_NEAR(max_abs_diff((a + b) * v, a * v + b * v), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixAlgebraProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace mtdgrid::linalg
