#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

TEST(QrTest, ReconstructsInput) {
  stats::Rng rng(1);
  const Matrix a = test::random_matrix(6, 4, rng);
  QrDecomposition qr(a);
  EXPECT_NEAR(max_abs_diff(qr.q_thin() * qr.r(), a), 0.0, 1e-10);
}

TEST(QrTest, ThinQHasOrthonormalColumns) {
  stats::Rng rng(2);
  const Matrix a = test::random_matrix(7, 3, rng);
  QrDecomposition qr(a);
  const Matrix qtq = qr.q_thin().transpose_times(qr.q_thin());
  EXPECT_NEAR(max_abs_diff(qtq, Matrix::identity(3)), 0.0, 1e-10);
}

TEST(QrTest, RIsUpperTriangular) {
  stats::Rng rng(3);
  const Matrix a = test::random_matrix(5, 5, rng);
  QrDecomposition qr(a);
  for (std::size_t i = 1; i < 5; ++i)
    for (std::size_t j = 0; j < i; ++j)
      EXPECT_NEAR(qr.r()(i, j), 0.0, 1e-12);
}

TEST(QrTest, FullRankDetection) {
  stats::Rng rng(4);
  const Matrix a = test::random_matrix(6, 4, rng);
  EXPECT_EQ(QrDecomposition(a).rank(), 4u);
}

TEST(QrTest, RankDeficientDetection) {
  // Third column = first + second.
  Matrix a(5, 3);
  stats::Rng rng(5);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = rng.gaussian();
    a(i, 1) = rng.gaussian();
    a(i, 2) = a(i, 0) + a(i, 1);
  }
  EXPECT_EQ(QrDecomposition(a).rank(), 2u);
}

TEST(QrTest, LeastSquaresMatchesExactSolve) {
  // Consistent overdetermined system: b in range(A).
  stats::Rng rng(6);
  const Matrix a = test::random_matrix(8, 3, rng);
  const Vector x_true = test::random_vector(3, rng);
  const Vector b = a * x_true;
  const Vector x = QrDecomposition(a).solve_least_squares(b);
  EXPECT_NEAR(max_abs_diff(x, x_true), 0.0, 1e-9);
}

TEST(QrTest, LeastSquaresResidualOrthogonalToRange) {
  stats::Rng rng(7);
  const Matrix a = test::random_matrix(10, 4, rng);
  const Vector b = test::random_vector(10, rng);
  const Vector x = QrDecomposition(a).solve_least_squares(b);
  const Vector r = b - a * x;
  const Vector atr = a.transpose_times(r);
  EXPECT_NEAR(atr.norm_inf(), 0.0, 1e-9);
}

TEST(QrTest, LeastSquaresThrowsOnRankDeficiency) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // parallel columns
  }
  EXPECT_THROW(QrDecomposition(a).solve_least_squares(Vector(4, 1.0)),
               std::runtime_error);
}

TEST(OrthonormalBasisTest, SpansInputAndIsOrthonormal) {
  stats::Rng rng(8);
  const Matrix a = test::random_matrix(7, 3, rng);
  const Matrix q = orthonormal_column_basis(a);
  ASSERT_EQ(q.cols(), 3u);
  EXPECT_NEAR(max_abs_diff(q.transpose_times(q), Matrix::identity(3)), 0.0,
              1e-10);
  // Projection of A onto span(Q) recovers A.
  const Matrix proj = q * q.transpose_times(a);
  EXPECT_NEAR(max_abs_diff(proj, a), 0.0, 1e-9);
}

TEST(OrthonormalBasisTest, DropsDependentColumns) {
  stats::Rng rng(9);
  Matrix a(6, 4);
  const Vector u = test::random_vector(6, rng);
  const Vector v = test::random_vector(6, rng);
  a.set_col(0, u);
  a.set_col(1, v);
  a.set_col(2, u + v);
  a.set_col(3, u - v);
  EXPECT_EQ(orthonormal_column_basis(a).cols(), 2u);
}

TEST(OrthonormalBasisTest, ZeroMatrixGivesEmptyBasis) {
  const Matrix a(5, 3);
  EXPECT_EQ(orthonormal_column_basis(a).cols(), 0u);
}

TEST(RankTest, WideMatrixUsesRowRank) {
  Matrix a{{1.0, 2.0, 3.0, 4.0}, {2.0, 4.0, 6.0, 8.0}};
  EXPECT_EQ(rank(a), 1u);
}

// Property: rank(A) == rank(A^T) == min(m, n) for random dense matrices.
class QrRankProperty : public ::testing::TestWithParam<int> {};

TEST_P(QrRankProperty, RandomMatricesHaveFullRank) {
  stats::Rng rng(GetParam() + 1000);
  const std::size_t m = 3 + static_cast<std::size_t>(GetParam()) % 5;
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 3;
  const Matrix a = test::random_matrix(m + n, n, rng);
  EXPECT_EQ(rank(a), n);
  EXPECT_EQ(rank(a.transposed()), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrRankProperty, ::testing::Range(0, 10));

// --- Householder thin-QR orthonormal basis ------------------------------

class QrBasisProperty : public ::testing::TestWithParam<int> {};

TEST_P(QrBasisProperty, BasisIsOrthonormalAndSpansColumnSpace) {
  stats::Rng rng(800 + GetParam());
  const std::size_t m = 8 + 9 * GetParam();
  const std::size_t n = 2 + GetParam() % 7;
  const Matrix a = test::random_matrix(m, n, rng);
  const Matrix q = orthonormal_basis_qr(a);
  ASSERT_EQ(q.rows(), m);
  ASSERT_EQ(q.cols(), n);
  // Q^T Q = I.
  const Matrix gram = q.transpose_times(q);
  EXPECT_LT(max_abs_diff(gram, Matrix::identity(n)), 1e-12);
  // Every column of a is reproduced by the projection Q Q^T a.
  const Matrix projected = q * q.transpose_times(a);
  EXPECT_LT(max_abs_diff(projected, a), 1e-10 * std::max(1.0, a.max_abs()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrBasisProperty, ::testing::Range(0, 8));

TEST(QrBasisTest, RankDeficientFallsBackToRankRevealingBasis) {
  stats::Rng rng(42);
  Matrix a = test::random_matrix(12, 4, rng);
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, 3) = 3.0 * a(i, 1);
  const Matrix q = orthonormal_basis_qr(a);
  EXPECT_EQ(q.cols(), 3u);
  const Matrix projected = q * q.transpose_times(a);
  EXPECT_LT(max_abs_diff(projected, a), 1e-9 * std::max(1.0, a.max_abs()));
}

TEST(QrBasisTest, EmptyMatrix) {
  const Matrix q = orthonormal_basis_qr(Matrix(5, 0));
  EXPECT_EQ(q.rows(), 5u);
  EXPECT_EQ(q.cols(), 0u);
}

}  // namespace
}  // namespace mtdgrid::linalg
