#include "linalg/sparse_cholesky.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

/// Arrow matrix: dense first row/column plus the diagonal. Eliminating
/// vertex 0 first fills the whole factor; any minimum-degree order
/// eliminates the spokes first and keeps L at O(n) entries.
SparseMatrix arrow_matrix(std::size_t n) {
  TripletBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i)
    builder.add(i, i, static_cast<double>(n) + 1.0);
  for (std::size_t i = 1; i < n; ++i) {
    builder.add(0, i, 1.0);
    builder.add(i, 0, 1.0);
  }
  return builder.build();
}

/// 1-D Laplacian (tridiagonal SPD), the canonical sparse test matrix.
SparseMatrix laplacian_1d(std::size_t n) {
  TripletBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 2.0 + 1e-3);
    if (i + 1 < n) {
      builder.add(i, i + 1, -1.0);
      builder.add(i + 1, i, -1.0);
    }
  }
  return builder.build();
}

std::vector<std::size_t> identity_perm(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  return perm;
}

// --- minimum-degree ordering --------------------------------------------

TEST(MinimumDegreeTest, ReturnsValidPermutation) {
  stats::Rng rng(21);
  const SparseMatrix a = SparseMatrix::from_dense(
      test::random_spd_matrix(12, rng), 1e-1);  // thin the pattern
  const SparseMatrix sym = arrow_matrix(9);
  for (const SparseMatrix& m : {a, sym}) {
    const std::vector<std::size_t> perm = minimum_degree_ordering(m);
    ASSERT_EQ(perm.size(), m.rows());
    std::vector<bool> seen(m.rows(), false);
    for (std::size_t p : perm) {
      ASSERT_LT(p, m.rows());
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
}

TEST(MinimumDegreeTest, IsDeterministic) {
  const SparseMatrix a = laplacian_1d(30);
  EXPECT_EQ(minimum_degree_ordering(a), minimum_degree_ordering(a));
}

TEST(MinimumDegreeTest, ArrowMatrixEliminatesHubLast) {
  // Vertex 0 has degree n-1, every spoke degree 1: the hub cannot be
  // eliminated until at most one spoke remains (its degree ties at 1 only
  // then), so the factor stays fill-free (2n - 1 stored entries) while
  // the natural order fills L completely.
  const std::size_t n = 20;
  const SparseMatrix a = arrow_matrix(n);
  const std::vector<std::size_t> perm = minimum_degree_ordering(a);
  const auto hub = std::find(perm.begin(), perm.end(), 0u);
  ASSERT_NE(hub, perm.end());
  EXPECT_GE(static_cast<std::size_t>(hub - perm.begin()), n - 2);

  const SparseCholesky amd_factor(a);
  ASSERT_FALSE(amd_factor.failed());
  EXPECT_EQ(amd_factor.factor_nnz(), 2 * n - 1);

  const SparseCholesky natural(a, identity_perm(n));
  ASSERT_FALSE(natural.failed());
  EXPECT_EQ(natural.factor_nnz(), n * (n + 1) / 2);  // fully filled
  EXPECT_LT(amd_factor.factor_nnz(), natural.factor_nnz());
}

// --- factorization and solve --------------------------------------------

class SparseCholeskyProperty : public ::testing::TestWithParam<int> {};

TEST_P(SparseCholeskyProperty, SolveMatchesDenseCholesky) {
  stats::Rng rng(200 + GetParam());
  const std::size_t n = 15;
  const Matrix dense = test::random_spd_matrix(n, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  const Vector b = test::random_vector(n, rng);

  const CholeskyDecomposition ref(dense);
  ASSERT_FALSE(ref.failed());
  const SparseCholesky chol(sparse);
  ASSERT_FALSE(chol.failed());
  EXPECT_LT(max_abs_diff(chol.solve(b), ref.solve(b)), 1e-9);
}

TEST_P(SparseCholeskyProperty, ExplicitPermutationGivesSameSolution) {
  stats::Rng rng(230 + GetParam());
  const std::size_t n = 12;
  const SparseMatrix a =
      SparseMatrix::from_dense(test::random_spd_matrix(n, rng));
  const Vector b = test::random_vector(n, rng);
  const SparseCholesky amd_factor(a);
  const SparseCholesky natural(a, identity_perm(n));
  ASSERT_FALSE(amd_factor.failed());
  ASSERT_FALSE(natural.failed());
  EXPECT_LT(max_abs_diff(amd_factor.solve(b), natural.solve(b)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseCholeskyProperty,
                         ::testing::Range(0, 10));

TEST(SparseCholeskyTest, SolveIsDeterministic) {
  stats::Rng rng(31);
  const SparseMatrix a = laplacian_1d(40);
  const Vector b = test::random_vector(40, rng);
  const SparseCholesky first(a);
  const SparseCholesky second(a);
  EXPECT_EQ(first.permutation(), second.permutation());
  EXPECT_EQ(max_abs_diff(first.solve(b), second.solve(b)), 0.0);
}

TEST(SparseCholeskyTest, LargeLaplacianResidualIsTiny) {
  const std::size_t n = 400;
  const SparseMatrix a = laplacian_1d(n);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = (i % 7) * 0.25 - 0.5;
  const SparseCholesky chol(a);
  ASSERT_FALSE(chol.failed());
  const Vector x = chol.solve(b);
  EXPECT_LT(max_abs_diff(a * x, b), 1e-8);
  // Tridiagonal: no ordering can beat 2n - 1 factor entries by much.
  EXPECT_LE(chol.factor_nnz(), 3 * n);
}

TEST(SparseCholeskyTest, FailsOnIndefiniteMatrix) {
  TripletBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -1.0);
  EXPECT_TRUE(SparseCholesky(builder.build()).failed());
}

TEST(SparseCholeskyTest, FailsOnSingularMatrix) {
  // Rank-1: [1 1; 1 1].
  TripletBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 1.0);
  EXPECT_TRUE(SparseCholesky(builder.build()).failed());
}

TEST(SparseCholeskyTest, FailsOnStructurallySingularMatrix) {
  // Empty row/column 1: no diagonal entry at all.
  TripletBuilder builder(3, 3);
  builder.add(0, 0, 2.0);
  builder.add(2, 2, 2.0);
  EXPECT_TRUE(SparseCholesky(builder.build()).failed());
}

// --- preconditioners and CG ---------------------------------------------

TEST(PreconditionerTest, JacobiInvertsTheDiagonal) {
  TripletBuilder builder(3, 3);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 4.0);
  builder.add(2, 2, 0.5);
  builder.add(0, 1, 1.0);  // off-diagonal ignored by Jacobi
  const JacobiPreconditioner m(builder.build());
  Vector r(3, 1.0);
  const Vector z = m.apply(r);
  EXPECT_DOUBLE_EQ(z[0], 0.5);
  EXPECT_DOUBLE_EQ(z[1], 0.25);
  EXPECT_DOUBLE_EQ(z[2], 2.0);
}

TEST(PreconditionerTest, JacobiRejectsNonPositiveDiagonal) {
  TripletBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -2.0);
  EXPECT_THROW(JacobiPreconditioner{builder.build()}, std::runtime_error);
}

TEST(PreconditionerTest, IncompleteCholeskyExactOnFillFreePattern) {
  // A tridiagonal matrix factors with zero fill, so IC(0) == exact
  // Cholesky and one apply solves the system outright.
  const std::size_t n = 25;
  const SparseMatrix a = laplacian_1d(n);
  const IncompleteCholeskyPreconditioner m(a);
  ASSERT_FALSE(m.failed());
  stats::Rng rng(41);
  const Vector b = test::random_vector(n, rng);
  EXPECT_LT(max_abs_diff(a * m.apply(b), b), 1e-10);
}

TEST(PreconditionerTest, IncompleteCholeskyFlagsMissingDiagonal) {
  TripletBuilder builder(2, 2);
  builder.add(0, 0, 1.0);  // no (1,1) entry
  const IncompleteCholeskyPreconditioner m(builder.build());
  EXPECT_TRUE(m.failed());
}

class CgProperty : public ::testing::TestWithParam<int> {};

TEST_P(CgProperty, ConvergesWithBothPreconditioners) {
  stats::Rng rng(300 + GetParam());
  const std::size_t n = 20;
  const SparseMatrix a =
      SparseMatrix::from_dense(test::random_spd_matrix(n, rng));
  const Vector b = test::random_vector(n, rng);
  const SparseCholesky direct(a);
  ASSERT_FALSE(direct.failed());
  const Vector x_ref = direct.solve(b);

  const JacobiPreconditioner jacobi(a);
  const CgResult rj = preconditioned_cg(a, b, jacobi);
  EXPECT_TRUE(rj.converged);
  EXPECT_LT(rj.relative_residual, 1e-10);
  EXPECT_LT(max_abs_diff(rj.x, x_ref), 1e-7);

  const IncompleteCholeskyPreconditioner ic(a);
  ASSERT_FALSE(ic.failed());
  const CgResult ri = preconditioned_cg(a, b, ic);
  EXPECT_TRUE(ri.converged);
  EXPECT_LT(ri.relative_residual, 1e-10);
  EXPECT_LT(max_abs_diff(ri.x, x_ref), 1e-7);
  // IC(0) must not be weaker than diagonal scaling on these systems.
  EXPECT_LE(ri.iterations, rj.iterations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgProperty, ::testing::Range(0, 10));

TEST(CgTest, ZeroRhsConvergesImmediately) {
  const SparseMatrix a = laplacian_1d(10);
  const JacobiPreconditioner m(a);
  const CgResult r = preconditioned_cg(a, Vector(10), m);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(r.x.norm(), 0.0);
}

TEST(CgTest, IterationCapStopsUnconverged) {
  stats::Rng rng(51);
  const SparseMatrix a =
      SparseMatrix::from_dense(test::random_spd_matrix(30, rng));
  const Vector b = test::random_vector(30, rng);
  const JacobiPreconditioner m(a);
  CgOptions options;
  options.max_iterations = 1;
  const CgResult r = preconditioned_cg(a, b, m, options);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_GT(r.relative_residual, 1e-12);
}

TEST(CgTest, IsDeterministic) {
  stats::Rng rng(52);
  const SparseMatrix a =
      SparseMatrix::from_dense(test::random_spd_matrix(16, rng));
  const Vector b = test::random_vector(16, rng);
  const IncompleteCholeskyPreconditioner m(a);
  ASSERT_FALSE(m.failed());
  const CgResult r1 = preconditioned_cg(a, b, m);
  const CgResult r2 = preconditioned_cg(a, b, m);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(max_abs_diff(r1.x, r2.x), 0.0);
}

}  // namespace
}  // namespace mtdgrid::linalg
