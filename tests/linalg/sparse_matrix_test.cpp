#include "linalg/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

/// Random sparse-ish dense matrix: each entry nonzero with probability p.
Matrix random_sparse_dense(std::size_t rows, std::size_t cols,
                           stats::Rng& rng, double p = 0.3) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if (rng.uniform() < p) m(i, j) = rng.gaussian();
  return m;
}

TEST(SparseMatrixTest, EmptyMatrixHasNoEntries) {
  const SparseMatrix a(4, 7);
  EXPECT_EQ(a.rows(), 4u);
  EXPECT_EQ(a.cols(), 7u);
  EXPECT_EQ(a.nnz(), 0u);
  EXPECT_EQ(a.coeff(2, 3), 0.0);
  EXPECT_EQ(a.max_abs(), 0.0);
  const Matrix d = a.to_dense();
  EXPECT_EQ(d.rows(), 4u);
  EXPECT_EQ(d.cols(), 7u);
  EXPECT_EQ(d.max_abs(), 0.0);
}

TEST(SparseMatrixTest, FromDenseToDenseRoundTripIsExact) {
  stats::Rng rng(11);
  const Matrix d = random_sparse_dense(9, 6, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d);
  EXPECT_EQ(max_abs_diff(s.to_dense(), d), 0.0);
}

TEST(SparseMatrixTest, FromDenseDropsBelowTolerance) {
  Matrix d(2, 2);
  d(0, 0) = 1.0;
  d(0, 1) = 1e-14;
  d(1, 1) = -2.0;
  const SparseMatrix s = SparseMatrix::from_dense(d, 1e-12);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_EQ(s.coeff(0, 0), 1.0);
  EXPECT_EQ(s.coeff(0, 1), 0.0);
  EXPECT_EQ(s.coeff(1, 1), -2.0);
}

TEST(SparseMatrixTest, CsrLayoutInvariantsHold) {
  stats::Rng rng(12);
  const SparseMatrix s =
      SparseMatrix::from_dense(random_sparse_dense(20, 15, rng));
  ASSERT_EQ(s.row_ptr().size(), 21u);
  EXPECT_EQ(s.row_ptr().front(), 0u);
  EXPECT_EQ(s.row_ptr().back(), s.nnz());
  for (std::size_t i = 0; i < s.rows(); ++i) {
    ASSERT_LE(s.row_ptr()[i], s.row_ptr()[i + 1]);
    // Column indices strictly ascending inside the row.
    for (std::size_t k = s.row_ptr()[i] + 1; k < s.row_ptr()[i + 1]; ++k)
      EXPECT_LT(s.col_idx()[k - 1], s.col_idx()[k]);
  }
}

TEST(SparseMatrixTest, CoeffReadsAnyEntry) {
  stats::Rng rng(13);
  const Matrix d = random_sparse_dense(8, 8, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) EXPECT_EQ(s.coeff(i, j), d(i, j));
}

TEST(SparseMatrixTest, TripletBuilderSumsDuplicatesInInsertionOrder) {
  // The bit-exactness contract: an entry assembled from several triplets
  // equals the left-to-right sum of the contributions, exactly as a dense
  // `+=` loop over the same emissions would produce.
  const double a = 0.1, b = 0.3, c = -0.7;
  TripletBuilder builder(2, 2);
  builder.add(1, 0, a);
  builder.add(0, 1, 5.0);
  builder.add(1, 0, b);
  builder.add(1, 0, c);
  const SparseMatrix s = builder.build();
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_EQ(s.coeff(1, 0), a + b + c);  // exact ==, not NEAR
  EXPECT_EQ(s.coeff(0, 1), 5.0);
}

TEST(SparseMatrixTest, TripletBuilderKeepsExplicitZeros) {
  TripletBuilder builder(3, 3);
  builder.add(0, 0, 0.0);
  builder.add(2, 1, 1.0);
  builder.add(2, 1, -1.0);
  const SparseMatrix s = builder.build();
  EXPECT_EQ(s.nnz(), 2u);  // both stored, both zero-valued
  EXPECT_EQ(s.coeff(0, 0), 0.0);
  EXPECT_EQ(s.coeff(2, 1), 0.0);
}

TEST(SparseMatrixTest, TripletBuilderIsReusable) {
  TripletBuilder builder(2, 2);
  builder.add(0, 0, 2.0);
  const SparseMatrix first = builder.build();
  const SparseMatrix second = builder.build();
  EXPECT_EQ(max_abs_diff(first, second), 0.0);
  EXPECT_EQ(second.coeff(0, 0), 2.0);
}

TEST(SparseMatrixTest, MatrixVectorProductMatchesDense) {
  stats::Rng rng(14);
  const Matrix d = random_sparse_dense(12, 7, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d);
  const Vector v = test::random_vector(7, rng);
  EXPECT_LT(max_abs_diff(s * v, d * v), 1e-14);
}

TEST(SparseMatrixTest, TransposeTimesMatchesDense) {
  stats::Rng rng(15);
  const Matrix d = random_sparse_dense(12, 7, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d);
  const Vector v = test::random_vector(12, rng);
  EXPECT_LT(max_abs_diff(s.transpose_times(v), d.transpose_times(v)),
            1e-14);
}

TEST(SparseMatrixTest, TransposedMatchesDenseTranspose) {
  stats::Rng rng(16);
  const Matrix d = random_sparse_dense(10, 6, rng);
  const SparseMatrix st = SparseMatrix::from_dense(d).transposed();
  EXPECT_EQ(st.rows(), 6u);
  EXPECT_EQ(st.cols(), 10u);
  EXPECT_EQ(max_abs_diff(st.to_dense(), d.transposed()), 0.0);
}

TEST(SparseMatrixTest, CscViewMatchesColumnScan) {
  stats::Rng rng(17);
  const Matrix d = random_sparse_dense(9, 5, rng);
  const SparseMatrix s = SparseMatrix::from_dense(d);
  const CscView csc = s.csc();
  EXPECT_EQ(csc.rows, 9u);
  EXPECT_EQ(csc.cols, 5u);
  ASSERT_EQ(csc.col_ptr.size(), 6u);
  EXPECT_EQ(csc.col_ptr.back(), s.nnz());
  Matrix rebuilt(9, 5);
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t k = csc.col_ptr[j]; k < csc.col_ptr[j + 1]; ++k)
      rebuilt(csc.row_idx[k], j) = csc.values[k];
  EXPECT_EQ(max_abs_diff(rebuilt, d), 0.0);
}

TEST(SparseMatrixTest, MaxAbsMatchesDense) {
  stats::Rng rng(18);
  const Matrix d = random_sparse_dense(11, 11, rng);
  EXPECT_EQ(SparseMatrix::from_dense(d).max_abs(), d.max_abs());
}

TEST(SparseMatrixTest, MaxAbsDiffWalksPatternUnion) {
  TripletBuilder ba(2, 2);
  ba.add(0, 0, 1.0);
  ba.add(1, 1, 3.0);
  TripletBuilder bb(2, 2);
  bb.add(0, 1, -2.0);
  bb.add(1, 1, 3.5);
  const SparseMatrix a = ba.build();
  const SparseMatrix b = bb.build();
  // Union pattern: (0,0) diff 1, (0,1) diff 2, (1,1) diff 0.5.
  EXPECT_EQ(max_abs_diff(a, b), 2.0);
  EXPECT_EQ(max_abs_diff(a, a), 0.0);
}

// --- weighted Gram ------------------------------------------------------

class SparseGramProperty : public ::testing::TestWithParam<int> {};

TEST_P(SparseGramProperty, WeightedGramMatchesDenseNormalEquations) {
  stats::Rng rng(100 + GetParam());
  const std::size_t m = 18, n = 7;
  const Matrix d = random_sparse_dense(m, n, rng, 0.4);
  Vector w(m);
  for (std::size_t i = 0; i < m; ++i) w[i] = rng.uniform(0.1, 2.0);

  const SparseMatrix gram = SparseMatrix::from_dense(d).weighted_gram(w);
  EXPECT_EQ(gram.rows(), n);
  EXPECT_EQ(gram.cols(), n);

  Matrix expected(n, n);
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        expected(i, j) += w[k] * d(k, i) * d(k, j);
  EXPECT_LT(max_abs_diff(gram.to_dense(), expected),
            1e-12 * std::max(1.0, expected.max_abs()));

  // Symmetry is exact: entry (i,j) and (j,i) accumulate the same products
  // in the same row-major scan order.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(gram.coeff(i, j), gram.coeff(j, i));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseGramProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace mtdgrid::linalg
