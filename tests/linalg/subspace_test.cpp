#include "linalg/subspace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

TEST(SubspaceTest, IdenticalSubspacesHaveZeroAngles) {
  stats::Rng rng(1);
  const Matrix a = test::random_matrix(6, 3, rng);
  const auto angles = principal_angles(a, a * 2.0);
  ASSERT_EQ(angles.size(), 3u);
  for (double theta : angles) EXPECT_NEAR(theta, 0.0, 1e-7);
}

TEST(SubspaceTest, OrthogonalAxesGiveRightAngle) {
  // span{e1} vs span{e2} in R^3.
  Matrix a{{1.0}, {0.0}, {0.0}};
  Matrix b{{0.0}, {1.0}, {0.0}};
  EXPECT_NEAR(smallest_principal_angle(a, b), std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(largest_principal_angle(a, b), std::numbers::pi / 2, 1e-12);
}

TEST(SubspaceTest, KnownRotationAngle) {
  // span{e1} vs span{cos t * e1 + sin t * e2}.
  const double t = 0.3;
  Matrix a{{1.0}, {0.0}};
  Matrix b{{std::cos(t)}, {std::sin(t)}};
  EXPECT_NEAR(smallest_principal_angle(a, b), t, 1e-12);
}

TEST(SubspaceTest, PlaneVsRotatedPlaneMixedAngles) {
  // span{e1, e2} vs span{e1, cos t * e2 + sin t * e3}: angles {0, t}.
  const double t = 0.7;
  Matrix a{{1.0, 0.0}, {0.0, 1.0}, {0.0, 0.0}};
  Matrix b{{1.0, 0.0}, {0.0, std::cos(t)}, {0.0, std::sin(t)}};
  const auto angles = principal_angles(a, b);
  ASSERT_EQ(angles.size(), 2u);
  EXPECT_NEAR(angles[0], 0.0, 1e-10);
  EXPECT_NEAR(angles[1], t, 1e-10);
}

TEST(SubspaceTest, AnglesAreSymmetric) {
  stats::Rng rng(2);
  const Matrix a = test::random_matrix(8, 3, rng);
  const Matrix b = test::random_matrix(8, 4, rng);
  const auto ab = principal_angles(a, b);
  const auto ba = principal_angles(b, a);
  ASSERT_EQ(ab.size(), ba.size());
  for (std::size_t i = 0; i < ab.size(); ++i)
    EXPECT_NEAR(ab[i], ba[i], 1e-9);
}

TEST(SubspaceTest, AngleCountIsMinRank) {
  stats::Rng rng(3);
  const Matrix a = test::random_matrix(9, 2, rng);
  const Matrix b = test::random_matrix(9, 5, rng);
  EXPECT_EQ(principal_angles(a, b).size(), 2u);
}

TEST(SubspaceTest, ColumnSpaceContainsItsOwnColumns) {
  stats::Rng rng(4);
  const Matrix a = test::random_matrix(7, 3, rng);
  EXPECT_TRUE(column_space_contains(a, a.block(0, 0, 7, 2)));
}

TEST(SubspaceTest, ColumnSpaceContainsLinearCombinations) {
  stats::Rng rng(5);
  const Matrix a = test::random_matrix(6, 3, rng);
  const Vector c = test::random_vector(3, rng);
  EXPECT_TRUE(column_space_contains(a, Matrix::column(a * c)));
}

TEST(SubspaceTest, ColumnSpaceRejectsIndependentVector) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}, {0.0, 0.0}};
  Matrix b{{0.0}, {0.0}, {1.0}};
  EXPECT_FALSE(column_space_contains(a, b));
}

TEST(SubspaceTest, ContainsZeroVectorTrivially) {
  stats::Rng rng(6);
  const Matrix a = test::random_matrix(5, 2, rng);
  EXPECT_TRUE(column_space_contains(a, Matrix(5, 1)));
}

// Property: all principal angles lie in [0, pi/2] and are sorted.
class SubspaceProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubspaceProperty, AnglesSortedInRange) {
  stats::Rng rng(GetParam() + 30);
  const Matrix a = test::random_matrix(10, 3, rng);
  const Matrix b = test::random_matrix(10, 4, rng);
  const auto angles = principal_angles(a, b);
  for (std::size_t i = 0; i < angles.size(); ++i) {
    EXPECT_GE(angles[i], 0.0);
    EXPECT_LE(angles[i], std::numbers::pi / 2 + 1e-12);
    if (i > 0) EXPECT_GE(angles[i], angles[i - 1]);
  }
}

TEST_P(SubspaceProperty, SharedColumnForcesZeroSmallestAngle) {
  stats::Rng rng(GetParam() + 70);
  const Vector shared = test::random_vector(8, rng);
  Matrix a(8, 2), b(8, 3);
  a.set_col(0, shared);
  a.set_col(1, test::random_vector(8, rng));
  b.set_col(0, shared * -2.5);
  b.set_col(1, test::random_vector(8, rng));
  b.set_col(2, test::random_vector(8, rng));
  EXPECT_NEAR(smallest_principal_angle(a, b), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubspaceProperty, ::testing::Range(0, 10));

// --- thin-QR fast path vs the Bjorck-Golub reference --------------------

class QrPathProperty : public ::testing::TestWithParam<int> {};

TEST_P(QrPathProperty, PrincipalAnglesQrMatchesSvdPathOnRandomTall) {
  stats::Rng rng(900 + GetParam());
  const std::size_t m = 12 + 7 * GetParam();
  const std::size_t n = 3 + GetParam() % 6;
  const Matrix a = test::random_matrix(m, n, rng);
  const Matrix b = test::random_matrix(m, n, rng);
  const auto reference = principal_angles(a, b);
  const auto fast = principal_angles_qr(a, b);
  ASSERT_EQ(reference.size(), fast.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // Compare cosines: for angles near 0 the acos of either route has
    // ~sqrt(eps) absolute error, but the cosines agree to ~1e-12.
    EXPECT_NEAR(std::cos(reference[i]), std::cos(fast[i]), 1e-12);
  }
  // The largest angle of a generic random pair is well separated from 0,
  // where both routes are well conditioned: demand 1e-10 in radians.
  EXPECT_NEAR(reference.back(), fast.back(), 1e-10);
  EXPECT_NEAR(largest_principal_angle_qr(a, b), reference.back(), 1e-10);
}

TEST_P(QrPathProperty, LargestAngleQrMatchesOnOverlappingSubspaces) {
  // Subspaces that share directions (the D-FACTS situation: most of the
  // column space is untouched).
  stats::Rng rng(950 + GetParam());
  const std::size_t m = 20;
  const Matrix shared = test::random_matrix(m, 4, rng);
  const Matrix a = shared.hstack(test::random_matrix(m, 2, rng));
  const Matrix b = shared.hstack(test::random_matrix(m, 2, rng));
  EXPECT_NEAR(largest_principal_angle_qr(a, b),
              largest_principal_angle(a, b), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrPathProperty, ::testing::Range(0, 10));

TEST(SubspaceTest, QrPathIdenticalSubspaces) {
  stats::Rng rng(33);
  const Matrix a = test::random_matrix(9, 4, rng);
  const auto angles = principal_angles_qr(a, a * -1.5);
  ASSERT_EQ(angles.size(), 4u);
  for (double theta : angles) EXPECT_NEAR(theta, 0.0, 1e-7);
}

TEST(SubspaceTest, QrPathOrthogonalSubspaces) {
  Matrix a{{1.0}, {0.0}, {0.0}};
  Matrix b{{0.0}, {1.0}, {0.0}};
  EXPECT_NEAR(largest_principal_angle_qr(a, b), std::numbers::pi / 2,
              1e-12);
}

TEST(SubspaceTest, QrPathHandlesRankDeficientInput) {
  // Third column is a combination of the first two: the QR basis must fall
  // back to the rank-revealing route and still return min-rank angles.
  stats::Rng rng(34);
  Matrix a = test::random_matrix(10, 3, rng);
  for (std::size_t i = 0; i < a.rows(); ++i)
    a(i, 2) = a(i, 0) - 2.0 * a(i, 1);
  const Matrix b = test::random_matrix(10, 3, rng);
  const auto reference = principal_angles(a, b);
  const auto fast = principal_angles_qr(a, b);
  ASSERT_EQ(reference.size(), 2u);
  ASSERT_EQ(fast.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(std::cos(reference[i]), std::cos(fast[i]), 1e-10);
}

}  // namespace
}  // namespace mtdgrid::linalg
