#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

Matrix reconstruct(const SvdDecomposition& svd) {
  const Matrix sigma = Matrix::diagonal(svd.singular_values());
  return svd.u() * sigma * svd.v().transposed();
}

TEST(SvdTest, DiagonalMatrixSingularValues) {
  Matrix a = Matrix::diagonal(Vector{3.0, 1.0, 2.0});
  SvdDecomposition svd(a);
  ASSERT_EQ(svd.singular_values().size(), 3u);
  EXPECT_NEAR(svd.singular_values()[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.singular_values()[1], 2.0, 1e-12);
  EXPECT_NEAR(svd.singular_values()[2], 1.0, 1e-12);
}

TEST(SvdTest, SingularValuesSortedDescending) {
  stats::Rng rng(1);
  const Matrix a = test::random_matrix(8, 5, rng);
  SvdDecomposition svd(a);
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_GE(svd.singular_values()[i - 1], svd.singular_values()[i]);
}

TEST(SvdTest, ReconstructsTallMatrix) {
  stats::Rng rng(2);
  const Matrix a = test::random_matrix(7, 4, rng);
  EXPECT_NEAR(max_abs_diff(reconstruct(SvdDecomposition(a)), a), 0.0, 1e-9);
}

TEST(SvdTest, ReconstructsWideMatrix) {
  stats::Rng rng(3);
  const Matrix a = test::random_matrix(3, 6, rng);
  EXPECT_NEAR(max_abs_diff(reconstruct(SvdDecomposition(a)), a), 0.0, 1e-9);
}

TEST(SvdTest, FactorsAreOrthonormal) {
  stats::Rng rng(4);
  const Matrix a = test::random_matrix(6, 4, rng);
  SvdDecomposition svd(a);
  EXPECT_NEAR(
      max_abs_diff(svd.u().transpose_times(svd.u()), Matrix::identity(4)),
      0.0, 1e-10);
  EXPECT_NEAR(
      max_abs_diff(svd.v().transpose_times(svd.v()), Matrix::identity(4)),
      0.0, 1e-10);
}

TEST(SvdTest, RankOfLowRankMatrix) {
  // Outer product: rank 1.
  stats::Rng rng(5);
  const Vector u = test::random_vector(6, rng);
  const Vector v = test::random_vector(4, rng);
  Matrix a(6, 4);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = u[i] * v[j];
  EXPECT_EQ(SvdDecomposition(a).rank(), 1u);
}

TEST(SvdTest, SigmaMaxIsSpectralNorm) {
  // For an orthogonal projection-like known matrix.
  Matrix a{{2.0, 0.0}, {0.0, 0.5}};
  SvdDecomposition svd(a);
  EXPECT_NEAR(svd.sigma_max(), 2.0, 1e-12);
  EXPECT_NEAR(svd.sigma_min(), 0.5, 1e-12);
}

TEST(SvdTest, EmptyMatrix) {
  SvdDecomposition svd(Matrix{});
  EXPECT_EQ(svd.rank(), 0u);
  EXPECT_DOUBLE_EQ(svd.sigma_max(), 0.0);
}

TEST(SvdTest, ZeroMatrixHasZeroRank) {
  SvdDecomposition svd(Matrix(4, 3));
  EXPECT_EQ(svd.rank(), 0u);
}

// Property: Frobenius norm equals the 2-norm of the singular values, and
// the SVD of A^T has the same spectrum.
class SvdProperty : public ::testing::TestWithParam<int> {};

TEST_P(SvdProperty, FrobeniusMatchesSingularValues) {
  stats::Rng rng(GetParam() + 10);
  const std::size_t m = 3 + static_cast<std::size_t>(GetParam()) % 5;
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 4;
  const Matrix a = test::random_matrix(m, n, rng);
  SvdDecomposition svd(a);
  EXPECT_NEAR(svd.singular_values().norm(), a.frobenius_norm(), 1e-9);
}

TEST_P(SvdProperty, TransposeHasSameSpectrum) {
  stats::Rng rng(GetParam() + 60);
  const Matrix a = test::random_matrix(5, 3, rng);
  SvdDecomposition s1(a);
  SvdDecomposition s2(a.transposed());
  EXPECT_NEAR(max_abs_diff(s1.singular_values(), s2.singular_values()), 0.0,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvdProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace mtdgrid::linalg
