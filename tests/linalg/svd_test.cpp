#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::linalg {
namespace {

Matrix reconstruct(const SvdDecomposition& svd) {
  const Matrix sigma = Matrix::diagonal(svd.singular_values());
  return svd.u() * sigma * svd.v().transposed();
}

TEST(SvdTest, DiagonalMatrixSingularValues) {
  Matrix a = Matrix::diagonal(Vector{3.0, 1.0, 2.0});
  SvdDecomposition svd(a);
  ASSERT_EQ(svd.singular_values().size(), 3u);
  EXPECT_NEAR(svd.singular_values()[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.singular_values()[1], 2.0, 1e-12);
  EXPECT_NEAR(svd.singular_values()[2], 1.0, 1e-12);
}

TEST(SvdTest, SingularValuesSortedDescending) {
  stats::Rng rng(1);
  const Matrix a = test::random_matrix(8, 5, rng);
  SvdDecomposition svd(a);
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_GE(svd.singular_values()[i - 1], svd.singular_values()[i]);
}

TEST(SvdTest, ReconstructsTallMatrix) {
  stats::Rng rng(2);
  const Matrix a = test::random_matrix(7, 4, rng);
  EXPECT_NEAR(max_abs_diff(reconstruct(SvdDecomposition(a)), a), 0.0, 1e-9);
}

TEST(SvdTest, ReconstructsWideMatrix) {
  stats::Rng rng(3);
  const Matrix a = test::random_matrix(3, 6, rng);
  EXPECT_NEAR(max_abs_diff(reconstruct(SvdDecomposition(a)), a), 0.0, 1e-9);
}

TEST(SvdTest, FactorsAreOrthonormal) {
  stats::Rng rng(4);
  const Matrix a = test::random_matrix(6, 4, rng);
  SvdDecomposition svd(a);
  EXPECT_NEAR(
      max_abs_diff(svd.u().transpose_times(svd.u()), Matrix::identity(4)),
      0.0, 1e-10);
  EXPECT_NEAR(
      max_abs_diff(svd.v().transpose_times(svd.v()), Matrix::identity(4)),
      0.0, 1e-10);
}

TEST(SvdTest, RankOfLowRankMatrix) {
  // Outer product: rank 1.
  stats::Rng rng(5);
  const Vector u = test::random_vector(6, rng);
  const Vector v = test::random_vector(4, rng);
  Matrix a(6, 4);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = u[i] * v[j];
  EXPECT_EQ(SvdDecomposition(a).rank(), 1u);
}

TEST(SvdTest, SigmaMaxIsSpectralNorm) {
  // For an orthogonal projection-like known matrix.
  Matrix a{{2.0, 0.0}, {0.0, 0.5}};
  SvdDecomposition svd(a);
  EXPECT_NEAR(svd.sigma_max(), 2.0, 1e-12);
  EXPECT_NEAR(svd.sigma_min(), 0.5, 1e-12);
}

TEST(SvdTest, EmptyMatrix) {
  SvdDecomposition svd(Matrix{});
  EXPECT_EQ(svd.rank(), 0u);
  EXPECT_DOUBLE_EQ(svd.sigma_max(), 0.0);
}

TEST(SvdTest, ZeroMatrixHasZeroRank) {
  SvdDecomposition svd(Matrix(4, 3));
  EXPECT_EQ(svd.rank(), 0u);
}

// Property: Frobenius norm equals the 2-norm of the singular values, and
// the SVD of A^T has the same spectrum.
class SvdProperty : public ::testing::TestWithParam<int> {};

TEST_P(SvdProperty, FrobeniusMatchesSingularValues) {
  stats::Rng rng(GetParam() + 10);
  const std::size_t m = 3 + static_cast<std::size_t>(GetParam()) % 5;
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 4;
  const Matrix a = test::random_matrix(m, n, rng);
  SvdDecomposition svd(a);
  EXPECT_NEAR(svd.singular_values().norm(), a.frobenius_norm(), 1e-9);
}

TEST_P(SvdProperty, TransposeHasSameSpectrum) {
  stats::Rng rng(GetParam() + 60);
  const Matrix a = test::random_matrix(5, 3, rng);
  SvdDecomposition s1(a);
  SvdDecomposition s2(a.transposed());
  EXPECT_NEAR(max_abs_diff(s1.singular_values(), s2.singular_values()), 0.0,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvdProperty, ::testing::Range(0, 12));

// --- extreme singular values via Sturm bisection ------------------------

class ExtremeSigmaProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExtremeSigmaProperty, MatchesJacobiOnRandomMatrices) {
  stats::Rng rng(700 + GetParam());
  const std::size_t m = 2 + (GetParam() * 7) % 40;
  const std::size_t n = 1 + (GetParam() * 5) % 17;
  const Matrix a = test::random_matrix(m, n, rng);
  const SvdDecomposition svd(a);
  const double scale = std::max(1.0, svd.sigma_max());
  EXPECT_NEAR(smallest_singular_value(a), svd.sigma_min(), 1e-11 * scale);
  EXPECT_NEAR(largest_singular_value(a), svd.sigma_max(), 1e-11 * scale);
}

TEST_P(ExtremeSigmaProperty, MatchesJacobiOnNearSingularMatrices) {
  // Last column nearly dependent: sigma_min is tiny but must still agree.
  stats::Rng rng(750 + GetParam());
  const std::size_t n = 4 + GetParam() % 5;
  Matrix a = test::random_matrix(n + 3, n, rng);
  for (std::size_t i = 0; i < a.rows(); ++i)
    a(i, n - 1) = a(i, 0) + 1e-7 * a(i, 1);
  const SvdDecomposition svd(a);
  // The Gram route resolves sigma_min only to ~sqrt(eps) * sigma_max when
  // the matrix is (near-)singular — the documented accuracy floor.
  const double scale = std::max(1.0, svd.sigma_max());
  EXPECT_NEAR(smallest_singular_value(a), svd.sigma_min(), 1e-7 * scale);
  EXPECT_NEAR(largest_singular_value(a), svd.sigma_max(), 1e-11 * scale);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtremeSigmaProperty,
                         ::testing::Range(0, 12));

TEST(ExtremeSigmaTest, DegenerateShapes) {
  EXPECT_EQ(smallest_singular_value(Matrix(0, 0)), 0.0);
  EXPECT_EQ(largest_singular_value(Matrix(3, 0)), 0.0);
  Matrix one{{2.0}};
  EXPECT_NEAR(smallest_singular_value(one), 2.0, 1e-14);
  EXPECT_NEAR(largest_singular_value(one), 2.0, 1e-14);
  // Wide matrix: thin sigma set has min(m, n) entries.
  Matrix wide{{3.0, 0.0, 0.0}, {0.0, 4.0, 0.0}};
  EXPECT_NEAR(smallest_singular_value(wide), 3.0, 1e-12);
  EXPECT_NEAR(largest_singular_value(wide), 4.0, 1e-12);
}

TEST(ExtremeSigmaTest, ExactlySingularMatrix) {
  // sqrt(eps)-floor again: an exact zero comes back as ~1e-8 * sigma_max.
  Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_NEAR(smallest_singular_value(a), 0.0, 1e-6);
}

}  // namespace
}  // namespace mtdgrid::linalg
