#include "linalg/vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mtdgrid::linalg {
namespace {

TEST(VectorTest, DefaultConstructedIsEmpty) {
  Vector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(VectorTest, SizeValueConstructor) {
  Vector v(3, 2.5);
  ASSERT_EQ(v.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(v[i], 2.5);
}

TEST(VectorTest, InitializerListConstructor) {
  Vector v{1.0, -2.0, 3.0};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], -2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(VectorTest, AdditionAndSubtraction) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  Vector sum = a + b;
  Vector diff = b - a;
  EXPECT_DOUBLE_EQ(sum[0], 5.0);
  EXPECT_DOUBLE_EQ(sum[2], 9.0);
  EXPECT_DOUBLE_EQ(diff[0], 3.0);
  EXPECT_DOUBLE_EQ(diff[2], 3.0);
}

TEST(VectorTest, ScalarMultiplicationAndDivision) {
  Vector v{2.0, -4.0};
  EXPECT_DOUBLE_EQ((v * 0.5)[0], 1.0);
  EXPECT_DOUBLE_EQ((2.0 * v)[1], -8.0);
  EXPECT_DOUBLE_EQ((v / 2.0)[1], -2.0);
  EXPECT_DOUBLE_EQ((-v)[0], -2.0);
}

TEST(VectorTest, Norms) {
  Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm1(), 7.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
}

TEST(VectorTest, SumAndDot) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 4.0 - 10.0 + 18.0);
}

TEST(VectorTest, DotIsSymmetric) {
  Vector a{1.5, -2.5, 0.25};
  Vector b{3.0, 0.5, -1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), b.dot(a));
}

TEST(VectorTest, Hadamard) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{2.0, 0.5, -1.0};
  Vector h = a.hadamard(b);
  EXPECT_DOUBLE_EQ(h[0], 2.0);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
  EXPECT_DOUBLE_EQ(h[2], -3.0);
}

TEST(VectorTest, SegmentExtractsSlice) {
  Vector v{0.0, 1.0, 2.0, 3.0, 4.0};
  Vector s = v.segment(1, 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[2], 3.0);
}

TEST(VectorTest, ConcatJoins) {
  Vector a{1.0, 2.0};
  Vector b{3.0};
  Vector c = a.concat(b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
}

TEST(VectorTest, MaxAbsDiff) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{1.1, 1.5, 3.0};
  EXPECT_NEAR(max_abs_diff(a, b), 0.5, 1e-15);
}

TEST(VectorTest, RangeForIteration) {
  Vector v{1.0, 2.0, 3.0};
  double total = 0.0;
  for (double x : v) total += x;
  EXPECT_DOUBLE_EQ(total, 6.0);
}

TEST(VectorTest, EmptyVectorNormsAreZero) {
  Vector v;
  EXPECT_DOUBLE_EQ(v.norm(), 0.0);
  EXPECT_DOUBLE_EQ(v.norm1(), 0.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 0.0);
  EXPECT_DOUBLE_EQ(v.sum(), 0.0);
}

TEST(VectorTest, CompoundAssignment) {
  Vector v{1.0, 2.0};
  v += Vector{1.0, 1.0};
  v -= Vector{0.5, 0.5};
  v *= 2.0;
  v /= 4.0;
  EXPECT_DOUBLE_EQ(v[0], 0.75);
  EXPECT_DOUBLE_EQ(v[1], 1.25);
}

// Property: the triangle inequality holds for the 2-norm.
class VectorNormProperty : public ::testing::TestWithParam<int> {};

TEST_P(VectorNormProperty, TriangleInequality) {
  const int seed = GetParam();
  Vector a(8), b(8);
  // Simple deterministic pseudo-random fill.
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
  const auto next = [&] {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state % 2000) / 100.0 - 10.0;
  };
  for (std::size_t i = 0; i < 8; ++i) {
    a[i] = next();
    b[i] = next();
  }
  EXPECT_LE((a + b).norm(), a.norm() + b.norm() + 1e-12);
  EXPECT_LE(std::abs(a.dot(b)), a.norm() * b.norm() + 1e-12);  // Cauchy-Schwarz
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorNormProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace mtdgrid::linalg
