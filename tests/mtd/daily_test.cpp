#include "mtd/daily.hpp"

#include <gtest/gtest.h>

#include "grid/cases.hpp"

namespace mtdgrid::mtd {
namespace {

DailySimulationOptions fast_options() {
  DailySimulationOptions opt;
  opt.effectiveness.num_attacks = 120;
  opt.selection.extra_starts = 2;
  opt.selection.search.max_evaluations = 400;
  opt.gamma_grid = {0.05, 0.15, 0.25};
  return opt;
}

TEST(DailyTest, ProducesCompleteFeasibleDay) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(1);
  const auto records = run_daily_simulation(sys, trace, fast_options(), rng);
  ASSERT_EQ(records.size(), 24u);
  for (const HourlyRecord& r : records) {
    EXPECT_TRUE(r.feasible) << "hour " << r.hour;
    EXPECT_DOUBLE_EQ(r.total_load_mw, trace.total_mw(r.hour));
    EXPECT_GT(r.base_opf_cost, 0.0);
    EXPECT_GE(r.cost_increase_pct, 0.0);
    EXPECT_GT(r.eta_at_target, 0.0);
  }
}

TEST(DailyTest, NaturalReactanceDriftIsSmall) {
  // gamma(H_t, H_t') must be nearly zero across the day (paper Fig. 11):
  // the warm-started hourly OPF tracks the slowly varying load.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(2);
  const auto records = run_daily_simulation(sys, trace, fast_options(), rng);
  double max_drift = 0.0;
  for (const HourlyRecord& r : records)
    max_drift = std::max(max_drift, r.gamma_ht_htp);
  EXPECT_LT(max_drift, 0.12);
}

TEST(DailyTest, MtdAnglesDominateNaturalDrift) {
  // The deliberate perturbation must rotate the column space much more
  // than the natural load-driven drift does.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(3);
  const auto records = run_daily_simulation(sys, trace, fast_options(), rng);
  double mean_mtd = 0.0, mean_drift = 0.0;
  for (const HourlyRecord& r : records) {
    mean_mtd += r.gamma_htp_hmtd;
    mean_drift += r.gamma_ht_htp;
  }
  EXPECT_GT(mean_mtd / 24.0, 3.0 * (mean_drift / 24.0));
}

TEST(DailyTest, AttackerViewApproximatesDefenderView) {
  // gamma(H_t, H'_t') ~ gamma(H_t', H'_t'): the approximation the paper's
  // Section VI argues from temporal load correlation.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(4);
  const auto records = run_daily_simulation(sys, trace, fast_options(), rng);
  for (const HourlyRecord& r : records) {
    EXPECT_NEAR(r.gamma_ht_hmtd, r.gamma_htp_hmtd, 0.12)
        << "hour " << r.hour;
  }
}

TEST(DailyTest, RejectsEmptyGammaGrid) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(5);
  DailySimulationOptions opt = fast_options();
  opt.gamma_grid.clear();
  EXPECT_THROW(run_daily_simulation(sys, trace, opt, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::mtd
