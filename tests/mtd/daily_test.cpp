#include "mtd/daily.hpp"

#include <gtest/gtest.h>

#include "grid/cases.hpp"

namespace mtdgrid::mtd {
namespace {

DailySimulationOptions fast_options() {
  DailySimulationOptions opt;
  opt.effectiveness.num_attacks = 120;
  opt.selection.extra_starts = 2;
  opt.selection.search.max_evaluations = 400;
  opt.gamma_grid = {0.05, 0.15, 0.25};
  return opt;
}

TEST(DailyTest, ProducesCompleteFeasibleDay) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(1);
  const auto records = run_daily_simulation(sys, trace, fast_options(), rng);
  ASSERT_EQ(records.size(), 24u);
  for (const HourlyRecord& r : records) {
    EXPECT_TRUE(r.feasible) << "hour " << r.hour;
    EXPECT_DOUBLE_EQ(r.total_load_mw, trace.total_mw(r.hour));
    EXPECT_GT(r.base_opf_cost, 0.0);
    EXPECT_GE(r.cost_increase_pct, 0.0);
    EXPECT_GT(r.eta_at_target, 0.0);
  }
}

TEST(DailyTest, NaturalReactanceDriftIsSmall) {
  // gamma(H_t, H_t') must be nearly zero across the day (paper Fig. 11):
  // the warm-started hourly OPF tracks the slowly varying load.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(2);
  const auto records = run_daily_simulation(sys, trace, fast_options(), rng);
  double max_drift = 0.0;
  for (const HourlyRecord& r : records)
    max_drift = std::max(max_drift, r.gamma_ht_htp);
  EXPECT_LT(max_drift, 0.12);
}

TEST(DailyTest, MtdAnglesDominateNaturalDrift) {
  // The deliberate perturbation must rotate the column space much more
  // than the natural load-driven drift does.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(3);
  const auto records = run_daily_simulation(sys, trace, fast_options(), rng);
  double mean_mtd = 0.0, mean_drift = 0.0;
  for (const HourlyRecord& r : records) {
    mean_mtd += r.gamma_htp_hmtd;
    mean_drift += r.gamma_ht_htp;
  }
  EXPECT_GT(mean_mtd / 24.0, 3.0 * (mean_drift / 24.0));
}

TEST(DailyTest, AttackerViewApproximatesDefenderView) {
  // gamma(H_t, H'_t') ~ gamma(H_t', H'_t'): the approximation the paper's
  // Section VI argues from temporal load correlation.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(4);
  const auto records = run_daily_simulation(sys, trace, fast_options(), rng);
  for (const HourlyRecord& r : records) {
    EXPECT_NEAR(r.gamma_ht_hmtd, r.gamma_htp_hmtd, 0.12)
        << "hour " << r.hour;
  }
}

TEST(DailyTest, RejectsEmptyGammaGrid) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  stats::Rng rng(5);
  DailySimulationOptions opt = fast_options();
  opt.gamma_grid.clear();
  EXPECT_THROW(run_daily_simulation(sys, trace, opt, rng),
               std::invalid_argument);
  EXPECT_THROW(DailyEngine(sys, trace, opt), std::invalid_argument);
}

DailySimulationOptions engine_options() {
  DailySimulationOptions opt;
  opt.effectiveness.num_attacks = 40;
  opt.selection.extra_starts = 1;
  opt.selection.search.max_evaluations = 150;
  opt.base_search_evaluations = 120;
  opt.gamma_grid = {0.05, 0.15};
  return opt;
}

TEST(DailyEngineTest, AdvanceHourReproducesRunDailySimulationBitExact) {
  // The wrapper and 24 explicit advance_hour calls must be the same
  // computation: exact == on every record field and on the rng state
  // afterwards (the engine consumes the caller's draws identically).
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const grid::DailyLoadTrace trace =
      grid::DailyLoadTrace::nyiso_winter_weekday();
  const DailySimulationOptions opt = engine_options();
  stats::Rng rng_wrapper(21), rng_engine(21);
  const auto records = run_daily_simulation(sys, trace, opt, rng_wrapper);
  ASSERT_EQ(records.size(), 24u);

  DailyEngine engine(sys, trace, opt);
  EXPECT_EQ(engine.hours_per_day(), 24u);
  for (std::size_t h = 0; h < 24; ++h) {
    ASSERT_EQ(engine.next_hour(), h);
    const DailyHourOutcome out = engine.advance_hour(rng_engine);
    const HourlyRecord& want = records[h];
    const HourlyRecord& got = out.record;
    EXPECT_EQ(got.hour, want.hour);
    EXPECT_EQ(got.feasible, want.feasible);
    EXPECT_EQ(got.total_load_mw, want.total_load_mw);
    EXPECT_EQ(got.base_opf_cost, want.base_opf_cost);
    EXPECT_EQ(got.mtd_opf_cost, want.mtd_opf_cost);
    EXPECT_EQ(got.cost_increase_pct, want.cost_increase_pct);
    EXPECT_EQ(got.gamma_threshold, want.gamma_threshold);
    EXPECT_EQ(got.gamma_ht_htp, want.gamma_ht_htp);
    EXPECT_EQ(got.gamma_ht_hmtd, want.gamma_ht_hmtd);
    EXPECT_EQ(got.gamma_htp_hmtd, want.gamma_htp_hmtd);
    EXPECT_EQ(got.eta_at_target, want.eta_at_target);

    // The outcome carries the operational state the serving layer needs.
    if (got.feasible) {
      const std::size_t L = sys.num_branches();
      ASSERT_EQ(out.reactances.size(), L);
      EXPECT_TRUE(sys.reactances_within_limits(out.reactances));
      ASSERT_EQ(out.h_mtd.rows(), 2 * L + sys.num_buses());
      ASSERT_EQ(out.h_mtd.cols(), sys.num_buses() - 1);
      ASSERT_EQ(out.z_ref.size(), out.h_mtd.rows());
      EXPECT_TRUE(out.dispatch.feasible);
    }
  }
  // Both generators must sit at the same stream position afterwards.
  EXPECT_EQ(rng_wrapper.next_u64(), rng_engine.next_u64());

  // The virtual clock keeps going past midnight: hour 24 replays trace
  // hour 0 with the warm-start state carried across the day boundary.
  const DailyHourOutcome wrapped = engine.advance_hour(rng_engine);
  EXPECT_EQ(wrapped.record.hour, 24u);
  EXPECT_EQ(wrapped.record.total_load_mw, trace.total_mw(0));
  EXPECT_TRUE(wrapped.record.feasible);
}

}  // namespace
}  // namespace mtdgrid::mtd
