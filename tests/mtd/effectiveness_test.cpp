#include "mtd/effectiveness.hpp"

#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"
#include "stats/rng.hpp"

namespace mtdgrid::mtd {
namespace {

struct Scenario {
  linalg::Matrix h_old;
  linalg::Matrix h_new;
  linalg::Vector z_ref;
};

Scenario make_scenario(double factor) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  Scenario s;
  s.h_old = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
  s.h_new = grid::measurement_matrix(sys, x);
  const opf::DispatchResult d = opf::solve_dc_opf(sys, x);
  s.z_ref = grid::noiseless_measurements(sys, x, d.theta_reduced);
  return s;
}

TEST(EffectivenessTest, NoPerturbationMeansNoDetection) {
  // H' == H: every attack remains stealthy, P_D == alpha << delta.
  const Scenario s = make_scenario(1.0);
  stats::Rng rng(1);
  EffectivenessOptions opt;
  opt.num_attacks = 100;
  const EffectivenessResult r =
      evaluate_effectiveness(s.h_old, s.h_old, s.z_ref, opt, rng);
  for (double eta : r.eta) EXPECT_DOUBLE_EQ(eta, 0.0);
  EXPECT_NEAR(r.mean_detection, opt.fp_rate, 1e-6);
}

TEST(EffectivenessTest, LargePerturbationIsHighlyEffective) {
  const Scenario s = make_scenario(1.5);
  stats::Rng rng(2);
  EffectivenessOptions opt;
  opt.num_attacks = 200;
  opt.sigma_mw = 0.05;
  const EffectivenessResult r =
      evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, opt, rng);
  EXPECT_GT(r.eta[0], 0.85);  // eta'(0.5)
  EXPECT_GT(r.mean_detection, 0.85);
}

TEST(EffectivenessTest, EtaDecreasesInDelta) {
  const Scenario s = make_scenario(1.3);
  stats::Rng rng(3);
  EffectivenessOptions opt;
  opt.num_attacks = 200;
  opt.deltas = {0.1, 0.3, 0.5, 0.7, 0.9, 0.99};
  const EffectivenessResult r =
      evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, opt, rng);
  for (std::size_t i = 1; i < r.eta.size(); ++i)
    EXPECT_LE(r.eta[i], r.eta[i - 1] + 1e-12);
}

TEST(EffectivenessTest, MoreNoiseLowersDetection) {
  const Scenario s = make_scenario(1.3);
  EffectivenessOptions quiet, noisy;
  quiet.num_attacks = noisy.num_attacks = 200;
  quiet.sigma_mw = 0.02;
  noisy.sigma_mw = 0.5;
  stats::Rng rng_a(4), rng_b(4);
  const auto r_quiet =
      evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, quiet, rng_a);
  const auto r_noisy =
      evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, noisy, rng_b);
  EXPECT_GT(r_quiet.mean_detection, r_noisy.mean_detection);
}

TEST(EffectivenessTest, AnalyticAndMonteCarloAgree) {
  const Scenario s = make_scenario(1.35);
  EffectivenessOptions analytic, mc;
  analytic.num_attacks = mc.num_attacks = 60;
  analytic.sigma_mw = mc.sigma_mw = 0.1;
  analytic.method = DetectionMethod::kAnalytic;
  mc.method = DetectionMethod::kMonteCarlo;
  mc.noise_trials = 800;
  stats::Rng rng_a(5), rng_b(5);
  const auto ra =
      evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, analytic, rng_a);
  const auto rb = evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, mc,
                                         rng_b);
  EXPECT_NEAR(ra.mean_detection, rb.mean_detection, 0.05);
  EXPECT_NEAR(ra.eta[1], rb.eta[1], 0.12);
}

TEST(EffectivenessTest, HigherGammaMoreEffective) {
  // The paper's central conjecture (Section V-C), verified end to end.
  stats::Rng rng(6);
  EffectivenessOptions opt;
  opt.num_attacks = 300;
  opt.sigma_mw = 0.1;
  double prev_eta = -1.0, prev_gamma = -1.0;
  for (double factor : {1.05, 1.2, 1.5}) {
    const Scenario s = make_scenario(factor);
    const double gamma = spa(s.h_old, s.h_new);
    const auto r =
        evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, opt, rng);
    EXPECT_GT(gamma, prev_gamma);
    EXPECT_GT(r.eta[0] + 0.02, prev_eta);  // allow Monte-Carlo slack
    prev_eta = r.eta[0];
    prev_gamma = gamma;
  }
}

TEST(EffectivenessTest, EtaAtHelper) {
  const std::vector<double> pds = {0.1, 0.5, 0.9, 0.95, 1.0};
  EXPECT_DOUBLE_EQ(eta_at(pds, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(eta_at(pds, 0.5), 0.8);
  EXPECT_DOUBLE_EQ(eta_at(pds, 0.9), 0.6);
  EXPECT_DOUBLE_EQ(eta_at(pds, 0.99), 0.2);
  EXPECT_DOUBLE_EQ(eta_at({}, 0.5), 0.0);
}

TEST(EffectivenessTest, ValidatesArguments) {
  const Scenario s = make_scenario(1.2);
  stats::Rng rng(7);
  EffectivenessOptions opt;
  opt.num_attacks = 0;
  EXPECT_THROW(
      evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, opt, rng),
      std::invalid_argument);
}

TEST(EffectivenessTest, ReproducibleWithSameSeed) {
  const Scenario s = make_scenario(1.25);
  EffectivenessOptions opt;
  opt.num_attacks = 50;
  stats::Rng rng_a(11), rng_b(11);
  const auto ra =
      evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, opt, rng_a);
  const auto rb =
      evaluate_effectiveness(s.h_old, s.h_new, s.z_ref, opt, rng_b);
  EXPECT_DOUBLE_EQ(ra.mean_detection, rb.mean_detection);
}

// --- batched candidate evaluation ---------------------------------------

TEST(EvaluateCandidatesTest, MatchesPerCandidateEvaluationWithSharedSeed) {
  // With the analytic detection method the only rng use is the attack
  // sample, so the batched API must reproduce per-candidate calls made
  // with identically seeded generators.
  const grid::PowerSystem sys = grid::make_case14();
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  ASSERT_TRUE(base.feasible);
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const linalg::Vector z0 = grid::noiseless_measurements(
      sys, sys.reactances(), base.theta_reduced);

  std::vector<linalg::Matrix> candidates;
  for (double factor : {1.1, 1.3, 0.8}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= factor;
    candidates.push_back(grid::measurement_matrix(sys, x));
  }

  EffectivenessOptions options;
  options.num_attacks = 120;
  options.deltas = {0.5, 0.9};

  stats::Rng batch_rng(41);
  const auto batched =
      evaluate_candidates(h0, candidates, z0, options, batch_rng);
  ASSERT_EQ(batched.size(), candidates.size());

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    stats::Rng fresh(41);
    const EffectivenessResult single =
        evaluate_effectiveness(h0, candidates[i], z0, options, fresh);
    ASSERT_EQ(batched[i].detection_probabilities.size(),
              single.detection_probabilities.size());
    for (std::size_t a = 0; a < single.detection_probabilities.size(); ++a)
      EXPECT_DOUBLE_EQ(batched[i].detection_probabilities[a],
                       single.detection_probabilities[a]);
    ASSERT_EQ(batched[i].eta.size(), single.eta.size());
    for (std::size_t d = 0; d < single.eta.size(); ++d)
      EXPECT_DOUBLE_EQ(batched[i].eta[d], single.eta[d]);
  }
}

TEST(EvaluateCandidatesTest, EmptyBatchAndValidation) {
  const grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const linalg::Vector z0(h0.rows(), 10.0);
  EffectivenessOptions options;
  options.num_attacks = 10;
  stats::Rng rng(1);
  EXPECT_TRUE(evaluate_candidates(h0, {}, z0, options, rng).empty());
  EXPECT_THROW(
      evaluate_candidates(h0, {linalg::Matrix(3, 2)}, z0, options, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::mtd
