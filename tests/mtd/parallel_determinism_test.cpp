// Determinism suite for the parallel Monte-Carlo/search engine: every hot
// path must produce BIT-IDENTICAL results for thread counts 1, 2, and 8 at
// the same seed (ISSUE 4 acceptance; DESIGN.md "Threading model &
// deterministic seeding"). The comparisons below use exact == on doubles on
// purpose — "close enough" would hide ordering bugs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "attack/fdi_attack.hpp"
#include "core/thread_pool.hpp"
#include "estimation/bdd.hpp"
#include "estimation/detection.hpp"
#include "estimation/state_estimator.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "grid/power_flow.hpp"
#include "mtd/effectiveness.hpp"
#include "mtd/selection.hpp"
#include "opf/dc_opf.hpp"
#include "opf/direct_search.hpp"
#include "stats/rng.hpp"

namespace mtdgrid {
namespace {

const std::vector<std::size_t> kThreadCounts = {1, 2, 8};

/// Runs `fn` once per thread count and returns the per-count results.
template <typename Fn>
auto with_thread_counts(Fn&& fn)
    -> std::vector<decltype(fn())> {
  std::vector<decltype(fn())> out;
  for (std::size_t threads : kThreadCounts) {
    core::ThreadPool::set_global_num_threads(threads);
    out.push_back(fn());
  }
  core::ThreadPool::set_global_num_threads(0);  // restore the default
  return out;
}

struct Scenario {
  grid::PowerSystem sys;
  linalg::Matrix h0;
  linalg::Matrix h_mtd;
  linalg::Vector z_ref;
};

Scenario make_scenario() {
  Scenario s{grid::make_case14(), {}, {}, {}};
  s.h0 = grid::measurement_matrix(s.sys);
  linalg::Vector x = s.sys.reactances();
  for (std::size_t l : s.sys.dfacts_branches()) x[l] *= 1.3;
  s.h_mtd = grid::measurement_matrix(s.sys, x);
  const opf::DispatchResult d = opf::solve_dc_opf(s.sys, x);
  s.z_ref = grid::noiseless_measurements(s.sys, x, d.theta_reduced);
  return s;
}

TEST(ParallelDeterminismTest, EffectivenessBitIdenticalAcrossThreadCounts) {
  const Scenario s = make_scenario();
  mtd::EffectivenessOptions opt;
  opt.num_attacks = 150;
  opt.sigma_mw = 0.1;

  const auto runs = with_thread_counts([&] {
    stats::Rng rng(2024);
    return mtd::evaluate_effectiveness(s.h0, s.h_mtd, s.z_ref, opt, rng);
  });
  for (std::size_t k = 1; k < runs.size(); ++k) {
    SCOPED_TRACE("threads=" + std::to_string(kThreadCounts[k]));
    EXPECT_EQ(runs[0].mean_detection, runs[k].mean_detection);
    ASSERT_EQ(runs[0].detection_probabilities.size(),
              runs[k].detection_probabilities.size());
    for (std::size_t i = 0; i < runs[0].detection_probabilities.size(); ++i)
      EXPECT_EQ(runs[0].detection_probabilities[i],
                runs[k].detection_probabilities[i]);
    EXPECT_EQ(runs[0].eta, runs[k].eta);
  }
}

TEST(ParallelDeterminismTest, MonteCarloEffectivenessBitIdentical) {
  const Scenario s = make_scenario();
  mtd::EffectivenessOptions opt;
  opt.num_attacks = 25;
  opt.sigma_mw = 0.1;
  opt.method = mtd::DetectionMethod::kMonteCarlo;
  opt.noise_trials = 200;

  const auto runs = with_thread_counts([&] {
    stats::Rng rng(77);
    return mtd::evaluate_effectiveness(s.h0, s.h_mtd, s.z_ref, opt, rng);
  });
  for (std::size_t k = 1; k < runs.size(); ++k) {
    SCOPED_TRACE("threads=" + std::to_string(kThreadCounts[k]));
    EXPECT_EQ(runs[0].mean_detection, runs[k].mean_detection);
    EXPECT_EQ(runs[0].detection_probabilities,
              runs[k].detection_probabilities);
  }
}

TEST(ParallelDeterminismTest, EvaluateCandidatesBitIdentical) {
  const Scenario s = make_scenario();
  std::vector<linalg::Matrix> candidates;
  for (double factor : {0.85, 1.1, 1.25, 1.4}) {
    linalg::Vector x = s.sys.reactances();
    for (std::size_t l : s.sys.dfacts_branches()) x[l] *= factor;
    candidates.push_back(grid::measurement_matrix(s.sys, x));
  }
  mtd::EffectivenessOptions opt;
  opt.num_attacks = 80;

  const auto runs = with_thread_counts([&] {
    stats::Rng rng(31);
    return mtd::evaluate_candidates(s.h0, candidates, s.z_ref, opt, rng);
  });
  for (std::size_t k = 1; k < runs.size(); ++k) {
    SCOPED_TRACE("threads=" + std::to_string(kThreadCounts[k]));
    ASSERT_EQ(runs[0].size(), runs[k].size());
    for (std::size_t c = 0; c < runs[0].size(); ++c) {
      EXPECT_EQ(runs[0][c].mean_detection, runs[k][c].mean_detection);
      EXPECT_EQ(runs[0][c].detection_probabilities,
                runs[k][c].detection_probabilities);
    }
  }
}

TEST(ParallelDeterminismTest, MonteCarloDetectionBitIdentical) {
  const Scenario s = make_scenario();
  const estimation::StateEstimator est(s.h_mtd, 0.5);
  const estimation::BadDataDetector bdd(est, 0.01);
  stats::Rng attack_rng(5);
  linalg::Vector c(s.h0.cols());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = attack_rng.gaussian();
  const linalg::Vector a = s.h0 * c;

  const auto runs = with_thread_counts([&] {
    stats::Rng rng(99);
    return estimation::monte_carlo_detection_probability(est, bdd, s.z_ref,
                                                         a, 3000, rng);
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelDeterminismTest, MultiStartBitIdentical) {
  // Multi-modal objective: many local minima, so a scheduling-dependent
  // best-of reduction would show up immediately.
  const auto objective = [](const linalg::Vector& x) {
    double v = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      v += std::sin(5.0 * x[i]) + 0.1 * x[i] * x[i];
    return v;
  };
  const linalg::Vector lo(3, -4.0), hi(3, 4.0), x0(3, 0.5);
  opf::DirectSearchOptions opts;
  opts.max_evaluations = 400;

  const auto runs = with_thread_counts([&] {
    stats::Rng rng(17);
    return opf::multi_start_minimize(objective, lo, hi, x0, 7, rng, opts);
  });
  for (std::size_t k = 1; k < runs.size(); ++k) {
    SCOPED_TRACE("threads=" + std::to_string(kThreadCounts[k]));
    EXPECT_EQ(runs[0].value, runs[k].value);
    EXPECT_EQ(runs[0].evaluations, runs[k].evaluations);
    for (std::size_t i = 0; i < runs[0].x.size(); ++i)
      EXPECT_EQ(runs[0].x[i], runs[k].x[i]);
  }
}

TEST(ParallelDeterminismTest, SelectionBitIdenticalAcrossThreadCounts) {
  grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const opf::DispatchResult base = opf::solve_dc_opf(sys);
  ASSERT_TRUE(base.feasible);

  mtd::MtdSelectionOptions sel;
  sel.gamma_threshold = 0.1;
  sel.extra_starts = 4;
  sel.search.max_evaluations = 250;

  const auto runs = with_thread_counts([&] {
    stats::Rng rng(4242);
    return mtd::select_mtd_perturbation(sys, h0, base.cost, sel, rng);
  });
  for (std::size_t k = 1; k < runs.size(); ++k) {
    SCOPED_TRACE("threads=" + std::to_string(kThreadCounts[k]));
    EXPECT_EQ(runs[0].feasible, runs[k].feasible);
    EXPECT_EQ(runs[0].spa, runs[k].spa);            // bit-identical gamma
    EXPECT_EQ(runs[0].opf_cost, runs[k].opf_cost);  // and dispatch cost
    ASSERT_EQ(runs[0].reactances.size(), runs[k].reactances.size());
    for (std::size_t i = 0; i < runs[0].reactances.size(); ++i)
      EXPECT_EQ(runs[0].reactances[i], runs[k].reactances[i])
          << "selected candidate differs at branch " << i;
  }
}

TEST(ParallelDeterminismTest, SampleAttacksAdvanceRngByOneDraw) {
  // The documented stream contract: sampling N attacks consumes exactly
  // one raw draw from the caller's generator, independent of N.
  const Scenario s = make_scenario();
  stats::Rng rng_a(8), rng_b(8), reference(8);
  (void)attack::sample_attacks(s.h0, s.z_ref, 0.08, 3, rng_a);
  (void)attack::sample_attacks(s.h0, s.z_ref, 0.08, 200, rng_b);
  (void)reference.next_u64();
  const std::uint64_t next = reference.next_u64();
  EXPECT_EQ(rng_a.next_u64(), next);
  EXPECT_EQ(rng_b.next_u64(), next);
}

}  // namespace
}  // namespace mtdgrid
