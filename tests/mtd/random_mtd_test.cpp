#include "mtd/random_mtd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "grid/cases.hpp"

namespace mtdgrid::mtd {
namespace {

TEST(RandomMtdTest, OnlyDfactsBranchesPerturbed) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(1);
  const linalg::Vector x0 = sys.reactances();
  const linalg::Vector x = random_reactance_perturbation(sys, x0, 0.02, rng);
  const auto dfacts = sys.dfacts_branches();
  for (std::size_t l = 0; l < sys.num_branches(); ++l) {
    const bool is_dfacts =
        std::find(dfacts.begin(), dfacts.end(), l) != dfacts.end();
    if (!is_dfacts) EXPECT_DOUBLE_EQ(x[l], x0[l]) << "line " << l;
  }
}

TEST(RandomMtdTest, PerturbationWithinRequestedFraction) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(2);
  const linalg::Vector x0 = sys.reactances();
  for (int trial = 0; trial < 50; ++trial) {
    const linalg::Vector x =
        random_reactance_perturbation(sys, x0, 0.02, rng);
    for (std::size_t l : sys.dfacts_branches()) {
      EXPECT_LE(std::abs(x[l] - x0[l]) / x0[l], 0.02 + 1e-12);
    }
  }
}

TEST(RandomMtdTest, StaysWithinDeviceLimits) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(3);
  const linalg::Vector x0 = sys.reactances();
  for (int trial = 0; trial < 50; ++trial) {
    // Request a fraction beyond the 50% device range: must be clipped.
    const linalg::Vector x =
        random_reactance_perturbation(sys, x0, 0.9, rng);
    EXPECT_TRUE(sys.reactances_within_limits(x));
  }
}

TEST(RandomMtdTest, ActuallyPerturbsSomething) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(4);
  const linalg::Vector x0 = sys.reactances();
  const linalg::Vector x = random_reactance_perturbation(sys, x0, 0.02, rng);
  EXPECT_GT(linalg::max_abs_diff(x, x0), 1e-6);
}

TEST(RandomMtdTest, Reproducible) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng_a(9), rng_b(9);
  const linalg::Vector x0 = sys.reactances();
  const linalg::Vector a = random_reactance_perturbation(sys, x0, 0.02, rng_a);
  const linalg::Vector b = random_reactance_perturbation(sys, x0, 0.02, rng_b);
  EXPECT_NEAR(linalg::max_abs_diff(a, b), 0.0, 0.0);
}

TEST(RandomMtdTest, ValidatesArguments) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  stats::Rng rng(5);
  EXPECT_THROW(
      random_reactance_perturbation(sys, linalg::Vector(3, 0.1), 0.02, rng),
      std::invalid_argument);
  EXPECT_THROW(
      random_reactance_perturbation(sys, sys.reactances(), 0.0, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::mtd
