#include "mtd/selection.hpp"

#include <gtest/gtest.h>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "mtd/spa.hpp"
#include "opf/dc_opf.hpp"

namespace mtdgrid::mtd {
namespace {

struct Fixture {
  grid::PowerSystem sys = grid::make_case_ieee14();
  linalg::Matrix h_attacker;
  double base_cost = 0.0;

  Fixture() {
    const opf::DispatchResult base = opf::solve_dc_opf(sys);
    h_attacker = grid::measurement_matrix(sys);
    base_cost = base.cost;
  }

  MtdSelectionOptions fast_options(double gamma_th) const {
    MtdSelectionOptions opt;
    opt.gamma_threshold = gamma_th;
    opt.extra_starts = 3;
    opt.search.max_evaluations = 800;
    return opt;
  }
};

TEST(SelectionTest, MeetsModerateThreshold) {
  Fixture f;
  stats::Rng rng(1);
  const MtdSelectionResult r = select_mtd_perturbation(
      f.sys, f.h_attacker, f.base_cost, f.fast_options(0.2), rng);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.spa, 0.2 - 2e-3);
  EXPECT_TRUE(f.sys.reactances_within_limits(r.reactances));
}

TEST(SelectionTest, SpaMatchesReportedMatrix) {
  Fixture f;
  stats::Rng rng(2);
  const MtdSelectionResult r = select_mtd_perturbation(
      f.sys, f.h_attacker, f.base_cost, f.fast_options(0.15), rng);
  EXPECT_NEAR(r.spa, spa(f.h_attacker, r.h_mtd), 1e-9);
  EXPECT_NEAR(linalg::max_abs_diff(
                  r.h_mtd, grid::measurement_matrix(f.sys, r.reactances)),
              0.0, 1e-12);
}

TEST(SelectionTest, CostIncreaseConsistent) {
  Fixture f;
  stats::Rng rng(3);
  const MtdSelectionResult r = select_mtd_perturbation(
      f.sys, f.h_attacker, f.base_cost, f.fast_options(0.25), rng);
  ASSERT_TRUE(r.dispatch.feasible);
  EXPECT_NEAR(r.cost_increase,
              (r.opf_cost - f.base_cost) / f.base_cost, 1e-12);
  EXPECT_NEAR(r.opf_cost, r.dispatch.cost, 1e-9);
}

TEST(SelectionTest, PinnedGammaLandsOnThreshold) {
  Fixture f;
  stats::Rng rng(4);
  MtdSelectionOptions opt = f.fast_options(0.22);
  opt.pin_gamma = true;
  const MtdSelectionResult r =
      select_mtd_perturbation(f.sys, f.h_attacker, f.base_cost, opt, rng);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.spa, 0.22, 0.02);
}

TEST(SelectionTest, TinyThresholdIsFreeAndFeasible) {
  Fixture f;
  stats::Rng rng(5);
  const MtdSelectionResult r = select_mtd_perturbation(
      f.sys, f.h_attacker, f.base_cost, f.fast_options(0.01), rng);
  EXPECT_TRUE(r.feasible);
  // The reactance-OPF optimum costs no more than the nominal-x dispatch.
  EXPECT_LE(r.opf_cost, f.base_cost + 1e-6);
}

TEST(SelectionTest, UnreachableThresholdReportedInfeasible) {
  Fixture f;
  stats::Rng rng(6);
  // pi/2 is unreachable for a 6-branch D-FACTS deployment.
  const MtdSelectionResult r = select_mtd_perturbation(
      f.sys, f.h_attacker, f.base_cost, f.fast_options(1.5), rng);
  EXPECT_FALSE(r.feasible);
  EXPECT_LT(r.spa, 1.5);
  // The search still returns the best-achievable point with a valid OPF.
  EXPECT_TRUE(r.dispatch.feasible);
}

TEST(SelectionTest, HigherThresholdNeverCheaper) {
  // Sweeping gamma_th upward can only shrink the feasible set.
  Fixture f;
  stats::Rng rng(7);
  MtdSelectionOptions lo_opt = f.fast_options(0.05);
  MtdSelectionOptions hi_opt = f.fast_options(0.25);
  lo_opt.extra_starts = hi_opt.extra_starts = 5;
  lo_opt.search.max_evaluations = hi_opt.search.max_evaluations = 1500;
  const MtdSelectionResult lo =
      select_mtd_perturbation(f.sys, f.h_attacker, f.base_cost, lo_opt, rng);
  const MtdSelectionResult hi =
      select_mtd_perturbation(f.sys, f.h_attacker, f.base_cost, hi_opt, rng);
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  // Slack covers direct-search noise on the flat-cost plateau.
  EXPECT_LE(lo.opf_cost, hi.opf_cost + 0.005 * f.base_cost);
}

TEST(SelectionTest, ValidatesArguments) {
  Fixture f;
  stats::Rng rng(8);
  EXPECT_THROW(select_mtd_perturbation(f.sys, f.h_attacker, 0.0,
                                       f.fast_options(0.1), rng),
               std::invalid_argument);
  MtdSelectionOptions bad = f.fast_options(-0.1);
  EXPECT_THROW(
      select_mtd_perturbation(f.sys, f.h_attacker, f.base_cost, bad, rng),
      std::invalid_argument);

  // A system without D-FACTS cannot host an MTD.
  std::vector<grid::Bus> buses = {{0.0}, {50.0}};
  std::vector<grid::Branch> branches(1);
  branches[0] = {.from = 0, .to = 1, .reactance = 0.1,
                 .flow_limit_mw = 100.0};
  std::vector<grid::Generator> gens = {
      {.bus = 0, .min_mw = 0.0, .max_mw = 100.0, .cost_per_mwh = 7.0}};
  const grid::PowerSystem plain("plain", buses, branches, gens);
  EXPECT_THROW(
      select_mtd_perturbation(plain, grid::measurement_matrix(plain), 100.0,
                              f.fast_options(0.1), rng),
      std::invalid_argument);
}

TEST(SelectionTest, ReferencePathAndFastPathBothMeetTheConstraint) {
  // The fast path is a speed knob: both settings must produce a feasible
  // perturbation at the threshold (the search trajectories may differ, so
  // only the contract is compared, not the iterates).
  Fixture f;
  for (bool fast : {false, true}) {
    stats::Rng rng(11);
    MtdSelectionOptions opt = f.fast_options(0.15);
    opt.use_fast_path = fast;
    const MtdSelectionResult r = select_mtd_perturbation(
        f.sys, f.h_attacker, f.base_cost, opt, rng);
    EXPECT_TRUE(r.feasible) << "fast=" << fast;
    EXPECT_GE(r.spa, 0.15 - 2e-3) << "fast=" << fast;
    // The reported spa always comes from the reference spa() on the final
    // matrix, so the constraint check is path-independent.
    EXPECT_NEAR(r.spa, spa(f.h_attacker, r.h_mtd), 1e-9);
  }
}

TEST(SelectionTest, WarmStartFromIncumbentIsAccepted) {
  Fixture f;
  stats::Rng rng(12);
  const MtdSelectionResult first = select_mtd_perturbation(
      f.sys, f.h_attacker, f.base_cost, f.fast_options(0.2), rng);
  ASSERT_TRUE(first.feasible);

  const auto dfacts = f.sys.dfacts_branches();
  MtdSelectionOptions warm = f.fast_options(0.2);
  warm.extra_starts = 0;  // rely on the incumbent alone
  warm.search.max_evaluations = 300;
  warm.warm_start = linalg::Vector(dfacts.size());
  for (std::size_t k = 0; k < dfacts.size(); ++k)
    warm.warm_start[k] = first.reactances[dfacts[k]];
  const MtdSelectionResult second = select_mtd_perturbation(
      f.sys, f.h_attacker, f.base_cost, warm, rng);
  EXPECT_TRUE(second.feasible);
  EXPECT_GE(second.spa, 0.2 - 2e-3);
}

}  // namespace
}  // namespace mtdgrid::mtd
