#include "mtd/spa.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "linalg/qr.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::mtd {
namespace {

TEST(SpaTest, UniformScalingGivesZeroAngle) {
  // H' = (1 + eta) H: the paper's perfectly aligned case (Fig. 4a).
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  EXPECT_NEAR(spa(h, h * 1.2), 0.0, 1e-7);
  EXPECT_NEAR(smallest_angle(h, h * 1.2), 0.0, 1e-7);
}

TEST(SpaTest, OrthogonalComplementGivesRightAngle) {
  // Theorem 1's ideal MTD: Col(H') orthogonal to Col(H). Build H' as an
  // orthonormal basis of the orthogonal complement.
  stats::Rng rng(1);
  const linalg::Matrix h = test::random_matrix(10, 3, rng);
  const linalg::Matrix q = linalg::orthonormal_column_basis(h);
  // Complement: residuals of random vectors after projection onto Col(H).
  linalg::Matrix comp(10, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    linalg::Vector v = test::random_vector(10, rng);
    v -= q * q.transpose_times(v);
    comp.set_col(j, v);
  }
  EXPECT_NEAR(spa(h, comp), std::numbers::pi / 2, 1e-7);
  EXPECT_NEAR(smallest_angle(h, comp), std::numbers::pi / 2, 1e-7);
  EXPECT_TRUE(column_spaces_orthogonal(h, comp));
}

TEST(SpaTest, NotOrthogonalForRealisticPerturbations) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.5;
  EXPECT_FALSE(column_spaces_orthogonal(h, grid::measurement_matrix(sys, x)));
}

TEST(SpaTest, SmallestAngleIsZeroForDfactsSubsetPerturbations) {
  // The definitional subtlety documented in mtd/spa.hpp: any state
  // direction constant across all D-FACTS endpoints stays in both column
  // spaces, so the literal Definition-V.1 smallest angle is always zero
  // while the operative (largest) angle is strictly positive.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.45;
  const linalg::Matrix h_new = grid::measurement_matrix(sys, x);
  EXPECT_NEAR(smallest_angle(h, h_new), 0.0, 1e-6);
  EXPECT_GT(spa(h, h_new), 0.05);
}

TEST(SpaTest, SymmetricInArguments) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  x[0] *= 1.3;
  x[4] *= 0.7;
  const linalg::Matrix h_new = grid::measurement_matrix(sys, x);
  EXPECT_NEAR(spa(h, h_new), spa(h_new, h), 1e-9);
}

TEST(SpaTest, GrowsWithPerturbationSize) {
  // Monotone trend along a one-parameter family of perturbations.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  double prev = -1.0;
  for (double eta : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= (1.0 + eta);
    const double gamma = spa(h, grid::measurement_matrix(sys, x));
    EXPECT_GT(gamma, prev);
    prev = gamma;
  }
}

TEST(SpaTest, ZeroForIdenticalMatrices) {
  const grid::PowerSystem sys = grid::make_case_wscc9();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  // acos near 1 amplifies rounding: cos(theta) = 1 - eps gives
  // theta ~ sqrt(2 eps), so ~1e-7 is the numerical floor here.
  EXPECT_NEAR(spa(h, h), 0.0, 1e-6);
}

TEST(SpaTest, BoundedByRightAngle) {
  const grid::PowerSystem sys = grid::make_case_ieee30();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  stats::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches())
      x[l] *= rng.uniform(0.5, 1.5);
    const double gamma = spa(h, grid::measurement_matrix(sys, x));
    EXPECT_GE(gamma, 0.0);
    EXPECT_LE(gamma, std::numbers::pi / 2 + 1e-12);
  }
}

}  // namespace
}  // namespace mtdgrid::mtd
