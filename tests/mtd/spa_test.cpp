#include "mtd/spa.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "attack/fdi_attack.hpp"
#include "estimation/state_estimator.hpp"
#include "grid/cases.hpp"
#include "grid/measurement.hpp"
#include "linalg/qr.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace mtdgrid::mtd {
namespace {

TEST(SpaTest, UniformScalingGivesZeroAngle) {
  // H' = (1 + eta) H: the paper's perfectly aligned case (Fig. 4a).
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  EXPECT_NEAR(spa(h, h * 1.2), 0.0, 1e-7);
  EXPECT_NEAR(smallest_angle(h, h * 1.2), 0.0, 1e-7);
}

TEST(SpaTest, OrthogonalComplementGivesRightAngle) {
  // Theorem 1's ideal MTD: Col(H') orthogonal to Col(H). Build H' as an
  // orthonormal basis of the orthogonal complement.
  stats::Rng rng(1);
  const linalg::Matrix h = test::random_matrix(10, 3, rng);
  const linalg::Matrix q = linalg::orthonormal_column_basis(h);
  // Complement: residuals of random vectors after projection onto Col(H).
  linalg::Matrix comp(10, 4);
  for (std::size_t j = 0; j < 4; ++j) {
    linalg::Vector v = test::random_vector(10, rng);
    v -= q * q.transpose_times(v);
    comp.set_col(j, v);
  }
  EXPECT_NEAR(spa(h, comp), std::numbers::pi / 2, 1e-7);
  EXPECT_NEAR(smallest_angle(h, comp), std::numbers::pi / 2, 1e-7);
  EXPECT_TRUE(column_spaces_orthogonal(h, comp));
}

TEST(SpaTest, NotOrthogonalForRealisticPerturbations) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.5;
  EXPECT_FALSE(column_spaces_orthogonal(h, grid::measurement_matrix(sys, x)));
}

TEST(SpaTest, SmallestAngleIsZeroForDfactsSubsetPerturbations) {
  // The definitional subtlety documented in mtd/spa.hpp: any state
  // direction constant across all D-FACTS endpoints stays in both column
  // spaces, so the literal Definition-V.1 smallest angle is always zero
  // while the operative (largest) angle is strictly positive.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.45;
  const linalg::Matrix h_new = grid::measurement_matrix(sys, x);
  EXPECT_NEAR(smallest_angle(h, h_new), 0.0, 1e-6);
  EXPECT_GT(spa(h, h_new), 0.05);
}

TEST(SpaTest, SymmetricInArguments) {
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  x[0] *= 1.3;
  x[4] *= 0.7;
  const linalg::Matrix h_new = grid::measurement_matrix(sys, x);
  EXPECT_NEAR(spa(h, h_new), spa(h_new, h), 1e-9);
}

TEST(SpaTest, GrowsWithPerturbationSize) {
  // Monotone trend along a one-parameter family of perturbations.
  const grid::PowerSystem sys = grid::make_case_ieee14();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  double prev = -1.0;
  for (double eta : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches()) x[l] *= (1.0 + eta);
    const double gamma = spa(h, grid::measurement_matrix(sys, x));
    EXPECT_GT(gamma, prev);
    prev = gamma;
  }
}

TEST(SpaTest, ZeroForIdenticalMatrices) {
  const grid::PowerSystem sys = grid::make_case_wscc9();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  // acos near 1 amplifies rounding: cos(theta) = 1 - eps gives
  // theta ~ sqrt(2 eps), so ~1e-7 is the numerical floor here.
  EXPECT_NEAR(spa(h, h), 0.0, 1e-6);
}

TEST(SpaTest, ResidualBoundEq7HoldsOnRandomizedPerturbations) {
  // Paper eq. (7): for any attack a = H c stealthy under the old matrix,
  // the attack component of the post-MTD residual obeys
  // ||r'_a|| <= sin(gamma(H, H')) ||a||. With unit sensor noise the
  // estimator's attack_residual_norm is exactly ||(I - P') a||, so this is
  // the property that ties the SPA design metric to BDD detection power.
  stats::Rng rng(11);
  for (const grid::PowerSystem& sys :
       {grid::make_case4(), grid::make_case14()}) {
    const linalg::Matrix h = grid::measurement_matrix(sys);
    for (int trial = 0; trial < 8; ++trial) {
      linalg::Vector x = sys.reactances();
      for (std::size_t l : sys.dfacts_branches())
        x[l] *= rng.uniform(0.5, 1.5);
      const linalg::Matrix h_new = grid::measurement_matrix(sys, x);
      const double sin_gamma = std::sin(spa(h, h_new));
      const estimation::StateEstimator est(h_new, /*sigma=*/1.0);
      for (int k = 0; k < 5; ++k) {
        const attack::FdiAttack atk = attack::make_stealthy_attack(
            h, test::random_vector(h.cols(), rng));
        const double a_norm = atk.a.norm();
        ASSERT_GT(a_norm, 0.0);
        EXPECT_LE(est.attack_residual_norm(atk.a),
                  sin_gamma * a_norm + 1e-8 * a_norm)
            << sys.name() << " trial " << trial << " attack " << k;
      }
    }
  }
}

TEST(SpaTest, ResidualBoundEq7IsTightForWorstCaseAttack) {
  // The bound is attained by the attack direction realizing the largest
  // principal angle, so sin(gamma) ||a|| must not overshoot the supremum
  // of ||r'_a|| / ||a|| by more than numerical slack: check that some
  // random attack gets within 60% of it on case4 (n = 3, so random
  // directions land close to the extremal one).
  stats::Rng rng(13);
  const grid::PowerSystem sys = grid::make_case4();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  linalg::Vector x = sys.reactances();
  x[0] *= 1.5;
  const linalg::Matrix h_new = grid::measurement_matrix(sys, x);
  const double sin_gamma = std::sin(spa(h, h_new));
  ASSERT_GT(sin_gamma, 0.01);
  const estimation::StateEstimator est(h_new, 1.0);
  double best_ratio = 0.0;
  for (int k = 0; k < 200; ++k) {
    const attack::FdiAttack atk = attack::make_stealthy_attack(
        h, test::random_vector(h.cols(), rng));
    best_ratio = std::max(
        best_ratio, est.attack_residual_norm(atk.a) / atk.a.norm());
  }
  EXPECT_GT(best_ratio, 0.6 * sin_gamma);
  EXPECT_LE(best_ratio, sin_gamma + 1e-8);
}

TEST(SpaTest, BoundedByRightAngle) {
  const grid::PowerSystem sys = grid::make_case_ieee30();
  const linalg::Matrix h = grid::measurement_matrix(sys);
  stats::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches())
      x[l] *= rng.uniform(0.5, 1.5);
    const double gamma = spa(h, grid::measurement_matrix(sys, x));
    EXPECT_GE(gamma, 0.0);
    EXPECT_LE(gamma, std::numbers::pi / 2 + 1e-12);
  }
}

// --- SpaEvaluator: incremental rank-k gamma vs the reference spa() ------

class SpaEvaluatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpaEvaluatorProperty, IncrementalGammaMatchesReferenceOnCase14) {
  const grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const SpaEvaluator eval(sys, h0);
  ASSERT_TRUE(eval.incremental());

  stats::Rng rng(300 + GetParam());
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  for (int t = 0; t < 6; ++t) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches())
      if (rng.uniform() < 0.7) x[l] = rng.uniform(lo[l], hi[l]);
    const double reference = spa(h0, grid::measurement_matrix(sys, x));
    EXPECT_NEAR(eval.gamma(x), reference, 1e-10);
  }
}

TEST_P(SpaEvaluatorProperty, IncrementalGammaMatchesReferenceOnCase57) {
  const grid::PowerSystem sys = grid::make_case57();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const SpaEvaluator eval(sys, h0);
  ASSERT_TRUE(eval.incremental());

  stats::Rng rng(350 + GetParam());
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  for (int t = 0; t < 3; ++t) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches())
      if (rng.uniform() < 0.7) x[l] = rng.uniform(lo[l], hi[l]);
    const double reference = spa(h0, grid::measurement_matrix(sys, x));
    EXPECT_NEAR(eval.gamma(x), reference, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpaEvaluatorProperty, ::testing::Range(0, 6));

TEST(SpaEvaluatorTest, RecognizesPerturbedReferenceMatrix) {
  // The attacker's knowledge is usually H at *perturbed* reactances (stale
  // MTD state), not the nominal ones; recovery must still work.
  const grid::PowerSystem sys = grid::make_case14();
  linalg::Vector x_att = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x_att[l] *= 1.17;
  const linalg::Matrix h_att = grid::measurement_matrix(sys, x_att);
  const SpaEvaluator eval(sys, h_att);
  ASSERT_TRUE(eval.incremental());
  EXPECT_LT(linalg::max_abs_diff(
                linalg::Matrix::column(eval.reference_reactances()),
                linalg::Matrix::column(x_att)),
            1e-9);

  linalg::Vector x = sys.reactances();
  x[sys.dfacts_branches()[0]] *= 1.4;
  EXPECT_NEAR(eval.gamma(x), spa(h_att, grid::measurement_matrix(sys, x)),
              1e-10);
}

TEST(SpaEvaluatorTest, UnchangedReactancesGiveZeroGamma) {
  const grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const SpaEvaluator eval(sys, h0);
  EXPECT_EQ(eval.gamma(sys.reactances()), 0.0);
}

TEST(SpaEvaluatorTest, ArbitraryAttackerMatrixFallsBackAndStillMatches) {
  // A randomly rotated attacker matrix is NOT a measurement matrix of the
  // system: the evaluator must detect that and fall back to the cached-Q0
  // path, still matching the reference spa().
  const grid::PowerSystem sys = grid::make_case14();
  stats::Rng rng(8);
  const linalg::Matrix h_arbitrary =
      test::random_matrix(grid::measurement_count(sys),
                          sys.num_buses() - 1, rng);
  const SpaEvaluator eval(sys, h_arbitrary);
  EXPECT_FALSE(eval.incremental());

  linalg::Vector x = sys.reactances();
  for (std::size_t l : sys.dfacts_branches()) x[l] *= 1.25;
  const double reference =
      spa(h_arbitrary, grid::measurement_matrix(sys, x));
  EXPECT_NEAR(eval.gamma(x), reference, 1e-10);
  EXPECT_NEAR(eval.gamma_full(grid::measurement_matrix(sys, x)), reference,
              1e-10);
}

TEST(SpaEvaluatorTest, RejectsWrongDimensions) {
  const grid::PowerSystem sys = grid::make_case14();
  EXPECT_THROW(SpaEvaluator(sys, linalg::Matrix(3, 2)),
               std::invalid_argument);
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const SpaEvaluator eval(sys, h0);
  EXPECT_THROW(eval.gamma(linalg::Vector(2)), std::invalid_argument);
}

// --- sparse attacker-matrix construction --------------------------------

TEST(SpaEvaluatorSparseTest, SparseConstructionEntersIncrementalMode) {
  // Sparse H from the storage-policy path: recognition runs on the CSR
  // entries and the evaluator behaves exactly like its dense twin.
  const grid::PowerSystem sys = grid::make_case14();
  const linalg::Matrix h0 = grid::measurement_matrix(sys);
  const SpaEvaluator dense_eval(sys, h0);
  const SpaEvaluator sparse_eval(sys, grid::sparse_measurement_matrix(sys));
  ASSERT_TRUE(sparse_eval.incremental());

  stats::Rng rng(9);
  const linalg::Vector lo = sys.reactance_lower_limits();
  const linalg::Vector hi = sys.reactance_upper_limits();
  for (int t = 0; t < 5; ++t) {
    linalg::Vector x = sys.reactances();
    for (std::size_t l : sys.dfacts_branches())
      if (rng.uniform() < 0.7) x[l] = rng.uniform(lo[l], hi[l]);
    const double reference = spa(h0, grid::measurement_matrix(sys, x));
    EXPECT_NEAR(sparse_eval.gamma(x), reference, 1e-10);
    // Sparse and dense construction share the exact same H0, so their
    // gammas agree bit for bit.
    EXPECT_EQ(sparse_eval.gamma(x), dense_eval.gamma(x));
  }
  EXPECT_EQ(sparse_eval.gamma(sys.reactances()), 0.0);
}

TEST(SpaEvaluatorSparseTest, UnrecognizedSparseMatrixFallsBack) {
  const grid::PowerSystem sys = grid::make_case14();
  // Corrupt one flow entry: no reactance vector reproduces this matrix.
  linalg::Matrix h = grid::measurement_matrix(sys);
  h(0, 0) *= 1.5;
  const SpaEvaluator eval(sys, linalg::SparseMatrix::from_dense(h));
  EXPECT_FALSE(eval.incremental());

  linalg::Vector x = sys.reactances();
  x[sys.dfacts_branches()[0]] *= 1.3;
  EXPECT_NEAR(eval.gamma(x), spa(h, grid::measurement_matrix(sys, x)),
              1e-10);
}

TEST(SpaEvaluatorSparseTest, RejectsWrongSparseDimensions) {
  const grid::PowerSystem sys = grid::make_case14();
  EXPECT_THROW(SpaEvaluator(sys, linalg::SparseMatrix(3, 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace mtdgrid::mtd
