// Zone-decomposed D-FACTS selection at mega-grid scale (slow tier):
// case118x9 (1062 buses, 9 copy-zones) must complete an end-to-end
// select_mtd_zones run under a deliberately tiny search budget. This is
// the ISSUE 9 acceptance check that the decomposition makes selection
// tractable where the monolithic dense path is not — each zone solve is
// 118-bus-sized, and only the SPA recheck touches the full model (via
// the sparse measurement-matrix evaluator). The budget here buys
// completion + structural invariants, not a strong gamma; the
// threshold is set low enough that the per-zone optimum clears it.

#include <gtest/gtest.h>

#include "grid/compose.hpp"
#include "io/case_registry.hpp"
#include "mtd/zone_selection.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"

namespace mtdgrid {
namespace {

TEST(ZoneSelectionCase118x9SlowTest, CompletesUnderSmallBudget) {
  const grid::PowerSystem sys = io::load_case("case118x9");
  ASSERT_EQ(sys.num_buses(), 9u * 118u);
  const grid::ZonePartition partition = grid::partition_into_copies(sys, 9);

  mtd::ZoneSelectionOptions opt;
  opt.selection.gamma_threshold = 0.01;  // completion, not strength
  opt.selection.extra_starts = 0;        // corners + warm starts only
  opt.selection.search.max_evaluations = 20;
  opt.max_rounds = 1;

  obs::MetricsRegistry registry;
  obs::ScopedRegistry scope(&registry);
  const mtd::ZoneSelectionResult r =
      mtd::select_mtd_zones(sys, partition, opt, 118900);

  ASSERT_EQ(r.zones.size(), 9u);
  for (std::size_t z = 0; z < 9; ++z) {
    SCOPED_TRACE(z);
    EXPECT_EQ(r.zones[z].zone, z);
    EXPECT_TRUE(r.zones[z].result.feasible);
    EXPECT_GT(r.zones[z].base_opf_cost, 0.0);
  }
  EXPECT_EQ(r.reactances.size(), sys.num_branches());
  EXPECT_GE(r.boundary_rechecks, 1u);
  EXPECT_GT(r.full_spa, 0.0);
  EXPECT_GT(r.opf_cost, 0.0);

  EXPECT_EQ(registry.value(obs::Work::kZonesSelected), 9u);
  EXPECT_EQ(registry.value(obs::Work::kBoundaryRechecks),
            r.boundary_rechecks);
}

}  // namespace
}  // namespace mtdgrid
